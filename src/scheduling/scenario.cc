#include "scheduling/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "flexoffer/time_slice.h"

namespace mirabel::scheduling {

using flexoffer::TimeSlice;

SchedulingProblem MakeScenario(const ScenarioConfig& config) {
  Rng rng(config.seed);
  SchedulingProblem problem;
  problem.horizon_start = 0;
  problem.horizon_length = config.horizon_length;
  const int h = config.horizon_length;

  problem.baseline_imbalance_kwh.resize(static_cast<size_t>(h));
  problem.imbalance_penalty_eur.resize(static_cast<size_t>(h));
  problem.market.buy_price_eur.resize(static_cast<size_t>(h));
  problem.market.sell_price_eur.resize(static_cast<size_t>(h));
  problem.market.max_buy_kwh = config.max_buy_kwh;
  problem.market.max_sell_kwh = config.max_sell_kwh;

  for (int s = 0; s < h; ++s) {
    double frac = static_cast<double>(s) / h;
    // Evening-peak deficit, midday RES surplus.
    double deficit = std::exp(-std::pow((frac - 0.78) / 0.10, 2)) +
                     0.5 * std::exp(-std::pow((frac - 0.33) / 0.08, 2));
    double surplus = 0.9 * std::exp(-std::pow((frac - 0.55) / 0.12, 2));
    problem.baseline_imbalance_kwh[static_cast<size_t>(s)] =
        config.imbalance_amplitude_kwh * (deficit - surplus) +
        rng.Gaussian(0.0, 0.05 * config.imbalance_amplitude_kwh);

    bool peak = (frac > 0.70 && frac < 0.90) || (frac > 0.28 && frac < 0.40);
    problem.imbalance_penalty_eur[static_cast<size_t>(s)] =
        config.penalty_eur_per_kwh * (peak ? config.peak_penalty_factor : 1.0);
    // Market prices wobble mildly around their levels.
    problem.market.buy_price_eur[static_cast<size_t>(s)] =
        config.buy_price_eur * rng.Uniform(0.9, 1.1);
    problem.market.sell_price_eur[static_cast<size_t>(s)] =
        config.sell_price_eur * rng.Uniform(0.9, 1.1);
  }

  problem.offers.reserve(static_cast<size_t>(config.num_offers));
  for (int i = 0; i < config.num_offers; ++i) {
    flexoffer::FlexOffer fo;
    fo.id = static_cast<flexoffer::FlexOfferId>(i) + 1;
    fo.owner = 0;
    int dur = static_cast<int>(
        rng.UniformInt(config.min_duration, config.max_duration));
    int64_t max_tf = std::min<int64_t>(config.max_time_flexibility,
                                       static_cast<int64_t>(h - dur));
    int64_t tf = rng.UniformInt(0, std::max<int64_t>(0, max_tf));
    TimeSlice earliest = rng.UniformInt(0, static_cast<int64_t>(h - dur) - tf);
    fo.earliest_start = earliest;
    fo.latest_start = earliest + tf;
    fo.creation_time = 0;
    fo.assignment_before = fo.earliest_start;

    bool production = rng.Bernoulli(config.production_fraction);
    fo.profile.reserve(static_cast<size_t>(dur));
    for (int j = 0; j < dur; ++j) {
      double emax = rng.Uniform(config.min_slice_energy_kwh,
                                config.max_slice_energy_kwh);
      double emin = config.no_energy_flexibility
                        ? emax
                        : emax * (1.0 - rng.Uniform(0.0, config.max_energy_flex));
      flexoffer::EnergyRange r;
      if (production) {
        r.min_kwh = -emax;
        r.max_kwh = -emin;
      } else {
        r.min_kwh = emin;
        r.max_kwh = emax;
      }
      fo.profile.push_back(r);
    }
    fo.unit_price_eur = rng.Uniform(0.01, 0.04);
    problem.offers.push_back(std::move(fo));
  }
  return problem;
}

}  // namespace mirabel::scheduling
