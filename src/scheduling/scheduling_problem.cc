#include "scheduling/scheduling_problem.h"

#include <cmath>
#include <utility>

#include "scheduling/compiled_problem.h"

namespace mirabel::scheduling {

using flexoffer::FlexOffer;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

Status SchedulingProblem::Validate() const {
  if (horizon_length <= 0) {
    return Status::InvalidArgument("horizon_length must be positive");
  }
  size_t h = static_cast<size_t>(horizon_length);
  if (baseline_imbalance_kwh.size() != h ||
      imbalance_penalty_eur.size() != h ||
      market.buy_price_eur.size() != h || market.sell_price_eur.size() != h) {
    return Status::InvalidArgument(
        "per-slice vectors must match horizon_length");
  }
  for (size_t i = 0; i < offers.size(); ++i) {
    MIRABEL_RETURN_IF_ERROR(offers[i].Validate());
    if (offers[i].earliest_start < horizon_start ||
        offers[i].LatestEnd() > horizon_start + horizon_length) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " does not fit inside the horizon");
    }
  }
  return Status::OK();
}

double CostEvaluator::SliceEnergy(const FlexOffer& offer, int64_t j,
                                  double lambda) {
  const auto& band = offer.profile[static_cast<size_t>(j)];
  return band.min_kwh + lambda * band.Flexibility();
}

CostEvaluator::CostEvaluator(const SchedulingProblem& problem)
    : problem_(&problem),
      compiled_(std::make_unique<CompiledProblem>(problem)),
      workspace_(std::make_unique<ScheduleWorkspace>(*compiled_)) {
  // The workspace starts on the default schedule; mirror it.
  workspace_->ExportSchedule(&schedule_);
}

CostEvaluator::~CostEvaluator() = default;
CostEvaluator::CostEvaluator(CostEvaluator&&) noexcept = default;
CostEvaluator& CostEvaluator::operator=(CostEvaluator&&) noexcept = default;

Status CostEvaluator::SetSchedule(const Schedule& schedule) {
  MIRABEL_RETURN_IF_ERROR(workspace_->SetSchedule(*compiled_, schedule));
  schedule_ = schedule;
  return Status::OK();
}

ScheduleCost CostEvaluator::Cost() const {
  return workspace_->Cost(*compiled_);
}

Result<double> CostEvaluator::EvaluateTotal(const Schedule& schedule) const {
  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<ScheduleWorkspace>(*compiled_);
  }
  return scratch_->EvaluateInto(*compiled_, schedule);
}

Result<double> CostEvaluator::TryMove(size_t index,
                                      const OfferAssignment& candidate) const {
  if (index >= compiled_->num_offers) {
    return Status::OutOfRange("offer index");
  }
  if (candidate.start < compiled_->earliest_start[index] ||
      candidate.start > compiled_->latest_start[index] ||
      candidate.fill < 0.0 || candidate.fill > 1.0) {
    return Status::OutOfRange("candidate assignment infeasible");
  }
  return workspace_->TryMove(*compiled_, index, candidate.start,
                             candidate.fill);
}

Status CostEvaluator::ApplyMove(size_t index,
                                const OfferAssignment& candidate) {
  if (index >= compiled_->num_offers) {
    return Status::OutOfRange("offer index");
  }
  if (candidate.start < compiled_->earliest_start[index] ||
      candidate.start > compiled_->latest_start[index] ||
      candidate.fill < 0.0 || candidate.fill > 1.0) {
    return Status::OutOfRange("candidate assignment infeasible");
  }
  workspace_->ApplyMove(*compiled_, index, candidate.start, candidate.fill);
  schedule_.assignments[index] = candidate;
  return Status::OK();
}

const std::vector<double>& CostEvaluator::net_kwh() const {
  return workspace_->net_kwh();
}

std::vector<ScheduledFlexOffer> CostEvaluator::ToScheduledOffers() const {
  return workspace_->ExportScheduledOffers(*compiled_);
}

}  // namespace mirabel::scheduling
