#include "scheduling/bnb_scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <utility>

#include "common/stopwatch.h"

namespace mirabel::scheduling {

namespace {

/// Relative safety slack subtracted from the lower bound: the bound's
/// interval argument is exact in real arithmetic but its accumulation order
/// differs from the kernel's, so without slack a bound could exceed the true
/// kernel cost by a few ulps and prune the optimum. 1e-9 relative is ~1000x
/// the observed ulp noise and ~1000x smaller than the 1e-12-margin cost
/// differences the search is asked to distinguish... in relative terms it
/// sits safely between the two scales for EUR-magnitude costs.
constexpr double kBoundSlackRel = 1e-9;

/// Acceptance margin of the incumbent, matching ExhaustiveScheduler's
/// `cost < best - 1e-12` so both searches agree on which improvements count.
constexpr double kAcceptMargin = 1e-12;

}  // namespace

BnbBound::BnbBound(const CompiledProblem& cp, std::vector<size_t> order)
    : cp_(&cp),
      order_(std::move(order)),
      horizon_(static_cast<size_t>(cp.horizon_length)) {
  const size_t n = order_.size();
  const size_t h = horizon_;

  // Suffix contribution tables, innermost row (all offers assigned) = 0.
  // Row d adds offer order_[d]'s possible slice contributions onto row d+1.
  suffix_min_.assign((n + 1) * h, 0.0);
  suffix_max_.assign((n + 1) * h, 0.0);
  for (size_t d = n; d-- > 0;) {
    double* smin = &suffix_min_[d * h];
    double* smax = &suffix_max_[d * h];
    const double* nmin = &suffix_min_[(d + 1) * h];
    const double* nmax = &suffix_max_[(d + 1) * h];
    std::copy(nmin, nmin + h, smin);
    std::copy(nmax, nmax + h, smax);

    const size_t i = order_[d];
    const int64_t dur = cp.duration[i];
    const int64_t es = cp.earliest_start[i] - cp.horizon_start;
    const int64_t ls = cp.latest_start[i] - cp.horizon_start;
    for (int64_t s = es; s < ls + dur; ++s) {
      // Profile positions offer i can occupy at slice s across its window.
      const int64_t j_lo = std::max<int64_t>(0, s - ls);
      const int64_t j_hi = std::min<int64_t>(dur - 1, s - es);
      if (j_lo > j_hi) continue;
      double cmin = std::numeric_limits<double>::infinity();
      double cmax = -std::numeric_limits<double>::infinity();
      for (int64_t j = j_lo; j <= j_hi; ++j) {
        const double e = cp.SliceEnergy(i, j, 1.0);
        cmin = std::min(cmin, e);
        cmax = std::max(cmax, e);
      }
      // Unless every start covers s, "not placed here" (0) is reachable too.
      const bool always_covered = ls <= s && s < es + dur;
      if (!always_covered) {
        cmin = std::min(cmin, 0.0);
        cmax = std::max(cmax, 0.0);
      }
      smin[s] += cmin;
      smax[s] += cmax;
    }
  }

  // Start-independent activation total and the fixed residual total every
  // completion must hit (offers always place their full profile inside the
  // horizon), both at fill = 1.
  total_energy_ =
      std::accumulate(cp.baseline_kwh.begin(), cp.baseline_kwh.end(), 0.0);
  for (size_t i = 0; i < cp.num_offers; ++i) {
    double abs_kwh = 0.0;
    for (int64_t j = 0; j < cp.duration[i]; ++j) {
      const double e = cp.SliceEnergy(i, j, 1.0);
      abs_kwh += std::fabs(e);
      total_energy_ += e;
    }
    act_total_ += cp.unit_price_eur[i] * abs_kwh;
  }

  net_.assign(cp.baseline_kwh.begin(), cp.baseline_kwh.end());
  slice_term_.resize(h);
  slice_argmin_.resize(h);
  const double* smin = suffix_min_.data();
  const double* smax = suffix_max_.data();
  for (size_t s = 0; s < h; ++s) {
    slice_term_[s] = MinSliceTerm(s, net_[s] + smin[s], net_[s] + smax[s],
                                  &slice_argmin_[s]);
  }
  sum_ = std::accumulate(slice_term_.begin(), slice_term_.end(), 0.0);
}

double BnbBound::MinSliceTerm(size_t s, double lo, double hi,
                              double* argmin) const {
  // A piecewise-linear function attains its interval minimum at an endpoint
  // or an interior breakpoint (no convexity assumption needed).
  double best = SliceResidualCost(*cp_, s, lo);
  *argmin = lo;
  const double at_hi = SliceResidualCost(*cp_, s, hi);
  if (at_hi < best) {
    best = at_hi;
    *argmin = hi;
  }
  const double breakpoints[3] = {-cp_->max_sell_kwh, 0.0, cp_->max_buy_kwh};
  for (double b : breakpoints) {
    if (b > lo && b < hi) {
      const double at_b = SliceResidualCost(*cp_, s, b);
      if (at_b < best) {
        best = at_b;
        *argmin = b;
      }
    }
  }
  return best;
}

void BnbBound::Push(flexoffer::TimeSlice start) {
  const CompiledProblem& cp = *cp_;
  const size_t i = order_[depth_];
  const int64_t dur = cp.duration[i];
  const int64_t es = cp.earliest_start[i] - cp.horizon_start;
  const int64_t ls = cp.latest_start[i] - cp.horizon_start;
  const int64_t s0 = start - cp.horizon_start;

  frames_.push_back({trail_.size(), sum_});
  // The whole reach window changes row (the offer leaves the suffix), not
  // just the slices the chosen start covers.
  for (int64_t s = es; s < ls + dur; ++s) {
    trail_.push_back(
        {static_cast<uint32_t>(s), net_[s], slice_term_[s], slice_argmin_[s]});
  }
  for (int64_t j = 0; j < dur; ++j) {
    net_[s0 + j] += cp.SliceEnergy(i, j, 1.0);
  }
  ++depth_;
  const double* smin = &suffix_min_[depth_ * horizon_];
  const double* smax = &suffix_max_[depth_ * horizon_];
  for (int64_t s = es; s < ls + dur; ++s) {
    slice_term_[s] = MinSliceTerm(s, net_[s] + smin[s], net_[s] + smax[s],
                                  &slice_argmin_[s]);
  }
  // Fresh horizon sweep instead of delta updates: every term is a pure
  // function of (net_, depth_) and net_ is trail-restored, so the bound of a
  // node is identical no matter along which path the search reached it.
  sum_ = std::accumulate(slice_term_.begin(), slice_term_.end(), 0.0);
}

void BnbBound::Pop() {
  const LevelFrame frame = frames_.back();
  frames_.pop_back();
  --depth_;
  for (size_t k = trail_.size(); k-- > frame.trail_begin;) {
    const TrailEntry& e = trail_[k];
    net_[e.slice] = e.net;
    slice_term_[e.slice] = e.term;
    slice_argmin_[e.slice] = e.argmin;
  }
  trail_.resize(frame.trail_begin);
  sum_ = frame.saved_sum;
}

double BnbBound::LowerBound() const {
  const CompiledProblem& cp = *cp_;
  const double* smin = &suffix_min_[depth_ * horizon_];
  const double* smax = &suffix_max_[depth_ * horizon_];

  // Conservation correction: the per-slice minimizers rarely sum to the
  // fixed completion total, and the deficit has to be bought back along the
  // slices' linear pieces. Filling it with the globally cheapest slopes
  // relaxes the per-slice piece ordering, so the correction never
  // over-charges — the bound stays sound — while pricing in that imbalance
  // energy cannot simply vanish from every slice at once.
  double argmin_total = 0.0;
  for (size_t s = 0; s < horizon_; ++s) argmin_total += slice_argmin_[s];
  const double delta = total_energy_ - argmin_total;
  const double dir = delta >= 0.0 ? 1.0 : -1.0;
  double need = std::fabs(delta);
  double extra = 0.0;
  if (need > 0.0) {
    segments_.clear();
    const double breakpoints[3] = {-cp.max_sell_kwh, 0.0, cp.max_buy_kwh};
    for (size_t s = 0; s < horizon_; ++s) {
      const double limit = dir > 0.0 ? net_[s] + smax[s] : net_[s] + smin[s];
      double from = slice_argmin_[s];
      if (dir * (limit - from) <= 0.0) continue;
      // Walk the exact PL pieces from the minimizer toward the reachable
      // end: nearest breakpoint first, the interval end last.
      double cost_from = SliceResidualCost(cp, s, from);
      while (dir * (limit - from) > 0.0) {
        double to = limit;
        for (double b : breakpoints) {
          if (dir * (b - from) > 0.0 && dir * (to - b) > 0.0) to = b;
        }
        const double cost_to = SliceResidualCost(cp, s, to);
        const double cap = dir * (to - from);
        segments_.push_back({(cost_to - cost_from) / cap, cap});
        from = to;
        cost_from = cost_to;
      }
    }
    // The greedy-fill argument needs every piece to cost something
    // (non-negative slope away from the minimizer), which holds whenever
    // slice costs are convex — any sane sell <= buy <= penalty ordering. A
    // pathological price set that breaks it forfeits the correction, never
    // soundness.
    bool convex = true;
    for (const Segment& seg : segments_) {
      if (seg.slope < 0.0) {
        convex = false;
        break;
      }
    }
    if (convex) {
      std::sort(segments_.begin(), segments_.end(),
                [](const Segment& a, const Segment& b) {
                  return a.slope < b.slope;
                });
      for (const Segment& seg : segments_) {
        if (need <= 0.0) break;
        const double take = std::min(need, seg.capacity);
        extra += take * seg.slope;
        need -= take;
      }
      // Capacity exhausted with need left can only be fp noise (a true
      // completion witnesses feasibility); dropping the remainder only
      // lowers the bound.
    }
  }

  const double raw = act_total_ + sum_ + extra;
  return raw - kBoundSlackRel * (1.0 + std::fabs(raw));
}

double BnbBound::LeafCost() const {
  double cost = act_total_;
  for (size_t s = 0; s < horizon_; ++s) {
    cost += SliceResidualCost(*cp_, s, net_[s]);
  }
  return cost;
}

BranchAndBoundScheduler::BranchAndBoundScheduler() : config_() {}

BranchAndBoundScheduler::BranchAndBoundScheduler(const Config& config)
    : config_(config) {}

Result<SchedulingResult> BranchAndBoundScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem cp(problem);
  return RunCompiled(cp, options);
}

Result<SchedulingResult> BranchAndBoundScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  Stopwatch watch;
  const size_t n = cp.num_offers;

  if (n == 0) {
    ScheduleWorkspace ws(cp);
    SchedulingResult result;
    ws.ExportSchedule(&result.schedule);
    result.cost = ws.Cost(cp);
    result.iterations = 1;
    result.optimal_proven = true;
    result.trace.push_back({watch.ElapsedSeconds(), result.cost.total()});
    return result;
  }

  // Warm start: the incumbent the search has to beat (and the anytime
  // answer if the deadline expires before the first improving leaf).
  std::unique_ptr<Scheduler> warm_sched =
      config_.warm_start ? config_.warm_start()
                         : std::make_unique<GreedyScheduler>();
  SchedulerOptions warm_opts = options;
  if (options.time_budget_s > 0.0) {
    warm_opts.time_budget_s = config_.warm_start_share * options.time_budget_s;
  }
  if (options.max_iterations > 0) {
    warm_opts.max_iterations = std::max(
        1, static_cast<int>(config_.warm_start_share *
                            static_cast<double>(options.max_iterations)));
  } else if (options.time_budget_s <= 0.0) {
    // Fully unbounded options: give the warm start one bounded pass; the
    // search itself then runs to proven optimality.
    warm_opts.max_iterations = static_cast<int>(n) + 1;
  }
  MIRABEL_ASSIGN_OR_RETURN(SchedulingResult warm,
                           warm_sched->RunCompiled(cp, warm_opts));

  SchedulingResult result;
  result.schedule = std::move(warm.schedule);
  result.iterations = warm.iterations;
  result.trace = std::move(warm.trace);
  double best_cost = warm.cost.total();

  // Assign the least time-flexible offers first: their residual intervals
  // collapse early, which is where the bound gains most of its power.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&cp](size_t a, size_t b) {
    return cp.latest_start[a] - cp.earliest_start[a] <
           cp.latest_start[b] - cp.earliest_start[b];
  });

  BnbBound bound(cp, order);
  BudgetGate gate(watch, options.time_budget_s);
  const int64_t node_cap =
      options.max_iterations > 0
          ? std::max<int64_t>(1, options.max_iterations - warm.iterations)
          : 0;

  std::vector<flexoffer::TimeSlice> path(n);
  std::vector<flexoffer::TimeSlice> best_starts;  // empty: warm start stands

  // Offers without time flexibility are forced moves, not decisions: assign
  // them up front (the flexibility ordering put them first) so they neither
  // deepen the tree nor count as search nodes.
  size_t first_free = 0;
  while (first_free < n &&
         cp.latest_start[order[first_free]] ==
             cp.earliest_start[order[first_free]]) {
    path[first_free] = cp.earliest_start[order[first_free]];
    bound.Push(path[first_free]);
    ++first_free;
  }

  int64_t nodes = 0;
  bool aborted = false;

  if (first_free == n) {
    // Fully forced instance: the single completion is the candidate.
    const double cost = bound.LeafCost();
    if (cost < best_cost - kAcceptMargin) {
      best_cost = cost;
      best_starts = path;
      result.trace.push_back({watch.ElapsedSeconds(), cost});
    }
  }

  struct Child {
    flexoffer::TimeSlice start;
    double child_bound;
  };
  std::vector<std::vector<Child>> kids(n);

  // Every level probes its children's bounds first and expands survivors
  // best-first, leaves included: the most promising subtree tightens the
  // incumbent before its siblings are re-tested, and a leaf whose bound
  // cannot beat the incumbent is pruned at the probe, not expanded.
  const std::function<void(size_t)> dfs = [&](size_t depth) {
    const size_t i = order[depth];
    const flexoffer::TimeSlice es = cp.earliest_start[i];
    const flexoffer::TimeSlice ls = cp.latest_start[i];
    const bool leaf_level = depth + 1 == n;

    if (gate.Exhausted(ls - es + 1)) {
      aborted = true;
      return;
    }
    std::vector<Child>& children = kids[depth];
    children.clear();
    for (flexoffer::TimeSlice start = es; start <= ls; ++start) {
      bound.Push(start);
      const double b = bound.LowerBound();
      bound.Pop();
      if (b < best_cost - kAcceptMargin) children.push_back({start, b});
    }
    std::sort(children.begin(), children.end(),
              [](const Child& a, const Child& b) {
                return a.child_bound != b.child_bound
                           ? a.child_bound < b.child_bound
                           : a.start < b.start;
              });
    for (const Child& child : children) {
      if (aborted) return;
      // The incumbent may have improved since the probe; re-test.
      if (child.child_bound >= best_cost - kAcceptMargin) continue;
      if (gate.Exhausted() || (node_cap > 0 && nodes >= node_cap)) {
        aborted = true;
        return;
      }
      ++nodes;
      bound.Push(child.start);
      path[depth] = child.start;
      if (leaf_level) {
        const double cost = bound.LeafCost();
        if (cost < best_cost - kAcceptMargin) {
          best_cost = cost;
          best_starts = path;
          result.trace.push_back({watch.ElapsedSeconds(), cost});
        }
      } else {
        dfs(depth + 1);
      }
      bound.Pop();
    }
  };
  if (first_free < n) dfs(first_free);

  if (!best_starts.empty()) {
    // The search improved on the warm start: materialize its assignment
    // (search order -> offer order, fill = 1).
    result.schedule.assignments.resize(n);
    for (size_t d = 0; d < n; ++d) {
      result.schedule.assignments[order[d]] = {best_starts[d], 1.0};
    }
  }
  result.nodes_visited = nodes;
  result.optimal_proven = !aborted;
  const int64_t room = std::numeric_limits<int>::max() - result.iterations;
  result.iterations += static_cast<int>(std::min(nodes, room));

  // Canonical final recompute — the same path the exhaustive study takes, so
  // identical argmin schedules produce bit-identical costs.
  ScheduleWorkspace ws(cp);
  MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, result.schedule));
  result.cost = ws.Cost(cp);
  return result;
}

}  // namespace mirabel::scheduling
