#ifndef MIRABEL_SCHEDULING_BNB_SCHEDULER_H_
#define MIRABEL_SCHEDULING_BNB_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scheduling/compiled_problem.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

/// Incremental lower bound of the branch-and-bound scheduler, exposed as its
/// own class so tests can probe bound soundness at arbitrary tree nodes.
///
/// The search fixes start slots for a prefix of `order` (fill = 1, the
/// exhaustive-study search space); the bound must under-estimate the kernel
/// cost of EVERY completion of that prefix. It is built from two exact
/// ingredients plus one relaxation:
///
///  * Activation is a constant: at fill = 1 an offer's activation cost
///    `unit * sum_j |e_j|` does not depend on its start, so the activation
///    term of every node equals `act_total_`.
///  * Per-slice residual intervals: `net_[s]` carries baseline plus the
///    assigned prefix; `suffix_min/max_[d][s]` carry the least / greatest
///    contribution the unassigned suffix `order[d..n)` can make to slice `s`
///    (including 0 when an offer can be placed to avoid the slice). The
///    suffix tables are precomputed per depth, so descending/backtracking
///    never accumulates floating-point drift in them; `net_` is restored
///    from a value trail on Pop(), not by subtraction, for the same reason.
///  * Each slice is bounded from below: SliceResidualCost is piecewise
///    linear in the residual with breakpoints at -max_sell, 0 and max_buy,
///    so its minimum over the residual interval is attained at an interval
///    endpoint or an interior breakpoint — O(1) per slice.
///  * Energy conservation ties the slices back together: every completion's
///    residuals sum to the same fixed total (baseline plus all offer energy
///    at fill = 1), while the per-slice minimizers usually do not. The
///    deficit must be paid for along the slices' linear pieces, and charging
///    it against the globally cheapest slopes (a separable allocation
///    relaxation, greedy over exact PL pieces) is a sound correction that
///    makes the bound strong enough to actually prune: without it every
///    slice pretends its residual independently reaches the cheapest point.
///
/// LowerBound() = act_total_ + sum_s min-slice-terms + conservation
/// correction, minus a relative safety slack (~1e-9) that covers the
/// ulp-level difference between this accumulation and the kernel's own
/// evaluation order, so the bound never exceeds the true kernel cost of any
/// completion.
class BnbBound {
 public:
  /// `cp` must outlive the bound. `order` is the assignment order of the
  /// search (a permutation of [0, cp.num_offers)).
  BnbBound(const CompiledProblem& cp, std::vector<size_t> order);

  /// Fixes offer `order[depth()]` at `start` (fill = 1) and updates the
  /// bound over the offer's reachable slices.
  void Push(flexoffer::TimeSlice start);

  /// Undoes the most recent Push() exactly (value-trail restore).
  void Pop();

  /// Lower bound on the kernel cost of every completion of the current
  /// prefix (at fill = 1 for the unassigned offers).
  double LowerBound() const;

  /// Exact slice-cost sweep of the complete assignment; requires
  /// depth() == num_offers.
  double LeafCost() const;

  size_t depth() const { return depth_; }
  const std::vector<size_t>& order() const { return order_; }

 private:
  /// Minimum of SliceResidualCost(s, r) over r in [lo, hi]; *argmin gets the
  /// minimizing residual (needed by the conservation correction).
  double MinSliceTerm(size_t s, double lo, double hi, double* argmin) const;

  const CompiledProblem* cp_;
  std::vector<size_t> order_;
  size_t depth_ = 0;
  size_t horizon_ = 0;

  /// Flattened (num_offers + 1) x horizon tables: row d is the summed
  /// min/max possible contribution of the unassigned suffix order[d..n).
  std::vector<double> suffix_min_;
  std::vector<double> suffix_max_;
  /// Start-independent activation total at fill = 1.
  double act_total_ = 0.0;
  /// Fixed residual total of every completion: sum of baseline plus every
  /// offer's full profile energy at fill = 1.
  double total_energy_ = 0.0;

  /// Baseline plus the assigned prefix, per slice.
  std::vector<double> net_;
  /// Per-slice bound term at the current node; sum_ is their running sum.
  std::vector<double> slice_term_;
  /// Residual minimizing slice s's cost within its current interval.
  std::vector<double> slice_argmin_;
  double sum_ = 0.0;

  struct TrailEntry {
    uint32_t slice;
    double net;
    double term;
    double argmin;
  };
  /// One exact linear piece of a slice's cost away from its minimizer;
  /// LowerBound() scratch for the conservation correction.
  struct Segment {
    double slope;
    double capacity;
  };
  mutable std::vector<Segment> segments_;
  struct LevelFrame {
    size_t trail_begin;
    double saved_sum;
  };
  std::vector<TrailEntry> trail_;
  std::vector<LevelFrame> frames_;
};

/// Branch-and-bound search over start-slot assignments on the compiled
/// kernel — the optimal scheduler the §6 optimality study lacked: it proves
/// optimality over the same space the exhaustive odometer enumerates
/// (start combinations at fill = 1) while pruning with BnbBound instead of
/// visiting every combination.
///
/// Depth-first search, offers ordered by ascending time flexibility (the
/// most constrained offers branch first, collapsing the residual intervals
/// early); children of a node are probed, sorted by their lower bound and
/// expanded best-first; a child whose bound cannot improve the incumbent by
/// more than the 1e-12 acceptance margin is pruned. The initial incumbent
/// comes from a configurable warm-start scheduler (the fallback-scheduler
/// idiom; default: randomized greedy) which also receives a share of the
/// budget, and the deadline is honored via BudgetGate: on expiry the best
/// incumbent is returned with `optimal_proven` false.
///
/// Note the proof is relative to the fill = 1 search space: a warm-start
/// incumbent that used intermediate fill levels may beat every fill = 1
/// schedule, in which case it survives and `optimal_proven` means "no start
/// combination at fill 1 improves on it".
class BranchAndBoundScheduler : public Scheduler {
 public:
  struct Config {
    /// Warm-start scheduler factory; null resolves to GreedyScheduler.
    std::function<std::unique_ptr<Scheduler>()> warm_start;
    /// Share of the budget (time or iterations) given to the warm start.
    double warm_start_share = 0.15;
  };

  BranchAndBoundScheduler();
  explicit BranchAndBoundScheduler(const Config& config);
  std::string Name() const override { return "BranchAndBound"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem; see GreedyScheduler::RunCompiled.
  /// `options.max_iterations` (when > 0) caps expanded search nodes after
  /// the warm start's share, keeping iteration-capped runs deterministic.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_BNB_SCHEDULER_H_
