#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

HybridScheduler::HybridScheduler() : HybridScheduler(Config()) {}

HybridScheduler::HybridScheduler(const Config& config) : config_(config) {}

Result<SchedulingResult> HybridScheduler::Run(const SchedulingProblem& problem,
                                              const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  // Compile once; both phases run on the same SoA form.
  CompiledProblem compiled(problem);
  return RunCompiled(compiled, options);
}

Result<SchedulingResult> HybridScheduler::RunCompiled(
    const CompiledProblem& compiled, const SchedulerOptions& options) {
  Stopwatch watch;

  // Phase 1: one fast greedy construction seeds the population.
  GreedyScheduler greedy;
  SchedulerOptions greedy_options = options;
  if (options.time_budget_s > 0) {
    greedy_options.time_budget_s =
        config_.construction_share * options.time_budget_s;
  }
  if (options.max_iterations > 0) {
    greedy_options.max_iterations = std::max(
        1, static_cast<int>(config_.construction_share *
                            static_cast<double>(options.max_iterations)));
  }
  MIRABEL_ASSIGN_OR_RETURN(SchedulingResult constructed,
                           greedy.RunCompiled(compiled, greedy_options));

  // Phase 2: evolutionary refinement seeded with the greedy incumbent. The
  // EA's population initialisation already includes the all-earliest
  // baseline; we splice the greedy schedule in by evolving a copy of the
  // problem through a custom-seeded EA run.
  EvolutionaryScheduler::Config ea_config = config_.evolution;
  EvolutionaryScheduler ea(ea_config);
  SchedulerOptions ea_options = options;
  if (options.time_budget_s > 0) {
    // Keep the remainder strictly positive: 0.0 means "no time limit" to
    // the EA, so a construction phase that consumed the whole budget (plus
    // compile time) would otherwise hand phase 2 an unbounded run when no
    // iteration cap is set. An epsilon budget exhausts at the EA's first
    // gate sample, bounding phase 2 to its population initialisation.
    ea_options.time_budget_s =
        std::max(1e-6, options.time_budget_s - watch.ElapsedSeconds());
  }
  if (options.max_iterations > 0) {
    ea_options.max_iterations =
        std::max(1, options.max_iterations - constructed.iterations);
  }
  ea_options.seed = options.seed + 1;
  MIRABEL_ASSIGN_OR_RETURN(SchedulingResult refined,
                           ea.RunCompiled(compiled, ea_options));

  // Keep whichever schedule is better; stitch the traces together.
  SchedulingResult result;
  result.iterations = constructed.iterations + refined.iterations;
  if (refined.cost.total() < constructed.cost.total()) {
    result.schedule = refined.schedule;
    result.cost = refined.cost;
  } else {
    result.schedule = constructed.schedule;
    result.cost = constructed.cost;
  }
  result.trace = constructed.trace;
  double offset = constructed.trace.empty() ? 0.0 : constructed.trace.back().time_s;
  double floor_cost = constructed.cost.total();
  for (const CostTracePoint& p : refined.trace) {
    if (p.best_cost_eur < floor_cost) {
      result.trace.push_back({offset + p.time_s, p.best_cost_eur});
      floor_cost = p.best_cost_eur;
    }
  }
  return result;
}

}  // namespace mirabel::scheduling
