#ifndef MIRABEL_SCHEDULING_EXECUTOR_H_
#define MIRABEL_SCHEDULING_EXECUTOR_H_

#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace mirabel::scheduling {

/// Runs a batch of independent tasks to completion (blocking). Tasks only
/// touch their own slot, so implementations need no synchronization beyond
/// the completion barrier.
///
/// This is the scheduling layer's concurrency seam: the layer cannot depend
/// on the EDMS layer, so consumers that want their fan-out on the shared
/// edms::WorkerPool plug in edms::WorkerPoolExecutor (src/edms/
/// pool_executor.h) while everything else defaults to plain threads.
/// PortfolioScheduler races its members through it; StochasticEvaluator
/// fans its per-scenario evaluations out through it.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void RunAll(std::vector<std::function<void()>> tasks) = 0;
};

/// Default executor: one std::thread per task, joined before returning.
/// A single task runs inline on the calling thread.
class ThreadExecutor : public Executor {
 public:
  void RunAll(std::vector<std::function<void()>> tasks) override {
    if (tasks.size() == 1) {
      tasks.front()();
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(tasks.size());
    for (auto& task : tasks) threads.emplace_back(std::move(task));
    for (auto& thread : threads) thread.join();
  }
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_EXECUTOR_H_
