#include "scheduling/stochastic_evaluator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>

namespace mirabel::scheduling {

Result<ScenarioEnsemble> ScenarioEnsemble::FromResidualPool(
    std::span<const double> residual_pool, int64_t horizon, int num_scenarios,
    uint64_t seed) {
  if (residual_pool.empty()) {
    return Status::InvalidArgument("residual pool is empty");
  }
  if (horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (num_scenarios < 1) {
    return Status::InvalidArgument("num_scenarios must be >= 1");
  }
  double pool_mean = 0.0;
  for (double r : residual_pool) pool_mean += r;
  pool_mean /= static_cast<double>(residual_pool.size());

  Rng rng(seed);
  ScenarioEnsemble ensemble;
  ensemble.horizon_ = horizon;
  ensemble.perturbations_.resize(static_cast<size_t>(num_scenarios));
  for (BaselinePerturbation& scenario : ensemble.perturbations_) {
    scenario.delta_kwh.resize(static_cast<size_t>(horizon));
    for (double& d : scenario.delta_kwh) {
      d = residual_pool[rng.Index(residual_pool.size())] - pool_mean;
    }
  }
  return ensemble;
}

Result<ScenarioEnsemble> ScenarioEnsemble::FromPerturbations(
    std::vector<BaselinePerturbation> perturbations) {
  if (perturbations.empty()) {
    return Status::InvalidArgument("ensemble needs at least one scenario");
  }
  size_t horizon = perturbations.front().delta_kwh.size();
  if (horizon == 0) {
    return Status::InvalidArgument("scenario perturbations must be non-empty");
  }
  for (const BaselinePerturbation& p : perturbations) {
    if (p.delta_kwh.size() != horizon) {
      return Status::InvalidArgument(
          "all scenario perturbations must share one length");
    }
  }
  ScenarioEnsemble ensemble;
  ensemble.horizon_ = static_cast<int64_t>(horizon);
  ensemble.perturbations_ = std::move(perturbations);
  return ensemble;
}

ScenarioEnsemble ScenarioEnsemble::Degenerate(int64_t horizon) {
  ScenarioEnsemble ensemble;
  ensemble.horizon_ = horizon;
  ensemble.perturbations_.resize(1);
  ensemble.perturbations_.front().delta_kwh.assign(
      static_cast<size_t>(horizon), 0.0);
  return ensemble;
}

bool ScenarioEnsemble::IsDegenerate() const {
  if (perturbations_.size() != 1) return false;
  for (double d : perturbations_.front().delta_kwh) {
    if (d != 0.0) return false;
  }
  return true;
}

std::vector<double> ScenarioEnsemble::MeanPerturbation() const {
  std::vector<double> mean(static_cast<size_t>(horizon_), 0.0);
  for (const BaselinePerturbation& p : perturbations_) {
    for (size_t s = 0; s < mean.size(); ++s) mean[s] += p.delta_kwh[s];
  }
  double inv = 1.0 / static_cast<double>(perturbations_.size());
  for (double& m : mean) m *= inv;
  return mean;
}

Result<StochasticEvaluator> StochasticEvaluator::Create(
    const CompiledProblem& base, const ScenarioEnsemble& ensemble,
    const Config& config) {
  if (ensemble.num_scenarios() < 1) {
    return Status::InvalidArgument("ensemble has no scenarios");
  }
  if (ensemble.horizon() != base.horizon_length) {
    return Status::InvalidArgument(
        "ensemble horizon " + std::to_string(ensemble.horizon()) +
        " does not match problem horizon " +
        std::to_string(base.horizon_length));
  }
  if (!(config.cvar_alpha > 0.0) || config.cvar_alpha > 1.0) {
    return Status::InvalidArgument("cvar_alpha must be in (0, 1]");
  }

  StochasticEvaluator evaluator;
  evaluator.config_ = config;
  size_t k = static_cast<size_t>(ensemble.num_scenarios());
  evaluator.problems_.reserve(k);
  evaluator.workspaces_.reserve(k);
  for (const BaselinePerturbation& scenario : ensemble.perturbations()) {
    CompiledProblem perturbed = base;  // shares `source`; tables are copied
    for (size_t s = 0; s < perturbed.baseline_kwh.size(); ++s) {
      perturbed.baseline_kwh[s] += scenario.delta_kwh[s];
    }
    evaluator.problems_.push_back(std::move(perturbed));
    evaluator.workspaces_.emplace_back(evaluator.problems_.back());
  }
  evaluator.scenario_costs_.assign(k, 0.0);
  evaluator.sorted_costs_.assign(k, 0.0);
  evaluator.task_statuses_.assign(
      static_cast<size_t>(std::max(config.max_parallel_tasks, 1)),
      Status::OK());
  return evaluator;
}

Status StochasticEvaluator::EvaluateRange(const Schedule& schedule,
                                          size_t begin, size_t end) {
  for (size_t s = begin; s < end; ++s) {
    Result<double> cost = workspaces_[s].EvaluateInto(problems_[s], schedule);
    MIRABEL_RETURN_IF_ERROR(cost.status());
    scenario_costs_[s] = cost.value();
  }
  return Status::OK();
}

Result<StochasticCost> StochasticEvaluator::Evaluate(
    const Schedule& schedule) {
  const size_t k = problems_.size();
  size_t num_tasks =
      std::min(k, static_cast<size_t>(std::max(config_.max_parallel_tasks, 1)));
  if (config_.executor == nullptr || num_tasks <= 1) {
    MIRABEL_RETURN_IF_ERROR(EvaluateRange(schedule, 0, k));
  } else {
    // Contiguous scenario ranges, one per task; each task writes only its
    // own cost slots and status slot, so the executor's completion barrier
    // is the only synchronization needed. The chunking never affects the
    // result: the reduction below always runs serially in scenario order.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_tasks);
    size_t per_task = (k + num_tasks - 1) / num_tasks;
    for (size_t task = 0; task < num_tasks; ++task) {
      size_t begin = task * per_task;
      size_t end = std::min(k, begin + per_task);
      tasks.push_back([this, &schedule, task, begin, end] {
        task_statuses_[task] = EvaluateRange(schedule, begin, end);
      });
    }
    config_.executor->RunAll(std::move(tasks));
    for (size_t task = 0; task < num_tasks; ++task) {
      MIRABEL_RETURN_IF_ERROR(task_statuses_[task]);
    }
  }

  // Serial reduction in scenario order — the other half of the
  // parallel-equals-serial bit-identity contract.
  StochasticCost out;
  for (size_t s = 0; s < k; ++s) out.mean_eur += scenario_costs_[s];
  out.mean_eur /= static_cast<double>(k);
  for (size_t s = 0; s < k; ++s) {
    double d = scenario_costs_[s] - out.mean_eur;
    out.variance += d * d;
  }
  out.variance /= static_cast<double>(k);

  // CVaR-alpha: mean of the worst ceil(alpha * K) scenario costs. The sort
  // is in-place on the preallocated scratch (no steady-state allocation);
  // ties are broken by value only, so the tail mean is order-independent up
  // to identical values and the accumulation order is deterministic.
  std::copy(scenario_costs_.begin(), scenario_costs_.end(),
            sorted_costs_.begin());
  std::sort(sorted_costs_.begin(), sorted_costs_.end(),
            std::greater<double>());
  size_t tail = static_cast<size_t>(
      std::ceil(config_.cvar_alpha * static_cast<double>(k)));
  tail = std::clamp<size_t>(tail, 1, k);
  for (size_t s = 0; s < tail; ++s) out.cvar_eur += sorted_costs_[s];
  out.cvar_eur /= static_cast<double>(tail);
  out.worst_eur = sorted_costs_.front();
  return out;
}

}  // namespace mirabel::scheduling
