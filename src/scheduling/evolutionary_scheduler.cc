#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

namespace {

struct Individual {
  Schedule schedule;
  double cost = 0.0;
};

Schedule RandomSchedule(const SchedulingProblem& problem, Rng* rng) {
  Schedule s;
  s.assignments.reserve(problem.offers.size());
  for (const auto& fo : problem.offers) {
    s.assignments.push_back(
        {fo.earliest_start + rng->UniformInt(0, fo.TimeFlexibility()),
         rng->NextDouble()});
  }
  return s;
}

}  // namespace

EvolutionaryScheduler::EvolutionaryScheduler()
    : EvolutionaryScheduler(Config()) {}

EvolutionaryScheduler::EvolutionaryScheduler(const Config& config)
    : config_(config) {}

Result<SchedulingResult> EvolutionaryScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  if (config_.population_size < 2 || config_.elites >= config_.population_size) {
    return Status::InvalidArgument("degenerate EA configuration");
  }
  Stopwatch watch;
  Rng rng(options.seed);
  CostEvaluator evaluator(problem);
  if (problem.offers.empty()) {
    SchedulingResult result;
    result.schedule = evaluator.schedule();
    result.cost = evaluator.Cost();
    result.trace.push_back({watch.ElapsedSeconds(), result.cost.total()});
    return result;
  }

  auto evaluate = [&](const Schedule& s) -> Result<double> {
    return evaluator.EvaluateTotal(s);
  };

  // Initial population: random schedules plus the all-earliest baseline.
  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(config_.population_size));
  {
    Individual baseline;
    baseline.schedule = CostEvaluator(problem).schedule();
    MIRABEL_ASSIGN_OR_RETURN(baseline.cost, evaluate(baseline.schedule));
    population.push_back(std::move(baseline));
  }
  while (population.size() < static_cast<size_t>(config_.population_size)) {
    Individual ind;
    ind.schedule = RandomSchedule(problem, &rng);
    MIRABEL_ASSIGN_OR_RETURN(ind.cost, evaluate(ind.schedule));
    population.push_back(std::move(ind));
  }

  auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) { return a.cost < b.cost; });
  SchedulingResult result;
  result.schedule = best_it->schedule;
  double best_cost = best_it->cost;
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});

  auto out_of_budget = [&]() {
    if (options.time_budget_s > 0 &&
        watch.ElapsedSeconds() >= options.time_budget_s) {
      return true;
    }
    if (options.max_iterations > 0 &&
        result.iterations >= options.max_iterations) {
      return true;
    }
    return false;
  };

  auto tournament = [&]() -> const Individual& {
    size_t winner = rng.Index(population.size());
    for (int k = 1; k < config_.tournament_size; ++k) {
      size_t challenger = rng.Index(population.size());
      if (population[challenger].cost < population[winner].cost) {
        winner = challenger;
      }
    }
    return population[winner];
  };

  const size_t genes = problem.offers.size();
  while (!out_of_budget()) {
    std::vector<Individual> next;
    next.reserve(population.size());

    // Elitism: carry the best individuals over unchanged.
    std::partial_sort(
        population.begin(), population.begin() + config_.elites,
        population.end(),
        [](const Individual& a, const Individual& b) { return a.cost < b.cost; });
    for (int e = 0; e < config_.elites; ++e) next.push_back(population[static_cast<size_t>(e)]);

    while (next.size() < population.size()) {
      const Individual& parent_a = tournament();
      const Individual& parent_b = tournament();
      Individual child;
      child.schedule.assignments.resize(genes);

      // Uniform crossover over the per-offer genes.
      bool crossover = rng.Bernoulli(config_.crossover_rate);
      for (size_t g = 0; g < genes; ++g) {
        const Individual& source =
            (crossover && rng.Bernoulli(0.5)) ? parent_b : parent_a;
        child.schedule.assignments[g] = source.schedule.assignments[g];
      }

      // Mutation.
      for (size_t g = 0; g < genes; ++g) {
        if (!rng.Bernoulli(config_.mutation_rate)) continue;
        const flexoffer::FlexOffer& fo = problem.offers[g];
        OfferAssignment& a = child.schedule.assignments[g];
        int64_t window = fo.TimeFlexibility();
        if (window > 0) {
          int64_t span = std::max<int64_t>(
              1, static_cast<int64_t>(
                     std::llround(config_.start_mutation_span *
                                  static_cast<double>(window))));
          a.start += rng.UniformInt(-span, span);
          a.start = std::clamp(a.start, fo.earliest_start, fo.latest_start);
        }
        a.fill = Clamp(a.fill + rng.Gaussian(0.0, config_.fill_mutation_sigma),
                       0.0, 1.0);
      }

      MIRABEL_ASSIGN_OR_RETURN(child.cost, evaluate(child.schedule));
      next.push_back(std::move(child));
    }

    population = std::move(next);
    ++result.iterations;

    for (const Individual& ind : population) {
      if (ind.cost < best_cost - 1e-12) {
        best_cost = ind.cost;
        result.schedule = ind.schedule;
        result.trace.push_back({watch.ElapsedSeconds(), best_cost});
      }
    }
  }

  MIRABEL_RETURN_IF_ERROR(evaluator.SetSchedule(result.schedule));
  result.cost = evaluator.Cost();
  return result;
}

}  // namespace mirabel::scheduling
