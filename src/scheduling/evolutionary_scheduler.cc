#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

namespace {

struct Individual {
  Schedule schedule;
  double cost = 0.0;
};

Schedule RandomSchedule(const CompiledProblem& cp, Rng* rng) {
  Schedule s;
  s.assignments.reserve(cp.num_offers);
  for (size_t i = 0; i < cp.num_offers; ++i) {
    s.assignments.push_back(
        {cp.earliest_start[i] +
             rng->UniformInt(0, cp.latest_start[i] - cp.earliest_start[i]),
         rng->NextDouble()});
  }
  return s;
}

}  // namespace

EvolutionaryScheduler::EvolutionaryScheduler()
    : EvolutionaryScheduler(Config()) {}

EvolutionaryScheduler::EvolutionaryScheduler(const Config& config)
    : config_(config) {}

Result<SchedulingResult> EvolutionaryScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem compiled(problem);
  return RunCompiled(compiled, options);
}

Result<SchedulingResult> EvolutionaryScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  if (config_.population_size < 2 || config_.elites >= config_.population_size) {
    return Status::InvalidArgument("degenerate EA configuration");
  }
  Stopwatch watch;
  Rng rng(options.seed);
  // One pooled workspace serves every child evaluation: EvaluateInto() is a
  // single fused validate+accumulate+sweep pass with zero allocations, where
  // the pre-kernel path built a whole scratch CostEvaluator (two vector
  // allocations plus a thrown-away default-schedule accumulation) per child
  // per generation.
  ScheduleWorkspace ws(cp);
  if (cp.num_offers == 0) {
    SchedulingResult result;
    ws.ExportSchedule(&result.schedule);
    result.cost = ws.Cost(cp);
    result.trace.push_back({watch.ElapsedSeconds(), result.cost.total()});
    return result;
  }

  auto evaluate = [&](const Schedule& s) -> Result<double> {
    return ws.EvaluateInto(cp, s);
  };

  // Initial population: random schedules plus the all-earliest baseline.
  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(config_.population_size));
  {
    Individual baseline;
    baseline.schedule.assignments.reserve(cp.num_offers);
    for (size_t i = 0; i < cp.num_offers; ++i) {
      baseline.schedule.assignments.push_back({cp.earliest_start[i], 1.0});
    }
    MIRABEL_ASSIGN_OR_RETURN(baseline.cost, evaluate(baseline.schedule));
    population.push_back(std::move(baseline));
  }
  while (population.size() < static_cast<size_t>(config_.population_size)) {
    Individual ind;
    ind.schedule = RandomSchedule(cp, &rng);
    MIRABEL_ASSIGN_OR_RETURN(ind.cost, evaluate(ind.schedule));
    population.push_back(std::move(ind));
  }

  auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) { return a.cost < b.cost; });
  SchedulingResult result;
  result.schedule = best_it->schedule;
  double best_cost = best_it->cost;
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});

  BudgetGate gate(watch, options.time_budget_s);
  auto out_of_budget = [&]() {
    // One generation evaluates ~population_size children; charge them all at
    // the generation boundary (the old code also only read the clock here).
    if (gate.Exhausted(config_.population_size)) return true;
    if (options.max_iterations > 0 &&
        result.iterations >= options.max_iterations) {
      return true;
    }
    return false;
  };

  auto tournament = [&]() -> const Individual& {
    size_t winner = rng.Index(population.size());
    for (int k = 1; k < config_.tournament_size; ++k) {
      size_t challenger = rng.Index(population.size());
      if (population[challenger].cost < population[winner].cost) {
        winner = challenger;
      }
    }
    return population[winner];
  };

  const size_t genes = cp.num_offers;
  while (!out_of_budget()) {
    std::vector<Individual> next;
    next.reserve(population.size());

    // Elitism: carry the best individuals over unchanged.
    std::partial_sort(
        population.begin(), population.begin() + config_.elites,
        population.end(),
        [](const Individual& a, const Individual& b) { return a.cost < b.cost; });
    for (int e = 0; e < config_.elites; ++e) next.push_back(population[static_cast<size_t>(e)]);

    while (next.size() < population.size()) {
      const Individual& parent_a = tournament();
      const Individual& parent_b = tournament();
      Individual child;
      child.schedule.assignments.resize(genes);

      // Uniform crossover over the per-offer genes.
      bool crossover = rng.Bernoulli(config_.crossover_rate);
      for (size_t g = 0; g < genes; ++g) {
        const Individual& source =
            (crossover && rng.Bernoulli(0.5)) ? parent_b : parent_a;
        child.schedule.assignments[g] = source.schedule.assignments[g];
      }

      // Mutation.
      for (size_t g = 0; g < genes; ++g) {
        if (!rng.Bernoulli(config_.mutation_rate)) continue;
        OfferAssignment& a = child.schedule.assignments[g];
        int64_t window = cp.latest_start[g] - cp.earliest_start[g];
        if (window > 0) {
          int64_t span = std::max<int64_t>(
              1, static_cast<int64_t>(
                     std::llround(config_.start_mutation_span *
                                  static_cast<double>(window))));
          a.start += rng.UniformInt(-span, span);
          a.start = std::clamp(a.start, cp.earliest_start[g],
                               cp.latest_start[g]);
        }
        a.fill = Clamp(a.fill + rng.Gaussian(0.0, config_.fill_mutation_sigma),
                       0.0, 1.0);
      }

      MIRABEL_ASSIGN_OR_RETURN(child.cost, evaluate(child.schedule));
      next.push_back(std::move(child));
    }

    population = std::move(next);
    ++result.iterations;

    for (const Individual& ind : population) {
      if (ind.cost < best_cost - 1e-12) {
        best_cost = ind.cost;
        result.schedule = ind.schedule;
        result.trace.push_back({watch.ElapsedSeconds(), best_cost});
      }
    }
  }

  // Final full recompute of the incumbent in the pooled workspace.
  MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, result.schedule));
  result.cost = ws.Cost(cp);
  return result;
}

}  // namespace mirabel::scheduling
