#ifndef MIRABEL_SCHEDULING_REFERENCE_EVALUATOR_H_
#define MIRABEL_SCHEDULING_REFERENCE_EVALUATOR_H_

#include <vector>

#include "common/result.h"
#include "scheduling/scheduling_problem.h"

namespace mirabel::scheduling {

/// The pre-kernel CostEvaluator, kept verbatim as the equivalence oracle for
/// the SoA scheduling kernel (CompiledProblem / ScheduleWorkspace) and as the
/// honest "old path" baseline in bench/scheduler_kernel.cc. Everything the
/// kernel computes — slice energies, per-slice market responses, move deltas,
/// cost sweeps — must stay bit-identical to this implementation;
/// tests/scheduling_kernel_test.cc asserts it. Do not optimise this class:
/// its pointer-chasing AoS profile walks, per-EvaluateTotal scratch
/// construction and redundant default-schedule accumulation are the measured
/// baseline the kernel is judged against.
class ReferenceCostEvaluator {
 public:
  /// `problem` must outlive the evaluator and must be Validate()d.
  explicit ReferenceCostEvaluator(const SchedulingProblem& problem);

  /// Replaces the current schedule, recomputing state from scratch.
  Status SetSchedule(const Schedule& schedule);

  /// Full cost of the current schedule (full sweep per call).
  ScheduleCost Cost() const;

  /// Total cost of `schedule` via a freshly constructed scratch evaluator
  /// (the old EA child-evaluation path, double accumulation included).
  Result<double> EvaluateTotal(const Schedule& schedule) const;

  /// Cost delta of moving offer `index` to `candidate`.
  Result<double> TryMove(size_t index, const OfferAssignment& candidate) const;

  /// Applies a move (must be valid).
  Status ApplyMove(size_t index, const OfferAssignment& candidate);

  const Schedule& schedule() const { return schedule_; }
  const std::vector<double>& net_kwh() const { return net_kwh_; }

  static double SliceEnergy(const flexoffer::FlexOffer& offer, int64_t j,
                            double lambda);

 private:
  double SliceCost(size_t slice, double residual) const;
  void Accumulate(size_t index, const OfferAssignment& a, double sign);

  const SchedulingProblem* problem_;
  Schedule schedule_;
  std::vector<double> net_kwh_;
  double flex_activation_eur_ = 0.0;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_REFERENCE_EVALUATOR_H_
