#ifndef MIRABEL_SCHEDULING_COMPILED_PROBLEM_H_
#define MIRABEL_SCHEDULING_COMPILED_PROBLEM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "scheduling/scheduling_problem.h"

namespace mirabel::scheduling {

/// A SchedulingProblem preprocessed once into flat structure-of-arrays form,
/// the read-only half of the scheduling kernel. The §6 metaheuristics are
/// anytime algorithms — candidate-evaluation throughput *is* schedule
/// quality — so the hot loops must not chase FlexOffer pointers or re-derive
/// per-band values. Layout:
///
///   per offer i (parallel arrays, length num_offers):
///     earliest_start[i] latest_start[i] duration[i] unit_price_eur[i]
///     profile_offset[i]  -- index of the offer's first band, below
///   flattened profile bands (length profile_offset[num_offers]):
///     min_kwh[]  flex_kwh[]          (flex = max - min per band)
///   per horizon slice s (parallel arrays, length horizon_length):
///     baseline_kwh[s] penalty_eur[s] buy_price_eur[s] sell_price_eur[s]
///
/// The slice energy of offer i at profile position j under fill level f is
///   min_kwh[profile_offset[i] + j] + f * flex_kwh[profile_offset[i] + j]
/// — bit-identical to CostEvaluator::SliceEnergy on the source offer.
///
/// The source problem must outlive the compiled form (offer ids and the
/// compatibility accessors still read it).
struct CompiledProblem {
  CompiledProblem() = default;
  /// Compiles `problem`, which must outlive this object and must already be
  /// Validate()d (same precondition the CostEvaluator always had).
  explicit CompiledProblem(const SchedulingProblem& problem);

  flexoffer::TimeSlice horizon_start = 0;
  int64_t horizon_length = 0;
  size_t num_offers = 0;
  /// Longest offer profile; sizes the workspace scratch buffers.
  int64_t max_duration = 0;

  std::vector<flexoffer::TimeSlice> earliest_start;
  std::vector<flexoffer::TimeSlice> latest_start;
  std::vector<int64_t> duration;
  std::vector<double> unit_price_eur;
  /// length num_offers + 1; profile_offset[i]..profile_offset[i+1] indexes
  /// offer i's bands in min_kwh / flex_kwh.
  std::vector<size_t> profile_offset;

  std::vector<double> min_kwh;
  std::vector<double> flex_kwh;

  std::vector<double> baseline_kwh;
  std::vector<double> penalty_eur;
  std::vector<double> buy_price_eur;
  std::vector<double> sell_price_eur;
  double max_buy_kwh = 0.0;
  double max_sell_kwh = 0.0;

  const SchedulingProblem* source = nullptr;

  /// Slice energy of offer `i` at profile position `j` under fill `fill`.
  double SliceEnergy(size_t i, int64_t j, double fill) const {
    size_t b = profile_offset[i] + static_cast<size_t>(j);
    return min_kwh[b] + fill * flex_kwh[b];
  }
};

/// Combined imbalance + market cost of slice `s` if its net residual were
/// `residual`: the closed-form per-slice market response (buy while the buy
/// price undercuts the penalty, sell surplus while the sell price is
/// positive, caps applied). This is the exact expression the workspace's
/// slice-cost cache evaluates — exposed as a free function so bound
/// computations (the branch-and-bound scheduler) can price hypothetical
/// residuals without a workspace. As a function of `residual` it is convex
/// piecewise-linear with breakpoints at -max_sell_kwh, 0 and max_buy_kwh
/// (for the usual price ordering sell <= buy <= penalty).
double SliceResidualCost(const CompiledProblem& cp, size_t s, double residual);

/// Branch-free form of SliceResidualCost, the per-slice primitive of the
/// fast kernel (SchedulerOptions::fast_math): the three residual branches
/// are folded into max/min/select arithmetic so the sweep loops vectorize.
/// Value-equal to SliceResidualCost for every input (the folded branches
/// only ever add exact zeros); the fast paths still differ from the exact
/// ones in *accumulation* order, never per slice.
inline double SliceResidualCostBranchless(double residual, double penalty,
                                          double buy_price, double sell_price,
                                          double max_buy_kwh,
                                          double max_sell_kwh) {
  const double pos = residual > 0.0 ? residual : 0.0;
  const double neg = residual < 0.0 ? -residual : 0.0;
  const double bought =
      buy_price < penalty ? (pos < max_buy_kwh ? pos : max_buy_kwh) : 0.0;
  const double sold =
      sell_price >= 0.0 ? (neg < max_sell_kwh ? neg : max_sell_kwh) : 0.0;
  return (bought * buy_price - sold * sell_price) +
         (pos - bought + neg - sold) * penalty;
}

inline double SliceResidualCostFast(const CompiledProblem& cp, size_t s,
                                    double residual) {
  return SliceResidualCostBranchless(residual, cp.penalty_eur[s],
                                     cp.buy_price_eur[s], cp.sell_price_eur[s],
                                     cp.max_buy_kwh, cp.max_sell_kwh);
}

/// Prices every residual in `net[0..n)` and returns the summed slice cost
/// (imbalance + market) using split accumulators, dispatched at runtime to
/// an AVX2+FMA sweep on x86-64 hosts that support it. fast_math only: the
/// split accumulation (and FMA contraction on the AVX2 path) changes the
/// float summation order versus the exact serial sweep.
double FastResidualSweep(const CompiledProblem& cp, const double* net,
                         size_t n);

/// True when FastResidualSweep dispatches to the AVX2+FMA path on this host
/// (reported by the bench so speedups are attributable).
bool FastKernelUsesAvx2();

/// The mutable half of the kernel: one candidate schedule plus every derived
/// quantity the cost model needs, with all buffers allocated up front so the
/// steady-state evaluate / TryMove / ApplyMove loop performs zero heap
/// allocations (asserted by tests/scheduling_kernel_test.cc with a counting
/// global operator new).
///
/// Cached state per slice s:
///   net_kwh[s]             baseline + scheduled flex (pre-market residual)
///   slice_imbalance_eur[s] penalty cost of the residual after market trades
///   slice_market_eur[s]    signed market cash flow of the slice
/// plus the running flex-activation total. The per-slice caches are pure
/// functions of net_kwh[s], refreshed whenever a slice's net load changes, so
/// Cost() is a branch-free sum and TryMove charges each touched slice's
/// *current* cost from the cache instead of recomputing it per candidate.
///
/// Every arithmetic expression matches the pre-kernel CostEvaluator term for
/// term and in evaluation order, so schedules, costs and deltas are
/// bit-identical to the pre-kernel implementation (the equivalence oracle in
/// src/scheduling/reference_evaluator.h enforces this in tests).
class ScheduleWorkspace {
 public:
  /// Allocates all buffers for `cp`. The workspace starts on the default
  /// schedule (every offer at its earliest start, fill = 1).
  explicit ScheduleWorkspace(const CompiledProblem& cp);

  /// Re-binds nothing; recomputes the default schedule from scratch.
  void ResetToDefault(const CompiledProblem& cp);

  /// Replaces the schedule after validating it (OutOfRange like the shim's
  /// SetSchedule); full single-pass recompute.
  Status SetSchedule(const CompiledProblem& cp, const Schedule& schedule);

  /// Replaces the schedule without validation; full single-pass recompute.
  void SetAssignmentsUnchecked(const CompiledProblem& cp,
                               std::span<const flexoffer::TimeSlice> starts,
                               std::span<const double> fills);

  /// Fused EA child evaluation "into" this (pooled) workspace: validates
  /// `schedule`, replaces the state in one pass and returns the total cost.
  /// This is the kernel replacement for the old EvaluateTotal scratch
  /// evaluator — no construction, no double accumulation, no allocation.
  Result<double> EvaluateInto(const CompiledProblem& cp,
                              const Schedule& schedule);

  /// fast_math variant of EvaluateInto: same validation and state
  /// replacement, but the net-load accumulation uses per-offer split
  /// activation accumulators and the residual sweep runs through
  /// FastResidualSweep (vectorized, AVX2-dispatched). Within 1e-9 relative
  /// of EvaluateInto; never bit-identical to it by contract.
  Result<double> EvaluateIntoFast(const CompiledProblem& cp,
                                  const Schedule& schedule);

  /// Value trail for delta-replay child evaluation (fast_math): every slice
  /// and gene a replayed diff touches is snapshotted *by value*, so
  /// RollbackDelta restores the workspace bit-identically no matter what
  /// floating-point path the moves took (the same path-independence trick
  /// the branch-and-bound scheduler's bound trail uses). Reserve() sizes the
  /// buffers so a diff touching every offer replays without allocating.
  class DeltaTrail {
   public:
    void Reserve(const CompiledProblem& cp) {
      moves_.reserve(cp.num_offers);
      slices_.reserve(2 * cp.num_offers *
                      static_cast<size_t>(cp.max_duration));
    }
    bool empty() const { return moves_.empty() && slices_.empty(); }

   private:
    friend class ScheduleWorkspace;
    struct SliceSave {
      size_t slice;
      double net_kwh;
      double cost_eur;
    };
    struct MoveSave {
      size_t offer;
      flexoffer::TimeSlice start;
      double fill;
      double activation_eur;
    };
    std::vector<SliceSave> slices_;
    std::vector<MoveSave> moves_;
  };

  /// Applies one feasible move of a child diff and returns its total-cost
  /// delta (slice costs via the branchless fast form + activation), pushing
  /// value snapshots of everything it touches onto `trail`. Per-move work
  /// is O(duration[i]), independent of the horizon length — the whole
  /// point of delta-replay child evaluation: a child's cost is
  /// CachedCostTotal() of the synced base plus the sum of its diff's deltas.
  ///
  /// Contract (fast_math): the slice-cost caches must be fresh when the
  /// first move of a diff is applied (sync the base via SetSchedule /
  /// SetAssignmentsUnchecked); between the first ApplyMoveDelta and the
  /// closing RollbackDelta only further ApplyMoveDelta calls and the plain
  /// accessors may run — slice_imbalance/market caches are deliberately left
  /// at their base values and would be read stale by Cost().
  double ApplyMoveDelta(const CompiledProblem& cp, size_t i,
                        flexoffer::TimeSlice start, double fill,
                        DeltaTrail* trail);

  /// Restores every value `trail` recorded, in reverse, and clears it. The
  /// workspace is bit-identical to its pre-diff state afterwards.
  void RollbackDelta(DeltaTrail* trail);

  /// Total cost summed from the cached per-slice costs (refreshing them if
  /// stale): flex_activation + sum(slice_cost). This is the delta-replay
  /// base cost. fast_math only — the summation order differs from Cost().
  double CachedCostTotal(const CompiledProblem& cp) const;

  /// Cost delta of moving offer `i` to (start, fill), leaving state
  /// untouched. The candidate must be feasible (validated by the caller /
  /// candidate generator). Computes both energy vectors into scratch.
  double TryMove(const CompiledProblem& cp, size_t i,
                 flexoffer::TimeSlice start, double fill) const;

  /// TryMove with caller-cached energy vectors: `e_cur` are the slice
  /// energies of offer i under its current assignment, `e_new` under the
  /// candidate fill (both length duration[i]). The greedy scan computes each
  /// per-(offer, fill) vector once and slides it across all start
  /// candidates.
  double TryMoveWithEnergies(const CompiledProblem& cp, size_t i,
                             flexoffer::TimeSlice start,
                             std::span<const double> e_cur,
                             std::span<const double> e_new) const;

  /// fast_math variant of TryMoveWithEnergies: instead of walking the whole
  /// [min(start), max(start) + dur) union with two in-range branches per
  /// slice, the footprint is split into old-only / overlap / new-only
  /// segments of branch-free inner loops over the branchless slice cost,
  /// and the slice / activation deltas use split accumulators. Within 1e-9
  /// relative of TryMoveWithEnergies.
  double TryMoveWithEnergiesFast(const CompiledProblem& cp, size_t i,
                                 flexoffer::TimeSlice start,
                                 std::span<const double> e_cur,
                                 std::span<const double> e_new) const;

  /// Applies a feasible move and refreshes the touched slice caches.
  void ApplyMove(const CompiledProblem& cp, size_t i,
                 flexoffer::TimeSlice start, double fill);

  /// Cost breakdown of the current schedule (sum of the per-slice caches in
  /// slice order — bit-identical to the pre-kernel full sweep).
  ScheduleCost Cost(const CompiledProblem& cp) const;

  /// Writes the current assignments into `out` (reuses its capacity).
  void ExportSchedule(Schedule* out) const;

  /// Converts the current schedule into per-offer scheduled flex-offers
  /// (ids from cp.source). Cold path; allocates the result.
  std::vector<flexoffer::ScheduledFlexOffer> ExportScheduledOffers(
      const CompiledProblem& cp) const;

  /// Writes the slice energies of offer `i` under `fill` into `out`
  /// (length >= duration[i]).
  void ComputeEnergies(const CompiledProblem& cp, size_t i, double fill,
                       std::span<double> out) const;

  flexoffer::TimeSlice start(size_t i) const { return starts_[i]; }
  double fill(size_t i) const { return fills_[i]; }
  const std::vector<double>& net_kwh() const { return net_kwh_; }
  double flex_activation_eur() const { return flex_activation_eur_; }

 private:
  /// Adds (+1) / removes (-1) offer i's assignment from net load and
  /// activation cost, without touching the slice-cost caches.
  void Accumulate(const CompiledProblem& cp, size_t i,
                  flexoffer::TimeSlice start, double fill, double sign);

  /// Validates `schedule` (same checks and Status codes as the pre-kernel
  /// SetSchedule) and copies it into starts_/fills_ in the same pass.
  Status ValidateAndCopy(const CompiledProblem& cp, const Schedule& schedule);

  /// Rebuilds net_kwh_ and flex_activation_eur_ from starts_/fills_ with a
  /// register-resident activation accumulator (same accumulation order as
  /// offer-by-offer Accumulate calls, so bit-identical).
  void RecomputeNet(const CompiledProblem& cp);

  /// Refreshes every slice-cost cache entry and clears costs_dirty_.
  void RefreshAllSliceCosts(const CompiledProblem& cp) const;

  /// Lazily refreshes the caches after an EvaluateInto left them stale.
  void EnsureSliceCosts(const CompiledProblem& cp) const {
    if (costs_dirty_) RefreshAllSliceCosts(cp);
  }

  /// Recomputes slice_imbalance_eur / slice_market_eur for slice s from
  /// net_kwh[s]. Exactly the pre-kernel Cost() per-slice branch.
  void RefreshSliceCost(const CompiledProblem& cp, size_t s) const;

  /// Combined cost of slice s if its residual were `residual` (the
  /// pre-kernel SliceCost, market term first).
  double SliceCostAt(const CompiledProblem& cp, size_t s,
                     double residual) const;

  /// Cached combined cost of slice s at its current residual. Stored as its
  /// own array (not slice_market + slice_imbalance) so the value carries the
  /// same expression shape as SliceCostAt — on targets where the compiler
  /// contracts a*b + c*d into an FMA, summing the two cached halves would
  /// differ in the last ulp.
  double CachedSliceCost(size_t s) const { return slice_cost_eur_[s]; }

  /// Full recompute from the current starts_/fills_ arrays.
  void Recompute(const CompiledProblem& cp);

  std::vector<flexoffer::TimeSlice> starts_;
  std::vector<double> fills_;
  std::vector<double> net_kwh_;
  /// The slice-cost caches are logically derived state: EvaluateInto leaves
  /// them stale (costs_dirty_) and the next cache consumer refreshes them,
  /// so a pooled workspace that only ever evaluates children never pays for
  /// them. Mutable for exactly that lazy refresh.
  mutable std::vector<double> slice_imbalance_eur_;
  mutable std::vector<double> slice_market_eur_;
  mutable std::vector<double> slice_cost_eur_;
  mutable bool costs_dirty_ = false;
  double flex_activation_eur_ = 0.0;
  /// Scratch for the energy vectors of TryMove's uncached entry point.
  mutable std::vector<double> e_cur_scratch_;
  mutable std::vector<double> e_new_scratch_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_COMPILED_PROBLEM_H_
