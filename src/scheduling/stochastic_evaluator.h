#ifndef MIRABEL_SCHEDULING_STOCHASTIC_EVALUATOR_H_
#define MIRABEL_SCHEDULING_STOCHASTIC_EVALUATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/executor.h"

namespace mirabel::scheduling {

/// One forecast-error scenario: an additive rewrite of the compiled
/// problem's per-slice baseline table. Positive baseline is a deficit
/// (SchedulingProblem::baseline_imbalance_kwh), so a positive delta_kwh[s]
/// deepens slice s's deficit and a negative one shifts it toward surplus.
struct BaselinePerturbation {
  std::vector<double> delta_kwh;
};

/// K sampled what-if baselines around one point forecast. The paper's
/// forecasts are never exact (§5 tracks forecast error explicitly); this is
/// the uncertainty layer's representation of that error: each scenario is a
/// full per-slice error curve, drawn from the forecasting layer's fitted
/// residual pool (HwtModel::residuals() / EgrvModel::residuals()) or built
/// structurally by the stress-scenario library.
///
/// The scheduling layer cannot depend on forecasting, so the ensemble takes
/// the residual pool as plain data; the EDMS layer does the gluing.
class ScenarioEnsemble {
 public:
  /// Centered bootstrap from a fitted residual pool: every slice of every
  /// scenario is an independent draw pool[i] - mean(pool) under one seeded
  /// generator, so the ensemble is mean-zero by construction and
  /// bit-reproducible per (pool, horizon, K, seed).
  static Result<ScenarioEnsemble> FromResidualPool(
      std::span<const double> residual_pool, int64_t horizon,
      int num_scenarios, uint64_t seed);

  /// Wraps structured scenario curves (the stress-scenario library builds
  /// these). All perturbations must share one non-zero length.
  static Result<ScenarioEnsemble> FromPerturbations(
      std::vector<BaselinePerturbation> perturbations);

  /// The no-uncertainty ensemble: K = 1, all-zero deltas. Under it the
  /// stochastic objective collapses to the point objective (mean = CVaR =
  /// the one scenario's cost), which is what makes RobustScheduler's
  /// degenerate path exactly the wrapped scheduler.
  static ScenarioEnsemble Degenerate(int64_t horizon);

  int num_scenarios() const { return static_cast<int>(perturbations_.size()); }
  int64_t horizon() const { return horizon_; }
  const std::vector<BaselinePerturbation>& perturbations() const {
    return perturbations_;
  }

  /// True for the K = 1 all-zero ensemble (however constructed).
  bool IsDegenerate() const;

  /// Per-slice mean of the scenario deltas, accumulated in scenario order
  /// (deterministic). The expected-baseline problem RobustScheduler plans
  /// one candidate on.
  std::vector<double> MeanPerturbation() const;

 private:
  ScenarioEnsemble() = default;

  int64_t horizon_ = 0;
  std::vector<BaselinePerturbation> perturbations_;
};

/// Distribution of a schedule's total cost across an ensemble.
struct StochasticCost {
  /// Mean scenario cost (EUR), accumulated in scenario order.
  double mean_eur = 0.0;
  /// Population variance of the scenario costs (EUR^2).
  double variance = 0.0;
  /// CVaR at the evaluator's alpha: the mean of the worst ceil(alpha * K)
  /// scenario costs. Always >= mean_eur up to float noise.
  double cvar_eur = 0.0;
  /// Worst single scenario cost (EUR).
  double worst_eur = 0.0;

  /// The risk objective RobustScheduler ranks candidates by:
  /// mean + risk_weight * (CVaR - mean). risk_weight 0 is risk-neutral;
  /// 1 ranks purely by CVaR; values between interpolate.
  double RiskScore(double risk_weight) const {
    return mean_eur + risk_weight * (cvar_eur - mean_eur);
  }
};

/// Scores candidate schedules across a ScenarioEnsemble: one perturbed copy
/// of the compiled problem and one pooled ScheduleWorkspace per scenario,
/// built once at construction, so every Evaluate() is K fused EvaluateInto
/// passes and a serial reduction — zero steady-state heap allocations on the
/// serial path (asserted by tests/stochastic_evaluator_test.cc).
///
/// The per-scenario evaluations are embarrassingly parallel and fan out
/// through the scheduling::Executor seam (the EDMS layer plugs in
/// edms::WorkerPoolExecutor to reuse the shared worker pool). Each task
/// writes only its own contiguous cost slots and the reduction always runs
/// serially in scenario order after the executor's completion barrier, so
/// parallel evaluation is bit-identical to serial. Task closures allocate;
/// the zero-allocation guarantee is serial-path only.
///
/// Not thread-safe: one evaluator per evaluating thread (the workspaces are
/// mutable state). The base problem's source must outlive the evaluator.
class StochasticEvaluator {
 public:
  struct Config {
    /// Tail mass of the CVaR objective, in (0, 1]. 0.1 averages the worst
    /// 10% of scenarios; 1.0 makes CVaR the plain mean.
    double cvar_alpha = 0.1;
    /// Scenario fan-out seam. Null evaluates serially on the caller's
    /// thread. Non-owning; must outlive the evaluator.
    Executor* executor = nullptr;
    /// Upper bound on concurrent executor tasks; scenarios are split into
    /// at most this many contiguous ranges. <= 1 forces the serial path.
    int max_parallel_tasks = 8;
  };

  /// Builds the per-scenario problems (base with baseline_kwh rewritten by
  /// each scenario's delta) and workspaces. The ensemble horizon must match
  /// base.horizon_length and the alpha must be in (0, 1].
  static Result<StochasticEvaluator> Create(const CompiledProblem& base,
                                            const ScenarioEnsemble& ensemble,
                                            const Config& config);

  /// Scores `schedule` across all scenarios. The schedule is validated once
  /// per scenario by EvaluateInto (identical validity across scenarios —
  /// perturbations touch only the baseline table, never windows/profiles).
  Result<StochasticCost> Evaluate(const Schedule& schedule);

  int num_scenarios() const { return static_cast<int>(problems_.size()); }
  double cvar_alpha() const { return config_.cvar_alpha; }

  /// The scenario problems (shared read-only with tests and RobustScheduler,
  /// which plans candidate schedules directly on them).
  const std::vector<CompiledProblem>& scenario_problems() const {
    return problems_;
  }

 private:
  StochasticEvaluator() = default;

  /// Evaluates scenarios [begin, end) into scenario_costs_, stopping at the
  /// first error.
  Status EvaluateRange(const Schedule& schedule, size_t begin, size_t end);

  Config config_;
  std::vector<CompiledProblem> problems_;
  std::vector<ScheduleWorkspace> workspaces_;
  /// Per-scenario cost slots written by the (possibly parallel) evaluation
  /// fan-out and read by the serial reduction.
  std::vector<double> scenario_costs_;
  /// Preallocated scratch for the CVaR tail selection (in-place sort).
  std::vector<double> sorted_costs_;
  /// Per-task status slots of the parallel path.
  std::vector<Status> task_statuses_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_STOCHASTIC_EVALUATOR_H_
