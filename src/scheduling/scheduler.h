#ifndef MIRABEL_SCHEDULING_SCHEDULER_H_
#define MIRABEL_SCHEDULING_SCHEDULER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scheduling/compiled_problem.h"
#include "scheduling/scheduling_problem.h"

namespace mirabel::scheduling {

/// Budget of one scheduling run. The metaheuristics are anytime algorithms:
/// they keep the best schedule found so far and stop on budget exhaustion.
struct SchedulerOptions {
  /// Wall-clock budget in seconds (<= 0: unlimited; supply max_iterations).
  double time_budget_s = 1.0;
  /// Max iterations (greedy: construction+improvement steps; EA:
  /// generations). <= 0: unlimited.
  int max_iterations = 0;
  uint64_t seed = 1;
  /// Opt into the fast kernel: delta-replay EA child evaluation and the
  /// vectorized (split-accumulator, AVX2-dispatched) slice sweeps. Fast-mode
  /// costs agree with the default bit-exact kernel within 1e-9 relative —
  /// never bitwise, because float summation order changes — so the anytime
  /// schedulers may take different (equally feasible) search paths wherever
  /// two candidates' costs differ by less than the float noise. Throughput
  /// converts directly into schedule quality per budget, so an engine that
  /// does not require bit-reproducibility should enable this. Exact-by-
  /// construction schedulers (Exhaustive, BranchAndBound — their bound
  /// soundness is proven against the exact kernel) ignore the flag; the
  /// final SchedulingResult::cost is recomputed on the exact path in every
  /// scheduler regardless.
  bool fast_math = false;
};

/// One point of the cost-over-time convergence trace (Fig. 6 plots cost in
/// EUR against elapsed scheduling time).
struct CostTracePoint {
  double time_s = 0.0;
  double best_cost_eur = 0.0;
};

/// Outcome of one portfolio member's run, reported by PortfolioScheduler
/// (portfolio_scheduler.h) through SchedulingResult::portfolio.
struct PortfolioMemberStats {
  std::string name;
  /// False when the member's run failed (its cost fields are meaningless).
  bool ok = false;
  double cost_eur = 0.0;
  int iterations = 0;
  int64_t nodes_visited = 0;
  bool optimal_proven = false;
  /// Exactly one member of a successful portfolio run wins.
  bool won = false;
};

/// Risk profile of the returned schedule when it came from a
/// RobustScheduler re-ranking pass (robust_scheduler.h).
struct RobustStats {
  /// Candidate schedules planned and re-ranked.
  int candidates = 0;
  /// Ensemble scenarios each candidate was scored on.
  int scenarios = 0;
  /// Mean scenario cost of the winning schedule (EUR).
  double expected_cost_eur = 0.0;
  /// CVaR-alpha of the winning schedule's scenario costs (EUR).
  double cvar_eur = 0.0;
  /// The ranking objective: mean + risk_weight * (CVaR - mean).
  double risk_score_eur = 0.0;
};

/// Outcome of a scheduling run.
struct SchedulingResult {
  Schedule schedule;
  ScheduleCost cost;
  int iterations = 0;
  /// Best-so-far cost improvements over time.
  std::vector<CostTracePoint> trace;
  /// True when the run proved the returned schedule optimal over the
  /// enumerable search space (start-slot combinations at fill = 1, the space
  /// the §6 optimality study explores): exhaustive enumeration that
  /// completed, or a branch-and-bound search that ran to exhaustion of its
  /// open nodes. Anytime heuristics never set it.
  bool optimal_proven = false;
  /// Branch-and-bound: search-tree nodes expanded (partial assignments
  /// descended into after the prune test, complete leaves included). Zero
  /// for schedulers without a search tree.
  int64_t nodes_visited = 0;
  /// Per-member outcomes when this result came from a portfolio race
  /// (empty otherwise).
  std::vector<PortfolioMemberStats> portfolio;
  /// Risk profile when this result came from a RobustScheduler re-ranking
  /// pass (unset otherwise, including its degenerate-ensemble delegation).
  std::optional<RobustStats> robust;
};

/// Interface of the MIRABEL scheduling algorithms (paper §6: "we used two
/// stochastic metaheuristic algorithms ... randomized greedy search and an
/// evolutionary algorithm").
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string Name() const = 0;

  /// Solves `problem` within the budget. The problem must Validate().
  virtual Result<SchedulingResult> Run(const SchedulingProblem& problem,
                                       const SchedulerOptions& options) = 0;

  /// Solves an already-compiled problem. Callers that hold several
  /// schedulers, restarts or follow-up passes over one gate's problem (e.g.
  /// EdmsEngine, HybridScheduler) compile once and share the SoA form
  /// instead of paying one compile per Run(). `compiled.source` must be
  /// non-null, already Validate()d, and outlive the call. The default
  /// delegates to Run() (recompiling); the in-tree schedulers all override
  /// it with a compile-free path.
  virtual Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled, const SchedulerOptions& options) {
    return Run(*compiled.source, options);
  }
};

/// Randomized greedy search (paper §6): "constructs the schedule gradually —
/// at each step a randomly chosen flex-offer is scheduled in the best
/// possible position. This is repeated until all flex-offers have been
/// scheduled." With budget left, the construction repeats from new random
/// orders, and single-offer best-position improvement sweeps refine the
/// incumbent; the best schedule across restarts is kept.
class GreedyScheduler : public Scheduler {
 public:
  struct Config {
    /// Fill-level candidates evaluated per start position.
    std::vector<double> fill_candidates{0.0, 0.5, 1.0};
    /// Max start positions evaluated per offer; windows wider than this are
    /// subsampled evenly (keeps per-offer placement bounded).
    int max_start_candidates = 64;
  };
  GreedyScheduler();
  explicit GreedyScheduler(const Config& config);
  std::string Name() const override { return "GreedySearch"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem (Run() compiles and delegates;
  /// HybridScheduler and EdmsEngine compile once and share it across
  /// phases/passes). `compiled.source` must outlive the call.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

/// Evolutionary algorithm (paper §6, [3]): population of candidate schedules
/// evolved by tournament selection, uniform crossover over the per-offer
/// (start, fill) genes, Gaussian/integer mutation, and elitism.
class EvolutionaryScheduler : public Scheduler {
 public:
  struct Config {
    int population_size = 30;
    int tournament_size = 3;
    double crossover_rate = 0.9;
    /// Per-gene mutation probability.
    double mutation_rate = 0.1;
    /// Start mutation: uniform step within +/- this fraction of the window.
    double start_mutation_span = 0.25;
    /// Fill mutation: Gaussian sigma.
    double fill_mutation_sigma = 0.2;
    int elites = 2;
  };
  EvolutionaryScheduler();
  explicit EvolutionaryScheduler(const Config& config);
  std::string Name() const override { return "EvolutionaryAlgorithm"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem; see GreedyScheduler::RunCompiled.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

/// Exhaustive enumeration over all start-time combinations, for the
/// optimality study of §6 (feasible "only if a few flex-offers need to be
/// scheduled [and] there are no flex-offer energy constraints"). Offers with
/// energy flexibility are scheduled at fill = 1. Refuses instances with more
/// than `max_combinations` candidate schedules. The enumeration honors the
/// time budget via BudgetGate: on exhaustion it returns the best schedule
/// found so far with `optimal_proven` false; a completed enumeration sets
/// `optimal_proven` true.
class ExhaustiveScheduler : public Scheduler {
 public:
  explicit ExhaustiveScheduler(uint64_t max_combinations = 100000000ULL);
  std::string Name() const override { return "Exhaustive"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem (still subject to the combination
  /// limit); see GreedyScheduler::RunCompiled.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

  /// Number of start-time combinations of `problem`. The two overloads
  /// agree: the compiled form carries the same per-offer windows.
  static uint64_t CountCombinations(const SchedulingProblem& problem);
  static uint64_t CountCombinations(const CompiledProblem& cp);

 private:
  uint64_t max_combinations_;
};

/// Hybrid of the paper's two metaheuristics (§6 research directions:
/// "hybridizing the existing ones to improve their efficiency"): a fast
/// randomized-greedy construction consumes a small share of the budget, then
/// an evolutionary refinement spends the rest; the better schedule wins.
class HybridScheduler : public Scheduler {
 public:
  struct Config {
    /// Share of the budget given to the greedy construction phase.
    double construction_share = 0.2;
    EvolutionaryScheduler::Config evolution;
  };
  HybridScheduler();
  explicit HybridScheduler(const Config& config);
  std::string Name() const override { return "Hybrid"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem, shared by both phases; see
  /// GreedyScheduler::RunCompiled.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

// Name-based construction lives in edms::SchedulerRegistry (the scheduling
// layer only defines the algorithms; the EDMS layer owns their wiring).

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_SCHEDULER_H_
