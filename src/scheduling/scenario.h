#ifndef MIRABEL_SCHEDULING_SCENARIO_H_
#define MIRABEL_SCHEDULING_SCENARIO_H_

#include <cstdint>

#include "scheduling/scheduling_problem.h"

namespace mirabel::scheduling {

/// Parameters of a synthetic intra-day BRP scheduling scenario, the workload
/// of the paper's scheduling experiment (§9, Fig. 6: "four different
/// intra-day scheduling scenarios with 10, 100, 1000 and 10000 aggregated
/// flex-offers").
struct ScenarioConfig {
  /// Number of (aggregated) flex-offers to schedule.
  int num_offers = 100;
  /// Scheduling horizon in slices (default: one day of 15-minute slices).
  int horizon_length = 96;
  uint64_t seed = 17;

  /// Peak amplitude of the baseline imbalance curve (kWh per slice). The
  /// curve has a deficit around the evening peak and a surplus around the
  /// midday RES peak.
  double imbalance_amplitude_kwh = 40.0;

  /// Imbalance penalty: off-peak level and peak factor.
  double penalty_eur_per_kwh = 0.25;
  double peak_penalty_factor = 3.0;

  /// Market prices per kWh; buying is dearer than selling earns.
  double buy_price_eur = 0.12;
  double sell_price_eur = 0.05;
  /// Per-slice market liquidity caps (kWh).
  double max_buy_kwh = 25.0;
  double max_sell_kwh = 25.0;

  /// Aggregated-offer shape: duration and per-slice energy ranges.
  int min_duration = 2;
  int max_duration = 12;
  double min_slice_energy_kwh = 1.0;
  double max_slice_energy_kwh = 8.0;
  /// Max fraction of a slice's energy that is dispatchable (energy flex).
  double max_energy_flex = 0.5;
  /// Fraction of production offers (negative energy).
  double production_fraction = 0.3;
  /// When true, per-slice min equals max (the "no energy constraints" case
  /// of the paper's optimality study).
  bool no_energy_flexibility = false;
  /// Upper bound on each offer's time flexibility (slices); the actual value
  /// is drawn uniformly. The optimality study uses small windows.
  int max_time_flexibility = 24;
};

/// Builds a valid SchedulingProblem from the config. Deterministic in seed.
SchedulingProblem MakeScenario(const ScenarioConfig& config);

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_SCENARIO_H_
