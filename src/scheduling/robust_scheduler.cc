#include "scheduling/robust_scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mirabel::scheduling {

RobustScheduler::RobustScheduler() : config_() {}

RobustScheduler::RobustScheduler(Config config) : config_(std::move(config)) {}

Result<SchedulingResult> RobustScheduler::Run(const SchedulingProblem& problem,
                                              const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem cp(problem);
  return RunCompiled(cp, options);
}

Result<SchedulingResult> RobustScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  auto make_inner = [this]() -> std::unique_ptr<Scheduler> {
    if (config_.inner_factory) return config_.inner_factory();
    return std::make_unique<GreedyScheduler>();
  };

  const ScenarioEnsemble ensemble =
      config_.ensemble.has_value() ? *config_.ensemble
                                   : ScenarioEnsemble::Degenerate(
                                         cp.horizon_length);

  // Zero perturbation makes the stochastic objective the point objective, so
  // the inner scheduler already optimizes it — delegate wholesale and return
  // its result untouched (the bit-identity contract of the header).
  if (ensemble.IsDegenerate()) {
    return make_inner()->RunCompiled(cp, options);
  }

  StochasticEvaluator::Config eval_config;
  eval_config.cvar_alpha = config_.cvar_alpha;
  eval_config.executor = config_.executor.get();
  MIRABEL_ASSIGN_OR_RETURN(
      StochasticEvaluator evaluator,
      StochasticEvaluator::Create(cp, ensemble, eval_config));

  // Candidate planning problems: the point forecast, the ensemble's
  // expected baseline, then individual scenario baselines. Each candidate
  // run gets an equal slice of the budget and its own seed offset.
  int scenario_candidates =
      std::clamp(config_.scenario_candidates, 0, ensemble.num_scenarios());
  const int num_candidates = 2 + scenario_candidates;

  CompiledProblem expected = cp;
  std::vector<double> mean_delta = ensemble.MeanPerturbation();
  for (size_t s = 0; s < expected.baseline_kwh.size(); ++s) {
    expected.baseline_kwh[s] += mean_delta[s];
  }

  SchedulerOptions candidate_opts = options;
  if (options.time_budget_s > 0.0) {
    candidate_opts.time_budget_s = options.time_budget_s / num_candidates;
  }

  std::optional<SchedulingResult> best;
  StochasticCost best_cost;
  double best_score = 0.0;
  int total_iterations = 0;
  int64_t total_nodes = 0;
  Status first_error = Status::OK();
  for (int c = 0; c < num_candidates; ++c) {
    const CompiledProblem& planning_problem =
        c == 0 ? cp
        : c == 1
            ? expected
            : evaluator.scenario_problems()[static_cast<size_t>(c - 2)];
    candidate_opts.seed = options.seed + static_cast<uint64_t>(c);
    Result<SchedulingResult> run =
        make_inner()->RunCompiled(planning_problem, candidate_opts);
    if (!run.ok()) {
      if (first_error.ok()) first_error = run.status();
      continue;
    }
    SchedulingResult candidate = std::move(run.value());
    total_iterations += candidate.iterations;
    total_nodes += candidate.nodes_visited;

    MIRABEL_ASSIGN_OR_RETURN(StochasticCost stochastic,
                             evaluator.Evaluate(candidate.schedule));
    double score = stochastic.RiskScore(config_.risk_weight);
    // Strictly-lower wins; ties keep the earliest candidate (the point-
    // forecast schedule), so reruns are deterministic per seed.
    if (!best.has_value() || score < best_score) {
      best = std::move(candidate);
      best_cost = stochastic;
      best_score = score;
    }
  }
  if (!best.has_value()) {
    if (!first_error.ok()) return first_error;
    return Status::Internal("robust scheduler planned no candidate");
  }

  // The winner may have been planned on a perturbed baseline; its reported
  // cost must be the exact point cost on the real problem.
  SchedulingResult result = std::move(*best);
  ScheduleWorkspace ws(cp);
  MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, result.schedule));
  result.cost = ws.Cost(cp);
  result.iterations = total_iterations;
  result.nodes_visited = total_nodes;
  result.optimal_proven = false;  // point-optimality proofs do not transfer
  RobustStats stats;
  stats.candidates = num_candidates;
  stats.scenarios = ensemble.num_scenarios();
  stats.expected_cost_eur = best_cost.mean_eur;
  stats.cvar_eur = best_cost.cvar_eur;
  stats.risk_score_eur = best_score;
  result.robust = stats;
  return result;
}

}  // namespace mirabel::scheduling
