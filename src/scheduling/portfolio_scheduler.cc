#include "scheduling/portfolio_scheduler.h"

#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "scheduling/bnb_scheduler.h"

namespace mirabel::scheduling {

PortfolioScheduler::PortfolioScheduler() : config_() {}

PortfolioScheduler::PortfolioScheduler(Config config)
    : config_(std::move(config)) {}

Result<SchedulingResult> PortfolioScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem cp(problem);
  return RunCompiled(cp, options);
}

Result<SchedulingResult> PortfolioScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  Stopwatch watch;

  std::vector<Member> members = config_.members;
  if (members.empty()) {
    // Default portfolio. Under a fast_math race the anytime members inherit
    // the fast kernel while BranchAndBound is pinned exact (its warm start
    // seeds the incumbent bound, which is only sound on the exact kernel);
    // with fast_math off the overrides are no-ops.
    members.push_back({"", [] { return std::make_unique<GreedyScheduler>(); },
                       std::nullopt});
    members.push_back(
        {"", [] { return std::make_unique<EvolutionaryScheduler>(); },
         std::nullopt});
    members.push_back({"", [] { return std::make_unique<HybridScheduler>(); },
                       std::nullopt});
    members.push_back(
        {"", [] { return std::make_unique<BranchAndBoundScheduler>(); },
         false});
  }
  const size_t m = members.size();

  // Every member races with the full remaining budget (they run
  // concurrently, so the budget is shared wall-clock, not divided) and its
  // own deterministic seed.
  double remaining = options.time_budget_s;
  if (remaining > 0.0) {
    remaining -= watch.ElapsedSeconds();
    // A deadline that expired during setup still runs each member briefly
    // (anytime members return their construction incumbent).
    if (remaining < 1e-3) remaining = 1e-3;
  }

  // One slot per member; a task writes only its own slot, so the executor's
  // completion barrier is the only synchronization needed.
  std::vector<std::optional<Result<SchedulingResult>>> slots(m);
  std::vector<std::string> names(m);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(m);
  for (size_t rank = 0; rank < m; ++rank) {
    tasks.push_back([&, rank] {
      std::unique_ptr<Scheduler> scheduler = members[rank].factory();
      names[rank] = members[rank].name.empty() ? scheduler->Name()
                                               : members[rank].name;
      SchedulerOptions member_opts = options;
      member_opts.time_budget_s = remaining;
      member_opts.seed = options.seed + rank;
      member_opts.fast_math =
          members[rank].fast_math.value_or(options.fast_math);
      slots[rank].emplace(scheduler->RunCompiled(cp, member_opts));
    });
  }

  Executor* executor = config_.executor.get();
  ThreadExecutor fallback;
  if (executor == nullptr) executor = &fallback;
  executor->RunAll(std::move(tasks));

  // Winner: strictly lowest cost, scanning in rank order so ties (and the
  // common all-members-find-the-optimum case) resolve deterministically to
  // the lowest rank.
  size_t winner = m;
  for (size_t rank = 0; rank < m; ++rank) {
    if (!slots[rank].has_value() || !slots[rank]->ok()) continue;
    if (winner == m || slots[rank]->value().cost.total() <
                           slots[winner]->value().cost.total()) {
      winner = rank;
    }
  }
  if (winner == m) {
    for (auto& slot : slots) {
      if (slot.has_value()) return slot->status();
    }
    return Status::Internal("portfolio executor ran no member");
  }

  SchedulingResult result = std::move(slots[winner]->value());
  result.portfolio.assign(m, PortfolioMemberStats{});
  for (size_t rank = 0; rank < m; ++rank) {
    PortfolioMemberStats& stats = result.portfolio[rank];
    stats.name = names[rank];
    stats.ok = slots[rank].has_value() && slots[rank]->ok();
    stats.won = rank == winner;
    if (!stats.ok) continue;
    const SchedulingResult& member_result =
        rank == winner ? result : slots[rank]->value();
    stats.cost_eur = member_result.cost.total();
    stats.iterations = member_result.iterations;
    stats.nodes_visited = member_result.nodes_visited;
    stats.optimal_proven = member_result.optimal_proven;
  }
  return result;
}

}  // namespace mirabel::scheduling
