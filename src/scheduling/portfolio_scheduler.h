#ifndef MIRABEL_SCHEDULING_PORTFOLIO_SCHEDULER_H_
#define MIRABEL_SCHEDULING_PORTFOLIO_SCHEDULER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scheduling/compiled_problem.h"
#include "scheduling/executor.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

/// Races several schedulers on one problem within one budget and returns the
/// best schedule (§6 reports no single winner across instance shapes —
/// greedy wins some workloads, the EA others — so an EDMS that must answer
/// within a gate deadline hedges by running the portfolio concurrently).
///
/// Every member solves the SAME compiled problem with the full remaining
/// budget (members run concurrently, so budget is not divided) and a
/// distinct deterministic seed (options.seed + rank). The winner is the
/// member with the strictly lowest total cost, ties broken by rank order —
/// so with every member run to completion the outcome is deterministic, and
/// the portfolio result is never worse than its best member's.
///
/// Where the members run is a seam: the scheduling layer cannot depend on
/// the EDMS layer, so the pool wiring lives in an Executor implementation
/// (edms::WorkerPoolExecutor in src/edms/pool_executor.h posts one pool
/// strand per member; the default ThreadExecutor spawns plain threads).
class PortfolioScheduler : public Scheduler {
 public:
  /// The task-batch seam now lives in scheduling/executor.h (it is shared
  /// with StochasticEvaluator); these aliases keep the historical nested
  /// names working for executor implementations and tests.
  using Executor = scheduling::Executor;
  using ThreadExecutor = scheduling::ThreadExecutor;

  /// One racing member. `rank` is its index in Config::members: the seed
  /// offset and the tie-break priority (lower rank wins cost ties).
  struct Member {
    /// Reported through PortfolioMemberStats::name; empty resolves to the
    /// scheduler's Name().
    std::string name;
    /// Fresh scheduler per run (members race concurrently; scheduler
    /// instances are not required to be thread-safe).
    std::function<std::unique_ptr<Scheduler>()> factory;
    /// Per-member override of SchedulerOptions::fast_math; unset inherits
    /// the race-wide flag. The default portfolio (Config::members empty)
    /// under a fast_math race runs its anytime members (greedy, EA, hybrid)
    /// fast and pins BranchAndBound exact — its warm start feeds the
    /// incumbent bound, which must stay on the kernel the bound proof is
    /// against. With fast_math off everything stays exact, bit-identical to
    /// the pre-fast-kernel portfolio.
    std::optional<bool> fast_math;
  };

  struct Config {
    /// Empty resolves to the default portfolio: GreedySearch,
    /// EvolutionaryAlgorithm, Hybrid, BranchAndBound (in rank order).
    std::vector<Member> members;
    /// Null resolves to a ThreadExecutor. NOTE: when this is an
    /// edms::WorkerPoolExecutor, Run/RunCompiled must not be invoked from
    /// one of that pool's worker threads — the race blocks on pool tasks
    /// and would deadlock a pool that is busy running it.
    std::shared_ptr<Executor> executor;
  };

  PortfolioScheduler();
  explicit PortfolioScheduler(Config config);
  std::string Name() const override { return "Portfolio"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Runs on an already-compiled problem shared (read-only) by all racing
  /// members; see GreedyScheduler::RunCompiled.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_PORTFOLIO_SCHEDULER_H_
