#include "scheduling/compiled_problem.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace mirabel::scheduling {

using flexoffer::TimeSlice;

CompiledProblem::CompiledProblem(const SchedulingProblem& problem)
    : horizon_start(problem.horizon_start),
      horizon_length(problem.horizon_length),
      num_offers(problem.offers.size()),
      max_buy_kwh(problem.market.max_buy_kwh),
      max_sell_kwh(problem.market.max_sell_kwh),
      source(&problem) {
  earliest_start.reserve(num_offers);
  latest_start.reserve(num_offers);
  duration.reserve(num_offers);
  unit_price_eur.reserve(num_offers);
  profile_offset.reserve(num_offers + 1);

  size_t bands = 0;
  for (const auto& fo : problem.offers) bands += fo.profile.size();
  min_kwh.reserve(bands);
  flex_kwh.reserve(bands);

  profile_offset.push_back(0);
  for (const auto& fo : problem.offers) {
    earliest_start.push_back(fo.earliest_start);
    latest_start.push_back(fo.latest_start);
    duration.push_back(fo.Duration());
    unit_price_eur.push_back(fo.unit_price_eur);
    max_duration = std::max(max_duration, fo.Duration());
    for (const auto& band : fo.profile) {
      min_kwh.push_back(band.min_kwh);
      flex_kwh.push_back(band.Flexibility());
    }
    profile_offset.push_back(min_kwh.size());
  }

  baseline_kwh = problem.baseline_imbalance_kwh;
  penalty_eur = problem.imbalance_penalty_eur;
  buy_price_eur = problem.market.buy_price_eur;
  sell_price_eur = problem.market.sell_price_eur;
}

ScheduleWorkspace::ScheduleWorkspace(const CompiledProblem& cp) {
  starts_.resize(cp.num_offers);
  fills_.resize(cp.num_offers);
  size_t h = static_cast<size_t>(cp.horizon_length);
  net_kwh_.resize(h);
  slice_imbalance_eur_.resize(h);
  slice_market_eur_.resize(h);
  slice_cost_eur_.resize(h);
  e_cur_scratch_.resize(static_cast<size_t>(cp.max_duration));
  e_new_scratch_.resize(static_cast<size_t>(cp.max_duration));
  ResetToDefault(cp);
}

void ScheduleWorkspace::ResetToDefault(const CompiledProblem& cp) {
  for (size_t i = 0; i < cp.num_offers; ++i) {
    starts_[i] = cp.earliest_start[i];
    fills_[i] = 1.0;
  }
  Recompute(cp);
}

Status ScheduleWorkspace::ValidateAndCopy(const CompiledProblem& cp,
                                          const Schedule& schedule) {
  if (schedule.assignments.size() != cp.num_offers) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    if (a.start < cp.earliest_start[i] || a.start > cp.latest_start[i]) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    starts_[i] = schedule.assignments[i].start;
    fills_[i] = schedule.assignments[i].fill;
  }
  return Status::OK();
}

Status ScheduleWorkspace::SetSchedule(const CompiledProblem& cp,
                                      const Schedule& schedule) {
  MIRABEL_RETURN_IF_ERROR(ValidateAndCopy(cp, schedule));
  Recompute(cp);
  return Status::OK();
}

void ScheduleWorkspace::SetAssignmentsUnchecked(
    const CompiledProblem& cp, std::span<const TimeSlice> starts,
    std::span<const double> fills) {
  std::copy(starts.begin(), starts.end(), starts_.begin());
  std::copy(fills.begin(), fills.end(), fills_.begin());
  Recompute(cp);
}

Result<double> ScheduleWorkspace::EvaluateInto(const CompiledProblem& cp,
                                               const Schedule& schedule) {
  // Single merged validate+copy pass. Unlike SetSchedule there is no
  // strong guarantee: on a validation error this (pooled) workspace's state
  // is unspecified — it is overwritten by the next evaluation anyway.
  if (schedule.assignments.size() != cp.num_offers) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    if (a.start < cp.earliest_start[i] || a.start > cp.latest_start[i]) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
    starts_[i] = a.start;
    fills_[i] = a.fill;
  }
  RecomputeNet(cp);
  // One fused sweep produces the total; the per-slice caches are left stale
  // and refreshed lazily by the next TryMove / ApplyMove / Cost, so a pooled
  // child-evaluation workspace never pays for them. The accumulators and
  // their order match the pre-kernel Cost() sweep exactly.
  costs_dirty_ = true;
  double imbalance_eur = 0.0;
  double market_eur = 0.0;
  for (size_t s = 0; s < net_kwh_.size(); ++s) {
    double r = net_kwh_[s];
    const double penalty = cp.penalty_eur[s];
    if (r > 0.0) {
      const double price = cp.buy_price_eur[s];
      double bought = price < penalty ? std::min(r, cp.max_buy_kwh) : 0.0;
      market_eur += bought * price;
      imbalance_eur += (r - bought) * penalty;
    } else if (r < 0.0) {
      const double price = cp.sell_price_eur[s];
      double surplus = -r;
      double sold =
          price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
      market_eur -= sold * price;
      imbalance_eur += (surplus - sold) * penalty;
    }
  }
  return imbalance_eur + flex_activation_eur_ + market_eur;
}

void ScheduleWorkspace::Accumulate(const CompiledProblem& cp, size_t i,
                                   TimeSlice start, double fill, double sign) {
  const size_t base = cp.profile_offset[i];
  const int64_t dur = cp.duration[i];
  const double unit = cp.unit_price_eur[i];
  const size_t s0 = static_cast<size_t>(start - cp.horizon_start);
  for (int64_t j = 0; j < dur; ++j) {
    double e = cp.min_kwh[base + static_cast<size_t>(j)] +
               fill * cp.flex_kwh[base + static_cast<size_t>(j)];
    net_kwh_[s0 + static_cast<size_t>(j)] += sign * e;
    flex_activation_eur_ += sign * unit * std::fabs(e);
  }
}

double SliceResidualCost(const CompiledProblem& cp, size_t s,
                         double residual) {
  const double penalty = cp.penalty_eur[s];
  if (residual > 0.0) {
    const double price = cp.buy_price_eur[s];
    double bought = 0.0;
    if (price < penalty) {
      bought = std::min(residual, cp.max_buy_kwh);
    }
    return bought * price + (residual - bought) * penalty;
  }
  if (residual < 0.0) {
    const double price = cp.sell_price_eur[s];
    double surplus = -residual;
    double sold =
        price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
    return -sold * price + (surplus - sold) * penalty;
  }
  return 0.0;
}

double ScheduleWorkspace::SliceCostAt(const CompiledProblem& cp, size_t s,
                                      double residual) const {
  return SliceResidualCost(cp, s, residual);
}

void ScheduleWorkspace::RefreshSliceCost(const CompiledProblem& cp,
                                         size_t s) const {
  const double r = net_kwh_[s];
  const double penalty = cp.penalty_eur[s];
  if (r > 0.0) {
    const double price = cp.buy_price_eur[s];
    double bought = price < penalty ? std::min(r, cp.max_buy_kwh) : 0.0;
    slice_market_eur_[s] = bought * price;
    slice_imbalance_eur_[s] = (r - bought) * penalty;
    slice_cost_eur_[s] = bought * price + (r - bought) * penalty;
  } else if (r < 0.0) {
    const double price = cp.sell_price_eur[s];
    double surplus = -r;
    double sold =
        price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
    slice_market_eur_[s] = -sold * price;
    slice_imbalance_eur_[s] = (surplus - sold) * penalty;
    slice_cost_eur_[s] = -sold * price + (surplus - sold) * penalty;
  } else {
    slice_market_eur_[s] = 0.0;
    slice_imbalance_eur_[s] = 0.0;
    slice_cost_eur_[s] = 0.0;
  }
}

void ScheduleWorkspace::RecomputeNet(const CompiledProblem& cp) {
  std::copy(cp.baseline_kwh.begin(), cp.baseline_kwh.end(), net_kwh_.begin());
  // The activation sum is one serial dependency chain across all offers in
  // index order (that order is part of the bit-compatibility contract); keep
  // the accumulator in a register for its whole length.
  double activation = 0.0;
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const double* mi = cp.min_kwh.data() + cp.profile_offset[i];
    const double* fl = cp.flex_kwh.data() + cp.profile_offset[i];
    double* net = net_kwh_.data() + (starts_[i] - cp.horizon_start);
    const double fill = fills_[i];
    const double unit = cp.unit_price_eur[i];
    const int64_t dur = cp.duration[i];
    for (int64_t j = 0; j < dur; ++j) {
      double e = mi[j] + fill * fl[j];
      net[j] += e;
      activation += unit * std::fabs(e);
    }
  }
  flex_activation_eur_ = activation;
}

void ScheduleWorkspace::RefreshAllSliceCosts(const CompiledProblem& cp) const {
  for (size_t s = 0; s < net_kwh_.size(); ++s) RefreshSliceCost(cp, s);
  costs_dirty_ = false;
}

void ScheduleWorkspace::Recompute(const CompiledProblem& cp) {
  RecomputeNet(cp);
  RefreshAllSliceCosts(cp);
}

void ScheduleWorkspace::ComputeEnergies(const CompiledProblem& cp, size_t i,
                                        double fill,
                                        std::span<double> out) const {
  const size_t base = cp.profile_offset[i];
  const int64_t dur = cp.duration[i];
  for (int64_t j = 0; j < dur; ++j) {
    out[static_cast<size_t>(j)] =
        cp.min_kwh[base + static_cast<size_t>(j)] +
        fill * cp.flex_kwh[base + static_cast<size_t>(j)];
  }
}

double ScheduleWorkspace::TryMove(const CompiledProblem& cp, size_t i,
                                  TimeSlice start, double fill) const {
  ComputeEnergies(cp, i, fills_[i], e_cur_scratch_);
  ComputeEnergies(cp, i, fill, e_new_scratch_);
  return TryMoveWithEnergies(cp, i, start, e_cur_scratch_, e_new_scratch_);
}

double ScheduleWorkspace::TryMoveWithEnergies(
    const CompiledProblem& cp, size_t i, TimeSlice start,
    std::span<const double> e_cur, std::span<const double> e_new) const {
  EnsureSliceCosts(cp);
  const int64_t dur = cp.duration[i];
  const TimeSlice cur_start = starts_[i];
  double delta = 0.0;

  // Per-slice cost deltas over the union of the two footprints. `before` is
  // charged from the slice-cost cache; `after` is the closed-form market
  // response to the shifted residual.
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start) + dur;
  for (TimeSlice t = lo; t < hi; ++t) {
    size_t s = static_cast<size_t>(t - cp.horizon_start);
    double before = net_kwh_[s];
    double after = before;
    int64_t j_cur = t - cur_start;
    if (j_cur >= 0 && j_cur < dur) {
      after -= e_cur[static_cast<size_t>(j_cur)];
    }
    int64_t j_new = t - start;
    if (j_new >= 0 && j_new < dur) {
      after += e_new[static_cast<size_t>(j_new)];
    }
    if (after != before) {
      delta += SliceCostAt(cp, s, after) - CachedSliceCost(s);
    }
  }

  // Activation-cost delta, term by term in profile order (kept as a per-slice
  // sum rather than a hoisted per-fill constant so the accumulation order —
  // and therefore the bits — match the pre-kernel evaluator).
  const double unit = cp.unit_price_eur[i];
  for (int64_t j = 0; j < dur; ++j) {
    delta += unit * (std::fabs(e_new[static_cast<size_t>(j)]) -
                     std::fabs(e_cur[static_cast<size_t>(j)]));
  }
  return delta;
}

void ScheduleWorkspace::ApplyMove(const CompiledProblem& cp, size_t i,
                                  TimeSlice start, double fill) {
  EnsureSliceCosts(cp);
  const TimeSlice cur_start = starts_[i];
  Accumulate(cp, i, cur_start, fills_[i], -1.0);
  starts_[i] = start;
  fills_[i] = fill;
  Accumulate(cp, i, start, fill, +1.0);
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start) + cp.duration[i];
  for (TimeSlice t = lo; t < hi; ++t) {
    RefreshSliceCost(cp, static_cast<size_t>(t - cp.horizon_start));
  }
}

ScheduleCost ScheduleWorkspace::Cost(const CompiledProblem& cp) const {
  EnsureSliceCosts(cp);
  ScheduleCost cost;
  cost.flex_activation_eur = flex_activation_eur_;
  for (size_t s = 0; s < net_kwh_.size(); ++s) {
    cost.market_eur += slice_market_eur_[s];
    cost.imbalance_eur += slice_imbalance_eur_[s];
  }
  return cost;
}

void ScheduleWorkspace::ExportSchedule(Schedule* out) const {
  out->assignments.resize(starts_.size());
  for (size_t i = 0; i < starts_.size(); ++i) {
    out->assignments[i] = {starts_[i], fills_[i]};
  }
}

std::vector<flexoffer::ScheduledFlexOffer>
ScheduleWorkspace::ExportScheduledOffers(const CompiledProblem& cp) const {
  std::vector<flexoffer::ScheduledFlexOffer> out;
  out.reserve(cp.num_offers);
  for (size_t i = 0; i < cp.num_offers; ++i) {
    flexoffer::ScheduledFlexOffer s;
    s.offer_id = cp.source->offers[i].id;
    s.start = starts_[i];
    s.energies_kwh.resize(static_cast<size_t>(cp.duration[i]));
    ComputeEnergies(cp, i, fills_[i], s.energies_kwh);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mirabel::scheduling
