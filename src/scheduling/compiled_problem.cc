#include "scheduling/compiled_problem.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace mirabel::scheduling {

using flexoffer::TimeSlice;

CompiledProblem::CompiledProblem(const SchedulingProblem& problem)
    : horizon_start(problem.horizon_start),
      horizon_length(problem.horizon_length),
      num_offers(problem.offers.size()),
      max_buy_kwh(problem.market.max_buy_kwh),
      max_sell_kwh(problem.market.max_sell_kwh),
      source(&problem) {
  earliest_start.reserve(num_offers);
  latest_start.reserve(num_offers);
  duration.reserve(num_offers);
  unit_price_eur.reserve(num_offers);
  profile_offset.reserve(num_offers + 1);

  size_t bands = 0;
  for (const auto& fo : problem.offers) bands += fo.profile.size();
  min_kwh.reserve(bands);
  flex_kwh.reserve(bands);

  profile_offset.push_back(0);
  for (const auto& fo : problem.offers) {
    earliest_start.push_back(fo.earliest_start);
    latest_start.push_back(fo.latest_start);
    duration.push_back(fo.Duration());
    unit_price_eur.push_back(fo.unit_price_eur);
    max_duration = std::max(max_duration, fo.Duration());
    for (const auto& band : fo.profile) {
      min_kwh.push_back(band.min_kwh);
      flex_kwh.push_back(band.Flexibility());
    }
    profile_offset.push_back(min_kwh.size());
  }

  baseline_kwh = problem.baseline_imbalance_kwh;
  penalty_eur = problem.imbalance_penalty_eur;
  buy_price_eur = problem.market.buy_price_eur;
  sell_price_eur = problem.market.sell_price_eur;
}

ScheduleWorkspace::ScheduleWorkspace(const CompiledProblem& cp) {
  starts_.resize(cp.num_offers);
  fills_.resize(cp.num_offers);
  size_t h = static_cast<size_t>(cp.horizon_length);
  net_kwh_.resize(h);
  slice_imbalance_eur_.resize(h);
  slice_market_eur_.resize(h);
  slice_cost_eur_.resize(h);
  e_cur_scratch_.resize(static_cast<size_t>(cp.max_duration));
  e_new_scratch_.resize(static_cast<size_t>(cp.max_duration));
  ResetToDefault(cp);
}

void ScheduleWorkspace::ResetToDefault(const CompiledProblem& cp) {
  for (size_t i = 0; i < cp.num_offers; ++i) {
    starts_[i] = cp.earliest_start[i];
    fills_[i] = 1.0;
  }
  Recompute(cp);
}

Status ScheduleWorkspace::ValidateAndCopy(const CompiledProblem& cp,
                                          const Schedule& schedule) {
  if (schedule.assignments.size() != cp.num_offers) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    if (a.start < cp.earliest_start[i] || a.start > cp.latest_start[i]) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    starts_[i] = schedule.assignments[i].start;
    fills_[i] = schedule.assignments[i].fill;
  }
  return Status::OK();
}

Status ScheduleWorkspace::SetSchedule(const CompiledProblem& cp,
                                      const Schedule& schedule) {
  MIRABEL_RETURN_IF_ERROR(ValidateAndCopy(cp, schedule));
  Recompute(cp);
  return Status::OK();
}

void ScheduleWorkspace::SetAssignmentsUnchecked(
    const CompiledProblem& cp, std::span<const TimeSlice> starts,
    std::span<const double> fills) {
  std::copy(starts.begin(), starts.end(), starts_.begin());
  std::copy(fills.begin(), fills.end(), fills_.begin());
  Recompute(cp);
}

Result<double> ScheduleWorkspace::EvaluateInto(const CompiledProblem& cp,
                                               const Schedule& schedule) {
  // Single merged validate+copy pass. Unlike SetSchedule there is no
  // strong guarantee: on a validation error this (pooled) workspace's state
  // is unspecified — it is overwritten by the next evaluation anyway.
  if (schedule.assignments.size() != cp.num_offers) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    if (a.start < cp.earliest_start[i] || a.start > cp.latest_start[i]) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
    starts_[i] = a.start;
    fills_[i] = a.fill;
  }
  RecomputeNet(cp);
  // One fused sweep produces the total; the per-slice caches are left stale
  // and refreshed lazily by the next TryMove / ApplyMove / Cost, so a pooled
  // child-evaluation workspace never pays for them. The accumulators and
  // their order match the pre-kernel Cost() sweep exactly.
  costs_dirty_ = true;
  double imbalance_eur = 0.0;
  double market_eur = 0.0;
  for (size_t s = 0; s < net_kwh_.size(); ++s) {
    double r = net_kwh_[s];
    const double penalty = cp.penalty_eur[s];
    if (r > 0.0) {
      const double price = cp.buy_price_eur[s];
      double bought = price < penalty ? std::min(r, cp.max_buy_kwh) : 0.0;
      market_eur += bought * price;
      imbalance_eur += (r - bought) * penalty;
    } else if (r < 0.0) {
      const double price = cp.sell_price_eur[s];
      double surplus = -r;
      double sold =
          price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
      market_eur -= sold * price;
      imbalance_eur += (surplus - sold) * penalty;
    }
  }
  return imbalance_eur + flex_activation_eur_ + market_eur;
}

void ScheduleWorkspace::Accumulate(const CompiledProblem& cp, size_t i,
                                   TimeSlice start, double fill, double sign) {
  const size_t base = cp.profile_offset[i];
  const int64_t dur = cp.duration[i];
  const double unit = cp.unit_price_eur[i];
  const size_t s0 = static_cast<size_t>(start - cp.horizon_start);
  for (int64_t j = 0; j < dur; ++j) {
    double e = cp.min_kwh[base + static_cast<size_t>(j)] +
               fill * cp.flex_kwh[base + static_cast<size_t>(j)];
    net_kwh_[s0 + static_cast<size_t>(j)] += sign * e;
    flex_activation_eur_ += sign * unit * std::fabs(e);
  }
}

double SliceResidualCost(const CompiledProblem& cp, size_t s,
                         double residual) {
  const double penalty = cp.penalty_eur[s];
  if (residual > 0.0) {
    const double price = cp.buy_price_eur[s];
    double bought = 0.0;
    if (price < penalty) {
      bought = std::min(residual, cp.max_buy_kwh);
    }
    return bought * price + (residual - bought) * penalty;
  }
  if (residual < 0.0) {
    const double price = cp.sell_price_eur[s];
    double surplus = -residual;
    double sold =
        price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
    return -sold * price + (surplus - sold) * penalty;
  }
  return 0.0;
}

double ScheduleWorkspace::SliceCostAt(const CompiledProblem& cp, size_t s,
                                      double residual) const {
  return SliceResidualCost(cp, s, residual);
}

// ---------------------------------------------------------------------------
// Fast kernel (SchedulerOptions::fast_math): vectorized slice sweeps and
// delta-replay child evaluation. Everything below trades bit-compatibility
// with the reference evaluator for throughput — split accumulators, FMA
// contraction and segmented footprints all change float summation order —
// and is reachable only through the fast_math entry points. The tolerance
// oracle in tests/scheduling_kernel_test.cc holds it to 1e-9 relative.
// ---------------------------------------------------------------------------

namespace {

/// The sweep body, written with four independent accumulator chains so the
/// compiler can keep four vector lanes (or four scalar pipes) busy instead
/// of serializing on one float add per slice. Plain `inline` (no target
/// attribute) on purpose: the two wrappers below instantiate it under the
/// default and the AVX2+FMA instruction sets respectively.
inline double ResidualSweepBody(const double* net, const double* penalty,
                                const double* buy, const double* sell,
                                double max_buy, double max_sell, size_t n) {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    c0 += SliceResidualCostBranchless(net[s + 0], penalty[s + 0], buy[s + 0],
                                      sell[s + 0], max_buy, max_sell);
    c1 += SliceResidualCostBranchless(net[s + 1], penalty[s + 1], buy[s + 1],
                                      sell[s + 1], max_buy, max_sell);
    c2 += SliceResidualCostBranchless(net[s + 2], penalty[s + 2], buy[s + 2],
                                      sell[s + 2], max_buy, max_sell);
    c3 += SliceResidualCostBranchless(net[s + 3], penalty[s + 3], buy[s + 3],
                                      sell[s + 3], max_buy, max_sell);
  }
  double tail = 0.0;
  for (; s < n; ++s) {
    tail += SliceResidualCostBranchless(net[s], penalty[s], buy[s], sell[s],
                                        max_buy, max_sell);
  }
  return ((c0 + c1) + (c2 + c3)) + tail;
}

double ResidualSweepDefault(const double* net, const double* penalty,
                            const double* buy, const double* sell,
                            double max_buy, double max_sell, size_t n) {
  return ResidualSweepBody(net, penalty, buy, sell, max_buy, max_sell, n);
}

#if defined(__x86_64__) || defined(__i386__)
// Same body recompiled for AVX2+FMA: GCC/Clang inline the default-target
// body into the wider target (caller features are a superset) and
// auto-vectorize the four accumulator chains into ymm lanes.
__attribute__((target("avx2,fma"))) double ResidualSweepAvx2(
    const double* net, const double* penalty, const double* buy,
    const double* sell, double max_buy, double max_sell, size_t n) {
  return ResidualSweepBody(net, penalty, buy, sell, max_buy, max_sell, n);
}

bool HostHasAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#endif

}  // namespace

bool FastKernelUsesAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = HostHasAvx2Fma();
  return supported;
#else
  return false;
#endif
}

double FastResidualSweep(const CompiledProblem& cp, const double* net,
                         size_t n) {
#if defined(__x86_64__) || defined(__i386__)
  if (FastKernelUsesAvx2()) {
    return ResidualSweepAvx2(net, cp.penalty_eur.data(),
                             cp.buy_price_eur.data(), cp.sell_price_eur.data(),
                             cp.max_buy_kwh, cp.max_sell_kwh, n);
  }
#endif
  return ResidualSweepDefault(net, cp.penalty_eur.data(),
                              cp.buy_price_eur.data(), cp.sell_price_eur.data(),
                              cp.max_buy_kwh, cp.max_sell_kwh, n);
}

Result<double> ScheduleWorkspace::EvaluateIntoFast(const CompiledProblem& cp,
                                                   const Schedule& schedule) {
  // Validation matches EvaluateInto exactly (same checks, same Status
  // codes): fast_math relaxes float summation, never feasibility.
  if (schedule.assignments.size() != cp.num_offers) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    if (a.start < cp.earliest_start[i] || a.start > cp.latest_start[i]) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
    starts_[i] = a.start;
    fills_[i] = a.fill;
  }

  // Net-load accumulation with the activation reduction split out of the
  // store loop: the `net[j] +=` loop carries no serial dependency and
  // vectorizes, and the activation chain is two independent accumulators
  // per offer folded into one add per offer (instead of one per band).
  std::copy(cp.baseline_kwh.begin(), cp.baseline_kwh.end(), net_kwh_.begin());
  double activation = 0.0;
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const double* mi = cp.min_kwh.data() + cp.profile_offset[i];
    const double* fl = cp.flex_kwh.data() + cp.profile_offset[i];
    double* net = net_kwh_.data() + (starts_[i] - cp.horizon_start);
    const double fill = fills_[i];
    const double unit = cp.unit_price_eur[i];
    const int64_t dur = cp.duration[i];
    double a0 = 0.0, a1 = 0.0;
    int64_t j = 0;
    for (; j + 2 <= dur; j += 2) {
      double e0 = mi[j] + fill * fl[j];
      double e1 = mi[j + 1] + fill * fl[j + 1];
      net[j] += e0;
      net[j + 1] += e1;
      a0 += std::fabs(e0);
      a1 += std::fabs(e1);
    }
    if (j < dur) {
      double e = mi[j] + fill * fl[j];
      net[j] += e;
      a0 += std::fabs(e);
    }
    activation += unit * (a0 + a1);
  }
  flex_activation_eur_ = activation;

  costs_dirty_ = true;
  return activation +
         FastResidualSweep(cp, net_kwh_.data(), net_kwh_.size());
}

double ScheduleWorkspace::ApplyMoveDelta(const CompiledProblem& cp, size_t i,
                                         TimeSlice start, double fill,
                                         DeltaTrail* trail) {
  // The base sync (SetSchedule / SetAssignmentsUnchecked) left the caches
  // fresh; replayed moves keep slice_cost_eur_ current themselves.
  const double* mi = cp.min_kwh.data() + cp.profile_offset[i];
  const double* fl = cp.flex_kwh.data() + cp.profile_offset[i];
  const int64_t dur = cp.duration[i];
  const TimeSlice cur_start = starts_[i];
  const double cur_fill = fills_[i];
  trail->moves_.push_back({i, cur_start, cur_fill, flex_activation_eur_});

  double delta = 0.0;
  auto touch = [&](TimeSlice t, double net_delta) {
    const size_t s = static_cast<size_t>(t - cp.horizon_start);
    const double old_cost = slice_cost_eur_[s];
    trail->slices_.push_back({s, net_kwh_[s], old_cost});
    const double after = net_kwh_[s] + net_delta;
    net_kwh_[s] = after;
    const double new_cost = SliceResidualCostFast(cp, s, after);
    slice_cost_eur_[s] = new_cost;
    delta += new_cost - old_cost;
  };

  // Old-only / overlap / new-only segmentation of the two footprints; for
  // disjoint footprints the overlap segment is empty and the other two are
  // the full footprints (no per-slice in-range branches either way).
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start);
  const TimeSlice overlap_begin = hi;
  const TimeSlice overlap_end = std::min(lo + dur, hi + dur);
  const bool old_first = cur_start <= start;
  for (TimeSlice t = lo; t < std::min(hi, lo + dur); ++t) {
    const int64_t j = t - (old_first ? cur_start : start);
    const double e = mi[j] + (old_first ? cur_fill : fill) * fl[j];
    touch(t, old_first ? -e : e);
  }
  for (TimeSlice t = overlap_begin; t < overlap_end; ++t) {
    const int64_t j_cur = t - cur_start;
    const int64_t j_new = t - start;
    const double e_cur = mi[j_cur] + cur_fill * fl[j_cur];
    const double e_new = mi[j_new] + fill * fl[j_new];
    touch(t, e_new - e_cur);
  }
  for (TimeSlice t = std::max(hi, lo + dur); t < hi + dur; ++t) {
    const int64_t j = t - (old_first ? start : cur_start);
    const double e = mi[j] + (old_first ? fill : cur_fill) * fl[j];
    touch(t, old_first ? e : -e);
  }

  // Activation delta over the profile, split accumulators.
  const double unit = cp.unit_price_eur[i];
  double a0 = 0.0, a1 = 0.0;
  int64_t j = 0;
  for (; j + 2 <= dur; j += 2) {
    a0 += std::fabs(mi[j] + fill * fl[j]) -
          std::fabs(mi[j] + cur_fill * fl[j]);
    a1 += std::fabs(mi[j + 1] + fill * fl[j + 1]) -
          std::fabs(mi[j + 1] + cur_fill * fl[j + 1]);
  }
  if (j < dur) {
    a0 += std::fabs(mi[j] + fill * fl[j]) -
          std::fabs(mi[j] + cur_fill * fl[j]);
  }
  const double act_delta = unit * (a0 + a1);
  flex_activation_eur_ += act_delta;
  starts_[i] = start;
  fills_[i] = fill;
  return delta + act_delta;
}

void ScheduleWorkspace::RollbackDelta(DeltaTrail* trail) {
  // Reverse replay of the value snapshots: the first save of a repeatedly
  // touched slice / gene is restored last, so the workspace lands exactly on
  // its pre-diff bits regardless of how many moves touched it.
  for (auto it = trail->slices_.rbegin(); it != trail->slices_.rend(); ++it) {
    net_kwh_[it->slice] = it->net_kwh;
    slice_cost_eur_[it->slice] = it->cost_eur;
  }
  for (auto it = trail->moves_.rbegin(); it != trail->moves_.rend(); ++it) {
    starts_[it->offer] = it->start;
    fills_[it->offer] = it->fill;
    flex_activation_eur_ = it->activation_eur;
  }
  trail->slices_.clear();
  trail->moves_.clear();
}

double ScheduleWorkspace::CachedCostTotal(const CompiledProblem& cp) const {
  EnsureSliceCosts(cp);
  double c0 = 0.0, c1 = 0.0;
  size_t s = 0;
  const size_t n = slice_cost_eur_.size();
  for (; s + 2 <= n; s += 2) {
    c0 += slice_cost_eur_[s];
    c1 += slice_cost_eur_[s + 1];
  }
  if (s < n) c0 += slice_cost_eur_[s];
  return flex_activation_eur_ + (c0 + c1);
}

void ScheduleWorkspace::RefreshSliceCost(const CompiledProblem& cp,
                                         size_t s) const {
  const double r = net_kwh_[s];
  const double penalty = cp.penalty_eur[s];
  if (r > 0.0) {
    const double price = cp.buy_price_eur[s];
    double bought = price < penalty ? std::min(r, cp.max_buy_kwh) : 0.0;
    slice_market_eur_[s] = bought * price;
    slice_imbalance_eur_[s] = (r - bought) * penalty;
    slice_cost_eur_[s] = bought * price + (r - bought) * penalty;
  } else if (r < 0.0) {
    const double price = cp.sell_price_eur[s];
    double surplus = -r;
    double sold =
        price >= 0.0 ? std::min(surplus, cp.max_sell_kwh) : 0.0;
    slice_market_eur_[s] = -sold * price;
    slice_imbalance_eur_[s] = (surplus - sold) * penalty;
    slice_cost_eur_[s] = -sold * price + (surplus - sold) * penalty;
  } else {
    slice_market_eur_[s] = 0.0;
    slice_imbalance_eur_[s] = 0.0;
    slice_cost_eur_[s] = 0.0;
  }
}

void ScheduleWorkspace::RecomputeNet(const CompiledProblem& cp) {
  std::copy(cp.baseline_kwh.begin(), cp.baseline_kwh.end(), net_kwh_.begin());
  // The activation sum is one serial dependency chain across all offers in
  // index order (that order is part of the bit-compatibility contract); keep
  // the accumulator in a register for its whole length.
  double activation = 0.0;
  for (size_t i = 0; i < cp.num_offers; ++i) {
    const double* mi = cp.min_kwh.data() + cp.profile_offset[i];
    const double* fl = cp.flex_kwh.data() + cp.profile_offset[i];
    double* net = net_kwh_.data() + (starts_[i] - cp.horizon_start);
    const double fill = fills_[i];
    const double unit = cp.unit_price_eur[i];
    const int64_t dur = cp.duration[i];
    for (int64_t j = 0; j < dur; ++j) {
      double e = mi[j] + fill * fl[j];
      net[j] += e;
      activation += unit * std::fabs(e);
    }
  }
  flex_activation_eur_ = activation;
}

void ScheduleWorkspace::RefreshAllSliceCosts(const CompiledProblem& cp) const {
  for (size_t s = 0; s < net_kwh_.size(); ++s) RefreshSliceCost(cp, s);
  costs_dirty_ = false;
}

void ScheduleWorkspace::Recompute(const CompiledProblem& cp) {
  RecomputeNet(cp);
  RefreshAllSliceCosts(cp);
}

void ScheduleWorkspace::ComputeEnergies(const CompiledProblem& cp, size_t i,
                                        double fill,
                                        std::span<double> out) const {
  const size_t base = cp.profile_offset[i];
  const int64_t dur = cp.duration[i];
  for (int64_t j = 0; j < dur; ++j) {
    out[static_cast<size_t>(j)] =
        cp.min_kwh[base + static_cast<size_t>(j)] +
        fill * cp.flex_kwh[base + static_cast<size_t>(j)];
  }
}

double ScheduleWorkspace::TryMove(const CompiledProblem& cp, size_t i,
                                  TimeSlice start, double fill) const {
  ComputeEnergies(cp, i, fills_[i], e_cur_scratch_);
  ComputeEnergies(cp, i, fill, e_new_scratch_);
  return TryMoveWithEnergies(cp, i, start, e_cur_scratch_, e_new_scratch_);
}

double ScheduleWorkspace::TryMoveWithEnergies(
    const CompiledProblem& cp, size_t i, TimeSlice start,
    std::span<const double> e_cur, std::span<const double> e_new) const {
  EnsureSliceCosts(cp);
  const int64_t dur = cp.duration[i];
  const TimeSlice cur_start = starts_[i];
  double delta = 0.0;

  // Per-slice cost deltas over the union of the two footprints. `before` is
  // charged from the slice-cost cache; `after` is the closed-form market
  // response to the shifted residual.
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start) + dur;
  for (TimeSlice t = lo; t < hi; ++t) {
    size_t s = static_cast<size_t>(t - cp.horizon_start);
    double before = net_kwh_[s];
    double after = before;
    int64_t j_cur = t - cur_start;
    if (j_cur >= 0 && j_cur < dur) {
      after -= e_cur[static_cast<size_t>(j_cur)];
    }
    int64_t j_new = t - start;
    if (j_new >= 0 && j_new < dur) {
      after += e_new[static_cast<size_t>(j_new)];
    }
    if (after != before) {
      delta += SliceCostAt(cp, s, after) - CachedSliceCost(s);
    }
  }

  // Activation-cost delta, term by term in profile order (kept as a per-slice
  // sum rather than a hoisted per-fill constant so the accumulation order —
  // and therefore the bits — match the pre-kernel evaluator).
  const double unit = cp.unit_price_eur[i];
  for (int64_t j = 0; j < dur; ++j) {
    delta += unit * (std::fabs(e_new[static_cast<size_t>(j)]) -
                     std::fabs(e_cur[static_cast<size_t>(j)]));
  }
  return delta;
}

double ScheduleWorkspace::TryMoveWithEnergiesFast(
    const CompiledProblem& cp, size_t i, TimeSlice start,
    std::span<const double> e_cur, std::span<const double> e_new) const {
  EnsureSliceCosts(cp);
  const int64_t dur = cp.duration[i];
  const TimeSlice cur_start = starts_[i];

  // Probe the same slices TryMoveWithEnergies charges, but segmented into
  // old-only / overlap / new-only runs (no per-slice in-range branches, and
  // for far moves the gap between disjoint footprints is never walked) over
  // the branchless slice cost, with split accumulators.
  double d0 = 0.0, d1 = 0.0;
  auto probe = [&](TimeSlice t, double net_delta, double* acc) {
    const size_t s = static_cast<size_t>(t - cp.horizon_start);
    const double after = net_kwh_[s] + net_delta;
    *acc += SliceResidualCostFast(cp, s, after) - slice_cost_eur_[s];
  };
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start);
  const bool old_first = cur_start <= start;
  const std::span<const double>& e_lead = old_first ? e_cur : e_new;
  const std::span<const double>& e_tail = old_first ? e_new : e_cur;
  const double lead_sign = old_first ? -1.0 : 1.0;
  for (TimeSlice t = lo; t < std::min(hi, lo + dur); ++t) {
    probe(t, lead_sign * e_lead[static_cast<size_t>(t - lo)], &d0);
  }
  for (TimeSlice t = hi; t < lo + dur; ++t) {
    const double nd = e_new[static_cast<size_t>(t - start)] -
                      e_cur[static_cast<size_t>(t - cur_start)];
    if (nd != 0.0) probe(t, nd, &d1);
  }
  for (TimeSlice t = std::max(hi, lo + dur); t < hi + dur; ++t) {
    probe(t, -lead_sign * e_tail[static_cast<size_t>(t - hi)], &d0);
  }

  // Activation delta, split accumulators over the profile.
  const double unit = cp.unit_price_eur[i];
  double a0 = 0.0, a1 = 0.0;
  int64_t j = 0;
  for (; j + 2 <= dur; j += 2) {
    a0 += std::fabs(e_new[static_cast<size_t>(j)]) -
          std::fabs(e_cur[static_cast<size_t>(j)]);
    a1 += std::fabs(e_new[static_cast<size_t>(j + 1)]) -
          std::fabs(e_cur[static_cast<size_t>(j + 1)]);
  }
  if (j < dur) {
    a0 += std::fabs(e_new[static_cast<size_t>(j)]) -
          std::fabs(e_cur[static_cast<size_t>(j)]);
  }
  return (d0 + d1) + unit * (a0 + a1);
}

void ScheduleWorkspace::ApplyMove(const CompiledProblem& cp, size_t i,
                                  TimeSlice start, double fill) {
  EnsureSliceCosts(cp);
  const TimeSlice cur_start = starts_[i];
  Accumulate(cp, i, cur_start, fills_[i], -1.0);
  starts_[i] = start;
  fills_[i] = fill;
  Accumulate(cp, i, start, fill, +1.0);
  const TimeSlice lo = std::min(cur_start, start);
  const TimeSlice hi = std::max(cur_start, start) + cp.duration[i];
  for (TimeSlice t = lo; t < hi; ++t) {
    RefreshSliceCost(cp, static_cast<size_t>(t - cp.horizon_start));
  }
}

ScheduleCost ScheduleWorkspace::Cost(const CompiledProblem& cp) const {
  EnsureSliceCosts(cp);
  ScheduleCost cost;
  cost.flex_activation_eur = flex_activation_eur_;
  for (size_t s = 0; s < net_kwh_.size(); ++s) {
    cost.market_eur += slice_market_eur_[s];
    cost.imbalance_eur += slice_imbalance_eur_[s];
  }
  return cost;
}

void ScheduleWorkspace::ExportSchedule(Schedule* out) const {
  out->assignments.resize(starts_.size());
  for (size_t i = 0; i < starts_.size(); ++i) {
    out->assignments[i] = {starts_[i], fills_[i]};
  }
}

std::vector<flexoffer::ScheduledFlexOffer>
ScheduleWorkspace::ExportScheduledOffers(const CompiledProblem& cp) const {
  std::vector<flexoffer::ScheduledFlexOffer> out;
  out.reserve(cp.num_offers);
  for (size_t i = 0; i < cp.num_offers; ++i) {
    flexoffer::ScheduledFlexOffer s;
    s.offer_id = cp.source->offers[i].id;
    s.start = starts_[i];
    s.energies_kwh.resize(static_cast<size_t>(cp.duration[i]));
    ComputeEnergies(cp, i, fills_[i], s.energies_kwh);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mirabel::scheduling
