#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

ExhaustiveScheduler::ExhaustiveScheduler(uint64_t max_combinations)
    : max_combinations_(max_combinations) {}

namespace {

/// Saturating product step shared by both CountCombinations overloads, so
/// the combination limit Run() documents and the one RunCompiled() enforces
/// cannot drift apart.
uint64_t AccumulateCombos(uint64_t combos, uint64_t window) {
  if (combos > UINT64_MAX / window) return UINT64_MAX;
  return combos * window;
}

}  // namespace

uint64_t ExhaustiveScheduler::CountCombinations(
    const SchedulingProblem& problem) {
  uint64_t combos = 1;
  for (const auto& fo : problem.offers) {
    combos = AccumulateCombos(combos,
                              static_cast<uint64_t>(fo.TimeFlexibility()) + 1);
  }
  return combos;
}

uint64_t ExhaustiveScheduler::CountCombinations(const CompiledProblem& cp) {
  // cp.latest_start[i] - cp.earliest_start[i] is TimeFlexibility() of the
  // source offer, so the two overloads agree by construction.
  uint64_t combos = 1;
  for (size_t i = 0; i < cp.num_offers; ++i) {
    combos = AccumulateCombos(
        combos,
        static_cast<uint64_t>(cp.latest_start[i] - cp.earliest_start[i]) + 1);
  }
  return combos;
}

Result<SchedulingResult> ExhaustiveScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem cp(problem);
  return RunCompiled(cp, options);
}

Result<SchedulingResult> ExhaustiveScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  // The combination guard lives with the enumeration so direct RunCompiled
  // callers (EdmsEngine's shared per-gate compile) stay protected.
  uint64_t combos = CountCombinations(cp);
  if (combos > max_combinations_) {
    return Status::FailedPrecondition(
        "instance has " + std::to_string(combos) +
        " start combinations, above the exhaustive limit");
  }

  Stopwatch watch;
  ScheduleWorkspace ws(cp);
  const size_t n = cp.num_offers;

  // Start all offers at their earliest start, fill = 1 (the exhaustive
  // baseline is defined for offers without energy constraints; for offers
  // with energy flexibility the maximum profile is used) — exactly the
  // workspace's default schedule.
  SchedulingResult result;
  ws.ExportSchedule(&result.schedule);
  double best_cost = ws.Cost(cp).total();
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});
  result.iterations = 1;

  // Odometer enumeration over the start windows, applying single-offer moves
  // incrementally so each step is O(profile length). The budget gate
  // amortizes the per-combination clock read; on exhaustion the enumeration
  // stops and the incumbent is returned (anytime, like the metaheuristics) —
  // only a completed sweep proves optimality.
  bool enumerated_all = false;
  BudgetGate gate(watch, options.time_budget_s);
  std::vector<int64_t> offsets(n, 0);
  while (true) {
    if (gate.Exhausted()) break;
    // Advance the odometer.
    size_t d = 0;
    while (d < n) {
      const int64_t window = cp.latest_start[d] - cp.earliest_start[d];
      if (offsets[d] < window) {
        ++offsets[d];
        ws.ApplyMove(cp, d, cp.earliest_start[d] + offsets[d], ws.fill(d));
        break;
      }
      offsets[d] = 0;
      ws.ApplyMove(cp, d, cp.earliest_start[d], ws.fill(d));
      ++d;
    }
    if (d == n) {  // odometer wrapped: all combinations visited
      enumerated_all = true;
      break;
    }

    ++result.iterations;
    double cost = ws.Cost(cp).total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      ws.ExportSchedule(&result.schedule);
      result.trace.push_back({watch.ElapsedSeconds(), best_cost});
    }
  }

  // Final full recompute of the incumbent, as the pre-kernel version did
  // with a fresh evaluator.
  result.optimal_proven = enumerated_all;
  MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, result.schedule));
  result.cost = ws.Cost(cp);
  return result;
}

}  // namespace mirabel::scheduling
