#include "common/stopwatch.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

ExhaustiveScheduler::ExhaustiveScheduler(uint64_t max_combinations)
    : max_combinations_(max_combinations) {}

uint64_t ExhaustiveScheduler::CountCombinations(
    const SchedulingProblem& problem) {
  uint64_t combos = 1;
  for (const auto& fo : problem.offers) {
    uint64_t window = static_cast<uint64_t>(fo.TimeFlexibility()) + 1;
    // Saturating multiply.
    if (combos > UINT64_MAX / window) return UINT64_MAX;
    combos *= window;
  }
  return combos;
}

Result<SchedulingResult> ExhaustiveScheduler::Run(
    const SchedulingProblem& problem, const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  uint64_t combos = CountCombinations(problem);
  if (combos > max_combinations_) {
    return Status::FailedPrecondition(
        "instance has " + std::to_string(combos) +
        " start combinations, above the exhaustive limit");
  }

  Stopwatch watch;
  CostEvaluator evaluator(problem);
  const size_t n = problem.offers.size();

  // Start all offers at their earliest start, fill = 1 (the exhaustive
  // baseline is defined for offers without energy constraints; for offers
  // with energy flexibility the maximum profile is used).
  Schedule current;
  current.assignments.reserve(n);
  for (const auto& fo : problem.offers) {
    current.assignments.push_back({fo.earliest_start, 1.0});
  }
  MIRABEL_RETURN_IF_ERROR(evaluator.SetSchedule(current));

  SchedulingResult result;
  result.schedule = current;
  double best_cost = evaluator.Cost().total();
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});
  result.iterations = 1;

  // Odometer enumeration over the start windows, applying single-offer moves
  // incrementally so each step is O(profile length).
  std::vector<int64_t> offsets(n, 0);
  while (true) {
    if (options.time_budget_s > 0 &&
        watch.ElapsedSeconds() > options.time_budget_s) {
      return Status::Timeout("exhaustive enumeration exceeded the budget");
    }
    // Advance the odometer.
    size_t d = 0;
    while (d < n) {
      const auto& fo = problem.offers[d];
      if (offsets[d] < fo.TimeFlexibility()) {
        ++offsets[d];
        MIRABEL_RETURN_IF_ERROR(evaluator.ApplyMove(
            d, {fo.earliest_start + offsets[d],
                evaluator.schedule().assignments[d].fill}));
        break;
      }
      offsets[d] = 0;
      MIRABEL_RETURN_IF_ERROR(evaluator.ApplyMove(
          d, {fo.earliest_start, evaluator.schedule().assignments[d].fill}));
      ++d;
    }
    if (d == n) break;  // odometer wrapped: all combinations visited

    ++result.iterations;
    double cost = evaluator.Cost().total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      result.schedule = evaluator.schedule();
      result.trace.push_back({watch.ElapsedSeconds(), best_cost});
    }
  }

  CostEvaluator final_eval(problem);
  MIRABEL_RETURN_IF_ERROR(final_eval.SetSchedule(result.schedule));
  result.cost = final_eval.Cost();
  return result;
}

}  // namespace mirabel::scheduling
