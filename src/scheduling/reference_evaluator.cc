// The pre-kernel CostEvaluator implementation, preserved verbatim (modulo the
// class name) as the kernel's equivalence oracle. See reference_evaluator.h.
#include "scheduling/reference_evaluator.h"

#include <cmath>

namespace mirabel::scheduling {

using flexoffer::FlexOffer;
using flexoffer::TimeSlice;

double ReferenceCostEvaluator::SliceEnergy(const FlexOffer& offer, int64_t j,
                                           double lambda) {
  const auto& band = offer.profile[static_cast<size_t>(j)];
  return band.min_kwh + lambda * band.Flexibility();
}

ReferenceCostEvaluator::ReferenceCostEvaluator(const SchedulingProblem& problem)
    : problem_(&problem) {
  schedule_.assignments.resize(problem.offers.size());
  for (size_t i = 0; i < problem.offers.size(); ++i) {
    schedule_.assignments[i] = {problem.offers[i].earliest_start, 1.0};
  }
  Status st = SetSchedule(schedule_);
  (void)st;  // default assignments are always valid
}

Status ReferenceCostEvaluator::SetSchedule(const Schedule& schedule) {
  if (schedule.assignments.size() != problem_->offers.size()) {
    return Status::InvalidArgument("assignment count mismatch");
  }
  for (size_t i = 0; i < schedule.assignments.size(); ++i) {
    const OfferAssignment& a = schedule.assignments[i];
    const FlexOffer& fo = problem_->offers[i];
    if (a.start < fo.earliest_start || a.start > fo.latest_start) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " start outside window");
    }
    if (a.fill < 0.0 || a.fill > 1.0) {
      return Status::OutOfRange("offer " + std::to_string(i) +
                                " fill outside [0, 1]");
    }
  }
  schedule_ = schedule;
  net_kwh_ = problem_->baseline_imbalance_kwh;
  flex_activation_eur_ = 0.0;
  for (size_t i = 0; i < schedule_.assignments.size(); ++i) {
    Accumulate(i, schedule_.assignments[i], +1.0);
  }
  return Status::OK();
}

void ReferenceCostEvaluator::Accumulate(size_t index, const OfferAssignment& a,
                                        double sign) {
  const FlexOffer& fo = problem_->offers[index];
  for (int64_t j = 0; j < fo.Duration(); ++j) {
    double e = SliceEnergy(fo, j, a.fill);
    size_t slice = static_cast<size_t>(a.start + j - problem_->horizon_start);
    net_kwh_[slice] += sign * e;
    flex_activation_eur_ += sign * fo.unit_price_eur * std::fabs(e);
  }
}

double ReferenceCostEvaluator::SliceCost(size_t slice, double residual) const {
  const double penalty = problem_->imbalance_penalty_eur[slice];
  if (residual > 0.0) {
    // Deficit: buy while cheaper than eating the imbalance penalty.
    const double price = problem_->market.buy_price_eur[slice];
    double bought = 0.0;
    if (price < penalty) {
      bought = std::min(residual, problem_->market.max_buy_kwh);
    }
    return bought * price + (residual - bought) * penalty;
  }
  if (residual < 0.0) {
    // Surplus: selling both earns revenue and avoids the penalty, so sell up
    // to the cap whenever the sell price is non-negative.
    const double price = problem_->market.sell_price_eur[slice];
    double surplus = -residual;
    double sold = price >= 0.0
                      ? std::min(surplus, problem_->market.max_sell_kwh)
                      : 0.0;
    return -sold * price + (surplus - sold) * penalty;
  }
  return 0.0;
}

ScheduleCost ReferenceCostEvaluator::Cost() const {
  ScheduleCost cost;
  cost.flex_activation_eur = flex_activation_eur_;
  for (size_t s = 0; s < net_kwh_.size(); ++s) {
    double r = net_kwh_[s];
    const double penalty = problem_->imbalance_penalty_eur[s];
    if (r > 0.0) {
      const double price = problem_->market.buy_price_eur[s];
      double bought =
          price < penalty ? std::min(r, problem_->market.max_buy_kwh) : 0.0;
      cost.market_eur += bought * price;
      cost.imbalance_eur += (r - bought) * penalty;
    } else if (r < 0.0) {
      const double price = problem_->market.sell_price_eur[s];
      double surplus = -r;
      double sold = price >= 0.0
                        ? std::min(surplus, problem_->market.max_sell_kwh)
                        : 0.0;
      cost.market_eur -= sold * price;
      cost.imbalance_eur += (surplus - sold) * penalty;
    }
  }
  return cost;
}

Result<double> ReferenceCostEvaluator::EvaluateTotal(
    const Schedule& schedule) const {
  ReferenceCostEvaluator scratch(*problem_);
  MIRABEL_RETURN_IF_ERROR(scratch.SetSchedule(schedule));
  return scratch.Cost().total();
}

Result<double> ReferenceCostEvaluator::TryMove(
    size_t index, const OfferAssignment& candidate) const {
  if (index >= problem_->offers.size()) {
    return Status::OutOfRange("offer index");
  }
  const FlexOffer& fo = problem_->offers[index];
  if (candidate.start < fo.earliest_start ||
      candidate.start > fo.latest_start || candidate.fill < 0.0 ||
      candidate.fill > 1.0) {
    return Status::OutOfRange("candidate assignment infeasible");
  }
  const OfferAssignment& current = schedule_.assignments[index];

  // Collect the slices touched by removing the current assignment and adding
  // the candidate; compute cost deltas on those slices only.
  double delta = 0.0;
  auto slice_of = [this](TimeSlice t) {
    return static_cast<size_t>(t - problem_->horizon_start);
  };

  // Net-load deltas per touched slice (at most 2 * duration slices).
  const int64_t dur = fo.Duration();
  // Touched range union.
  TimeSlice lo = std::min(current.start, candidate.start);
  TimeSlice hi = std::max(current.start, candidate.start) + dur;
  for (TimeSlice t = lo; t < hi; ++t) {
    size_t s = slice_of(t);
    double before = net_kwh_[s];
    double after = before;
    int64_t j_cur = t - current.start;
    if (j_cur >= 0 && j_cur < dur) {
      after -= SliceEnergy(fo, j_cur, current.fill);
    }
    int64_t j_new = t - candidate.start;
    if (j_new >= 0 && j_new < dur) {
      after += SliceEnergy(fo, j_new, candidate.fill);
    }
    if (after != before) delta += SliceCost(s, after) - SliceCost(s, before);
  }

  // Activation-cost delta.
  for (int64_t j = 0; j < dur; ++j) {
    delta += fo.unit_price_eur * (std::fabs(SliceEnergy(fo, j, candidate.fill)) -
                                  std::fabs(SliceEnergy(fo, j, current.fill)));
  }
  return delta;
}

Status ReferenceCostEvaluator::ApplyMove(size_t index,
                                         const OfferAssignment& candidate) {
  if (index >= problem_->offers.size()) {
    return Status::OutOfRange("offer index");
  }
  const FlexOffer& fo = problem_->offers[index];
  if (candidate.start < fo.earliest_start ||
      candidate.start > fo.latest_start || candidate.fill < 0.0 ||
      candidate.fill > 1.0) {
    return Status::OutOfRange("candidate assignment infeasible");
  }
  Accumulate(index, schedule_.assignments[index], -1.0);
  schedule_.assignments[index] = candidate;
  Accumulate(index, candidate, +1.0);
  return Status::OK();
}

}  // namespace mirabel::scheduling
