#ifndef MIRABEL_SCHEDULING_ROBUST_SCHEDULER_H_
#define MIRABEL_SCHEDULING_ROBUST_SCHEDULER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "scheduling/executor.h"
#include "scheduling/scheduler.h"
#include "scheduling/stochastic_evaluator.h"

namespace mirabel::scheduling {

/// Uncertainty-aware wrapper around any inner anytime scheduler: plans a
/// small portfolio of candidate schedules (the point forecast, the
/// ensemble's expected baseline, and a few individual scenarios), scores
/// every candidate across the full ScenarioEnsemble with a
/// StochasticEvaluator, and returns the candidate with the lowest risk
/// objective mean + risk_weight * (CVaR - mean).
///
/// The point-optimal schedule is optimal only if the forecast is exact; the
/// paper's forecasts never are (§5). Planning against sampled forecast-error
/// scenarios trades a little expected cost for a much lighter tail — the
/// bench/uncertainty_study.cc stress scenarios quantify that trade.
///
/// Contract: under a degenerate ensemble (K = 1, zero deltas) the stochastic
/// objective equals the point objective, so RunCompiled delegates wholesale
/// to the inner scheduler and returns its result untouched — bit-identical
/// by construction (tests/robust_scheduler_test.cc asserts this).
///
/// Implements Scheduler, so it races as a PortfolioScheduler member and
/// registers in the EDMS SchedulerRegistry ("Robust") like any other
/// algorithm. Deterministic per (problem, ensemble, options.seed).
class RobustScheduler : public Scheduler {
 public:
  struct Config {
    /// Fresh inner scheduler per candidate run. Null resolves to
    /// GreedyScheduler.
    std::function<std::unique_ptr<Scheduler>()> inner_factory;
    /// Forecast-error ensemble the candidates are scored on. Unset resolves
    /// to the degenerate ensemble (pure delegation to the inner scheduler).
    std::optional<ScenarioEnsemble> ensemble;
    /// CVaR tail mass, in (0, 1].
    double cvar_alpha = 0.25;
    /// Weight of the tail term in the ranking objective; 0 is risk-neutral,
    /// 1 ranks purely by CVaR.
    double risk_weight = 0.5;
    /// Candidates planned on individual scenario baselines (on top of the
    /// point-forecast and expected-baseline candidates). Capped at the
    /// ensemble size.
    int scenario_candidates = 2;
    /// Fan-out seam for the per-scenario evaluations; null is serial.
    std::shared_ptr<Executor> executor;
  };

  RobustScheduler();
  explicit RobustScheduler(Config config);
  std::string Name() const override { return "Robust"; }

  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override;

  /// Plans the candidates (budget split evenly across the serial candidate
  /// runs; seeds options.seed, +1, +2...), re-ranks them on the ensemble and
  /// returns the risk winner with its cost recomputed exactly on the base
  /// problem. Ties resolve to the earliest candidate, so the run is
  /// deterministic per seed. Fills SchedulingResult::robust; iterations and
  /// nodes_visited aggregate across all candidate runs.
  Result<SchedulingResult> RunCompiled(
      const CompiledProblem& compiled,
      const SchedulerOptions& options) override;

 private:
  Config config_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_ROBUST_SCHEDULER_H_
