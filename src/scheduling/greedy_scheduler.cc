#include <algorithm>
#include <numeric>
#include <span>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

namespace {

using flexoffer::TimeSlice;

/// Flattened per-offer start-candidate lists: offer i's candidates are
/// starts[offsets[i] .. offsets[i + 1]). Built once per run (the windows do
/// not change), replacing the pre-kernel per-offer-per-pass vector
/// allocation. Candidates evenly cover each window, capped at
/// `max_candidates` per offer, deduplicated like the old StartCandidates().
struct StartCandidateTable {
  std::vector<TimeSlice> starts;
  std::vector<size_t> offsets;

  StartCandidateTable(const CompiledProblem& cp, int max_candidates) {
    offsets.reserve(cp.num_offers + 1);
    offsets.push_back(0);
    for (size_t i = 0; i < cp.num_offers; ++i) {
      const int64_t window = cp.latest_start[i] - cp.earliest_start[i];
      const size_t before = starts.size();
      if (max_candidates <= 0) {
        // No candidates at all — the offer is never moved (matches the
        // pre-kernel generator, whose subsample loop was empty here).
      } else if (max_candidates == 1 && window >= 1) {
        // Degenerate cap: earliest start only (the pre-kernel generator
        // divided by max_candidates - 1 here).
        starts.push_back(cp.earliest_start[i]);
      } else if (window < max_candidates) {
        for (int64_t d = 0; d <= window; ++d) {
          starts.push_back(cp.earliest_start[i] + d);
        }
      } else {
        for (int i_c = 0; i_c < max_candidates; ++i_c) {
          int64_t d = window * i_c / (max_candidates - 1);
          starts.push_back(cp.earliest_start[i] + d);
        }
        starts.erase(std::unique(starts.begin() + static_cast<int64_t>(before),
                                 starts.end()),
                     starts.end());
      }
      offsets.push_back(starts.size());
    }
  }

  std::span<const TimeSlice> of(size_t i) const {
    return {starts.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

}  // namespace

GreedyScheduler::GreedyScheduler() : GreedyScheduler(Config()) {}

GreedyScheduler::GreedyScheduler(const Config& config) : config_(config) {}

Result<SchedulingResult> GreedyScheduler::Run(const SchedulingProblem& problem,
                                              const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  CompiledProblem compiled(problem);
  return RunCompiled(compiled, options);
}

Result<SchedulingResult> GreedyScheduler::RunCompiled(
    const CompiledProblem& cp, const SchedulerOptions& options) {
  Stopwatch watch;
  Rng rng(options.seed);
  const bool fast = options.fast_math;

  ScheduleWorkspace ws(cp);  // starts on the default schedule
  SchedulingResult result;
  ws.ExportSchedule(&result.schedule);
  double best_cost = ws.Cost(cp).total();
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});
  if (cp.num_offers == 0) {
    result.cost = ws.Cost(cp);
    return result;
  }

  // All buffers of the steady-state scan are sized here, before the loop:
  // per-offer start candidates, the current-assignment energy vector, one
  // energy vector per fill candidate, and the restart assignment arrays.
  // The scan itself performs no heap allocations.
  const StartCandidateTable candidates(cp, config_.max_start_candidates);
  // The kernel scan applies candidates unchecked, so infeasible configured
  // fills are dropped here once — the pre-kernel path rejected them per
  // TryMove call (OutOfRange), which skipped them with the same outcome.
  std::vector<double> fill_candidates;
  fill_candidates.reserve(config_.fill_candidates.size());
  for (double fill : config_.fill_candidates) {
    if (fill >= 0.0 && fill <= 1.0) fill_candidates.push_back(fill);
  }
  const size_t num_fills = fill_candidates.size();
  const size_t dur_cap = static_cast<size_t>(cp.max_duration);
  std::vector<double> e_cur(dur_cap);
  std::vector<double> e_fill(num_fills * dur_cap);
  std::vector<TimeSlice> restart_starts(cp.num_offers);
  std::vector<double> restart_fills(cp.num_offers);

  BudgetGate gate(watch, options.time_budget_s);
  auto out_of_budget = [&]() {
    if (gate.Exhausted()) return true;
    if (options.max_iterations > 0 &&
        result.iterations >= options.max_iterations) {
      return true;
    }
    return false;
  };

  // Greedy pass over all offers in a random order: each offer is moved to
  // its best position given the rest of the schedule. The first pass is the
  // paper's construction; later passes act as improvement sweeps / restarts.
  std::vector<size_t> order(cp.num_offers);
  std::iota(order.begin(), order.end(), 0);

  bool first_pass = true;
  while (!out_of_budget()) {
    rng.Shuffle(&order);
    bool improved_any = false;
    for (size_t index : order) {
      if (out_of_budget()) break;
      const int64_t dur = cp.duration[index];
      std::span<const double> cur{e_cur.data(), static_cast<size_t>(dur)};
      ws.ComputeEnergies(cp, index, ws.fill(index), e_cur);
      for (size_t f = 0; f < num_fills; ++f) {
        ws.ComputeEnergies(cp, index, fill_candidates[f],
                           {e_fill.data() + f * dur_cap, dur_cap});
      }
      TimeSlice best_start = ws.start(index);
      double best_fill = ws.fill(index);
      double best_delta = 0.0;
      // Same candidate order as the pre-kernel scan (starts outer, fills
      // inner) so tie-breaking — first candidate past the 1e-12 margin wins
      // — is unchanged. The energy vectors above are computed once per
      // (offer, fill) and reused across every start. fast_math swaps the
      // per-candidate probe for the segmented branchless variant (same
      // slices charged, split accumulation) — deltas then agree with the
      // exact scan within float noise rather than bitwise, so near-tie
      // candidates may resolve differently.
      for (TimeSlice start : candidates.of(index)) {
        for (size_t f = 0; f < num_fills; ++f) {
          std::span<const double> e_new{e_fill.data() + f * dur_cap,
                                        static_cast<size_t>(dur)};
          double delta =
              fast ? ws.TryMoveWithEnergiesFast(cp, index, start, cur, e_new)
                   : ws.TryMoveWithEnergies(cp, index, start, cur, e_new);
          if (delta < best_delta - 1e-12) {
            best_delta = delta;
            best_start = start;
            best_fill = fill_candidates[f];
          }
        }
      }
      if (best_delta < 0.0) {
        ws.ApplyMove(cp, index, best_start, best_fill);
        improved_any = true;
      }
      ++result.iterations;
    }
    double cost = ws.Cost(cp).total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      ws.ExportSchedule(&result.schedule);
      result.trace.push_back({watch.ElapsedSeconds(), best_cost});
    }
    if (!improved_any && !first_pass) {
      // Local optimum: random restart (keep the incumbent in `result`).
      for (size_t i = 0; i < cp.num_offers; ++i) {
        restart_starts[i] =
            cp.earliest_start[i] +
            rng.UniformInt(0, cp.latest_start[i] - cp.earliest_start[i]);
        restart_fills[i] = rng.NextDouble();
      }
      ws.SetAssignmentsUnchecked(cp, restart_starts, restart_fills);
    }
    first_pass = false;
  }

  // Final full recompute of the incumbent, exactly like the pre-kernel
  // fresh-evaluator pass.
  MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, result.schedule));
  result.cost = ws.Cost(cp);
  return result;
}

}  // namespace mirabel::scheduling
