#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {

namespace {

/// Enumerates up to `max_candidates` start positions of `offer`, evenly
/// covering the whole window.
std::vector<flexoffer::TimeSlice> StartCandidates(
    const flexoffer::FlexOffer& offer, int max_candidates) {
  int64_t window = offer.TimeFlexibility();
  std::vector<flexoffer::TimeSlice> out;
  if (window < max_candidates) {
    out.reserve(static_cast<size_t>(window) + 1);
    for (int64_t d = 0; d <= window; ++d) {
      out.push_back(offer.earliest_start + d);
    }
    return out;
  }
  out.reserve(static_cast<size_t>(max_candidates));
  for (int i = 0; i < max_candidates; ++i) {
    int64_t d = window * i / (max_candidates - 1);
    out.push_back(offer.earliest_start + d);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

GreedyScheduler::GreedyScheduler() : GreedyScheduler(Config()) {}

GreedyScheduler::GreedyScheduler(const Config& config) : config_(config) {}

Result<SchedulingResult> GreedyScheduler::Run(const SchedulingProblem& problem,
                                              const SchedulerOptions& options) {
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  Stopwatch watch;
  Rng rng(options.seed);

  CostEvaluator evaluator(problem);
  SchedulingResult result;
  result.schedule = evaluator.schedule();
  double best_cost = evaluator.Cost().total();
  result.trace.push_back({watch.ElapsedSeconds(), best_cost});
  if (problem.offers.empty()) {
    result.cost = evaluator.Cost();
    return result;
  }

  auto out_of_budget = [&]() {
    if (options.time_budget_s > 0 &&
        watch.ElapsedSeconds() >= options.time_budget_s) {
      return true;
    }
    if (options.max_iterations > 0 &&
        result.iterations >= options.max_iterations) {
      return true;
    }
    return false;
  };

  // Greedy pass over all offers in a random order: each offer is moved to
  // its best position given the rest of the schedule. The first pass is the
  // paper's construction; later passes act as improvement sweeps / restarts.
  std::vector<size_t> order(problem.offers.size());
  std::iota(order.begin(), order.end(), 0);

  bool first_pass = true;
  while (!out_of_budget()) {
    rng.Shuffle(&order);
    bool improved_any = false;
    for (size_t index : order) {
      if (out_of_budget()) break;
      const flexoffer::FlexOffer& fo = problem.offers[index];
      OfferAssignment best = evaluator.schedule().assignments[index];
      double best_delta = 0.0;
      for (flexoffer::TimeSlice start :
           StartCandidates(fo, config_.max_start_candidates)) {
        for (double fill : config_.fill_candidates) {
          OfferAssignment candidate{start, fill};
          Result<double> delta = evaluator.TryMove(index, candidate);
          if (delta.ok() && *delta < best_delta - 1e-12) {
            best_delta = *delta;
            best = candidate;
          }
        }
      }
      if (best_delta < 0.0) {
        MIRABEL_RETURN_IF_ERROR(evaluator.ApplyMove(index, best));
        improved_any = true;
      }
      ++result.iterations;
    }
    double cost = evaluator.Cost().total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      result.schedule = evaluator.schedule();
      result.trace.push_back({watch.ElapsedSeconds(), best_cost});
    }
    if (!improved_any && !first_pass) {
      // Local optimum: random restart (keep the incumbent in `result`).
      Schedule random_schedule;
      random_schedule.assignments.reserve(problem.offers.size());
      for (const auto& fo : problem.offers) {
        random_schedule.assignments.push_back(
            {fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
             rng.NextDouble()});
      }
      MIRABEL_RETURN_IF_ERROR(evaluator.SetSchedule(random_schedule));
    }
    first_pass = false;
  }

  CostEvaluator final_eval(problem);
  MIRABEL_RETURN_IF_ERROR(final_eval.SetSchedule(result.schedule));
  result.cost = final_eval.Cost();
  return result;
}

}  // namespace mirabel::scheduling
