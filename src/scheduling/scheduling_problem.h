#ifndef MIRABEL_SCHEDULING_SCHEDULING_PROBLEM_H_
#define MIRABEL_SCHEDULING_SCHEDULING_PROBLEM_H_

#include <limits>
#include <memory>
#include <vector>

#include "common/result.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::scheduling {

/// Per-slice energy market access of the BRP ("the possibility of selling
/// energy to (and buying energy from) the market (other BRPs)", paper §6).
/// Buying covers a deficit; selling monetises a surplus. Caps model market
/// liquidity — without them every imbalance could be traded away.
struct MarketAccess {
  /// Price paid per kWh bought, per horizon slice.
  std::vector<double> buy_price_eur;
  /// Price earned per kWh sold, per horizon slice.
  std::vector<double> sell_price_eur;
  /// Max energy purchasable per slice (kWh).
  double max_buy_kwh = std::numeric_limits<double>::infinity();
  /// Max energy sellable per slice (kWh).
  double max_sell_kwh = std::numeric_limits<double>::infinity();
};

/// The MIRABEL scheduling problem (paper §6): fix start times and energy
/// flexibilities of all given (aggregated) flex-offers and the per-slice
/// market transactions, minimising the composed cost of (1) remaining
/// mismatches, (2) flex-offer activation and (3) market trades.
struct SchedulingProblem {
  /// First slice of the intra-day scheduling horizon.
  flexoffer::TimeSlice horizon_start = 0;
  /// Horizon length in slices.
  int horizon_length = 0;

  /// Forecast imbalance per slice *before* flex-offers: non-flexible demand
  /// minus forecast RES supply (kWh; positive = deficit). From forecasting.
  std::vector<double> baseline_imbalance_kwh;

  /// Cost per kWh of remaining mismatch, per slice. Peak periods carry
  /// higher penalties ("mismatches at peak periods cost the BRP more than at
  /// other periods").
  std::vector<double> imbalance_penalty_eur;

  MarketAccess market;

  /// The (typically aggregated) flex-offers to schedule. Every offer's start
  /// window must lie inside the horizon.
  std::vector<flexoffer::FlexOffer> offers;

  /// Structural validation of the problem instance.
  Status Validate() const;
};

/// Assignment of one flex-offer: a start slice plus a fill level lambda in
/// [0, 1] that linearly interpolates every profile slice between its min
/// (lambda = 0) and max (lambda = 1) energy. The fill level is the search
/// parameterisation of the continuous energy flexibility (the paper notes
/// "energy amounts can take on an infinite number of values"; the scalar
/// keeps the genome finite while spanning the band).
struct OfferAssignment {
  flexoffer::TimeSlice start = 0;
  double fill = 1.0;
};

/// A complete candidate schedule: one assignment per problem offer, in the
/// same order.
struct Schedule {
  std::vector<OfferAssignment> assignments;
};

/// Cost breakdown of a schedule (all EUR; total may be negative when market
/// sales out-earn the other terms).
struct ScheduleCost {
  double imbalance_eur = 0.0;
  double flex_activation_eur = 0.0;
  /// Market purchases minus market revenue.
  double market_eur = 0.0;
  double total() const {
    return imbalance_eur + flex_activation_eur + market_eur;
  }
};

struct CompiledProblem;
class ScheduleWorkspace;

/// Evaluates schedules against a problem, maintaining the per-slice net load
/// so that single-offer moves are O(profile length) instead of O(horizon).
///
/// The market layer is folded in analytically per slice: given the net
/// residual r of a slice, the optimal trade is closed-form (buy up to the
/// cap while the buy price undercuts the imbalance penalty; sell surplus up
/// to the cap while the sell price is positive), so search only has to
/// explore start times and fill levels.
///
/// This class is a compatibility shim over the scheduling kernel
/// (compiled_problem.h): construction compiles the problem into SoA form
/// once, and every operation delegates to a ScheduleWorkspace. Results are
/// bit-identical to the pre-kernel implementation (preserved as
/// ReferenceCostEvaluator). The schedulers bypass the shim and drive the
/// kernel directly; new hot-path code should too.
///
/// Not thread-safe, including the const methods: TryMove() and Cost() write
/// to the workspace's mutable scratch buffers / lazy cost caches, and
/// EvaluateTotal() reuses a pooled scratch workspace. Use one evaluator per
/// thread.
class CostEvaluator {
 public:
  /// `problem` must outlive the evaluator and must be Validate()d.
  explicit CostEvaluator(const SchedulingProblem& problem);
  ~CostEvaluator();
  CostEvaluator(CostEvaluator&&) noexcept;
  CostEvaluator& operator=(CostEvaluator&&) noexcept;

  /// Replaces the current schedule, recomputing state from scratch. Invalid
  /// assignments (start outside an offer's window, fill outside [0, 1])
  /// return OutOfRange.
  Status SetSchedule(const Schedule& schedule);

  /// Full cost of the current schedule.
  ScheduleCost Cost() const;

  /// Total cost of `schedule` without disturbing the current state. Runs one
  /// fused validate+accumulate+sweep pass in a pooled scratch workspace (the
  /// pre-kernel version built a whole scratch evaluator, accumulating the
  /// default schedule only to throw it away). Not thread-safe: concurrent
  /// EvaluateTotal calls share the scratch workspace.
  Result<double> EvaluateTotal(const Schedule& schedule) const;

  /// Cost delta of moving offer `index` to `candidate` from its current
  /// assignment. Does not change state.
  Result<double> TryMove(size_t index, const OfferAssignment& candidate) const;

  /// Applies a move (must be valid).
  Status ApplyMove(size_t index, const OfferAssignment& candidate);

  const Schedule& schedule() const { return schedule_; }
  const SchedulingProblem& problem() const { return *problem_; }

  /// Net load (baseline + scheduled flex) per horizon slice, before the
  /// market layer. Useful for imbalance reporting.
  const std::vector<double>& net_kwh() const;

  /// Converts the current schedule into per-offer scheduled flex-offers.
  std::vector<flexoffer::ScheduledFlexOffer> ToScheduledOffers() const;

  /// Energy of offer `index` at profile position `j` under fill `lambda`.
  static double SliceEnergy(const flexoffer::FlexOffer& offer, int64_t j,
                            double lambda);

 private:
  const SchedulingProblem* problem_;
  /// Mirror of the workspace assignments, kept for the schedule() accessor.
  Schedule schedule_;
  std::unique_ptr<CompiledProblem> compiled_;
  std::unique_ptr<ScheduleWorkspace> workspace_;
  /// Pooled scratch for EvaluateTotal; allocated lazily on first use.
  mutable std::unique_ptr<ScheduleWorkspace> scratch_;
};

}  // namespace mirabel::scheduling

#endif  // MIRABEL_SCHEDULING_SCHEDULING_PROBLEM_H_
