#ifndef MIRABEL_STORAGE_DATA_STORE_H_
#define MIRABEL_STORAGE_DATA_STORE_H_

#include <vector>

#include "storage/schema.h"
#include "storage/table.h"

namespace mirabel::storage {

/// The LEDMS Data Management component (paper §3): "all historical and
/// current time demand/supply, forecasting model parameters, flex-offers,
/// price and contracts are stored and managed by the Data Management
/// component."
///
/// One DataStore instance backs one LEDMS node. It owns the dimension and
/// fact tables of the unified multidimensional schema and offers the typed
/// access paths the other components need:
///  * measurement append + per-actor time-series extraction (forecasting),
///  * flex-offer lifecycle transitions (control/aggregation/scheduling),
///  * price and contract bookkeeping (negotiation, fallback handling).
class DataStore {
 public:
  DataStore();

  // -- Dimensions ------------------------------------------------------------

  Status AddActor(const ActorDim& actor);
  Result<const ActorDim*> FindActor(flexoffer::ActorId id) const;
  /// Children of `parent` in the market hierarchy.
  std::vector<ActorDim> ActorsUnder(flexoffer::ActorId parent) const;

  Status AddEnergyType(const EnergyTypeDim& type);
  Status AddMarketArea(const MarketAreaDim& area);
  Result<const MarketAreaDim*> FindMarketArea(int64_t id) const;

  // -- Measurements ----------------------------------------------------------

  /// Appends a measurement; assigns the fact id.
  int64_t AppendMeasurement(flexoffer::ActorId actor,
                            flexoffer::TimeSlice slice, EnergyType type,
                            double energy_kwh);

  /// Per-slice energy of `actor` and `type` over [from, to), missing slices
  /// as 0. The forecasting component's input.
  std::vector<double> MeasurementSeries(flexoffer::ActorId actor,
                                        EnergyType type,
                                        flexoffer::TimeSlice from,
                                        flexoffer::TimeSlice to) const;

  size_t num_measurements() const { return measurements_.size(); }

  // -- Flex-offers -----------------------------------------------------------

  /// Stores a new offer in state kOffered; AlreadyExists on duplicate id.
  Status PutFlexOffer(const flexoffer::FlexOffer& offer);

  Result<const FlexOfferFact*> FindFlexOffer(flexoffer::FlexOfferId id) const;

  /// Legal lifecycle transitions: kOffered -> {kAccepted, kRejected},
  /// kAccepted -> {kAggregated, kExpired}, kAggregated -> {kScheduled,
  /// kExpired}, kScheduled -> {kExecuted, kExpired}. FailedPrecondition on
  /// anything else.
  Status TransitionFlexOffer(flexoffer::FlexOfferId id, FlexOfferState to);

  /// Attaches the schedule and moves the offer to kScheduled.
  Status AttachSchedule(const flexoffer::ScheduledFlexOffer& schedule);

  /// Records the negotiated price on the offer fact.
  Status SetAgreedPrice(flexoffer::FlexOfferId id, double price_eur);

  /// All offers currently in `state`.
  std::vector<FlexOfferFact> FlexOffersInState(FlexOfferState state) const;

  /// Offers in kOffered/kAccepted/kAggregated whose assignment deadline is
  /// at or before `now` — candidates for the fallback-to-contract path.
  std::vector<FlexOfferFact> ExpiredUnscheduled(flexoffer::TimeSlice now) const;

  size_t num_flex_offers() const { return flex_offers_.size(); }

  // -- Prices / contracts ------------------------------------------------------

  int64_t AppendPrice(int64_t market_area, flexoffer::TimeSlice slice,
                      double buy_eur, double sell_eur);
  /// Latest price row for (market_area, slice); NotFound when absent.
  Result<PriceFact> LatestPrice(int64_t market_area,
                                flexoffer::TimeSlice slice) const;

  int64_t AddContract(flexoffer::ActorId prosumer, flexoffer::ActorId brp,
                      double tariff_eur_per_kwh, flexoffer::TimeSlice from,
                      flexoffer::TimeSlice to);
  /// The open contract covering `prosumer` at `slice`; NotFound when none.
  Result<ContractFact> OpenContract(flexoffer::ActorId prosumer,
                                    flexoffer::TimeSlice slice) const;

 private:
  Table<ActorDim, flexoffer::ActorId> actors_;
  Table<EnergyTypeDim, int> energy_types_;
  Table<MarketAreaDim, int64_t> market_areas_;
  Table<MeasurementFact, int64_t> measurements_;
  Table<FlexOfferFact, flexoffer::FlexOfferId> flex_offers_;
  Table<PriceFact, int64_t> prices_;
  Table<ContractFact, int64_t> contracts_;
  int64_t next_measurement_id_ = 1;
  int64_t next_price_id_ = 1;
  int64_t next_contract_id_ = 1;
};

}  // namespace mirabel::storage

#endif  // MIRABEL_STORAGE_DATA_STORE_H_
