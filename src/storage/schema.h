#ifndef MIRABEL_STORAGE_SCHEMA_H_
#define MIRABEL_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>

#include "flexoffer/flex_offer.h"

namespace mirabel::storage {

/// The LEDMS Data Management component stores data "using a multidimensional
/// schema that can be seen as a combination of star and snowflake schemas"
/// (paper §3, [6]). These are the dimension and fact row types of that
/// schema. The single unified schema serves actors at all levels; some
/// actors "only use subparts of the schema, e.g., prosumers nodes do not
/// make use of market area data."

// ---------------------------------------------------------------------------
// Dimensions
// ---------------------------------------------------------------------------

/// Time dimension: one row per time slice, denormalised calendar attributes.
struct TimeDim {
  flexoffer::TimeSlice slice = 0;  // primary key
  int hour_of_day = 0;
  int slice_of_day = 0;
  int64_t day = 0;
  int day_of_week = 0;  // 0 = Monday
  bool is_weekend = false;
  bool is_holiday = false;
};

/// Builds the TimeDim row for a slice (holiday from the deterministic
/// calendar in datagen or a caller-provided flag).
TimeDim MakeTimeDim(flexoffer::TimeSlice slice, bool is_holiday);

/// Role of an actor in the harmonized electricity market model [4].
enum class ActorRole {
  kProsumer = 1,
  kBalanceResponsibleParty = 2,
  kTransmissionSystemOperator = 3,
};

/// Actor dimension (snowflaked: actors reference their parent actor,
/// mirroring the prosumer -> BRP -> TSO hierarchy).
struct ActorDim {
  flexoffer::ActorId id = 0;  // primary key
  std::string name;
  ActorRole role = ActorRole::kProsumer;
  /// Parent in the market hierarchy; 0 for the root (TSO).
  flexoffer::ActorId parent = 0;
};

/// Kind of energy a measurement refers to.
enum class EnergyType {
  kConsumption = 1,
  kProductionWind = 2,
  kProductionSolar = 3,
  kProductionOther = 4,
};

/// Energy-type dimension.
struct EnergyTypeDim {
  EnergyType id = EnergyType::kConsumption;  // primary key
  std::string name;
  bool is_renewable = false;
};

/// Market-area dimension (used by BRP/TSO level nodes only).
struct MarketAreaDim {
  int64_t id = 0;  // primary key
  std::string name;
  std::string country_code;
};

// ---------------------------------------------------------------------------
// Facts
// ---------------------------------------------------------------------------

/// Metered energy per (actor, slice, energy type): the measurement fact.
struct MeasurementFact {
  int64_t id = 0;  // primary key
  flexoffer::ActorId actor = 0;
  flexoffer::TimeSlice slice = 0;
  EnergyType energy_type = EnergyType::kConsumption;
  double energy_kwh = 0.0;
};

/// Lifecycle state of a stored flex-offer.
enum class FlexOfferState {
  kOffered = 0,
  kAccepted = 1,
  kAggregated = 2,
  kScheduled = 3,
  kExecuted = 4,
  kExpired = 5,   // timed out -> fallback to the open contract
  kRejected = 6,
};

/// Flex-offer fact: the offer payload plus lifecycle bookkeeping.
struct FlexOfferFact {
  flexoffer::FlexOfferId id = 0;  // primary key (same as offer.id)
  flexoffer::FlexOffer offer;
  FlexOfferState state = FlexOfferState::kOffered;
  /// Scheduled instantiation once state >= kScheduled.
  flexoffer::ScheduledFlexOffer schedule;
  /// Agreed flexibility price (negotiation outcome), EUR.
  double agreed_price_eur = 0.0;
};

/// Market price fact per (market area, slice).
struct PriceFact {
  int64_t id = 0;  // primary key
  int64_t market_area = 0;
  flexoffer::TimeSlice slice = 0;
  double buy_price_eur = 0.0;
  double sell_price_eur = 0.0;
};

/// Contract fact: the standing supply contract between two actors (the "open
/// contract" prosumers fall back to when flexibilities time out).
struct ContractFact {
  int64_t id = 0;  // primary key
  flexoffer::ActorId prosumer = 0;
  flexoffer::ActorId brp = 0;
  /// Flat tariff of the open contract, EUR/kWh.
  double tariff_eur_per_kwh = 0.0;
  flexoffer::TimeSlice valid_from = 0;
  flexoffer::TimeSlice valid_to = 0;
};

}  // namespace mirabel::storage

#endif  // MIRABEL_STORAGE_SCHEMA_H_
