#ifndef MIRABEL_STORAGE_TABLE_H_
#define MIRABEL_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mirabel::storage {

/// Minimal in-memory table: append-ordered rows with a hash primary-key
/// index and predicate scans. The storage substrate intentionally keeps the
/// query surface small — the LEDMS components need keyed lookup, predicate
/// scan and upsert, not a full query engine.
///
/// `KeyFn` extracts the primary key from a row.
template <typename Row, typename Key = int64_t>
class Table {
 public:
  using KeyFn = std::function<Key(const Row&)>;

  explicit Table(KeyFn key_fn) : key_fn_(std::move(key_fn)) {}

  /// Inserts a row; AlreadyExists when the key is taken.
  Status Insert(Row row) {
    Key key = key_fn_(row);
    if (index_.count(key) != 0) {
      return Status::AlreadyExists("duplicate primary key");
    }
    index_.emplace(key, rows_.size());
    rows_.push_back(std::move(row));
    return Status::OK();
  }

  /// Inserts or replaces by key.
  void Upsert(Row row) {
    Key key = key_fn_(row);
    auto it = index_.find(key);
    if (it == index_.end()) {
      index_.emplace(key, rows_.size());
      rows_.push_back(std::move(row));
    } else {
      rows_[it->second] = std::move(row);
    }
  }

  /// Keyed lookup; NotFound when absent.
  Result<const Row*> Find(const Key& key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("key not in table");
    return &rows_[it->second];
  }

  /// Mutable keyed lookup; NotFound when absent.
  Result<Row*> FindMutable(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("key not in table");
    return &rows_[it->second];
  }

  /// Deletes by key (swap-with-last); NotFound when absent.
  Status Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("key not in table");
    size_t pos = it->second;
    size_t last = rows_.size() - 1;
    if (pos != last) {
      rows_[pos] = std::move(rows_[last]);
      index_[key_fn_(rows_[pos])] = pos;
    }
    rows_.pop_back();
    index_.erase(it);
    return Status::OK();
  }

  /// Returns all rows matching `predicate`, in unspecified order.
  std::vector<Row> Scan(const std::function<bool(const Row&)>& predicate) const {
    std::vector<Row> out;
    for (const Row& row : rows_) {
      if (predicate(row)) out.push_back(row);
    }
    return out;
  }

  /// Applies `fn` to every row (read-only full scan).
  void ForEach(const std::function<void(const Row&)>& fn) const {
    for (const Row& row : rows_) fn(row);
  }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

 private:
  KeyFn key_fn_;
  std::vector<Row> rows_;
  std::unordered_map<Key, size_t> index_;
};

}  // namespace mirabel::storage

#endif  // MIRABEL_STORAGE_TABLE_H_
