#include "storage/data_store.h"

#include <algorithm>

namespace mirabel::storage {

using flexoffer::ActorId;
using flexoffer::FlexOfferId;
using flexoffer::TimeSlice;

TimeDim MakeTimeDim(TimeSlice slice, bool is_holiday) {
  TimeDim t;
  t.slice = slice;
  t.hour_of_day = flexoffer::HourOfDay(slice);
  t.slice_of_day = flexoffer::SliceOfDay(slice);
  t.day = flexoffer::DayOf(slice);
  t.day_of_week = flexoffer::DayOfWeek(slice);
  t.is_weekend = flexoffer::IsWeekend(slice);
  t.is_holiday = is_holiday;
  return t;
}

DataStore::DataStore()
    : actors_([](const ActorDim& a) { return a.id; }),
      energy_types_(
          [](const EnergyTypeDim& e) { return static_cast<int>(e.id); }),
      market_areas_([](const MarketAreaDim& m) { return m.id; }),
      measurements_([](const MeasurementFact& m) { return m.id; }),
      flex_offers_([](const FlexOfferFact& f) { return f.id; }),
      prices_([](const PriceFact& p) { return p.id; }),
      contracts_([](const ContractFact& c) { return c.id; }) {}

Status DataStore::AddActor(const ActorDim& actor) {
  return actors_.Insert(actor);
}

Result<const ActorDim*> DataStore::FindActor(ActorId id) const {
  return actors_.Find(id);
}

std::vector<ActorDim> DataStore::ActorsUnder(ActorId parent) const {
  return actors_.Scan(
      [parent](const ActorDim& a) { return a.parent == parent; });
}

Status DataStore::AddEnergyType(const EnergyTypeDim& type) {
  return energy_types_.Insert(type);
}

Status DataStore::AddMarketArea(const MarketAreaDim& area) {
  return market_areas_.Insert(area);
}

Result<const MarketAreaDim*> DataStore::FindMarketArea(int64_t id) const {
  return market_areas_.Find(id);
}

int64_t DataStore::AppendMeasurement(ActorId actor, TimeSlice slice,
                                     EnergyType type, double energy_kwh) {
  MeasurementFact fact;
  fact.id = next_measurement_id_++;
  fact.actor = actor;
  fact.slice = slice;
  fact.energy_type = type;
  fact.energy_kwh = energy_kwh;
  Status st = measurements_.Insert(std::move(fact));
  (void)st;  // fresh id: cannot collide
  return next_measurement_id_ - 1;
}

std::vector<double> DataStore::MeasurementSeries(ActorId actor, EnergyType type,
                                                 TimeSlice from,
                                                 TimeSlice to) const {
  size_t n = to > from ? static_cast<size_t>(to - from) : 0;
  std::vector<double> out(n, 0.0);
  measurements_.ForEach([&](const MeasurementFact& m) {
    if (m.actor != actor || m.energy_type != type) return;
    if (m.slice < from || m.slice >= to) return;
    out[static_cast<size_t>(m.slice - from)] += m.energy_kwh;
  });
  return out;
}

Status DataStore::PutFlexOffer(const flexoffer::FlexOffer& offer) {
  MIRABEL_RETURN_IF_ERROR(offer.Validate());
  FlexOfferFact fact;
  fact.id = offer.id;
  fact.offer = offer;
  fact.state = FlexOfferState::kOffered;
  return flex_offers_.Insert(std::move(fact));
}

Result<const FlexOfferFact*> DataStore::FindFlexOffer(FlexOfferId id) const {
  return flex_offers_.Find(id);
}

namespace {

bool LegalTransition(FlexOfferState from, FlexOfferState to) {
  switch (from) {
    case FlexOfferState::kOffered:
      // kExpired covers the lost-acceptance case: the owner never heard
      // back and the assignment deadline passed.
      return to == FlexOfferState::kAccepted ||
             to == FlexOfferState::kRejected ||
             to == FlexOfferState::kExpired;
    case FlexOfferState::kAccepted:
      return to == FlexOfferState::kAggregated ||
             to == FlexOfferState::kExpired;
    case FlexOfferState::kAggregated:
      return to == FlexOfferState::kScheduled ||
             to == FlexOfferState::kExpired;
    case FlexOfferState::kScheduled:
      return to == FlexOfferState::kExecuted ||
             to == FlexOfferState::kExpired;
    case FlexOfferState::kExecuted:
    case FlexOfferState::kExpired:
    case FlexOfferState::kRejected:
      return false;
  }
  return false;
}

}  // namespace

Status DataStore::TransitionFlexOffer(FlexOfferId id, FlexOfferState to) {
  MIRABEL_ASSIGN_OR_RETURN(FlexOfferFact * fact, flex_offers_.FindMutable(id));
  if (!LegalTransition(fact->state, to)) {
    return Status::FailedPrecondition(
        "illegal flex-offer state transition for offer " + std::to_string(id));
  }
  fact->state = to;
  return Status::OK();
}

Status DataStore::AttachSchedule(const flexoffer::ScheduledFlexOffer& schedule) {
  MIRABEL_ASSIGN_OR_RETURN(FlexOfferFact * fact,
                           flex_offers_.FindMutable(schedule.offer_id));
  MIRABEL_RETURN_IF_ERROR(schedule.ValidateAgainst(fact->offer));
  if (fact->state != FlexOfferState::kAccepted &&
      fact->state != FlexOfferState::kAggregated) {
    return Status::FailedPrecondition(
        "offer is not awaiting a schedule");
  }
  fact->schedule = schedule;
  fact->state = FlexOfferState::kScheduled;
  return Status::OK();
}

Status DataStore::SetAgreedPrice(FlexOfferId id, double price_eur) {
  MIRABEL_ASSIGN_OR_RETURN(FlexOfferFact * fact, flex_offers_.FindMutable(id));
  fact->agreed_price_eur = price_eur;
  return Status::OK();
}

std::vector<FlexOfferFact> DataStore::FlexOffersInState(
    FlexOfferState state) const {
  return flex_offers_.Scan(
      [state](const FlexOfferFact& f) { return f.state == state; });
}

std::vector<FlexOfferFact> DataStore::ExpiredUnscheduled(TimeSlice now) const {
  return flex_offers_.Scan([now](const FlexOfferFact& f) {
    bool pending = f.state == FlexOfferState::kOffered ||
                   f.state == FlexOfferState::kAccepted ||
                   f.state == FlexOfferState::kAggregated;
    return pending && f.offer.assignment_before <= now;
  });
}

int64_t DataStore::AppendPrice(int64_t market_area, TimeSlice slice,
                               double buy_eur, double sell_eur) {
  PriceFact fact;
  fact.id = next_price_id_++;
  fact.market_area = market_area;
  fact.slice = slice;
  fact.buy_price_eur = buy_eur;
  fact.sell_price_eur = sell_eur;
  Status st = prices_.Insert(std::move(fact));
  (void)st;
  return next_price_id_ - 1;
}

Result<PriceFact> DataStore::LatestPrice(int64_t market_area,
                                         TimeSlice slice) const {
  std::vector<PriceFact> hits =
      prices_.Scan([market_area, slice](const PriceFact& p) {
        return p.market_area == market_area && p.slice == slice;
      });
  if (hits.empty()) return Status::NotFound("no price for slice");
  // Latest insertion (largest id) wins.
  auto it = std::max_element(
      hits.begin(), hits.end(),
      [](const PriceFact& a, const PriceFact& b) { return a.id < b.id; });
  return *it;
}

int64_t DataStore::AddContract(ActorId prosumer, ActorId brp,
                               double tariff_eur_per_kwh, TimeSlice from,
                               TimeSlice to) {
  ContractFact fact;
  fact.id = next_contract_id_++;
  fact.prosumer = prosumer;
  fact.brp = brp;
  fact.tariff_eur_per_kwh = tariff_eur_per_kwh;
  fact.valid_from = from;
  fact.valid_to = to;
  Status st = contracts_.Insert(std::move(fact));
  (void)st;
  return next_contract_id_ - 1;
}

Result<ContractFact> DataStore::OpenContract(ActorId prosumer,
                                             TimeSlice slice) const {
  std::vector<ContractFact> hits =
      contracts_.Scan([prosumer, slice](const ContractFact& c) {
        return c.prosumer == prosumer && c.valid_from <= slice &&
               slice < c.valid_to;
      });
  if (hits.empty()) return Status::NotFound("no open contract");
  auto it = std::max_element(
      hits.begin(), hits.end(),
      [](const ContractFact& a, const ContractFact& b) { return a.id < b.id; });
  return *it;
}

}  // namespace mirabel::storage
