#include "node/message_bus.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace mirabel::node {

std::string Message::ToString() const {
  const char* kind = "?";
  switch (type) {
    case MessageType::kFlexOffer:
      kind = "FlexOffer";
      break;
    case MessageType::kFlexOfferAccepted:
      kind = "Accepted";
      break;
    case MessageType::kFlexOfferRejected:
      kind = "Rejected";
      break;
    case MessageType::kScheduledFlexOffer:
      kind = "Scheduled";
      break;
    case MessageType::kMeasurement:
      kind = "Measurement";
      break;
    case MessageType::kAck:
      kind = "Ack";
      break;
    case MessageType::kNack:
      kind = "Nack";
      break;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Message{%s %llu->%llu at=%s offer=%llu id=%llu}", kind,
                static_cast<unsigned long long>(from),
                static_cast<unsigned long long>(to),
                flexoffer::FormatTimeSlice(sent_at).c_str(),
                static_cast<unsigned long long>(
                    type == MessageType::kFlexOffer ? offer.id : offer_id),
                static_cast<unsigned long long>(id));
  return buf;
}

MessageBus::MessageBus() : MessageBus(Config()) {}

MessageBus::MessageBus(const Config& config)
    : config_(config), rng_(config.seed) {}

Status MessageBus::Register(NodeId id, Handler handler) {
  auto [it, inserted] = handlers_.emplace(id, std::move(handler));
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already registered");
  }
  return Status::OK();
}

bool MessageBus::FaultDrops(const Message& msg) {
  const flexoffer::TimeSlice t = msg.sent_at;
  for (const FaultPlan::Blackout& b : config_.faults.blackouts) {
    if (t >= b.from && t < b.to && (msg.to == b.node || msg.from == b.node)) {
      return true;
    }
  }
  for (const FaultPlan::Partition& p : config_.faults.partitions) {
    if (t < p.from || t >= p.to) continue;
    bool from_in = std::find(p.island.begin(), p.island.end(), msg.from) !=
                   p.island.end();
    bool to_in =
        std::find(p.island.begin(), p.island.end(), msg.to) != p.island.end();
    if (from_in != to_in) return true;
  }
  for (const FaultPlan::DropWindow& w : config_.faults.drop_windows) {
    if (t < w.from || t >= w.to) continue;
    if (w.probability >= 1.0 || rng_.Bernoulli(w.probability)) return true;
  }
  return false;
}

int64_t MessageBus::FaultLatency(const Message& msg) const {
  int64_t extra = 0;
  for (const FaultPlan::LatencySpike& s : config_.faults.latency_spikes) {
    if (msg.sent_at >= s.from && msg.sent_at < s.to) extra += s.extra_slices;
  }
  return extra;
}

Status MessageBus::Send(const Message& msg) {
  if (handlers_.count(msg.to) == 0) {
    return Status::NotFound("unknown recipient node " + std::to_string(msg.to));
  }
  ++sent_;
  if (FaultDrops(msg)) {
    ++dropped_;
    ++dropped_by_fault_;
    return Status::OK();  // silent loss, like the network
  }
  if (config_.drop_probability > 0.0 &&
      rng_.Bernoulli(config_.drop_probability)) {
    ++dropped_;
    return Status::OK();
  }
  queue_.push_back(
      {msg.sent_at + config_.latency_slices + FaultLatency(msg), msg});
  return Status::OK();
}

void MessageBus::AdvanceTo(flexoffer::TimeSlice now) {
  now_ = std::max(now_, now);
  // Handlers may enqueue more messages; keep draining until nothing due is
  // left. Send order is preserved for messages with equal due slices.
  bool progress = true;
  while (progress) {
    progress = false;
    size_t n = queue_.size();
    for (size_t i = 0; i < n; ++i) {
      InFlight item = std::move(queue_.front());
      queue_.pop_front();
      if (item.due <= now) {
        ++delivered_;
        handlers_[item.msg.to](item.msg);
        progress = true;
      } else {
        queue_.push_back(std::move(item));
      }
    }
  }
}

size_t MessageBus::ReportBacklog() const {
  if (!queue_.empty()) {
    MIRABEL_LOG(kWarning) << "message bus ends with " << queue_.size()
                          << " undelivered message(s); first: "
                          << queue_.front().msg.ToString();
  }
  return queue_.size();
}

}  // namespace mirabel::node
