#include "node/message_bus.h"

#include <cstdio>

namespace mirabel::node {

std::string Message::ToString() const {
  const char* kind = "?";
  switch (type) {
    case MessageType::kFlexOffer:
      kind = "FlexOffer";
      break;
    case MessageType::kFlexOfferAccepted:
      kind = "Accepted";
      break;
    case MessageType::kFlexOfferRejected:
      kind = "Rejected";
      break;
    case MessageType::kScheduledFlexOffer:
      kind = "Scheduled";
      break;
    case MessageType::kMeasurement:
      kind = "Measurement";
      break;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Message{%s %llu->%llu at=%s offer=%llu}",
                kind, static_cast<unsigned long long>(from),
                static_cast<unsigned long long>(to),
                flexoffer::FormatTimeSlice(sent_at).c_str(),
                static_cast<unsigned long long>(
                    type == MessageType::kFlexOffer ? offer.id : offer_id));
  return buf;
}

MessageBus::MessageBus() : MessageBus(Config()) {}

MessageBus::MessageBus(const Config& config)
    : config_(config), rng_(config.seed) {}

Status MessageBus::Register(NodeId id, Handler handler) {
  auto [it, inserted] = handlers_.emplace(id, std::move(handler));
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already registered");
  }
  return Status::OK();
}

Status MessageBus::Send(const Message& msg) {
  if (handlers_.count(msg.to) == 0) {
    return Status::NotFound("unknown recipient node " + std::to_string(msg.to));
  }
  ++sent_;
  if (config_.drop_probability > 0.0 &&
      rng_.Bernoulli(config_.drop_probability)) {
    ++dropped_;
    return Status::OK();  // silent loss, like the network
  }
  queue_.push_back({msg.sent_at + config_.latency_slices, msg});
  return Status::OK();
}

void MessageBus::AdvanceTo(flexoffer::TimeSlice now) {
  // Handlers may enqueue more messages; keep draining until nothing due is
  // left. Send order is preserved for messages with equal due slices.
  bool progress = true;
  while (progress) {
    progress = false;
    size_t n = queue_.size();
    for (size_t i = 0; i < n; ++i) {
      InFlight item = std::move(queue_.front());
      queue_.pop_front();
      if (item.due <= now) {
        ++delivered_;
        handlers_[item.msg.to](item.msg);
        progress = true;
      } else {
        queue_.push_back(std::move(item));
      }
    }
  }
}

}  // namespace mirabel::node
