#ifndef MIRABEL_NODE_SIMULATION_H_
#define MIRABEL_NODE_SIMULATION_H_

#include <memory>
#include <string>
#include <vector>

#include "edms/scheduler_registry.h"
#include "node/aggregating_node.h"
#include "node/prosumer_node.h"

namespace mirabel::node {

/// Configuration of a whole-EDMS simulation: a 3-level hierarchy (paper
/// Fig. 2) of one TSO, several BRPs and many prosumers, run tick-by-tick on
/// the slice clock.
struct SimulationConfig {
  int num_brps = 3;
  int prosumers_per_brp = 20;
  int days = 2;
  /// When false, BRPs schedule locally and no TSO level exists (2-level
  /// deployment); when true, BRPs forward macro offers to the TSO (3-level).
  bool use_tso = false;
  /// Bus configuration, including `bus.faults` — the chaos plan. Drops,
  /// blackouts, partitions and latency spikes apply at the bus; `Stall`
  /// windows are honored here by skipping the stalled node's OnTick (its
  /// mailbox still accepts deliveries, it just stops processing).
  MessageBus::Config bus;
  uint64_t seed = 2024;
  /// Transport reliability template for every node (acked retries with
  /// backoff, receiver dedupe); per-node `self`/`seed` are derived. Disable
  /// for the pre-reliability fire-and-forget wire.
  ReliableChannel::Config reliability;

  /// Per-prosumer offer rate (offers per day).
  double offers_per_day = 3.0;
  /// Engine shards per aggregating node (BRPs and the TSO): prosumers are
  /// partitioned by owner id across each node's ShardedEdmsRuntime. 1 = the
  /// single-engine deployment.
  size_t shards_per_node = 1;
  /// BRP control-loop cadence and horizon (slices).
  int gate_period = 16;
  int horizon = 96;
  /// Scheduler of every aggregating node; empty = the system default
  /// (resolve names via edms::SchedulerRegistry::Default() at the CLI edge).
  edms::SchedulerFactory scheduler_factory;
  double scheduler_budget_s = 0.05;
  /// Iteration cap per scheduling run; set > 0 together with
  /// scheduler_budget_s <= 0 for bit-reproducible runs (chaos tests rerun
  /// scenarios and diff the reports).
  int scheduler_max_iterations = 0;
  /// Streaming-intake knobs for the aggregating nodes; a bounded queue plus
  /// the default shed policy turns overload into kNack replies that
  /// prosumers honor with backoff. 0 = unbounded fork-join (default).
  bool streaming_intake = false;
  size_t max_pending_batches_per_shard = 0;
};

/// Aggregated outcome of a simulation run.
struct SimulationReport {
  int64_t offers_created = 0;
  int64_t offers_accepted = 0;
  int64_t offers_rejected = 0;
  int64_t schedules_received = 0;
  int64_t offers_executed = 0;
  int64_t fallbacks = 0;
  double prosumer_earnings_eur = 0.0;

  int64_t scheduling_runs = 0;
  int64_t macros_scheduled = 0;
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;
  double schedule_cost_eur = 0.0;

  int64_t messages_sent = 0;
  int64_t messages_delivered = 0;
  int64_t messages_dropped = 0;
  /// Subset of messages_dropped caused by the fault plan.
  int64_t messages_dropped_by_fault = 0;
  /// Bus backlog after the final drain (> 0 is logged as a warning).
  int64_t messages_undelivered_at_end = 0;

  // -- Transport reliability (summed over every node's ReliableChannel) ----
  int64_t transport_retries = 0;
  int64_t transport_dead_letters = 0;
  int64_t transport_duplicates_dropped = 0;
  int64_t transport_acks_sent = 0;

  // -- Degradation counters ------------------------------------------------
  /// Overload NACKs received by prosumers / resubmissions they made.
  int64_t nacks_received = 0;
  int64_t offers_resubmitted = 0;
  /// Offers refused with a reply during wind-down (never silently dropped).
  int64_t late_offers_refused = 0;
  /// Forwarded macros expired because the parent never returned a schedule.
  int64_t macros_expired_unscheduled = 0;
  /// Assigned offers closed as expired because execution never metered.
  int64_t executions_timed_out = 0;

  /// Relative imbalance reduction achieved by flex-offer scheduling (the
  /// effect sketched in the paper's Fig. 1), in [0, 1].
  double ImbalanceReduction() const {
    return imbalance_before_kwh > 0.0
               ? 1.0 - imbalance_after_kwh / imbalance_before_kwh
               : 0.0;
  }

  std::string ToString() const;
};

/// Builds and runs the hierarchy. The baseline imbalance curves of the BRPs
/// are synthesised from the datagen demand/wind generators, so the whole run
/// is deterministic in `seed`.
class EdmsSimulation {
 public:
  explicit EdmsSimulation(const SimulationConfig& config);

  /// Runs the configured number of days and returns the combined report.
  SimulationReport Run();

  /// Access to the nodes after Run(), for tests and examples.
  const std::vector<std::unique_ptr<ProsumerNode>>& prosumers() const {
    return prosumers_;
  }
  const std::vector<std::unique_ptr<AggregatingNode>>& brps() const {
    return brps_;
  }
  const AggregatingNode* tso() const { return tso_.get(); }
  const MessageBus& bus() const { return bus_; }

 private:
  SimulationConfig config_;
  MessageBus bus_;
  /// One pool for every aggregating node's shards (multi-BRP sharing);
  /// declared before the nodes so it outlives their runtimes. Null when
  /// shards_per_node == 1 (inline engines need no workers).
  std::shared_ptr<edms::WorkerPool> pool_;
  std::vector<std::unique_ptr<ProsumerNode>> prosumers_;
  std::vector<std::unique_ptr<AggregatingNode>> brps_;
  std::unique_ptr<AggregatingNode> tso_;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_SIMULATION_H_
