#include "node/prosumer_node.h"

#include <algorithm>

#include "common/logging.h"

namespace mirabel::node {

using flexoffer::FlexOffer;
using flexoffer::TimeSlice;

ProsumerNode::ProsumerNode(const Config& config, MessageBus* bus)
    : config_(config), bus_(bus), rng_(config.seed) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "prosumer " << config_.id
                        << " registration failed: " << st;
  }
}

FlexOffer ProsumerNode::MakeOffer(TimeSlice now) {
  FlexOffer fo;
  // Offer ids must be globally unique: compose node id and local sequence.
  fo.id = config_.id * 1000000ULL + next_offer_seq_++;
  fo.owner = config_.id;
  fo.creation_time = now;
  int dur = static_cast<int>(
      rng_.UniformInt(config_.min_duration, config_.max_duration));
  // The window opens 4-12 hours ahead; quantise time flexibility so similar
  // device classes aggregate well. The lead leaves the BRP's control loop
  // enough gate closures to pick the offer up before the deadline.
  TimeSlice lead = rng_.UniformInt(16, 48);
  int64_t tf = (rng_.UniformInt(0, config_.max_time_flexibility) / 4) * 4;
  fo.earliest_start = now + lead;
  fo.latest_start = fo.earliest_start + tf;
  fo.assignment_before = fo.earliest_start - std::min<TimeSlice>(8, lead - 1);
  fo.profile.reserve(static_cast<size_t>(dur));
  for (int j = 0; j < dur; ++j) {
    double emax = rng_.Uniform(config_.min_slice_energy_kwh,
                               config_.max_slice_energy_kwh);
    double emin = emax * (1.0 - rng_.Uniform(0.0, config_.max_energy_flex));
    fo.profile.push_back({emin, emax});
  }
  fo.unit_price_eur = rng_.Uniform(0.01, 0.05);
  return fo;
}

void ProsumerNode::OnTick(TimeSlice now) {
  // Device activity: emit a flex-offer with per-slice probability matching
  // the configured daily rate.
  if (rng_.Bernoulli(config_.offers_per_day / flexoffer::kSlicesPerDay)) {
    FlexOffer fo = MakeOffer(now);
    if (store_.PutFlexOffer(fo).ok()) {
      ++stats_.offers_created;
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.brp;
      msg.sent_at = now;
      msg.offer = fo;
      (void)bus_->Send(msg);
    }
  }

  // Execute schedules whose profile completed by now, metering the energy.
  for (const auto& fact :
       store_.FlexOffersInState(storage::FlexOfferState::kScheduled)) {
    TimeSlice end = fact.schedule.start +
                    static_cast<int64_t>(fact.schedule.energies_kwh.size());
    if (end > now) continue;
    (void)store_.TransitionFlexOffer(fact.id,
                                     storage::FlexOfferState::kExecuted);
    ++stats_.offers_executed;
    Message msg;
    msg.type = MessageType::kMeasurement;
    msg.from = config_.id;
    msg.to = config_.brp;
    msg.sent_at = now;
    msg.offer_id = fact.id;
    msg.value = fact.schedule.TotalEnergy();
    (void)bus_->Send(msg);
  }

  // Timed-out offers fall back to the open contract: the load runs at its
  // default profile, unmanaged.
  for (const auto& fact : store_.ExpiredUnscheduled(now)) {
    if (store_.TransitionFlexOffer(fact.id, storage::FlexOfferState::kExpired)
            .ok()) {
      ++stats_.fallbacks;
    }
  }
}

void ProsumerNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFlexOfferAccepted: {
      (void)store_.TransitionFlexOffer(msg.offer_id,
                                       storage::FlexOfferState::kAccepted);
      (void)store_.SetAgreedPrice(msg.offer_id, msg.value);
      stats_.earnings_eur += msg.value;
      ++stats_.offers_accepted;
      break;
    }
    case MessageType::kFlexOfferRejected: {
      (void)store_.TransitionFlexOffer(msg.offer_id,
                                       storage::FlexOfferState::kRejected);
      ++stats_.offers_rejected;
      break;
    }
    case MessageType::kScheduledFlexOffer: {
      Result<const storage::FlexOfferFact*> fact =
          store_.FindFlexOffer(msg.schedule.offer_id);
      if (!fact.ok()) break;
      if ((*fact)->state == storage::FlexOfferState::kAccepted) {
        // BRP schedules arrive for accepted offers; the store transitions
        // the offer to kScheduled when the schedule attaches cleanly.
        if (store_.AttachSchedule(msg.schedule).ok()) {
          ++stats_.schedules_received;
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace mirabel::node
