#include "node/prosumer_node.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace mirabel::node {

using flexoffer::FlexOffer;
using flexoffer::TimeSlice;

namespace {

/// A resubmit entry in this state waits for the next NACK (or expiry) to
/// re-arm it; it is never due on its own.
constexpr TimeSlice kNotDue = std::numeric_limits<TimeSlice>::max();

ReliableChannel::Config ChannelConfig(const ProsumerNode::Config& config) {
  ReliableChannel::Config cc = config.reliability;
  cc.self = config.id;
  // Per-node stream: channel jitter must differ across prosumers even when
  // they share a base seed.
  cc.seed = config.reliability.seed * 0x9E3779B97F4A7C15ULL + config.id;
  return cc;
}

}  // namespace

ProsumerNode::ProsumerNode(const Config& config, MessageBus* bus)
    : config_(config),
      bus_(bus),
      rng_(config.seed),
      retry_rng_(config.seed * 0x2545F4914F6CDD1DULL + config.id),
      channel_(ChannelConfig(config), bus) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "prosumer " << config_.id
                        << " registration failed: " << st;
  }
}

FlexOffer ProsumerNode::MakeOffer(TimeSlice now) {
  FlexOffer fo;
  // Offer ids must be globally unique: compose node id and local sequence.
  fo.id = config_.id * 1000000ULL + next_offer_seq_++;
  fo.owner = config_.id;
  fo.creation_time = now;
  int dur = static_cast<int>(
      rng_.UniformInt(config_.min_duration, config_.max_duration));
  // The window opens 4-12 hours ahead; quantise time flexibility so similar
  // device classes aggregate well. The lead leaves the BRP's control loop
  // enough gate closures to pick the offer up before the deadline.
  TimeSlice lead = rng_.UniformInt(16, 48);
  int64_t tf = (rng_.UniformInt(0, config_.max_time_flexibility) / 4) * 4;
  fo.earliest_start = now + lead;
  fo.latest_start = fo.earliest_start + tf;
  fo.assignment_before = fo.earliest_start - std::min<TimeSlice>(8, lead - 1);
  fo.profile.reserve(static_cast<size_t>(dur));
  for (int j = 0; j < dur; ++j) {
    double emax = rng_.Uniform(config_.min_slice_energy_kwh,
                               config_.max_slice_energy_kwh);
    double emin = emax * (1.0 - rng_.Uniform(0.0, config_.max_energy_flex));
    fo.profile.push_back({emin, emax});
  }
  fo.unit_price_eur = rng_.Uniform(0.01, 0.05);
  return fo;
}

void ProsumerNode::OnTick(TimeSlice now) {
  // Transport first: retransmit unacked sends that are due.
  channel_.OnTick(now);

  // Resubmit NACKed offers whose retry-after + backoff elapsed. Entries for
  // offers that meanwhile left the kOffered state (or timed out) are dropped;
  // the deadline fallback below owns those.
  for (auto it = resubmits_.begin(); it != resubmits_.end();) {
    if (it->second.due > now) {
      ++it;
      continue;
    }
    Result<const storage::FlexOfferFact*> fact = store_.FindFlexOffer(it->first);
    if (!fact.ok() || (*fact)->state != storage::FlexOfferState::kOffered ||
        (*fact)->offer.assignment_before <= now) {
      it = resubmits_.erase(it);
      continue;
    }
    ++it->second.attempts;
    it->second.due = kNotDue;  // wait state until the BRP NACKs again
    ++stats_.offers_resubmitted;
    Message msg;
    msg.type = MessageType::kFlexOffer;
    msg.from = config_.id;
    msg.to = config_.brp;
    msg.sent_at = now;
    msg.offer = (*fact)->offer;
    (void)channel_.Send(msg);
    ++it;
  }

  // Device activity: emit a flex-offer with per-slice probability matching
  // the configured daily rate.
  if (rng_.Bernoulli(config_.offers_per_day / flexoffer::kSlicesPerDay)) {
    FlexOffer fo = MakeOffer(now);
    if (store_.PutFlexOffer(fo).ok()) {
      ++stats_.offers_created;
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.brp;
      msg.sent_at = now;
      msg.offer = fo;
      (void)channel_.Send(msg);
    }
  }

  // Execute schedules whose profile completed by now, metering the energy.
  for (const auto& fact :
       store_.FlexOffersInState(storage::FlexOfferState::kScheduled)) {
    TimeSlice end = fact.schedule.start +
                    static_cast<int64_t>(fact.schedule.energies_kwh.size());
    if (end > now) continue;
    (void)store_.TransitionFlexOffer(fact.id,
                                     storage::FlexOfferState::kExecuted);
    ++stats_.offers_executed;
    Message msg;
    msg.type = MessageType::kMeasurement;
    msg.from = config_.id;
    msg.to = config_.brp;
    msg.sent_at = now;
    msg.offer_id = fact.id;
    msg.value = fact.schedule.TotalEnergy();
    (void)channel_.Send(msg);
  }

  // Timed-out offers fall back to the open contract: the load runs at its
  // default profile, unmanaged.
  for (const auto& fact : store_.ExpiredUnscheduled(now)) {
    if (store_.TransitionFlexOffer(fact.id, storage::FlexOfferState::kExpired)
            .ok()) {
      ++stats_.fallbacks;
      resubmits_.erase(fact.id);
    }
  }
}

void ProsumerNode::HandleMessage(const Message& msg) {
  // Transport filter: consume acks, ack what requires it, drop redelivered
  // duplicates before they reach lifecycle handling.
  if (!channel_.Accept(msg)) return;
  switch (msg.type) {
    case MessageType::kFlexOfferAccepted: {
      // A (possibly retried) reply landing after the deadline fallback finds
      // the offer already terminal: the transition fails and the stats must
      // not drift from the stored facts.
      if (store_
              .TransitionFlexOffer(msg.offer_id,
                                   storage::FlexOfferState::kAccepted)
              .ok()) {
        (void)store_.SetAgreedPrice(msg.offer_id, msg.value);
        stats_.earnings_eur += msg.value;
        ++stats_.offers_accepted;
      }
      resubmits_.erase(msg.offer_id);
      break;
    }
    case MessageType::kFlexOfferRejected: {
      if (store_
              .TransitionFlexOffer(msg.offer_id,
                                   storage::FlexOfferState::kRejected)
              .ok()) {
        ++stats_.offers_rejected;
      }
      resubmits_.erase(msg.offer_id);
      break;
    }
    case MessageType::kScheduledFlexOffer: {
      Result<const storage::FlexOfferFact*> fact =
          store_.FindFlexOffer(msg.schedule.offer_id);
      if (!fact.ok()) break;
      if ((*fact)->state == storage::FlexOfferState::kAccepted) {
        // BRP schedules arrive for accepted offers; the store transitions
        // the offer to kScheduled when the schedule attaches cleanly.
        if (store_.AttachSchedule(msg.schedule).ok()) {
          ++stats_.schedules_received;
        }
      }
      break;
    }
    case MessageType::kNack: {
      // Overloaded BRP shed the offer before an engine saw it. Honor the
      // server-supplied retry-after, plus exponential local backoff with
      // jitter so a thundering herd of shed prosumers spreads out.
      ++stats_.nacks_received;
      Result<const storage::FlexOfferFact*> fact =
          store_.FindFlexOffer(msg.offer_id);
      if (!fact.ok() ||
          (*fact)->state != storage::FlexOfferState::kOffered) {
        break;
      }
      Resubmit& r = resubmits_[msg.offer_id];
      if (r.attempts >= config_.max_offer_resubmits) {
        // Out of retries: leave it to the deadline fallback.
        resubmits_.erase(msg.offer_id);
        break;
      }
      TimeSlice retry_after = std::max<TimeSlice>(
          1, static_cast<TimeSlice>(msg.value));
      TimeSlice backoff = TimeSlice{1} << std::min(r.attempts, 6);
      r.due = bus_->now() + retry_after + backoff +
              retry_rng_.UniformInt(0, backoff);
      break;
    }
    default:
      break;
  }
}

}  // namespace mirabel::node
