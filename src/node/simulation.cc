#include "node/simulation.h"

#include <cstdio>

#include "datagen/energy_series_generator.h"
#include "flexoffer/time_slice.h"

namespace mirabel::node {

using flexoffer::kSlicesPerDay;
using flexoffer::TimeSlice;

std::string SimulationReport::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "SimulationReport{offers=%lld accepted=%lld rejected=%lld "
      "scheduled=%lld executed=%lld fallbacks=%lld earnings=%.2fEUR "
      "runs=%lld macros=%lld imbalance %.1f->%.1f kWh (-%.1f%%) "
      "msgs=%lld/%lld (dropped %lld, faulted %lld, backlog %lld) "
      "transport{retries=%lld dead=%lld dupes=%lld} "
      "degraded{nacks=%lld resubmits=%lld late_refused=%lld "
      "macros_expired=%lld exec_timeouts=%lld}}",
      static_cast<long long>(offers_created),
      static_cast<long long>(offers_accepted),
      static_cast<long long>(offers_rejected),
      static_cast<long long>(schedules_received),
      static_cast<long long>(offers_executed),
      static_cast<long long>(fallbacks), prosumer_earnings_eur,
      static_cast<long long>(scheduling_runs),
      static_cast<long long>(macros_scheduled), imbalance_before_kwh,
      imbalance_after_kwh, 100.0 * ImbalanceReduction(),
      static_cast<long long>(messages_delivered),
      static_cast<long long>(messages_sent),
      static_cast<long long>(messages_dropped),
      static_cast<long long>(messages_dropped_by_fault),
      static_cast<long long>(messages_undelivered_at_end),
      static_cast<long long>(transport_retries),
      static_cast<long long>(transport_dead_letters),
      static_cast<long long>(transport_duplicates_dropped),
      static_cast<long long>(nacks_received),
      static_cast<long long>(offers_resubmitted),
      static_cast<long long>(late_offers_refused),
      static_cast<long long>(macros_expired_unscheduled),
      static_cast<long long>(executions_timed_out));
  return buf;
}

EdmsSimulation::EdmsSimulation(const SimulationConfig& config)
    : config_(config), bus_(config.bus) {
  // Node id layout: TSO = 1, BRPs = 100 + b, prosumers = 1000 + i.
  const NodeId kTsoId = 1;

  // Per-BRP baseline imbalance curve: scaled demand minus scaled wind. The
  // amplitude is sized so the prosumers' flexible load can absorb a useful
  // share of it.
  const int sim_slices = (config.days + 2) * kSlicesPerDay;
  const int days_needed = config.days + 2;

  // Every aggregating node (all BRPs and the TSO) shares this one worker
  // pool: the hierarchy ticks its nodes from one control thread, so
  // shards_per_node workers serve the whole deployment — stealing floats
  // them to whichever node's shards are busy — instead of each node
  // spinning up its own thread-per-shard set.
  if (config.shards_per_node > 1) {
    edms::WorkerPool::Options pool_options;
    pool_options.num_threads = config.shards_per_node;
    pool_ = std::make_shared<edms::WorkerPool>(pool_options);
  }

  if (config_.use_tso) {
    AggregatingNode::Config tso_cfg;
    tso_cfg.id = kTsoId;
    tso_cfg.parent = 0;
    tso_cfg.num_shards = config.shards_per_node;
    tso_cfg.pool = pool_;
    tso_cfg.engine.negotiate = false;
    tso_cfg.engine.aggregation.params = aggregation::AggregationParams::P3();
    tso_cfg.engine.gate_period = config.gate_period;
    tso_cfg.engine.horizon = config.horizon;
    tso_cfg.engine.scheduler_factory = config.scheduler_factory;
    tso_cfg.engine.scheduler_budget_s = config.scheduler_budget_s;
    tso_cfg.engine.scheduler_max_iterations = config.scheduler_max_iterations;
    tso_cfg.engine.seed = config.seed * 7 + 1;
    tso_cfg.reliability = config.reliability;
    tso_cfg.streaming_intake = config.streaming_intake;
    tso_cfg.max_pending_batches_per_shard =
        config.max_pending_batches_per_shard;
    // The TSO balances the residual of the whole area.
    datagen::DemandSeriesConfig demand_cfg;
    demand_cfg.periods_per_day = kSlicesPerDay;
    demand_cfg.days = days_needed;
    demand_cfg.base_load_mw = 0.0;
    demand_cfg.daily_amplitude =
        3.0 * static_cast<double>(config.num_brps * config.prosumers_per_brp);
    demand_cfg.weekly_amplitude = demand_cfg.daily_amplitude / 4;
    demand_cfg.annual_amplitude = 0.0;
    demand_cfg.noise_stddev = demand_cfg.daily_amplitude / 30;
    demand_cfg.seed = config.seed + 17;
    tso_cfg.engine.baseline = std::make_shared<edms::VectorBaselineProvider>(
        datagen::GenerateDemandSeries(demand_cfg));
    tso_cfg.engine.max_buy_kwh =
        5.0 * config.num_brps * config.prosumers_per_brp;
    tso_cfg.engine.max_sell_kwh = tso_cfg.engine.max_buy_kwh;
    tso_ = std::make_unique<AggregatingNode>(tso_cfg, &bus_);
  }

  for (int b = 0; b < config.num_brps; ++b) {
    AggregatingNode::Config brp_cfg;
    brp_cfg.id = 100 + static_cast<NodeId>(b);
    brp_cfg.parent = config_.use_tso ? kTsoId : 0;
    brp_cfg.num_shards = config.shards_per_node;
    brp_cfg.pool = pool_;
    brp_cfg.engine.negotiate = true;
    brp_cfg.engine.aggregation.params = aggregation::AggregationParams::P3();
    brp_cfg.engine.gate_period = config.gate_period;
    brp_cfg.engine.horizon = config.horizon;
    brp_cfg.engine.scheduler_factory = config.scheduler_factory;
    brp_cfg.engine.scheduler_budget_s = config.scheduler_budget_s;
    brp_cfg.engine.scheduler_max_iterations = config.scheduler_max_iterations;
    brp_cfg.engine.seed = config.seed * 13 + static_cast<uint64_t>(b);
    brp_cfg.reliability = config.reliability;
    brp_cfg.streaming_intake = config.streaming_intake;
    brp_cfg.max_pending_batches_per_shard =
        config.max_pending_batches_per_shard;

    // Demand (positive) minus wind supply: the curve the BRP must balance.
    datagen::DemandSeriesConfig demand_cfg;
    demand_cfg.periods_per_day = kSlicesPerDay;
    demand_cfg.days = days_needed;
    demand_cfg.base_load_mw = 1.0 * config.prosumers_per_brp;
    demand_cfg.daily_amplitude = 1.5 * config.prosumers_per_brp;
    demand_cfg.weekly_amplitude = 0.4 * config.prosumers_per_brp;
    demand_cfg.annual_amplitude = 0.0;
    demand_cfg.noise_stddev = 0.08 * config.prosumers_per_brp;
    demand_cfg.seed = config.seed + static_cast<uint64_t>(100 + b);
    std::vector<double> demand = datagen::GenerateDemandSeries(demand_cfg);

    datagen::WindSeriesConfig wind_cfg;
    wind_cfg.periods_per_day = kSlicesPerDay;
    wind_cfg.days = days_needed;
    wind_cfg.capacity_mw = 2.0 * config.prosumers_per_brp;
    wind_cfg.seed = config.seed + static_cast<uint64_t>(200 + b);
    std::vector<double> wind = datagen::GenerateWindSeries(wind_cfg);

    std::vector<double> imbalance(static_cast<size_t>(sim_slices));
    for (int t = 0; t < sim_slices; ++t) {
      imbalance[static_cast<size_t>(t)] =
          demand[static_cast<size_t>(t)] - wind[static_cast<size_t>(t)];
    }
    brp_cfg.engine.baseline =
        std::make_shared<edms::VectorBaselineProvider>(std::move(imbalance));
    brp_cfg.engine.max_buy_kwh = 2.0 * config.prosumers_per_brp;
    brp_cfg.engine.max_sell_kwh = 2.0 * config.prosumers_per_brp;
    brps_.push_back(std::make_unique<AggregatingNode>(brp_cfg, &bus_));

    for (int p = 0; p < config.prosumers_per_brp; ++p) {
      ProsumerNode::Config pro_cfg;
      pro_cfg.id = 1000 + static_cast<NodeId>(b) * 1000 +
                   static_cast<NodeId>(p);
      pro_cfg.brp = brp_cfg.id;
      pro_cfg.offers_per_day = config.offers_per_day;
      pro_cfg.seed = config.seed * 31 + static_cast<uint64_t>(b) * 997 +
                     static_cast<uint64_t>(p);
      pro_cfg.reliability = config.reliability;
      prosumers_.push_back(std::make_unique<ProsumerNode>(pro_cfg, &bus_));
    }
  }
}

SimulationReport EdmsSimulation::Run() {
  const TimeSlice end = static_cast<TimeSlice>(config_.days) * kSlicesPerDay;
  const FaultPlan& faults = config_.bus.faults;
  for (TimeSlice now = 0; now < end; ++now) {
    // A stalled node skips its tick: no new offers, no retries, no gate —
    // but its mailbox still accepts deliveries (bus handlers are passive).
    for (auto& p : prosumers_) {
      if (!faults.StalledAt(p->id(), now)) p->OnTick(now);
    }
    bus_.AdvanceTo(now);
    for (auto& b : brps_) {
      if (!faults.StalledAt(b->id(), now)) b->OnTick(now);
    }
    bus_.AdvanceTo(now);
    if (tso_ != nullptr && !faults.StalledAt(tso_->id(), now)) {
      tso_->OnTick(now);
    }
    bus_.AdvanceTo(now);
  }
  // Drain in-flight messages and give prosumers a final execution pass.
  // Aggregating nodes only flush their buffers here (no new gates): the
  // batch-per-tick adapters must absorb the execution meterings arriving
  // during the drain, but a gate opened now would assign schedules nobody
  // is left to execute.
  bus_.AdvanceTo(end + config_.bus.latency_slices);
  for (TimeSlice now = end; now < end + 2 * kSlicesPerDay; ++now) {
    for (auto& p : prosumers_) p->OnTick(now);
    bus_.AdvanceTo(now);
    for (auto& b : brps_) b->FlushBuffers(now);
    if (tso_ != nullptr) tso_->FlushBuffers(now);
    bus_.AdvanceTo(now);
  }
  // Deliver anything sent during the final drain ticks, then flush once
  // more: with bus latency, the last meterings only arrive in this final
  // delivery pass and would otherwise sit in the adapters' buffers.
  const TimeSlice final_slice =
      end + 2 * kSlicesPerDay + config_.bus.latency_slices;
  bus_.AdvanceTo(final_slice);
  for (auto& b : brps_) b->FlushBuffers(final_slice);
  if (tso_ != nullptr) tso_->FlushBuffers(final_slice);
  // The flushes may answer late offers, and every delivery of an
  // ack-required message triggers an ack send in turn: keep advancing in
  // latency-sized steps until the queue drains (bounded — an ack chain is
  // at most reply -> ack, but retransmits can stack a few more rounds).
  TimeSlice settle = final_slice;
  for (int round = 0; round < 8; ++round) {
    settle += std::max<TimeSlice>(1, config_.bus.latency_slices);
    bus_.AdvanceTo(settle);
    if (bus_.pending() == 0) break;
  }

  SimulationReport report;
  for (const auto& p : prosumers_) {
    const ProsumerStats& s = p->stats();
    report.offers_created += s.offers_created;
    report.offers_accepted += s.offers_accepted;
    report.offers_rejected += s.offers_rejected;
    report.schedules_received += s.schedules_received;
    report.offers_executed += s.offers_executed;
    report.fallbacks += s.fallbacks;
    report.prosumer_earnings_eur += s.earnings_eur;
  }
  for (const auto& p : prosumers_) {
    report.nacks_received += p->stats().nacks_received;
    report.offers_resubmitted += p->stats().offers_resubmitted;
    report.transport_retries += p->channel().stats().retries;
    report.transport_dead_letters += p->channel().stats().dead_letters;
    report.transport_duplicates_dropped +=
        p->channel().stats().duplicates_dropped;
    report.transport_acks_sent += p->channel().stats().acks_sent;
  }
  auto add_agg = [&report](const AggregatingNode& n) {
    report.scheduling_runs += n.stats().scheduling_runs;
    report.macros_scheduled += n.stats().macros_scheduled;
    report.imbalance_before_kwh += n.stats().imbalance_before_kwh;
    report.imbalance_after_kwh += n.stats().imbalance_after_kwh;
    report.schedule_cost_eur += n.stats().schedule_cost_eur;
    report.late_offers_refused += n.late_offers_refused();
    report.macros_expired_unscheduled += n.stats().macros_expired_unscheduled;
    report.executions_timed_out += n.stats().executions_timed_out;
    report.transport_retries += n.channel().stats().retries;
    report.transport_dead_letters += n.channel().stats().dead_letters;
    report.transport_duplicates_dropped +=
        n.channel().stats().duplicates_dropped;
    report.transport_acks_sent += n.channel().stats().acks_sent;
  };
  for (const auto& b : brps_) add_agg(*b);
  if (tso_ != nullptr) add_agg(*tso_);
  report.messages_sent = bus_.sent();
  report.messages_delivered = bus_.delivered();
  report.messages_dropped = bus_.dropped();
  report.messages_dropped_by_fault = bus_.dropped_by_fault();
  // Satellite: surface any undelivered backlog (ReportBacklog also logs a
  // warning naming the first stuck message).
  report.messages_undelivered_at_end =
      static_cast<int64_t>(bus_.ReportBacklog());
  return report;
}

}  // namespace mirabel::node
