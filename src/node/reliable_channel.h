#ifndef MIRABEL_NODE_RELIABLE_CHANNEL_H_
#define MIRABEL_NODE_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <map>
#include <unordered_set>

#include "common/rng.h"
#include "node/message_bus.h"

namespace mirabel::node {

/// Acked at-least-once delivery over the lossy MessageBus, deduped back to
/// exactly-once at the receiver.
///
/// One channel serves one node, on both sides of the wire:
///  * Sender side — Send() stamps a transport id, marks the message
///    ack-required and tracks it in flight; OnTick() retransmits unacked
///    messages with seeded exponential backoff + jitter and gives up into a
///    dead-letter counter after max_attempts (degradation then falls to the
///    deadline layer: owners fall back to their baseline profiles).
///  * Receiver side — Accept() acknowledges every ack-required delivery
///    (including redeliveries, whose earlier ack may have been lost),
///    consumes kAck messages, and suppresses duplicate transport ids so the
///    node's handlers stay idempotent.
///
/// The retry state machine per message:
///
///   in-flight --ack--> done
///   in-flight --timeout--> retransmit (attempts + 1, backoff doubled)
///   in-flight --attempts == max--> dead-letter (counted, logged)
///
/// Everything is seeded and slice-clocked, so a run is bit-reproducible.
/// With `enabled = false` the channel is a transparent passthrough (no ids,
/// no acks, no retries) — the pre-reliability wire format.
class ReliableChannel {
 public:
  struct Config {
    /// The owning node (stamped into transport ids and acks).
    NodeId self = 0;
    /// False: passthrough mode, Send() forwards untouched and Accept()
    /// forwards everything but stray acks.
    bool enabled = true;
    /// Total delivery attempts per message (first send included).
    int max_attempts = 5;
    /// Slices to wait for an ack before the first retransmit; must exceed
    /// one bus round trip (2 * latency) to avoid spurious retries.
    int64_t retry_timeout_slices = 4;
    /// Backoff cap: timeout * 2^(attempt-1) clamps here.
    int64_t max_backoff_slices = 32;
    /// Jitter fraction: up to jitter * backoff extra slices, seeded.
    double jitter = 0.25;
    uint64_t seed = 7;
  };

  struct Stats {
    /// Payload messages handed to Send() (first attempts only).
    int64_t sent = 0;
    int64_t retries = 0;
    int64_t acked = 0;
    /// Unacked messages abandoned after max_attempts, plus sends that were
    /// unroutable at the bus.
    int64_t dead_letters = 0;
    /// Redeliveries suppressed at the receiver.
    int64_t duplicates_dropped = 0;
    int64_t acks_sent = 0;
  };

  ReliableChannel(const Config& config, MessageBus* bus);

  /// Stamps the transport id, tracks the message and sends it. An
  /// unroutable recipient (bus NotFound) fails immediately and counts as a
  /// dead letter — there is nobody to retry towards.
  Status Send(Message msg);

  /// Receiver-side filter, called on every inbound message BEFORE the
  /// node's handler logic. Returns true when the message should be handled;
  /// false for consumed acks and suppressed duplicates.
  bool Accept(const Message& msg);

  /// Retransmits every in-flight message whose retry timer expired at
  /// `now`; dead-letters those out of attempts.
  void OnTick(flexoffer::TimeSlice now);

  size_t in_flight() const { return in_flight_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    Message msg;
    int attempts = 1;
    flexoffer::TimeSlice next_retry = 0;
  };

  /// timeout * 2^(attempt-1), clamped, plus seeded jitter.
  int64_t Backoff(int attempt);

  Config config_;
  MessageBus* bus_;
  Rng rng_;
  Stats stats_;
  uint64_t next_seq_ = 1;
  /// Ordered by transport id (== send order) so retransmit order is
  /// deterministic.
  std::map<uint64_t, Pending> in_flight_;
  /// Transport ids already delivered to the node's handlers.
  std::unordered_set<uint64_t> seen_;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_RELIABLE_CHANNEL_H_
