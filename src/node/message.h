#ifndef MIRABEL_NODE_MESSAGE_H_
#define MIRABEL_NODE_MESSAGE_H_

#include <cstdint>
#include <string>

#include "flexoffer/flex_offer.h"

namespace mirabel::node {

/// Identifier of an EDMS node; nodes are actors, so the id spaces coincide.
using NodeId = flexoffer::ActorId;

/// Kinds of messages exchanged between LEDMS nodes (paper §3: "flex-offers,
/// supply and demand measurements, forecasts, etc.").
enum class MessageType {
  /// Prosumer -> BRP (or BRP -> TSO): a new flex-offer.
  kFlexOffer = 0,
  /// BRP -> prosumer: offer accepted at the quoted flexibility price.
  kFlexOfferAccepted = 1,
  /// BRP -> prosumer: offer rejected (prosumer keeps its tariff behaviour).
  kFlexOfferRejected = 2,
  /// Scheduler owner -> offer owner: the scheduled instantiation.
  kScheduledFlexOffer = 3,
  /// Prosumer -> BRP: metered energy of one slice.
  kMeasurement = 4,
  /// Transport-level delivery acknowledgement (ReliableChannel): `ack_id`
  /// names the acknowledged message. Never retried, never acked itself.
  kAck = 5,
  /// BRP -> prosumer: intake overloaded, the offer was shed before reaching
  /// an engine. `value` carries the suggested retry-after (slices); the
  /// prosumer resubmits with backoff.
  kNack = 6,
};

/// A message on the EDMS wide-area network. Exactly the fields implied by
/// `type` are meaningful; the struct is kept flat (no variant) so messages
/// stay trivially copyable and easy to log.
struct Message {
  MessageType type = MessageType::kFlexOffer;
  NodeId from = 0;
  NodeId to = 0;
  /// Slice at which the sender posted the message.
  flexoffer::TimeSlice sent_at = 0;

  /// Transport id, unique per sender (ReliableChannel stamps
  /// sender << 32 | sequence); 0 = untracked fire-and-forget. Retransmits
  /// reuse the id so receivers can dedupe redelivery.
  uint64_t id = 0;
  /// kAck / kNack: the transport id of the subject message.
  uint64_t ack_id = 0;
  /// True when the sender expects a kAck and will retry until one arrives.
  bool requires_ack = false;

  /// kFlexOffer payload.
  flexoffer::FlexOffer offer;
  /// kScheduledFlexOffer payload.
  flexoffer::ScheduledFlexOffer schedule;
  /// kFlexOfferAccepted: agreed flexibility price (EUR).
  /// kMeasurement: metered energy (kWh).
  /// kNack: suggested retry-after (slices).
  double value = 0.0;
  /// kFlexOfferAccepted / kFlexOfferRejected / kMeasurement / kNack:
  /// subject offer (0 for measurements not tied to an offer).
  flexoffer::FlexOfferId offer_id = 0;

  std::string ToString() const;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_MESSAGE_H_
