#ifndef MIRABEL_NODE_PROSUMER_NODE_H_
#define MIRABEL_NODE_PROSUMER_NODE_H_

#include <cstdint>
#include <map>

#include "common/rng.h"
#include "node/message_bus.h"
#include "node/reliable_channel.h"
#include "storage/data_store.h"

namespace mirabel::node {

/// Statistics of one prosumer's flex-offer lifecycle.
struct ProsumerStats {
  int64_t offers_created = 0;
  int64_t offers_accepted = 0;
  int64_t offers_rejected = 0;
  int64_t schedules_received = 0;
  int64_t offers_executed = 0;
  /// Offers whose assignment deadline passed unscheduled; the prosumer fell
  /// back to the open contract (paper §1).
  int64_t fallbacks = 0;
  /// Overload NACKs received from the BRP (offer shed before an engine).
  int64_t nacks_received = 0;
  /// NACKed offers resubmitted after honoring the retry-after + backoff.
  int64_t offers_resubmitted = 0;
  /// Flexibility payments received (EUR).
  double earnings_eur = 0.0;
};

/// A level-1 LEDMS node (paper §2 step 1-4): generates flex-offers from its
/// devices, sends them to its BRP over an acked ReliableChannel, executes
/// the schedules it receives, honors overload NACKs with backoff, and falls
/// back to the open contract when an offer times out.
class ProsumerNode {
 public:
  struct Config {
    NodeId id = 0;
    /// The BRP this prosumer contracts with.
    NodeId brp = 0;
    /// Expected flex-offers per day (Bernoulli per slice).
    double offers_per_day = 3.0;
    /// Minimum payment demanded for handing over control (EUR).
    double reservation_price_eur = 0.0;
    /// Offer shape: durations (slices), time flexibility, per-slice energy.
    int min_duration = 2;
    int max_duration = 12;
    int max_time_flexibility = 32;
    double min_slice_energy_kwh = 0.25;
    double max_slice_energy_kwh = 2.0;
    double max_energy_flex = 0.5;
    uint64_t seed = 1;
    /// Transport reliability (retry/ack/dedupe); `self` and `seed` are
    /// derived from `id`/`seed` by the constructor.
    ReliableChannel::Config reliability;
    /// NACKed offers are resubmitted at most this many times before the
    /// deadline fallback closes them.
    int max_offer_resubmits = 3;
  };

  /// Registers the node on `bus` (which must outlive it).
  ProsumerNode(const Config& config, MessageBus* bus);

  /// Advances the node to slice `now`: retries unacked sends, resubmits
  /// NACKed offers that are due, possibly emits a new flex-offer, executes
  /// schedules that completed, and expires timed-out offers.
  void OnTick(flexoffer::TimeSlice now);

  const ProsumerStats& stats() const { return stats_; }
  const storage::DataStore& store() const { return store_; }
  /// Transport-level reliability counters (retries, dead letters, dupes).
  const ReliableChannel& channel() const { return channel_; }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  flexoffer::FlexOffer MakeOffer(flexoffer::TimeSlice now);

  /// One NACKed offer waiting out its retry-after + backoff.
  struct Resubmit {
    flexoffer::TimeSlice due = 0;
    int attempts = 0;
  };

  Config config_;
  MessageBus* bus_;
  storage::DataStore store_;
  Rng rng_;
  /// Separate stream for retry jitter so backoff does not perturb the
  /// node's offer-generation sequence (workloads stay comparable across
  /// fault plans).
  Rng retry_rng_;
  ReliableChannel channel_;
  ProsumerStats stats_;
  /// Ordered by offer id: deterministic resubmission order.
  std::map<flexoffer::FlexOfferId, Resubmit> resubmits_;
  flexoffer::FlexOfferId next_offer_seq_ = 1;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_PROSUMER_NODE_H_
