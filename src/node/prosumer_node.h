#ifndef MIRABEL_NODE_PROSUMER_NODE_H_
#define MIRABEL_NODE_PROSUMER_NODE_H_

#include <cstdint>

#include "common/rng.h"
#include "node/message_bus.h"
#include "storage/data_store.h"

namespace mirabel::node {

/// Statistics of one prosumer's flex-offer lifecycle.
struct ProsumerStats {
  int64_t offers_created = 0;
  int64_t offers_accepted = 0;
  int64_t offers_rejected = 0;
  int64_t schedules_received = 0;
  int64_t offers_executed = 0;
  /// Offers whose assignment deadline passed unscheduled; the prosumer fell
  /// back to the open contract (paper §1).
  int64_t fallbacks = 0;
  /// Flexibility payments received (EUR).
  double earnings_eur = 0.0;
};

/// A level-1 LEDMS node (paper §2 step 1-4): generates flex-offers from its
/// devices, sends them to its BRP, executes the schedules it receives and
/// falls back to the open contract when an offer times out.
class ProsumerNode {
 public:
  struct Config {
    NodeId id = 0;
    /// The BRP this prosumer contracts with.
    NodeId brp = 0;
    /// Expected flex-offers per day (Bernoulli per slice).
    double offers_per_day = 3.0;
    /// Minimum payment demanded for handing over control (EUR).
    double reservation_price_eur = 0.0;
    /// Offer shape: durations (slices), time flexibility, per-slice energy.
    int min_duration = 2;
    int max_duration = 12;
    int max_time_flexibility = 32;
    double min_slice_energy_kwh = 0.25;
    double max_slice_energy_kwh = 2.0;
    double max_energy_flex = 0.5;
    uint64_t seed = 1;
  };

  /// Registers the node on `bus` (which must outlive it).
  ProsumerNode(const Config& config, MessageBus* bus);

  /// Advances the node to slice `now`: possibly emits a new flex-offer,
  /// executes schedules that completed, and expires timed-out offers.
  void OnTick(flexoffer::TimeSlice now);

  const ProsumerStats& stats() const { return stats_; }
  const storage::DataStore& store() const { return store_; }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  flexoffer::FlexOffer MakeOffer(flexoffer::TimeSlice now);

  Config config_;
  MessageBus* bus_;
  storage::DataStore store_;
  Rng rng_;
  ProsumerStats stats_;
  flexoffer::FlexOfferId next_offer_seq_ = 1;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_PROSUMER_NODE_H_
