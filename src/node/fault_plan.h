#ifndef MIRABEL_NODE_FAULT_PLAN_H_
#define MIRABEL_NODE_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "node/message.h"

namespace mirabel::node {

/// A seeded chaos schedule for one simulation run (paper §1: "even in
/// critical scenarios (e.g., nodes unreachable, failed execution deadlines)
/// the overall system would gracefully behave as in the traditional
/// setting"). Every fault is a slice window, so a plan composes with the
/// deterministic slice clock: the same plan + the same bus seed reproduces
/// the exact same drops, delays and stalls. All windows are half-open
/// [from, to) against Message::sent_at.
///
/// MessageBus evaluates the wire-level faults (drops, blackouts, partitions,
/// latency spikes) at Send() time; EdmsSimulation drives the node-level
/// stalls (a stalled node skips its OnTick — a frozen control loop, not a
/// network failure).
struct FaultPlan {
  /// Messages sent inside the window are dropped with `probability`
  /// (1.0 = hard outage).
  struct DropWindow {
    flexoffer::TimeSlice from = 0;
    flexoffer::TimeSlice to = 0;
    double probability = 1.0;
  };

  /// Node unreachable: every message to or from `node` inside the window is
  /// dropped (the node itself keeps running — it just cannot reach anyone).
  struct Blackout {
    NodeId node = 0;
    flexoffer::TimeSlice from = 0;
    flexoffer::TimeSlice to = 0;
  };

  /// Network split: messages crossing the island boundary (exactly one
  /// endpoint in `island`) inside the window are dropped; traffic within the
  /// island and within the rest still flows.
  struct Partition {
    std::vector<NodeId> island;
    flexoffer::TimeSlice from = 0;
    flexoffer::TimeSlice to = 0;
  };

  /// Congestion: messages sent inside the window are delayed by
  /// `extra_slices` on top of the configured bus latency.
  struct LatencySpike {
    flexoffer::TimeSlice from = 0;
    flexoffer::TimeSlice to = 0;
    int64_t extra_slices = 0;
  };

  /// Frozen control loop: the simulation skips OnTick() of `node` inside the
  /// window (gates stall, retries stall — delivery to the node continues).
  struct Stall {
    NodeId node = 0;
    flexoffer::TimeSlice from = 0;
    flexoffer::TimeSlice to = 0;
  };

  std::vector<DropWindow> drop_windows;
  std::vector<Blackout> blackouts;
  std::vector<Partition> partitions;
  std::vector<LatencySpike> latency_spikes;
  std::vector<Stall> stalls;

  bool empty() const {
    return drop_windows.empty() && blackouts.empty() && partitions.empty() &&
           latency_spikes.empty() && stalls.empty();
  }

  /// True when the simulation must skip `node`'s OnTick at `now`.
  bool StalledAt(NodeId node, flexoffer::TimeSlice now) const;
};

/// A named fault scenario for the chaos suite and the robustness bench.
struct NamedFaultPlan {
  std::string name;
  FaultPlan plan;
};

/// The named chaos scenarios, sized against a run of `run_slices` active
/// slices over the standard simulation id layout (TSO = 1, BRPs = 100 + b,
/// prosumers = 1000 + ...). Includes the two acceptance anchors: a 100% drop
/// window and a full BRP blackout.
std::vector<NamedFaultPlan> ChaosScenarios(flexoffer::TimeSlice run_slices);

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_FAULT_PLAN_H_
