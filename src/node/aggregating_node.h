#ifndef MIRABEL_NODE_AGGREGATING_NODE_H_
#define MIRABEL_NODE_AGGREGATING_NODE_H_

#include <unordered_map>
#include <vector>

#include "aggregation/pipeline.h"
#include "negotiation/negotiator.h"
#include "node/message_bus.h"
#include "scheduling/scheduler.h"
#include "storage/data_store.h"

namespace mirabel::node {

/// Statistics of one aggregating node's trading activity.
struct AggregatingStats {
  int64_t offers_received = 0;
  int64_t offers_accepted = 0;
  int64_t offers_rejected = 0;
  int64_t scheduling_runs = 0;
  int64_t macros_scheduled = 0;
  int64_t micro_schedules_sent = 0;
  int64_t offers_expired_in_pipeline = 0;
  /// Flexibility payments promised to offer owners (EUR).
  double payments_eur = 0.0;
  /// Absolute imbalance over the accounted horizon slices, without / with
  /// flex-offer scheduling (kWh). The "after" number is what the paper's
  /// Fig. 1 illustrates: shifted flexible demand absorbs RES production.
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;
  /// Total scheduling cost of the accepted schedules (EUR).
  double schedule_cost_eur = 0.0;
};

/// A level-2 (BRP) or level-3 (TSO) LEDMS node: the Control component
/// orchestrating negotiation, aggregation, scheduling and disaggregation
/// (paper §3, §8).
///
/// Offers stream in from children and pass negotiation (BRP only) into the
/// aggregation pipeline. Every `gate_period` slices the control loop fires:
/// the pipeline is flushed, macro offers that fit the upcoming horizon are
/// either scheduled locally (leaf-of-hierarchy mode) or forwarded to the
/// parent node for higher-level aggregation and scheduling (paper §2: "the
/// process is essentially repeated at a higher level"). Schedules coming
/// back for a macro offer are disaggregated and relayed to the members'
/// owners.
class AggregatingNode {
 public:
  struct Config {
    NodeId id = 0;
    /// Parent node (TSO) to forward macro offers to; 0 = schedule locally.
    NodeId parent = 0;
    /// Negotiate (and possibly reject) incoming offers. BRPs negotiate with
    /// prosumers; a TSO accepts the macro offers of its BRPs.
    bool negotiate = true;
    negotiation::Negotiator::Config negotiation;
    aggregation::PipelineConfig aggregation;

    /// Control-loop cadence (slices between gate closures).
    int gate_period = 16;
    /// Scheduling horizon per run (slices).
    int horizon = 96;
    /// Scheduler ("GreedySearch" or "EvolutionaryAlgorithm") and budget.
    std::string scheduler = "GreedySearch";
    double scheduler_budget_s = 0.05;
    uint64_t seed = 5;

    /// Forecast imbalance (demand - RES supply, kWh per slice) indexed by
    /// absolute slice; must cover the whole simulated span. In the full
    /// system this comes from the forecasting component; the simulation
    /// injects it so runs stay fast and deterministic.
    std::vector<double> baseline_imbalance_kwh;
    /// Market / penalty parameters of the node's scheduling problems.
    double penalty_eur_per_kwh = 0.25;
    double buy_price_eur = 0.12;
    double sell_price_eur = 0.05;
    double max_buy_kwh = 50.0;
    double max_sell_kwh = 50.0;
  };

  /// Registers the node on `bus` (which must outlive it).
  AggregatingNode(const Config& config, MessageBus* bus);

  /// Advances the control loop; fires the gate when due.
  void OnTick(flexoffer::TimeSlice now);

  const AggregatingStats& stats() const { return stats_; }
  const storage::DataStore& store() const { return store_; }
  const aggregation::AggregationPipeline& pipeline() const { return pipeline_; }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  void RunGate(flexoffer::TimeSlice now);
  /// Schedules `macros` locally over (now, now + horizon] and sends the
  /// disaggregated member schedules to their owners.
  void ScheduleLocally(flexoffer::TimeSlice now,
                       std::vector<aggregation::AggregatedFlexOffer> macros);
  /// Disaggregates `macro_schedule` against the snapshot `agg` and sends one
  /// schedule message per member to the member offer's owner.
  void SendMemberSchedules(
      flexoffer::TimeSlice now, const aggregation::AggregatedFlexOffer& agg,
      const flexoffer::ScheduledFlexOffer& macro_schedule);

  Config config_;
  MessageBus* bus_;
  storage::DataStore store_;
  negotiation::Negotiator negotiator_;
  aggregation::AggregationPipeline pipeline_;
  AggregatingStats stats_;
  flexoffer::TimeSlice last_gate_ = -1;
  /// Snapshots of macro offers forwarded to the parent, keyed by the
  /// composite macro id used on the wire; needed to disaggregate the
  /// schedules when they return.
  std::unordered_map<flexoffer::FlexOfferId,
                     aggregation::AggregatedFlexOffer>
      pending_macros_;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_AGGREGATING_NODE_H_
