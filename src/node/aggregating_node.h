#ifndef MIRABEL_NODE_AGGREGATING_NODE_H_
#define MIRABEL_NODE_AGGREGATING_NODE_H_

#include "edms/edms_engine.h"
#include "node/message_bus.h"

namespace mirabel::node {

/// Statistics of one aggregating node's trading activity (kept by the
/// node's engine).
using AggregatingStats = edms::EngineStats;

/// A level-2 (BRP) or level-3 (TSO) LEDMS node: a thin messaging adapter
/// around EdmsEngine, which owns the whole flex-offer life cycle — intake
/// and negotiation, aggregation, scheduling, disaggregation (paper §3, §8).
///
/// The node's job is translation only: bus messages become engine calls
/// (SubmitOffers / CompleteMacroSchedule / RecordExecution), engine events
/// become bus messages (accept/reject replies, macro forwards to the parent
/// node, member schedules to their owners). All orchestration lives in the
/// engine.
class AggregatingNode {
 public:
  struct Config {
    NodeId id = 0;
    /// Parent node (TSO) to forward macro offers to; 0 = schedule locally.
    NodeId parent = 0;
    /// The engine running this node's control loop. `engine.actor` and
    /// `engine.schedule_locally` are derived from `id`/`parent` by the
    /// constructor.
    edms::EdmsEngine::Config engine;
  };

  /// Registers the node on `bus` (which must outlive it).
  AggregatingNode(const Config& config, MessageBus* bus);

  /// Advances the control loop; fires the gate when due.
  void OnTick(flexoffer::TimeSlice now);

  const AggregatingStats& stats() const { return engine_.stats(); }
  const storage::DataStore& store() const { return engine_.store(); }
  const aggregation::AggregationPipeline& pipeline() const {
    return engine_.pipeline();
  }
  const edms::EdmsEngine& engine() const { return engine_; }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  /// Drains the engine's event stream and relays each event on the bus.
  void DispatchEvents();

  Config config_;
  MessageBus* bus_;
  edms::EdmsEngine engine_;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_AGGREGATING_NODE_H_
