#ifndef MIRABEL_NODE_AGGREGATING_NODE_H_
#define MIRABEL_NODE_AGGREGATING_NODE_H_

#include <cstdint>
#include <vector>

#include "edms/sharded_runtime.h"
#include "node/message_bus.h"
#include "node/reliable_channel.h"

namespace mirabel::node {

/// Statistics of one aggregating node's trading activity (merged across the
/// node's engine shards).
using AggregatingStats = edms::EngineStats;

/// A level-2 (BRP) or level-3 (TSO) LEDMS node: a thin messaging adapter
/// around a ShardedEdmsRuntime, which owns the whole flex-offer life cycle —
/// intake and negotiation, aggregation, scheduling, disaggregation (paper
/// §3, §8) — partitioned across `num_shards` engine shards.
///
/// The node's job is translation only, and it is batch-first: incoming
/// flex-offers are buffered and submitted as ONE batch per tick (not one
/// engine call per bus message), so a node absorbing thousands of prosumer
/// messages per slice pays one routed fan-out per gate period instead of a
/// per-message round trip. Engine events become bus messages (accept/reject
/// replies, macro forwards to the parent node, member schedules to their
/// owners). All orchestration lives in the runtime's shards.
class AggregatingNode {
 public:
  struct Config {
    NodeId id = 0;
    /// Parent node (TSO) to forward macro offers to; 0 = schedule locally.
    NodeId parent = 0;
    /// Engine shards of this node's runtime; prosumers are partitioned by
    /// owner id (edms::OwnerModuloRouter by default). 1 = the single-engine
    /// deployment.
    size_t num_shards = 1;
    /// Optional custom owner -> shard placement.
    edms::ShardRouter router;
    /// Optional shared worker pool for the node's runtime: a multi-BRP
    /// deployment passes every node one handle, so the whole hierarchy
    /// schedules its shard work (with stealing) on one fixed set of worker
    /// threads instead of one thread per shard per node. Null: the runtime
    /// sizes a private pool (num_shards workers).
    std::shared_ptr<edms::WorkerPool> pool;
    /// Template engine config for every shard. `engine.actor` and
    /// `engine.schedule_locally` are derived from `id`/`parent` by the
    /// constructor.
    edms::EdmsEngine::Config engine;
    /// Streaming-intake knobs threaded through to the runtime (see
    /// ShardedEdmsRuntime::Config). With a bounded queue the runtime sheds
    /// overflow as OfferRejected{kOverloaded}; this node turns those into
    /// kNack bus replies so prosumers retry with backoff instead of losing
    /// the offer.
    bool streaming_intake = false;
    size_t max_pending_batches_per_shard = 0;
    /// Retry-after carried in overload NACKs (slices); 0 derives one gate
    /// period — by then a full scheduling pass has drained the queues.
    int64_t nack_retry_after_slices = 0;
    /// Transport reliability (retry/ack/dedupe); `self` and `seed` are
    /// derived from `id` and the reliability seed by the constructor.
    ReliableChannel::Config reliability;
  };

  /// Registers the node on `bus` (which must outlive it).
  AggregatingNode(const Config& config, MessageBus* bus);

  /// Advances the control loop: flushes the tick's buffered meter readings
  /// and offer batch, then fires due gates on every shard.
  void OnTick(flexoffer::TimeSlice now);

  /// Flushes the buffered meter readings and relays pending events WITHOUT
  /// advancing the control loop. Wind-down phases use this to absorb
  /// end-of-run execution meterings without opening new scheduling gates.
  /// Offers still buffered are REFUSED with a kFlexOfferRejected reply
  /// (counted in late_offers_refused()) instead of being admitted to a
  /// pipeline that will never run another gate, and the runtime's deadline
  /// sweep (ExpireDeadlines) terminalizes anything the gates left behind —
  /// so every offer the node ever saw reaches a terminal state.
  void FlushBuffers(flexoffer::TimeSlice now);

  /// Merged stats of all engine shards.
  AggregatingStats stats() const { return runtime_.stats(); }
  /// Per-shard state views. The shard index is explicit on purpose: on a
  /// partitioned node each store/pipeline holds only its shard's slice of
  /// the state (route an owner with runtime().ShardOf(owner)).
  const storage::DataStore& store(size_t shard) const {
    return runtime_.shard(shard).store();
  }
  const aggregation::AggregationPipeline& pipeline(size_t shard) const {
    return runtime_.shard(shard).pipeline();
  }
  const edms::ShardedEdmsRuntime& runtime() const { return runtime_; }
  /// Offers buffered since the last tick.
  size_t pending_offers() const { return pending_offers_.size(); }
  /// Transport-level reliability counters (retries, dead letters, dupes).
  const ReliableChannel& channel() const { return channel_; }
  /// Offers refused (with a rejection reply) because they arrived during
  /// wind-down, after the last scheduling gate.
  int64_t late_offers_refused() const { return late_offers_refused_; }
  /// Overload NACKs sent for shed offers.
  int64_t nacks_sent() const { return nacks_sent_; }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  /// Submits the buffered offers as one routed batch (dropping re-sent and
  /// batch-internal duplicate ids, as the per-message path used to).
  void FlushOffers(flexoffer::TimeSlice now);
  /// Records the buffered meter readings as one routed batch.
  void FlushMeterReadings();
  /// Drains the runtime's merged event stream and relays it on the bus.
  void DispatchEvents();

  Config config_;
  MessageBus* bus_;
  edms::ShardedEdmsRuntime runtime_;
  ReliableChannel channel_;
  std::vector<flexoffer::FlexOffer> pending_offers_;
  std::vector<edms::ShardedEdmsRuntime::MeterReading> pending_readings_;
  /// True once FlushBuffers() ran: the control loop is winding down and
  /// late offers are refused instead of buffered.
  bool draining_ = false;
  int64_t late_offers_refused_ = 0;
  int64_t nacks_sent_ = 0;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_AGGREGATING_NODE_H_
