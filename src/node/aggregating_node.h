#ifndef MIRABEL_NODE_AGGREGATING_NODE_H_
#define MIRABEL_NODE_AGGREGATING_NODE_H_

#include <vector>

#include "edms/sharded_runtime.h"
#include "node/message_bus.h"

namespace mirabel::node {

/// Statistics of one aggregating node's trading activity (merged across the
/// node's engine shards).
using AggregatingStats = edms::EngineStats;

/// A level-2 (BRP) or level-3 (TSO) LEDMS node: a thin messaging adapter
/// around a ShardedEdmsRuntime, which owns the whole flex-offer life cycle —
/// intake and negotiation, aggregation, scheduling, disaggregation (paper
/// §3, §8) — partitioned across `num_shards` engine shards.
///
/// The node's job is translation only, and it is batch-first: incoming
/// flex-offers are buffered and submitted as ONE batch per tick (not one
/// engine call per bus message), so a node absorbing thousands of prosumer
/// messages per slice pays one routed fan-out per gate period instead of a
/// per-message round trip. Engine events become bus messages (accept/reject
/// replies, macro forwards to the parent node, member schedules to their
/// owners). All orchestration lives in the runtime's shards.
class AggregatingNode {
 public:
  struct Config {
    NodeId id = 0;
    /// Parent node (TSO) to forward macro offers to; 0 = schedule locally.
    NodeId parent = 0;
    /// Engine shards of this node's runtime; prosumers are partitioned by
    /// owner id (edms::OwnerModuloRouter by default). 1 = the single-engine
    /// deployment.
    size_t num_shards = 1;
    /// Optional custom owner -> shard placement.
    edms::ShardRouter router;
    /// Optional shared worker pool for the node's runtime: a multi-BRP
    /// deployment passes every node one handle, so the whole hierarchy
    /// schedules its shard work (with stealing) on one fixed set of worker
    /// threads instead of one thread per shard per node. Null: the runtime
    /// sizes a private pool (num_shards workers).
    std::shared_ptr<edms::WorkerPool> pool;
    /// Template engine config for every shard. `engine.actor` and
    /// `engine.schedule_locally` are derived from `id`/`parent` by the
    /// constructor.
    edms::EdmsEngine::Config engine;
  };

  /// Registers the node on `bus` (which must outlive it).
  AggregatingNode(const Config& config, MessageBus* bus);

  /// Advances the control loop: flushes the tick's buffered meter readings
  /// and offer batch, then fires due gates on every shard.
  void OnTick(flexoffer::TimeSlice now);

  /// Flushes the buffered meter readings and offers and relays pending
  /// events WITHOUT advancing the control loop. Wind-down phases use this
  /// to absorb end-of-run execution meterings (and answer late offers)
  /// without opening new scheduling gates.
  void FlushBuffers(flexoffer::TimeSlice now);

  /// Merged stats of all engine shards.
  AggregatingStats stats() const { return runtime_.stats(); }
  /// Per-shard state views. The shard index is explicit on purpose: on a
  /// partitioned node each store/pipeline holds only its shard's slice of
  /// the state (route an owner with runtime().ShardOf(owner)).
  const storage::DataStore& store(size_t shard) const {
    return runtime_.shard(shard).store();
  }
  const aggregation::AggregationPipeline& pipeline(size_t shard) const {
    return runtime_.shard(shard).pipeline();
  }
  const edms::ShardedEdmsRuntime& runtime() const { return runtime_; }
  /// Offers buffered since the last tick.
  size_t pending_offers() const { return pending_offers_.size(); }
  NodeId id() const { return config_.id; }

 private:
  void HandleMessage(const Message& msg);
  /// Submits the buffered offers as one routed batch (dropping re-sent and
  /// batch-internal duplicate ids, as the per-message path used to).
  void FlushOffers(flexoffer::TimeSlice now);
  /// Records the buffered meter readings as one routed batch.
  void FlushMeterReadings();
  /// Drains the runtime's merged event stream and relays it on the bus.
  void DispatchEvents();

  Config config_;
  MessageBus* bus_;
  edms::ShardedEdmsRuntime runtime_;
  std::vector<flexoffer::FlexOffer> pending_offers_;
  std::vector<edms::ShardedEdmsRuntime::MeterReading> pending_readings_;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_AGGREGATING_NODE_H_
