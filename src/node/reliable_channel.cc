#include "node/reliable_channel.h"

#include <algorithm>

#include "common/logging.h"

namespace mirabel::node {

ReliableChannel::ReliableChannel(const Config& config, MessageBus* bus)
    : config_(config), bus_(bus), rng_(config.seed) {}

int64_t ReliableChannel::Backoff(int attempt) {
  int64_t base = config_.retry_timeout_slices;
  for (int i = 1; i < attempt && base < config_.max_backoff_slices; ++i) {
    base *= 2;
  }
  base = std::min(base, config_.max_backoff_slices);
  int64_t jitter_span =
      static_cast<int64_t>(config_.jitter * static_cast<double>(base));
  if (jitter_span > 0) base += rng_.UniformInt(0, jitter_span);
  return std::max<int64_t>(base, 1);
}

Status ReliableChannel::Send(Message msg) {
  if (!config_.enabled) return bus_->Send(msg);
  msg.id = (config_.self << 32) | next_seq_++;
  msg.requires_ack = true;
  ++stats_.sent;
  Status st = bus_->Send(msg);
  if (!st.ok()) {
    // Unroutable: nobody to retry towards — dead-letter immediately.
    ++stats_.dead_letters;
    return st;
  }
  Pending pending;
  pending.next_retry = msg.sent_at + Backoff(1);
  pending.msg = std::move(msg);
  in_flight_.emplace(pending.msg.id, std::move(pending));
  return st;
}

bool ReliableChannel::Accept(const Message& msg) {
  if (msg.type == MessageType::kAck) {
    // Stray acks (late, duplicate, or arriving with the channel disabled)
    // are consumed silently either way.
    if (config_.enabled && in_flight_.erase(msg.ack_id) > 0) ++stats_.acked;
    return false;
  }
  if (!config_.enabled) return true;
  if (msg.id != 0 && msg.requires_ack) {
    // Ack every delivery, duplicates included: the previous ack may itself
    // have been lost, and an unacked sender retries forever-ish.
    Message ack;
    ack.type = MessageType::kAck;
    ack.from = config_.self;
    ack.to = msg.from;
    ack.sent_at = bus_->now();
    ack.ack_id = msg.id;
    ++stats_.acks_sent;
    (void)bus_->Send(ack);
  }
  if (msg.id != 0 && !seen_.insert(msg.id).second) {
    ++stats_.duplicates_dropped;
    return false;
  }
  return true;
}

void ReliableChannel::OnTick(flexoffer::TimeSlice now) {
  if (!config_.enabled) return;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    Pending& pending = it->second;
    if (pending.next_retry > now) {
      ++it;
      continue;
    }
    if (pending.attempts >= config_.max_attempts) {
      ++stats_.dead_letters;
      MIRABEL_LOG(kWarning) << "node " << config_.self << " dead-letters "
                            << pending.msg.ToString() << " after "
                            << pending.attempts << " attempts";
      it = in_flight_.erase(it);
      continue;
    }
    ++pending.attempts;
    ++stats_.retries;
    pending.msg.sent_at = now;
    pending.next_retry = now + Backoff(pending.attempts);
    (void)bus_->Send(pending.msg);
    ++it;
  }
}

}  // namespace mirabel::node
