#include "node/aggregating_node.h"

#include <utility>

#include "common/logging.h"

namespace mirabel::node {

using flexoffer::TimeSlice;

AggregatingNode::AggregatingNode(const Config& config, MessageBus* bus)
    : config_(config), bus_(bus), engine_([&config] {
        edms::EdmsEngine::Config ec = config.engine;
        ec.actor = config.id;
        ec.schedule_locally = config.parent == 0;
        return ec;
      }()) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " registration failed: " << st;
  }
}

void AggregatingNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFlexOffer: {
      // Duplicate submissions (e.g. re-sent offers) are dropped silently.
      (void)engine_.SubmitOffer(msg.offer, msg.sent_at);
      break;
    }
    case MessageType::kScheduledFlexOffer: {
      // A schedule for a macro offer this node forwarded to its parent.
      (void)engine_.CompleteMacroSchedule(msg.schedule, msg.sent_at);
      break;
    }
    case MessageType::kMeasurement: {
      engine_.RecordMeasurement(msg.from, msg.sent_at, msg.value);
      if (msg.offer_id != 0) {
        // Metered execution of an assigned offer closes its lifecycle.
        (void)engine_.RecordExecution(msg.offer_id, msg.sent_at, msg.value);
      }
      break;
    }
    default:
      break;
  }
  DispatchEvents();
}

void AggregatingNode::OnTick(TimeSlice now) {
  Status st = engine_.Advance(now);
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id << " gate failed: " << st;
  }
  DispatchEvents();
}

void AggregatingNode::DispatchEvents() {
  for (edms::Event& event : engine_.PollEvents()) {
    if (auto* accepted = std::get_if<edms::OfferAccepted>(&event)) {
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferAccepted;
      reply.from = config_.id;
      reply.to = accepted->owner;
      reply.sent_at = accepted->at;
      reply.offer_id = accepted->offer;
      reply.value = accepted->agreed_price_eur;
      (void)bus_->Send(reply);
    } else if (auto* rejected = std::get_if<edms::OfferRejected>(&event)) {
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferRejected;
      reply.from = config_.id;
      reply.to = rejected->owner;
      reply.sent_at = rejected->at;
      reply.offer_id = rejected->offer;
      (void)bus_->Send(reply);
    } else if (auto* macro = std::get_if<edms::MacroPublished>(&event)) {
      if (!macro->forwarded) continue;  // scheduled locally this gate
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.parent;
      msg.sent_at = macro->at;
      msg.offer = std::move(macro->macro);
      (void)bus_->Send(msg);
    } else if (auto* assigned = std::get_if<edms::ScheduleAssigned>(&event)) {
      Message msg;
      msg.type = MessageType::kScheduledFlexOffer;
      msg.from = config_.id;
      msg.to = assigned->owner;
      msg.sent_at = assigned->at;
      msg.schedule = std::move(assigned->schedule);
      (void)bus_->Send(msg);
    }
    // OfferExecuted / OfferExpired close lifecycles without wire traffic:
    // expired owners fall back to their contracts on their own.
  }
}

}  // namespace mirabel::node
