#include "node/aggregating_node.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mirabel::node {

using aggregation::AggregatedFlexOffer;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

AggregatingNode::AggregatingNode(const Config& config, MessageBus* bus)
    : config_(config),
      bus_(bus),
      negotiator_(config.negotiation),
      pipeline_(config.aggregation) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " registration failed: " << st;
  }
}

void AggregatingNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFlexOffer: {
      ++stats_.offers_received;
      double price = 0.0;
      if (config_.negotiate) {
        negotiation::NegotiationOutcome outcome =
            negotiator_.Negotiate(msg.offer, /*reservation_price_eur=*/0.0);
        if (outcome.decision !=
            negotiation::NegotiationOutcome::Decision::kAgreed) {
          ++stats_.offers_rejected;
          Message reply;
          reply.type = MessageType::kFlexOfferRejected;
          reply.from = config_.id;
          reply.to = msg.from;
          reply.sent_at = msg.sent_at;
          reply.offer_id = msg.offer.id;
          (void)bus_->Send(reply);
          return;
        }
        price = outcome.agreed_price_eur;
      }

      if (!pipeline_.Insert(msg.offer).ok()) return;
      ++stats_.offers_accepted;
      stats_.payments_eur += price;
      (void)store_.PutFlexOffer(msg.offer);
      (void)store_.TransitionFlexOffer(msg.offer.id,
                                       storage::FlexOfferState::kAccepted);
      (void)store_.SetAgreedPrice(msg.offer.id, price);

      if (config_.negotiate) {
        Message reply;
        reply.type = MessageType::kFlexOfferAccepted;
        reply.from = config_.id;
        reply.to = msg.from;
        reply.sent_at = msg.sent_at;
        reply.offer_id = msg.offer.id;
        reply.value = price;
        (void)bus_->Send(reply);
      }
      break;
    }
    case MessageType::kScheduledFlexOffer: {
      // A schedule for a macro offer this node forwarded to its parent.
      auto it = pending_macros_.find(msg.schedule.offer_id);
      if (it == pending_macros_.end()) break;
      SendMemberSchedules(msg.sent_at, it->second, msg.schedule);
      pending_macros_.erase(it);
      break;
    }
    case MessageType::kMeasurement: {
      store_.AppendMeasurement(msg.from, msg.sent_at,
                               storage::EnergyType::kConsumption, msg.value);
      break;
    }
    default:
      break;
  }
}

void AggregatingNode::OnTick(TimeSlice now) {
  if (last_gate_ >= 0 && now - last_gate_ < config_.gate_period) return;
  last_gate_ = now;
  RunGate(now);
}

void AggregatingNode::RunGate(TimeSlice now) {
  (void)pipeline_.Flush();

  const TimeSlice horizon_start = now + 1;
  const TimeSlice horizon_end = horizon_start + config_.horizon;

  std::vector<AggregatedFlexOffer> ready;
  std::vector<FlexOfferId> expired_members;
  for (const auto& [aid, agg] : pipeline_.aggregates()) {
    // The macro deadline is the earliest member deadline: past it, members
    // have already fallen back to their contracts.
    if (agg.macro.assignment_before <= now ||
        agg.macro.latest_start < horizon_start) {
      for (const auto& m : agg.members) expired_members.push_back(m.offer.id);
      continue;
    }
    if (agg.macro.earliest_start >= horizon_start &&
        agg.macro.LatestEnd() <= horizon_end) {
      ready.push_back(agg);
    }
    // Otherwise the aggregate waits for a later gate.
  }

  // Expire members whose window already closed (their owners fall back to
  // the open contract on their own).
  for (FlexOfferId id : expired_members) {
    (void)pipeline_.Remove(id);
    (void)store_.TransitionFlexOffer(id, storage::FlexOfferState::kExpired);
    ++stats_.offers_expired_in_pipeline;
  }

  if (ready.empty()) {
    (void)pipeline_.Flush();
    return;
  }

  // Claim the scheduled-now offers: remove members from the pipeline and
  // keep the aggregate snapshots for disaggregation.
  for (const auto& agg : ready) {
    for (const auto& m : agg.members) {
      (void)pipeline_.Remove(m.offer.id);
      (void)store_.TransitionFlexOffer(m.offer.id,
                                       storage::FlexOfferState::kAggregated);
    }
  }
  (void)pipeline_.Flush();

  if (config_.parent != 0) {
    // Forward macro offers for higher-level aggregation and scheduling.
    for (const auto& agg : ready) {
      FlexOffer macro = agg.macro;
      macro.id = config_.id * 1000000ULL + agg.macro.id;
      macro.owner = config_.id;
      // The snapshot must carry the wire id so the returning schedule
      // validates against it at disaggregation time.
      AggregatedFlexOffer snapshot = agg;
      snapshot.macro.id = macro.id;
      snapshot.macro.owner = config_.id;
      pending_macros_.emplace(macro.id, std::move(snapshot));
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.parent;
      msg.sent_at = now;
      msg.offer = macro;
      (void)bus_->Send(msg);
    }
    return;
  }

  ScheduleLocally(now, std::move(ready));
}

void AggregatingNode::ScheduleLocally(TimeSlice now,
                                      std::vector<AggregatedFlexOffer> macros) {
  const TimeSlice horizon_start = now + 1;
  scheduling::SchedulingProblem problem;
  problem.horizon_start = horizon_start;
  problem.horizon_length = config_.horizon;
  size_t h = static_cast<size_t>(config_.horizon);
  problem.baseline_imbalance_kwh.resize(h, 0.0);
  problem.imbalance_penalty_eur.resize(h);
  problem.market.buy_price_eur.assign(h, config_.buy_price_eur);
  problem.market.sell_price_eur.assign(h, config_.sell_price_eur);
  problem.market.max_buy_kwh = config_.max_buy_kwh;
  problem.market.max_sell_kwh = config_.max_sell_kwh;
  for (size_t s = 0; s < h; ++s) {
    size_t t = static_cast<size_t>(horizon_start) + s;
    problem.baseline_imbalance_kwh[s] =
        t < config_.baseline_imbalance_kwh.size()
            ? config_.baseline_imbalance_kwh[t]
            : 0.0;
    int slice_of_day =
        flexoffer::SliceOfDay(static_cast<TimeSlice>(t));
    bool evening_peak = slice_of_day >= 68 && slice_of_day <= 84;  // 17-21 h
    problem.imbalance_penalty_eur[s] =
        config_.penalty_eur_per_kwh * (evening_peak ? 3.0 : 1.0);
  }
  problem.offers.reserve(macros.size());
  for (const auto& agg : macros) problem.offers.push_back(agg.macro);

  std::unique_ptr<scheduling::Scheduler> scheduler =
      scheduling::MakeScheduler(config_.scheduler);
  if (scheduler == nullptr) {
    MIRABEL_LOG(kError) << "unknown scheduler " << config_.scheduler;
    return;
  }
  scheduling::SchedulerOptions options;
  options.time_budget_s = config_.scheduler_budget_s;
  options.seed = config_.seed + static_cast<uint64_t>(now);
  Result<scheduling::SchedulingResult> run = scheduler->Run(problem, options);
  if (!run.ok()) {
    MIRABEL_LOG(kError) << "scheduling failed: " << run.status();
    return;
  }
  ++stats_.scheduling_runs;
  stats_.schedule_cost_eur += run->cost.total();

  // Imbalance accounting: "before" is the unmanaged placement — every offer
  // at its fallback position (earliest start, full energy), which is exactly
  // the CostEvaluator's default schedule — versus the optimised schedule.
  scheduling::CostEvaluator before_eval(problem);
  scheduling::CostEvaluator evaluator(problem);
  (void)evaluator.SetSchedule(run->schedule);
  for (size_t s = 0; s < h; ++s) {
    stats_.imbalance_before_kwh += std::fabs(before_eval.net_kwh()[s]);
    stats_.imbalance_after_kwh += std::fabs(evaluator.net_kwh()[s]);
  }

  std::vector<ScheduledFlexOffer> macro_schedules =
      evaluator.ToScheduledOffers();
  for (size_t i = 0; i < macros.size(); ++i) {
    ++stats_.macros_scheduled;
    SendMemberSchedules(now, macros[i], macro_schedules[i]);
  }
}

void AggregatingNode::SendMemberSchedules(
    TimeSlice now, const AggregatedFlexOffer& agg,
    const ScheduledFlexOffer& macro_schedule) {
  Result<std::vector<ScheduledFlexOffer>> members =
      aggregation::Disaggregate(agg, macro_schedule);
  if (!members.ok()) {
    MIRABEL_LOG(kError) << "disaggregation failed: " << members.status();
    return;
  }
  for (size_t i = 0; i < members->size(); ++i) {
    const ScheduledFlexOffer& schedule = (*members)[i];
    (void)store_.AttachSchedule(schedule);
    Message msg;
    msg.type = MessageType::kScheduledFlexOffer;
    msg.from = config_.id;
    msg.to = agg.members[i].offer.owner;
    msg.sent_at = now;
    msg.schedule = schedule;
    (void)bus_->Send(msg);
    ++stats_.micro_schedules_sent;
  }
}

}  // namespace mirabel::node
