#include "node/aggregating_node.h"

#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace mirabel::node {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::TimeSlice;

namespace {

edms::ShardedEdmsRuntime::Config RuntimeConfig(
    const AggregatingNode::Config& config) {
  edms::ShardedEdmsRuntime::Config rc;
  rc.num_shards = config.num_shards;
  rc.router = config.router;
  rc.pool = config.pool;
  rc.engine = config.engine;
  rc.engine.actor = config.id;
  rc.engine.schedule_locally = config.parent == 0;
  return rc;
}

}  // namespace

AggregatingNode::AggregatingNode(const Config& config, MessageBus* bus)
    : config_(config), bus_(bus), runtime_(RuntimeConfig(config)) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " registration failed: " << st;
  }
}

void AggregatingNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kFlexOffer: {
      // The hot path: buffer, don't submit. The whole tick's intake goes to
      // the runtime as one routed batch in OnTick().
      pending_offers_.push_back(msg.offer);
      return;
    }
    case MessageType::kScheduledFlexOffer: {
      // A schedule for a macro offer this node forwarded to its parent.
      (void)runtime_.CompleteMacroSchedule(msg.schedule, msg.sent_at);
      break;
    }
    case MessageType::kMeasurement: {
      // Also hot-path: meter readings (and execution metering, when
      // offer_id is set) flush as one routed batch per tick.
      pending_readings_.push_back(
          {msg.from, msg.sent_at, msg.value, msg.offer_id});
      return;
    }
    default:
      break;
  }
  DispatchEvents();
}

void AggregatingNode::FlushOffers(TimeSlice now) {
  if (pending_offers_.empty()) return;
  std::vector<FlexOffer> batch;
  batch.reserve(pending_offers_.size());
  std::unordered_set<FlexOfferId> batch_ids;
  batch_ids.reserve(pending_offers_.size());
  for (FlexOffer& offer : pending_offers_) {
    // Re-sent offers and repeats within the tick are dropped silently, as
    // the per-message path used to do.
    if (!batch_ids.insert(offer.id).second || runtime_.HasSeenOffer(offer)) {
      continue;
    }
    batch.push_back(std::move(offer));
  }
  pending_offers_.clear();
  if (batch.empty()) return;
  auto submitted =
      runtime_.SubmitOffers(std::span<const FlexOffer>(batch), now);
  if (!submitted.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " batch intake failed: " << submitted.status();
  }
}

void AggregatingNode::FlushMeterReadings() {
  if (pending_readings_.empty()) return;
  runtime_.RecordMeterReadings(
      std::span<const edms::ShardedEdmsRuntime::MeterReading>(
          pending_readings_));
  pending_readings_.clear();
}

void AggregatingNode::FlushBuffers(TimeSlice now) {
  FlushMeterReadings();
  FlushOffers(now);
  DispatchEvents();
}

void AggregatingNode::OnTick(TimeSlice now) {
  FlushMeterReadings();
  FlushOffers(now);
  Status st = runtime_.Advance(now);
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id << " gate failed: " << st;
  }
  DispatchEvents();
}

void AggregatingNode::DispatchEvents() {
  for (edms::Event& event : runtime_.PollEvents()) {
    if (auto* accepted = std::get_if<edms::OfferAccepted>(&event)) {
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferAccepted;
      reply.from = config_.id;
      reply.to = accepted->owner;
      reply.sent_at = accepted->at;
      reply.offer_id = accepted->offer;
      reply.value = accepted->agreed_price_eur;
      (void)bus_->Send(reply);
    } else if (auto* rejected = std::get_if<edms::OfferRejected>(&event)) {
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferRejected;
      reply.from = config_.id;
      reply.to = rejected->owner;
      reply.sent_at = rejected->at;
      reply.offer_id = rejected->offer;
      (void)bus_->Send(reply);
    } else if (auto* macro = std::get_if<edms::MacroPublished>(&event)) {
      if (!macro->forwarded) continue;  // scheduled locally this gate
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.parent;
      msg.sent_at = macro->at;
      msg.offer = std::move(macro->macro);
      (void)bus_->Send(msg);
    } else if (auto* assigned = std::get_if<edms::ScheduleAssigned>(&event)) {
      Message msg;
      msg.type = MessageType::kScheduledFlexOffer;
      msg.from = config_.id;
      msg.to = assigned->owner;
      msg.sent_at = assigned->at;
      msg.schedule = std::move(assigned->schedule);
      (void)bus_->Send(msg);
    }
    // OfferExecuted / OfferExpired close lifecycles without wire traffic:
    // expired owners fall back to their contracts on their own.
  }
}

}  // namespace mirabel::node
