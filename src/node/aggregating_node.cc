#include "node/aggregating_node.h"

#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace mirabel::node {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::TimeSlice;

namespace {

edms::ShardedEdmsRuntime::Config RuntimeConfig(
    const AggregatingNode::Config& config) {
  edms::ShardedEdmsRuntime::Config rc;
  rc.num_shards = config.num_shards;
  rc.router = config.router;
  rc.pool = config.pool;
  rc.engine = config.engine;
  rc.engine.actor = config.id;
  rc.engine.schedule_locally = config.parent == 0;
  rc.streaming_intake = config.streaming_intake;
  rc.max_pending_batches_per_shard = config.max_pending_batches_per_shard;
  return rc;
}

ReliableChannel::Config ChannelConfig(const AggregatingNode::Config& config) {
  ReliableChannel::Config cc = config.reliability;
  cc.self = config.id;
  // Per-node stream: retry jitter must differ across nodes sharing a seed.
  cc.seed = config.reliability.seed * 0x9E3779B97F4A7C15ULL + config.id;
  return cc;
}

}  // namespace

AggregatingNode::AggregatingNode(const Config& config, MessageBus* bus)
    : config_(config),
      bus_(bus),
      runtime_(RuntimeConfig(config)),
      channel_(ChannelConfig(config), bus) {
  Status st = bus_->Register(
      config_.id, [this](const Message& msg) { HandleMessage(msg); });
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " registration failed: " << st;
  }
}

void AggregatingNode::HandleMessage(const Message& msg) {
  // Transport filter: consume acks, ack what requires it, drop redelivered
  // duplicates before they reach the buffers (an offer redelivered by a
  // sender retry must not enter a batch twice).
  if (!channel_.Accept(msg)) return;
  switch (msg.type) {
    case MessageType::kFlexOffer: {
      if (draining_) {
        // Wind-down: no gate will ever run again, so admitting the offer
        // would strand it. Refuse with a terminal reply instead of
        // dropping — the owner closes its lifecycle instead of waiting
        // out the deadline (satellite: drain-phase reply path).
        if (!runtime_.HasSeenOffer(msg.offer)) {
          ++late_offers_refused_;
          if (config_.engine.negotiate) {
            Message reply;
            reply.type = MessageType::kFlexOfferRejected;
            reply.from = config_.id;
            reply.to = msg.offer.owner;
            reply.sent_at = bus_->now();
            reply.offer_id = msg.offer.id;
            (void)channel_.Send(reply);
          }
        }
        return;
      }
      // The hot path: buffer, don't submit. The whole tick's intake goes to
      // the runtime as one routed batch in OnTick().
      pending_offers_.push_back(msg.offer);
      return;
    }
    case MessageType::kScheduledFlexOffer: {
      // A schedule for a macro offer this node forwarded to its parent.
      (void)runtime_.CompleteMacroSchedule(msg.schedule, msg.sent_at);
      break;
    }
    case MessageType::kMeasurement: {
      // Also hot-path: meter readings (and execution metering, when
      // offer_id is set) flush as one routed batch per tick.
      pending_readings_.push_back(
          {msg.from, msg.sent_at, msg.value, msg.offer_id});
      return;
    }
    default:
      break;
  }
  DispatchEvents();
}

void AggregatingNode::FlushOffers(TimeSlice now) {
  if (pending_offers_.empty()) return;
  std::vector<FlexOffer> batch;
  batch.reserve(pending_offers_.size());
  std::unordered_set<FlexOfferId> batch_ids;
  batch_ids.reserve(pending_offers_.size());
  for (FlexOffer& offer : pending_offers_) {
    // Re-sent offers and repeats within the tick are dropped silently, as
    // the per-message path used to do.
    if (!batch_ids.insert(offer.id).second || runtime_.HasSeenOffer(offer)) {
      continue;
    }
    batch.push_back(std::move(offer));
  }
  pending_offers_.clear();
  if (batch.empty()) return;
  auto submitted =
      runtime_.SubmitOffers(std::span<const FlexOffer>(batch), now);
  if (!submitted.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " batch intake failed: " << submitted.status();
  }
}

void AggregatingNode::FlushMeterReadings() {
  if (pending_readings_.empty()) return;
  runtime_.RecordMeterReadings(
      std::span<const edms::ShardedEdmsRuntime::MeterReading>(
          pending_readings_));
  pending_readings_.clear();
}

void AggregatingNode::FlushBuffers(TimeSlice now) {
  channel_.OnTick(now);
  FlushMeterReadings();
  if (!draining_) {
    // First wind-down flush: admit what was buffered before the last tick,
    // then switch to refusing — offers arriving from here on would never
    // see a gate.
    FlushOffers(now);
    draining_ = true;
  } else {
    // Refuse anything buffered between flushes through the drain reply
    // path (the handler refuses inline once draining_ is set, but offers
    // delivered before the flip may still sit in the buffer).
    std::vector<FlexOffer> late;
    late.swap(pending_offers_);
    std::unordered_set<FlexOfferId> refused_ids;
    for (const FlexOffer& offer : late) {
      if (runtime_.HasSeenOffer(offer)) continue;
      if (!refused_ids.insert(offer.id).second) continue;
      ++late_offers_refused_;
      if (config_.engine.negotiate) {
        Message reply;
        reply.type = MessageType::kFlexOfferRejected;
        reply.from = config_.id;
        reply.to = offer.owner;
        reply.sent_at = now;
        reply.offer_id = offer.id;
        (void)channel_.Send(reply);
      }
    }
  }
  // Deadline degradation sweep: expire stale pipeline offers, forwarded
  // macros whose parent never answered, and executions that never metered —
  // without opening a scheduling gate.
  Status st = runtime_.ExpireDeadlines(now);
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id
                        << " deadline sweep failed: " << st;
  }
  DispatchEvents();
}

void AggregatingNode::OnTick(TimeSlice now) {
  channel_.OnTick(now);
  FlushMeterReadings();
  FlushOffers(now);
  Status st = runtime_.Advance(now);
  if (!st.ok()) {
    MIRABEL_LOG(kError) << "node " << config_.id << " gate failed: " << st;
  }
  DispatchEvents();
}

void AggregatingNode::DispatchEvents() {
  for (edms::Event& event : runtime_.PollEvents()) {
    if (auto* accepted = std::get_if<edms::OfferAccepted>(&event)) {
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferAccepted;
      reply.from = config_.id;
      reply.to = accepted->owner;
      reply.sent_at = accepted->at;
      reply.offer_id = accepted->offer;
      reply.value = accepted->agreed_price_eur;
      (void)channel_.Send(reply);
    } else if (auto* rejected = std::get_if<edms::OfferRejected>(&event)) {
      if (rejected->reason == edms::RejectReason::kOverloaded) {
        // Bounded intake shed the offer before an engine saw it. That is a
        // transient condition, not a verdict: NACK with a retry-after so
        // the owner resubmits with backoff once the queues drained.
        Message nack;
        nack.type = MessageType::kNack;
        nack.from = config_.id;
        nack.to = rejected->owner;
        nack.sent_at = rejected->at;
        nack.offer_id = rejected->offer;
        nack.value = static_cast<double>(
            config_.nack_retry_after_slices > 0
                ? config_.nack_retry_after_slices
                : config_.engine.gate_period);
        ++nacks_sent_;
        (void)channel_.Send(nack);
        continue;
      }
      if (!config_.engine.negotiate) continue;
      Message reply;
      reply.type = MessageType::kFlexOfferRejected;
      reply.from = config_.id;
      reply.to = rejected->owner;
      reply.sent_at = rejected->at;
      reply.offer_id = rejected->offer;
      (void)channel_.Send(reply);
    } else if (auto* macro = std::get_if<edms::MacroPublished>(&event)) {
      if (!macro->forwarded) continue;  // scheduled locally this gate
      Message msg;
      msg.type = MessageType::kFlexOffer;
      msg.from = config_.id;
      msg.to = config_.parent;
      msg.sent_at = macro->at;
      msg.offer = std::move(macro->macro);
      (void)channel_.Send(msg);
    } else if (auto* assigned = std::get_if<edms::ScheduleAssigned>(&event)) {
      Message msg;
      msg.type = MessageType::kScheduledFlexOffer;
      msg.from = config_.id;
      msg.to = assigned->owner;
      msg.sent_at = assigned->at;
      msg.schedule = std::move(assigned->schedule);
      (void)channel_.Send(msg);
    }
    // OfferExecuted / OfferExpired / MacroExpired close lifecycles without
    // wire traffic: expired owners fall back to their contracts on their
    // own deadline clock.
  }
}

}  // namespace mirabel::node
