#ifndef MIRABEL_NODE_MESSAGE_BUS_H_
#define MIRABEL_NODE_MESSAGE_BUS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/result.h"
#include "common/rng.h"
#include "node/fault_plan.h"
#include "node/message.h"

namespace mirabel::node {

/// In-process substitute for MIRABEL's wide-area messaging (the paper's
/// Communication component). Delivery is tied to the simulated slice clock:
/// a message sent at slice t is delivered when the simulation advances to
/// t + latency_slices. Latency, random loss and a full FaultPlan (drop
/// windows, node blackouts, partitions, latency spikes) are injectable so
/// tests can exercise the degradation path (paper §1: "even in critical
/// scenarios (e.g., nodes unreachable, failed execution deadlines) the
/// overall system would gracefully behave as in the traditional setting").
/// Everything is seeded: the same config + the same send sequence yields
/// bit-identical dropped/delivered sets.
class MessageBus {
 public:
  struct Config {
    /// Slices between send and delivery.
    int64_t latency_slices = 0;
    /// Probability that a message is silently dropped.
    double drop_probability = 0.0;
    uint64_t seed = 99;
    /// Windowed chaos faults, evaluated at Send() time (see FaultPlan; the
    /// plan's node stalls are driven by the simulation, not the bus).
    FaultPlan faults;
  };

  MessageBus();
  explicit MessageBus(const Config& config);

  using Handler = std::function<void(const Message&)>;

  /// Registers the handler of node `id`; AlreadyExists on duplicates.
  Status Register(NodeId id, Handler handler);

  /// Queues `msg` for delivery at msg.sent_at + latency (+ any active
  /// latency spike). Unknown recipients return NotFound at send time (the
  /// sender can react immediately).
  Status Send(const Message& msg);

  /// Delivers every queued message due at or before `now`, in send order.
  /// Handlers may Send() further messages; those are delivered too when due.
  void AdvanceTo(flexoffer::TimeSlice now);

  /// The latest slice AdvanceTo() reached — the bus-side clock. Handlers use
  /// this to timestamp replies sent from inside a delivery.
  flexoffer::TimeSlice now() const { return now_; }

  int64_t sent() const { return sent_; }
  int64_t delivered() const { return delivered_; }
  int64_t dropped() const { return dropped_; }
  /// Drops attributable to the FaultPlan (blackouts, partitions, drop
  /// windows), a subset of dropped().
  int64_t dropped_by_fault() const { return dropped_by_fault_; }
  size_t pending() const { return queue_.size(); }

  /// End-of-run backlog check: logs a warning when messages are still
  /// undelivered and returns their count — the bus-level mirror of
  /// EngineStats::offers_dropped_at_shutdown, so messages cannot vanish
  /// silently when a run is torn down.
  size_t ReportBacklog() const;

 private:
  /// True when the fault plan says `msg` must be dropped at send time.
  bool FaultDrops(const Message& msg);
  /// Extra delivery latency from active latency spikes.
  int64_t FaultLatency(const Message& msg) const;

  struct InFlight {
    flexoffer::TimeSlice due = 0;
    Message msg;
  };

  Config config_;
  Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::deque<InFlight> queue_;
  flexoffer::TimeSlice now_ = 0;
  int64_t sent_ = 0;
  int64_t delivered_ = 0;
  int64_t dropped_ = 0;
  int64_t dropped_by_fault_ = 0;
};

}  // namespace mirabel::node

#endif  // MIRABEL_NODE_MESSAGE_BUS_H_
