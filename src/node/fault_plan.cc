#include "node/fault_plan.h"

namespace mirabel::node {

bool FaultPlan::StalledAt(NodeId node, flexoffer::TimeSlice now) const {
  for (const Stall& s : stalls) {
    if (s.node == node && now >= s.from && now < s.to) return true;
  }
  return false;
}

std::vector<NamedFaultPlan> ChaosScenarios(flexoffer::TimeSlice run_slices) {
  const flexoffer::TimeSlice third = run_slices / 3;
  std::vector<NamedFaultPlan> scenarios;

  scenarios.push_back({"clean", FaultPlan{}});

  {
    // Sustained random loss over the whole run.
    FaultPlan plan;
    plan.drop_windows.push_back({0, run_slices, 0.25});
    scenarios.push_back({"lossy_25", std::move(plan)});
  }
  {
    // Acceptance anchor: a hard outage — 100% drop inside the middle third.
    FaultPlan plan;
    plan.drop_windows.push_back({third, 2 * third, 1.0});
    scenarios.push_back({"total_drop_window", std::move(plan)});
  }
  {
    // Acceptance anchor: a full BRP blackout for the middle third.
    FaultPlan plan;
    plan.blackouts.push_back({100, third, 2 * third});
    scenarios.push_back({"brp_blackout", std::move(plan)});
  }
  {
    // One BRP split off from the rest of the hierarchy (its prosumers and,
    // in 3-level runs, the TSO are all on the far side).
    FaultPlan plan;
    plan.partitions.push_back({{101}, third, 2 * third});
    scenarios.push_back({"brp_partitioned", std::move(plan)});
  }
  {
    // Congestion spike: +8 slices of extra latency for the middle third.
    FaultPlan plan;
    plan.latency_spikes.push_back({third, 2 * third, 8});
    scenarios.push_back({"latency_spike", std::move(plan)});
  }
  {
    // A BRP's control loop freezes (shard stall): no gates, no retries.
    FaultPlan plan;
    plan.stalls.push_back({100, third, 2 * third});
    scenarios.push_back({"brp_stall", std::move(plan)});
  }
  {
    // Everything at once, staggered so the system has to recover repeatedly.
    FaultPlan plan;
    plan.drop_windows.push_back({0, run_slices, 0.10});
    plan.drop_windows.push_back({third, third + third / 2, 1.0});
    plan.blackouts.push_back({100, 2 * third, 2 * third + third / 2});
    plan.latency_spikes.push_back({third / 2, third, 4});
    plan.stalls.push_back({101, third, third + third / 2});
    scenarios.push_back({"kitchen_sink", std::move(plan)});
  }
  return scenarios;
}

}  // namespace mirabel::node
