#include "flexoffer/time_slice.h"

#include <cstdio>

namespace mirabel::flexoffer {

std::string FormatTimeSlice(TimeSlice t) {
  int64_t day = DayOf(t);
  int slice = SliceOfDay(t);
  int hour = slice / kSlicesPerHour;
  int minute = (slice % kSlicesPerHour) * 15;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02d:%02d",
                static_cast<long long>(day), hour, minute);
  return buf;
}

}  // namespace mirabel::flexoffer
