#ifndef MIRABEL_FLEXOFFER_FLEX_OFFER_H_
#define MIRABEL_FLEXOFFER_FLEX_OFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flexoffer/time_slice.h"

namespace mirabel::flexoffer {

/// Unique identifier of a flex-offer within one EDMS.
using FlexOfferId = uint64_t;
/// Identifier of the actor (prosumer, BRP, TSO) that issued an offer.
using ActorId = uint64_t;

/// Energy bounds of one profile slice, in kWh per slice.
///
/// A consumption offer has 0 <= min <= max; a production offer (e.g. a solar
/// panel committing output) uses negative values with min <= max <= 0. The
/// difference max - min is the *energy flexibility* of the slice: the amount
/// the scheduler may dispatch freely (paper §7).
struct EnergyRange {
  double min_kwh = 0.0;
  double max_kwh = 0.0;

  /// Width of the dispatchable band.
  double Flexibility() const { return max_kwh - min_kwh; }

  bool operator==(const EnergyRange&) const = default;
};

/// A flex-offer: the energy planning object at the heart of MIRABEL
/// (paper §2, Fig. 3).
///
/// The offer describes an energy profile of consecutive slices, each with a
/// [min, max] energy band, which may start anywhere inside the time
/// flexibility interval [earliest_start, latest_start]. The issuer must
/// receive the scheduling decision before `assignment_before`; otherwise the
/// offer expires and the prosumer falls back to its open supply contract.
struct FlexOffer {
  FlexOfferId id = 0;
  ActorId owner = 0;

  /// When the offer was created (informational; used by negotiation to derive
  /// assignment flexibility).
  TimeSlice creation_time = 0;
  /// Deadline by which the owner must have been sent a schedule.
  TimeSlice assignment_before = 0;
  /// Earliest slice at which the profile may begin ("start after time").
  TimeSlice earliest_start = 0;
  /// Latest slice at which the profile may begin.
  TimeSlice latest_start = 0;

  /// Consecutive per-slice energy bands; index 0 is the first profile slice.
  std::vector<EnergyRange> profile;

  /// Price in EUR/kWh the issuer asks for scheduled energy (consumption:
  /// discount granted by the BRP; production: feed-in price). Used by the
  /// scheduling cost model and negotiation.
  double unit_price_eur = 0.0;

  // -- Derived quantities ----------------------------------------------------

  /// Number of profile slices.
  int64_t Duration() const { return static_cast<int64_t>(profile.size()); }

  /// Width of the start-time window in slices ("time flexibility", Fig. 3).
  int64_t TimeFlexibility() const { return latest_start - earliest_start; }

  /// Latest slice (exclusive) at which the profile can end.
  TimeSlice LatestEnd() const { return latest_start + Duration(); }

  /// Sum of per-slice minimum energies.
  double TotalMinEnergy() const;
  /// Sum of per-slice maximum energies.
  double TotalMaxEnergy() const;
  /// Sum of per-slice dispatchable bands (paper §7 "energy flexibility").
  double TotalEnergyFlexibility() const;

  /// Checks the structural invariants:
  ///  * non-empty profile,
  ///  * min <= max in every slice,
  ///  * earliest_start <= latest_start,
  ///  * creation_time <= assignment_before <= latest_start.
  Status Validate() const;

  /// Short human-readable description for logs and examples.
  std::string ToString() const;
};

/// A scheduled (instantiated) flex-offer: fixed start time plus a concrete
/// energy amount in each profile slice.
struct ScheduledFlexOffer {
  FlexOfferId offer_id = 0;
  /// Absolute slice at which profile position 0 executes.
  TimeSlice start = 0;
  /// Exactly one energy value per profile slice, inside the offer's bands.
  std::vector<double> energies_kwh;

  /// Total scheduled energy.
  double TotalEnergy() const;

  /// Verifies this schedule against `offer`: matching id, start inside
  /// [earliest_start, latest_start], one energy per slice, each within its
  /// [min, max] band (with tolerance 1e-9 for rounding).
  Status ValidateAgainst(const FlexOffer& offer) const;
};

/// The fallback instantiation used when an offer expires unscheduled
/// (paper §1: "pending flexibilities simply timeout and customers fall back
/// to the open contract"): the profile starts at `earliest_start` and every
/// slice draws its maximum energy (the unmanaged behaviour).
ScheduledFlexOffer FallbackSchedule(const FlexOffer& offer);

/// Convenience builder used by tests and examples.
///
///   FlexOffer fo = FlexOfferBuilder(42)
///                      .OwnedBy(7)
///                      .CreatedAt(0)
///                      .AssignBefore(HoursToSlices(20))
///                      .StartWindow(HoursToSlices(22), HoursToSlices(29))
///                      .AddSlice(2.0, 5.0)
///                      .AddSlice(2.0, 5.0)
///                      .Build();
class FlexOfferBuilder {
 public:
  explicit FlexOfferBuilder(FlexOfferId id);

  FlexOfferBuilder& OwnedBy(ActorId owner);
  FlexOfferBuilder& CreatedAt(TimeSlice t);
  FlexOfferBuilder& AssignBefore(TimeSlice t);
  /// Sets [earliest_start, latest_start].
  FlexOfferBuilder& StartWindow(TimeSlice earliest, TimeSlice latest);
  FlexOfferBuilder& AddSlice(double min_kwh, double max_kwh);
  /// Adds `count` identical slices.
  FlexOfferBuilder& AddSlices(int count, double min_kwh, double max_kwh);
  FlexOfferBuilder& UnitPrice(double eur_per_kwh);

  /// Returns the offer. Does not validate; call Validate() if the inputs are
  /// untrusted.
  FlexOffer Build() const;

 private:
  FlexOffer offer_;
  bool assignment_set_ = false;
};

}  // namespace mirabel::flexoffer

#endif  // MIRABEL_FLEXOFFER_FLEX_OFFER_H_
