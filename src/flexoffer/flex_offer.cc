#include "flexoffer/flex_offer.h"

#include <cmath>
#include <cstdio>

namespace mirabel::flexoffer {

double FlexOffer::TotalMinEnergy() const {
  double acc = 0.0;
  for (const auto& r : profile) acc += r.min_kwh;
  return acc;
}

double FlexOffer::TotalMaxEnergy() const {
  double acc = 0.0;
  for (const auto& r : profile) acc += r.max_kwh;
  return acc;
}

double FlexOffer::TotalEnergyFlexibility() const {
  double acc = 0.0;
  for (const auto& r : profile) acc += r.Flexibility();
  return acc;
}

Status FlexOffer::Validate() const {
  if (profile.empty()) {
    return Status::InvalidArgument("flex-offer profile is empty");
  }
  for (size_t i = 0; i < profile.size(); ++i) {
    if (profile[i].min_kwh > profile[i].max_kwh) {
      return Status::InvalidArgument("slice " + std::to_string(i) +
                                     " has min > max");
    }
    if (!std::isfinite(profile[i].min_kwh) ||
        !std::isfinite(profile[i].max_kwh)) {
      return Status::InvalidArgument("slice " + std::to_string(i) +
                                     " has non-finite energy bound");
    }
  }
  if (earliest_start > latest_start) {
    return Status::InvalidArgument("earliest_start > latest_start");
  }
  if (creation_time > assignment_before) {
    return Status::InvalidArgument("creation_time > assignment_before");
  }
  if (assignment_before > latest_start) {
    return Status::InvalidArgument("assignment_before > latest_start");
  }
  return Status::OK();
}

std::string FlexOffer::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "FlexOffer{id=%llu owner=%llu start=[%s..%s] dur=%lld "
                "e=[%.2f..%.2f]kWh}",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(owner),
                FormatTimeSlice(earliest_start).c_str(),
                FormatTimeSlice(latest_start).c_str(),
                static_cast<long long>(Duration()), TotalMinEnergy(),
                TotalMaxEnergy());
  return buf;
}

double ScheduledFlexOffer::TotalEnergy() const {
  double acc = 0.0;
  for (double e : energies_kwh) acc += e;
  return acc;
}

Status ScheduledFlexOffer::ValidateAgainst(const FlexOffer& offer) const {
  constexpr double kTol = 1e-9;
  if (offer_id != offer.id) {
    return Status::InvalidArgument("schedule refers to a different offer");
  }
  if (start < offer.earliest_start || start > offer.latest_start) {
    return Status::OutOfRange("scheduled start outside time flexibility");
  }
  if (energies_kwh.size() != offer.profile.size()) {
    return Status::InvalidArgument("schedule slice count mismatch");
  }
  for (size_t i = 0; i < energies_kwh.size(); ++i) {
    if (energies_kwh[i] < offer.profile[i].min_kwh - kTol ||
        energies_kwh[i] > offer.profile[i].max_kwh + kTol) {
      return Status::OutOfRange("scheduled energy outside band at slice " +
                                std::to_string(i));
    }
  }
  return Status::OK();
}

ScheduledFlexOffer FallbackSchedule(const FlexOffer& offer) {
  ScheduledFlexOffer s;
  s.offer_id = offer.id;
  s.start = offer.earliest_start;
  s.energies_kwh.reserve(offer.profile.size());
  for (const auto& r : offer.profile) s.energies_kwh.push_back(r.max_kwh);
  return s;
}

FlexOfferBuilder::FlexOfferBuilder(FlexOfferId id) { offer_.id = id; }

FlexOfferBuilder& FlexOfferBuilder::OwnedBy(ActorId owner) {
  offer_.owner = owner;
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::CreatedAt(TimeSlice t) {
  offer_.creation_time = t;
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::AssignBefore(TimeSlice t) {
  offer_.assignment_before = t;
  assignment_set_ = true;
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::StartWindow(TimeSlice earliest,
                                                TimeSlice latest) {
  offer_.earliest_start = earliest;
  offer_.latest_start = latest;
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::AddSlice(double min_kwh, double max_kwh) {
  offer_.profile.push_back({min_kwh, max_kwh});
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::AddSlices(int count, double min_kwh,
                                              double max_kwh) {
  for (int i = 0; i < count; ++i) AddSlice(min_kwh, max_kwh);
  return *this;
}

FlexOfferBuilder& FlexOfferBuilder::UnitPrice(double eur_per_kwh) {
  offer_.unit_price_eur = eur_per_kwh;
  return *this;
}

FlexOffer FlexOfferBuilder::Build() const {
  FlexOffer out = offer_;
  if (!assignment_set_) {
    // Default: decisions are due when the start window opens.
    out.assignment_before = out.earliest_start;
  }
  return out;
}

}  // namespace mirabel::flexoffer
