#ifndef MIRABEL_FLEXOFFER_SERIALIZATION_H_
#define MIRABEL_FLEXOFFER_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::flexoffer {

/// JSON wire format for flex-offers and schedules.
///
/// The EDMS nodes exchange flex-offers over a wide-area network and persist
/// them in the Data Management component; both need a stable, human-readable
/// encoding. The format is a strict subset of JSON:
///
///   {"id":42,"owner":7,"created":0,"assign_before":80,
///    "earliest":88,"latest":100,"unit_price":0.03,
///    "profile":[[1.0,2.0],[0.5,0.5]]}
///
/// and for schedules
///
///   {"offer_id":42,"start":90,"energies":[1.5,0.5]}
///
/// Numbers are emitted with enough precision to round-trip doubles exactly.
/// The parser accepts arbitrary whitespace between tokens, rejects unknown
/// keys, and never throws — malformed input yields InvalidArgument.

/// Encodes `offer` as a single-line JSON object.
std::string ToJson(const FlexOffer& offer);

/// Encodes `schedule` as a single-line JSON object.
std::string ToJson(const ScheduledFlexOffer& schedule);

/// Parses a flex-offer from `json`. All keys are required.
Result<FlexOffer> FlexOfferFromJson(const std::string& json);

/// Parses a scheduled flex-offer from `json`. All keys are required.
Result<ScheduledFlexOffer> ScheduledFlexOfferFromJson(const std::string& json);

}  // namespace mirabel::flexoffer

#endif  // MIRABEL_FLEXOFFER_SERIALIZATION_H_
