#ifndef MIRABEL_FLEXOFFER_TIME_SLICE_H_
#define MIRABEL_FLEXOFFER_TIME_SLICE_H_

#include <cstdint>
#include <string>

namespace mirabel::flexoffer {

/// Discrete time in the MIRABEL system.
///
/// The European market model underlying MIRABEL settles energy in fixed-size
/// metering periods. We model time as an integer index of 15-minute slices
/// since an arbitrary epoch (slice 0 = midnight of day 0). All flex-offer
/// times (earliest/latest start, assignment deadline) and all schedules are
/// expressed in slices.
using TimeSlice = int64_t;

/// Number of slices per hour at 15-minute granularity.
inline constexpr int kSlicesPerHour = 4;
/// Number of slices per day.
inline constexpr int kSlicesPerDay = 24 * kSlicesPerHour;
/// Number of slices per week.
inline constexpr int kSlicesPerWeek = 7 * kSlicesPerDay;

/// Converts whole hours to slices.
constexpr TimeSlice HoursToSlices(int64_t hours) {
  return hours * kSlicesPerHour;
}

/// Converts whole days to slices.
constexpr TimeSlice DaysToSlices(int64_t days) { return days * kSlicesPerDay; }

/// Hour-of-day (0-23) of a slice.
constexpr int HourOfDay(TimeSlice t) {
  int64_t in_day = t % kSlicesPerDay;
  if (in_day < 0) in_day += kSlicesPerDay;
  return static_cast<int>(in_day / kSlicesPerHour);
}

/// Slice-of-day (0-95) of a slice.
constexpr int SliceOfDay(TimeSlice t) {
  int64_t in_day = t % kSlicesPerDay;
  if (in_day < 0) in_day += kSlicesPerDay;
  return static_cast<int>(in_day);
}

/// Day index (may be negative before the epoch).
constexpr int64_t DayOf(TimeSlice t) {
  int64_t d = t / kSlicesPerDay;
  if (t % kSlicesPerDay < 0) --d;
  return d;
}

/// Day-of-week in 0..6 with day 0 of the epoch defined as a Monday.
constexpr int DayOfWeek(TimeSlice t) {
  int64_t d = DayOf(t) % 7;
  if (d < 0) d += 7;
  return static_cast<int>(d);
}

/// True for Saturday (5) and Sunday (6).
constexpr bool IsWeekend(TimeSlice t) { return DayOfWeek(t) >= 5; }

/// Formats a slice as "d<day> hh:mm" for logs and examples.
std::string FormatTimeSlice(TimeSlice t);

}  // namespace mirabel::flexoffer

#endif  // MIRABEL_FLEXOFFER_TIME_SLICE_H_
