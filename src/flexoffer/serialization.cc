#include "flexoffer/serialization.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mirabel::flexoffer {

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// Minimal strict tokenizer over the JSON subset used by the wire format.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Status ExpectChar(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  /// True (and consumes) when the next token is `c`.
  bool ConsumeIf(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseKey() {
    MIRABEL_RETURN_IF_ERROR(ExpectChar('"'));
    std::string key;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      key += text_[pos_++];
    }
    MIRABEL_RETURN_IF_ERROR(ExpectChar('"'));
    MIRABEL_RETURN_IF_ERROR(ExpectChar(':'));
    return key;
  }

  Result<double> ParseNumber() {
    SkipWhitespace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a number at offset " +
                                     std::to_string(start));
    }
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Status::InvalidArgument("malformed number '" + token + "'");
    }
    return v;
  }

  Result<int64_t> ParseInt() {
    MIRABEL_ASSIGN_OR_RETURN(double v, ParseNumber());
    double rounded = std::nearbyint(v);
    if (std::fabs(v - rounded) > 1e-9) {
      return Status::InvalidArgument("expected an integer");
    }
    return static_cast<int64_t>(rounded);
  }

  /// Parses "[x, y, ...]" of numbers.
  Result<std::vector<double>> ParseNumberArray() {
    MIRABEL_RETURN_IF_ERROR(ExpectChar('['));
    std::vector<double> out;
    if (ConsumeIf(']')) return out;
    while (true) {
      MIRABEL_ASSIGN_OR_RETURN(double v, ParseNumber());
      out.push_back(v);
      if (ConsumeIf(']')) break;
      MIRABEL_RETURN_IF_ERROR(ExpectChar(','));
    }
    return out;
  }

  /// Parses "[[min,max], ...]".
  Result<std::vector<EnergyRange>> ParseProfile() {
    MIRABEL_RETURN_IF_ERROR(ExpectChar('['));
    std::vector<EnergyRange> out;
    if (ConsumeIf(']')) return out;
    while (true) {
      MIRABEL_ASSIGN_OR_RETURN(std::vector<double> pair, ParseNumberArray());
      if (pair.size() != 2) {
        return Status::InvalidArgument("profile slice must be [min, max]");
      }
      out.push_back({pair[0], pair[1]});
      if (ConsumeIf(']')) break;
      MIRABEL_RETURN_IF_ERROR(ExpectChar(','));
    }
    return out;
  }

  Status ExpectEnd() {
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToJson(const FlexOffer& offer) {
  std::string out = "{\"id\":" + std::to_string(offer.id);
  out += ",\"owner\":" + std::to_string(offer.owner);
  out += ",\"created\":" + std::to_string(offer.creation_time);
  out += ",\"assign_before\":" + std::to_string(offer.assignment_before);
  out += ",\"earliest\":" + std::to_string(offer.earliest_start);
  out += ",\"latest\":" + std::to_string(offer.latest_start);
  out += ",\"unit_price\":";
  AppendDouble(offer.unit_price_eur, &out);
  out += ",\"profile\":[";
  for (size_t i = 0; i < offer.profile.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    AppendDouble(offer.profile[i].min_kwh, &out);
    out += ',';
    AppendDouble(offer.profile[i].max_kwh, &out);
    out += ']';
  }
  out += "]}";
  return out;
}

std::string ToJson(const ScheduledFlexOffer& schedule) {
  std::string out = "{\"offer_id\":" + std::to_string(schedule.offer_id);
  out += ",\"start\":" + std::to_string(schedule.start);
  out += ",\"energies\":[";
  for (size_t i = 0; i < schedule.energies_kwh.size(); ++i) {
    if (i > 0) out += ',';
    AppendDouble(schedule.energies_kwh[i], &out);
  }
  out += "]}";
  return out;
}

Result<FlexOffer> FlexOfferFromJson(const std::string& json) {
  Parser parser(json);
  MIRABEL_RETURN_IF_ERROR(parser.ExpectChar('{'));
  FlexOffer offer;
  bool saw_id = false;
  bool saw_profile = false;
  while (true) {
    MIRABEL_ASSIGN_OR_RETURN(std::string key, parser.ParseKey());
    if (key == "id") {
      MIRABEL_ASSIGN_OR_RETURN(int64_t v, parser.ParseInt());
      offer.id = static_cast<FlexOfferId>(v);
      saw_id = true;
    } else if (key == "owner") {
      MIRABEL_ASSIGN_OR_RETURN(int64_t v, parser.ParseInt());
      offer.owner = static_cast<ActorId>(v);
    } else if (key == "created") {
      MIRABEL_ASSIGN_OR_RETURN(offer.creation_time, parser.ParseInt());
    } else if (key == "assign_before") {
      MIRABEL_ASSIGN_OR_RETURN(offer.assignment_before, parser.ParseInt());
    } else if (key == "earliest") {
      MIRABEL_ASSIGN_OR_RETURN(offer.earliest_start, parser.ParseInt());
    } else if (key == "latest") {
      MIRABEL_ASSIGN_OR_RETURN(offer.latest_start, parser.ParseInt());
    } else if (key == "unit_price") {
      MIRABEL_ASSIGN_OR_RETURN(offer.unit_price_eur, parser.ParseNumber());
    } else if (key == "profile") {
      MIRABEL_ASSIGN_OR_RETURN(offer.profile, parser.ParseProfile());
      saw_profile = true;
    } else {
      return Status::InvalidArgument("unknown key '" + key + "'");
    }
    if (parser.ConsumeIf('}')) break;
    MIRABEL_RETURN_IF_ERROR(parser.ExpectChar(','));
  }
  MIRABEL_RETURN_IF_ERROR(parser.ExpectEnd());
  if (!saw_id || !saw_profile) {
    return Status::InvalidArgument("missing required key");
  }
  MIRABEL_RETURN_IF_ERROR(offer.Validate());
  return offer;
}

Result<ScheduledFlexOffer> ScheduledFlexOfferFromJson(const std::string& json) {
  Parser parser(json);
  MIRABEL_RETURN_IF_ERROR(parser.ExpectChar('{'));
  ScheduledFlexOffer schedule;
  bool saw_id = false;
  bool saw_energies = false;
  while (true) {
    MIRABEL_ASSIGN_OR_RETURN(std::string key, parser.ParseKey());
    if (key == "offer_id") {
      MIRABEL_ASSIGN_OR_RETURN(int64_t v, parser.ParseInt());
      schedule.offer_id = static_cast<FlexOfferId>(v);
      saw_id = true;
    } else if (key == "start") {
      MIRABEL_ASSIGN_OR_RETURN(schedule.start, parser.ParseInt());
    } else if (key == "energies") {
      MIRABEL_ASSIGN_OR_RETURN(schedule.energies_kwh,
                               parser.ParseNumberArray());
      saw_energies = true;
    } else {
      return Status::InvalidArgument("unknown key '" + key + "'");
    }
    if (parser.ConsumeIf('}')) break;
    MIRABEL_RETURN_IF_ERROR(parser.ExpectChar(','));
  }
  MIRABEL_RETURN_IF_ERROR(parser.ExpectEnd());
  if (!saw_id || !saw_energies) {
    return Status::InvalidArgument("missing required key");
  }
  return schedule;
}

}  // namespace mirabel::flexoffer
