#include "datagen/energy_series_generator.h"

#include <cmath>

#include "common/rng.h"

namespace mirabel::datagen {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

bool IsHolidayDayOfYear(int day_of_year) {
  int d = ((day_of_year % 365) + 365) % 365;
  // New year, Easter-ish spring holiday, May day, summer bank holiday,
  // Christmas period.
  switch (d) {
    case 0:
    case 1:
    case 99:
    case 100:
    case 120:
    case 242:
    case 358:
    case 359:
    case 360:
      return true;
    default:
      return false;
  }
}

std::vector<double> GenerateDemandSeries(const DemandSeriesConfig& config) {
  Rng rng(config.seed);
  const int n = config.days * config.periods_per_day;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));

  double noise = 0.0;
  for (int t = 0; t < n; ++t) {
    int period = t % config.periods_per_day;
    int day = t / config.periods_per_day;
    int day_of_week = day % 7;  // day 0 is a Monday
    int day_of_year = (config.start_day_of_year + day) % 365;

    double frac_of_day =
        static_cast<double>(period) / config.periods_per_day;

    // Intra-day shape: a morning peak (~08:30) and a higher evening peak
    // (~18:00), night trough. Two raised cosines approximate the classic
    // double-hump load curve.
    double daily = 0.0;
    daily += 0.8 * std::exp(-std::pow((frac_of_day - 0.354) / 0.09, 2));
    daily += 1.0 * std::exp(-std::pow((frac_of_day - 0.75) / 0.11, 2));
    daily -= 0.6 * std::exp(-std::pow((frac_of_day - 0.08) / 0.10, 2));

    // Weekly shape: weekend demand is lower, Friday slightly lower.
    double weekly = 0.0;
    if (day_of_week == 5) weekly = -0.8;       // Saturday
    else if (day_of_week == 6) weekly = -1.0;  // Sunday
    else if (day_of_week == 4) weekly = -0.2;  // Friday
    // Annual shape: winter-high cosine (peak near day-of-year 0).
    double annual = std::cos(2.0 * kPi * day_of_year / 365.0);

    double level = config.base_load_mw +
                   config.daily_amplitude * daily +
                   config.weekly_amplitude * weekly +
                   config.annual_amplitude * annual;

    if (IsHolidayDayOfYear(day_of_year)) {
      level *= (1.0 - config.holiday_dip);
    }

    noise = config.noise_ar1 * noise +
            rng.Gaussian(0.0, config.noise_stddev);
    out.push_back(level + noise);
  }
  return out;
}

std::vector<double> GenerateWindSeries(const WindSeriesConfig& config) {
  Rng rng(config.seed);
  const int n = config.days * config.periods_per_day;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));

  double speed_dev = 0.0;  // deviation from the (diurnal) mean speed
  for (int t = 0; t < n; ++t) {
    int period = t % config.periods_per_day;
    double frac_of_day =
        static_cast<double>(period) / config.periods_per_day;
    double mean = config.mean_speed +
                  config.diurnal_amplitude *
                      std::sin(2.0 * kPi * (frac_of_day - 0.25));

    speed_dev = config.speed_ar1 * speed_dev +
                rng.Gaussian(0.0, config.speed_noise);
    double speed = mean + speed_dev;
    if (speed < 0.0) speed = 0.0;

    // Cubic power curve between cut-in and rated, flat to cut-out.
    double power = 0.0;
    if (speed >= config.cut_in_speed && speed < config.cut_out_speed) {
      if (speed >= config.rated_speed) {
        power = config.capacity_mw;
      } else {
        double num = std::pow(speed, 3) - std::pow(config.cut_in_speed, 3);
        double den =
            std::pow(config.rated_speed, 3) - std::pow(config.cut_in_speed, 3);
        power = config.capacity_mw * num / den;
      }
    }
    out.push_back(power);
  }
  return out;
}

}  // namespace mirabel::datagen
