#include "datagen/flex_offer_generator.h"

#include <algorithm>

namespace mirabel::datagen {

using flexoffer::FlexOffer;
using flexoffer::kSlicesPerDay;
using flexoffer::TimeSlice;

FlexOfferGenerator::FlexOfferGenerator(const FlexOfferWorkloadConfig& config)
    : config_(config), rng_(config.seed) {}

FlexOffer FlexOfferGenerator::Next() {
  FlexOffer fo;
  fo.id = next_id_++;
  fo.owner = static_cast<flexoffer::ActorId>(
      rng_.UniformInt(1, std::max<int64_t>(1, config_.num_owners)));

  // Creation spread over the horizon.
  TimeSlice horizon = static_cast<TimeSlice>(config_.horizon_days) *
                      kSlicesPerDay;
  fo.creation_time = rng_.UniformInt(0, std::max<TimeSlice>(0, horizon - 1));

  // Duration, quantised so that device classes repeat.
  int dur = static_cast<int>(rng_.UniformInt(config_.min_duration_slices,
                                             config_.max_duration_slices));
  if (config_.duration_step > 1) {
    dur = std::max(config_.min_duration_slices,
                   (dur / config_.duration_step) * config_.duration_step);
  }

  // Time flexibility, quantised.
  int tf = static_cast<int>(rng_.UniformInt(config_.min_time_flexibility,
                                            config_.max_time_flexibility));
  if (config_.time_flexibility_step > 1) {
    tf = (tf / config_.time_flexibility_step) * config_.time_flexibility_step;
  }

  // The window opens 2..8 hours after creation; the assignment deadline sits
  // 1 hour before the window opens.
  TimeSlice lead = rng_.UniformInt(8, 32);
  fo.earliest_start = fo.creation_time + lead;
  fo.latest_start = fo.earliest_start + tf;
  fo.assignment_before = fo.earliest_start - std::min<TimeSlice>(4, lead - 1);
  if (fo.assignment_before < fo.creation_time) {
    fo.assignment_before = fo.creation_time;
  }

  bool production = rng_.Bernoulli(config_.production_fraction);

  fo.profile.reserve(static_cast<size_t>(dur));
  for (int i = 0; i < dur; ++i) {
    double emax = rng_.Uniform(config_.min_slice_energy_kwh,
                               config_.max_slice_energy_kwh);
    double flex_fraction = rng_.Uniform(0.0, config_.max_energy_flex);
    double emin = emax * (1.0 - flex_fraction);
    flexoffer::EnergyRange r;
    if (production) {
      // Production offers commit negative energy: min <= max <= 0.
      r.min_kwh = -emax;
      r.max_kwh = -emin;
    } else {
      r.min_kwh = emin;
      r.max_kwh = emax;
    }
    fo.profile.push_back(r);
  }

  fo.unit_price_eur = rng_.Uniform(0.01, 0.06);
  return fo;
}

std::vector<FlexOffer> GenerateFlexOffers(
    const FlexOfferWorkloadConfig& config) {
  FlexOfferGenerator gen(config);
  std::vector<FlexOffer> out;
  out.reserve(static_cast<size_t>(config.count));
  for (int64_t i = 0; i < config.count; ++i) out.push_back(gen.Next());
  return out;
}

}  // namespace mirabel::datagen
