#ifndef MIRABEL_DATAGEN_STRESS_SCENARIOS_H_
#define MIRABEL_DATAGEN_STRESS_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "scheduling/scenario.h"
#include "scheduling/stochastic_evaluator.h"

namespace mirabel::datagen {

/// One named, seeded stress workload for the uncertainty study: a planning
/// problem (the point forecast a scheduler sees) plus a structural
/// forecast-error model (what reality may do to the baseline). The error
/// model is a probabilistic *event* — with `event_probability` an extra
/// half-sine baseline excursion of depth ~ N(event_depth_kwh,
/// depth_sigma_kwh) materializes across the event window — on top of
/// per-slice background noise. Everything is deterministic per seed:
/// the planning problem from `base.seed`, ensembles and realizations from
/// disjoint streams derived from `seed`.
struct StressScenarioSpec {
  std::string name;
  std::string description;

  /// The planning workload (offers, market, baseline curve).
  scheduling::ScenarioConfig base;

  /// Stress-event window [event_start_slice, event_start_slice +
  /// event_length) within the horizon.
  int event_start_slice = 0;
  int event_length = 0;
  /// Probability the event materializes in a sampled error curve.
  double event_probability = 1.0;
  /// Signed peak depth of the event excursion (kWh per slice at the window
  /// center), in the baseline's sign convention: positive deepens the
  /// deficit (unforecast load), negative shifts toward surplus (RES
  /// overproduction / correlated feed-in).
  double event_depth_kwh = 0.0;
  /// Per-sample depth variability (Gaussian sigma around event_depth_kwh).
  double depth_sigma_kwh = 0.0;
  /// Background per-slice forecast noise (Gaussian sigma, all slices).
  double noise_sigma_kwh = 0.5;
  /// Realized buy-price / penalty multiplier inside the event window
  /// (price-spike scenarios; 1.0 leaves prices untouched). Applies to
  /// realized problems only — planning problems always carry base prices.
  double price_spike_factor = 1.0;

  /// Root of the scenario's error-model seed streams.
  uint64_t seed = 0;
};

/// Validates the spec's shape: non-empty name, event window inside the
/// horizon, probability in [0, 1], positive sigmas, positive spike factor.
Status ValidateStressScenario(const StressScenarioSpec& spec);

/// The library: four named stress scenarios over one intra-day BRP workload,
/// derived deterministically from `seed`.
///
///   ev_charge_surge       — probable late-shoulder deficit (correlated EV
///                           charging after the forecast evening peak)
///   demand_response_event — possible midday deficit burst (a forecast DR
///                           curtailment fails and consumption rebounds)
///   prosumer_flash_crowd  — broad, shallower surplus shift (correlated
///                           feed-in from many small prosumers)
///   price_spike           — pre-peak-ramp deficit whose window also
///                           realizes a multiplied buy price and penalty
std::vector<StressScenarioSpec> NamedStressScenarios(uint64_t seed);

/// Looks a scenario up by name in NamedStressScenarios(seed); NotFound
/// otherwise.
Result<StressScenarioSpec> FindStressScenario(std::string_view name,
                                              uint64_t seed);

/// The planning problem: what the point forecast claims the horizon looks
/// like. Deterministic per spec (base.seed).
scheduling::SchedulingProblem MakePlanningProblem(
    const StressScenarioSpec& spec);

/// Draws one per-slice baseline-error curve from the spec's structural
/// error model using the caller's generator: Bernoulli(event_probability)
/// event with Gaussian depth shaped as a half-sine over the event window,
/// plus background noise on every slice.
std::vector<double> SampleBaselineError(const StressScenarioSpec& spec,
                                        Rng* rng);

/// The error curve of out-of-sample realization `realization` (>= 0).
/// Deterministic per (spec.seed, realization); the stream is disjoint from
/// MakeStressEnsemble's, so realized outcomes are genuinely out of sample.
std::vector<double> RealizedBaselineError(const StressScenarioSpec& spec,
                                          int realization);

/// The realized problem of one out-of-sample draw: the planning problem
/// with its baseline shifted by RealizedBaselineError and, for price-spike
/// scenarios, buy price and penalty multiplied inside the event window.
scheduling::SchedulingProblem MakeRealizedProblem(
    const StressScenarioSpec& spec, int realization);

/// A planning ensemble of `num_scenarios` error curves drawn from the same
/// structural model (disjoint seed stream from the realizations) — what a
/// RobustScheduler plans against.
Result<scheduling::ScenarioEnsemble> MakeStressEnsemble(
    const StressScenarioSpec& spec, int num_scenarios);

}  // namespace mirabel::datagen

#endif  // MIRABEL_DATAGEN_STRESS_SCENARIOS_H_
