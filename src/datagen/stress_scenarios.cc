#include "datagen/stress_scenarios.h"

#include <cmath>
#include <utility>

namespace mirabel::datagen {

namespace {

/// Seed-stream discriminators: ensembles and realizations must never share
/// a generator state, or the "out-of-sample" realizations would be in
/// sample. Ensemble scenario k draws from seed * kStreamStride + k;
/// realization r from seed * kStreamStride + kRealizationOffset + r.
constexpr uint64_t kStreamStride = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kRealizationOffset = 0x100000ULL;

/// One shared base workload: a mid-size intra-day BRP gate with enough time
/// flexibility that schedules can actually hedge across windows.
scheduling::ScenarioConfig BaseWorkload(uint64_t seed) {
  scheduling::ScenarioConfig base;
  base.num_offers = 24;
  base.horizon_length = 96;
  base.seed = seed;
  base.imbalance_amplitude_kwh = 40.0;
  base.max_time_flexibility = 48;
  return base;
}

}  // namespace

Status ValidateStressScenario(const StressScenarioSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("stress scenario needs a name");
  }
  if (spec.base.horizon_length <= 0) {
    return Status::InvalidArgument(spec.name + ": horizon must be positive");
  }
  if (spec.event_length < 0 || spec.event_start_slice < 0 ||
      spec.event_start_slice + spec.event_length > spec.base.horizon_length) {
    return Status::InvalidArgument(spec.name +
                                   ": event window outside the horizon");
  }
  if (spec.event_probability < 0.0 || spec.event_probability > 1.0) {
    return Status::InvalidArgument(spec.name +
                                   ": event probability outside [0, 1]");
  }
  if (spec.depth_sigma_kwh < 0.0 || spec.noise_sigma_kwh < 0.0) {
    return Status::InvalidArgument(spec.name + ": negative sigma");
  }
  if (spec.price_spike_factor <= 0.0) {
    return Status::InvalidArgument(spec.name +
                                   ": price spike factor must be positive");
  }
  return Status::OK();
}

std::vector<StressScenarioSpec> NamedStressScenarios(uint64_t seed) {
  std::vector<StressScenarioSpec> specs;

  {
    StressScenarioSpec s;
    s.name = "ev_charge_surge";
    s.description =
        "Evening-to-midnight EV charging turns the cheap late shoulder into "
        "a ~30 kWh deficit with probability 1/2.";
    s.base = BaseWorkload(seed + 11);
    s.event_start_slice = 80;
    s.event_length = 16;
    s.event_probability = 0.5;
    s.event_depth_kwh = 30.0;
    s.depth_sigma_kwh = 5.0;
    s.noise_sigma_kwh = 0.8;
    s.seed = seed + 101;
    specs.push_back(std::move(s));
  }
  {
    StressScenarioSpec s;
    s.name = "demand_response_event";
    s.description =
        "A forecast demand-response curtailment fails to deliver: consumption "
        "rebounds into a ~35 kWh deficit burst with probability 0.4.";
    s.base = BaseWorkload(seed + 12);
    s.event_start_slice = 30;
    s.event_length = 12;
    s.event_probability = 0.4;
    s.event_depth_kwh = 35.0;
    s.depth_sigma_kwh = 6.0;
    s.noise_sigma_kwh = 0.8;
    s.seed = seed + 102;
    specs.push_back(std::move(s));
  }
  {
    StressScenarioSpec s;
    s.name = "prosumer_flash_crowd";
    s.description =
        "Many small prosumers deviate the same way: a broad, shallow "
        "correlated feed-in surge (~18 kWh toward surplus) with "
        "probability 0.35.";
    s.base = BaseWorkload(seed + 13);
    s.event_start_slice = 24;
    s.event_length = 44;
    s.event_probability = 0.35;
    s.event_depth_kwh = -18.0;
    s.depth_sigma_kwh = 4.0;
    s.noise_sigma_kwh = 1.2;
    s.seed = seed + 103;
    specs.push_back(std::move(s));
  }
  {
    StressScenarioSpec s;
    s.name = "price_spike";
    s.description =
        "The evening ramp comes early and steep: a ~20 kWh deficit across "
        "the pre-peak ramp whose window also realizes 4x buy price and "
        "penalty — being short there is disproportionately expensive.";
    s.base = BaseWorkload(seed + 14);
    s.event_start_slice = 58;
    s.event_length = 16;
    s.event_probability = 0.5;
    s.event_depth_kwh = 20.0;
    s.depth_sigma_kwh = 4.0;
    s.noise_sigma_kwh = 0.8;
    s.price_spike_factor = 4.0;
    s.seed = seed + 104;
    specs.push_back(std::move(s));
  }
  return specs;
}

Result<StressScenarioSpec> FindStressScenario(std::string_view name,
                                              uint64_t seed) {
  for (StressScenarioSpec& spec : NamedStressScenarios(seed)) {
    if (spec.name == name) return std::move(spec);
  }
  return Status::NotFound("no stress scenario named '" + std::string(name) +
                          "'");
}

scheduling::SchedulingProblem MakePlanningProblem(
    const StressScenarioSpec& spec) {
  return scheduling::MakeScenario(spec.base);
}

std::vector<double> SampleBaselineError(const StressScenarioSpec& spec,
                                        Rng* rng) {
  std::vector<double> error(static_cast<size_t>(spec.base.horizon_length),
                            0.0);
  // Event first, noise second: a fixed draw order keeps the stream layout
  // stable (and thus the per-seed bit-reproducibility contract testable).
  bool event = rng->Bernoulli(spec.event_probability);
  double depth = event
                     ? rng->Gaussian(spec.event_depth_kwh, spec.depth_sigma_kwh)
                     : 0.0;
  if (event) {
    for (int j = 0; j < spec.event_length; ++j) {
      // Half-sine excursion: zero at the window edges, `depth` at center.
      double bump = std::sin(M_PI * (static_cast<double>(j) + 0.5) /
                             static_cast<double>(spec.event_length));
      error[static_cast<size_t>(spec.event_start_slice + j)] = depth * bump;
    }
  }
  if (spec.noise_sigma_kwh > 0.0) {
    for (double& e : error) e += rng->Gaussian(0.0, spec.noise_sigma_kwh);
  }
  return error;
}

std::vector<double> RealizedBaselineError(const StressScenarioSpec& spec,
                                          int realization) {
  Rng rng(spec.seed * kStreamStride + kRealizationOffset +
          static_cast<uint64_t>(realization));
  return SampleBaselineError(spec, &rng);
}

scheduling::SchedulingProblem MakeRealizedProblem(
    const StressScenarioSpec& spec, int realization) {
  scheduling::SchedulingProblem problem = MakePlanningProblem(spec);
  std::vector<double> error = RealizedBaselineError(spec, realization);
  for (size_t s = 0; s < problem.baseline_imbalance_kwh.size(); ++s) {
    problem.baseline_imbalance_kwh[s] += error[s];
  }
  if (spec.price_spike_factor != 1.0) {
    for (int j = 0; j < spec.event_length; ++j) {
      size_t s = static_cast<size_t>(spec.event_start_slice + j);
      problem.market.buy_price_eur[s] *= spec.price_spike_factor;
      problem.imbalance_penalty_eur[s] *= spec.price_spike_factor;
    }
  }
  return problem;
}

Result<scheduling::ScenarioEnsemble> MakeStressEnsemble(
    const StressScenarioSpec& spec, int num_scenarios) {
  if (num_scenarios < 1) {
    return Status::InvalidArgument("num_scenarios must be >= 1");
  }
  std::vector<scheduling::BaselinePerturbation> perturbations;
  perturbations.reserve(static_cast<size_t>(num_scenarios));
  for (int k = 0; k < num_scenarios; ++k) {
    Rng rng(spec.seed * kStreamStride + static_cast<uint64_t>(k));
    perturbations.push_back(
        scheduling::BaselinePerturbation{SampleBaselineError(spec, &rng)});
  }
  return scheduling::ScenarioEnsemble::FromPerturbations(
      std::move(perturbations));
}

}  // namespace mirabel::datagen
