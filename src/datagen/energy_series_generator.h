#ifndef MIRABEL_DATAGEN_ENERGY_SERIES_GENERATOR_H_
#define MIRABEL_DATAGEN_ENERGY_SERIES_GENERATOR_H_

#include <cstdint>
#include <vector>

namespace mirabel::datagen {

/// Synthetic energy *demand* series generator.
///
/// Substitute for the UK NationalGrid metered half-hourly demand dataset used
/// in the paper's forecasting experiments (Fig. 4). That dataset is not
/// redistributable, so we synthesise a series with the same structure the HWT
/// and EGRV models exploit: a base load with strong daily, weekly and annual
/// seasonality, calendar effects (weekend / holiday dips) and autocorrelated
/// noise (paper §5: "multi-seasonality (daily, weekly, annual)").
struct DemandSeriesConfig {
  /// Observations per day: 48 matches the UK half-hourly data; 96 matches the
  /// 15-minute MIRABEL slices.
  int periods_per_day = 48;
  /// Length of the series in days.
  int days = 56;
  /// Mean load level (MW).
  double base_load_mw = 35000.0;
  /// Amplitude of the intra-day cycle (morning/evening peaks).
  double daily_amplitude = 9000.0;
  /// Additional weekday-vs-weekend swing.
  double weekly_amplitude = 3000.0;
  /// Amplitude of the annual (winter-high) cycle.
  double annual_amplitude = 5000.0;
  /// Relative dip applied on holidays.
  double holiday_dip = 0.12;
  /// Standard deviation of the AR(1) noise (MW).
  double noise_stddev = 500.0;
  /// AR(1) coefficient of the noise process.
  double noise_ar1 = 0.7;
  /// Day-of-year at which the series starts (controls the annual phase).
  int start_day_of_year = 0;
  uint64_t seed = 7;
};

/// Generates `config.days * config.periods_per_day` demand observations (MW).
std::vector<double> GenerateDemandSeries(const DemandSeriesConfig& config);

/// Synthetic *wind power* supply series generator.
///
/// Substitute for the NREL Wind Integration dataset. Wind speed follows a
/// mean-reverting AR(1) process with a weak diurnal component and is mapped
/// through a cubic turbine power curve with cut-in / rated / cut-out speeds.
/// The result matches the property the paper relies on in Fig. 4(b): supply
/// is much harder to forecast and has far weaker seasonality than demand.
struct WindSeriesConfig {
  int periods_per_day = 48;
  int days = 56;
  /// Mean wind speed (m/s).
  double mean_speed = 8.0;
  /// AR(1) persistence of the speed process.
  double speed_ar1 = 0.97;
  /// Innovation standard deviation (m/s).
  double speed_noise = 0.8;
  /// Small diurnal modulation of the mean speed (m/s).
  double diurnal_amplitude = 0.6;
  /// Installed capacity (MW) of the simulated wind fleet.
  double capacity_mw = 2000.0;
  double cut_in_speed = 3.0;
  double rated_speed = 13.0;
  double cut_out_speed = 25.0;
  uint64_t seed = 11;
};

/// Generates wind power output (MW) per period.
std::vector<double> GenerateWindSeries(const WindSeriesConfig& config);

/// Deterministic holiday calendar used by the generators and the EGRV model:
/// a fixed set of day-of-year values (new year, spring/summer bank holidays,
/// Christmas period) treated as holidays every year.
bool IsHolidayDayOfYear(int day_of_year);

}  // namespace mirabel::datagen

#endif  // MIRABEL_DATAGEN_ENERGY_SERIES_GENERATOR_H_
