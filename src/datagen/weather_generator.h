#ifndef MIRABEL_DATAGEN_WEATHER_GENERATOR_H_
#define MIRABEL_DATAGEN_WEATHER_GENERATOR_H_

#include <cstdint>
#include <vector>

namespace mirabel::datagen {

/// Synthetic outside-temperature series used as the external regressor of
/// the EGRV multi-equation forecast model (paper §5: "weather information ...
/// are included"). Annual cosine + diurnal cycle + AR(1) weather fronts.
struct WeatherConfig {
  int periods_per_day = 48;
  int days = 56;
  /// Annual mean temperature in degrees Celsius.
  double mean_temp_c = 10.0;
  /// Amplitude of the annual cycle (summer-high).
  double annual_amplitude = 8.0;
  /// Amplitude of the diurnal cycle (afternoon-high).
  double diurnal_amplitude = 4.0;
  /// AR(1) coefficient of the weather-front process.
  double front_ar1 = 0.995;
  /// Innovation stddev of the front process.
  double front_noise = 0.25;
  int start_day_of_year = 0;
  uint64_t seed = 23;
};

/// Generates one temperature value (deg C) per period.
std::vector<double> GenerateTemperatureSeries(const WeatherConfig& config);

}  // namespace mirabel::datagen

#endif  // MIRABEL_DATAGEN_WEATHER_GENERATOR_H_
