#ifndef MIRABEL_DATAGEN_FLEX_OFFER_GENERATOR_H_
#define MIRABEL_DATAGEN_FLEX_OFFER_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::datagen {

/// Parameters of the synthetic flex-offer workload.
///
/// The aggregation experiment of the paper (§9, Fig. 5) uses "around 800000
/// artificially generated flex-offers". This generator reproduces such a
/// dataset: household-style consumption offers (EV charging, dishwashers,
/// heat pumps, ...) whose attributes are drawn from simple, documented
/// distributions. All draws are deterministic given `seed`.
struct FlexOfferWorkloadConfig {
  /// Number of offers to generate.
  int64_t count = 1000;
  /// Seed for the deterministic generator.
  uint64_t seed = 42;

  /// Offers are created uniformly over this many days; the start window of an
  /// offer opens a few hours after its creation.
  int horizon_days = 1;

  /// Profile duration is drawn uniformly from [min, max] slices
  /// (default: 30 min .. 4 h at 15-minute slices).
  int min_duration_slices = 2;
  int max_duration_slices = 16;

  /// Time flexibility (latest_start - earliest_start) drawn uniformly from
  /// [min, max] slices (default: 0 .. 8 h).
  int min_time_flexibility = 0;
  int max_time_flexibility = 32;

  /// Per-slice maximum energy drawn uniformly from [min, max] kWh.
  double min_slice_energy_kwh = 0.25;
  double max_slice_energy_kwh = 2.5;

  /// Each slice's minimum energy = max energy * (1 - energy_flex_fraction),
  /// where the fraction is drawn uniformly from [0, max_energy_flex].
  double max_energy_flex = 0.5;

  /// Fraction of offers that are production (negative energy) offers, e.g.
  /// private solar panels committing output (paper §1).
  double production_fraction = 0.0;

  /// Number of distinct prosumers that own the offers.
  int64_t num_owners = 1000;

  /// Quantisation of attribute values. Real device classes produce many
  /// *identical* offers (the paper's motivation for the bin-packer); larger
  /// buckets yield more duplicates. Attributes are rounded to multiples of
  /// these steps.
  int time_flexibility_step = 4;
  int duration_step = 2;
};

/// Generates `config.count` valid flex-offers. Ids are 1..count.
std::vector<flexoffer::FlexOffer> GenerateFlexOffers(
    const FlexOfferWorkloadConfig& config);

/// Generates offers with a fresh Rng owned by the caller (for streaming use).
class FlexOfferGenerator {
 public:
  explicit FlexOfferGenerator(const FlexOfferWorkloadConfig& config);

  /// Returns the next offer of the stream.
  flexoffer::FlexOffer Next();

  /// Number of offers generated so far.
  int64_t generated() const { return next_id_ - 1; }

 private:
  FlexOfferWorkloadConfig config_;
  Rng rng_;
  flexoffer::FlexOfferId next_id_ = 1;
};

}  // namespace mirabel::datagen

#endif  // MIRABEL_DATAGEN_FLEX_OFFER_GENERATOR_H_
