#include "datagen/weather_generator.h"

#include <cmath>

#include "common/rng.h"

namespace mirabel::datagen {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::vector<double> GenerateTemperatureSeries(const WeatherConfig& config) {
  Rng rng(config.seed);
  const int n = config.days * config.periods_per_day;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));

  double front = 0.0;
  for (int t = 0; t < n; ++t) {
    int period = t % config.periods_per_day;
    int day = t / config.periods_per_day;
    int day_of_year = (config.start_day_of_year + day) % 365;
    double frac_of_day = static_cast<double>(period) / config.periods_per_day;

    // Summer-high annual cycle (peak near day-of-year 200).
    double annual = -std::cos(2.0 * kPi * (day_of_year - 20) / 365.0);
    // Afternoon-high diurnal cycle (peak ~15:00).
    double diurnal = std::cos(2.0 * kPi * (frac_of_day - 0.625));

    front = config.front_ar1 * front + rng.Gaussian(0.0, config.front_noise);

    out.push_back(config.mean_temp_c + config.annual_amplitude * annual +
                  config.diurnal_amplitude * diurnal + front);
  }
  return out;
}

}  // namespace mirabel::datagen
