#ifndef MIRABEL_AGGREGATION_GROUP_BUILDER_H_
#define MIRABEL_AGGREGATION_GROUP_BUILDER_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "aggregation/aggregation_params.h"
#include "common/result.h"
#include "common/status.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::aggregation {

/// Identifier of a similarity group maintained by the GroupBuilder.
using GroupId = uint64_t;

/// Kind of change reported by the incremental pipeline stages.
enum class UpdateKind { kCreated = 0, kChanged = 1, kDeleted = 2 };

/// Incremental change of one similarity group: the offers that entered and
/// the offer ids that left since the last Flush().
struct GroupUpdate {
  UpdateKind kind = UpdateKind::kCreated;
  GroupId group = 0;
  std::vector<flexoffer::FlexOffer> added;
  std::vector<flexoffer::FlexOfferId> removed;
};

/// First stage of the aggregation pipeline (paper §4): accumulates flex-offer
/// updates (inserts of accepted offers, removals of expiring ones) and, when
/// invoked via Flush(), partitions offers into groups of *similar* offers —
/// offers whose Start-After-Time / Time-Flexibility / duration deviate by no
/// more than the configured tolerances — and emits group updates.
class GroupBuilder {
 public:
  explicit GroupBuilder(const AggregationParams& params);

  /// Queues an offer insertion. Returns AlreadyExists for duplicate ids
  /// (considering both applied and pending state).
  Status Insert(const flexoffer::FlexOffer& offer);

  /// Pre-sizes the pending buffers for `extra` further insertions (batch
  /// intake avoids incremental reallocation).
  void Reserve(size_t extra);

  /// Queues an offer removal (e.g. the offer expired or was executed).
  /// Returns NotFound for unknown ids.
  Status Remove(flexoffer::FlexOfferId id);

  /// Applies all queued updates and returns the per-group deltas. Groups that
  /// become empty are reported kDeleted; new groups kCreated.
  std::vector<GroupUpdate> Flush();

  size_t num_groups() const { return groups_.size(); }
  size_t num_offers() const { return offer_to_group_.size(); }
  const AggregationParams& params() const { return params_; }

  /// Full current membership of a group (applied state only). Returns
  /// NotFound for unknown or deleted groups.
  Result<std::vector<flexoffer::FlexOffer>> GroupMembers(GroupId id) const;

 private:
  struct Group {
    GroupKey key;
    std::unordered_map<flexoffer::FlexOfferId, flexoffer::FlexOffer> offers;
  };

  AggregationParams params_;
  GroupId next_group_id_ = 1;

  std::map<GroupKey, GroupId> key_to_group_;
  std::unordered_map<GroupId, Group> groups_;
  std::unordered_map<flexoffer::FlexOfferId, GroupId> offer_to_group_;

  // Accumulated, not yet applied (paper: updates "are accumulated within the
  // group-builder until their further processing is invoked").
  std::vector<flexoffer::FlexOffer> pending_inserts_;
  std::vector<flexoffer::FlexOfferId> pending_removes_;
  std::unordered_map<flexoffer::FlexOfferId, size_t> pending_ids_;
};

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_GROUP_BUILDER_H_
