#ifndef MIRABEL_AGGREGATION_AGGREGATED_FLEX_OFFER_H_
#define MIRABEL_AGGREGATION_AGGREGATED_FLEX_OFFER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::aggregation {

/// Identifier of an aggregated (macro) flex-offer.
using AggregateId = uint64_t;

/// An aggregated "macro" flex-offer (paper §4) plus the bookkeeping needed to
/// disaggregate schedules back to its members.
///
/// Aggregation uses *start alignment*: each member profile is anchored at a
/// fixed offset from the aggregate profile start, chosen as
///   offset_i = member.earliest_start - aggregate.earliest_start.
/// When the aggregate is scheduled to start at slice t, member i starts at
/// t + offset_i. The aggregate's constraints are produced conservatively:
///
///  * aggregate.earliest_start = min_i member.earliest_start,
///  * aggregate time flexibility = min_i member.TimeFlexibility(), so
///    t + offset_i always lies inside member i's start window,
///  * per-slice energy bands are the sums of the member bands that overlap
///    the slice.
///
/// This construction guarantees the paper's *disaggregation requirement*:
/// every schedule of the aggregate maps to member schedules that respect all
/// original constraints (see Disaggregate()). The price is flexibility loss:
/// member i loses member.TimeFlexibility() - aggregate.TimeFlexibility()
/// slices of time flexibility — zero when all members have equal time
/// flexibility, which is what parameter combination P0 enforces (§9).
struct AggregatedFlexOffer {
  /// One aggregated member and its fixed alignment offset.
  struct Member {
    flexoffer::FlexOffer offer;
    /// Profile slice of the aggregate at which this member's profile begins.
    int64_t offset = 0;
  };

  /// The macro offer exposed to the scheduler. Its `id` is the AggregateId.
  flexoffer::FlexOffer macro;
  std::vector<Member> members;

  /// Sum over members of (member time flexibility - macro time flexibility),
  /// i.e. the total time flexibility lost by aggregating (paper Fig. 5(c)
  /// divides this by the number of flex-offers).
  int64_t TotalTimeFlexibilityLoss() const;

  /// Checks internal consistency: offsets non-negative, every member window
  /// covered, profile sums match the member profiles.
  Status Validate() const;
};

/// Builds an aggregated flex-offer from `members` (n-to-1 aggregation).
/// Requirements: at least one member, every member individually valid.
/// The macro offer's id is set to `aggregate_id`; its unit price is the
/// max-energy-weighted mean of the member prices; its assignment deadline is
/// the earliest member deadline.
Result<AggregatedFlexOffer> BuildAggregate(
    AggregateId aggregate_id,
    const std::vector<flexoffer::FlexOffer>& members);

/// Incrementally adds one member to `agg` without recomputing the other
/// members (paper §4 "incremental aggregation"). Falls back to widening the
/// profile as needed. When the new member's earliest start precedes the
/// aggregate's, all offsets must shift, which costs a full rebuild; this is
/// handled internally and still yields a valid aggregate.
Status AddMember(const flexoffer::FlexOffer& member, AggregatedFlexOffer* agg);

/// Incrementally removes the member with `member_id`. Rebuilds the profile
/// from the remaining members. Returns NotFound if absent; removing the last
/// member returns FailedPrecondition (delete the aggregate instead).
Status RemoveMember(flexoffer::FlexOfferId member_id, AggregatedFlexOffer* agg);

/// Disaggregates a schedule of the macro offer into one schedule per member
/// (paper §4). Member i starts at schedule.start + offset_i. Per-slice
/// energy is distributed by linear interpolation inside each member's band:
/// if the aggregate slice was scheduled at fraction f of the way from the
/// summed minimum to the summed maximum, every member slice is scheduled at
/// fraction f of its own band. This always satisfies the member bands and
/// reproduces the aggregate energy exactly, proving the disaggregation
/// requirement.
Result<std::vector<flexoffer::ScheduledFlexOffer>> Disaggregate(
    const AggregatedFlexOffer& agg,
    const flexoffer::ScheduledFlexOffer& schedule);

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_AGGREGATED_FLEX_OFFER_H_
