#ifndef MIRABEL_AGGREGATION_AGGREGATION_PARAMS_H_
#define MIRABEL_AGGREGATION_AGGREGATION_PARAMS_H_

#include <compare>
#include <cstdint>
#include <string>

#include "flexoffer/flex_offer.h"

namespace mirabel::aggregation {

/// User-defined aggregation thresholds (paper §4): two flex-offers may be
/// aggregated together only if their attribute values deviate by no more than
/// these tolerances. A tolerance of 0 demands identical values; -1 disables
/// grouping on that attribute entirely (any value matches).
///
/// The four parameter combinations of the paper's aggregation experiment
/// (§9, Fig. 5) are provided as factory functions:
///  * P0 - Start-After-Time and Time-Flexibility must be equal,
///  * P1 - small Time-Flexibility variation allowed, SAT equal,
///  * P2 - small SAT variation allowed, Time-Flexibility equal,
///  * P3 - small variation of both.
struct AggregationParams {
  /// Max deviation of earliest_start ("start after time"), in slices.
  int64_t start_after_tolerance = 0;
  /// Max deviation of the time flexibility (latest - earliest), in slices.
  int64_t time_flexibility_tolerance = 0;
  /// Max deviation of the profile duration; -1 ignores duration.
  int64_t duration_tolerance = -1;

  static AggregationParams P0() { return {0, 0, -1}; }
  static AggregationParams P1() { return {0, 8, -1}; }
  static AggregationParams P2() { return {8, 0, -1}; }
  static AggregationParams P3() { return {8, 8, -1}; }

  std::string ToString() const;
};

/// Quantised grouping key derived from a flex-offer under given params. Two
/// offers with equal keys deviate by at most the configured tolerances.
struct GroupKey {
  int64_t start_after_bucket = 0;
  int64_t time_flexibility_bucket = 0;
  int64_t duration_bucket = 0;

  auto operator<=>(const GroupKey&) const = default;
};

/// Computes the grouping key of `offer` under `params`.
GroupKey MakeGroupKey(const flexoffer::FlexOffer& offer,
                      const AggregationParams& params);

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_AGGREGATION_PARAMS_H_
