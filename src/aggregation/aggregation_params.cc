#include "aggregation/aggregation_params.h"

#include <cstdio>

namespace mirabel::aggregation {

namespace {

int64_t Bucket(int64_t value, int64_t tolerance) {
  if (tolerance < 0) return 0;  // attribute ignored
  int64_t width = tolerance + 1;
  int64_t b = value / width;
  if (value % width < 0) --b;  // floor division for negatives
  return b;
}

}  // namespace

std::string AggregationParams::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "AggregationParams{sat_tol=%lld tf_tol=%lld dur_tol=%lld}",
                static_cast<long long>(start_after_tolerance),
                static_cast<long long>(time_flexibility_tolerance),
                static_cast<long long>(duration_tolerance));
  return buf;
}

GroupKey MakeGroupKey(const flexoffer::FlexOffer& offer,
                      const AggregationParams& params) {
  GroupKey key;
  key.start_after_bucket =
      Bucket(offer.earliest_start, params.start_after_tolerance);
  key.time_flexibility_bucket =
      Bucket(offer.TimeFlexibility(), params.time_flexibility_tolerance);
  key.duration_bucket = Bucket(offer.Duration(), params.duration_tolerance);
  return key;
}

}  // namespace mirabel::aggregation
