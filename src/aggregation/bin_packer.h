#ifndef MIRABEL_AGGREGATION_BIN_PACKER_H_
#define MIRABEL_AGGREGATION_BIN_PACKER_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "aggregation/group_builder.h"

namespace mirabel::aggregation {

/// Identifier of a bounds-satisfying sub-group produced by the BinPacker.
using SubGroupId = uint64_t;

/// Bounds on the composition of a single aggregate (paper §4): "lower and
/// upper bounds on ... (1) the number of flex-offers included into a single
/// aggregate, (2) the amount of energy (or time flexibility) an aggregated
/// flex-offer has to offer". Upper bounds are hard; lower bounds are
/// satisfied best-effort by merging an undersized trailing sub-group into its
/// predecessor (a group smaller than the lower bound necessarily violates it).
struct BinPackerBounds {
  int64_t min_offers = 1;
  int64_t max_offers = std::numeric_limits<int64_t>::max();
  /// Upper bound on the sum of |total max energy| over members, kWh.
  double max_total_energy_kwh = std::numeric_limits<double>::infinity();
  /// Upper bound on the summed time flexibility (slices) over members.
  int64_t max_total_time_flexibility = std::numeric_limits<int64_t>::max();
};

/// Change of one sub-group. Because repacking can move offers between the
/// sub-groups of a group, updates carry the *full* new membership; consumers
/// diff against their previous state if they want deltas.
struct SubGroupUpdate {
  UpdateKind kind = UpdateKind::kCreated;
  SubGroupId sub_group = 0;
  /// Complete membership after the update (empty for kDeleted).
  std::vector<flexoffer::FlexOffer> members;
};

/// Second, optional stage of the aggregation pipeline: splits each similarity
/// group into sub-groups that satisfy the configured bounds. Without a
/// bin-packer, a large number of identical flex-offers would collapse into a
/// single huge aggregate, losing the ability to schedule them individually
/// (paper §4).
///
/// Packing is deterministic: offers are ordered by id and packed first-fit
/// into consecutive bins; each group's bins are repacked when the group
/// changes (packing is local to the changed group, so the pipeline stays
/// incremental at group granularity).
class BinPacker {
 public:
  explicit BinPacker(const BinPackerBounds& bounds);

  /// Consumes group updates and emits sub-group updates.
  std::vector<SubGroupUpdate> Process(const std::vector<GroupUpdate>& updates);

  size_t num_sub_groups() const { return sub_group_members_.size(); }
  const BinPackerBounds& bounds() const { return bounds_; }

 private:
  struct GroupState {
    // Current membership, kept sorted by offer id for deterministic packing.
    std::vector<flexoffer::FlexOffer> offers;
    // Sub-groups currently allocated to this group, in packing order.
    std::vector<SubGroupId> sub_groups;
  };

  /// Splits `offers` into bins respecting the bounds.
  std::vector<std::vector<flexoffer::FlexOffer>> Pack(
      const std::vector<flexoffer::FlexOffer>& offers) const;

  BinPackerBounds bounds_;
  SubGroupId next_sub_group_id_ = 1;
  std::unordered_map<GroupId, GroupState> groups_;
  std::unordered_map<SubGroupId, size_t> sub_group_members_;  // member count
};

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_BIN_PACKER_H_
