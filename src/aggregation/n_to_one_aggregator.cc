#include "aggregation/n_to_one_aggregator.h"

#include <algorithm>

namespace mirabel::aggregation {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;

Result<const AggregatedFlexOffer*> NToOneAggregator::Find(
    AggregateId id) const {
  auto it = aggregates_.find(id);
  if (it == aggregates_.end()) {
    return Status::NotFound("aggregate " + std::to_string(id));
  }
  return &it->second;
}

Result<AggregateUpdate> NToOneAggregator::AddIncremental(
    SubGroupId key, const std::vector<FlexOffer>& additions) {
  if (additions.empty()) {
    return Status::InvalidArgument("no offers to add");
  }
  auto map_it = key_to_aggregate_.find(key);
  if (map_it == key_to_aggregate_.end()) {
    return Upsert(key, additions);
  }
  AggregateId aid = map_it->second;
  AggregatedFlexOffer& agg = aggregates_[aid];
  for (const FlexOffer& fo : additions) {
    MIRABEL_RETURN_IF_ERROR(AddMember(fo, &agg));
  }
  AggregateUpdate u;
  u.kind = UpdateKind::kChanged;
  u.id = aid;
  u.aggregate = agg;
  return u;
}

Result<AggregateUpdate> NToOneAggregator::Upsert(
    SubGroupId key, const std::vector<FlexOffer>& members) {
  auto map_it = key_to_aggregate_.find(key);
  bool created = map_it == key_to_aggregate_.end();
  AggregateId aid = created ? next_aggregate_id_ : map_it->second;

  MIRABEL_ASSIGN_OR_RETURN(AggregatedFlexOffer built,
                           BuildAggregate(aid, members));
  if (created) {
    ++next_aggregate_id_;
    key_to_aggregate_[key] = aid;
  }
  aggregates_[aid] = std::move(built);

  AggregateUpdate u;
  u.kind = created ? UpdateKind::kCreated : UpdateKind::kChanged;
  u.id = aid;
  u.aggregate = aggregates_[aid];
  return u;
}

Result<AggregateUpdate> NToOneAggregator::Delete(SubGroupId key) {
  auto map_it = key_to_aggregate_.find(key);
  if (map_it == key_to_aggregate_.end()) {
    return Status::NotFound("no aggregate for key " + std::to_string(key));
  }
  AggregateId aid = map_it->second;
  aggregates_.erase(aid);
  key_to_aggregate_.erase(map_it);
  AggregateUpdate u;
  u.kind = UpdateKind::kDeleted;
  u.id = aid;
  return u;
}

std::vector<AggregateUpdate> NToOneAggregator::Process(
    const std::vector<SubGroupUpdate>& updates) {
  std::vector<AggregateUpdate> out;
  for (const SubGroupUpdate& su : updates) {
    if (su.kind == UpdateKind::kDeleted || su.members.empty()) {
      Result<AggregateUpdate> r = Delete(su.sub_group);
      if (r.ok()) out.push_back(std::move(r).value());
      continue;
    }

    // Pure-growth detection: if the new membership is a superset of the
    // current one, apply AddMember() incrementally instead of rebuilding.
    auto map_it = key_to_aggregate_.find(su.sub_group);
    if (map_it != key_to_aggregate_.end()) {
      const AggregatedFlexOffer& agg = aggregates_[map_it->second];
      std::unordered_set<FlexOfferId> old_ids;
      old_ids.reserve(agg.members.size());
      for (const auto& m : agg.members) old_ids.insert(m.offer.id);

      std::vector<FlexOffer> additions;
      size_t matched = 0;
      for (const FlexOffer& fo : su.members) {
        if (old_ids.count(fo.id) != 0) {
          ++matched;
        } else {
          additions.push_back(fo);
        }
      }
      if (matched == old_ids.size()) {
        if (additions.empty()) continue;  // membership unchanged
        Result<AggregateUpdate> r = AddIncremental(su.sub_group, additions);
        if (r.ok()) {
          out.push_back(std::move(r).value());
          continue;
        }
        // Fall through to a rebuild on failure.
      }
    }

    Result<AggregateUpdate> r = Upsert(su.sub_group, su.members);
    if (r.ok()) out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace mirabel::aggregation
