#include "aggregation/pipeline.h"

namespace mirabel::aggregation {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;

AggregationPipeline::AggregationPipeline(const PipelineConfig& config)
    : group_builder_(config.params) {
  if (config.bin_packer.has_value()) {
    bin_packer_.emplace(*config.bin_packer);
  }
}

Status AggregationPipeline::Insert(const FlexOffer& offer) {
  MIRABEL_RETURN_IF_ERROR(offer.Validate());
  return group_builder_.Insert(offer);
}

Status AggregationPipeline::Insert(std::span<const FlexOffer> offers) {
  group_builder_.Reserve(offers.size());
  for (const FlexOffer& offer : offers) {
    MIRABEL_RETURN_IF_ERROR(Insert(offer));
  }
  return Status::OK();
}

Status AggregationPipeline::Remove(FlexOfferId id) {
  return group_builder_.Remove(id);
}

std::vector<AggregateUpdate> AggregationPipeline::Flush() {
  std::vector<GroupUpdate> group_updates = group_builder_.Flush();

  if (bin_packer_.has_value()) {
    std::vector<SubGroupUpdate> sub_updates =
        bin_packer_->Process(group_updates);
    return aggregator_.Process(sub_updates);
  }

  // Bin-packer disabled: the aggregator consumes group updates directly
  // (one aggregate per similarity group).
  std::vector<AggregateUpdate> out;
  for (const GroupUpdate& gu : group_updates) {
    Result<AggregateUpdate> r = Status::Internal("unhandled update kind");
    switch (gu.kind) {
      case UpdateKind::kDeleted:
        r = aggregator_.Delete(gu.group);
        break;
      case UpdateKind::kCreated:
        r = aggregator_.Upsert(gu.group, gu.added);
        break;
      case UpdateKind::kChanged:
        if (gu.removed.empty()) {
          r = aggregator_.AddIncremental(gu.group, gu.added);
        } else {
          // Shrinking change: rebuild from the authoritative membership.
          Result<std::vector<FlexOffer>> members =
              group_builder_.GroupMembers(gu.group);
          if (!members.ok()) {
            r = members.status();
          } else {
            r = aggregator_.Upsert(gu.group, *members);
          }
        }
        break;
    }
    if (r.ok()) out.push_back(std::move(r).value());
  }
  return out;
}

Result<std::vector<ScheduledFlexOffer>>
AggregationPipeline::DisaggregateSchedule(
    const ScheduledFlexOffer& macro_schedule) const {
  MIRABEL_ASSIGN_OR_RETURN(const AggregatedFlexOffer* agg,
                           aggregator_.Find(macro_schedule.offer_id));
  return Disaggregate(*agg, macro_schedule);
}

AggregationStats AggregationPipeline::Stats() const {
  AggregationStats stats;
  stats.aggregate_count = aggregator_.num_aggregates();
  int64_t total_loss = 0;
  size_t total_members = 0;
  for (const auto& [id, agg] : aggregator_.aggregates()) {
    total_loss += agg.TotalTimeFlexibilityLoss();
    total_members += agg.members.size();
  }
  stats.offer_count = total_members;
  stats.compression_ratio =
      stats.aggregate_count > 0
          ? static_cast<double>(total_members) / stats.aggregate_count
          : 0.0;
  stats.avg_time_flexibility_loss =
      total_members > 0 ? static_cast<double>(total_loss) / total_members : 0.0;
  return stats;
}

}  // namespace mirabel::aggregation
