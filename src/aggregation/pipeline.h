#ifndef MIRABEL_AGGREGATION_PIPELINE_H_
#define MIRABEL_AGGREGATION_PIPELINE_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "aggregation/bin_packer.h"
#include "aggregation/group_builder.h"
#include "aggregation/n_to_one_aggregator.h"

namespace mirabel::aggregation {

/// Configuration of the aggregation component.
struct PipelineConfig {
  AggregationParams params;
  /// When set, the optional bin-packer stage is enabled (paper §4: "this
  /// bin-packer is an optional feature and can be turned off").
  std::optional<BinPackerBounds> bin_packer;
};

/// Summary statistics over the current set of offers/aggregates, matching the
/// metrics of the paper's aggregation experiment (Fig. 5).
struct AggregationStats {
  size_t offer_count = 0;
  size_t aggregate_count = 0;
  /// offers per aggregate; > 1 means compression (Fig. 5(a)).
  double compression_ratio = 0.0;
  /// Mean (member time flexibility - aggregate time flexibility), slices
  /// (Fig. 5(c) "Loss of Time Flexibility per 1 Flex-offer").
  double avg_time_flexibility_loss = 0.0;
};

/// The aggregation component (paper §4): chains group-builder, optional
/// bin-packer and n-to-1 aggregator. "Accepts a set of flex-offer updates ...
/// and produces a set of aggregated flex-offer updates."
///
/// Usage:
///   AggregationPipeline pipe({AggregationParams::P2(), std::nullopt});
///   for (const FlexOffer& fo : offers) pipe.Insert(fo);
///   std::vector<AggregateUpdate> ups = pipe.Flush();
///   ... schedule macro offers ...
///   auto micro = pipe.DisaggregateSchedule(macro_schedule);
class AggregationPipeline {
 public:
  explicit AggregationPipeline(const PipelineConfig& config);

  /// Queues the insertion of an accepted flex-offer.
  Status Insert(const flexoffer::FlexOffer& offer);

  /// Batch intake: queues all of `offers` (reserving the pending buffers
  /// up front). Stops at the first invalid or duplicate offer and returns
  /// its error; earlier offers stay queued.
  Status Insert(std::span<const flexoffer::FlexOffer> offers);

  /// Queues the removal of an offer (expired / executed / withdrawn).
  Status Remove(flexoffer::FlexOfferId id);

  /// Processes all queued updates through the stages and returns the
  /// resulting aggregated flex-offer updates.
  std::vector<AggregateUpdate> Flush();

  /// Live aggregates keyed by AggregateId.
  const std::unordered_map<AggregateId, AggregatedFlexOffer>& aggregates()
      const {
    return aggregator_.aggregates();
  }

  /// Disaggregates a schedule whose offer_id names an aggregate produced by
  /// this pipeline into per-member schedules (paper §4 disaggregation).
  Result<std::vector<flexoffer::ScheduledFlexOffer>> DisaggregateSchedule(
      const flexoffer::ScheduledFlexOffer& macro_schedule) const;

  /// Current compression / flexibility-loss statistics.
  AggregationStats Stats() const;

  size_t num_groups() const { return group_builder_.num_groups(); }
  size_t num_offers() const { return group_builder_.num_offers(); }

 private:
  GroupBuilder group_builder_;
  std::optional<BinPacker> bin_packer_;
  NToOneAggregator aggregator_;
};

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_PIPELINE_H_
