#ifndef MIRABEL_AGGREGATION_N_TO_ONE_AGGREGATOR_H_
#define MIRABEL_AGGREGATION_N_TO_ONE_AGGREGATOR_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aggregation/aggregated_flex_offer.h"
#include "aggregation/bin_packer.h"

namespace mirabel::aggregation {

/// Change of one aggregated flex-offer, the pipeline's final output
/// ("information about created, deleted, and changed aggregated flex-offers",
/// paper §4).
struct AggregateUpdate {
  UpdateKind kind = UpdateKind::kCreated;
  AggregateId id = 0;
  /// Valid for kCreated / kChanged; empty members for kDeleted.
  AggregatedFlexOffer aggregate;
};

/// Third stage of the aggregation pipeline: maintains one AggregatedFlexOffer
/// per sub-group (n-to-1). Pure additions are applied incrementally via
/// AddMember() (paper §4 "incremental aggregation"); shrinking or reshuffled
/// memberships rebuild just the affected aggregate. Also the owner of
/// disaggregation (see Disaggregate() in aggregated_flex_offer.h).
///
/// Keys are the upstream stage's identifiers: sub-group ids when the
/// bin-packer is enabled, group ids otherwise (the paper: the aggregator
/// "utilizes sub-group updates (or group-updates if the bin-packer is
/// disabled)"). The AggregationPipeline picks the mode.
class NToOneAggregator {
 public:
  NToOneAggregator() = default;

  /// Consumes full-membership sub-group updates (bin-packer mode).
  std::vector<AggregateUpdate> Process(
      const std::vector<SubGroupUpdate>& updates);

  /// Incremental fast path: appends `additions` to the aggregate keyed by
  /// `key`, creating it when absent. O(sum of addition profile lengths).
  Result<AggregateUpdate> AddIncremental(
      SubGroupId key, const std::vector<flexoffer::FlexOffer>& additions);

  /// Replaces the membership of the aggregate keyed by `key` (rebuild),
  /// creating it when absent.
  Result<AggregateUpdate> Upsert(
      SubGroupId key, const std::vector<flexoffer::FlexOffer>& members);

  /// Deletes the aggregate keyed by `key`. Returns NotFound when absent.
  Result<AggregateUpdate> Delete(SubGroupId key);

  /// All live aggregates, keyed by AggregateId.
  const std::unordered_map<AggregateId, AggregatedFlexOffer>& aggregates()
      const {
    return aggregates_;
  }

  /// Looks up a live aggregate. Returns NotFound for unknown ids.
  Result<const AggregatedFlexOffer*> Find(AggregateId id) const;

  size_t num_aggregates() const { return aggregates_.size(); }

 private:
  AggregateId next_aggregate_id_ = 1;
  // Upstream key -> aggregate mapping, stable for the key's lifetime.
  std::unordered_map<SubGroupId, AggregateId> key_to_aggregate_;
  std::unordered_map<AggregateId, AggregatedFlexOffer> aggregates_;
};

}  // namespace mirabel::aggregation

#endif  // MIRABEL_AGGREGATION_N_TO_ONE_AGGREGATOR_H_
