#include "aggregation/bin_packer.h"

#include <algorithm>
#include <cmath>

namespace mirabel::aggregation {

using flexoffer::FlexOffer;

BinPacker::BinPacker(const BinPackerBounds& bounds) : bounds_(bounds) {}

std::vector<std::vector<FlexOffer>> BinPacker::Pack(
    const std::vector<FlexOffer>& offers) const {
  std::vector<std::vector<FlexOffer>> bins;
  int64_t count = 0;
  double energy = 0.0;
  int64_t time_flex = 0;
  for (const FlexOffer& fo : offers) {
    double fo_energy = std::fabs(fo.TotalMaxEnergy());
    int64_t fo_tf = fo.TimeFlexibility();
    bool fits = !bins.empty() && count < bounds_.max_offers &&
                energy + fo_energy <= bounds_.max_total_energy_kwh &&
                time_flex + fo_tf <= bounds_.max_total_time_flexibility;
    if (!fits) {
      bins.emplace_back();
      count = 0;
      energy = 0.0;
      time_flex = 0;
    }
    bins.back().push_back(fo);
    ++count;
    energy += fo_energy;
    time_flex += fo_tf;
  }
  // Best-effort lower bound: fold an undersized trailing bin into its
  // predecessor (upper bounds may be exceeded by at most one bin's slack;
  // we prioritise the lower bound as the paper leaves the trade-off open).
  if (bins.size() >= 2 &&
      static_cast<int64_t>(bins.back().size()) < bounds_.min_offers) {
    auto& prev = bins[bins.size() - 2];
    prev.insert(prev.end(), bins.back().begin(), bins.back().end());
    bins.pop_back();
  }
  return bins;
}

std::vector<SubGroupUpdate> BinPacker::Process(
    const std::vector<GroupUpdate>& updates) {
  std::vector<SubGroupUpdate> out;
  for (const GroupUpdate& gu : updates) {
    GroupState& state = groups_[gu.group];

    if (gu.kind == UpdateKind::kDeleted) {
      for (SubGroupId sid : state.sub_groups) {
        sub_group_members_.erase(sid);
        out.push_back({UpdateKind::kDeleted, sid, {}});
      }
      groups_.erase(gu.group);
      continue;
    }

    // Apply membership deltas.
    if (!gu.removed.empty()) {
      auto is_removed = [&gu](const FlexOffer& fo) {
        return std::find(gu.removed.begin(), gu.removed.end(), fo.id) !=
               gu.removed.end();
      };
      state.offers.erase(
          std::remove_if(state.offers.begin(), state.offers.end(), is_removed),
          state.offers.end());
    }
    for (const FlexOffer& fo : gu.added) state.offers.push_back(fo);
    std::sort(state.offers.begin(), state.offers.end(),
              [](const FlexOffer& a, const FlexOffer& b) { return a.id < b.id; });

    // Repack and diff against the previously allocated sub-groups.
    std::vector<std::vector<FlexOffer>> bins = Pack(state.offers);
    size_t reused = std::min(bins.size(), state.sub_groups.size());
    for (size_t i = 0; i < reused; ++i) {
      SubGroupId sid = state.sub_groups[i];
      sub_group_members_[sid] = bins[i].size();
      out.push_back({UpdateKind::kChanged, sid, std::move(bins[i])});
    }
    for (size_t i = reused; i < bins.size(); ++i) {
      SubGroupId sid = next_sub_group_id_++;
      state.sub_groups.push_back(sid);
      sub_group_members_[sid] = bins[i].size();
      out.push_back({UpdateKind::kCreated, sid, std::move(bins[i])});
    }
    for (size_t i = bins.size(); i < state.sub_groups.size(); ++i) {
      SubGroupId sid = state.sub_groups[i];
      sub_group_members_.erase(sid);
      out.push_back({UpdateKind::kDeleted, sid, {}});
    }
    state.sub_groups.resize(bins.size());
  }
  return out;
}

}  // namespace mirabel::aggregation
