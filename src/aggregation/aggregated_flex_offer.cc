#include "aggregation/aggregated_flex_offer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mirabel::aggregation {

using flexoffer::EnergyRange;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

namespace {

/// Recomputes macro profile, time window, deadline and price of `agg` from
/// its members, keeping member offers intact. Member offsets are reassigned.
void RebuildMacro(AggregatedFlexOffer* agg) {
  auto& members = agg->members;
  FlexOffer& macro = agg->macro;

  TimeSlice earliest = std::numeric_limits<TimeSlice>::max();
  TimeSlice min_assignment = std::numeric_limits<TimeSlice>::max();
  TimeSlice min_creation = std::numeric_limits<TimeSlice>::max();
  int64_t min_tf = std::numeric_limits<int64_t>::max();
  for (const auto& m : members) {
    earliest = std::min(earliest, m.offer.earliest_start);
    min_assignment = std::min(min_assignment, m.offer.assignment_before);
    min_creation = std::min(min_creation, m.offer.creation_time);
    min_tf = std::min(min_tf, m.offer.TimeFlexibility());
  }

  int64_t length = 0;
  for (auto& m : members) {
    m.offset = m.offer.earliest_start - earliest;
    length = std::max(length, m.offset + m.offer.Duration());
  }

  macro.profile.assign(static_cast<size_t>(length), EnergyRange{0.0, 0.0});
  double weighted_price = 0.0;
  double total_weight = 0.0;
  for (const auto& m : members) {
    for (int64_t j = 0; j < m.offer.Duration(); ++j) {
      auto& slot = macro.profile[static_cast<size_t>(m.offset + j)];
      slot.min_kwh += m.offer.profile[static_cast<size_t>(j)].min_kwh;
      slot.max_kwh += m.offer.profile[static_cast<size_t>(j)].max_kwh;
    }
    double w = std::fabs(m.offer.TotalMaxEnergy());
    weighted_price += w * m.offer.unit_price_eur;
    total_weight += w;
  }

  macro.earliest_start = earliest;
  macro.latest_start = earliest + min_tf;
  macro.assignment_before = std::min(min_assignment, macro.latest_start);
  macro.creation_time = std::min(min_creation, macro.assignment_before);
  macro.unit_price_eur = total_weight > 0 ? weighted_price / total_weight : 0;
}

}  // namespace

int64_t AggregatedFlexOffer::TotalTimeFlexibilityLoss() const {
  int64_t macro_tf = macro.TimeFlexibility();
  int64_t loss = 0;
  for (const auto& m : members) {
    loss += m.offer.TimeFlexibility() - macro_tf;
  }
  return loss;
}

Status AggregatedFlexOffer::Validate() const {
  if (members.empty()) {
    return Status::FailedPrecondition("aggregate has no members");
  }
  MIRABEL_RETURN_IF_ERROR(macro.Validate());
  constexpr double kTol = 1e-6;
  std::vector<double> min_sum(macro.profile.size(), 0.0);
  std::vector<double> max_sum(macro.profile.size(), 0.0);
  for (const auto& m : members) {
    MIRABEL_RETURN_IF_ERROR(m.offer.Validate());
    if (m.offset < 0) return Status::Internal("negative member offset");
    if (m.offset + m.offer.Duration() >
        static_cast<int64_t>(macro.profile.size())) {
      return Status::Internal("member profile exceeds macro profile");
    }
    if (m.offer.earliest_start != macro.earliest_start + m.offset) {
      return Status::Internal("member offset inconsistent with earliest start");
    }
    // The macro window must keep every member start feasible.
    if (macro.latest_start + m.offset > m.offer.latest_start) {
      return Status::Internal("macro window exceeds member latest start");
    }
    for (int64_t j = 0; j < m.offer.Duration(); ++j) {
      min_sum[static_cast<size_t>(m.offset + j)] +=
          m.offer.profile[static_cast<size_t>(j)].min_kwh;
      max_sum[static_cast<size_t>(m.offset + j)] +=
          m.offer.profile[static_cast<size_t>(j)].max_kwh;
    }
  }
  for (size_t j = 0; j < macro.profile.size(); ++j) {
    if (std::fabs(min_sum[j] - macro.profile[j].min_kwh) > kTol ||
        std::fabs(max_sum[j] - macro.profile[j].max_kwh) > kTol) {
      return Status::Internal("macro profile does not equal member sums");
    }
  }
  return Status::OK();
}

Result<AggregatedFlexOffer> BuildAggregate(
    AggregateId aggregate_id, const std::vector<FlexOffer>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("cannot aggregate zero flex-offers");
  }
  for (const auto& m : members) {
    MIRABEL_RETURN_IF_ERROR(m.Validate());
  }
  AggregatedFlexOffer agg;
  agg.macro.id = aggregate_id;
  agg.macro.owner = 0;  // aggregates are owned by the aggregating node
  agg.members.reserve(members.size());
  for (const auto& m : members) agg.members.push_back({m, 0});
  RebuildMacro(&agg);
  return agg;
}

Status AddMember(const FlexOffer& member, AggregatedFlexOffer* agg) {
  MIRABEL_RETURN_IF_ERROR(member.Validate());
  if (agg->members.empty()) {
    return Status::FailedPrecondition("aggregate has no members");
  }
  if (member.earliest_start < agg->macro.earliest_start) {
    // All offsets shift; incremental update is not cheaper than a rebuild.
    agg->members.push_back({member, 0});
    RebuildMacro(agg);
    return Status::OK();
  }

  // Fast path: append the member's bands into the existing sums.
  int64_t offset = member.earliest_start - agg->macro.earliest_start;
  int64_t needed = offset + member.Duration();
  if (needed > static_cast<int64_t>(agg->macro.profile.size())) {
    agg->macro.profile.resize(static_cast<size_t>(needed),
                              EnergyRange{0.0, 0.0});
  }
  for (int64_t j = 0; j < member.Duration(); ++j) {
    auto& slot = agg->macro.profile[static_cast<size_t>(offset + j)];
    slot.min_kwh += member.profile[static_cast<size_t>(j)].min_kwh;
    slot.max_kwh += member.profile[static_cast<size_t>(j)].max_kwh;
  }

  int64_t new_tf =
      std::min(agg->macro.TimeFlexibility(), member.TimeFlexibility());
  agg->macro.latest_start = agg->macro.earliest_start + new_tf;
  agg->macro.assignment_before = std::min(
      std::min(agg->macro.assignment_before, member.assignment_before),
      agg->macro.latest_start);
  agg->macro.creation_time =
      std::min(std::min(agg->macro.creation_time, member.creation_time),
               agg->macro.assignment_before);

  // Price: recompute the weighted mean incrementally.
  double w_new = std::fabs(member.TotalMaxEnergy());
  double w_old = 0.0;
  for (const auto& m : agg->members) w_old += std::fabs(m.offer.TotalMaxEnergy());
  double total = w_old + w_new;
  if (total > 0) {
    agg->macro.unit_price_eur =
        (agg->macro.unit_price_eur * w_old + member.unit_price_eur * w_new) /
        total;
  }

  agg->members.push_back({member, offset});
  return Status::OK();
}

Status RemoveMember(FlexOfferId member_id, AggregatedFlexOffer* agg) {
  auto it = std::find_if(
      agg->members.begin(), agg->members.end(),
      [member_id](const auto& m) { return m.offer.id == member_id; });
  if (it == agg->members.end()) {
    return Status::NotFound("member " + std::to_string(member_id));
  }
  if (agg->members.size() == 1) {
    return Status::FailedPrecondition(
        "removing the last member would leave an empty aggregate");
  }
  agg->members.erase(it);
  RebuildMacro(agg);
  return Status::OK();
}

Result<std::vector<ScheduledFlexOffer>> Disaggregate(
    const AggregatedFlexOffer& agg, const ScheduledFlexOffer& schedule) {
  MIRABEL_RETURN_IF_ERROR(schedule.ValidateAgainst(agg.macro));

  // Per-slice fill fraction f in [0, 1]: how far the scheduled energy sits
  // inside the aggregated [min, max] band.
  std::vector<double> fraction(agg.macro.profile.size(), 0.0);
  for (size_t j = 0; j < agg.macro.profile.size(); ++j) {
    const auto& band = agg.macro.profile[j];
    double width = band.Flexibility();
    fraction[j] =
        width > 1e-12 ? (schedule.energies_kwh[j] - band.min_kwh) / width : 0.0;
    // Guard against rounding outside [0, 1].
    fraction[j] = std::min(1.0, std::max(0.0, fraction[j]));
  }

  std::vector<ScheduledFlexOffer> out;
  out.reserve(agg.members.size());
  for (const auto& m : agg.members) {
    ScheduledFlexOffer s;
    s.offer_id = m.offer.id;
    s.start = schedule.start + m.offset;
    s.energies_kwh.reserve(m.offer.profile.size());
    for (int64_t j = 0; j < m.offer.Duration(); ++j) {
      const auto& band = m.offer.profile[static_cast<size_t>(j)];
      double f = fraction[static_cast<size_t>(m.offset + j)];
      s.energies_kwh.push_back(band.min_kwh + f * band.Flexibility());
    }
    MIRABEL_RETURN_IF_ERROR(s.ValidateAgainst(m.offer));
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mirabel::aggregation
