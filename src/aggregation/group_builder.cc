#include "aggregation/group_builder.h"

#include <algorithm>

namespace mirabel::aggregation {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;

GroupBuilder::GroupBuilder(const AggregationParams& params)
    : params_(params) {}

Status GroupBuilder::Insert(const FlexOffer& offer) {
  if (offer.id == 0) {
    return Status::InvalidArgument("flex-offer id 0 is reserved");
  }
  if (offer_to_group_.count(offer.id) != 0 ||
      pending_ids_.count(offer.id) != 0) {
    return Status::AlreadyExists("flex-offer " + std::to_string(offer.id));
  }
  pending_ids_.emplace(offer.id, pending_inserts_.size());
  pending_inserts_.push_back(offer);
  return Status::OK();
}

void GroupBuilder::Reserve(size_t extra) {
  pending_inserts_.reserve(pending_inserts_.size() + extra);
  pending_ids_.reserve(pending_ids_.size() + extra);
}

Status GroupBuilder::Remove(FlexOfferId id) {
  auto pending_it = pending_ids_.find(id);
  if (pending_it != pending_ids_.end()) {
    // Insert and remove within the same batch cancel out. Mark the pending
    // insert as dead by clearing its id (id 0 is never used by callers).
    pending_inserts_[pending_it->second].id = 0;
    pending_ids_.erase(pending_it);
    return Status::OK();
  }
  if (offer_to_group_.count(id) == 0) {
    return Status::NotFound("flex-offer " + std::to_string(id));
  }
  pending_removes_.push_back(id);
  return Status::OK();
}

Result<std::vector<FlexOffer>> GroupBuilder::GroupMembers(GroupId id) const {
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    return Status::NotFound("group " + std::to_string(id));
  }
  std::vector<FlexOffer> out;
  out.reserve(it->second.offers.size());
  for (const auto& [oid, offer] : it->second.offers) out.push_back(offer);
  std::sort(out.begin(), out.end(),
            [](const FlexOffer& a, const FlexOffer& b) { return a.id < b.id; });
  return out;
}

std::vector<GroupUpdate> GroupBuilder::Flush() {
  struct Delta {
    bool created = false;
    std::vector<FlexOffer> added;
    std::vector<FlexOfferId> removed;
  };
  std::map<GroupId, Delta> deltas;

  // Apply removals first so that re-inserted offers land cleanly.
  for (FlexOfferId id : pending_removes_) {
    auto it = offer_to_group_.find(id);
    if (it == offer_to_group_.end()) continue;  // removed twice in one batch
    GroupId gid = it->second;
    Group& group = groups_[gid];
    group.offers.erase(id);
    offer_to_group_.erase(it);
    deltas[gid].removed.push_back(id);
  }

  for (const FlexOffer& offer : pending_inserts_) {
    if (offer.id == 0) continue;  // cancelled within the batch
    GroupKey key = MakeGroupKey(offer, params_);
    auto [key_it, inserted] = key_to_group_.try_emplace(key, next_group_id_);
    GroupId gid = key_it->second;
    if (inserted) {
      ++next_group_id_;
      groups_[gid].key = key;
      deltas[gid].created = true;
    }
    groups_[gid].offers.emplace(offer.id, offer);
    offer_to_group_[offer.id] = gid;
    deltas[gid].added.push_back(offer);
  }

  pending_inserts_.clear();
  pending_removes_.clear();
  pending_ids_.clear();

  std::vector<GroupUpdate> updates;
  updates.reserve(deltas.size());
  for (auto& [gid, delta] : deltas) {
    GroupUpdate u;
    u.group = gid;
    u.added = std::move(delta.added);
    u.removed = std::move(delta.removed);
    Group& group = groups_[gid];
    if (group.offers.empty()) {
      u.kind = UpdateKind::kDeleted;
      key_to_group_.erase(group.key);
      groups_.erase(gid);
      // A group created and emptied in the same batch is a no-op.
      if (delta.created) continue;
    } else if (delta.created) {
      u.kind = UpdateKind::kCreated;
    } else {
      u.kind = UpdateKind::kChanged;
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

}  // namespace mirabel::aggregation
