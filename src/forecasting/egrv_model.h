#ifndef MIRABEL_FORECASTING_EGRV_MODEL_H_
#define MIRABEL_FORECASTING_EGRV_MODEL_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// External regressors aligned with a series (one entry per observation):
/// weather information and calendar events (paper §5: "weather information,
/// calendar events (e.g., holidays) and context knowledge ... are included").
struct ExogenousData {
  std::vector<double> temperature_c;
  std::vector<bool> holiday;

  /// Validates that both vectors have exactly `expected` entries.
  Status CheckSize(size_t expected) const;
};

/// The EGRV (Engle, Granger, Ramanathan, Vahid-Araghi) multi-equation energy
/// demand forecast model [11]: "an individual model for each intra-day
/// period (e.g., one model for each hour)" (paper §5).
///
/// For each intra-day period p (0..periods_per_day-1) an independent OLS
/// regression is fitted on the observations of that period:
///
///   y_t = b0 + b1 * y_{t-1d} + b2 * y_{t-1w} + b3 * temp_t + b4 * temp_t^2
///         + b5 * holiday_t + b6 * weekend_t + b7 * trend_t + e_t
///
/// Because the per-period models are independent, model creation can be
/// parallelised by horizontally partitioning the series according to the
/// multi-equation access pattern (paper §5 "Parallelized Model Creation");
/// see FitParallel().
class EgrvModel {
 public:
  explicit EgrvModel(int periods_per_day);

  /// Number of regressors per equation.
  static constexpr int kNumRegressors = 8;

  /// Fits all per-period equations sequentially.
  /// Requires series length >= 14 days and exogenous data of equal length.
  Status Fit(const TimeSeries& series, const ExogenousData& exog);

  /// Fits the independent per-period equations on `num_threads` threads.
  /// Produces results identical to Fit().
  Status FitParallel(const TimeSeries& series, const ExogenousData& exog,
                     int num_threads);

  /// Forecasts the `horizon` observations following the training series.
  /// `future_temperature` / `future_holiday` must each provide `horizon`
  /// entries (the weather forecast and calendar for the forecast window).
  /// Lagged loads beyond the training data use the model's own predictions
  /// (recursive multi-step forecasting).
  Result<std::vector<double>> Forecast(
      int horizon, const std::vector<double>& future_temperature,
      const std::vector<bool>& future_holiday) const;

  bool fitted() const { return fitted_; }
  int periods_per_day() const { return periods_per_day_; }

  /// In-sample one-step errors of the last fit over every observation with
  /// full lags (global index >= one week), in series order. Computed in a
  /// deterministic serial pass after the equations are solved, so Fit() and
  /// FitParallel() record bit-identical pools. Empty before the first fit.
  const std::vector<double>& residuals() const { return residuals_; }

  /// Fills `out` with centered bootstrap draws from residuals() using the
  /// caller's generator (see SampleCenteredResiduals in
  /// residual_sampling.h). Const: never perturbs the fitted state.
  /// FailedPrecondition before the first fit.
  Status SampleResiduals(Rng* rng, std::span<double> out) const;

  /// Coefficients of the equation for intra-day period `p` (fitted only).
  Result<std::vector<double>> Coefficients(int period) const;

 private:
  /// Builds the regressor vector for global index t.
  std::vector<double> MakeRow(const std::vector<double>& values,
                              double temperature, bool holiday,
                              size_t t) const;

  /// Fits the equations for periods [begin, end); used by both fit paths.
  Status FitRange(const TimeSeries& series, const ExogenousData& exog,
                  int begin, int end);

  int periods_per_day_;
  bool fitted_ = false;
  /// One coefficient vector per intra-day period.
  std::vector<std::vector<double>> coefficients_;
  /// Trailing training data needed for lagged regressors at forecast time.
  std::vector<double> history_tail_;
  size_t train_size_ = 0;
  /// In-sample one-step errors (see residuals()).
  std::vector<double> residuals_;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_EGRV_MODEL_H_
