#ifndef MIRABEL_FORECASTING_FLEX_OFFER_FORECASTER_H_
#define MIRABEL_FORECASTING_FLEX_OFFER_FORECASTER_H_

#include <vector>

#include "common/result.h"
#include "flexoffer/flex_offer.h"
#include "forecasting/estimator.h"
#include "forecasting/hwt_model.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// Forecasting of flex-offers (paper §5): "Flex-offers can be viewed as
/// multi-variate time series that consists of a vector of observations (e.g.,
/// min power, max power) per time slice. To forecast flex-offers, we
/// decompose this multi-variate time series into a set of univariate time
/// series and apply our already defined forecast model types to the
/// individual time series."
///
/// BuildSeries() lays historical flex-offers onto the slice grid at their
/// earliest start and accumulates two aligned univariate series — summed
/// minimum and summed maximum energy per slice. Train() fits one HWT model
/// per component; Forecast() recombines the component forecasts into expected
/// per-slice energy bands for the next horizon.
class FlexOfferForecaster {
 public:
  /// `seasonal_periods` in slices (default: daily cycle at 15-min slices).
  explicit FlexOfferForecaster(std::vector<int> seasonal_periods = {96});

  /// Decomposes offers into the (min, max) energy-per-slice series over
  /// [from, to). Offers are anchored at their earliest start; energy falling
  /// outside the window is clipped.
  static std::pair<TimeSeries, TimeSeries> BuildSeries(
      const std::vector<flexoffer::FlexOffer>& offers,
      flexoffer::TimeSlice from, flexoffer::TimeSlice to);

  /// Trains the two component models on historical offers in [from, to).
  Status Train(const std::vector<flexoffer::FlexOffer>& offers,
               flexoffer::TimeSlice from, flexoffer::TimeSlice to,
               const EstimatorOptions& estimation = EstimatorOptions{0.2, 0, 5});

  /// Forecasts per-slice [min, max] energy bands for the next `horizon`
  /// slices after the training window. Bands are sanitised so min <= max.
  Result<std::vector<flexoffer::EnergyRange>> Forecast(int horizon) const;

 private:
  std::vector<int> seasonal_periods_;
  HwtModel min_model_;
  HwtModel max_model_;
  bool trained_ = false;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_FLEX_OFFER_FORECASTER_H_
