#include "forecasting/context_repository.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace mirabel::forecasting {

Status ContextRepository::Store(std::vector<double> context,
                                std::vector<double> params, double score) {
  if (!entries_.empty() && context.size() != entries_.front().context.size()) {
    return Status::InvalidArgument("context dimensionality mismatch");
  }
  entries_.push_back({std::move(context), std::move(params), score});
  return Status::OK();
}

Result<size_t> ContextRepository::NearestIndex(
    const std::vector<double>& context) const {
  if (entries_.empty()) return Status::NotFound("repository is empty");
  if (context.size() != entries_.front().context.size()) {
    return Status::InvalidArgument("context dimensionality mismatch");
  }
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries_.size(); ++i) {
    double d = 0.0;
    for (size_t j = 0; j < context.size(); ++j) {
      double diff = context[j] - entries_[i].context[j];
      d += diff * diff;
    }
    bool better = d < best_dist - 1e-9 ||
                  (std::fabs(d - best_dist) <= 1e-9 &&
                   entries_[i].score < entries_[best].score);
    if (better) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

Result<std::vector<double>> ContextRepository::FindNearest(
    const std::vector<double>& context) const {
  MIRABEL_ASSIGN_OR_RETURN(size_t idx, NearestIndex(context));
  return entries_[idx].params;
}

Result<double> ContextRepository::NearestDistance(
    const std::vector<double>& context) const {
  MIRABEL_ASSIGN_OR_RETURN(size_t idx, NearestIndex(context));
  double d = 0.0;
  for (size_t j = 0; j < context.size(); ++j) {
    double diff = context[j] - entries_[idx].context[j];
    d += diff * diff;
  }
  return std::sqrt(d);
}

std::vector<double> MakeSeriesContext(const std::vector<double>& values,
                                      int periods_per_day) {
  size_t window = std::min(values.size(), static_cast<size_t>(periods_per_day));
  std::vector<double> day(values.end() - static_cast<ptrdiff_t>(window),
                          values.end());
  double day_of_week =
      static_cast<double>((values.size() / static_cast<size_t>(periods_per_day)) % 7);
  return {Mean(day), StdDev(day), day_of_week};
}

}  // namespace mirabel::forecasting
