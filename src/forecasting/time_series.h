#ifndef MIRABEL_FORECASTING_TIME_SERIES_H_
#define MIRABEL_FORECASTING_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mirabel::forecasting {

/// An equidistant univariate energy time series (demand or supply
/// measurements) with a known number of observations per day.
///
/// The forecasting component treats all series as equidistant; the
/// observation interval is implied by `periods_per_day` (48 = half-hourly,
/// 96 = 15-minute slices).
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Wraps `values` observed at `periods_per_day` points per day.
  TimeSeries(std::vector<double> values, int periods_per_day);

  const std::vector<double>& values() const { return values_; }
  int periods_per_day() const { return periods_per_day_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double at(size_t i) const { return values_[i]; }

  /// Appends a new measurement (online arrival).
  void Append(double value) { values_.push_back(value); }

  /// Returns the sub-series [from, from + count). OutOfRange on overflow.
  Result<TimeSeries> Slice(size_t from, size_t count) const;

  /// Splits into (head of `head_count` observations, remaining tail);
  /// used for train/holdout evaluation. OutOfRange if head_count > size().
  Result<std::pair<TimeSeries, TimeSeries>> Split(size_t head_count) const;

  /// Element-wise sum of two aligned series (used by hierarchical
  /// forecasting, where a parent's series is the sum of its children).
  /// InvalidArgument on length/period mismatch.
  static Result<TimeSeries> Sum(const TimeSeries& a, const TimeSeries& b);

 private:
  std::vector<double> values_;
  int periods_per_day_ = 48;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_TIME_SERIES_H_
