#include "forecasting/model_selection.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace mirabel::forecasting {

AutoForecaster::AutoForecaster() : AutoForecaster(Config()) {}

AutoForecaster::AutoForecaster(const Config& config)
    : config_(config),
      hwt_(config.seasonal_periods),
      egrv_(config.periods_per_day) {}

Status AutoForecaster::FitHwt(const TimeSeries& history) {
  RandomRestartNelderMeadEstimator estimator;
  Objective objective = [this, &history](const std::vector<double>& p) {
    Result<double> sse = hwt_.FitWithParams(history, p);
    return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
  };
  EstimationResult est =
      estimator.Estimate(objective, hwt_.Bounds(), config_.hwt_estimation);
  const std::vector<double> params =
      est.best_params.empty() ? hwt_.DefaultParams() : est.best_params;
  return hwt_.FitWithParams(history, params).status();
}

Status AutoForecaster::Train(const TimeSeries& history) {
  MIRABEL_RETURN_IF_ERROR(FitHwt(history));
  selected_ = SelectedModel::kHwt;
  egrv_smape_ = -1.0;
  hwt_smape_ = -1.0;
  trained_ = true;
  return Status::OK();
}

Status AutoForecaster::Train(const TimeSeries& history,
                             const ExogenousData& exog) {
  MIRABEL_RETURN_IF_ERROR(exog.CheckSize(history.size()));
  if (history.size() <= config_.holdout) {
    return Status::InvalidArgument("history shorter than holdout");
  }
  const size_t split = history.size() - config_.holdout;
  MIRABEL_ASSIGN_OR_RETURN(auto parts, history.Split(split));
  const TimeSeries& head = parts.first;
  const std::vector<double>& actual = parts.second.values();

  // Candidate A: EGRV on the head, judged on the holdout.
  ExogenousData head_exog;
  head_exog.temperature_c.assign(exog.temperature_c.begin(),
                                 exog.temperature_c.begin() + static_cast<ptrdiff_t>(split));
  head_exog.holiday.assign(exog.holiday.begin(),
                           exog.holiday.begin() + static_cast<ptrdiff_t>(split));
  std::vector<double> tail_temp(exog.temperature_c.begin() + static_cast<ptrdiff_t>(split),
                                exog.temperature_c.end());
  std::vector<bool> tail_holiday(exog.holiday.begin() + static_cast<ptrdiff_t>(split),
                                 exog.holiday.end());

  egrv_smape_ = std::numeric_limits<double>::infinity();
  EgrvModel egrv_candidate(config_.periods_per_day);
  Status egrv_fit =
      egrv_candidate.FitParallel(head, head_exog, config_.egrv_threads);
  if (egrv_fit.ok()) {
    Result<std::vector<double>> forecast = egrv_candidate.Forecast(
        static_cast<int>(config_.holdout), tail_temp, tail_holiday);
    if (forecast.ok()) {
      Result<double> smape = Smape(actual, *forecast);
      if (smape.ok()) egrv_smape_ = *smape;
    }
  }

  // Candidate B: HWT on the head.
  hwt_smape_ = std::numeric_limits<double>::infinity();
  HwtModel hwt_candidate(config_.seasonal_periods);
  {
    RandomRestartNelderMeadEstimator estimator;
    Objective objective = [&hwt_candidate,
                           &head](const std::vector<double>& p) {
      Result<double> sse = hwt_candidate.FitWithParams(head, p);
      return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
    };
    EstimationResult est = estimator.Estimate(objective, hwt_candidate.Bounds(),
                                              config_.hwt_estimation);
    const std::vector<double> params = est.best_params.empty()
                                           ? hwt_candidate.DefaultParams()
                                           : est.best_params;
    if (hwt_candidate.FitWithParams(head, params).ok()) {
      Result<std::vector<double>> forecast =
          hwt_candidate.Forecast(static_cast<int>(config_.holdout));
      if (forecast.ok()) {
        Result<double> smape = Smape(actual, *forecast);
        if (smape.ok()) hwt_smape_ = *smape;
      }
    }
  }

  if (!std::isfinite(egrv_smape_) && !std::isfinite(hwt_smape_)) {
    return Status::Internal("both candidate models failed to train");
  }

  // Selection + refit on the full history.
  if (egrv_smape_ <= hwt_smape_ * config_.accuracy_ratio) {
    selected_ = SelectedModel::kEgrv;
    MIRABEL_RETURN_IF_ERROR(
        egrv_.FitParallel(history, exog, config_.egrv_threads));
  } else {
    selected_ = SelectedModel::kHwt;
    MIRABEL_RETURN_IF_ERROR(FitHwt(history));
  }
  trained_ = true;
  return Status::OK();
}

Result<std::vector<double>> AutoForecaster::Forecast(
    int horizon, const std::vector<double>& future_temperature,
    const std::vector<bool>& future_holiday) const {
  if (!trained_) {
    return Status::FailedPrecondition("call Train() first");
  }
  if (selected_ == SelectedModel::kEgrv) {
    return egrv_.Forecast(horizon, future_temperature, future_holiday);
  }
  return hwt_.Forecast(horizon);
}

Result<SelectedModel> AutoForecaster::selected() const {
  if (!trained_) {
    return Status::FailedPrecondition("call Train() first");
  }
  return selected_;
}

}  // namespace mirabel::forecasting
