#include "forecasting/egrv_model.h"

#include <atomic>
#include <thread>

#include "common/matrix.h"
#include "forecasting/residual_sampling.h"

namespace mirabel::forecasting {

Status ExogenousData::CheckSize(size_t expected) const {
  if (temperature_c.size() != expected || holiday.size() != expected) {
    return Status::InvalidArgument("exogenous data size mismatch");
  }
  return Status::OK();
}

EgrvModel::EgrvModel(int periods_per_day)
    : periods_per_day_(periods_per_day),
      coefficients_(static_cast<size_t>(periods_per_day)) {}

std::vector<double> EgrvModel::MakeRow(const std::vector<double>& values,
                                       double temperature, bool holiday,
                                       size_t t) const {
  const size_t day_lag = static_cast<size_t>(periods_per_day_);
  const size_t week_lag = 7 * day_lag;
  size_t day = t / day_lag;
  bool weekend = (day % 7) >= 5;  // day 0 is a Monday
  double trend = static_cast<double>(t) / static_cast<double>(week_lag);
  return {1.0,
          values[t - day_lag],
          values[t - week_lag],
          temperature,
          temperature * temperature,
          holiday ? 1.0 : 0.0,
          weekend ? 1.0 : 0.0,
          trend};
}

Status EgrvModel::FitRange(const TimeSeries& series, const ExogenousData& exog,
                           int begin, int end) {
  const std::vector<double>& y = series.values();
  const size_t week_lag = 7 * static_cast<size_t>(periods_per_day_);
  for (int p = begin; p < end; ++p) {
    // Horizontal partition: observations of intra-day period p with full lags.
    std::vector<size_t> rows;
    for (size_t t = week_lag + static_cast<size_t>(p); t < y.size();
         t += static_cast<size_t>(periods_per_day_)) {
      rows.push_back(t);
    }
    if (rows.size() < static_cast<size_t>(kNumRegressors)) {
      return Status::InvalidArgument(
          "not enough observations for intra-day period " + std::to_string(p));
    }
    Matrix x(rows.size(), kNumRegressors);
    std::vector<double> target(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      size_t t = rows[r];
      std::vector<double> reg =
          MakeRow(y, exog.temperature_c[t], exog.holiday[t], t);
      for (int c = 0; c < kNumRegressors; ++c) {
        x.At(r, static_cast<size_t>(c)) = reg[static_cast<size_t>(c)];
      }
      target[r] = y[t];
    }
    MIRABEL_ASSIGN_OR_RETURN(std::vector<double> beta,
                             SolveLeastSquares(x, target));
    coefficients_[static_cast<size_t>(p)] = std::move(beta);
  }
  return Status::OK();
}

Status EgrvModel::Fit(const TimeSeries& series, const ExogenousData& exog) {
  return FitParallel(series, exog, 1);
}

Status EgrvModel::FitParallel(const TimeSeries& series,
                              const ExogenousData& exog, int num_threads) {
  MIRABEL_RETURN_IF_ERROR(exog.CheckSize(series.size()));
  const size_t week_lag = 7 * static_cast<size_t>(periods_per_day_);
  if (series.size() < 2 * week_lag) {
    return Status::InvalidArgument("EGRV requires at least 14 days of data");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }

  if (num_threads == 1) {
    MIRABEL_RETURN_IF_ERROR(FitRange(series, exog, 0, periods_per_day_));
  } else {
    int workers = std::min(num_threads, periods_per_day_);
    std::vector<Status> statuses(static_cast<size_t>(workers), Status::OK());
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    int per_worker = (periods_per_day_ + workers - 1) / workers;
    for (int w = 0; w < workers; ++w) {
      int begin = w * per_worker;
      int end = std::min(periods_per_day_, begin + per_worker);
      threads.emplace_back([this, &series, &exog, begin, end, w, &statuses] {
        statuses[static_cast<size_t>(w)] = FitRange(series, exog, begin, end);
      });
    }
    for (auto& t : threads) t.join();
    for (const Status& st : statuses) {
      MIRABEL_RETURN_IF_ERROR(st);
    }
  }

  // Keep the last week of observations for lagged regressors at forecast time.
  const std::vector<double>& y = series.values();
  history_tail_.assign(y.end() - static_cast<ptrdiff_t>(week_lag), y.end());
  train_size_ = y.size();

  // Record in-sample one-step errors in a serial pass over the series so the
  // residual pool is deterministic and independent of the fit thread count.
  residuals_.clear();
  residuals_.reserve(y.size() - week_lag);
  for (size_t t = week_lag; t < y.size(); ++t) {
    int p = static_cast<int>(t % static_cast<size_t>(periods_per_day_));
    std::vector<double> reg =
        MakeRow(y, exog.temperature_c[t], exog.holiday[t], t);
    const std::vector<double>& beta = coefficients_[static_cast<size_t>(p)];
    double predicted = 0.0;
    for (int c = 0; c < kNumRegressors; ++c) {
      predicted += beta[static_cast<size_t>(c)] * reg[static_cast<size_t>(c)];
    }
    residuals_.push_back(y[t] - predicted);
  }
  fitted_ = true;
  return Status::OK();
}

Status EgrvModel::SampleResiduals(Rng* rng, std::span<double> out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  return SampleCenteredResiduals(residuals_, rng, out);
}

Result<std::vector<double>> EgrvModel::Forecast(
    int horizon, const std::vector<double>& future_temperature,
    const std::vector<bool>& future_holiday) const {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  if (future_temperature.size() < static_cast<size_t>(horizon) ||
      future_holiday.size() < static_cast<size_t>(horizon)) {
    return Status::InvalidArgument(
        "need exogenous data for the whole forecast window");
  }

  const size_t week_lag = 7 * static_cast<size_t>(periods_per_day_);
  // `extended` holds one week of history followed by the forecasts; global
  // index (train_size_ - week_lag + i) maps to extended[i].
  std::vector<double> extended = history_tail_;
  extended.reserve(week_lag + static_cast<size_t>(horizon));

  std::vector<double> out;
  out.reserve(static_cast<size_t>(horizon));
  for (int h = 0; h < horizon; ++h) {
    size_t t = train_size_ + static_cast<size_t>(h);
    int p = static_cast<int>(t % static_cast<size_t>(periods_per_day_));
    // MakeRow indexes `values[t - lag]`; shift into the `extended` frame.
    size_t offset = train_size_ - week_lag;
    size_t local_t = t - offset;
    std::vector<double> reg =
        MakeRow(extended, future_temperature[static_cast<size_t>(h)],
                future_holiday[static_cast<size_t>(h)], local_t);
    // MakeRow's trend/weekend derive day from the local index; recompute from
    // the global index for correctness.
    size_t day = t / static_cast<size_t>(periods_per_day_);
    reg[6] = (day % 7) >= 5 ? 1.0 : 0.0;
    reg[7] = static_cast<double>(t) / static_cast<double>(week_lag);

    const std::vector<double>& beta = coefficients_[static_cast<size_t>(p)];
    double value = 0.0;
    for (int c = 0; c < kNumRegressors; ++c) {
      value += beta[static_cast<size_t>(c)] * reg[static_cast<size_t>(c)];
    }
    out.push_back(value);
    extended.push_back(value);
  }
  return out;
}

Result<std::vector<double>> EgrvModel::Coefficients(int period) const {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  if (period < 0 || period >= periods_per_day_) {
    return Status::OutOfRange("period outside [0, periods_per_day)");
  }
  return coefficients_[static_cast<size_t>(period)];
}

}  // namespace mirabel::forecasting
