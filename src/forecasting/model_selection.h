#ifndef MIRABEL_FORECASTING_MODEL_SELECTION_H_
#define MIRABEL_FORECASTING_MODEL_SELECTION_H_

#include <string>

#include "forecasting/egrv_model.h"
#include "forecasting/estimator.h"
#include "forecasting/hwt_model.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// Which model an AutoForecaster ended up using.
enum class SelectedModel { kEgrv, kHwt };

/// Transparent model creation with fallback (paper §5): "we apply the
/// [EGRV] Model and the [HWT] Model. ... If the EGRV model does not provide
/// accurate results, we fall back to the alternative (more robust)
/// HWT-Model."
///
/// Train() fits both candidates on the head of the history, compares their
/// SMAPE on a holdout window, and keeps EGRV only when it beats the HWT
/// accuracy threshold ratio; otherwise HWT wins. The selected model is then
/// refit on the full history. EGRV additionally requires exogenous data —
/// without it the selector goes straight to HWT.
class AutoForecaster {
 public:
  struct Config {
    int periods_per_day = 48;
    /// HWT seasonal periods.
    std::vector<int> seasonal_periods = {48, 336};
    /// Holdout window (observations) for the model comparison.
    size_t holdout = 48;
    /// EGRV is kept when egrv_smape <= hwt_smape * accuracy_ratio.
    double accuracy_ratio = 1.0;
    /// Budget for the HWT parameter estimation.
    EstimatorOptions hwt_estimation{0.2, 0, 9};
    /// Threads for parallelized EGRV model creation.
    int egrv_threads = 1;
  };

  AutoForecaster();
  explicit AutoForecaster(const Config& config);

  /// Trains with exogenous data available: both models compete.
  /// `exog` must align with `history`.
  Status Train(const TimeSeries& history, const ExogenousData& exog);

  /// Trains without exogenous data: HWT only.
  Status Train(const TimeSeries& history);

  /// Forecasts `horizon` observations past the training data. When the
  /// selected model is EGRV, future exogenous values must be supplied;
  /// with HWT they are ignored (may be empty).
  Result<std::vector<double>> Forecast(
      int horizon, const std::vector<double>& future_temperature = {},
      const std::vector<bool>& future_holiday = {}) const;

  /// FailedPrecondition before Train().
  Result<SelectedModel> selected() const;

  /// Holdout SMAPEs of the candidates from the last Train() with exogenous
  /// data ({-1, -1} when HWT-only training was used).
  double egrv_holdout_smape() const { return egrv_smape_; }
  double hwt_holdout_smape() const { return hwt_smape_; }

 private:
  Status FitHwt(const TimeSeries& history);

  Config config_;
  bool trained_ = false;
  SelectedModel selected_ = SelectedModel::kHwt;
  HwtModel hwt_;
  EgrvModel egrv_;
  double egrv_smape_ = -1.0;
  double hwt_smape_ = -1.0;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_MODEL_SELECTION_H_
