#include "forecasting/residual_sampling.h"

namespace mirabel::forecasting {

Status SampleCenteredResiduals(std::span<const double> pool, Rng* rng,
                               std::span<double> out) {
  if (pool.empty()) {
    return Status::FailedPrecondition(
        "residual pool is empty (model not fitted?)");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must be non-null");
  }
  double mean = 0.0;
  for (double r : pool) mean += r;
  mean /= static_cast<double>(pool.size());
  for (double& v : out) {
    v = pool[rng->Index(pool.size())] - mean;
  }
  return Status::OK();
}

}  // namespace mirabel::forecasting
