#include "forecasting/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace mirabel::forecasting {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Wraps the raw objective with budget accounting, best-so-far tracking and
/// the error-development trace shared by all estimators.
class BudgetedObjective {
 public:
  BudgetedObjective(const Objective& objective, const EstimatorOptions& options)
      : objective_(objective), options_(options) {}

  /// Evaluates `x`; returns +inf when the budget is already exhausted.
  double operator()(const std::vector<double>& x) {
    if (Exhausted()) return kInf;
    double v = objective_(x);
    if (!std::isfinite(v)) v = kInf;
    ++evals_;
    if (v < best_value_) {
      best_value_ = v;
      best_params_ = x;
      trace_.push_back({watch_.ElapsedSeconds(), v, evals_, x});
    }
    return v;
  }

  bool Exhausted() const {
    if (options_.max_evals > 0 && evals_ >= options_.max_evals) return true;
    if (options_.time_budget_s > 0 &&
        watch_.ElapsedSeconds() >= options_.time_budget_s) {
      return true;
    }
    return false;
  }

  EstimationResult Finish() const {
    EstimationResult r;
    r.best_params = best_params_;
    r.best_value = best_value_;
    r.evals = evals_;
    r.trace = trace_;
    return r;
  }

 private:
  const Objective& objective_;
  EstimatorOptions options_;
  Stopwatch watch_;
  int evals_ = 0;
  double best_value_ = kInf;
  std::vector<double> best_params_;
  std::vector<TracePoint> trace_;
};

std::vector<double> BoundsCentre(const std::vector<ParamBound>& bounds) {
  std::vector<double> x(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    x[i] = 0.5 * (bounds[i].lo + bounds[i].hi);
  }
  return x;
}

std::vector<double> RandomPoint(const std::vector<ParamBound>& bounds,
                                Rng* rng) {
  std::vector<double> x(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    x[i] = rng->Uniform(bounds[i].lo, bounds[i].hi);
  }
  return x;
}

void ClampToBounds(const std::vector<ParamBound>& bounds,
                   std::vector<double>* x) {
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::min(bounds[i].hi, std::max(bounds[i].lo, (*x)[i]));
  }
}

/// One Nelder-Mead run from `start`; stops on budget exhaustion or simplex
/// collapse. Standard coefficients (reflect 1, expand 2, contract 0.5,
/// shrink 0.5).
void NelderMeadRun(BudgetedObjective* obj,
                   const std::vector<ParamBound>& bounds,
                   const std::vector<double>& start) {
  const size_t n = bounds.size();
  struct Vertex {
    std::vector<double> x;
    double f = kInf;
  };
  std::vector<Vertex> simplex(n + 1);
  simplex[0].x = start;
  ClampToBounds(bounds, &simplex[0].x);
  simplex[0].f = (*obj)(simplex[0].x);
  for (size_t i = 0; i < n; ++i) {
    simplex[i + 1].x = simplex[0].x;
    double width = bounds[i].hi - bounds[i].lo;
    simplex[i + 1].x[i] += 0.1 * width;
    ClampToBounds(bounds, &simplex[i + 1].x);
    simplex[i + 1].f = (*obj)(simplex[i + 1].x);
  }

  auto by_value = [](const Vertex& a, const Vertex& b) { return a.f < b.f; };
  for (int iter = 0; iter < 10000 && !obj->Exhausted(); ++iter) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    // Convergence: simplex collapsed in objective value.
    if (std::isfinite(simplex[0].f) && std::isfinite(simplex[n].f) &&
        simplex[n].f - simplex[0].f <
            1e-10 * (1.0 + std::fabs(simplex[0].f))) {
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t d = 0; d < n; ++d) centroid[d] += simplex[i].x[d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + coeff * (centroid[d] - simplex[n].x[d]);
      }
      ClampToBounds(bounds, &x);
      return x;
    };

    std::vector<double> reflected = blend(1.0);
    double fr = (*obj)(reflected);
    if (fr < simplex[0].f) {
      std::vector<double> expanded = blend(2.0);
      double fe = (*obj)(expanded);
      if (fe < fr) {
        simplex[n] = {std::move(expanded), fe};
      } else {
        simplex[n] = {std::move(reflected), fr};
      }
      continue;
    }
    if (fr < simplex[n - 1].f) {
      simplex[n] = {std::move(reflected), fr};
      continue;
    }
    std::vector<double> contracted = blend(-0.5);
    double fc = (*obj)(contracted);
    if (fc < simplex[n].f) {
      simplex[n] = {std::move(contracted), fc};
      continue;
    }
    // Shrink towards the best vertex.
    for (size_t i = 1; i <= n; ++i) {
      for (size_t d = 0; d < n; ++d) {
        simplex[i].x[d] = simplex[0].x[d] + 0.5 * (simplex[i].x[d] - simplex[0].x[d]);
      }
      simplex[i].f = (*obj)(simplex[i].x);
      if (obj->Exhausted()) return;
    }
  }
}

}  // namespace

NelderMeadEstimator::NelderMeadEstimator(std::vector<double> start)
    : start_(std::move(start)) {}

EstimationResult NelderMeadEstimator::Estimate(
    const Objective& objective, const std::vector<ParamBound>& bounds,
    const EstimatorOptions& options) {
  BudgetedObjective obj(objective, options);
  std::vector<double> start =
      start_.size() == bounds.size() ? start_ : BoundsCentre(bounds);
  NelderMeadRun(&obj, bounds, start);
  return obj.Finish();
}

EstimationResult RandomRestartNelderMeadEstimator::Estimate(
    const Objective& objective, const std::vector<ParamBound>& bounds,
    const EstimatorOptions& options) {
  BudgetedObjective obj(objective, options);
  Rng rng(options.seed);
  // First restart from the centre (a decent prior for smoothing constants),
  // then from uniform random points until the budget runs out.
  NelderMeadRun(&obj, bounds, BoundsCentre(bounds));
  while (!obj.Exhausted()) {
    NelderMeadRun(&obj, bounds, RandomPoint(bounds, &rng));
  }
  return obj.Finish();
}

SimulatedAnnealingEstimator::SimulatedAnnealingEstimator()
    : SimulatedAnnealingEstimator(Config()) {}

SimulatedAnnealingEstimator::SimulatedAnnealingEstimator(const Config& config)
    : config_(config) {}

EstimationResult SimulatedAnnealingEstimator::Estimate(
    const Objective& objective, const std::vector<ParamBound>& bounds,
    const EstimatorOptions& options) {
  BudgetedObjective obj(objective, options);
  Rng rng(options.seed);

  std::vector<double> current = BoundsCentre(bounds);
  double f_current = obj(current);
  // Normalise acceptance by the initial objective magnitude so the default
  // temperature schedule works across differently scaled SSE values.
  double scale = std::isfinite(f_current) && f_current > 0 ? f_current : 1.0;
  double temperature = config_.initial_temperature;

  while (!obj.Exhausted()) {
    std::vector<double> candidate = current;
    for (size_t i = 0; i < candidate.size(); ++i) {
      double width = bounds[i].hi - bounds[i].lo;
      candidate[i] += rng.Gaussian(0.0, config_.step_scale * width *
                                            std::max(temperature, 0.05));
      // Reflect at the box boundary to stay inside.
      if (candidate[i] < bounds[i].lo) {
        candidate[i] = bounds[i].lo + (bounds[i].lo - candidate[i]);
      }
      if (candidate[i] > bounds[i].hi) {
        candidate[i] = bounds[i].hi - (candidate[i] - bounds[i].hi);
      }
    }
    ClampToBounds(bounds, &candidate);
    double f_candidate = obj(candidate);

    double delta = (f_candidate - f_current) / scale;
    if (delta <= 0.0 ||
        rng.NextDouble() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current = std::move(candidate);
      f_current = f_candidate;
    }
    temperature *= config_.cooling;
    if (temperature < 1e-6) temperature = config_.initial_temperature;  // reheat
  }
  return obj.Finish();
}

EstimationResult RandomSearchEstimator::Estimate(
    const Objective& objective, const std::vector<ParamBound>& bounds,
    const EstimatorOptions& options) {
  BudgetedObjective obj(objective, options);
  Rng rng(options.seed);
  while (!obj.Exhausted()) {
    obj(RandomPoint(bounds, &rng));
  }
  return obj.Finish();
}

std::unique_ptr<ParameterEstimator> MakeEstimator(const std::string& name) {
  if (name == "NelderMead") return std::make_unique<NelderMeadEstimator>();
  if (name == "RandomRestartNelderMead") {
    return std::make_unique<RandomRestartNelderMeadEstimator>();
  }
  if (name == "SimulatedAnnealing") {
    return std::make_unique<SimulatedAnnealingEstimator>();
  }
  if (name == "RandomSearch") return std::make_unique<RandomSearchEstimator>();
  return nullptr;
}

}  // namespace mirabel::forecasting
