#ifndef MIRABEL_FORECASTING_HIERARCHICAL_ADVISOR_H_
#define MIRABEL_FORECASTING_HIERARCHICAL_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "forecasting/estimator.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// One node of the energy-market hierarchy handed to the advisor. Leaves
/// carry measured series; inner nodes' series are the sums of their subtrees
/// (computed by the advisor).
struct HierarchyNode {
  std::string name;
  /// Indices of the children in the node vector; empty for leaves.
  std::vector<size_t> children;
  /// Leaf series; ignored (recomputed) for inner nodes.
  TimeSeries series;
};

/// Where an inner node's forecasts come from.
enum class ModelPlacement {
  /// The node estimates and maintains its own forecast model.
  kOwnModel,
  /// The node aggregates its children's forecast values ("forecast models
  /// can be used to aggregate ... forecast values without the need for
  /// individual models at each system node", paper §5).
  kAggregateChildren,
};

/// Constraints and budgets of the advisor run.
struct AdvisorOptions {
  /// Accuracy constraint: maximum holdout SMAPE allowed per inner node.
  double max_smape = 0.05;
  /// Observations held out for accuracy evaluation.
  size_t holdout = 48;
  /// Seasonal periods of the candidate HWT models.
  std::vector<int> seasonal_periods = {48};
  /// Estimation budget per candidate model.
  EstimatorOptions estimation{0.05, 200, 3};
};

/// The advisor's decision for one hierarchy.
struct AdvisorResult {
  /// Placement per node (leaves are always kOwnModel).
  std::vector<ModelPlacement> placement;
  /// Holdout SMAPE per node under the chosen placement.
  std::vector<double> node_smape;
  /// Number of models that must be created and maintained.
  int models_used = 0;
};

/// Offline design tuning for hierarchies of forecast models (paper §5, [5]):
/// "an advisor component that computes for a given hierarchical structure a
/// configuration of forecast models according to specified accuracy and
/// runtime constraints."
///
/// Strategy (greedy, bottom-up): every leaf gets its own model. For each
/// inner node the advisor compares the holdout SMAPE of (a) summing the
/// children's forecasts against (b) an own model on the node's aggregate
/// series, and picks (a) — which costs no extra model — whenever it meets
/// the accuracy constraint; otherwise (b).
class HierarchicalForecastAdvisor {
 public:
  /// `nodes[0]` must be the root; children indices must be > parent index
  /// (topological order). InvalidArgument otherwise or when leaf series are
  /// too short / misaligned.
  Result<AdvisorResult> Advise(const std::vector<HierarchyNode>& nodes,
                               const AdvisorOptions& options) const;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_HIERARCHICAL_ADVISOR_H_
