#ifndef MIRABEL_FORECASTING_RESIDUAL_SAMPLING_H_
#define MIRABEL_FORECASTING_RESIDUAL_SAMPLING_H_

#include <span>

#include "common/rng.h"
#include "common/status.h"

namespace mirabel::forecasting {

/// Fills `out` with independent bootstrap draws from the centered empirical
/// distribution of `pool`: each draw is `pool[i] - mean(pool)` for a
/// uniformly random index i from the caller's generator. This is the shared
/// implementation of the models' residual-sampling hooks (HwtModel::
/// SampleResiduals, EgrvModel::SampleResiduals): drawing from *centered*
/// in-sample forecast errors yields zero-mean per-slice error scenarios, the
/// raw material of scheduling::ScenarioEnsemble::FromResidualPool.
///
/// Deterministic in the generator state; the pool is read-only
/// (FailedPrecondition when it is empty). Performs no allocations.
Status SampleCenteredResiduals(std::span<const double> pool, Rng* rng,
                               std::span<double> out);

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_RESIDUAL_SAMPLING_H_
