#ifndef MIRABEL_FORECASTING_FORECASTER_H_
#define MIRABEL_FORECASTING_FORECASTER_H_

#include <deque>
#include <memory>
#include <string>

#include "forecasting/context_repository.h"
#include "forecasting/estimator.h"
#include "forecasting/hwt_model.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// When to re-estimate model parameters (paper §5: "we offer different model
/// evaluation strategies (e.g., time- or threshold-based)").
enum class EvaluationStrategy {
  /// Re-estimate every `reestimation_interval` observations.
  kTimeBased,
  /// Re-estimate when the rolling SMAPE exceeds `smape_threshold`.
  kThresholdBased,
};

/// Configuration of a maintained forecaster.
struct ForecasterConfig {
  /// Seasonal cycle lengths of the HWT model, in observations.
  std::vector<int> seasonal_periods = {48, 336};
  /// Estimator used for initial (from-scratch) parameter estimation.
  std::string estimator = "RandomRestartNelderMead";
  /// Budget of the initial estimation.
  EstimatorOptions initial_estimation{0.5, 0, 1};
  /// Budget of re-estimations during maintenance (warm-started, so cheaper).
  EstimatorOptions adaptation_estimation{0.1, 0, 2};

  EvaluationStrategy evaluation = EvaluationStrategy::kThresholdBased;
  /// kTimeBased: observations between re-estimations.
  int reestimation_interval = 336;
  /// kThresholdBased: rolling-SMAPE trigger.
  double smape_threshold = 0.08;
  /// Rolling window (observations) for the SMAPE estimate.
  int evaluation_window = 48;
};

/// The forecasting component's per-series facade: transparent model creation
/// and usage plus transparent model update and maintenance (paper §5's two
/// main components).
///
/// Train() estimates HWT parameters from scratch with the configured global
/// estimator. AddMeasurement() performs the cheap per-value model update and,
/// according to the evaluation strategy, triggers parameter re-estimation.
/// Re-estimation is warm-started from the current parameters and — when a
/// ContextRepository is attached — from the parameters of the most similar
/// past context (context-aware model adaptation).
class Forecaster {
 public:
  explicit Forecaster(const ForecasterConfig& config);

  /// Attaches a (shared) context repository; may be nullptr to detach.
  /// The repository must outlive the forecaster.
  void AttachContextRepository(ContextRepository* repository);

  /// Estimates parameters on `history` and fits the model.
  /// InvalidArgument when the history is shorter than two longest cycles.
  Status Train(const TimeSeries& history);

  /// Appends a measurement: O(1) model update plus, when the evaluation
  /// strategy fires, a budgeted re-estimation. FailedPrecondition before
  /// Train().
  Status AddMeasurement(double value);

  /// Forecasts the next `horizon` observations.
  Result<std::vector<double>> Forecast(int horizon) const;

  /// Rolling SMAPE over the last `evaluation_window` one-step forecasts
  /// (0 until enough measurements arrived).
  double RollingSmape() const;

  /// Number of parameter re-estimations triggered by maintenance.
  int reestimation_count() const { return reestimation_count_; }

  const HwtModel& model() const { return model_; }
  const ForecasterConfig& config() const { return config_; }

 private:
  /// Re-estimates parameters warm-started from current params and, when
  /// available, a context-repository hit.
  Status Reestimate();

  ForecasterConfig config_;
  HwtModel model_;
  TimeSeries history_;
  ContextRepository* repository_ = nullptr;

  std::deque<double> window_errors_;  // |f - a| / ((|a|+|f|)/2) terms
  int observations_since_estimation_ = 0;
  int reestimation_count_ = 0;
  bool trained_ = false;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_FORECASTER_H_
