#include "forecasting/hwt_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "forecasting/residual_sampling.h"

namespace mirabel::forecasting {

HwtModel::HwtModel(std::vector<int> seasonal_periods)
    : seasonal_periods_(std::move(seasonal_periods)) {
  std::sort(seasonal_periods_.begin(), seasonal_periods_.end());
}

std::vector<ParamBound> HwtModel::Bounds() const {
  std::vector<ParamBound> bounds(NumParams(), ParamBound{0.0, 1.0});
  bounds.back() = ParamBound{0.0, 0.99};  // phi
  return bounds;
}

std::vector<double> HwtModel::DefaultParams() const {
  std::vector<double> p(NumParams(), 0.15);
  p.front() = 0.1;   // alpha
  p.back() = 0.7;    // phi
  return p;
}

double HwtModel::SeasonalAt(int ahead) const {
  double acc = 0.0;
  for (size_t i = 0; i < seasons_.size(); ++i) {
    int m = seasonal_periods_[i];
    // Index that was in effect m steps before time t_ + ahead.
    int64_t pos = (t_ + ahead) % m;
    acc += seasons_[i][static_cast<size_t>(pos)];
  }
  return acc;
}

Result<double> HwtModel::FitWithParams(const TimeSeries& series,
                                       const std::vector<double>& params) {
  if (params.size() != NumParams()) {
    return Status::InvalidArgument("expected " + std::to_string(NumParams()) +
                                   " parameters");
  }
  if (seasonal_periods_.empty()) {
    return Status::FailedPrecondition("no seasonal periods configured");
  }
  int max_period = seasonal_periods_.back();
  if (series.size() < 2 * static_cast<size_t>(max_period)) {
    return Status::InvalidArgument(
        "series shorter than two of the longest seasonal cycles");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!std::isfinite(params[i]) || params[i] < 0.0 || params[i] > 1.0) {
      return Status::OutOfRange("parameter " + std::to_string(i) +
                                " outside [0, 1]");
    }
  }

  params_ = params;
  const double alpha = params_[0];
  const double phi = params_.back();
  const std::vector<double>& y = series.values();

  // ---- State initialisation from the first cycles -------------------------
  level_ = 0.0;
  for (int j = 0; j < max_period; ++j) level_ += y[static_cast<size_t>(j)];
  level_ /= max_period;

  // The detrend/count scratch lives in member buffers: estimators call
  // FitWithParams once per candidate parameter vector, so after the first
  // call every assign() below runs within existing capacity.
  std::vector<double>& residual = fit_residual_buf_;
  residual.assign(y.begin(), y.begin() + 2 * static_cast<size_t>(max_period));
  for (double& r : residual) r -= level_;
  seasons_.resize(seasonal_periods_.size());
  for (size_t i = 0; i < seasonal_periods_.size(); ++i) {
    int m = seasonal_periods_[i];
    std::vector<double>& idx = seasons_[i];
    idx.assign(static_cast<size_t>(m), 0.0);
    fit_count_buf_.assign(static_cast<size_t>(m), 0);
    for (size_t j = 0; j < residual.size(); ++j) {
      idx[j % static_cast<size_t>(m)] += residual[j];
      fit_count_buf_[j % static_cast<size_t>(m)] += 1;
    }
    for (size_t p = 0; p < idx.size(); ++p) {
      idx[p] = fit_count_buf_[p] > 0 ? idx[p] / fit_count_buf_[p] : 0.0;
    }
    // Zero-mean the indices so they do not absorb the level.
    double mean = Mean(idx);
    for (double& v : idx) v -= mean;
    // Remove this season's contribution before fitting the next one.
    for (size_t j = 0; j < residual.size(); ++j) {
      residual[j] -= idx[j % static_cast<size_t>(m)];
    }
  }

  // ---- Smoothing recursions over the series --------------------------------
  t_ = 0;
  last_error_ = 0.0;
  double sse = 0.0;
  size_t warmup = static_cast<size_t>(max_period);
  residuals_.clear();
  residuals_.reserve(y.size() - warmup);
  for (size_t j = 0; j < y.size(); ++j) {
    double forecast = level_ + SeasonalAt(0) + phi * last_error_;
    double e = y[j] - forecast;
    if (j >= warmup) {
      sse += e * e;
      residuals_.push_back(e);
    }
    level_ += alpha * e;
    for (size_t i = 0; i < seasons_.size(); ++i) {
      double gamma = params_[1 + i];
      int m = seasonal_periods_[i];
      seasons_[i][static_cast<size_t>(t_ % m)] += gamma * e;
    }
    last_error_ = e;
    ++t_;
  }
  fitted_ = true;
  if (!std::isfinite(sse)) {
    return Status::Internal("smoothing diverged (non-finite SSE)");
  }
  return sse;
}

Status HwtModel::SampleResiduals(Rng* rng, std::span<double> out) const {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  return SampleCenteredResiduals(residuals_, rng, out);
}

Status HwtModel::Update(double value) {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  const double alpha = params_[0];
  const double phi = params_.back();
  double forecast = level_ + SeasonalAt(0) + phi * last_error_;
  double e = value - forecast;
  level_ += alpha * e;
  for (size_t i = 0; i < seasons_.size(); ++i) {
    double gamma = params_[1 + i];
    int m = seasonal_periods_[i];
    seasons_[i][static_cast<size_t>(t_ % m)] += gamma * e;
  }
  last_error_ = e;
  ++t_;
  return Status::OK();
}

Result<std::vector<double>> HwtModel::Forecast(int horizon) const {
  if (!fitted_) {
    return Status::FailedPrecondition("model has not been fitted");
  }
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  const double phi = params_.back();
  std::vector<double> out;
  out.reserve(static_cast<size_t>(horizon));
  double ar = last_error_;
  for (int h = 0; h < horizon; ++h) {
    ar *= phi;
    out.push_back(level_ + SeasonalAt(h) + ar);
  }
  return out;
}

}  // namespace mirabel::forecasting
