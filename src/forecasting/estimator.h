#ifndef MIRABEL_FORECASTING_ESTIMATOR_H_
#define MIRABEL_FORECASTING_ESTIMATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "forecasting/hwt_model.h"

namespace mirabel::forecasting {

/// Objective minimised by the parameter estimators; typically the in-sample
/// SSE returned by HwtModel::FitWithParams. Must tolerate any point inside
/// the bounds and return +inf for invalid evaluations.
using Objective = std::function<double(const std::vector<double>&)>;

/// Budget and seeding of one estimation run. Estimation stops when either
/// budget is exhausted (paper §5: "trade off between forecast accuracy and
/// runtime of parameter estimation").
struct EstimatorOptions {
  /// Wall-clock budget in seconds (<= 0: unlimited).
  double time_budget_s = 1.0;
  /// Max objective evaluations (<= 0: unlimited).
  int max_evals = 0;
  uint64_t seed = 1;
};

/// One point of the error-development trace (Fig. 4(a) plots best objective
/// value against elapsed estimation time).
struct TracePoint {
  double time_s = 0.0;
  double best_value = 0.0;
  int evals = 0;
  /// Parameter vector that achieved best_value (for post-hoc accuracy
  /// evaluation of the error-development curve).
  std::vector<double> params;
};

/// Outcome of an estimation run.
struct EstimationResult {
  std::vector<double> best_params;
  double best_value = 0.0;
  int evals = 0;
  /// Best-so-far improvements over time.
  std::vector<TracePoint> trace;
};

/// Interface of the global/local search algorithms used for initial
/// parameter estimation (paper §5: "we reuse existing well-established local
/// (e.g., Downhill-Simplex) and global (e.g., Simulated Annealing) parameter
/// estimators").
class ParameterEstimator {
 public:
  virtual ~ParameterEstimator() = default;
  virtual std::string Name() const = 0;

  /// Minimises `objective` inside `bounds`.
  virtual EstimationResult Estimate(const Objective& objective,
                                    const std::vector<ParamBound>& bounds,
                                    const EstimatorOptions& options) = 0;
};

/// Nelder-Mead downhill simplex [8], run once from a given start point.
/// Primarily a building block of RandomRestartNelderMead; also used for warm
/// restarts during model adaptation, where a good start point is known.
class NelderMeadEstimator : public ParameterEstimator {
 public:
  /// Uses the centre of the bounds as start when `start` is empty.
  explicit NelderMeadEstimator(std::vector<double> start = {});
  std::string Name() const override { return "NelderMead"; }
  EstimationResult Estimate(const Objective& objective,
                            const std::vector<ParamBound>& bounds,
                            const EstimatorOptions& options) override;

 private:
  std::vector<double> start_;
};

/// Random-Restart Nelder-Mead: repeated simplex runs from random start
/// points, keeping the best. The paper's forecasting experiment (Fig. 4(a))
/// found it "slightly beats" Simulated Annealing and Random Search, so it is
/// the default global estimator of the forecasting component.
class RandomRestartNelderMeadEstimator : public ParameterEstimator {
 public:
  std::string Name() const override { return "RandomRestartNelderMead"; }
  EstimationResult Estimate(const Objective& objective,
                            const std::vector<ParamBound>& bounds,
                            const EstimatorOptions& options) override;
};

/// Simulated Annealing [1] with geometric cooling and box-reflected Gaussian
/// moves.
class SimulatedAnnealingEstimator : public ParameterEstimator {
 public:
  struct Config {
    double initial_temperature = 1.0;
    double cooling = 0.995;
    /// Move scale relative to each parameter's bound width.
    double step_scale = 0.1;
  };
  SimulatedAnnealingEstimator();
  explicit SimulatedAnnealingEstimator(const Config& config);
  std::string Name() const override { return "SimulatedAnnealing"; }
  EstimationResult Estimate(const Objective& objective,
                            const std::vector<ParamBound>& bounds,
                            const EstimatorOptions& options) override;

 private:
  Config config_;
};

/// Uniform random sampling of the box; the weakest but assumption-free
/// baseline of Fig. 4(a).
class RandomSearchEstimator : public ParameterEstimator {
 public:
  std::string Name() const override { return "RandomSearch"; }
  EstimationResult Estimate(const Objective& objective,
                            const std::vector<ParamBound>& bounds,
                            const EstimatorOptions& options) override;
};

/// Convenience factory by name ("NelderMead", "RandomRestartNelderMead",
/// "SimulatedAnnealing", "RandomSearch"); returns nullptr for unknown names.
std::unique_ptr<ParameterEstimator> MakeEstimator(const std::string& name);

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_ESTIMATOR_H_
