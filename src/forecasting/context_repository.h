#ifndef MIRABEL_FORECASTING_CONTEXT_REPOSITORY_H_
#define MIRABEL_FORECASTING_CONTEXT_REPOSITORY_H_

#include <vector>

#include "common/result.h"

namespace mirabel::forecasting {

/// Case-based repository of previously estimated model parameters keyed by
/// the time-series context in which they were estimated (paper §5
/// "Context-Aware Model Adaptation", [2]).
///
/// A context descriptor is a small feature vector characterising the series
/// around estimation time (e.g. mean level, variability, weekday). When a
/// similar context reoccurs, the stored parameters are reused as warm start,
/// which "achieves a higher forecast accuracy in less time".
class ContextRepository {
 public:
  /// One stored case.
  struct Entry {
    std::vector<double> context;
    std::vector<double> params;
    /// Objective value (e.g. SSE or SMAPE) achieved with these params.
    double score = 0.0;
  };

  /// Stores a case. Contexts of differing dimensionality are rejected.
  Status Store(std::vector<double> context, std::vector<double> params,
               double score);

  /// Returns the parameters of the entry with the closest context (Euclidean
  /// distance); among near-ties (within 1e-9) prefers the better score.
  /// NotFound when empty; InvalidArgument on dimension mismatch.
  Result<std::vector<double>> FindNearest(
      const std::vector<double>& context) const;

  /// Distance of the closest stored context, for cache-hit heuristics.
  Result<double> NearestDistance(const std::vector<double>& context) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  Result<size_t> NearestIndex(const std::vector<double>& context) const;

  std::vector<Entry> entries_;
};

/// Builds the context descriptor used by the Forecaster: {mean of the last
/// day, stddev of the last day, day-of-week of the last observation}.
std::vector<double> MakeSeriesContext(const std::vector<double>& values,
                                      int periods_per_day);

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_CONTEXT_REPOSITORY_H_
