#ifndef MIRABEL_FORECASTING_HWT_MODEL_H_
#define MIRABEL_FORECASTING_HWT_MODEL_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "forecasting/time_series.h"

namespace mirabel::forecasting {

/// Box constraint of one model parameter.
struct ParamBound {
  double lo = 0.0;
  double hi = 1.0;
};

/// Taylor's multi-seasonal Holt-Winters exponential smoothing model (HWT)
/// with an AR(1) residual adjustment — "a energy specific adaptation of the
/// general purpose Holt-Winters exponential smoothing forecast model"
/// (paper §5, [12, 13]).
///
/// The model is additive with a smoothed level, one seasonal index array per
/// configured cycle (e.g. daily 48, weekly 336 and, for multi-year series,
/// annual), and a first-order autocorrelation adjustment of the residual:
///
///   one-step forecast: f_t = l_{t-1} + sum_i s_i[t - m_i] + phi * e_{t-1}
///   error:             e_t = y_t - f_t
///   level:             l_t = l_{t-1} + alpha * e_t
///   season i:          s_i[t] = s_i[t - m_i] + gamma_i * e_t
///
/// Parameters are (alpha, gamma_1..gamma_k, phi), all in [0, 1] except phi in
/// [0, 0.99]. FitWithParams() runs the recursions over a training series and
/// returns the in-sample one-step SSE, which the parameter estimators
/// (estimator.h) minimise.
class HwtModel {
 public:
  /// `seasonal_periods` lists the cycle lengths in observations, shortest
  /// first (e.g. {48, 336} for half-hourly data with daily + weekly cycles).
  /// The paper's "triple seasonality" adds the annual cycle; with the 8-week
  /// series of the experiments only two cycles are identifiable, which
  /// matches Taylor's double-seasonal variant.
  explicit HwtModel(std::vector<int> seasonal_periods);

  std::string Name() const { return "HWT"; }

  /// Number of free parameters: 1 (alpha) + #seasons (gammas) + 1 (phi).
  size_t NumParams() const { return 2 + seasonal_periods_.size(); }

  /// Box bounds for each parameter, in estimator order.
  std::vector<ParamBound> Bounds() const;

  /// A reasonable default parameter vector (alpha=0.1, gammas=0.15, phi=0.7).
  std::vector<double> DefaultParams() const;

  /// Initialises the seasonal state from the first cycles of `series`, runs
  /// the smoothing recursions over the whole series with `params`, stores the
  /// final state, and returns the in-sample sum of squared one-step errors.
  ///
  /// Requires series.size() >= 2 * max(seasonal_periods).
  Result<double> FitWithParams(const TimeSeries& series,
                               const std::vector<double>& params);

  /// Online maintenance (paper §5: "for each new time series value, we update
  /// our forecast models ... low additional costs"): advances the recursions
  /// by one observation. FailedPrecondition before the first fit.
  Status Update(double value);

  /// h-step-ahead forecasts from the current state:
  ///   f_{t+h} = l_t + sum_i s_i[t + h - m_i] + phi^h * e_t.
  /// FailedPrecondition before the first fit; InvalidArgument for h <= 0.
  Result<std::vector<double>> Forecast(int horizon) const;

  /// True once FitWithParams succeeded.
  bool fitted() const { return fitted_; }

  /// Post-warmup in-sample one-step errors of the last successful fit, in
  /// series order (the same errors whose squares form the returned SSE).
  /// Empty before the first fit. This is the empirical forecast-error pool
  /// the uncertainty layer bootstraps scenario perturbations from.
  const std::vector<double>& residuals() const { return residuals_; }

  /// Fills `out` with centered bootstrap draws from residuals() using the
  /// caller's generator (see SampleCenteredResiduals in
  /// residual_sampling.h). Const: sampling never perturbs the fitted state,
  /// so concurrent sampling and forecasting from one fitted model is safe.
  /// FailedPrecondition before the first fit.
  Status SampleResiduals(Rng* rng, std::span<double> out) const;

  const std::vector<double>& params() const { return params_; }
  const std::vector<int>& seasonal_periods() const {
    return seasonal_periods_;
  }

 private:
  /// Sum of the seasonal indices that apply `ahead` steps after now.
  double SeasonalAt(int ahead) const;

  std::vector<int> seasonal_periods_;
  std::vector<double> params_;  // alpha, gamma_i..., phi

  bool fitted_ = false;
  double level_ = 0.0;
  double last_error_ = 0.0;
  /// Ring buffers of seasonal indices; index [t mod m_i] is "now".
  std::vector<std::vector<double>> seasons_;
  /// Observations consumed so far (positions the ring buffers).
  int64_t t_ = 0;

  /// Post-warmup one-step errors of the last fit (see residuals()).
  std::vector<double> residuals_;

  /// Fit-time scratch, hoisted into members so refitting (the estimator
  /// calls FitWithParams once per candidate parameter vector) reuses
  /// capacity instead of reallocating the detrend/count arrays every call.
  std::vector<double> fit_residual_buf_;
  std::vector<int> fit_count_buf_;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_HWT_MODEL_H_
