#ifndef MIRABEL_FORECASTING_PUBSUB_H_
#define MIRABEL_FORECASTING_PUBSUB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "forecasting/forecaster.h"

namespace mirabel::forecasting {

/// Identifier of one forecast subscription.
using SubscriberId = uint64_t;

/// A publish/subscribe forecast query (paper §5): "the scheduling component
/// does not always need or even not want to have the most up-to-date forecast
/// values as every new forecast value triggers the computationally expensive
/// maintenance of schedules. Only if forecast values change significantly,
/// notifications are required."
struct ForecastSubscription {
  /// Forecast horizon (observations) the subscriber needs.
  int horizon = 48;
  /// Relative change that counts as significant: notify when
  /// max_h |new_h - old_h| / (|old_h| + eps) exceeds this.
  double change_threshold = 0.05;
};

/// Broker between one Forecaster and its subscribers (typically the
/// scheduling component). The broker's goal is to minimise the overall cost
/// of the subscriber: forecasts are recomputed once per measurement, but a
/// subscriber is only notified when its subscription's significance test
/// fires.
class ForecastBroker {
 public:
  using Callback = std::function<void(const std::vector<double>& forecast)>;

  /// `forecaster` must outlive the broker.
  explicit ForecastBroker(Forecaster* forecaster);

  /// Registers a continuous forecast query. The callback fires on the next
  /// OnMeasurement() (first notification is always significant) and then on
  /// every significant change.
  SubscriberId Subscribe(const ForecastSubscription& subscription,
                         Callback callback);

  /// Removes a subscription. NotFound for unknown ids.
  Status Unsubscribe(SubscriberId id);

  /// Feeds one new measurement through the forecaster, re-evaluates all
  /// subscriptions and notifies where significant.
  Status OnMeasurement(double value);

  /// Total callbacks fired.
  int64_t notifications_sent() const { return notifications_sent_; }
  /// Total subscription evaluations (callbacks fired + suppressed).
  int64_t evaluations() const { return evaluations_; }
  size_t num_subscribers() const { return subscribers_.size(); }

 private:
  struct Subscriber {
    ForecastSubscription subscription;
    Callback callback;
    std::vector<double> last_notified;
  };

  Forecaster* forecaster_;
  SubscriberId next_id_ = 1;
  std::map<SubscriberId, Subscriber> subscribers_;
  int64_t notifications_sent_ = 0;
  int64_t evaluations_ = 0;
};

}  // namespace mirabel::forecasting

#endif  // MIRABEL_FORECASTING_PUBSUB_H_
