#include "forecasting/forecaster.h"
#include <limits>

#include <cmath>

#include "common/math_util.h"

namespace mirabel::forecasting {

Forecaster::Forecaster(const ForecasterConfig& config)
    : config_(config), model_(config.seasonal_periods) {}

void Forecaster::AttachContextRepository(ContextRepository* repository) {
  repository_ = repository;
}

Status Forecaster::Train(const TimeSeries& history) {
  std::unique_ptr<ParameterEstimator> estimator =
      MakeEstimator(config_.estimator);
  if (estimator == nullptr) {
    return Status::InvalidArgument("unknown estimator: " + config_.estimator);
  }

  history_ = history;
  Objective objective = [this, &history](const std::vector<double>& params) {
    Result<double> sse = model_.FitWithParams(history, params);
    return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
  };

  EstimationResult est = estimator->Estimate(objective, model_.Bounds(),
                                             config_.initial_estimation);
  if (est.best_params.empty()) {
    return Status::Internal("parameter estimation produced no candidate");
  }
  MIRABEL_ASSIGN_OR_RETURN(double sse,
                           model_.FitWithParams(history, est.best_params));

  if (repository_ != nullptr) {
    (void)repository_->Store(
        MakeSeriesContext(history.values(), history.periods_per_day()),
        est.best_params, sse);
  }

  window_errors_.clear();
  observations_since_estimation_ = 0;
  trained_ = true;
  return Status::OK();
}

Status Forecaster::AddMeasurement(double value) {
  if (!trained_) {
    return Status::FailedPrecondition("call Train() first");
  }
  // One-step-ahead forecast before consuming the value, for the rolling
  // accuracy estimate.
  MIRABEL_ASSIGN_OR_RETURN(std::vector<double> f, model_.Forecast(1));
  double denom = (std::fabs(value) + std::fabs(f[0])) / 2.0;
  double term = denom > 1e-12 ? std::fabs(f[0] - value) / denom : 0.0;
  window_errors_.push_back(term);
  while (window_errors_.size() >
         static_cast<size_t>(config_.evaluation_window)) {
    window_errors_.pop_front();
  }

  MIRABEL_RETURN_IF_ERROR(model_.Update(value));
  history_.Append(value);
  ++observations_since_estimation_;

  bool adapt = false;
  switch (config_.evaluation) {
    case EvaluationStrategy::kTimeBased:
      adapt = observations_since_estimation_ >= config_.reestimation_interval;
      break;
    case EvaluationStrategy::kThresholdBased:
      adapt = window_errors_.size() ==
                  static_cast<size_t>(config_.evaluation_window) &&
              RollingSmape() > config_.smape_threshold;
      break;
  }
  if (adapt) return Reestimate();
  return Status::OK();
}

Status Forecaster::Reestimate() {
  // Warm start: current parameters, possibly improved by the closest
  // context-repository case (paper §5 "the model adaption exploits the
  // context knowledge of previous model estimations").
  std::vector<double> start = model_.params();
  if (repository_ != nullptr && !repository_->empty()) {
    Result<std::vector<double>> cached = repository_->FindNearest(
        MakeSeriesContext(history_.values(), history_.periods_per_day()));
    if (cached.ok() && cached->size() == start.size()) start = *cached;
  }

  Objective objective = [this](const std::vector<double>& params) {
    Result<double> sse = model_.FitWithParams(history_, params);
    return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
  };
  NelderMeadEstimator estimator(start);
  EstimationResult est = estimator.Estimate(objective, model_.Bounds(),
                                            config_.adaptation_estimation);
  const std::vector<double>& chosen =
      est.best_params.empty() ? start : est.best_params;
  MIRABEL_ASSIGN_OR_RETURN(double sse,
                           model_.FitWithParams(history_, chosen));

  if (repository_ != nullptr) {
    (void)repository_->Store(
        MakeSeriesContext(history_.values(), history_.periods_per_day()),
        chosen, sse);
  }
  observations_since_estimation_ = 0;
  window_errors_.clear();
  ++reestimation_count_;
  return Status::OK();
}

Result<std::vector<double>> Forecaster::Forecast(int horizon) const {
  if (!trained_) {
    return Status::FailedPrecondition("call Train() first");
  }
  return model_.Forecast(horizon);
}

double Forecaster::RollingSmape() const {
  if (window_errors_.empty()) return 0.0;
  double acc = 0.0;
  for (double e : window_errors_) acc += e;
  return acc / static_cast<double>(window_errors_.size());
}

}  // namespace mirabel::forecasting
