#include "forecasting/flex_offer_forecaster.h"

#include <algorithm>
#include <limits>

#include "forecasting/estimator.h"

namespace mirabel::forecasting {

using flexoffer::EnergyRange;
using flexoffer::FlexOffer;
using flexoffer::TimeSlice;

FlexOfferForecaster::FlexOfferForecaster(std::vector<int> seasonal_periods)
    : seasonal_periods_(seasonal_periods),
      min_model_(seasonal_periods),
      max_model_(std::move(seasonal_periods)) {}

std::pair<TimeSeries, TimeSeries> FlexOfferForecaster::BuildSeries(
    const std::vector<FlexOffer>& offers, TimeSlice from, TimeSlice to) {
  size_t n = to > from ? static_cast<size_t>(to - from) : 0;
  std::vector<double> min_sum(n, 0.0);
  std::vector<double> max_sum(n, 0.0);
  for (const FlexOffer& fo : offers) {
    for (int64_t j = 0; j < fo.Duration(); ++j) {
      TimeSlice t = fo.earliest_start + j;
      if (t < from || t >= to) continue;
      size_t idx = static_cast<size_t>(t - from);
      min_sum[idx] += fo.profile[static_cast<size_t>(j)].min_kwh;
      max_sum[idx] += fo.profile[static_cast<size_t>(j)].max_kwh;
    }
  }
  return {TimeSeries(std::move(min_sum), flexoffer::kSlicesPerDay),
          TimeSeries(std::move(max_sum), flexoffer::kSlicesPerDay)};
}

Status FlexOfferForecaster::Train(const std::vector<FlexOffer>& offers,
                                  TimeSlice from, TimeSlice to,
                                  const EstimatorOptions& estimation) {
  auto [min_series, max_series] = BuildSeries(offers, from, to);
  RandomRestartNelderMeadEstimator estimator;
  for (auto* pair : {&min_model_, &max_model_}) {
    const TimeSeries& series = pair == &min_model_ ? min_series : max_series;
    Objective objective = [pair, &series](const std::vector<double>& params) {
      Result<double> sse = pair->FitWithParams(series, params);
      return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
    };
    EstimationResult est =
        estimator.Estimate(objective, pair->Bounds(), estimation);
    const std::vector<double> params =
        est.best_params.empty() ? pair->DefaultParams() : est.best_params;
    MIRABEL_RETURN_IF_ERROR(pair->FitWithParams(series, params).status());
  }
  trained_ = true;
  return Status::OK();
}

Result<std::vector<EnergyRange>> FlexOfferForecaster::Forecast(
    int horizon) const {
  if (!trained_) {
    return Status::FailedPrecondition("call Train() first");
  }
  MIRABEL_ASSIGN_OR_RETURN(std::vector<double> mins,
                           min_model_.Forecast(horizon));
  MIRABEL_ASSIGN_OR_RETURN(std::vector<double> maxs,
                           max_model_.Forecast(horizon));
  std::vector<EnergyRange> out(static_cast<size_t>(horizon));
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].min_kwh = std::max(0.0, mins[i]);
    out[i].max_kwh = std::max(out[i].min_kwh, maxs[i]);
  }
  return out;
}

}  // namespace mirabel::forecasting
