#include "forecasting/pubsub.h"

#include <cmath>

namespace mirabel::forecasting {

ForecastBroker::ForecastBroker(Forecaster* forecaster)
    : forecaster_(forecaster) {}

SubscriberId ForecastBroker::Subscribe(const ForecastSubscription& subscription,
                                       Callback callback) {
  SubscriberId id = next_id_++;
  subscribers_[id] = Subscriber{subscription, std::move(callback), {}};
  return id;
}

Status ForecastBroker::Unsubscribe(SubscriberId id) {
  if (subscribers_.erase(id) == 0) {
    return Status::NotFound("subscription " + std::to_string(id));
  }
  return Status::OK();
}

Status ForecastBroker::OnMeasurement(double value) {
  MIRABEL_RETURN_IF_ERROR(forecaster_->AddMeasurement(value));

  for (auto& [id, sub] : subscribers_) {
    ++evaluations_;
    MIRABEL_ASSIGN_OR_RETURN(std::vector<double> forecast,
                             forecaster_->Forecast(sub.subscription.horizon));
    bool significant = sub.last_notified.size() != forecast.size();
    if (!significant) {
      constexpr double kEps = 1e-9;
      for (size_t h = 0; h < forecast.size(); ++h) {
        double rel = std::fabs(forecast[h] - sub.last_notified[h]) /
                     (std::fabs(sub.last_notified[h]) + kEps);
        if (rel > sub.subscription.change_threshold) {
          significant = true;
          break;
        }
      }
    }
    if (significant) {
      sub.last_notified = forecast;
      ++notifications_sent_;
      sub.callback(forecast);
    }
  }
  return Status::OK();
}

}  // namespace mirabel::forecasting
