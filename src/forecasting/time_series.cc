#include "forecasting/time_series.h"

namespace mirabel::forecasting {

TimeSeries::TimeSeries(std::vector<double> values, int periods_per_day)
    : values_(std::move(values)), periods_per_day_(periods_per_day) {}

Result<TimeSeries> TimeSeries::Slice(size_t from, size_t count) const {
  if (from + count > values_.size()) {
    return Status::OutOfRange("slice exceeds series length");
  }
  return TimeSeries(
      std::vector<double>(values_.begin() + static_cast<ptrdiff_t>(from),
                          values_.begin() + static_cast<ptrdiff_t>(from + count)),
      periods_per_day_);
}

Result<std::pair<TimeSeries, TimeSeries>> TimeSeries::Split(
    size_t head_count) const {
  if (head_count > values_.size()) {
    return Status::OutOfRange("split point exceeds series length");
  }
  MIRABEL_ASSIGN_OR_RETURN(TimeSeries head, Slice(0, head_count));
  MIRABEL_ASSIGN_OR_RETURN(TimeSeries tail,
                           Slice(head_count, values_.size() - head_count));
  return std::make_pair(std::move(head), std::move(tail));
}

Result<TimeSeries> TimeSeries::Sum(const TimeSeries& a, const TimeSeries& b) {
  if (a.size() != b.size() || a.periods_per_day() != b.periods_per_day()) {
    return Status::InvalidArgument("cannot sum misaligned series");
  }
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a.at(i) + b.at(i);
  return TimeSeries(std::move(out), a.periods_per_day());
}

}  // namespace mirabel::forecasting
