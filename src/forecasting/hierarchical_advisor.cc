#include "forecasting/hierarchical_advisor.h"

#include <limits>

#include "common/math_util.h"
#include "forecasting/hwt_model.h"

namespace mirabel::forecasting {

namespace {

/// Trains an HWT model on train = series minus holdout and returns the
/// holdout forecast; empty Result status on failure.
Result<std::vector<double>> HoldoutForecast(const TimeSeries& series,
                                            const AdvisorOptions& options) {
  if (series.size() <= options.holdout) {
    return Status::InvalidArgument("series shorter than holdout");
  }
  MIRABEL_ASSIGN_OR_RETURN(auto split,
                           series.Split(series.size() - options.holdout));
  HwtModel model(options.seasonal_periods);
  RandomRestartNelderMeadEstimator estimator;
  Objective objective = [&model, &split](const std::vector<double>& params) {
    Result<double> sse = model.FitWithParams(split.first, params);
    return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
  };
  EstimationResult est =
      estimator.Estimate(objective, model.Bounds(), options.estimation);
  const std::vector<double> params =
      est.best_params.empty() ? model.DefaultParams() : est.best_params;
  MIRABEL_RETURN_IF_ERROR(model.FitWithParams(split.first, params).status());
  return model.Forecast(static_cast<int>(options.holdout));
}

}  // namespace

Result<AdvisorResult> HierarchicalForecastAdvisor::Advise(
    const std::vector<HierarchyNode>& nodes,
    const AdvisorOptions& options) const {
  if (nodes.empty()) return Status::InvalidArgument("empty hierarchy");
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t c : nodes[i].children) {
      if (c <= i || c >= nodes.size()) {
        return Status::InvalidArgument(
            "children must come after their parent (topological order)");
      }
    }
  }

  // Bottom-up: compute aggregate series for inner nodes.
  std::vector<TimeSeries> series(nodes.size());
  for (size_t ii = nodes.size(); ii > 0; --ii) {
    size_t i = ii - 1;
    if (nodes[i].children.empty()) {
      series[i] = nodes[i].series;
      if (series[i].empty()) {
        return Status::InvalidArgument("leaf '" + nodes[i].name +
                                       "' has no series");
      }
      continue;
    }
    TimeSeries acc = series[nodes[i].children.front()];
    for (size_t k = 1; k < nodes[i].children.size(); ++k) {
      MIRABEL_ASSIGN_OR_RETURN(acc,
                               TimeSeries::Sum(acc, series[nodes[i].children[k]]));
    }
    series[i] = std::move(acc);
  }

  AdvisorResult result;
  result.placement.assign(nodes.size(), ModelPlacement::kOwnModel);
  result.node_smape.assign(nodes.size(), 0.0);

  // Holdout forecasts per node under an own model; needed for leaves and as
  // the fallback for inner nodes.
  std::vector<std::vector<double>> own_forecast(nodes.size());
  std::vector<std::vector<double>> chosen_forecast(nodes.size());
  for (size_t ii = nodes.size(); ii > 0; --ii) {
    size_t i = ii - 1;
    MIRABEL_ASSIGN_OR_RETURN(TimeSeries holdout_series,
                             series[i].Slice(series[i].size() - options.holdout,
                                             options.holdout));
    const std::vector<double>& actual = holdout_series.values();

    if (nodes[i].children.empty()) {
      MIRABEL_ASSIGN_OR_RETURN(own_forecast[i],
                               HoldoutForecast(series[i], options));
      chosen_forecast[i] = own_forecast[i];
      result.placement[i] = ModelPlacement::kOwnModel;
      MIRABEL_ASSIGN_OR_RETURN(result.node_smape[i],
                               Smape(actual, chosen_forecast[i]));
      ++result.models_used;
      continue;
    }

    // Candidate (a): aggregate the children's chosen forecasts.
    std::vector<double> summed(options.holdout, 0.0);
    for (size_t c : nodes[i].children) {
      for (size_t h = 0; h < options.holdout; ++h) {
        summed[h] += chosen_forecast[c][h];
      }
    }
    MIRABEL_ASSIGN_OR_RETURN(double smape_sum, Smape(actual, summed));
    if (smape_sum <= options.max_smape) {
      result.placement[i] = ModelPlacement::kAggregateChildren;
      result.node_smape[i] = smape_sum;
      chosen_forecast[i] = std::move(summed);
      continue;
    }

    // Candidate (b): own model on the aggregate series.
    MIRABEL_ASSIGN_OR_RETURN(own_forecast[i],
                             HoldoutForecast(series[i], options));
    MIRABEL_ASSIGN_OR_RETURN(double smape_own, Smape(actual, own_forecast[i]));
    if (smape_own <= smape_sum) {
      result.placement[i] = ModelPlacement::kOwnModel;
      result.node_smape[i] = smape_own;
      chosen_forecast[i] = own_forecast[i];
      ++result.models_used;
    } else {
      result.placement[i] = ModelPlacement::kAggregateChildren;
      result.node_smape[i] = smape_sum;
      chosen_forecast[i] = std::move(summed);
    }
  }
  return result;
}

}  // namespace mirabel::forecasting
