#ifndef MIRABEL_EDMS_RUNTIME_SNAPSHOT_H_
#define MIRABEL_EDMS_RUNTIME_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "edms/edms_engine.h"

namespace mirabel::edms {

/// Mid-stream observability of one ShardedEdmsRuntime shard: the shard's
/// EngineStats (engine counters plus the runtime's overlay counters such as
/// intake_errors / metering_failures) and the strand's operational gauges.
/// Published by the shard strand after every drain/gate/meter task through a
/// SnapshotSlot, readable from any thread at any time — no quiescence
/// required (contrast ShardedEdmsRuntime::stats()).
struct ShardSnapshot {
  EngineStats stats;
  /// Batches sitting in the shard's intake queue. In a RuntimeSnapshot this
  /// gauge is read live at snapshot time; in the published slot it is the
  /// depth the strand saw when it finished its last task.
  int64_t intake_depth_batches = 0;
  /// Cumulative batches the strand has drained into the engine.
  int64_t intake_drained_batches = 0;
  /// Cumulative strand tasks executed (drains, gates, meter batches, ...).
  int64_t strand_tasks_run = 0;
  /// Cumulative wall-clock seconds spent inside strand tasks
  /// (strand_task_s_total / strand_tasks_run = mean task latency).
  double strand_task_s_total = 0.0;
  /// Duration of the most recent strand task (seconds).
  double last_task_s = 0.0;
  /// Enqueue→drain queue wait of the most recently drained batch (seconds);
  /// the leading indicator of intake backlog.
  double last_queue_wait_s = 0.0;
  /// Submission slice (`now`) of the most recently drained batch; -1 until
  /// the first streamed batch lands.
  int64_t last_drain_slice = -1;
};

static_assert(std::is_trivially_copyable_v<ShardSnapshot>,
              "ShardSnapshot must be bit-copyable for the seqlock slot");
static_assert(sizeof(ShardSnapshot) % sizeof(uint64_t) == 0,
              "ShardSnapshot must be a whole number of 64-bit words");

/// The merged view Snapshot() returns: every additive field summed across
/// shards (gauges that are not additive are aggregated as noted), plus the
/// per-shard detail for dashboards that want the distribution.
struct RuntimeSnapshot {
  /// Sum of the shard stats plus runtime-level counters (offers_shed).
  EngineStats stats;
  /// Live sum of the per-shard intake queue depths at snapshot time.
  int64_t intake_depth_batches = 0;
  int64_t intake_drained_batches = 0;
  int64_t strand_tasks_run = 0;
  double strand_task_s_total = 0.0;
  /// Max over shards of the most recent task duration — the straggler shard.
  double max_last_task_s = 0.0;
  std::vector<ShardSnapshot> shards;
};

/// A single-writer seqlock cell holding one ShardSnapshot.
///
/// The shard strand (the only writer, serialized by construction) publishes
/// a full snapshot after every task; any number of reader threads may read
/// concurrently and always obtain a torn-free copy. The payload is stored as
/// relaxed atomic words between the sequence-number fences, so the protocol
/// is data-race-free by the letter of the memory model (TSan-clean), not
/// just benign-race-in-practice:
///
///   writer: seq -> odd, release fence, store words, seq -> even (release)
///   reader: read seq (acquire, retry while odd), load words,
///           acquire fence, re-read seq — retry unless unchanged.
///
/// Readers never block the writer; a reader racing a publish simply retries
/// (publishes are rare — one per strand task — and writes are ~15 word
/// stores, so retries are vanishingly short).
class SnapshotSlot {
 public:
  SnapshotSlot() { Publish(ShardSnapshot{}); }

  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// Single-writer side: publishes `snap` as one atomic unit.
  void Publish(const ShardSnapshot& snap) {
    const uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    const Words words = std::bit_cast<Words>(snap);
    for (size_t i = 0; i < kWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);  // even: stable again
  }

  /// Any-thread side: returns a coherent copy of the last published value.
  ShardSnapshot Read() const {
    Words words;
    for (;;) {
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // publish in flight
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        return std::bit_cast<ShardSnapshot>(words);
      }
    }
  }

 private:
  static constexpr size_t kWords = sizeof(ShardSnapshot) / sizeof(uint64_t);
  using Words = std::array<uint64_t, kWords>;

  std::atomic<uint64_t> seq_{0};
  std::array<std::atomic<uint64_t>, kWords> words_{};
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_RUNTIME_SNAPSHOT_H_
