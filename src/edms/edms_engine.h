#ifndef MIRABEL_EDMS_EDMS_ENGINE_H_
#define MIRABEL_EDMS_EDMS_ENGINE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "aggregation/pipeline.h"
#include "edms/baseline_provider.h"
#include "edms/event_queue.h"
#include "edms/events.h"
#include "edms/offer_lifecycle.h"
#include "edms/scheduler_registry.h"
#include "negotiation/negotiator.h"
#include "scheduling/executor.h"
#include "storage/data_store.h"

namespace mirabel::edms {

/// Counters of one engine's trading activity (the former AggregatingStats).
/// Every field is additive, so shard stats merge by summation — see Merge().
struct EngineStats {
  int64_t offers_received = 0;
  /// Non-empty SubmitOffers() batches processed (mean batch size =
  /// offers_received / submit_batches).
  int64_t submit_batches = 0;
  int64_t offers_accepted = 0;
  int64_t offers_rejected = 0;
  int64_t scheduling_runs = 0;
  int64_t macros_scheduled = 0;
  int64_t micro_schedules_sent = 0;
  int64_t offers_expired_in_pipeline = 0;
  int64_t offers_executed = 0;
  /// Flexibility payments promised to offer owners (EUR).
  double payments_eur = 0.0;
  /// Absolute imbalance over the accounted horizon slices, without / with
  /// flex-offer scheduling (kWh). The "after" number is what the paper's
  /// Fig. 1 illustrates: shifted flexible demand absorbs RES production.
  /// Accounted per scheduling problem: when engines sharing one baseline
  /// are merged (ShardedEdmsRuntime), each shard counts that baseline once,
  /// so compare the before-after *difference* across shard counts, not the
  /// raw totals.
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;
  /// Total scheduling cost of the accepted schedules (EUR).
  double schedule_cost_eur = 0.0;
  /// Wall-clock budget returned by per-problem-size budget scaling: the sum
  /// over scheduling runs of (configured per-gate budget - scaled budget).
  /// See Config::scale_budget_with_problem_size.
  double budget_saved_s = 0.0;
  /// Deferred streaming-intake errors (ShardedEdmsRuntime drains): every
  /// non-duplicate failure is counted here even though Advance()/
  /// FlushIntake() return only the first one.
  int64_t intake_errors = 0;
  /// RecordMeterReadings() execution failures that were tolerated (e.g.
  /// re-metered offers on duplicate-heavy bus traffic).
  int64_t metering_failures = 0;
  /// Offers shed by a bounded streaming intake under OverloadPolicy::kShed;
  /// they never reached an engine (so they are NOT in offers_received /
  /// offers_rejected) and surface as OfferRejected{kOverloaded} events.
  int64_t offers_shed = 0;
  /// Offers still sitting in shard intake queues when the runtime was
  /// destroyed (reported through Config::final_stats only).
  int64_t offers_dropped_at_shutdown = 0;
  /// Forwarded macro offers that missed their reply deadline — the parent
  /// never returned a schedule — and were expired with all their members
  /// (MacroExpired + per-member OfferExpired events).
  int64_t macros_expired_unscheduled = 0;
  /// Assigned offers whose execution confirmation never arrived within
  /// Config::execution_timeout_slices of their schedule's end; closed as
  /// expired so per-offer bookkeeping cannot leak under message loss.
  int64_t executions_timed_out = 0;
  /// Portfolio-race wins per member family, counted over scheduling runs
  /// whose result carried per-member stats (i.e. the configured scheduler
  /// was a PortfolioScheduler). Members with other names count nowhere.
  int64_t portfolio_wins_greedy = 0;
  int64_t portfolio_wins_ea = 0;
  int64_t portfolio_wins_hybrid = 0;
  int64_t portfolio_wins_bnb = 0;
  /// Scheduling runs whose result was proved optimal over the start-slot
  /// search space (BranchAndBound directly, or a portfolio whose winner
  /// proved it; a completed Exhaustive sweep counts too).
  int64_t bnb_optimal_proven = 0;
  /// Scheduling runs that went through the robust (ensemble re-ranking)
  /// path — the configured scheduler was wrapped per Config::
  /// ensemble_scenarios, and the ensemble was non-degenerate.
  int64_t robust_runs = 0;
  /// Candidate-schedule x scenario evaluations those runs performed (the
  /// uncertainty layer's work counter, as nodes_visited is BnB's).
  int64_t robust_scenario_evaluations = 0;
  /// Sum over robust runs of the winning schedule's mean scenario cost
  /// (EUR); divide by robust_runs for the average expected cost.
  double robust_expected_cost_eur = 0.0;
  /// Sum over robust runs of the winning schedule's CVaR (EUR).
  double robust_cvar_eur = 0.0;

  /// Adds `other` field by field. The implementation destructures the whole
  /// struct, so adding a field without extending Merge() fails to compile.
  EngineStats& Merge(const EngineStats& other);
};

EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs);
EngineStats operator+(EngineStats lhs, const EngineStats& rhs);

/// The EDMS Control component as a single facade (paper §3, §8): one engine
/// drives the full flex-offer life cycle — offered, accepted, aggregated,
/// scheduled, assigned, executed — that nodes, examples and benches used to
/// hand-wire out of negotiator, pipeline and scheduler.
///
/// Usage is batch-first and tick-driven:
///
///   EdmsEngine engine(config);
///   engine.SubmitOffers(offers, now);        // intake + negotiation
///   engine.Advance(now);                     // fires the gate when due
///   for (const Event& e : engine.PollEvents()) ...  // typed event stream
///
/// In local-scheduling mode a gate closure aggregates, schedules and
/// disaggregates; in forwarding mode (schedule_locally = false) it publishes
/// macro offers for a higher EDMS level whose schedules return through
/// CompleteMacroSchedule() ("the process is essentially repeated at a higher
/// level", paper §2). All lifecycle bookkeeping runs through an explicit
/// OfferLifecycle state machine; all side effects surface as events.
///
/// Thread safety: the engine is single-threaded by design — every mutating
/// call (SubmitOffers, Advance, CompleteMacroSchedule, RecordExecution,
/// RecordMeasurement) must come from one thread at a time, with exactly one
/// exception: PollEvents() may run concurrently from one other thread (the
/// engine is the producer of its SPSC EventQueue, the poller the consumer).
/// ShardedEdmsRuntime relies on precisely this split: it serializes each
/// shard engine's mutations on a WorkerPool::Strand and drains events from
/// the control thread. The const accessors (stats(), lifecycle(), store(),
/// pipeline()) are safe only while no mutating call is in flight.
class EdmsEngine {
 public:
  struct Config {
    /// Actor id of the engine's operator (BRP/TSO); stamped as the owner of
    /// published macro offers.
    flexoffer::ActorId actor = 0;
    /// Negotiate (and possibly reject) incoming offers. BRPs negotiate with
    /// prosumers; a TSO accepts the macro offers of its BRPs.
    bool negotiate = true;
    negotiation::Negotiator::Config negotiation;
    aggregation::PipelineConfig aggregation;

    /// Control-loop cadence (slices between gate closures).
    int gate_period = 16;
    /// Scheduling horizon per run (slices).
    int horizon = 96;
    /// Scheduler factory (see SchedulerRegistry); empty resolves to
    /// DefaultSchedulerFactory().
    SchedulerFactory scheduler_factory;
    double scheduler_budget_s = 0.05;
    /// Scale the per-gate budget with problem size (ScaledTimeBudget):
    /// a gate scheduling `n` macro offers over `horizon` slices gets
    /// scheduler_budget_s * min(1, n * horizon / budget_reference_work),
    /// floored at 2% of the cap, so tiny late gates stop burning the full
    /// budget. The saved time accrues in EngineStats::budget_saved_s.
    bool scale_budget_with_problem_size = true;
    /// Problem size (offers x horizon slices) that earns the full budget.
    double budget_reference_work = 32.0 * 96.0;
    /// Iteration cap per scheduling run (0 = unlimited). Set this and a
    /// non-positive time budget for bit-deterministic runs.
    int scheduler_max_iterations = 0;
    /// Forwarded to SchedulerOptions::fast_math: delta-replay EA children
    /// and vectorized slice sweeps, 1e-9-relative (not bitwise) cost
    /// agreement. Leave false for bit-deterministic runs; enable when gate
    /// deadlines are tight and throughput matters more than replayability.
    bool scheduler_fast_math = false;
    uint64_t seed = 5;

    /// Baseline imbalance source; null resolves to ZeroBaselineProvider.
    /// Plug in a ForecastBaselineProvider to drive scheduling straight from
    /// the forecasting component.
    std::shared_ptr<BaselineProvider> baseline;

    /// Market / penalty parameters of the engine's scheduling problems.
    double penalty_eur_per_kwh = 0.25;
    double buy_price_eur = 0.12;
    double sell_price_eur = 0.05;
    double max_buy_kwh = 50.0;
    double max_sell_kwh = 50.0;

    /// --- Uncertainty-aware scheduling --------------------------------
    /// Forecast-error scenarios per gate. > 0 wraps the configured
    /// scheduler in a scheduling::RobustScheduler: each gate bootstraps an
    /// ensemble of this many per-slice baseline-error scenarios from
    /// `forecast_residuals` (seeded deterministically per gate) and
    /// re-ranks the candidate schedules by expected cost plus tail risk.
    /// 0 disables (pure point scheduling). Ignored while
    /// `forecast_residuals` is null or empty.
    int ensemble_scenarios = 0;
    /// CVaR tail mass of the robust ranking objective, in (0, 1].
    double ensemble_cvar_alpha = 0.25;
    /// Weight of the tail term: rank = mean + weight * (CVaR - mean).
    double ensemble_risk_weight = 0.5;
    /// Fitted forecast-error pool the gate ensembles draw from — e.g. a
    /// HwtModel's or EgrvModel's residuals() after fitting the baseline
    /// series (the same models a ForecastBaselineProvider wraps).
    std::shared_ptr<const std::vector<double>> forecast_residuals;
    /// Fan-out seam for the per-scenario evaluations; null evaluates
    /// serially on the gate thread. The WorkerPoolExecutor deadlock
    /// contract applies (pool_executor.h): do not point this at a pool
    /// whose workers drive this engine (e.g. this engine's
    /// ShardedEdmsRuntime pool).
    std::shared_ptr<scheduling::Executor> ensemble_executor;

    /// When false, gate closures publish macro offers (MacroPublished with
    /// forwarded = true) instead of scheduling; schedules return via
    /// CompleteMacroSchedule().
    bool schedule_locally = true;

    /// Deadline-degradation grace: an assigned offer whose execution
    /// confirmation has not arrived this many slices after its schedule
    /// ended is closed as expired (ExpireDeadlines()). Must exceed the bus
    /// round trip plus the owner's metering cadence; 0 disables the check.
    int execution_timeout_slices = 32;

    /// Identifier lane of published macro offers: the wire id is
    /// actor * 1000000 + aggregate id * macro_id_lanes + macro_id_lane.
    /// The sharded runtime gives every shard its own lane so macros
    /// published by different shards of one actor never collide; the
    /// defaults reproduce the single-engine id scheme.
    uint64_t macro_id_lane = 0;
    uint64_t macro_id_lanes = 1;
  };

  explicit EdmsEngine(const Config& config);

  /// Batch intake: validates and negotiates each offer, inserts the agreed
  /// ones into the aggregation pipeline, and emits one OfferAccepted or
  /// OfferRejected event per offer. Returns the number accepted. Duplicate
  /// ids (offers the engine has already seen, or repeats within the batch)
  /// reject the whole batch with AlreadyExists before any state changes.
  Result<size_t> SubmitOffers(std::span<const flexoffer::FlexOffer> offers,
                              flexoffer::TimeSlice now);

  /// Single-offer convenience over SubmitOffers().
  Status SubmitOffer(const flexoffer::FlexOffer& offer,
                     flexoffer::TimeSlice now);

  /// Advances the control loop to slice `now`; fires the gate when due. A
  /// gate closure expires stale offers, claims the aggregates that fit the
  /// upcoming horizon, and either schedules them locally or publishes them.
  Status Advance(flexoffer::TimeSlice now);

  /// Deadline degradation pass, also run at every gate closure: expires
  /// (a) pipeline offers whose assignment deadline or start window has
  /// passed, (b) forwarded macros whose schedule never returned from the
  /// parent level (MacroExpired + per-member OfferExpired), and (c)
  /// assigned offers whose execution confirmation is overdue. Wind-down
  /// phases call this directly so every admitted offer reaches a terminal
  /// lifecycle state without opening new gates.
  void ExpireDeadlines(flexoffer::TimeSlice now);

  /// Delivers the schedule of a previously published (forwarded) macro
  /// offer: disaggregates it and emits ScheduleAssigned per member.
  /// NotFound when no such macro is pending.
  Status CompleteMacroSchedule(const flexoffer::ScheduledFlexOffer& schedule,
                               flexoffer::TimeSlice now);

  /// Records that the owner executed its assigned schedule (closing the
  /// lifecycle) and meters the energy.
  Status RecordExecution(flexoffer::FlexOfferId id, flexoffer::TimeSlice now,
                         double energy_kwh);

  /// Appends a raw measurement to the store (not tied to an offer).
  void RecordMeasurement(flexoffer::ActorId actor, flexoffer::TimeSlice slice,
                         double energy_kwh);

  /// Drains the pending event stream, in emission order.
  ///
  /// Threading: the event channel is a single-producer/single-consumer
  /// queue. All mutating engine calls must stay on one thread (the
  /// producer), but PollEvents() may be issued from one other thread — this
  /// is how a ShardedEdmsRuntime shard streams events out of its worker.
  std::vector<Event> PollEvents();

  /// True when a published (forwarded) macro offer with this wire id is
  /// still awaiting its schedule.
  bool HasPendingMacro(flexoffer::FlexOfferId id) const {
    return pending_macros_.count(id) != 0;
  }

  const EngineStats& stats() const { return stats_; }
  const OfferLifecycle& lifecycle() const { return lifecycle_; }
  const storage::DataStore& store() const { return store_; }
  const aggregation::AggregationPipeline& pipeline() const {
    return pipeline_;
  }
  const Config& config() const { return config_; }

 private:
  Status RunGate(flexoffer::TimeSlice now);
  /// Schedules `macros` locally over (now, now + horizon] and emits the
  /// disaggregated member schedules. On failure the claimed members are
  /// expired (they are already out of the pipeline).
  Status ScheduleLocally(
      flexoffer::TimeSlice now,
      const std::vector<aggregation::AggregatedFlexOffer>& macros);
  /// The fallible part of ScheduleLocally: baseline, scheduler run, events.
  Status ScheduleClaimed(
      flexoffer::TimeSlice now,
      const std::vector<aggregation::AggregatedFlexOffer>& macros);
  /// Disaggregates `macro_schedule` against the snapshot `agg` and emits one
  /// ScheduleAssigned event per member.
  Status EmitMemberSchedules(
      flexoffer::TimeSlice now, const aggregation::AggregatedFlexOffer& agg,
      const flexoffer::ScheduledFlexOffer& macro_schedule);

  Config config_;
  storage::DataStore store_;
  negotiation::Negotiator negotiator_;
  aggregation::AggregationPipeline pipeline_;
  OfferLifecycle lifecycle_;
  EngineStats stats_;
  EventQueue events_;
  flexoffer::TimeSlice last_gate_ = -1;
  /// Snapshots of published macro offers keyed by the composite wire id,
  /// needed to disaggregate the schedules when they return.
  std::unordered_map<flexoffer::FlexOfferId, aggregation::AggregatedFlexOffer>
      pending_macros_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_EDMS_ENGINE_H_
