#include "edms/worker_pool.h"

#include <algorithm>
#include <utility>

namespace mirabel::edms {

WorkerPool::WorkerPool() : WorkerPool(Options()) {}

WorkerPool::WorkerPool(const Options& options) : options_(options) {
  size_t n = options_.num_threads;
  if (n == 0) n = std::max<size_t>(1, std::thread::hardware_concurrency());
  options_.num_threads = n;
  queues_.resize(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&WorkerPool::WorkerLoop, this, i);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::unique_ptr<WorkerPool::Strand> WorkerPool::CreateStrand() {
  size_t home = next_home_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size();
  // Not make_unique: the constructor is private to keep homes pool-assigned.
  return std::unique_ptr<Strand>(new Strand(this, home));
}

std::future<void> WorkerPool::Strand::Post(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  bool need_schedule = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    if (!scheduled_) {
      scheduled_ = true;
      need_schedule = true;
    }
  }
  // The strand is invisible to workers between releasing mu_ and Enqueue()
  // (it sits in no run queue), so no worker can claim it twice.
  if (need_schedule) pool_->Enqueue(this);
  return future;
}

WorkerPool::Strand::~Strand() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !scheduled_ && tasks_.empty(); });
}

void WorkerPool::Enqueue(Strand* strand) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[strand->home_].push_back(strand);
  }
  // notify_all, not _one: with stealing disabled only the home worker may
  // run the strand, and a notify_one could wake a different (then
  // re-sleeping) worker, stranding the task.
  cv_.notify_all();
}

void WorkerPool::WorkerLoop(size_t index) {
  for (;;) {
    Strand* strand = nullptr;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, index] {
        if (stop_ || !queues_[index].empty()) return true;
        if (!options_.enable_stealing) return false;
        for (const auto& queue : queues_) {
          if (!queue.empty()) return true;
        }
        return false;
      });
      if (!queues_[index].empty()) {
        strand = queues_[index].front();
        queues_[index].pop_front();
      } else if (options_.enable_stealing) {
        // Steal from the back of the longest sibling queue: the strand that
        // would otherwise wait the longest behind its home worker.
        size_t victim = index;
        size_t longest = 0;
        for (size_t i = 0; i < queues_.size(); ++i) {
          if (queues_[i].size() > longest) {
            longest = queues_[i].size();
            victim = i;
          }
        }
        if (longest > 0) {
          strand = queues_[victim].back();
          queues_[victim].pop_back();
          stolen = true;
        }
      }
      // A stopping pool still drains every queued strand before the workers
      // exit, so joined futures are always satisfied.
      if (strand == nullptr && stop_) return;
    }
    if (strand == nullptr) continue;
    if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
    RunStrand(strand);
  }
}

void WorkerPool::RunStrand(Strand* strand) {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::lock_guard<std::mutex> lock(strand->mu_);
      if (strand->tasks_.empty()) {
        strand->scheduled_ = false;
        // Notify under the lock and return without touching the strand
        // again: a destructor waiting on idle_cv_ may free it as soon as we
        // release mu_.
        strand->idle_cv_.notify_all();
        return;
      }
      task = std::move(strand->tasks_.front());
      strand->tasks_.pop_front();
    }
    task();
  }
}

}  // namespace mirabel::edms
