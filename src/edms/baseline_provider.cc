#include "edms/baseline_provider.h"

#include <mutex>
#include <string>

namespace mirabel::edms {

using flexoffer::TimeSlice;

Result<std::vector<double>> ZeroBaselineProvider::Baseline(TimeSlice start,
                                                           int length) {
  (void)start;
  if (length < 0) return Status::InvalidArgument("negative horizon length");
  return std::vector<double>(static_cast<size_t>(length), 0.0);
}

Result<std::vector<double>> VectorBaselineProvider::Baseline(TimeSlice start,
                                                             int length) {
  if (length < 0) return Status::InvalidArgument("negative horizon length");
  std::vector<double> out(static_cast<size_t>(length), 0.0);
  for (int s = 0; s < length; ++s) {
    TimeSlice t = start + s - origin_;
    if (t >= 0 && t < static_cast<TimeSlice>(imbalance_kwh_.size())) {
      out[static_cast<size_t>(s)] = imbalance_kwh_[static_cast<size_t>(t)];
    }
  }
  return out;
}

Result<std::vector<double>> ForecastBaselineProvider::Baseline(TimeSlice start,
                                                               int length) {
  if (length < 0) return Status::InvalidArgument("negative horizon length");
  if (demand_ == nullptr) {
    return Status::InvalidArgument("demand forecaster is required");
  }
  if (start < origin_) {
    return Status::FailedPrecondition(
        "baseline requested for slice " + std::to_string(start) +
        " before the forecast origin " + std::to_string(origin_));
  }
  size_t needed = static_cast<size_t>(start - origin_) +
                  static_cast<size_t>(length);
  size_t offset = static_cast<size_t>(start - origin_);

  // Hot path: concurrent shard gates read the warm cache under a shared
  // lock and never serialize on each other.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (needed <= cache_.size()) {
      return std::vector<double>(
          cache_.begin() + static_cast<ptrdiff_t>(offset),
          cache_.begin() + static_cast<ptrdiff_t>(offset + length));
    }
  }

  // Miss: extend under the exclusive lock (the forecasters are only ever
  // driven from under it), re-checking because a racing gate may have
  // already extended past `needed`.
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (needed > cache_.size()) {
    MIRABEL_RETURN_IF_ERROR(ExtendCache(needed));
  }
  return std::vector<double>(cache_.begin() + static_cast<ptrdiff_t>(offset),
                             cache_.begin() +
                                 static_cast<ptrdiff_t>(offset + length));
}

Status ForecastBaselineProvider::ExtendCache(size_t needed) {
  // Re-forecast from the origin with headroom so steadily advancing gates
  // trigger only O(log) rebuilds.
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  int horizon = static_cast<int>(needed + needed / 2);
  MIRABEL_ASSIGN_OR_RETURN(std::vector<double> demand,
                           demand_->Forecast(horizon));
  std::vector<double> supply;
  if (supply_ != nullptr) {
    MIRABEL_ASSIGN_OR_RETURN(supply, supply_->Forecast(horizon));
  }
  cache_.resize(static_cast<size_t>(horizon));
  for (size_t s = 0; s < cache_.size(); ++s) {
    double net = demand[s];
    if (!supply.empty()) net -= supply[s];
    cache_[s] = scale_ * net;
  }
  return Status::OK();
}

}  // namespace mirabel::edms
