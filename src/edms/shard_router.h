#ifndef MIRABEL_EDMS_SHARD_ROUTER_H_
#define MIRABEL_EDMS_SHARD_ROUTER_H_

#include <cstddef>
#include <functional>

#include "flexoffer/flex_offer.h"

namespace mirabel::edms {

/// Maps an offer owner to one of `num_shards` engine shards.
///
/// Routers must be pure functions of (owner, num_shards) and must return a
/// value < num_shards: the runtime calls them for every submitted offer and
/// relies on all calls agreeing on the placement — an owner's offers have to
/// land on one shard so duplicate detection, lifecycle tracking and
/// execution metering stay local to a single engine.
using ShardRouter =
    std::function<size_t(flexoffer::ActorId owner, size_t num_shards)>;

/// The default router: owner % num_shards. Prosumer populations with dense
/// id ranges (the simulation's `1000 + i` layout, the datagen workloads)
/// spread evenly under it.
inline ShardRouter OwnerModuloRouter() {
  return [](flexoffer::ActorId owner, size_t num_shards) {
    return num_shards <= 1 ? size_t{0}
                           : static_cast<size_t>(owner % num_shards);
  };
}

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_SHARD_ROUTER_H_
