#ifndef MIRABEL_EDMS_SHARDED_RUNTIME_H_
#define MIRABEL_EDMS_SHARDED_RUNTIME_H_

#include <functional>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "edms/edms_engine.h"
#include "edms/shard_router.h"

namespace mirabel::edms {

/// A partitioned EDMS runtime: N EdmsEngine shards behind one event stream.
///
/// The MIRABEL hierarchy absorbs flex-offers from thousands of prosumers per
/// BRP node (paper §2). One single-threaded engine serializes that whole
/// load; the runtime instead partitions prosumers across `num_shards`
/// independent engines (a pluggable ShardRouter maps owner -> shard, owner %
/// N by default) and runs every shard's intake and gate closures on the
/// shard's own worker thread. Each shard streams its events through a
/// lock-free SPSC EventQueue; PollEvents() merges the per-shard streams into
/// one deterministically ordered output (ascending emission slice, ties by
/// shard index, per-shard emission order preserved).
///
/// Call semantics are fork-join: SubmitOffers()/Advance() fan the work out
/// to the shard workers, wait for all of them, and return the combined
/// result, so the caller observes exactly the single-engine API. Between
/// calls the workers are quiescent, which is what makes the accessors
/// (stats(), shard()) safe to use without locks.
///
/// Threading contract: the runtime itself is driven by one caller thread at
/// a time (like the engine it replaces); the parallelism lives inside the
/// calls. Config::engine.baseline is shared by all shards and must be
/// thread-safe (see BaselineProvider).
///
/// Offer ids must be unique per owner across the runtime (true for every
/// id scheme in the repo: owners mint their own namespaced ids). Duplicate
/// detection is per shard — the router keeps an owner's offers on one
/// shard, so resubmissions are still caught.
class ShardedEdmsRuntime {
 public:
  struct Config {
    /// Number of engine shards; 0 is treated as 1. With 1 shard the runtime
    /// degenerates to a zero-overhead wrapper: no worker threads, every
    /// call runs inline on the caller thread against the one engine.
    size_t num_shards = 1;
    /// Owner -> shard placement; null resolves to OwnerModuloRouter().
    ShardRouter router;
    /// Template configuration applied to every shard. Per shard, the
    /// runtime derives: macro_id_lane/lanes (collision-free macro wire
    /// ids), the seed (offset per shard) and — see below — the scheduler
    /// budget.
    EdmsEngine::Config engine;
    /// When true (default), the template's scheduler budget (time and
    /// iteration caps) is divided by num_shards, holding the *total*
    /// scheduling effort per gate closure constant across shard counts:
    /// N shards each solve a 1/N-sized problem with 1/N of the budget.
    /// Disable to give every shard the full template budget.
    bool divide_scheduler_budget = true;
  };

  explicit ShardedEdmsRuntime(const Config& config);
  ~ShardedEdmsRuntime();

  ShardedEdmsRuntime(const ShardedEdmsRuntime&) = delete;
  ShardedEdmsRuntime& operator=(const ShardedEdmsRuntime&) = delete;

  /// Routes the batch to its shards and negotiates/admits each sub-batch on
  /// the shard's worker, in parallel. Returns the total number accepted, or
  /// the first shard error. Per-shard batches keep the engine's atomic
  /// duplicate handling: a duplicate id rejects its own shard's sub-batch.
  Result<size_t> SubmitOffers(std::span<const flexoffer::FlexOffer> offers,
                              flexoffer::TimeSlice now);

  /// Single-offer convenience over SubmitOffers().
  Status SubmitOffer(const flexoffer::FlexOffer& offer,
                     flexoffer::TimeSlice now);

  /// Advances every shard's control loop to `now` in parallel; shards whose
  /// gate is due aggregate + schedule (or publish) their own partition.
  Status Advance(flexoffer::TimeSlice now);

  /// Delivers the schedule of a forwarded macro offer to the shard that
  /// published it. NotFound when no shard has such a macro pending.
  Status CompleteMacroSchedule(const flexoffer::ScheduledFlexOffer& schedule,
                               flexoffer::TimeSlice now);

  /// Records execution of an assigned offer on the shard that owns it.
  /// NotFound when no shard knows the id.
  Status RecordExecution(flexoffer::FlexOfferId id, flexoffer::TimeSlice now,
                         double energy_kwh);

  /// Appends a raw measurement to the store of the actor's shard.
  void RecordMeasurement(flexoffer::ActorId actor, flexoffer::TimeSlice slice,
                         double energy_kwh);

  /// One metered reading on the bus hot path; `offer_id` != 0 additionally
  /// closes that offer's lifecycle (execution metering).
  struct MeterReading {
    flexoffer::ActorId actor = 0;
    flexoffer::TimeSlice slice = 0;
    double energy_kwh = 0.0;
    flexoffer::FlexOfferId offer_id = 0;
  };

  /// Batch metering: routes each reading to its actor's shard (the shard
  /// that owns the actor's offers) and records all of them in one fork-join
  /// instead of a worker round trip per reading. Execution failures (e.g.
  /// re-metered offers) are dropped, matching the bus adapter's tolerance
  /// of duplicate messages.
  void RecordMeterReadings(std::span<const MeterReading> readings);

  /// Drains every shard's event stream and returns one merged, ordered
  /// batch: ascending EventTime(), ties broken by shard index with each
  /// shard's emission order preserved. For a fixed workload the merged
  /// stream is deterministic regardless of worker interleaving.
  std::vector<Event> PollEvents();

  /// Shard stats summed with EngineStats::Merge().
  EngineStats stats() const;

  size_t num_shards() const { return shards_.size(); }
  /// The engine of shard `i` (read-only; workers are quiescent between
  /// runtime calls).
  const EdmsEngine& shard(size_t i) const;
  /// The shard offers of `owner` route to.
  size_t ShardOf(flexoffer::ActorId owner) const;
  /// True when the shard `offer` routes to has already admitted its id
  /// (used by bus adapters to drop re-sent offers before batching).
  bool HasSeenOffer(const flexoffer::FlexOffer& offer) const;

  const Config& config() const { return config_; }

 private:
  struct Shard;

  /// Enqueues `fn` on shard `i`'s worker; the future joins it.
  std::future<void> Post(size_t i, std::function<void()> fn);
  static void WorkerLoop(Shard* shard);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_SHARDED_RUNTIME_H_
