#ifndef MIRABEL_EDMS_SHARDED_RUNTIME_H_
#define MIRABEL_EDMS_SHARDED_RUNTIME_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "edms/edms_engine.h"
#include "edms/runtime_snapshot.h"
#include "edms/shard_router.h"
#include "edms/worker_pool.h"

namespace mirabel::edms {

/// A partitioned EDMS runtime: N EdmsEngine shards behind one event stream,
/// scheduled on a (shareable) work-stealing WorkerPool.
///
/// The MIRABEL hierarchy absorbs flex-offers from thousands of prosumers per
/// BRP node (paper §2). One single-threaded engine serializes that whole
/// load; the runtime instead partitions prosumers across `num_shards`
/// independent engines (a pluggable ShardRouter maps owner -> shard, owner %
/// N by default) and runs every shard's intake and gate closures as tasks on
/// a per-shard WorkerPool::Strand. Strands keep each engine effectively
/// single-threaded (FIFO, one task at a time) while the pool floats them
/// between workers: an idle worker steals the strand of an overloaded shard
/// instead of idling behind its own, and several runtimes (multi-BRP
/// deployments) share one pool via Config::pool. Each shard streams its
/// events through a lock-free SPSC EventQueue; PollEvents() merges the
/// per-shard streams into one deterministically ordered output (ascending
/// emission slice, ties by shard index, per-shard emission order preserved).
///
/// Intake comes in two modes:
///  - Fork-join (default): SubmitOffers()/Advance() fan the work out to the
///    shard strands, wait for all of them, and return the combined result —
///    the caller observes exactly the single-engine API, and between calls
///    the strands are quiescent, which makes the accessors (stats(),
///    shard(), HasSeenOffer()) safe without locks.
///  - Streaming (Config::streaming_intake): SubmitOffers() pushes routed
///    batches into per-shard lock-free MPSC IntakeQueues and returns
///    immediately with the enqueued count; shard strand tasks drain the
///    queues into the engines, so intake proceeds concurrently with running
///    gates ("intake is never gated on a scheduling pass", paper §3) and
///    from any number of submitter threads. Acceptance/rejection surfaces
///    through the event stream instead of the return value; duplicate ids
///    are dropped at drain time. Advance() still joins (it is the control
///    loop's barrier); the accessors require quiescence — every submitter
///    stopped, then one FlushIntake()/Advance() — before they are safe.
///    Intake is bounded when Config::max_pending_batches_per_shard is set:
///    on overflow, SubmitOffers() either sheds the overflowing sub-batches
///    with OfferRejected{kOverloaded} events (OverloadPolicy::kShed, the
///    default — reject-with-event beats silent OOM at millions of
///    producers) or fails the whole call with ResourceExhausted
///    (OverloadPolicy::kReject).
///
/// Mid-stream observability: Snapshot() returns coherent merged stats and
/// per-shard gauges (intake queue depth, strand task latency, last drain
/// slice) from ANY thread at ANY time — each shard strand republishes its
/// state through a seqlock slot after every task, so snapshots never require
/// quiescence. stats()/shard()/HasSeenOffer() remain the exact, quiescent
/// fast path (see the threading table in docs/architecture.md).
///
/// Threading contract (see also docs/architecture.md): Advance(),
/// CompleteMacroSchedule(), RecordExecution(), RecordMeterReadings(),
/// PollEvents() are single-caller (the control thread). SubmitOffers() is
/// additionally safe from concurrent producer threads in streaming mode.
///
/// Offer ids must be unique per owner across the runtime (true for every
/// id scheme in the repo: owners mint their own namespaced ids). Duplicate
/// detection is per shard — the router keeps an owner's offers on one
/// shard, so resubmissions are still caught.
class ShardedEdmsRuntime {
 public:
  struct Config {
    /// Number of engine shards; 0 is treated as 1. With 1 shard (and no
    /// shared pool, no streaming) the runtime degenerates to a
    /// zero-overhead wrapper: no workers, every call runs inline on the
    /// caller thread against the one engine.
    size_t num_shards = 1;
    /// Owner -> shard placement; null resolves to OwnerModuloRouter().
    ShardRouter router;
    /// Template configuration applied to every shard. Per shard, the
    /// runtime derives: macro_id_lane/lanes (collision-free macro wire
    /// ids), the seed (offset per shard) and — see below — the scheduler
    /// budget.
    EdmsEngine::Config engine;
    /// When true (default), the template's scheduler budget (time and
    /// iteration caps) is divided by num_shards, holding the *total*
    /// scheduling effort per gate closure constant across shard counts:
    /// N shards each solve a 1/N-sized problem with 1/N of the budget.
    /// Disable to give every shard the full template budget.
    bool divide_scheduler_budget = true;
    /// Worker pool to schedule the shard strands on. Null: the runtime
    /// creates a private pool with `num_shards` workers (the
    /// thread-per-shard footprint of the pre-pool runtime). Pass one pool
    /// handle to several runtimes to run a whole multi-BRP deployment on a
    /// fixed worker budget.
    std::shared_ptr<WorkerPool> pool;
    /// Enables streaming intake (see the class comment).
    bool streaming_intake = false;
    /// Streaming mode only: caps each shard's intake queue at this many
    /// pending batches (0 = unbounded, today's behavior). The bound is
    /// enforced approximately — producers racing SubmitOffers() can
    /// transiently overshoot by about the producer count — which is the
    /// right trade for a lock-free hot path; the guarantee is "bounded",
    /// not "exact".
    size_t max_pending_batches_per_shard = 0;
    /// What SubmitOffers() does with a sub-batch whose shard queue is full.
    enum class OverloadPolicy {
      /// Drop the overflowing sub-batch and emit one
      /// OfferRejected{kOverloaded} event per shed offer (counted in
      /// EngineStats::offers_shed). The call still succeeds for the other
      /// shards' sub-batches.
      kShed = 0,
      /// Fail the whole call synchronously with ResourceExhausted before
      /// enqueuing anything (fork-join-style error for callers that prefer
      /// to retry with backoff).
      kReject = 1,
    };
    OverloadPolicy overload_policy = OverloadPolicy::kShed;
    /// Optional shutdown sink: when set, ~ShardedEdmsRuntime writes the
    /// final merged stats here after joining the strands, with
    /// offers_dropped_at_shutdown counting any offers still sitting
    /// undrained in shard intake queues — so offers can't vanish without a
    /// trace when a streaming runtime is torn down mid-stream.
    std::shared_ptr<EngineStats> final_stats;
  };

  explicit ShardedEdmsRuntime(const Config& config);
  ~ShardedEdmsRuntime();

  ShardedEdmsRuntime(const ShardedEdmsRuntime&) = delete;
  ShardedEdmsRuntime& operator=(const ShardedEdmsRuntime&) = delete;

  /// Fork-join mode: routes the batch to its shards, negotiates/admits each
  /// sub-batch on the shard's strand in parallel, and returns the total
  /// number accepted (or the first shard error; a duplicate id rejects its
  /// own shard's sub-batch).
  ///
  /// Streaming mode: enqueues the routed batches and returns the number
  /// *enqueued*; outcomes arrive as OfferAccepted/OfferRejected events and
  /// intake errors surface from the next Advance()/FlushIntake(). Safe to
  /// call from multiple threads concurrently, including while gates run.
  Result<size_t> SubmitOffers(std::span<const flexoffer::FlexOffer> offers,
                              flexoffer::TimeSlice now);

  /// Single-offer convenience over SubmitOffers().
  Status SubmitOffer(const flexoffer::FlexOffer& offer,
                     flexoffer::TimeSlice now);

  /// Advances every shard's control loop to `now` in parallel and joins;
  /// shards whose gate is due drain their pending intake first, then
  /// aggregate + schedule (or publish) their own partition. Returns the
  /// first deferred streaming-intake error, if any, before gate errors.
  Status Advance(flexoffer::TimeSlice now);

  /// Runs every shard's deadline-degradation pass
  /// (EdmsEngine::ExpireDeadlines) and joins, WITHOUT firing gates: expires
  /// stale pipeline offers, forwarded macros whose schedule never returned,
  /// and assigned offers with overdue execution confirmations. Wind-down
  /// phases call this so offers reach terminal lifecycle states even though
  /// no further gates open. Pending streaming intake is drained first so a
  /// late batch cannot be admitted after its deadline check.
  Status ExpireDeadlines(flexoffer::TimeSlice now);

  /// Drains every shard's pending streaming intake and joins, WITHOUT
  /// advancing gates; returns the first deferred intake error. A no-op in
  /// fork-join mode. After it returns (with no concurrent submitters) the
  /// accessors are safe and PollEvents() sees every enqueued outcome.
  Status FlushIntake();

  /// Delivers the schedule of a forwarded macro offer to the shard that
  /// published it. NotFound when no shard has such a macro pending.
  Status CompleteMacroSchedule(const flexoffer::ScheduledFlexOffer& schedule,
                               flexoffer::TimeSlice now);

  /// Records execution of an assigned offer on the shard that owns it.
  /// NotFound when no shard knows the id.
  Status RecordExecution(flexoffer::FlexOfferId id, flexoffer::TimeSlice now,
                         double energy_kwh);

  /// Appends a raw measurement to the store of the actor's shard.
  void RecordMeasurement(flexoffer::ActorId actor, flexoffer::TimeSlice slice,
                         double energy_kwh);

  /// One metered reading on the bus hot path; `offer_id` != 0 additionally
  /// closes that offer's lifecycle (execution metering).
  struct MeterReading {
    flexoffer::ActorId actor = 0;
    flexoffer::TimeSlice slice = 0;
    double energy_kwh = 0.0;
    flexoffer::FlexOfferId offer_id = 0;
  };

  /// Batch metering: routes each reading to its actor's shard (the shard
  /// that owns the actor's offers) and records all of them in one fork-join
  /// instead of a strand round trip per reading. Execution failures (e.g.
  /// re-metered offers) are tolerated — matching the bus adapter's
  /// tolerance of duplicate messages — but counted in
  /// EngineStats::metering_failures so they stay visible.
  void RecordMeterReadings(std::span<const MeterReading> readings);

  /// Drains every shard's event stream and returns one merged, ordered
  /// batch: ascending EventTime(), ties broken by shard index with each
  /// shard's emission order preserved. For a fixed workload the merged
  /// stream is deterministic regardless of worker interleaving. Safe to
  /// call while strand tasks run (it is the SPSC consumer side), but only
  /// from one thread.
  std::vector<Event> PollEvents();

  /// Shard stats summed with EngineStats::Merge(). Exact, but requires
  /// quiescence in streaming mode (see the class comment); for mid-stream
  /// reads use Snapshot().
  EngineStats stats() const;

  /// Lock-free mid-stream observability: merged stats plus per-shard gauges
  /// (intake queue depth, strand task latency, last drain slice), coherent
  /// per shard, callable from ANY thread at ANY time — concurrent
  /// producers, running gates, no quiescence needed. Each shard's slice is
  /// what its strand last published (after its most recent task), so the
  /// merged numbers can trail the engines by the tasks currently in flight;
  /// queue depths are read live.
  RuntimeSnapshot Snapshot() const;

  size_t num_shards() const { return shards_.size(); }
  /// The engine of shard `i` (read-only; requires quiescent strands).
  const EdmsEngine& shard(size_t i) const;
  /// The shard offers of `owner` route to.
  size_t ShardOf(flexoffer::ActorId owner) const;
  /// True when the shard `offer` routes to has already admitted its id
  /// (used by bus adapters to drop re-sent offers before batching).
  /// Requires quiescent strands.
  bool HasSeenOffer(const flexoffer::FlexOffer& offer) const;

  /// The pool the shard strands run on (the configured handle, or the
  /// runtime's private pool); null in the inline single-shard deployment.
  /// Share it with further runtimes via Config::pool.
  const std::shared_ptr<WorkerPool>& pool() const { return pool_; }

  const Config& config() const { return config_; }

 private:
  struct Shard;

  /// Runs `fn` serialized with shard `i`'s tasks: inline when the runtime
  /// has no pool, else posted on the strand and joined.
  void RunOnShard(size_t i, std::function<void()> fn);
  /// Strand context only: drains shard `i`'s intake queue into its engine.
  void DrainShardIntake(Shard& shard);
  /// Posts a fire-and-forget intake drain for shard `i`.
  void ScheduleIntakeDrain(size_t i);
  /// Strand context only: records one deferred intake error (counter +
  /// first-error-wins Status + capped logging).
  void NoteIntakeError(Shard& shard, const Status& status);
  /// Strand context only: folds `elapsed_s` into the shard's task gauges
  /// and republishes its snapshot slot.
  void FinishShardTask(Shard& shard, double elapsed_s);
  /// Sheds one routed sub-batch: counts it and queues the per-offer
  /// OfferRejected{kOverloaded} events for the next PollEvents(). Safe from
  /// any producer thread.
  void ShedBucket(std::vector<flexoffer::FlexOffer> bucket,
                  flexoffer::TimeSlice now);

  Config config_;
  /// Declared before shards_ so the strands (inside shards_) are destroyed
  /// while the pool is still alive.
  std::shared_ptr<WorkerPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Offers shed under OverloadPolicy::kShed (runtime-level: shed offers
  /// never reach a shard engine). Added into stats()/Snapshot() merges.
  std::atomic<int64_t> shed_offers_{0};
  /// Pending OfferRejected{kOverloaded} events from producer-side sheds,
  /// merged into the next PollEvents() drain. Mutex-guarded: this is the
  /// overload slow path, not the hot path.
  std::mutex shed_events_mu_;
  std::vector<Event> shed_events_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_SHARDED_RUNTIME_H_
