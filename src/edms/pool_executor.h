#ifndef MIRABEL_EDMS_POOL_EXECUTOR_H_
#define MIRABEL_EDMS_POOL_EXECUTOR_H_

#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "edms/worker_pool.h"
#include "scheduling/portfolio_scheduler.h"

namespace mirabel::edms {

/// Runs a portfolio race's members as strands of a shared WorkerPool instead
/// of spawning one thread per member: each task gets its own strand (tasks
/// are independent, so serialization per strand costs nothing) and the
/// work-stealing pool spreads the strands across its workers alongside
/// whatever gate processing is in flight.
///
/// Deadlock contract: RunAll blocks on the posted futures, so a
/// PortfolioScheduler wired to this executor must NOT be invoked from one of
/// the pool's own worker threads — with every worker blocked inside RunAll
/// nobody is left to run the members. EdmsEngine drives schedulers from its
/// gate-close path (off-pool), which satisfies this; see
/// tests/portfolio_scheduler_test.cc for the wiring.
class WorkerPoolExecutor : public scheduling::PortfolioScheduler::Executor {
 public:
  /// `pool` must outlive the executor and every RunAll call.
  explicit WorkerPoolExecutor(WorkerPool* pool) : pool_(pool) {}

  void RunAll(std::vector<std::function<void()>> tasks) override {
    std::vector<std::unique_ptr<WorkerPool::Strand>> strands;
    std::vector<std::future<void>> futures;
    strands.reserve(tasks.size());
    futures.reserve(tasks.size());
    for (auto& task : tasks) {
      strands.push_back(pool_->CreateStrand());
      futures.push_back(strands.back()->Post(std::move(task)));
    }
    for (auto& future : futures) future.get();
  }

 private:
  WorkerPool* pool_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_POOL_EXECUTOR_H_
