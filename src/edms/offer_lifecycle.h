#ifndef MIRABEL_EDMS_OFFER_LIFECYCLE_H_
#define MIRABEL_EDMS_OFFER_LIFECYCLE_H_

#include <cstddef>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "flexoffer/flex_offer.h"

namespace mirabel::edms {

/// States of the flex-offer life cycle driven by the EDMS Control component
/// (paper §2/§3): an offer is issued, negotiated, aggregated into a macro
/// offer, scheduled, the schedule is assigned back to the owner, and the
/// owner executes it. Rejection, execution and expiry are terminal.
enum class OfferState {
  /// Issued, awaiting the negotiation decision.
  kOffered = 0,
  /// Negotiation agreed; the offer sits in the aggregation pipeline.
  kAccepted = 1,
  /// Negotiation rejected (terminal; the prosumer keeps its tariff).
  kRejected = 2,
  /// Claimed by a macro offer at a gate closure.
  kAggregated = 3,
  /// The macro offer containing it has a schedule.
  kScheduled = 4,
  /// The disaggregated member schedule was assigned to the owner.
  kAssigned = 5,
  /// The owner executed the assigned schedule (terminal).
  kExecuted = 6,
  /// Timed out anywhere before execution; the owner falls back to the open
  /// contract (terminal).
  kExpired = 7,
};

inline constexpr int kNumOfferStates = 8;

std::string_view ToString(OfferState state);

/// True for states with no outgoing transitions.
bool IsTerminal(OfferState state);

/// The legal transition relation:
///   kOffered    -> kAccepted | kRejected | kExpired
///   kAccepted   -> kAggregated | kExpired
///   kAggregated -> kScheduled | kExpired
///   kScheduled  -> kAssigned | kExpired
///   kAssigned   -> kExecuted | kExpired
/// Everything else — including self-transitions and any move out of a
/// terminal state — is illegal.
bool TransitionAllowed(OfferState from, OfferState to);

/// Tracks the lifecycle state of every offer an engine has seen and enforces
/// the transition relation: illegal moves return FailedPrecondition and leave
/// the state untouched.
class OfferLifecycle {
 public:
  /// Admits `id` in kOffered; AlreadyExists for known ids.
  Status Begin(flexoffer::FlexOfferId id);

  /// Moves `id` to `to`. NotFound for unknown ids, FailedPrecondition for
  /// illegal transitions. Returns the previous state on success.
  Result<OfferState> Transition(flexoffer::FlexOfferId id, OfferState to);

  /// Current state of `id`; NotFound when never admitted.
  Result<OfferState> StateOf(flexoffer::FlexOfferId id) const;

  /// Number of tracked offers currently in `state`.
  size_t CountInState(OfferState state) const;

  size_t size() const { return states_.size(); }

 private:
  std::unordered_map<flexoffer::FlexOfferId, OfferState> states_;
  size_t counts_[kNumOfferStates] = {};
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_OFFER_LIFECYCLE_H_
