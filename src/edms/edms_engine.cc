#include "edms/edms_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/robust_scheduler.h"
#include "scheduling/scheduling_problem.h"
#include "scheduling/stochastic_evaluator.h"

namespace mirabel::edms {

using aggregation::AggregatedFlexOffer;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

EngineStats& EngineStats::Merge(const EngineStats& other) {
  // Destructuring both sides pins the member count at compile time: adding a
  // field to EngineStats without extending these bindings fails to build.
  // The size guard additionally catches same-count layout changes.
  static_assert(sizeof(EngineStats) == 29 * sizeof(int64_t),
                "EngineStats layout changed: update Merge()");
  auto& [received, batches, accepted, rejected, runs, macros, micros, expired,
         executed, payments, imb_before, imb_after, cost, budget_saved,
         intake_errs, metering_fails, shed, dropped, macros_expired,
         exec_timeouts, wins_greedy, wins_ea, wins_hybrid, wins_bnb, proven,
         rob_runs, rob_evals, rob_expected, rob_cvar] = *this;
  const auto& [o_received, o_batches, o_accepted, o_rejected, o_runs, o_macros,
               o_micros, o_expired, o_executed, o_payments, o_imb_before,
               o_imb_after, o_cost, o_budget_saved, o_intake_errs,
               o_metering_fails, o_shed, o_dropped, o_macros_expired,
               o_exec_timeouts, o_wins_greedy, o_wins_ea, o_wins_hybrid,
               o_wins_bnb, o_proven, o_rob_runs, o_rob_evals, o_rob_expected,
               o_rob_cvar] = other;
  received += o_received;
  batches += o_batches;
  accepted += o_accepted;
  rejected += o_rejected;
  runs += o_runs;
  macros += o_macros;
  micros += o_micros;
  expired += o_expired;
  executed += o_executed;
  payments += o_payments;
  imb_before += o_imb_before;
  imb_after += o_imb_after;
  cost += o_cost;
  budget_saved += o_budget_saved;
  intake_errs += o_intake_errs;
  metering_fails += o_metering_fails;
  shed += o_shed;
  dropped += o_dropped;
  macros_expired += o_macros_expired;
  exec_timeouts += o_exec_timeouts;
  wins_greedy += o_wins_greedy;
  wins_ea += o_wins_ea;
  wins_hybrid += o_wins_hybrid;
  wins_bnb += o_wins_bnb;
  proven += o_proven;
  rob_runs += o_rob_runs;
  rob_evals += o_rob_evals;
  rob_expected += o_rob_expected;
  rob_cvar += o_rob_cvar;
  return *this;
}

EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs) {
  return lhs.Merge(rhs);
}

EngineStats operator+(EngineStats lhs, const EngineStats& rhs) {
  lhs.Merge(rhs);
  return lhs;
}

EdmsEngine::EdmsEngine(const Config& config)
    : config_(config),
      negotiator_(config.negotiation),
      pipeline_(config.aggregation) {
  if (!config_.scheduler_factory) {
    config_.scheduler_factory = DefaultSchedulerFactory();
  }
  if (config_.baseline == nullptr) {
    config_.baseline = std::make_shared<ZeroBaselineProvider>();
  }
}

Result<size_t> EdmsEngine::SubmitOffers(std::span<const FlexOffer> offers,
                                        TimeSlice now) {
  if (offers.empty()) return size_t{0};

  // Phase 0: reject duplicate ids up front, before any state mutates —
  // aborting mid-batch would strand the earlier offers in kOffered.
  std::unordered_set<FlexOfferId> batch_ids;
  batch_ids.reserve(offers.size());
  for (const FlexOffer& offer : offers) {
    if (lifecycle_.StateOf(offer.id).ok() ||
        !batch_ids.insert(offer.id).second) {
      return Status::AlreadyExists("offer " + std::to_string(offer.id) +
                                   " was already submitted");
    }
  }
  ++stats_.submit_batches;

  // Phase 1: admit. Validation and negotiation decide per offer; the agreed
  // ones are collected for one batch pipeline insertion.
  std::vector<FlexOffer> admitted;
  std::vector<double> prices;
  admitted.reserve(offers.size());
  prices.reserve(offers.size());
  for (const FlexOffer& offer : offers) {
    ++stats_.offers_received;
    MIRABEL_RETURN_IF_ERROR(lifecycle_.Begin(offer.id));
    double price = 0.0;
    bool agreed = offer.Validate().ok();
    if (agreed && config_.negotiate) {
      negotiation::NegotiationOutcome outcome =
          negotiator_.Negotiate(offer, /*reservation_price_eur=*/0.0);
      agreed = outcome.decision ==
               negotiation::NegotiationOutcome::Decision::kAgreed;
      price = outcome.agreed_price_eur;
    }
    if (!agreed) {
      ++stats_.offers_rejected;
      MIRABEL_RETURN_IF_ERROR(
          lifecycle_.Transition(offer.id, OfferState::kRejected).status());
      events_.Push(OfferRejected{offer.id, offer.owner, now});
      continue;
    }
    admitted.push_back(offer);
    prices.push_back(price);
  }
  if (admitted.empty()) return size_t{0};

  // Phase 2: one batch insertion. Offers are pre-validated and id-unique
  // (the lifecycle admitted them), so failures here are engine bugs.
  MIRABEL_RETURN_IF_ERROR(pipeline_.Insert(std::span<const FlexOffer>(admitted)));

  // Phase 3: bookkeeping + events for the accepted offers.
  for (size_t i = 0; i < admitted.size(); ++i) {
    const FlexOffer& offer = admitted[i];
    ++stats_.offers_accepted;
    stats_.payments_eur += prices[i];
    (void)store_.PutFlexOffer(offer);
    (void)store_.TransitionFlexOffer(offer.id,
                                     storage::FlexOfferState::kAccepted);
    (void)store_.SetAgreedPrice(offer.id, prices[i]);
    MIRABEL_RETURN_IF_ERROR(
        lifecycle_.Transition(offer.id, OfferState::kAccepted).status());
    events_.Push(OfferAccepted{offer.id, offer.owner, now, prices[i]});
  }
  return admitted.size();
}

Status EdmsEngine::SubmitOffer(const FlexOffer& offer, TimeSlice now) {
  return SubmitOffers(std::span<const FlexOffer>(&offer, 1), now).status();
}

Status EdmsEngine::Advance(TimeSlice now) {
  if (last_gate_ >= 0 && now - last_gate_ < config_.gate_period) {
    return Status::OK();
  }
  last_gate_ = now;
  return RunGate(now);
}

void EdmsEngine::ExpireDeadlines(TimeSlice now) {
  (void)pipeline_.Flush();
  const TimeSlice horizon_start = now + 1;

  // (a) Pipeline offers whose window already closed: the macro deadline is
  // the earliest member deadline — past it, members have already fallen
  // back to their contracts.
  std::vector<std::pair<FlexOfferId, flexoffer::ActorId>> expired_members;
  for (const auto& [aid, agg] : pipeline_.aggregates()) {
    if (agg.macro.assignment_before <= now ||
        agg.macro.latest_start < horizon_start) {
      for (const auto& m : agg.members) {
        expired_members.emplace_back(m.offer.id, m.offer.owner);
      }
    }
  }
  for (const auto& [id, owner] : expired_members) {
    (void)pipeline_.Remove(id);
    (void)store_.TransitionFlexOffer(id, storage::FlexOfferState::kExpired);
    (void)lifecycle_.Transition(id, OfferState::kExpired);
    ++stats_.offers_expired_in_pipeline;
    events_.Push(OfferExpired{id, owner, now});
  }
  if (!expired_members.empty()) (void)pipeline_.Flush();

  // (b) Forwarded macros whose schedule never returned from the parent
  // level (lost reply, parent blackout): expire the members instead of
  // stranding them. Ids are sorted so the event order is canonical.
  std::vector<FlexOfferId> stale_macros;
  for (const auto& [id, agg] : pending_macros_) {
    if (agg.macro.assignment_before <= now) stale_macros.push_back(id);
  }
  std::sort(stale_macros.begin(), stale_macros.end());
  for (FlexOfferId macro_id : stale_macros) {
    auto it = pending_macros_.find(macro_id);
    for (const auto& m : it->second.members) {
      (void)store_.TransitionFlexOffer(m.offer.id,
                                       storage::FlexOfferState::kExpired);
      (void)lifecycle_.Transition(m.offer.id, OfferState::kExpired);
      ++stats_.offers_expired_in_pipeline;
      events_.Push(OfferExpired{m.offer.id, m.offer.owner, now});
    }
    ++stats_.macros_expired_unscheduled;
    events_.Push(MacroExpired{macro_id, now, it->second.members.size()});
    pending_macros_.erase(it);
  }

  // (c) Assigned offers whose execution confirmation is overdue: the
  // metering was lost (or the owner is gone) — close the lifecycle so
  // bookkeeping cannot leak. A late metering then fails its transition and
  // is tolerated as a metering_failure, so there is exactly one terminal
  // event per offer.
  if (config_.execution_timeout_slices > 0) {
    for (const auto& fact :
         store_.FlexOffersInState(storage::FlexOfferState::kScheduled)) {
      TimeSlice end = fact.schedule.start +
                      static_cast<int64_t>(fact.schedule.energies_kwh.size());
      if (end + config_.execution_timeout_slices > now) continue;
      if (!lifecycle_.Transition(fact.id, OfferState::kExpired).ok()) continue;
      (void)store_.TransitionFlexOffer(fact.id,
                                       storage::FlexOfferState::kExpired);
      ++stats_.executions_timed_out;
      events_.Push(OfferExpired{fact.id, fact.offer.owner, now});
    }
  }
}

Status EdmsEngine::RunGate(TimeSlice now) {
  ExpireDeadlines(now);

  const TimeSlice horizon_start = now + 1;
  const TimeSlice horizon_end = horizon_start + config_.horizon;

  std::vector<AggregatedFlexOffer> ready;
  for (const auto& [aid, agg] : pipeline_.aggregates()) {
    if (agg.macro.earliest_start >= horizon_start &&
        agg.macro.LatestEnd() <= horizon_end) {
      ready.push_back(agg);
    }
    // Otherwise the aggregate waits for a later gate.
  }

  if (ready.empty()) {
    return Status::OK();
  }

  // Claim the scheduled-now offers: remove members from the pipeline and
  // keep the aggregate snapshots for disaggregation.
  for (const auto& agg : ready) {
    for (const auto& m : agg.members) {
      (void)pipeline_.Remove(m.offer.id);
      (void)store_.TransitionFlexOffer(m.offer.id,
                                       storage::FlexOfferState::kAggregated);
      MIRABEL_RETURN_IF_ERROR(
          lifecycle_.Transition(m.offer.id, OfferState::kAggregated)
              .status());
    }
  }
  (void)pipeline_.Flush();

  if (!config_.schedule_locally) {
    // Publish macro offers for higher-level aggregation and scheduling.
    for (const auto& agg : ready) {
      FlexOffer macro = agg.macro;
      // The intra-actor index must stay below the per-actor stride, or the
      // wire id would alias the next actor's range at the parent level.
      // Laned ids divide the headroom by the lane count, so guard it: a
      // shard burning through 1e6 / lanes aggregate ids is a deployment
      // that needs a wider id scheme, not silent mis-routing.
      uint64_t intra_actor =
          agg.macro.id * config_.macro_id_lanes + config_.macro_id_lane;
      if (intra_actor >= 1000000ULL) {
        MIRABEL_LOG(kError) << "macro id space exhausted (aggregate "
                            << agg.macro.id << " x " << config_.macro_id_lanes
                            << " lanes); expiring its members";
        for (const auto& m : agg.members) {
          (void)store_.TransitionFlexOffer(m.offer.id,
                                           storage::FlexOfferState::kExpired);
          (void)lifecycle_.Transition(m.offer.id, OfferState::kExpired);
          ++stats_.offers_expired_in_pipeline;
          events_.Push(OfferExpired{m.offer.id, m.offer.owner, now});
        }
        continue;
      }
      macro.id = config_.actor * 1000000ULL + intra_actor;
      macro.owner = config_.actor;
      // The snapshot must carry the wire id so the returning schedule
      // validates against it at disaggregation time.
      AggregatedFlexOffer snapshot = agg;
      snapshot.macro.id = macro.id;
      snapshot.macro.owner = config_.actor;
      pending_macros_.emplace(macro.id, std::move(snapshot));
      events_.Push(
          MacroPublished{std::move(macro), now, agg.members.size(), true});
    }
    return Status::OK();
  }

  return ScheduleLocally(now, ready);
}

Status EdmsEngine::ScheduleLocally(
    TimeSlice now, const std::vector<AggregatedFlexOffer>& macros) {
  Status st = ScheduleClaimed(now, macros);
  if (!st.ok()) {
    // The members were already claimed out of the pipeline; close their
    // lifecycles so the owners fall back to their contracts instead of
    // waiting on a schedule that can no longer arrive.
    for (const auto& agg : macros) {
      for (const auto& m : agg.members) {
        (void)store_.TransitionFlexOffer(m.offer.id,
                                         storage::FlexOfferState::kExpired);
        (void)lifecycle_.Transition(m.offer.id, OfferState::kExpired);
        ++stats_.offers_expired_in_pipeline;
        events_.Push(OfferExpired{m.offer.id, m.offer.owner, now});
      }
    }
  }
  return st;
}

Status EdmsEngine::ScheduleClaimed(
    TimeSlice now, const std::vector<AggregatedFlexOffer>& macros) {
  const TimeSlice horizon_start = now + 1;
  scheduling::SchedulingProblem problem;
  problem.horizon_start = horizon_start;
  problem.horizon_length = config_.horizon;
  size_t h = static_cast<size_t>(config_.horizon);
  MIRABEL_ASSIGN_OR_RETURN(
      problem.baseline_imbalance_kwh,
      config_.baseline->Baseline(horizon_start, config_.horizon));
  problem.imbalance_penalty_eur.resize(h);
  problem.market.buy_price_eur.assign(h, config_.buy_price_eur);
  problem.market.sell_price_eur.assign(h, config_.sell_price_eur);
  problem.market.max_buy_kwh = config_.max_buy_kwh;
  problem.market.max_sell_kwh = config_.max_sell_kwh;
  for (size_t s = 0; s < h; ++s) {
    size_t t = static_cast<size_t>(horizon_start) + s;
    int slice_of_day = flexoffer::SliceOfDay(static_cast<TimeSlice>(t));
    bool evening_peak = slice_of_day >= 68 && slice_of_day <= 84;  // 17-21 h
    problem.imbalance_penalty_eur[s] =
        config_.penalty_eur_per_kwh * (evening_peak ? 3.0 : 1.0);
  }
  problem.offers.reserve(macros.size());
  for (const auto& agg : macros) problem.offers.push_back(agg.macro);

  std::unique_ptr<scheduling::Scheduler> scheduler =
      config_.scheduler_factory();
  if (scheduler == nullptr) {
    return Status::Internal("scheduler factory returned nullptr");
  }
  // Uncertainty-aware gate: bootstrap a forecast-error ensemble from the
  // fitted residual pool (seeded per gate, so reruns of the same engine
  // timeline reproduce bit-identically) and wrap the configured scheduler
  // in a robust re-ranking pass.
  if (config_.ensemble_scenarios > 0 && config_.forecast_residuals != nullptr &&
      !config_.forecast_residuals->empty()) {
    MIRABEL_ASSIGN_OR_RETURN(
        scheduling::ScenarioEnsemble ensemble,
        scheduling::ScenarioEnsemble::FromResidualPool(
            *config_.forecast_residuals, config_.horizon,
            config_.ensemble_scenarios,
            config_.seed + static_cast<uint64_t>(now)));
    scheduling::RobustScheduler::Config robust_config;
    robust_config.inner_factory = config_.scheduler_factory;
    robust_config.ensemble = std::move(ensemble);
    robust_config.cvar_alpha = config_.ensemble_cvar_alpha;
    robust_config.risk_weight = config_.ensemble_risk_weight;
    robust_config.executor = config_.ensemble_executor;
    scheduler = std::make_unique<scheduling::RobustScheduler>(
        std::move(robust_config));
  }
  // One compile serves the whole gate: the scheduler run (all its restarts
  // and, for Hybrid, both phases), the imbalance accounting and the
  // macro-schedule export below. Validate() here preserves the check the
  // schedulers' Run() entry points used to apply.
  MIRABEL_RETURN_IF_ERROR(problem.Validate());
  scheduling::CompiledProblem compiled(problem);
  scheduling::SchedulerOptions options;
  options.time_budget_s = config_.scheduler_budget_s;
  if (config_.scale_budget_with_problem_size) {
    options.time_budget_s = ScaledTimeBudget(
        config_.scheduler_budget_s, problem.offers.size(), config_.horizon,
        config_.budget_reference_work, /*min_fraction=*/0.02);
    stats_.budget_saved_s += config_.scheduler_budget_s - options.time_budget_s;
  }
  options.max_iterations = config_.scheduler_max_iterations;
  options.seed = config_.seed + static_cast<uint64_t>(now);
  options.fast_math = config_.scheduler_fast_math;
  MIRABEL_ASSIGN_OR_RETURN(scheduling::SchedulingResult run,
                           scheduler->RunCompiled(compiled, options));
  ++stats_.scheduling_runs;
  stats_.schedule_cost_eur += run.cost.total();
  if (run.optimal_proven) ++stats_.bnb_optimal_proven;
  if (run.robust.has_value()) {
    ++stats_.robust_runs;
    stats_.robust_scenario_evaluations +=
        static_cast<int64_t>(run.robust->candidates) * run.robust->scenarios;
    stats_.robust_expected_cost_eur += run.robust->expected_cost_eur;
    stats_.robust_cvar_eur += run.robust->cvar_eur;
  }
  for (const scheduling::PortfolioMemberStats& member : run.portfolio) {
    if (!member.won) continue;
    if (member.name == "GreedySearch") ++stats_.portfolio_wins_greedy;
    if (member.name == "EvolutionaryAlgorithm") ++stats_.portfolio_wins_ea;
    if (member.name == "Hybrid") ++stats_.portfolio_wins_hybrid;
    if (member.name == "BranchAndBound") ++stats_.portfolio_wins_bnb;
  }
  for (const auto& agg : macros) {
    events_.Push(MacroPublished{agg.macro, now, agg.members.size(),
                                     /*forwarded=*/false});
  }

  // Imbalance accounting: "before" is the unmanaged placement — every offer
  // at its fallback position (earliest start, full energy), which is exactly
  // the scheduling kernel's default schedule — versus the optimised
  // schedule. The gate's shared compiled problem and one workspace serve
  // both sweeps and the macro-schedule export.
  scheduling::ScheduleWorkspace workspace(compiled);
  for (size_t s = 0; s < h; ++s) {
    stats_.imbalance_before_kwh += std::fabs(workspace.net_kwh()[s]);
  }
  (void)workspace.SetSchedule(compiled, run.schedule);
  for (size_t s = 0; s < h; ++s) {
    stats_.imbalance_after_kwh += std::fabs(workspace.net_kwh()[s]);
  }

  std::vector<ScheduledFlexOffer> macro_schedules =
      workspace.ExportScheduledOffers(compiled);
  for (size_t i = 0; i < macros.size(); ++i) {
    ++stats_.macros_scheduled;
    Status st = EmitMemberSchedules(now, macros[i], macro_schedules[i]);
    if (!st.ok()) {
      MIRABEL_LOG(kError) << "disaggregation failed: " << st;
    }
  }
  return Status::OK();
}

Status EdmsEngine::CompleteMacroSchedule(const ScheduledFlexOffer& schedule,
                                         TimeSlice now) {
  auto it = pending_macros_.find(schedule.offer_id);
  if (it == pending_macros_.end()) {
    return Status::NotFound("no pending macro offer " +
                            std::to_string(schedule.offer_id));
  }
  // On failure (e.g. a schedule violating the macro's constraints) the
  // snapshot stays pending so a corrected schedule can still land.
  MIRABEL_RETURN_IF_ERROR(EmitMemberSchedules(now, it->second, schedule));
  ++stats_.macros_scheduled;
  pending_macros_.erase(it);
  return Status::OK();
}

Status EdmsEngine::EmitMemberSchedules(
    TimeSlice now, const AggregatedFlexOffer& agg,
    const ScheduledFlexOffer& macro_schedule) {
  MIRABEL_ASSIGN_OR_RETURN(std::vector<ScheduledFlexOffer> members,
                           aggregation::Disaggregate(agg, macro_schedule));
  for (size_t i = 0; i < members.size(); ++i) {
    const ScheduledFlexOffer& schedule = members[i];
    (void)store_.AttachSchedule(schedule);
    (void)lifecycle_.Transition(schedule.offer_id, OfferState::kScheduled);
    (void)lifecycle_.Transition(schedule.offer_id, OfferState::kAssigned);
    ++stats_.micro_schedules_sent;
    events_.Push(
        ScheduleAssigned{agg.members[i].offer.owner, now, schedule});
  }
  return Status::OK();
}

Status EdmsEngine::RecordExecution(FlexOfferId id, TimeSlice now,
                                   double energy_kwh) {
  MIRABEL_ASSIGN_OR_RETURN(const storage::FlexOfferFact* fact,
                           store_.FindFlexOffer(id));
  flexoffer::ActorId owner = fact->offer.owner;
  MIRABEL_RETURN_IF_ERROR(
      lifecycle_.Transition(id, OfferState::kExecuted).status());
  (void)store_.TransitionFlexOffer(id, storage::FlexOfferState::kExecuted);
  ++stats_.offers_executed;
  events_.Push(OfferExecuted{id, owner, now, energy_kwh});
  return Status::OK();
}

void EdmsEngine::RecordMeasurement(flexoffer::ActorId actor, TimeSlice slice,
                                   double energy_kwh) {
  store_.AppendMeasurement(actor, slice, storage::EnergyType::kConsumption,
                           energy_kwh);
}

std::vector<Event> EdmsEngine::PollEvents() { return events_.DrainAll(); }

}  // namespace mirabel::edms
