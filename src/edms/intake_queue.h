#ifndef MIRABEL_EDMS_INTAKE_QUEUE_H_
#define MIRABEL_EDMS_INTAKE_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "flexoffer/flex_offer.h"
#include "flexoffer/time_slice.h"

namespace mirabel::edms {

/// One routed intake batch: the offers bound for one shard, stamped with the
/// submission slice the caller passed to SubmitOffers().
struct IntakeBatch {
  std::vector<flexoffer::FlexOffer> offers;
  flexoffer::TimeSlice now = 0;
  /// Monotonic (steady_clock) nanosecond stamp taken at enqueue time; the
  /// drain measures enqueue→drain queue wait from it (a latency gauge in
  /// the runtime's mid-stream snapshots). 0 = unstamped.
  int64_t enqueue_ns = 0;
};

/// Unbounded lock-free multi-producer / single-consumer intake queue — the
/// offer-side counterpart of the SPSC EventQueue.
///
/// This is what makes streaming intake possible: any number of submitter
/// threads push routed batches into a shard's queue without blocking, while
/// the shard's strand task (the single consumer, running on a WorkerPool
/// worker) drains them into the engine — even while that same shard's gate
/// is advancing. Intake is never gated on a scheduling pass.
///
/// The structure is a Vyukov-style intrusive linked queue: producers link
/// nodes with one atomic exchange on the tail (wait-free for each producer);
/// the consumer walks the next pointers from the head stub. A producer that
/// has exchanged the tail but not yet published its `next` pointer makes
/// later nodes momentarily unreachable; the runtime schedules a drain task
/// after every push, so such batches are picked up by the next drain.
///
/// Contract: any thread may call Push(); at most one thread calls
/// Pop()/Drain() at any moment.
class IntakeQueue {
 public:
  IntakeQueue() {
    Node* stub = new Node();
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }

  ~IntakeQueue() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  IntakeQueue(const IntakeQueue&) = delete;
  IntakeQueue& operator=(const IntakeQueue&) = delete;

  /// Producer side: appends one batch. Never blocks; safe from any number
  /// of threads concurrently.
  void Push(IntakeBatch batch) {
    // Counted before the node is linked so a concurrent bound check can
    // only over-estimate the depth, never under-estimate it.
    depth_.fetch_add(1, std::memory_order_relaxed);
    Node* node = new Node(std::move(batch));
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    // Publishes the node (and its payload) to the consumer.
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side: moves the oldest published batch into `out`. Returns
  /// false when no batch is reachable (empty, or a producer is mid-link).
  bool Pop(IntakeBatch* out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    *out = std::move(next->batch);
    delete head_;
    head_ = next;  // the popped node becomes the new stub
    depth_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate number of batches currently queued (pushed, not yet
  /// popped). Readable from any thread; momentarily over-counts while a
  /// producer is between the counter bump and the link, which is the safe
  /// direction for the runtime's bounded-intake check and depth gauge.
  int64_t ApproxDepth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Consumer side: pops every reachable batch into `out` (appending) and
  /// returns how many were drained.
  size_t Drain(std::vector<IntakeBatch>* out) {
    size_t drained = 0;
    IntakeBatch batch;
    while (Pop(&batch)) {
      out->push_back(std::move(batch));
      ++drained;
    }
    return drained;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(IntakeBatch b) : batch(std::move(b)) {}
    IntakeBatch batch;
    std::atomic<Node*> next{nullptr};
  };

  /// Producer end; producers exchange this to link themselves.
  std::atomic<Node*> tail_;
  /// Consumer-owned stub; its payload is already consumed (or empty).
  Node* head_;
  /// Approximate pushed-minus-popped batch count (see ApproxDepth()).
  std::atomic<int64_t> depth_{0};
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_INTAKE_QUEUE_H_
