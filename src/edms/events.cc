#include "edms/events.h"

namespace mirabel::edms {

namespace {

struct NameVisitor {
  std::string_view operator()(const OfferAccepted&) { return "OfferAccepted"; }
  std::string_view operator()(const OfferRejected&) { return "OfferRejected"; }
  std::string_view operator()(const MacroPublished&) {
    return "MacroPublished";
  }
  std::string_view operator()(const ScheduleAssigned&) {
    return "ScheduleAssigned";
  }
  std::string_view operator()(const OfferExecuted&) { return "OfferExecuted"; }
  std::string_view operator()(const OfferExpired&) { return "OfferExpired"; }
  std::string_view operator()(const MacroExpired&) { return "MacroExpired"; }
};

}  // namespace

std::string_view EventName(const Event& event) {
  return std::visit(NameVisitor{}, event);
}

flexoffer::TimeSlice EventTime(const Event& event) {
  return std::visit([](const auto& e) { return e.at; }, event);
}

}  // namespace mirabel::edms
