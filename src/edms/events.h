#ifndef MIRABEL_EDMS_EVENTS_H_
#define MIRABEL_EDMS_EVENTS_H_

#include <string_view>
#include <variant>

#include "flexoffer/flex_offer.h"

namespace mirabel::edms {

/// Typed events emitted by EdmsEngine and drained via PollEvents(). Each
/// event marks one lifecycle edge of one offer; consumers (nodes, examples,
/// benches) translate them into wire messages or reporting.

/// Negotiation agreed; the offer entered the aggregation pipeline.
struct OfferAccepted {
  flexoffer::FlexOfferId offer = 0;
  flexoffer::ActorId owner = 0;
  flexoffer::TimeSlice at = 0;
  /// Flexibility price promised to the owner (EUR).
  double agreed_price_eur = 0.0;
};

/// Why an offer was turned down. kNegotiation is the engine's decision
/// (validation or pricing); kOverloaded is the sharded runtime shedding
/// intake under a bounded queue (ShardedEdmsRuntime::Config::
/// max_pending_batches_per_shard) — the offer never reached an engine.
enum class RejectReason { kNegotiation = 0, kOverloaded = 1 };

/// Negotiation (or intake validation / overload shedding) turned the offer
/// down.
struct OfferRejected {
  flexoffer::FlexOfferId offer = 0;
  flexoffer::ActorId owner = 0;
  flexoffer::TimeSlice at = 0;
  RejectReason reason = RejectReason::kNegotiation;
};

/// A gate closure produced a macro (aggregated) offer. In local-scheduling
/// mode this precedes the ScheduleAssigned events of its members; in
/// forwarding mode `macro` must be sent to the parent EDMS level and its
/// schedule returned via CompleteMacroSchedule().
struct MacroPublished {
  flexoffer::FlexOffer macro;
  flexoffer::TimeSlice at = 0;
  size_t member_count = 0;
  /// True when the engine expects the schedule from a higher level.
  bool forwarded = false;
};

/// A member offer received its disaggregated schedule.
struct ScheduleAssigned {
  flexoffer::ActorId owner = 0;
  flexoffer::TimeSlice at = 0;
  flexoffer::ScheduledFlexOffer schedule;
};

/// The owner reported execution of its assigned schedule.
struct OfferExecuted {
  flexoffer::FlexOfferId offer = 0;
  flexoffer::ActorId owner = 0;
  flexoffer::TimeSlice at = 0;
  double energy_kwh = 0.0;
};

/// The offer timed out before a schedule could be assigned; the owner falls
/// back to the open contract.
struct OfferExpired {
  flexoffer::FlexOfferId offer = 0;
  flexoffer::ActorId owner = 0;
  flexoffer::TimeSlice at = 0;
};

/// Degradation event: a forwarded macro offer missed its reply deadline —
/// the parent level never returned a schedule — and the engine expired its
/// members (each also emits OfferExpired). The run degrades to the
/// traditional setting instead of stranding the members (paper §1).
struct MacroExpired {
  /// Wire id of the published macro.
  flexoffer::FlexOfferId macro = 0;
  flexoffer::TimeSlice at = 0;
  size_t member_count = 0;
};

using Event =
    std::variant<OfferAccepted, OfferRejected, MacroPublished,
                 ScheduleAssigned, OfferExecuted, OfferExpired, MacroExpired>;

/// Short event-kind name ("OfferAccepted", ...), for logs and tests.
std::string_view EventName(const Event& event);

/// Slice at which the event was emitted (the `at` of any alternative). The
/// sharded runtime merges per-shard streams into one ordered output on this
/// key.
flexoffer::TimeSlice EventTime(const Event& event);

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_EVENTS_H_
