#include "edms/scheduler_registry.h"

#include <utility>

#include "scheduling/bnb_scheduler.h"
#include "scheduling/portfolio_scheduler.h"
#include "scheduling/robust_scheduler.h"

namespace mirabel::edms {

SchedulerRegistry& SchedulerRegistry::Default() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    (void)r->Register("GreedySearch", [] {
      return std::make_unique<scheduling::GreedyScheduler>();
    });
    (void)r->Register("EvolutionaryAlgorithm", [] {
      return std::make_unique<scheduling::EvolutionaryScheduler>();
    });
    (void)r->Register("Exhaustive", [] {
      return std::make_unique<scheduling::ExhaustiveScheduler>();
    });
    (void)r->Register("Hybrid", [] {
      return std::make_unique<scheduling::HybridScheduler>();
    });
    (void)r->Register("BranchAndBound", [] {
      return std::make_unique<scheduling::BranchAndBoundScheduler>();
    });
    (void)r->Register("Portfolio", [] {
      return std::make_unique<scheduling::PortfolioScheduler>();
    });
    // Default-constructed Robust carries a degenerate ensemble, i.e. it is
    // exactly its inner greedy scheduler until an ensemble is configured
    // (EdmsEngine::Config::ensemble_scenarios builds the configured form).
    (void)r->Register("Robust", [] {
      return std::make_unique<scheduling::RobustScheduler>();
    });
    return r;
  }();
  return *registry;
}

Status SchedulerRegistry::Register(const std::string& name,
                                   SchedulerFactory factory) {
  if (!factory) {
    return Status::InvalidArgument("scheduler factory must be callable");
  }
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("scheduler '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<SchedulerFactory> SchedulerRegistry::Find(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no scheduler registered as '" + name + "'");
  }
  return it->second;
}

Result<std::unique_ptr<scheduling::Scheduler>> SchedulerRegistry::Create(
    const std::string& name) const {
  MIRABEL_ASSIGN_OR_RETURN(SchedulerFactory factory, Find(name));
  return factory();
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

SchedulerFactory DefaultSchedulerFactory() {
  return [] { return std::make_unique<scheduling::GreedyScheduler>(); };
}

double ScaledTimeBudget(double configured_s, size_t num_offers,
                        int horizon_length, double reference_work,
                        double min_fraction) {
  if (configured_s <= 0.0 || reference_work <= 0.0) return configured_s;
  double work = static_cast<double>(num_offers) *
                static_cast<double>(horizon_length > 0 ? horizon_length : 0);
  double fraction = work / reference_work;
  if (fraction > 1.0) fraction = 1.0;
  if (fraction < min_fraction) fraction = min_fraction;
  return configured_s * fraction;
}

}  // namespace mirabel::edms
