#ifndef MIRABEL_EDMS_EVENT_QUEUE_H_
#define MIRABEL_EDMS_EVENT_QUEUE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <vector>

#include "edms/events.h"

namespace mirabel::edms {

/// Unbounded lock-free single-producer / single-consumer event stream.
///
/// This is the engine's event channel, extracted from the former
/// `std::vector<Event>` buffer so one type serves both deployments: a
/// single-threaded EdmsEngine pushes and drains on the same thread, and a
/// ShardedEdmsRuntime shard pushes from its worker thread while the runtime
/// drains from the consumer thread — no lock on either side.
///
/// The queue is a linked list of fixed-size chunks. The producer fills a
/// slot, then publishes it with a release store of the chunk's committed
/// count; the consumer acquires the count before reading slots, so every
/// drained event's payload is fully visible. On overflow the producer links
/// a fresh chunk (the queue never blocks and never drops — a burst like a
/// large SubmitOffers batch before the next poll just grows the list); the
/// consumer frees chunks as it finishes them.
///
/// Contract: at most one thread calls Push() and at most one thread calls
/// Drain()/DrainAll() at any moment. The two may be different threads.
class EventQueue {
 public:
  /// Events per chunk; one chunk is the steady-state footprint.
  static constexpr size_t kChunkCapacity = 256;

  EventQueue() : head_(new Chunk()), tail_(head_) {}

  ~EventQueue() {
    Chunk* chunk = head_;
    while (chunk != nullptr) {
      Chunk* next = chunk->next.load(std::memory_order_relaxed);
      delete chunk;
      chunk = next;
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Producer side: appends one event. Never blocks.
  void Push(Event event) {
    if (tail_size_ == kChunkCapacity) {
      Chunk* next = new Chunk();
      tail_->next.store(next, std::memory_order_release);
      tail_ = next;
      tail_size_ = 0;
    }
    tail_->slots[tail_size_] = std::move(event);
    ++tail_size_;
    tail_->committed.store(tail_size_, std::memory_order_release);
  }

  /// Consumer side: moves every published event into `out` (appending) and
  /// returns how many were drained.
  size_t Drain(std::vector<Event>* out) {
    size_t drained = 0;
    for (;;) {
      size_t committed = head_->committed.load(std::memory_order_acquire);
      while (head_read_ < committed) {
        out->push_back(std::move(head_->slots[head_read_]));
        ++head_read_;
        ++drained;
      }
      if (head_read_ < kChunkCapacity) return drained;
      Chunk* next = head_->next.load(std::memory_order_acquire);
      // The producer is still parked on this full chunk; it will link the
      // successor on its next Push().
      if (next == nullptr) return drained;
      delete head_;
      head_ = next;
      head_read_ = 0;
    }
  }

  /// Consumer side: Drain() into a fresh vector.
  std::vector<Event> DrainAll() {
    std::vector<Event> out;
    Drain(&out);
    return out;
  }

 private:
  struct Chunk {
    std::array<Event, kChunkCapacity> slots;
    /// Slots [0, committed) are published to the consumer.
    std::atomic<size_t> committed{0};
    std::atomic<Chunk*> next{nullptr};
  };

  // Consumer-owned cursor. Chunks before head_ are freed; head_ is reachable
  // from tail_'s chain only through chunks the producer no longer touches.
  Chunk* head_;
  size_t head_read_ = 0;

  // Producer-owned cursor; tail_size_ mirrors tail_->committed.
  Chunk* tail_;
  size_t tail_size_ = 0;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_EVENT_QUEUE_H_
