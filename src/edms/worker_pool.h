#ifndef MIRABEL_EDMS_WORKER_POOL_H_
#define MIRABEL_EDMS_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mirabel::edms {

/// Fixed-size work-stealing worker pool shared by one or more
/// ShardedEdmsRuntime instances.
///
/// The pool replaces the runtime's former thread-per-shard fork-join
/// workers: every shard posts its tasks through a Strand — a serial executor
/// that guarantees FIFO, one-at-a-time execution of its own tasks while
/// letting *which worker runs them* float. A runnable strand is enqueued on
/// its home worker's run queue; a worker first drains its own queue, then
/// (with stealing enabled) steals runnable strands from the longest sibling
/// queue. Because a strand is enqueued at most once at any moment, stealing
/// migrates whole shards between workers — it never reorders or overlaps one
/// shard's tasks — so unevenly loaded shards are rebalanced instead of
/// idling behind a busy home worker, and multiple runtimes (multi-BRP
/// deployments) can share one pool handle without oversubscribing the
/// machine.
///
/// Scheduling granularity is deliberately coarse (batch intakes and gate
/// closures, micro- to milliseconds each), so the run queues are per-worker
/// deques under one pool mutex rather than lock-free Chase-Lev deques: at
/// this task size the mutex is uncontended and the simple scheduler is easy
/// to prove correct (and TSan-clean). The lock-free structures live where
/// the per-item rates are high — EventQueue (events out) and IntakeQueue
/// (offers in).
///
/// Thread-safety contract:
///  - Strand::Post() may be called from any thread, concurrently (MPSC).
///  - Tasks of one strand never run concurrently with each other; tasks of
///    different strands may.
///  - The pool must outlive its strands; strands must not receive posts
///    while they (or the pool) are being destroyed. ShardedEdmsRuntime owns
///    this ordering.
class WorkerPool {
 public:
  struct Options {
    /// Worker threads; 0 resolves to std::thread::hardware_concurrency()
    /// (at least 1).
    size_t num_threads = 0;
    /// Allow idle workers to steal runnable strands from siblings. Disabled,
    /// every strand is pinned to its home worker and the pool reproduces the
    /// pre-pool thread-per-shard fork-join behaviour (the bench baseline).
    bool enable_stealing = true;
  };

  /// A serial executor on the pool: tasks run FIFO, one at a time, on
  /// whichever worker claims the strand. Created via CreateStrand().
  class Strand {
   public:
    /// Destruction blocks until every posted task has run (the pool must
    /// still be alive; do not post concurrently with destruction).
    ~Strand();

    Strand(const Strand&) = delete;
    Strand& operator=(const Strand&) = delete;

    /// Enqueues `fn` after every previously posted task of this strand.
    /// Thread-safe. The returned future joins the task (and carries any
    /// exception it threw).
    std::future<void> Post(std::function<void()> fn);

   private:
    friend class WorkerPool;
    Strand(WorkerPool* pool, size_t home) : pool_(pool), home_(home) {}

    WorkerPool* pool_;
    /// Worker whose run queue this strand is enqueued on when runnable.
    size_t home_;
    std::mutex mu_;
    /// Signalled when the strand goes idle (queue drained, not running).
    std::condition_variable idle_cv_;
    std::deque<std::packaged_task<void()>> tasks_;
    /// True while the strand sits in a run queue or is being run. Invariant:
    /// at most one queue entry / runner exists per strand at any moment.
    bool scheduled_ = false;
  };

  /// Default options: hardware_concurrency workers, stealing enabled.
  WorkerPool();
  explicit WorkerPool(const Options& options);

  /// Drains every queued strand, then joins the workers. Strands must be
  /// destroyed (or at least quiescent) before the pool.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Creates a strand homed on the next worker, round-robin. Thread-safe.
  std::unique_ptr<Strand> CreateStrand();

  size_t num_threads() const { return workers_.size(); }
  bool stealing_enabled() const { return options_.enable_stealing; }

  /// Number of strand executions claimed by a non-home worker since
  /// construction (0 when stealing is disabled). Monotonic; for tests and
  /// bench reports.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop(size_t index);
  /// Puts a runnable strand on its home queue and wakes the workers.
  void Enqueue(Strand* strand);
  /// Runs `strand` to exhaustion, then marks it idle.
  static void RunStrand(Strand* strand);

  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  /// Per-worker run queues of runnable strands, guarded by mu_.
  std::vector<std::deque<Strand*>> queues_;
  bool stop_ = false;
  std::atomic<uint64_t> steals_{0};
  std::atomic<size_t> next_home_{0};
  std::vector<std::thread> workers_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_WORKER_POOL_H_
