#include "edms/sharded_runtime.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

namespace mirabel::edms {

using flexoffer::ActorId;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

/// One engine partition: the engine plus its worker thread and task queue.
/// Every mutating engine call runs on the worker, so each engine stays
/// single-threaded; the task-queue mutex and the futures returned by Post()
/// provide the happens-before edges that make the caller's reads between
/// fork-join calls race-free.
struct ShardedEdmsRuntime::Shard {
  std::unique_ptr<EdmsEngine> engine;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::packaged_task<void()>> tasks;
  bool stop = false;
  std::thread worker;
};

namespace {

/// Per-shard engine configuration derived from the runtime template.
EdmsEngine::Config ShardEngineConfig(const ShardedEdmsRuntime::Config& config,
                                     size_t shard, size_t num_shards) {
  EdmsEngine::Config ec = config.engine;
  // Collision-free macro wire ids across the shards of one actor.
  ec.macro_id_lane = shard;
  ec.macro_id_lanes = num_shards;
  // Independent stochastic streams per shard.
  ec.seed = config.engine.seed + 1000003ULL * static_cast<uint64_t>(shard);
  if (config.divide_scheduler_budget && num_shards > 1) {
    // Hold the total per-gate scheduling effort constant across shard
    // counts: each shard gets 1/N of the budget for its 1/N-sized problem.
    if (ec.scheduler_budget_s > 0.0) {
      ec.scheduler_budget_s /= static_cast<double>(num_shards);
    }
    if (ec.scheduler_max_iterations > 0) {
      ec.scheduler_max_iterations =
          (ec.scheduler_max_iterations + static_cast<int>(num_shards) - 1) /
          static_cast<int>(num_shards);
    }
  }
  return ec;
}

/// Waits for every posted task before returning or rethrowing: a task that
/// threw (e.g. bad_alloc on the worker) must not unwind the caller's stack
/// while sibling tasks still hold references into it.
void DrainFutures(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Joins a fan-out, keeping the first error.
Status JoinAll(std::vector<std::future<void>>& futures,
               std::vector<Status>& statuses) {
  DrainFutures(futures);
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace

ShardedEdmsRuntime::ShardedEdmsRuntime(const Config& config)
    : config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (!config_.router) config_.router = OwnerModuloRouter();
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<EdmsEngine>(
        ShardEngineConfig(config_, i, config_.num_shards));
    // The single-shard deployment runs every call inline on the caller
    // thread (a zero-overhead engine wrapper); workers only exist when
    // there is a partition to fan out over.
    if (config_.num_shards > 1) {
      shard->worker =
          std::thread(&ShardedEdmsRuntime::WorkerLoop, shard.get());
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedEdmsRuntime::~ShardedEdmsRuntime() {
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedEdmsRuntime::WorkerLoop(Shard* shard) {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock,
                     [shard] { return shard->stop || !shard->tasks.empty(); });
      if (shard->tasks.empty()) return;  // stop requested, queue drained
      task = std::move(shard->tasks.front());
      shard->tasks.pop_front();
    }
    task();
  }
}

std::future<void> ShardedEdmsRuntime::Post(size_t i,
                                           std::function<void()> fn) {
  Shard& shard = *shards_[i];
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tasks.push_back(std::move(task));
  }
  shard.cv.notify_one();
  return future;
}

Result<size_t> ShardedEdmsRuntime::SubmitOffers(
    std::span<const FlexOffer> offers, TimeSlice now) {
  const size_t n = shards_.size();
  if (n == 1) return shards_[0]->engine->SubmitOffers(offers, now);
  std::vector<std::vector<FlexOffer>> buckets(n);
  for (const FlexOffer& offer : offers) {
    buckets[ShardOf(offer.owner)].push_back(offer);
  }

  std::vector<Status> statuses(n, Status::OK());
  std::vector<size_t> accepted(n, 0);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(Post(i, [this, i, &buckets, &statuses, &accepted,
                               now] {
      Result<size_t> r = shards_[i]->engine->SubmitOffers(
          std::span<const FlexOffer>(buckets[i]), now);
      if (r.ok()) {
        accepted[i] = *r;
      } else {
        statuses[i] = r.status();
      }
    }));
  }
  MIRABEL_RETURN_IF_ERROR(JoinAll(futures, statuses));
  size_t total = 0;
  for (size_t count : accepted) total += count;
  return total;
}

Status ShardedEdmsRuntime::SubmitOffer(const FlexOffer& offer, TimeSlice now) {
  return SubmitOffers(std::span<const FlexOffer>(&offer, 1), now).status();
}

Status ShardedEdmsRuntime::Advance(TimeSlice now) {
  const size_t n = shards_.size();
  if (n == 1) return shards_[0]->engine->Advance(now);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Post(i, [this, i, &statuses, now] {
      statuses[i] = shards_[i]->engine->Advance(now);
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::CompleteMacroSchedule(
    const ScheduledFlexOffer& schedule, TimeSlice now) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->engine->HasPendingMacro(schedule.offer_id)) continue;
    if (shards_.size() == 1) {
      return shards_[0]->engine->CompleteMacroSchedule(schedule, now);
    }
    Status st = Status::OK();
    Post(i, [this, i, &schedule, &st, now] {
      st = shards_[i]->engine->CompleteMacroSchedule(schedule, now);
    }).get();
    return st;
  }
  return Status::NotFound("no shard has pending macro offer " +
                          std::to_string(schedule.offer_id));
}

Status ShardedEdmsRuntime::RecordExecution(FlexOfferId id, TimeSlice now,
                                           double energy_kwh) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->engine->lifecycle().StateOf(id).ok()) continue;
    if (shards_.size() == 1) {
      return shards_[0]->engine->RecordExecution(id, now, energy_kwh);
    }
    Status st = Status::OK();
    Post(i, [this, i, id, now, energy_kwh, &st] {
      st = shards_[i]->engine->RecordExecution(id, now, energy_kwh);
    }).get();
    return st;
  }
  return Status::NotFound("no shard knows offer " + std::to_string(id));
}

void ShardedEdmsRuntime::RecordMeasurement(ActorId actor, TimeSlice slice,
                                           double energy_kwh) {
  size_t i = ShardOf(actor);
  if (shards_.size() == 1) {
    shards_[0]->engine->RecordMeasurement(actor, slice, energy_kwh);
    return;
  }
  Post(i, [this, i, actor, slice, energy_kwh] {
    shards_[i]->engine->RecordMeasurement(actor, slice, energy_kwh);
  }).get();
}

void ShardedEdmsRuntime::RecordMeterReadings(
    std::span<const MeterReading> readings) {
  const size_t n = shards_.size();
  if (n == 1) {
    EdmsEngine& engine = *shards_[0]->engine;
    for (const MeterReading& r : readings) {
      engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
      if (r.offer_id != 0) {
        (void)engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh);
      }
    }
    return;
  }
  std::vector<std::vector<MeterReading>> buckets(n);
  for (const MeterReading& reading : readings) {
    buckets[ShardOf(reading.actor)].push_back(reading);
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(Post(i, [this, i, &buckets] {
      EdmsEngine& engine = *shards_[i]->engine;
      for (const MeterReading& r : buckets[i]) {
        engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
        if (r.offer_id != 0) {
          (void)engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh);
        }
      }
    }));
  }
  DrainFutures(futures);
}

std::vector<Event> ShardedEdmsRuntime::PollEvents() {
  // Concatenate the per-shard drains in shard order, then stable-sort by
  // emission slice: within one slice, events keep shard order and each
  // shard's emission order — a deterministic merge for deterministic
  // shard streams, whatever the worker interleaving was.
  std::vector<Event> out;
  for (auto& shard : shards_) {
    std::vector<Event> drained = shard->engine->PollEvents();
    out.insert(out.end(), std::make_move_iterator(drained.begin()),
               std::make_move_iterator(drained.end()));
  }
  if (shards_.size() > 1) {
    std::stable_sort(out.begin(), out.end(),
                     [](const Event& a, const Event& b) {
                       return EventTime(a) < EventTime(b);
                     });
  }
  return out;
}

EngineStats ShardedEdmsRuntime::stats() const {
  EngineStats merged;
  for (const auto& shard : shards_) merged.Merge(shard->engine->stats());
  return merged;
}

const EdmsEngine& ShardedEdmsRuntime::shard(size_t i) const {
  return *shards_[i]->engine;
}

size_t ShardedEdmsRuntime::ShardOf(ActorId owner) const {
  size_t i = config_.router(owner, shards_.size());
  return i < shards_.size() ? i : i % shards_.size();
}

bool ShardedEdmsRuntime::HasSeenOffer(const FlexOffer& offer) const {
  return shards_[ShardOf(offer.owner)]
      ->engine->lifecycle()
      .StateOf(offer.id)
      .ok();
}

}  // namespace mirabel::edms
