#include "edms/sharded_runtime.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "edms/intake_queue.h"

namespace mirabel::edms {

using flexoffer::ActorId;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

/// One engine partition. Every mutating engine call runs as a task on the
/// shard's strand, so each engine stays effectively single-threaded; the
/// strand's internal lock and the futures returned by Post() provide the
/// happens-before edges that make the caller's reads between joined calls
/// race-free. `intake` is the streaming-mode MPSC channel into the strand.
///
/// Everything between `intake_error` and `last_drain_slice` is
/// strand-confined (written only by strand tasks — or the caller thread in
/// the inline no-pool deployment — and read by joined tasks); cross-thread
/// visibility happens only through `slot`, the seqlock cell the strand
/// republishes after every task (FinishShardTask), which is what makes
/// Snapshot() safe from any thread mid-stream.
struct ShardedEdmsRuntime::Shard {
  std::unique_ptr<EdmsEngine> engine;
  IntakeQueue intake;
  /// First deferred streaming-intake error, returned once by the next
  /// joined Advance()/FlushIntake(); every error is additionally counted in
  /// overlay.intake_errors.
  Status intake_error = Status::OK();
  /// Runtime-side counters that belong in the shard's merged stats but not
  /// in the engine (intake_errors, metering_failures).
  EngineStats overlay;
  /// Deferred intake errors already written to the log (capped).
  int logged_intake_errors = 0;
  /// Strand task gauges (see ShardSnapshot for field meanings).
  int64_t drained_batches = 0;
  int64_t tasks_run = 0;
  double task_s_total = 0.0;
  double last_task_s = 0.0;
  double last_queue_wait_s = 0.0;
  int64_t last_drain_slice = -1;
  /// The published mid-stream snapshot (single writer: the strand).
  SnapshotSlot slot;
  /// Declared last on purpose: the strand's destructor joins the shard's
  /// pending tasks (fire-and-forget streaming drains included), and those
  /// tasks touch every member above — so the strand must be destroyed
  /// first, the engine and queues after.
  std::unique_ptr<WorkerPool::Strand> strand;
};

namespace {

/// How many deferred streaming-intake errors each shard writes to the log
/// before falling back to counting only (overlay.intake_errors keeps the
/// full tally).
constexpr int kMaxLoggedIntakeErrors = 5;

/// Monotonic nanosecond stamp for intake batches (steady_clock, the same
/// clock Stopwatch uses).
int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-shard engine configuration derived from the runtime template.
EdmsEngine::Config ShardEngineConfig(const ShardedEdmsRuntime::Config& config,
                                     size_t shard, size_t num_shards) {
  EdmsEngine::Config ec = config.engine;
  // Collision-free macro wire ids across the shards of one actor.
  ec.macro_id_lane = shard;
  ec.macro_id_lanes = num_shards;
  // Independent stochastic streams per shard.
  ec.seed = config.engine.seed + 1000003ULL * static_cast<uint64_t>(shard);
  if (config.divide_scheduler_budget && num_shards > 1) {
    // Hold the total per-gate scheduling effort constant across shard
    // counts: each shard gets 1/N of the budget for its 1/N-sized problem.
    if (ec.scheduler_budget_s > 0.0) {
      ec.scheduler_budget_s /= static_cast<double>(num_shards);
    }
    if (ec.scheduler_max_iterations > 0) {
      ec.scheduler_max_iterations =
          (ec.scheduler_max_iterations + static_cast<int>(num_shards) - 1) /
          static_cast<int>(num_shards);
    }
  }
  return ec;
}

/// Waits for every posted task before returning or rethrowing: a task that
/// threw (e.g. bad_alloc on a worker) must not unwind the caller's stack
/// while sibling tasks still hold references into it.
void DrainFutures(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Joins a fan-out, keeping the first error.
Status JoinAll(std::vector<std::future<void>>& futures,
               std::vector<Status>& statuses) {
  DrainFutures(futures);
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace

ShardedEdmsRuntime::ShardedEdmsRuntime(const Config& config)
    : config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (!config_.router) config_.router = OwnerModuloRouter();
  // The plain single-shard deployment runs every call inline on the caller
  // thread (a zero-overhead engine wrapper); strands only exist when there
  // is a partition to fan out over, a pool to share, or streaming intake
  // that must overlap the caller.
  const bool needs_pool = config_.num_shards > 1 || config_.pool != nullptr ||
                          config_.streaming_intake;
  if (needs_pool) {
    pool_ = config_.pool;
    if (pool_ == nullptr) {
      WorkerPool::Options options;
      options.num_threads = config_.num_shards;
      pool_ = std::make_shared<WorkerPool>(options);
    }
  }
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<EdmsEngine>(
        ShardEngineConfig(config_, i, config_.num_shards));
    if (pool_ != nullptr) shard->strand = pool_->CreateStrand();
    shards_.push_back(std::move(shard));
  }
}

ShardedEdmsRuntime::~ShardedEdmsRuntime() {
  // Join each strand's pending tasks (streaming drains included) first:
  // whatever was posted before destruction began still runs against a live
  // shard. Then count what nobody drained — batches can survive the join
  // when a drain task died on an exception or the caller raced the
  // contract — so offers never vanish without a trace.
  int64_t dropped_offers = 0;
  for (auto& shard : shards_) {
    shard->strand.reset();
    IntakeBatch batch;
    while (shard->intake.Pop(&batch)) {
      dropped_offers += static_cast<int64_t>(batch.offers.size());
    }
  }
  if (dropped_offers > 0) {
    MIRABEL_LOG(kWarning) << "ShardedEdmsRuntime shut down with "
                          << dropped_offers
                          << " offers undrained in shard intake queues";
  }
  if (config_.final_stats != nullptr) {
    // The strands are joined, so the quiescent merge is exact.
    EngineStats merged = stats();
    merged.offers_dropped_at_shutdown = dropped_offers;
    *config_.final_stats = merged;
  }
}

void ShardedEdmsRuntime::RunOnShard(size_t i, std::function<void()> fn) {
  Shard* shard = shards_[i].get();
  if (pool_ == nullptr) {
    Stopwatch watch;
    fn();
    FinishShardTask(*shard, watch.ElapsedSeconds());
    return;
  }
  shard->strand
      ->Post([this, shard, fn = std::move(fn)] {
        Stopwatch watch;
        fn();
        FinishShardTask(*shard, watch.ElapsedSeconds());
      })
      .get();
}

void ShardedEdmsRuntime::DrainShardIntake(Shard& shard) {
  IntakeBatch batch;
  while (shard.intake.Pop(&batch)) {
    ++shard.drained_batches;
    shard.last_drain_slice = batch.now;
    if (batch.enqueue_ns != 0) {
      shard.last_queue_wait_s =
          static_cast<double>(MonotonicNanos() - batch.enqueue_ns) * 1e-9;
    }
    Result<size_t> r = shard.engine->SubmitOffers(
        std::span<const FlexOffer>(batch.offers), batch.now);
    if (r.ok()) continue;
    if (r.status().code() == StatusCode::kAlreadyExists) {
      // The engine rejected the whole batch before any state change. A
      // streaming producer cannot pre-check ids race-free, so duplicates
      // are dropped here: resubmit per offer and keep the fresh ones (the
      // same tolerance the bus adapter applies to re-sent offers).
      for (const FlexOffer& offer : batch.offers) {
        Status st = shard.engine->SubmitOffer(offer, batch.now);
        if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
          NoteIntakeError(shard, st);
        }
      }
    } else {
      NoteIntakeError(shard, r.status());
    }
  }
}

void ShardedEdmsRuntime::NoteIntakeError(Shard& shard, const Status& status) {
  ++shard.overlay.intake_errors;
  if (shard.intake_error.ok()) shard.intake_error = status;
  if (shard.logged_intake_errors < kMaxLoggedIntakeErrors) {
    ++shard.logged_intake_errors;
    MIRABEL_LOG(kWarning) << "deferred streaming-intake error ("
                          << shard.overlay.intake_errors
                          << " so far on this shard): " << status;
  }
}

void ShardedEdmsRuntime::FinishShardTask(Shard& shard, double elapsed_s) {
  ++shard.tasks_run;
  shard.task_s_total += elapsed_s;
  shard.last_task_s = elapsed_s;
  ShardSnapshot snap;
  snap.stats = shard.engine->stats();
  snap.stats.Merge(shard.overlay);
  snap.intake_depth_batches = shard.intake.ApproxDepth();
  snap.intake_drained_batches = shard.drained_batches;
  snap.strand_tasks_run = shard.tasks_run;
  snap.strand_task_s_total = shard.task_s_total;
  snap.last_task_s = shard.last_task_s;
  snap.last_queue_wait_s = shard.last_queue_wait_s;
  snap.last_drain_slice = shard.last_drain_slice;
  shard.slot.Publish(snap);
}

void ShardedEdmsRuntime::ScheduleIntakeDrain(size_t i) {
  Shard* shard = shards_[i].get();
  // Fire-and-forget: outcomes flow through the event stream and deferred
  // errors through intake_error, so the future is dropped deliberately —
  // which is also why the task must not leak exceptions into it.
  (void)shard->strand->Post([this, shard] {
    Stopwatch watch;
    try {
      DrainShardIntake(*shard);
    } catch (const std::exception& e) {
      NoteIntakeError(
          *shard,
          Status::Internal(std::string("intake drain threw: ") + e.what()));
    } catch (...) {
      NoteIntakeError(*shard, Status::Internal("intake drain threw"));
    }
    FinishShardTask(*shard, watch.ElapsedSeconds());
  });
}

void ShardedEdmsRuntime::ShedBucket(std::vector<FlexOffer> bucket,
                                    TimeSlice now) {
  shed_offers_.fetch_add(static_cast<int64_t>(bucket.size()),
                         std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shed_events_mu_);
  shed_events_.reserve(shed_events_.size() + bucket.size());
  for (const FlexOffer& offer : bucket) {
    shed_events_.push_back(
        OfferRejected{offer.id, offer.owner, now, RejectReason::kOverloaded});
  }
}

Result<size_t> ShardedEdmsRuntime::SubmitOffers(
    std::span<const FlexOffer> offers, TimeSlice now) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) {
    Stopwatch watch;
    Result<size_t> r = shards_[0]->engine->SubmitOffers(offers, now);
    FinishShardTask(*shards_[0], watch.ElapsedSeconds());
    return r;
  }

  std::vector<std::vector<FlexOffer>> buckets(n);
  for (const FlexOffer& offer : offers) {
    buckets[ShardOf(offer.owner)].push_back(offer);
  }

  if (config_.streaming_intake) {
    // Stream: enqueue and return. The drain tasks run concurrently with
    // whatever the strands are doing (e.g. a gate on another shard), and
    // this path is safe from any number of producer threads.
    const auto max_pending =
        static_cast<int64_t>(config_.max_pending_batches_per_shard);
    if (max_pending > 0 &&
        config_.overload_policy == Config::OverloadPolicy::kReject) {
      // All-or-nothing: probe every target queue before enqueuing anything,
      // so a rejected call leaves no partial intake behind.
      for (size_t i = 0; i < n; ++i) {
        if (buckets[i].empty()) continue;
        if (shards_[i]->intake.ApproxDepth() >= max_pending) {
          return Status::ResourceExhausted(
              "shard " + std::to_string(i) + " intake queue is full (" +
              std::to_string(max_pending) + " pending batches)");
        }
      }
    }
    const int64_t enqueue_ns = MonotonicNanos();
    size_t enqueued = 0;
    for (size_t i = 0; i < n; ++i) {
      if (buckets[i].empty()) continue;
      if (max_pending > 0 &&
          config_.overload_policy == Config::OverloadPolicy::kShed &&
          shards_[i]->intake.ApproxDepth() >= max_pending) {
        ShedBucket(std::move(buckets[i]), now);
        continue;
      }
      enqueued += buckets[i].size();
      shards_[i]->intake.Push({std::move(buckets[i]), now, enqueue_ns});
      ScheduleIntakeDrain(i);
    }
    return enqueued;
  }

  std::vector<Status> statuses(n, Status::OK());
  std::vector<size_t> accepted(n, 0);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(shards_[i]->strand->Post([this, i, &buckets, &statuses,
                                                &accepted, now] {
      Stopwatch watch;
      Result<size_t> r = shards_[i]->engine->SubmitOffers(
          std::span<const FlexOffer>(buckets[i]), now);
      if (r.ok()) {
        accepted[i] = *r;
      } else {
        statuses[i] = r.status();
      }
      FinishShardTask(*shards_[i], watch.ElapsedSeconds());
    }));
  }
  MIRABEL_RETURN_IF_ERROR(JoinAll(futures, statuses));
  size_t total = 0;
  for (size_t count : accepted) total += count;
  return total;
}

Status ShardedEdmsRuntime::SubmitOffer(const FlexOffer& offer, TimeSlice now) {
  return SubmitOffers(std::span<const FlexOffer>(&offer, 1), now).status();
}

Status ShardedEdmsRuntime::Advance(TimeSlice now) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) {
    Stopwatch watch;
    Status st = shards_[0]->engine->Advance(now);
    FinishShardTask(*shards_[0], watch.ElapsedSeconds());
    return st;
  }
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(shards_[i]->strand->Post([this, i, &statuses, now] {
      Stopwatch watch;
      Shard& shard = *shards_[i];
      // A due gate sees every batch enqueued before this task ran; deferred
      // streaming-intake errors outrank gate errors (they happened first).
      DrainShardIntake(shard);
      Status st = std::exchange(shard.intake_error, Status::OK());
      statuses[i] = st.ok() ? shard.engine->Advance(now) : std::move(st);
      FinishShardTask(shard, watch.ElapsedSeconds());
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::ExpireDeadlines(TimeSlice now) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) {
    Stopwatch watch;
    shards_[0]->engine->ExpireDeadlines(now);
    FinishShardTask(*shards_[0], watch.ElapsedSeconds());
    return Status::OK();
  }
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(shards_[i]->strand->Post([this, i, &statuses, now] {
      Stopwatch watch;
      Shard& shard = *shards_[i];
      DrainShardIntake(shard);
      statuses[i] = std::exchange(shard.intake_error, Status::OK());
      shard.engine->ExpireDeadlines(now);
      FinishShardTask(shard, watch.ElapsedSeconds());
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::FlushIntake() {
  if (pool_ == nullptr || !config_.streaming_intake) return Status::OK();
  const size_t n = shards_.size();
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(shards_[i]->strand->Post([this, i, &statuses] {
      Stopwatch watch;
      Shard& shard = *shards_[i];
      DrainShardIntake(shard);
      statuses[i] = std::exchange(shard.intake_error, Status::OK());
      FinishShardTask(shard, watch.ElapsedSeconds());
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::CompleteMacroSchedule(
    const ScheduledFlexOffer& schedule, TimeSlice now) {
  // Fork-join mode probes inline — the strands are quiescent between joined
  // calls — and pays one strand round trip for the owning shard only. Under
  // streaming intake a drain may run at any moment, so the probe itself
  // must execute on the strand, serialized with gates and drains.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!config_.streaming_intake) {
      if (!shards_[i]->engine->HasPendingMacro(schedule.offer_id)) continue;
      Status st = Status::OK();
      RunOnShard(i, [this, i, &schedule, &st, now] {
        st = shards_[i]->engine->CompleteMacroSchedule(schedule, now);
      });
      return st;
    }
    Status st = Status::OK();
    bool found = false;
    RunOnShard(i, [this, i, &schedule, &st, &found, now] {
      EdmsEngine& engine = *shards_[i]->engine;
      if (!engine.HasPendingMacro(schedule.offer_id)) return;
      found = true;
      st = engine.CompleteMacroSchedule(schedule, now);
    });
    if (found) return st;
  }
  return Status::NotFound("no shard has pending macro offer " +
                          std::to_string(schedule.offer_id));
}

Status ShardedEdmsRuntime::RecordExecution(FlexOfferId id, TimeSlice now,
                                           double energy_kwh) {
  // Same probe split as CompleteMacroSchedule(): inline when fork-join,
  // on-strand when streaming.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!config_.streaming_intake) {
      if (!shards_[i]->engine->lifecycle().StateOf(id).ok()) continue;
      Status st = Status::OK();
      RunOnShard(i, [this, i, id, now, energy_kwh, &st] {
        st = shards_[i]->engine->RecordExecution(id, now, energy_kwh);
      });
      return st;
    }
    Status st = Status::OK();
    bool found = false;
    RunOnShard(i, [this, i, id, now, energy_kwh, &st, &found] {
      EdmsEngine& engine = *shards_[i]->engine;
      if (!engine.lifecycle().StateOf(id).ok()) return;
      found = true;
      st = engine.RecordExecution(id, now, energy_kwh);
    });
    if (found) return st;
  }
  return Status::NotFound("no shard knows offer " + std::to_string(id));
}

void ShardedEdmsRuntime::RecordMeasurement(ActorId actor, TimeSlice slice,
                                           double energy_kwh) {
  size_t i = ShardOf(actor);
  RunOnShard(i, [this, i, actor, slice, energy_kwh] {
    shards_[i]->engine->RecordMeasurement(actor, slice, energy_kwh);
  });
}

void ShardedEdmsRuntime::RecordMeterReadings(
    std::span<const MeterReading> readings) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) {
    Stopwatch watch;
    Shard& shard = *shards_[0];
    EdmsEngine& engine = *shard.engine;
    for (const MeterReading& r : readings) {
      engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
      if (r.offer_id != 0 &&
          !engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh).ok()) {
        ++shard.overlay.metering_failures;
      }
    }
    FinishShardTask(shard, watch.ElapsedSeconds());
    return;
  }
  std::vector<std::vector<MeterReading>> buckets(n);
  for (const MeterReading& reading : readings) {
    buckets[ShardOf(reading.actor)].push_back(reading);
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(shards_[i]->strand->Post([this, i, &buckets] {
      Stopwatch watch;
      Shard& shard = *shards_[i];
      EdmsEngine& engine = *shard.engine;
      for (const MeterReading& r : buckets[i]) {
        engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
        // Execution failures (e.g. re-metered offers) are tolerated —
        // duplicate-heavy bus traffic is normal — but counted, so they are
        // visible instead of invisible.
        if (r.offer_id != 0 &&
            !engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh).ok()) {
          ++shard.overlay.metering_failures;
        }
      }
      FinishShardTask(shard, watch.ElapsedSeconds());
    }));
  }
  DrainFutures(futures);
}

std::vector<Event> ShardedEdmsRuntime::PollEvents() {
  // Concatenate the per-shard drains in shard order, then stable-sort by
  // emission slice: within one slice, events keep shard order and each
  // shard's emission order — a deterministic merge for deterministic
  // shard streams, whatever the worker interleaving was. Shed events
  // (OfferRejected{kOverloaded}, produced on the submitter threads) are
  // appended after the shard streams and merged by the same sort.
  std::vector<Event> out;
  for (auto& shard : shards_) {
    std::vector<Event> drained = shard->engine->PollEvents();
    out.insert(out.end(), std::make_move_iterator(drained.begin()),
               std::make_move_iterator(drained.end()));
  }
  bool had_shed = false;
  {
    std::lock_guard<std::mutex> lock(shed_events_mu_);
    if (!shed_events_.empty()) {
      had_shed = true;
      out.insert(out.end(), std::make_move_iterator(shed_events_.begin()),
                 std::make_move_iterator(shed_events_.end()));
      shed_events_.clear();
    }
  }
  if (shards_.size() > 1 || had_shed) {
    std::stable_sort(out.begin(), out.end(),
                     [](const Event& a, const Event& b) {
                       return EventTime(a) < EventTime(b);
                     });
  }
  return out;
}

EngineStats ShardedEdmsRuntime::stats() const {
  EngineStats merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->engine->stats());
    merged.Merge(shard->overlay);
  }
  merged.offers_shed += shed_offers_.load(std::memory_order_relaxed);
  return merged;
}

RuntimeSnapshot ShardedEdmsRuntime::Snapshot() const {
  RuntimeSnapshot out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardSnapshot snap = shard->slot.Read();
    // The queue depth moves with every producer push, not only with strand
    // tasks: read it live so backlog is visible even while the strand is
    // stuck inside one long gate.
    snap.intake_depth_batches = shard->intake.ApproxDepth();
    out.stats.Merge(snap.stats);
    out.intake_depth_batches += snap.intake_depth_batches;
    out.intake_drained_batches += snap.intake_drained_batches;
    out.strand_tasks_run += snap.strand_tasks_run;
    out.strand_task_s_total += snap.strand_task_s_total;
    out.max_last_task_s = std::max(out.max_last_task_s, snap.last_task_s);
    out.shards.push_back(snap);
  }
  out.stats.offers_shed += shed_offers_.load(std::memory_order_relaxed);
  return out;
}

const EdmsEngine& ShardedEdmsRuntime::shard(size_t i) const {
  return *shards_[i]->engine;
}

size_t ShardedEdmsRuntime::ShardOf(ActorId owner) const {
  size_t i = config_.router(owner, shards_.size());
  return i < shards_.size() ? i : i % shards_.size();
}

bool ShardedEdmsRuntime::HasSeenOffer(const FlexOffer& offer) const {
  return shards_[ShardOf(offer.owner)]
      ->engine->lifecycle()
      .StateOf(offer.id)
      .ok();
}

}  // namespace mirabel::edms
