#include "edms/sharded_runtime.h"

#include <algorithm>
#include <future>
#include <utility>

#include "edms/intake_queue.h"

namespace mirabel::edms {

using flexoffer::ActorId;
using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

/// One engine partition. Every mutating engine call runs as a task on the
/// shard's strand, so each engine stays effectively single-threaded; the
/// strand's internal lock and the futures returned by Post() provide the
/// happens-before edges that make the caller's reads between joined calls
/// race-free. `intake` is the streaming-mode MPSC channel into the strand;
/// `intake_error` is strand-confined (written only by strand tasks, read
/// and cleared by the joined Advance()/FlushIntake() tasks).
struct ShardedEdmsRuntime::Shard {
  std::unique_ptr<EdmsEngine> engine;
  IntakeQueue intake;
  Status intake_error = Status::OK();
  /// Declared last on purpose: the strand's destructor joins the shard's
  /// pending tasks (fire-and-forget streaming drains included), and those
  /// tasks touch every member above — so the strand must be destroyed
  /// first, the engine and queues after.
  std::unique_ptr<WorkerPool::Strand> strand;
};

namespace {

/// Per-shard engine configuration derived from the runtime template.
EdmsEngine::Config ShardEngineConfig(const ShardedEdmsRuntime::Config& config,
                                     size_t shard, size_t num_shards) {
  EdmsEngine::Config ec = config.engine;
  // Collision-free macro wire ids across the shards of one actor.
  ec.macro_id_lane = shard;
  ec.macro_id_lanes = num_shards;
  // Independent stochastic streams per shard.
  ec.seed = config.engine.seed + 1000003ULL * static_cast<uint64_t>(shard);
  if (config.divide_scheduler_budget && num_shards > 1) {
    // Hold the total per-gate scheduling effort constant across shard
    // counts: each shard gets 1/N of the budget for its 1/N-sized problem.
    if (ec.scheduler_budget_s > 0.0) {
      ec.scheduler_budget_s /= static_cast<double>(num_shards);
    }
    if (ec.scheduler_max_iterations > 0) {
      ec.scheduler_max_iterations =
          (ec.scheduler_max_iterations + static_cast<int>(num_shards) - 1) /
          static_cast<int>(num_shards);
    }
  }
  return ec;
}

/// Waits for every posted task before returning or rethrowing: a task that
/// threw (e.g. bad_alloc on a worker) must not unwind the caller's stack
/// while sibling tasks still hold references into it.
void DrainFutures(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Joins a fan-out, keeping the first error.
Status JoinAll(std::vector<std::future<void>>& futures,
               std::vector<Status>& statuses) {
  DrainFutures(futures);
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace

ShardedEdmsRuntime::ShardedEdmsRuntime(const Config& config)
    : config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (!config_.router) config_.router = OwnerModuloRouter();
  // The plain single-shard deployment runs every call inline on the caller
  // thread (a zero-overhead engine wrapper); strands only exist when there
  // is a partition to fan out over, a pool to share, or streaming intake
  // that must overlap the caller.
  const bool needs_pool = config_.num_shards > 1 || config_.pool != nullptr ||
                          config_.streaming_intake;
  if (needs_pool) {
    pool_ = config_.pool;
    if (pool_ == nullptr) {
      WorkerPool::Options options;
      options.num_threads = config_.num_shards;
      pool_ = std::make_shared<WorkerPool>(options);
    }
  }
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<EdmsEngine>(
        ShardEngineConfig(config_, i, config_.num_shards));
    if (pool_ != nullptr) shard->strand = pool_->CreateStrand();
    shards_.push_back(std::move(shard));
  }
}

// Shard destruction joins each strand's pending tasks (streaming drains
// included) before pool_ releases the — possibly private — pool.
ShardedEdmsRuntime::~ShardedEdmsRuntime() = default;

void ShardedEdmsRuntime::RunOnShard(size_t i, std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  shards_[i]->strand->Post(std::move(fn)).get();
}

void ShardedEdmsRuntime::DrainShardIntake(Shard& shard) {
  IntakeBatch batch;
  while (shard.intake.Pop(&batch)) {
    Result<size_t> r = shard.engine->SubmitOffers(
        std::span<const FlexOffer>(batch.offers), batch.now);
    if (r.ok()) continue;
    if (r.status().code() == StatusCode::kAlreadyExists) {
      // The engine rejected the whole batch before any state change. A
      // streaming producer cannot pre-check ids race-free, so duplicates
      // are dropped here: resubmit per offer and keep the fresh ones (the
      // same tolerance the bus adapter applies to re-sent offers).
      for (const FlexOffer& offer : batch.offers) {
        Status st = shard.engine->SubmitOffer(offer, batch.now);
        if (!st.ok() && st.code() != StatusCode::kAlreadyExists &&
            shard.intake_error.ok()) {
          shard.intake_error = st;
        }
      }
    } else if (shard.intake_error.ok()) {
      shard.intake_error = r.status();
    }
  }
}

void ShardedEdmsRuntime::ScheduleIntakeDrain(size_t i) {
  Shard* shard = shards_[i].get();
  // Fire-and-forget: outcomes flow through the event stream and deferred
  // errors through intake_error, so the future is dropped deliberately —
  // which is also why the task must not leak exceptions into it.
  (void)shard->strand->Post([this, shard] {
    try {
      DrainShardIntake(*shard);
    } catch (const std::exception& e) {
      if (shard->intake_error.ok()) {
        shard->intake_error =
            Status::Internal(std::string("intake drain threw: ") + e.what());
      }
    } catch (...) {
      if (shard->intake_error.ok()) {
        shard->intake_error = Status::Internal("intake drain threw");
      }
    }
  });
}

Result<size_t> ShardedEdmsRuntime::SubmitOffers(
    std::span<const FlexOffer> offers, TimeSlice now) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) return shards_[0]->engine->SubmitOffers(offers, now);

  std::vector<std::vector<FlexOffer>> buckets(n);
  for (const FlexOffer& offer : offers) {
    buckets[ShardOf(offer.owner)].push_back(offer);
  }

  if (config_.streaming_intake) {
    // Stream: enqueue and return. The drain tasks run concurrently with
    // whatever the strands are doing (e.g. a gate on another shard), and
    // this path is safe from any number of producer threads.
    for (size_t i = 0; i < n; ++i) {
      if (buckets[i].empty()) continue;
      shards_[i]->intake.Push({std::move(buckets[i]), now});
      ScheduleIntakeDrain(i);
    }
    return offers.size();
  }

  std::vector<Status> statuses(n, Status::OK());
  std::vector<size_t> accepted(n, 0);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(shards_[i]->strand->Post([this, i, &buckets, &statuses,
                                                &accepted, now] {
      Result<size_t> r = shards_[i]->engine->SubmitOffers(
          std::span<const FlexOffer>(buckets[i]), now);
      if (r.ok()) {
        accepted[i] = *r;
      } else {
        statuses[i] = r.status();
      }
    }));
  }
  MIRABEL_RETURN_IF_ERROR(JoinAll(futures, statuses));
  size_t total = 0;
  for (size_t count : accepted) total += count;
  return total;
}

Status ShardedEdmsRuntime::SubmitOffer(const FlexOffer& offer, TimeSlice now) {
  return SubmitOffers(std::span<const FlexOffer>(&offer, 1), now).status();
}

Status ShardedEdmsRuntime::Advance(TimeSlice now) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) return shards_[0]->engine->Advance(now);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(shards_[i]->strand->Post([this, i, &statuses, now] {
      Shard& shard = *shards_[i];
      // A due gate sees every batch enqueued before this task ran; deferred
      // streaming-intake errors outrank gate errors (they happened first).
      DrainShardIntake(shard);
      Status st = std::exchange(shard.intake_error, Status::OK());
      statuses[i] = st.ok() ? shard.engine->Advance(now) : std::move(st);
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::FlushIntake() {
  if (pool_ == nullptr || !config_.streaming_intake) return Status::OK();
  const size_t n = shards_.size();
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(shards_[i]->strand->Post([this, i, &statuses] {
      Shard& shard = *shards_[i];
      DrainShardIntake(shard);
      statuses[i] = std::exchange(shard.intake_error, Status::OK());
    }));
  }
  return JoinAll(futures, statuses);
}

Status ShardedEdmsRuntime::CompleteMacroSchedule(
    const ScheduledFlexOffer& schedule, TimeSlice now) {
  // Fork-join mode probes inline — the strands are quiescent between joined
  // calls — and pays one strand round trip for the owning shard only. Under
  // streaming intake a drain may run at any moment, so the probe itself
  // must execute on the strand, serialized with gates and drains.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!config_.streaming_intake) {
      if (!shards_[i]->engine->HasPendingMacro(schedule.offer_id)) continue;
      Status st = Status::OK();
      RunOnShard(i, [this, i, &schedule, &st, now] {
        st = shards_[i]->engine->CompleteMacroSchedule(schedule, now);
      });
      return st;
    }
    Status st = Status::OK();
    bool found = false;
    RunOnShard(i, [this, i, &schedule, &st, &found, now] {
      EdmsEngine& engine = *shards_[i]->engine;
      if (!engine.HasPendingMacro(schedule.offer_id)) return;
      found = true;
      st = engine.CompleteMacroSchedule(schedule, now);
    });
    if (found) return st;
  }
  return Status::NotFound("no shard has pending macro offer " +
                          std::to_string(schedule.offer_id));
}

Status ShardedEdmsRuntime::RecordExecution(FlexOfferId id, TimeSlice now,
                                           double energy_kwh) {
  // Same probe split as CompleteMacroSchedule(): inline when fork-join,
  // on-strand when streaming.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!config_.streaming_intake) {
      if (!shards_[i]->engine->lifecycle().StateOf(id).ok()) continue;
      Status st = Status::OK();
      RunOnShard(i, [this, i, id, now, energy_kwh, &st] {
        st = shards_[i]->engine->RecordExecution(id, now, energy_kwh);
      });
      return st;
    }
    Status st = Status::OK();
    bool found = false;
    RunOnShard(i, [this, i, id, now, energy_kwh, &st, &found] {
      EdmsEngine& engine = *shards_[i]->engine;
      if (!engine.lifecycle().StateOf(id).ok()) return;
      found = true;
      st = engine.RecordExecution(id, now, energy_kwh);
    });
    if (found) return st;
  }
  return Status::NotFound("no shard knows offer " + std::to_string(id));
}

void ShardedEdmsRuntime::RecordMeasurement(ActorId actor, TimeSlice slice,
                                           double energy_kwh) {
  size_t i = ShardOf(actor);
  RunOnShard(i, [this, i, actor, slice, energy_kwh] {
    shards_[i]->engine->RecordMeasurement(actor, slice, energy_kwh);
  });
}

void ShardedEdmsRuntime::RecordMeterReadings(
    std::span<const MeterReading> readings) {
  const size_t n = shards_.size();
  if (pool_ == nullptr) {
    EdmsEngine& engine = *shards_[0]->engine;
    for (const MeterReading& r : readings) {
      engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
      if (r.offer_id != 0) {
        (void)engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh);
      }
    }
    return;
  }
  std::vector<std::vector<MeterReading>> buckets(n);
  for (const MeterReading& reading : readings) {
    buckets[ShardOf(reading.actor)].push_back(reading);
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (buckets[i].empty()) continue;
    futures.push_back(shards_[i]->strand->Post([this, i, &buckets] {
      EdmsEngine& engine = *shards_[i]->engine;
      for (const MeterReading& r : buckets[i]) {
        engine.RecordMeasurement(r.actor, r.slice, r.energy_kwh);
        if (r.offer_id != 0) {
          (void)engine.RecordExecution(r.offer_id, r.slice, r.energy_kwh);
        }
      }
    }));
  }
  DrainFutures(futures);
}

std::vector<Event> ShardedEdmsRuntime::PollEvents() {
  // Concatenate the per-shard drains in shard order, then stable-sort by
  // emission slice: within one slice, events keep shard order and each
  // shard's emission order — a deterministic merge for deterministic
  // shard streams, whatever the worker interleaving was.
  std::vector<Event> out;
  for (auto& shard : shards_) {
    std::vector<Event> drained = shard->engine->PollEvents();
    out.insert(out.end(), std::make_move_iterator(drained.begin()),
               std::make_move_iterator(drained.end()));
  }
  if (shards_.size() > 1) {
    std::stable_sort(out.begin(), out.end(),
                     [](const Event& a, const Event& b) {
                       return EventTime(a) < EventTime(b);
                     });
  }
  return out;
}

EngineStats ShardedEdmsRuntime::stats() const {
  EngineStats merged;
  for (const auto& shard : shards_) merged.Merge(shard->engine->stats());
  return merged;
}

const EdmsEngine& ShardedEdmsRuntime::shard(size_t i) const {
  return *shards_[i]->engine;
}

size_t ShardedEdmsRuntime::ShardOf(ActorId owner) const {
  size_t i = config_.router(owner, shards_.size());
  return i < shards_.size() ? i : i % shards_.size();
}

bool ShardedEdmsRuntime::HasSeenOffer(const FlexOffer& offer) const {
  return shards_[ShardOf(offer.owner)]
      ->engine->lifecycle()
      .StateOf(offer.id)
      .ok();
}

}  // namespace mirabel::edms
