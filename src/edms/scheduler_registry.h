#ifndef MIRABEL_EDMS_SCHEDULER_REGISTRY_H_
#define MIRABEL_EDMS_SCHEDULER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "scheduling/scheduler.h"

namespace mirabel::edms {

/// Creates a fresh scheduler instance per scheduling run (schedulers are
/// stateless between runs, but Run() is non-const, so each gate gets its
/// own).
using SchedulerFactory =
    std::function<std::unique_ptr<scheduling::Scheduler>()>;

/// Name-keyed scheduler factory registry. Replaces the stringly-typed
/// `std::string scheduler` config fields: engine/node/simulation configs hold
/// a SchedulerFactory resolved once — at the system edge where a name
/// genuinely originates (CLI flags, bench sweeps) — instead of re-parsing a
/// string at every gate closure. Custom schedulers plug in via Register().
class SchedulerRegistry {
 public:
  /// The process-wide registry, preloaded with the paper's algorithms plus
  /// the optimal-scheduling subsystem: "GreedySearch",
  /// "EvolutionaryAlgorithm", "Exhaustive", "Hybrid", "BranchAndBound",
  /// "Portfolio", "Robust".
  static SchedulerRegistry& Default();

  /// Registers `factory` under `name`; AlreadyExists on duplicates.
  Status Register(const std::string& name, SchedulerFactory factory);

  /// The factory registered under `name`; NotFound otherwise.
  Result<SchedulerFactory> Find(const std::string& name) const;

  /// Convenience: Find(name) and invoke the factory.
  Result<std::unique_ptr<scheduling::Scheduler>> Create(
      const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, SchedulerFactory> factories_;
};

/// Factory for the system default (the paper's randomized greedy search).
/// Engine configs that leave `scheduler_factory` empty resolve to this.
SchedulerFactory DefaultSchedulerFactory();

/// Per-problem-size scheduler budget: the §6 schedulers are anytime
/// algorithms, so budget converts into quality only while there is search
/// space left to explore — a late gate with one small macro offer must not
/// burn the full per-gate cap. Scales `configured_s` linearly with the
/// problem's work measure `num_offers * horizon_length` relative to
/// `reference_work` (the size that earns the full budget), clamped to
/// [min_fraction * configured_s, configured_s]. Non-positive budgets pass
/// through unchanged (iteration-capped deterministic runs stay untouched).
double ScaledTimeBudget(double configured_s, size_t num_offers,
                        int horizon_length, double reference_work,
                        double min_fraction);

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_SCHEDULER_REGISTRY_H_
