#ifndef MIRABEL_EDMS_SCHEDULER_REGISTRY_H_
#define MIRABEL_EDMS_SCHEDULER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "scheduling/scheduler.h"

namespace mirabel::edms {

/// Creates a fresh scheduler instance per scheduling run (schedulers are
/// stateless between runs, but Run() is non-const, so each gate gets its
/// own).
using SchedulerFactory =
    std::function<std::unique_ptr<scheduling::Scheduler>()>;

/// Name-keyed scheduler factory registry. Replaces the stringly-typed
/// `std::string scheduler` config fields: engine/node/simulation configs hold
/// a SchedulerFactory resolved once — at the system edge where a name
/// genuinely originates (CLI flags, bench sweeps) — instead of re-parsing a
/// string at every gate closure. Custom schedulers plug in via Register().
class SchedulerRegistry {
 public:
  /// The process-wide registry, preloaded with the paper's algorithms:
  /// "GreedySearch", "EvolutionaryAlgorithm", "Exhaustive", "Hybrid".
  static SchedulerRegistry& Default();

  /// Registers `factory` under `name`; AlreadyExists on duplicates.
  Status Register(const std::string& name, SchedulerFactory factory);

  /// The factory registered under `name`; NotFound otherwise.
  Result<SchedulerFactory> Find(const std::string& name) const;

  /// Convenience: Find(name) and invoke the factory.
  Result<std::unique_ptr<scheduling::Scheduler>> Create(
      const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, SchedulerFactory> factories_;
};

/// Factory for the system default (the paper's randomized greedy search).
/// Engine configs that leave `scheduler_factory` empty resolve to this.
SchedulerFactory DefaultSchedulerFactory();

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_SCHEDULER_REGISTRY_H_
