#ifndef MIRABEL_EDMS_BASELINE_PROVIDER_H_
#define MIRABEL_EDMS_BASELINE_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "flexoffer/time_slice.h"
#include "forecasting/forecaster.h"

namespace mirabel::edms {

/// Source of the per-slice baseline imbalance (non-flexible demand minus
/// forecast RES supply, kWh; positive = deficit) the engine schedules
/// against. Replaces the injected `baseline_imbalance_kwh` vector of the old
/// node config: the forecasting component plugs in directly, simulations
/// inject precomputed curves, and tests use zeros.
///
/// Threading: one provider instance may be shared by every shard of a
/// ShardedEdmsRuntime, whose workers close their gates concurrently.
/// Implementations must therefore make Baseline() safe to call from
/// multiple threads (stateless reads qualify as-is; caches need a lock).
class BaselineProvider {
 public:
  virtual ~BaselineProvider() = default;

  /// Baseline imbalance for the `length` slices starting at absolute slice
  /// `start`. Must return exactly `length` values on success.
  virtual Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                               int length) = 0;
};

/// All-zero baseline: the engine schedules flex-offers against a flat
/// system. The default when no provider is configured.
class ZeroBaselineProvider : public BaselineProvider {
 public:
  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;
};

/// Serves a precomputed curve indexed by absolute slice (minus `origin`).
/// Slices outside the curve read as 0 — simulations size the curve to the
/// simulated span plus the horizon tail.
class VectorBaselineProvider : public BaselineProvider {
 public:
  explicit VectorBaselineProvider(std::vector<double> imbalance_kwh,
                                  flexoffer::TimeSlice origin = 0)
      : imbalance_kwh_(std::move(imbalance_kwh)), origin_(origin) {}

  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;

 private:
  std::vector<double> imbalance_kwh_;
  flexoffer::TimeSlice origin_;
};

/// Plugs the forecasting component straight into the engine: the baseline is
/// demand forecast minus (optional) RES supply forecast, both produced by
/// maintained Forecaster instances whose history ends at slice `origin`.
/// Requesting slices before `origin` is FailedPrecondition (the past is
/// measured, not forecast).
///
/// The net curve is forecast lazily and cached: a request past the cached
/// span re-forecasts from the origin once, so per-gate cost stays O(horizon)
/// instead of growing with the distance from the origin.
///
/// Threading: read-mostly. In steady state every shard gate reads from the
/// warm cache under a shared lock, so concurrent gate closures of a
/// ShardedEdmsRuntime (or several runtimes on one pool) do not serialize on
/// this provider; only a cache miss takes the exclusive lock to extend the
/// curve. rebuilds() counts those misses (regression-tested: concurrent
/// readers over a warm span must not trigger re-forecasts).
class ForecastBaselineProvider : public BaselineProvider {
 public:
  /// `demand` (required) and `supply` (may be nullptr) must be trained and
  /// outlive the provider. `scale` multiplies the net forecast, letting
  /// MW-scale area forecasts drive kWh-scale scheduling problems. The
  /// forecasters must not receive further measurements while the provider is
  /// in use (the cache snapshots their state).
  ForecastBaselineProvider(forecasting::Forecaster* demand,
                           forecasting::Forecaster* supply,
                           flexoffer::TimeSlice origin, double scale = 1.0)
      : demand_(demand), supply_(supply), origin_(origin), scale_(scale) {}

  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;

  /// Number of cache (re)builds so far — i.e. how often a request missed
  /// the cached span and ran the forecasters under the exclusive lock.
  int64_t rebuilds() const { return rebuilds_.load(std::memory_order_relaxed); }

 private:
  /// Exclusive-lock path: extends cache_ to cover `needed` slices.
  Status ExtendCache(size_t needed);

  forecasting::Forecaster* demand_;
  forecasting::Forecaster* supply_;
  flexoffer::TimeSlice origin_;
  double scale_;
  /// Guards cache_. Warm reads (the shard-gate hot path) take it shared;
  /// only cache extensions take it exclusive.
  std::shared_mutex mu_;
  /// Net (scaled) forecast for slices [origin_, origin_ + cache_.size()).
  std::vector<double> cache_;
  std::atomic<int64_t> rebuilds_{0};
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_BASELINE_PROVIDER_H_
