#ifndef MIRABEL_EDMS_BASELINE_PROVIDER_H_
#define MIRABEL_EDMS_BASELINE_PROVIDER_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "flexoffer/time_slice.h"
#include "forecasting/forecaster.h"

namespace mirabel::edms {

/// Source of the per-slice baseline imbalance (non-flexible demand minus
/// forecast RES supply, kWh; positive = deficit) the engine schedules
/// against. Replaces the injected `baseline_imbalance_kwh` vector of the old
/// node config: the forecasting component plugs in directly, simulations
/// inject precomputed curves, and tests use zeros.
///
/// Threading: one provider instance may be shared by every shard of a
/// ShardedEdmsRuntime, whose workers close their gates concurrently.
/// Implementations must therefore make Baseline() safe to call from
/// multiple threads (stateless reads qualify as-is; caches need a lock).
class BaselineProvider {
 public:
  virtual ~BaselineProvider() = default;

  /// Baseline imbalance for the `length` slices starting at absolute slice
  /// `start`. Must return exactly `length` values on success.
  virtual Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                               int length) = 0;
};

/// All-zero baseline: the engine schedules flex-offers against a flat
/// system. The default when no provider is configured.
class ZeroBaselineProvider : public BaselineProvider {
 public:
  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;
};

/// Serves a precomputed curve indexed by absolute slice (minus `origin`).
/// Slices outside the curve read as 0 — simulations size the curve to the
/// simulated span plus the horizon tail.
class VectorBaselineProvider : public BaselineProvider {
 public:
  explicit VectorBaselineProvider(std::vector<double> imbalance_kwh,
                                  flexoffer::TimeSlice origin = 0)
      : imbalance_kwh_(std::move(imbalance_kwh)), origin_(origin) {}

  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;

 private:
  std::vector<double> imbalance_kwh_;
  flexoffer::TimeSlice origin_;
};

/// Plugs the forecasting component straight into the engine: the baseline is
/// demand forecast minus (optional) RES supply forecast, both produced by
/// maintained Forecaster instances whose history ends at slice `origin`.
/// Requesting slices before `origin` is FailedPrecondition (the past is
/// measured, not forecast).
///
/// The net curve is forecast lazily and cached: a request past the cached
/// span re-forecasts from the origin once, so per-gate cost stays O(horizon)
/// instead of growing with the distance from the origin.
class ForecastBaselineProvider : public BaselineProvider {
 public:
  /// `demand` (required) and `supply` (may be nullptr) must be trained and
  /// outlive the provider. `scale` multiplies the net forecast, letting
  /// MW-scale area forecasts drive kWh-scale scheduling problems. The
  /// forecasters must not receive further measurements while the provider is
  /// in use (the cache snapshots their state).
  ForecastBaselineProvider(forecasting::Forecaster* demand,
                           forecasting::Forecaster* supply,
                           flexoffer::TimeSlice origin, double scale = 1.0)
      : demand_(demand), supply_(supply), origin_(origin), scale_(scale) {}

  Result<std::vector<double>> Baseline(flexoffer::TimeSlice start,
                                       int length) override;

 private:
  forecasting::Forecaster* demand_;
  forecasting::Forecaster* supply_;
  flexoffer::TimeSlice origin_;
  double scale_;
  /// Guards cache_ against concurrent gate closures of runtime shards.
  std::mutex mu_;
  /// Net (scaled) forecast for slices [origin_, origin_ + cache_.size()).
  std::vector<double> cache_;
};

}  // namespace mirabel::edms

#endif  // MIRABEL_EDMS_BASELINE_PROVIDER_H_
