#include "edms/offer_lifecycle.h"

#include <string>

namespace mirabel::edms {

using flexoffer::FlexOfferId;

std::string_view ToString(OfferState state) {
  switch (state) {
    case OfferState::kOffered:
      return "Offered";
    case OfferState::kAccepted:
      return "Accepted";
    case OfferState::kRejected:
      return "Rejected";
    case OfferState::kAggregated:
      return "Aggregated";
    case OfferState::kScheduled:
      return "Scheduled";
    case OfferState::kAssigned:
      return "Assigned";
    case OfferState::kExecuted:
      return "Executed";
    case OfferState::kExpired:
      return "Expired";
  }
  return "Unknown";
}

bool IsTerminal(OfferState state) {
  return state == OfferState::kRejected || state == OfferState::kExecuted ||
         state == OfferState::kExpired;
}

bool TransitionAllowed(OfferState from, OfferState to) {
  switch (from) {
    case OfferState::kOffered:
      return to == OfferState::kAccepted || to == OfferState::kRejected ||
             to == OfferState::kExpired;
    case OfferState::kAccepted:
      return to == OfferState::kAggregated || to == OfferState::kExpired;
    case OfferState::kAggregated:
      return to == OfferState::kScheduled || to == OfferState::kExpired;
    case OfferState::kScheduled:
      return to == OfferState::kAssigned || to == OfferState::kExpired;
    case OfferState::kAssigned:
      return to == OfferState::kExecuted || to == OfferState::kExpired;
    case OfferState::kRejected:
    case OfferState::kExecuted:
    case OfferState::kExpired:
      return false;
  }
  return false;
}

Status OfferLifecycle::Begin(FlexOfferId id) {
  auto [it, inserted] = states_.emplace(id, OfferState::kOffered);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("offer " + std::to_string(id) +
                                 " already has a lifecycle");
  }
  ++counts_[static_cast<int>(OfferState::kOffered)];
  return Status::OK();
}

Result<OfferState> OfferLifecycle::Transition(FlexOfferId id, OfferState to) {
  auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("offer " + std::to_string(id) +
                            " has no lifecycle");
  }
  OfferState from = it->second;
  if (!TransitionAllowed(from, to)) {
    return Status::FailedPrecondition(
        "illegal lifecycle transition " + std::string(ToString(from)) +
        " -> " + std::string(ToString(to)) + " for offer " +
        std::to_string(id));
  }
  it->second = to;
  --counts_[static_cast<int>(from)];
  ++counts_[static_cast<int>(to)];
  return from;
}

Result<OfferState> OfferLifecycle::StateOf(FlexOfferId id) const {
  auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("offer " + std::to_string(id) +
                            " has no lifecycle");
  }
  return it->second;
}

size_t OfferLifecycle::CountInState(OfferState state) const {
  return counts_[static_cast<int>(state)];
}

}  // namespace mirabel::edms
