#include "common/math_util.h"

#include <cmath>

namespace mirabel {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double ScaledSigmoid(double x, double midpoint, double scale) {
  return Sigmoid((x - midpoint) / scale);
}

double Clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

namespace {

Status CheckSameNonEmpty(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.empty()) return Status::InvalidArgument("empty input series");
  if (a.size() != b.size()) {
    return Status::InvalidArgument("series size mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& forecast) {
  MIRABEL_RETURN_IF_ERROR(CheckSameNonEmpty(actual, forecast));
  double acc = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double denom = (std::fabs(actual[i]) + std::fabs(forecast[i])) / 2.0;
    if (denom < 1e-12) continue;
    acc += std::fabs(forecast[i] - actual[i]) / denom;
  }
  return acc / static_cast<double>(actual.size());
}

Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& forecast) {
  MIRABEL_RETURN_IF_ERROR(CheckSameNonEmpty(actual, forecast));
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < 1e-12) continue;
    acc += std::fabs((forecast[i] - actual[i]) / actual[i]);
    ++n;
  }
  if (n == 0) return Status::InvalidArgument("all actual values are zero");
  return acc / static_cast<double>(n);
}

Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& forecast) {
  MIRABEL_ASSIGN_OR_RETURN(double sse, SumSquaredError(actual, forecast));
  return std::sqrt(sse / static_cast<double>(actual.size()));
}

Result<double> SumSquaredError(const std::vector<double>& actual,
                               const std::vector<double>& forecast) {
  MIRABEL_RETURN_IF_ERROR(CheckSameNonEmpty(actual, forecast));
  double acc = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double d = forecast[i] - actual[i];
    acc += d * d;
  }
  return acc;
}

Result<LinearFit> FitLine(const std::vector<double>& x,
                          const std::vector<double>& y) {
  MIRABEL_RETURN_IF_ERROR(CheckSameNonEmpty(x, y));
  if (x.size() < 2) return Status::InvalidArgument("need >= 2 points");
  double mx = Mean(x);
  double my = Mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx < 1e-12) return Status::InvalidArgument("x values are constant");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy < 1e-12 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace mirabel
