#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mirabel {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the 64-bit seed into the 256-bit xoshiro state with SplitMix64, as
  // recommended by the xoshiro authors.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Debiased modulo (rejection sampling).
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u = 1.0 - NextDouble();  // in (0, 1]
  return -std::log(u) / lambda;
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace mirabel
