#ifndef MIRABEL_COMMON_MATH_UTIL_H_
#define MIRABEL_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace mirabel {

/// Logistic sigmoid 1 / (1 + exp(-x)). Used by the negotiation component to
/// normalise flexibility parameters into [0, 1] potentials (paper §7).
double Sigmoid(double x);

/// Scaled sigmoid: Sigmoid((x - midpoint) / scale). Requires scale > 0.
double ScaledSigmoid(double x, double midpoint, double scale);

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; returns 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Symmetric Mean Absolute Percentage Error as used in the paper's Fig. 4:
///   SMAPE = (1/n) * sum |f_i - a_i| / ((|a_i| + |f_i|) / 2)
/// Terms where both actual and forecast are 0 contribute 0.
/// Returns InvalidArgument when sizes differ or inputs are empty.
Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& forecast);

/// Mean Absolute Percentage Error; skips terms with |actual| < 1e-12.
Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& forecast);

/// Root Mean Squared Error.
Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& forecast);

/// Sum of squared errors between two equally sized vectors.
Result<double> SumSquaredError(const std::vector<double>& actual,
                               const std::vector<double>& forecast);

/// Ordinary least squares fit of y = slope * x + intercept.
/// Used e.g. to reproduce the "y = 0.36*x - 0.68" line of Fig. 5(d).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination (R^2) of the fit.
  double r_squared = 0.0;
};

/// Fits a least-squares line through (x_i, y_i). Requires >= 2 points and a
/// non-constant x; returns InvalidArgument otherwise.
Result<LinearFit> FitLine(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace mirabel

#endif  // MIRABEL_COMMON_MATH_UTIL_H_
