#include "common/csv.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace mirabel {

CsvTable::CsvTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvTable::BeginRow() { rows_.emplace_back(); }

void CsvTable::AddCell(std::string value) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(value));
}

void CsvTable::AddNumber(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  AddCell(buf);
}

void CsvTable::AddInt(int64_t value) {
  AddCell(std::to_string(value));
}

void CsvTable::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) os << ',';
    os << headers_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

void CsvTable::WritePretty(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace mirabel
