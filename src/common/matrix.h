#ifndef MIRABEL_COMMON_MATRIX_H_
#define MIRABEL_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace mirabel {

/// Minimal dense row-major matrix of doubles, sufficient for the ordinary
/// least squares solver used by the EGRV multi-equation forecast model.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix initialised to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Returns this^T * this (the normal-equations Gram matrix).
  Matrix TransposeTimesSelf() const;

  /// Returns this^T * v. Requires v.size() == rows().
  std::vector<double> TransposeTimesVector(const std::vector<double>& v) const;

  /// Returns this * v. Requires v.size() == cols().
  std::vector<double> TimesVector(const std::vector<double>& v) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A * x = b via Cholesky
/// decomposition with a small ridge fallback for near-singular systems.
/// Returns InvalidArgument on dimension mismatch, Internal when the system is
/// singular even after regularisation.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// Ordinary least squares: finds beta minimising ||X * beta - y||^2.
/// Requires X.rows() == y.size() and X.rows() >= X.cols().
Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              const std::vector<double>& y);

}  // namespace mirabel

#endif  // MIRABEL_COMMON_MATRIX_H_
