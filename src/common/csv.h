#ifndef MIRABEL_COMMON_CSV_H_
#define MIRABEL_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace mirabel {

/// Accumulates a rectangular table and renders it either as CSV or as an
/// aligned text table. The benchmark harnesses use this to print the series
/// behind each figure of the paper.
class CsvTable {
 public:
  /// Creates a table with the given column headers.
  explicit CsvTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  void BeginRow();

  /// Appends a string cell to the current row.
  void AddCell(std::string value);

  /// Appends a numeric cell, formatted with `precision` significant decimals.
  void AddNumber(double value, int precision = 4);

  /// Appends an integer cell.
  void AddInt(int64_t value);

  size_t num_rows() const { return rows_.size(); }

  /// Writes comma-separated values including the header line.
  void WriteCsv(std::ostream& os) const;

  /// Writes an aligned, human-readable table.
  void WritePretty(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mirabel

#endif  // MIRABEL_COMMON_CSV_H_
