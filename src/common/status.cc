#include "common/status.h"

namespace mirabel {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mirabel
