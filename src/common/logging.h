#ifndef MIRABEL_COMMON_LOGGING_H_
#define MIRABEL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mirabel {

/// Log severity levels, coarsest filter wins.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via the MIRABEL_LOG
/// macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Stream-style logging:
///   MIRABEL_LOG(kInfo) << "aggregated " << n << " offers";
#define MIRABEL_LOG(level)                                          \
  if (::mirabel::LogLevel::level < ::mirabel::GetLogLevel()) {      \
  } else                                                            \
    ::mirabel::internal::LogMessage(::mirabel::LogLevel::level,     \
                                    __FILE__, __LINE__)             \
        .stream()

}  // namespace mirabel

#endif  // MIRABEL_COMMON_LOGGING_H_
