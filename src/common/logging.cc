#include "common/logging.h"

#include <cstring>
#include <iostream>

namespace mirabel {

namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << '[' << LevelName(level) << ' ' << Basename(file) << ':' << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  (void)level_;
}

}  // namespace internal

}  // namespace mirabel
