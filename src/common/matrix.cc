#include "common/matrix.h"

#include <cmath>

namespace mirabel {

Matrix Matrix::TransposeTimesSelf() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      if (row[i] == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        out.At(i, j) += row[i] * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

std::vector<double> Matrix::TransposeTimesVector(
    const std::vector<double>& v) const {
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * v[r];
  }
  return out;
}

std::vector<double> Matrix::TimesVector(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

namespace {

// In-place Cholesky of the lower triangle; returns false when a pivot is
// non-positive (matrix not positive definite).
bool CholeskyDecompose(Matrix* a) {
  size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = a->At(j, j);
    for (size_t k = 0; k < j; ++k) d -= a->At(j, k) * a->At(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    double lj = std::sqrt(d);
    a->At(j, j) = lj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a->At(i, j);
      for (size_t k = 0; k < j; ++k) s -= a->At(i, k) * a->At(j, k);
      a->At(i, j) = s / lj;
    }
  }
  return true;
}

std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  size_t n = l.rows();
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.At(i, k) * y[k];
    y[i] = s / l.At(i, i);
  }
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l.At(k, i) * x[k];
    x[i] = s / l.At(i, i);
  }
  return x;
}

}  // namespace

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveSpd requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd dimension mismatch");
  }
  // Try plain Cholesky, then progressively stronger ridge regularisation.
  for (double ridge : {0.0, 1e-9, 1e-6, 1e-3}) {
    Matrix work = a;
    for (size_t i = 0; i < work.rows(); ++i) {
      work.At(i, i) += ridge * (1.0 + std::fabs(a.At(i, i)));
    }
    if (CholeskyDecompose(&work)) return CholeskySolve(work, b);
  }
  return Status::Internal("matrix is singular");
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& x,
                                              const std::vector<double>& y) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("design matrix / target size mismatch");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument("underdetermined least-squares system");
  }
  Matrix gram = x.TransposeTimesSelf();
  std::vector<double> rhs = x.TransposeTimesVector(y);
  return SolveSpd(gram, rhs);
}

}  // namespace mirabel
