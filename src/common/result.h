#ifndef MIRABEL_COMMON_RESULT_H_
#define MIRABEL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mirabel {

/// Result<T> holds either a value of type T or an error Status.
///
/// Usage:
///   Result<AggregatedFlexOffer> r = Aggregate(offers);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`. Intentionally implicit so that
  /// functions can `return value;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a Result holding a non-OK `status`. Intentionally implicit so
  /// that functions can `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked by assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the error
/// Status. `lhs` may include a declaration, e.g.
///   MIRABEL_ASSIGN_OR_RETURN(auto agg, Aggregate(offers));
#define MIRABEL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                  \
  if (!result_name.ok()) return result_name.status();         \
  lhs = std::move(result_name).value()

#define MIRABEL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define MIRABEL_ASSIGN_OR_RETURN_NAME(x, y) \
  MIRABEL_ASSIGN_OR_RETURN_CONCAT(x, y)

#define MIRABEL_ASSIGN_OR_RETURN(lhs, expr)                            \
  MIRABEL_ASSIGN_OR_RETURN_IMPL(                                       \
      MIRABEL_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace mirabel

#endif  // MIRABEL_COMMON_RESULT_H_
