#ifndef MIRABEL_COMMON_STATUS_H_
#define MIRABEL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mirabel {

/// Status codes used across the MIRABEL library. Modelled after the
/// Arrow/RocksDB idiom: library functions that can fail return a Status (or a
/// Result<T>, see result.h) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kTimeout = 8,
  kResourceExhausted = 9,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A Status carries either success ("OK") or an error code plus message.
///
/// Usage:
///   Status s = offer.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Evaluates `expr` once.
#define MIRABEL_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::mirabel::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace mirabel

#endif  // MIRABEL_COMMON_STATUS_H_
