#ifndef MIRABEL_COMMON_RNG_H_
#define MIRABEL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mirabel {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (workload generators, the
/// evolutionary scheduler, simulated annealing, ...) takes an explicit seed so
/// that tests and benchmark harnesses are exactly reproducible. std::mt19937
/// is avoided because its distributions are not stable across standard-library
/// implementations; all distribution logic here is self-contained.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Exponentially distributed value with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Derives an independent child generator; useful to give each worker or
  /// entity its own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mirabel

#endif  // MIRABEL_COMMON_RNG_H_
