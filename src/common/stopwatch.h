#ifndef MIRABEL_COMMON_STOPWATCH_H_
#define MIRABEL_COMMON_STOPWATCH_H_

#include <chrono>

namespace mirabel {

/// Wall-clock stopwatch over std::chrono::steady_clock, used by the benchmark
/// harnesses and the time-budgeted optimisers (estimators, schedulers).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mirabel

#endif  // MIRABEL_COMMON_STOPWATCH_H_
