#ifndef MIRABEL_COMMON_STOPWATCH_H_
#define MIRABEL_COMMON_STOPWATCH_H_

#include <chrono>

namespace mirabel {

/// Wall-clock stopwatch over std::chrono::steady_clock, used by the benchmark
/// harnesses and the time-budgeted optimisers (estimators, schedulers).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Amortizes the clock reads of a time-budgeted anytime loop: instead of one
/// steady_clock syscall per candidate evaluation, Exhausted(n) counts charged
/// evaluations and samples the stopwatch only every `stride` of them. The
/// stride is derived from the elapsed time between a baseline sample and the
/// first sample after measurable work has accrued — early samples typically
/// cover only loop setup, which would wildly underestimate the
/// per-evaluation cost — sized so roughly 64 samples span the budget,
/// clamped to [1, 64] evaluations. Slow evaluations
/// (huge problems) thus still observe the budget promptly while fast ones
/// stop paying a syscall each; the budget may be overshot by up to one
/// stride of evaluations (~1/64th of the budget).
///
/// A non-positive budget disables the gate: Exhausted() is then a constant
/// false with zero clock reads, which keeps iteration-capped runs
/// bit-deterministic.
class BudgetGate {
 public:
  /// `watch` must outlive the gate.
  BudgetGate(const Stopwatch& watch, double budget_s)
      : watch_(&watch), budget_s_(budget_s) {}

  /// Charges `evals` evaluations against the budget; true once it is spent.
  bool Exhausted(int64_t evals = 1) {
    if (budget_s_ <= 0.0) return false;
    if (exhausted_) return true;
    charged_ += evals;
    if (charged_ < next_sample_) return false;
    Sample();
    return exhausted_;
  }

 private:
  void Sample() {
    const double elapsed = watch_->ElapsedSeconds();
    if (elapsed >= budget_s_) {
      exhausted_ = true;
      return;
    }
    if (last_elapsed_ < 0.0) {
      // First sample: usually taken before any evaluation has finished, so
      // it measures setup only. Record the baseline and keep sampling every
      // charge until enough time accrues to calibrate.
      last_elapsed_ = elapsed;
      last_charged_ = charged_;
    } else if (stride_ == 0) {
      // Calibrate only once the delta since the baseline covers measurable
      // work (>= budget/256): early charges may be cheap bookkeeping (a
      // shuffle, a generation setup) that would wildly understate the
      // per-evaluation cost. The derived stride is then at most 4x the
      // charges that accumulated budget/256 of time, bounding the overshoot
      // past the budget to ~budget/64 regardless of the call pattern.
      const int64_t delta_evals =
          charged_ - last_charged_ > 0 ? charged_ - last_charged_ : 1;
      const double delta_t = elapsed - last_elapsed_;
      if (delta_t >= budget_s_ / 256.0) {
        const double per_eval = delta_t / static_cast<double>(delta_evals);
        const double target_evals = (budget_s_ / 64.0) / per_eval;
        stride_ = target_evals < 1.0 ? 1
                  : target_evals > static_cast<double>(kMaxStride)
                      ? kMaxStride
                      : static_cast<int64_t>(target_evals);
      } else if (delta_evals >= kMaxStride) {
        // kMaxStride charges cost under budget/256 of time: evaluations are
        // so fast the max stride overshoots by under budget/256.
        stride_ = kMaxStride;
      }
    }
    next_sample_ = charged_ + (stride_ > 0 ? stride_ : 1);
  }

  static constexpr int64_t kMaxStride = 64;

  const Stopwatch* watch_;
  double budget_s_;
  int64_t charged_ = 0;
  int64_t next_sample_ = 1;
  int64_t stride_ = 0;
  int64_t last_charged_ = 0;
  double last_elapsed_ = -1.0;
  bool exhausted_ = false;
};

}  // namespace mirabel

#endif  // MIRABEL_COMMON_STOPWATCH_H_
