#ifndef MIRABEL_NEGOTIATION_NEGOTIATOR_H_
#define MIRABEL_NEGOTIATION_NEGOTIATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "negotiation/pricing.h"

namespace mirabel::negotiation {

/// Outcome of negotiating one flex-offer between a prosumer and its BRP
/// ("Negotiation in MIRABEL finds an agreement between the prosumer and its
/// BRP about the price for flex-offers", paper §7).
struct NegotiationOutcome {
  enum class Decision {
    /// BRP accepted; `agreed_price_eur` is binding.
    kAgreed,
    /// BRP rejected the offer ("the rejection of a flex-offer does not imply
    /// that the prosumer is not allowed to produce or consume the energy ...
    /// The BRP just waives the option to control the load").
    kRejectedByBrp,
    /// BRP's price offer fell below the prosumer's reservation price.
    kRejectedByProsumer,
  };
  Decision decision = Decision::kRejectedByBrp;
  /// Price the BRP pays the prosumer for the flexibility (EUR).
  double agreed_price_eur = 0.0;
  /// The BRP's estimated value of the offer (EUR), for auditing.
  double brp_value_eur = 0.0;
};

/// The BRP side of the negotiation component. The BRP estimates the offer's
/// pre-execution value (MonetizeFlexibility), keeps a margin, and proposes
/// the remainder to the prosumer. The prosumer accepts when the proposal
/// clears its reservation price.
class Negotiator {
 public:
  struct Config {
    /// Fraction of the estimated value the BRP keeps as margin.
    double brp_margin = 0.4;
    AcceptancePolicy::Config acceptance;
    MonetizeFlexibilityPricer::Weights weights;
    PotentialConfig potentials;
  };

  Negotiator();
  explicit Negotiator(const Config& config);

  /// Runs the accept/price/counter-accept protocol for one offer.
  /// `reservation_price_eur` is the minimum payment the prosumer demands for
  /// handing over control (0 accepts any positive proposal).
  NegotiationOutcome Negotiate(const flexoffer::FlexOffer& offer,
                               double reservation_price_eur) const;

  /// Post-execution settlement under the profit-sharing scheme: returns the
  /// payout owed for an executed offer given realised costs.
  double SettleProfitShare(double baseline_cost_eur, double realized_cost_eur,
                           double prosumer_share = 0.3) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  MonetizeFlexibilityPricer pricer_;
  AcceptancePolicy acceptance_;
};

}  // namespace mirabel::negotiation

#endif  // MIRABEL_NEGOTIATION_NEGOTIATOR_H_
