#include "negotiation/negotiator.h"

namespace mirabel::negotiation {

Negotiator::Negotiator() : Negotiator(Config()) {}

Negotiator::Negotiator(const Config& config)
    : config_(config),
      pricer_(config.weights, config.potentials),
      acceptance_(config.acceptance,
                  MonetizeFlexibilityPricer(config.weights, config.potentials)) {}

NegotiationOutcome Negotiator::Negotiate(const flexoffer::FlexOffer& offer,
                                         double reservation_price_eur) const {
  NegotiationOutcome outcome;
  outcome.brp_value_eur = pricer_.Value(offer);

  if (!acceptance_.Accepts(offer)) {
    outcome.decision = NegotiationOutcome::Decision::kRejectedByBrp;
    return outcome;
  }

  double proposal = outcome.brp_value_eur * (1.0 - config_.brp_margin);
  if (proposal < reservation_price_eur) {
    outcome.decision = NegotiationOutcome::Decision::kRejectedByProsumer;
    outcome.agreed_price_eur = 0.0;
    return outcome;
  }
  outcome.decision = NegotiationOutcome::Decision::kAgreed;
  outcome.agreed_price_eur = proposal;
  return outcome;
}

double Negotiator::SettleProfitShare(double baseline_cost_eur,
                                     double realized_cost_eur,
                                     double prosumer_share) const {
  return ProfitSharingPricer(prosumer_share)
      .Payout(baseline_cost_eur, realized_cost_eur);
}

}  // namespace mirabel::negotiation
