#ifndef MIRABEL_NEGOTIATION_FLEXIBILITY_METRICS_H_
#define MIRABEL_NEGOTIATION_FLEXIBILITY_METRICS_H_

#include "flexoffer/flex_offer.h"

namespace mirabel::negotiation {

/// The three flexibility parameters a BRP can monetise (paper §7):
struct FlexibilityMetrics {
  /// Assignment flexibility: "the time left for re-scheduling a flex-offer"
  /// — slices between creation and the assignment deadline.
  int64_t assignment_flexibility = 0;
  /// Scheduling flexibility: "the time range within [which] a flex-offer can
  /// be scheduled" — the time-flexibility window width in slices.
  int64_t scheduling_flexibility = 0;
  /// Energy flexibility: "the amount of energy which is dispatchable by the
  /// BRP" — the summed per-slice band width in kWh.
  double energy_flexibility_kwh = 0.0;
};

/// Extracts the metrics from an offer.
FlexibilityMetrics ComputeFlexibilityMetrics(const flexoffer::FlexOffer& offer);

/// Normalisation of one flexibility parameter to a potential in (0, 1) via
/// the sigmoid (paper §7: "normalized to flexibility potentials by applying a
/// function, e.g. the sigmoid function").
struct PotentialScale {
  /// Parameter value mapped to potential 0.5.
  double midpoint = 0.0;
  /// Spread; larger = flatter response. Must be > 0.
  double scale = 1.0;
};

/// Normalised flexibility potentials of one offer, each in (0, 1).
struct FlexibilityPotentials {
  double assignment = 0.0;
  double scheduling = 0.0;
  double energy = 0.0;
};

/// Sigmoid scales per parameter; defaults tuned for 15-minute slices and
/// household-scale energies.
struct PotentialConfig {
  PotentialScale assignment{/*midpoint=*/16.0, /*scale=*/8.0};   // ~4 h
  PotentialScale scheduling{/*midpoint=*/12.0, /*scale=*/6.0};   // ~3 h
  PotentialScale energy{/*midpoint=*/5.0, /*scale=*/3.0};        // kWh
};

/// Maps metrics to potentials under `config`.
FlexibilityPotentials ComputePotentials(const FlexibilityMetrics& metrics,
                                        const PotentialConfig& config);

}  // namespace mirabel::negotiation

#endif  // MIRABEL_NEGOTIATION_FLEXIBILITY_METRICS_H_
