#include "negotiation/pricing.h"

#include <algorithm>

namespace mirabel::negotiation {

MonetizeFlexibilityPricer::MonetizeFlexibilityPricer()
    : MonetizeFlexibilityPricer(Weights(), PotentialConfig()) {}

MonetizeFlexibilityPricer::MonetizeFlexibilityPricer(
    const Weights& weights, const PotentialConfig& potentials)
    : weights_(weights), potentials_(potentials) {}

double MonetizeFlexibilityPricer::Value(
    const flexoffer::FlexOffer& offer) const {
  FlexibilityMetrics metrics = ComputeFlexibilityMetrics(offer);
  FlexibilityPotentials p = ComputePotentials(metrics, potentials_);
  // An offer with no scheduling flexibility "may still provide a benefit for
  // the BRP if it offers Energy flexibility" (§7) — the weighted sum handles
  // that naturally.
  return weights_.assignment_eur * p.assignment +
         weights_.scheduling_eur * p.scheduling +
         weights_.energy_eur * p.energy;
}

ProfitSharingPricer::ProfitSharingPricer(double prosumer_share)
    : prosumer_share_(std::clamp(prosumer_share, 0.0, 1.0)) {}

double ProfitSharingPricer::Payout(double baseline_cost_eur,
                                   double realized_cost_eur) const {
  double profit = baseline_cost_eur - realized_cost_eur;
  return profit > 0.0 ? prosumer_share_ * profit : 0.0;
}

AcceptancePolicy::AcceptancePolicy()
    : AcceptancePolicy(Config(), MonetizeFlexibilityPricer()) {}

AcceptancePolicy::AcceptancePolicy(const Config& config,
                                   const MonetizeFlexibilityPricer& pricer)
    : config_(config), pricer_(pricer) {}

AcceptancePolicy::Verdict AcceptancePolicy::Evaluate(
    const flexoffer::FlexOffer& offer) const {
  FlexibilityMetrics metrics = ComputeFlexibilityMetrics(offer);
  if (metrics.assignment_flexibility < config_.min_processing_slices) {
    return Verdict::kTooLateToProcess;
  }
  if (pricer_.Value(offer) < config_.min_value_eur) {
    return Verdict::kTooLittleValue;
  }
  return Verdict::kAccepted;
}

}  // namespace mirabel::negotiation
