#include "negotiation/flexibility_metrics.h"

#include "common/math_util.h"

namespace mirabel::negotiation {

FlexibilityMetrics ComputeFlexibilityMetrics(
    const flexoffer::FlexOffer& offer) {
  FlexibilityMetrics m;
  m.assignment_flexibility = offer.assignment_before - offer.creation_time;
  m.scheduling_flexibility = offer.TimeFlexibility();
  m.energy_flexibility_kwh = offer.TotalEnergyFlexibility();
  return m;
}

FlexibilityPotentials ComputePotentials(const FlexibilityMetrics& metrics,
                                        const PotentialConfig& config) {
  FlexibilityPotentials p;
  p.assignment = ScaledSigmoid(
      static_cast<double>(metrics.assignment_flexibility),
      config.assignment.midpoint, config.assignment.scale);
  p.scheduling = ScaledSigmoid(
      static_cast<double>(metrics.scheduling_flexibility),
      config.scheduling.midpoint, config.scheduling.scale);
  p.energy = ScaledSigmoid(metrics.energy_flexibility_kwh,
                           config.energy.midpoint, config.energy.scale);
  return p;
}

}  // namespace mirabel::negotiation
