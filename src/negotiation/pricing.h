#ifndef MIRABEL_NEGOTIATION_PRICING_H_
#define MIRABEL_NEGOTIATION_PRICING_H_

#include "common/result.h"
#include "negotiation/flexibility_metrics.h"

namespace mirabel::negotiation {

/// Price-setting scheme A — "Monetize Flexibility" (paper §7): the value of a
/// flex-offer is the weighted sum of its flexibility potentials, computable
/// *before* execution time and therefore usable as an acceptance criterion.
class MonetizeFlexibilityPricer {
 public:
  struct Weights {
    /// EUR paid for a fully saturated potential of each kind.
    double assignment_eur = 0.5;
    double scheduling_eur = 1.5;
    double energy_eur = 1.0;
  };

  MonetizeFlexibilityPricer();
  MonetizeFlexibilityPricer(const Weights& weights,
                            const PotentialConfig& potentials);

  /// Value of `offer` to the BRP in EUR (>= 0).
  double Value(const flexoffer::FlexOffer& offer) const;

  const Weights& weights() const { return weights_; }

 private:
  Weights weights_;
  PotentialConfig potentials_;
};

/// Price-setting scheme B — "Share Realized Profit" (paper §7): after
/// execution, the BRP computes the profit this flex-offer realised (cost of
/// serving the load under the fallback schedule minus cost under the actual
/// schedule) and shares a fraction with the prosumer. "Any price setting
/// after execution time can not be used as an acceptance criteria."
class ProfitSharingPricer {
 public:
  /// `prosumer_share` in [0, 1]: fraction of realised profit paid out.
  explicit ProfitSharingPricer(double prosumer_share = 0.3);

  /// Payout in EUR given the BRP's realised costs with and without the
  /// flexibility. Negative profit (a loss) yields a zero payout — the
  /// prosumer is never charged for the BRP's planning.
  double Payout(double baseline_cost_eur, double realized_cost_eur) const;

  double prosumer_share() const { return prosumer_share_; }

 private:
  double prosumer_share_;
};

/// Flex-offer acceptance policy (paper §7 "Flex-Offer Acceptance"): "the BRP
/// must be able to reject a flex-offer that generate loss or can not be
/// processed in time."
class AcceptancePolicy {
 public:
  struct Config {
    /// Minimum pre-execution value (MonetizeFlexibility) for acceptance.
    double min_value_eur = 0.05;
    /// Slices the BRP needs to process an offer; offers whose assignment
    /// flexibility is below this cannot be processed in time.
    int64_t min_processing_slices = 4;
  };

  AcceptancePolicy();
  explicit AcceptancePolicy(const Config& config,
                            const MonetizeFlexibilityPricer& pricer =
                                MonetizeFlexibilityPricer());

  /// Why an offer was rejected (or kAccepted).
  enum class Verdict { kAccepted, kTooLittleValue, kTooLateToProcess };

  Verdict Evaluate(const flexoffer::FlexOffer& offer) const;
  bool Accepts(const flexoffer::FlexOffer& offer) const {
    return Evaluate(offer) == Verdict::kAccepted;
  }

 private:
  Config config_;
  MonetizeFlexibilityPricer pricer_;
};

}  // namespace mirabel::negotiation

#endif  // MIRABEL_NEGOTIATION_PRICING_H_
