// A balance-responsible party's trading day at realistic scale: forecast the
// area's demand and wind supply with the forecasting component, collect and
// negotiate thousands of prosumer flex-offers, aggregate them (P2-style
// parameters plus bin-packer), schedule the macro offers with the
// evolutionary algorithm, and disaggregate back to micro schedules.
#include <cstdio>
#include <limits>
#include <iostream>

#include "aggregation/pipeline.h"
#include "common/stopwatch.h"
#include "datagen/energy_series_generator.h"
#include "datagen/flex_offer_generator.h"
#include "forecasting/forecaster.h"
#include "negotiation/negotiator.h"
#include "scheduling/scheduler.h"

using namespace mirabel;             // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main() {
  Stopwatch total_watch;

  // --- Forecasting: train HWT on 4 weeks of area history -------------------
  datagen::DemandSeriesConfig demand_cfg;
  demand_cfg.periods_per_day = kSlicesPerDay;
  demand_cfg.days = 29;
  demand_cfg.base_load_mw = 5000.0;  // kWh per slice at BRP scale
  demand_cfg.daily_amplitude = 1500.0;
  demand_cfg.weekly_amplitude = 400.0;
  demand_cfg.noise_stddev = 60.0;
  std::vector<double> demand_history =
      datagen::GenerateDemandSeries(demand_cfg);

  datagen::WindSeriesConfig wind_cfg;
  wind_cfg.periods_per_day = kSlicesPerDay;
  wind_cfg.days = 29;
  wind_cfg.capacity_mw = 4000.0;
  std::vector<double> wind_history = datagen::GenerateWindSeries(wind_cfg);

  // Hold out the final day: that's the trading day we schedule.
  size_t train = static_cast<size_t>(28 * kSlicesPerDay);
  forecasting::ForecasterConfig fc;
  fc.seasonal_periods = {kSlicesPerDay, 7 * kSlicesPerDay};
  fc.initial_estimation = {0.5, 0, 11};
  forecasting::Forecaster demand_forecaster(fc);
  forecasting::Forecaster wind_forecaster(fc);
  {
    forecasting::TimeSeries demand_series(
        std::vector<double>(demand_history.begin(),
                            demand_history.begin() + train),
        kSlicesPerDay);
    forecasting::TimeSeries wind_series(
        std::vector<double>(wind_history.begin(),
                            wind_history.begin() + train),
        kSlicesPerDay);
    if (!demand_forecaster.Train(demand_series).ok() ||
        !wind_forecaster.Train(wind_series).ok()) {
      std::cerr << "forecaster training failed\n";
      return 1;
    }
  }
  auto demand_fc = demand_forecaster.Forecast(kSlicesPerDay);
  auto wind_fc = wind_forecaster.Forecast(kSlicesPerDay);
  if (!demand_fc.ok() || !wind_fc.ok()) {
    std::cerr << "forecast failed\n";
    return 1;
  }
  std::puts("forecasts for the trading day ready (demand + wind, HWT)");

  // --- Offers: 10k prosumer flex-offers, negotiated then aggregated --------
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = 10000;
  workload.seed = 99;
  workload.horizon_days = 1;
  std::vector<FlexOffer> offers = datagen::GenerateFlexOffers(workload);

  negotiation::Negotiator negotiator;
  aggregation::PipelineConfig agg_cfg;
  agg_cfg.params = aggregation::AggregationParams::P2();
  aggregation::BinPackerBounds bounds;
  bounds.max_offers = 256;
  agg_cfg.bin_packer = bounds;
  aggregation::AggregationPipeline pipeline(agg_cfg);

  int accepted = 0;
  int rejected = 0;
  double payments = 0.0;
  for (const FlexOffer& fo : offers) {
    auto outcome = negotiator.Negotiate(fo, 0.0);
    if (outcome.decision ==
        negotiation::NegotiationOutcome::Decision::kAgreed) {
      if (pipeline.Insert(fo).ok()) {
        ++accepted;
        payments += outcome.agreed_price_eur;
        continue;
      }
    }
    ++rejected;
  }
  Stopwatch agg_watch;
  pipeline.Flush();
  auto stats = pipeline.Stats();
  std::printf("negotiation: %d accepted, %d rejected, %.0f EUR flexibility "
              "payments\n",
              accepted, rejected, payments);
  std::printf("aggregation: %zu offers -> %zu macros (%.1fx) in %.2fs, "
              "avg tf loss %.2f slices\n",
              stats.offer_count, stats.aggregate_count,
              stats.compression_ratio, agg_watch.ElapsedSeconds(),
              stats.avg_time_flexibility_loss);

  // --- Scheduling: balance the day with the macro offers --------------------
  scheduling::SchedulingProblem problem;
  problem.horizon_start = 0;
  problem.horizon_length = 2 * kSlicesPerDay;  // day + spill-over for tails
  size_t h = static_cast<size_t>(problem.horizon_length);
  problem.baseline_imbalance_kwh.assign(h, 0.0);
  for (size_t s = 0; s < h; ++s) {
    size_t idx = s % static_cast<size_t>(kSlicesPerDay);
    problem.baseline_imbalance_kwh[s] =
        ((*demand_fc)[idx] - (*wind_fc)[idx]) / 100.0;  // scale to flex size
  }
  problem.imbalance_penalty_eur.assign(h, 0.25);
  problem.market.buy_price_eur.assign(h, 0.12);
  problem.market.sell_price_eur.assign(h, 0.05);
  problem.market.max_buy_kwh = 40.0;
  problem.market.max_sell_kwh = 40.0;
  for (const auto& [id, agg] : pipeline.aggregates()) {
    const FlexOffer& m = agg.macro;
    if (m.earliest_start >= 0 &&
        m.LatestEnd() <= problem.horizon_length) {
      problem.offers.push_back(m);
    }
  }
  std::printf("scheduling %zu macro offers...\n", problem.offers.size());

  scheduling::EvolutionaryScheduler scheduler;
  scheduling::SchedulerOptions options;
  options.time_budget_s = 3.0;
  options.seed = 7;
  auto run = scheduler.Run(problem, options);
  if (!run.ok()) {
    std::cerr << "scheduling failed: " << run.status() << "\n";
    return 1;
  }
  std::printf("schedule cost %.0f EUR after %d generations\n",
              run->cost.total(), run->iterations);

  // --- Disaggregation: macro schedules back to prosumers --------------------
  scheduling::CostEvaluator evaluator(problem);
  (void)evaluator.SetSchedule(run->schedule);
  Stopwatch disagg_watch;
  size_t micro_count = 0;
  for (const auto& macro_schedule : evaluator.ToScheduledOffers()) {
    auto micro = pipeline.DisaggregateSchedule(macro_schedule);
    if (micro.ok()) micro_count += micro->size();
  }
  std::printf("disaggregated to %zu micro schedules in %.2fs\n", micro_count,
              disagg_watch.ElapsedSeconds());
  std::printf("trading day done in %.1fs\n", total_watch.ElapsedSeconds());
  return 0;
}
