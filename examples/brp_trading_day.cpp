// A balance-responsible party's trading day at realistic scale: train the
// forecasting component on 4 weeks of area history, plug it straight into a
// ShardedEdmsRuntime via ForecastBaselineProvider, stream thousands of
// prosumer flex-offers through batch intake, and let the per-shard control
// loops negotiate, aggregate (P2 + bin-packer), schedule with the
// evolutionary algorithm and disaggregate — all observed through the merged
// typed event stream. Pass a shard count as the first argument (default 1).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/stopwatch.h"
#include "datagen/energy_series_generator.h"
#include "datagen/flex_offer_generator.h"
#include "edms/sharded_runtime.h"
#include "forecasting/forecaster.h"

using namespace mirabel;             // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main(int argc, char** argv) {
  size_t num_shards = 1;
  if (argc > 1) {
    long parsed = std::strtol(argv[1], nullptr, 10);
    num_shards = parsed < 1 ? 1 : (parsed > 64 ? 64 : static_cast<size_t>(parsed));
  }
  Stopwatch total_watch;

  // --- Forecasting: train HWT on 4 weeks of area history -------------------
  datagen::DemandSeriesConfig demand_cfg;
  demand_cfg.periods_per_day = kSlicesPerDay;
  demand_cfg.days = 29;
  demand_cfg.base_load_mw = 5000.0;  // kWh per slice at BRP scale
  demand_cfg.daily_amplitude = 1500.0;
  demand_cfg.weekly_amplitude = 400.0;
  demand_cfg.noise_stddev = 60.0;
  std::vector<double> demand_history =
      datagen::GenerateDemandSeries(demand_cfg);

  datagen::WindSeriesConfig wind_cfg;
  wind_cfg.periods_per_day = kSlicesPerDay;
  wind_cfg.days = 29;
  wind_cfg.capacity_mw = 4000.0;
  std::vector<double> wind_history = datagen::GenerateWindSeries(wind_cfg);

  // Hold out the final day: that's the trading day the engine schedules.
  size_t train = static_cast<size_t>(28 * kSlicesPerDay);
  forecasting::ForecasterConfig fc;
  fc.seasonal_periods = {kSlicesPerDay, 7 * kSlicesPerDay};
  fc.initial_estimation = {0.5, 0, 11};
  forecasting::Forecaster demand_forecaster(fc);
  forecasting::Forecaster wind_forecaster(fc);
  {
    forecasting::TimeSeries demand_series(
        std::vector<double>(demand_history.begin(),
                            demand_history.begin() + train),
        kSlicesPerDay);
    forecasting::TimeSeries wind_series(
        std::vector<double>(wind_history.begin(),
                            wind_history.begin() + train),
        kSlicesPerDay);
    if (!demand_forecaster.Train(demand_series).ok() ||
        !wind_forecaster.Train(wind_series).ok()) {
      std::cerr << "forecaster training failed\n";
      return 1;
    }
  }
  std::puts("forecasters for the trading day ready (demand + wind, HWT)");

  // --- The engine: forecasting plugged in directly -------------------------
  // Slice 0 of the engine clock is the first slice after the training
  // history; the provider forecasts demand minus wind on demand, scaled down
  // to the flexible-load magnitude (as in the paper's experiments).
  edms::EdmsEngine::Config config;
  config.actor = 100;
  config.negotiate = true;
  config.aggregation.params = aggregation::AggregationParams::P2();
  aggregation::BinPackerBounds bounds;
  bounds.max_offers = 256;
  config.aggregation.bin_packer = bounds;
  config.gate_period = 16;
  config.horizon = 2 * kSlicesPerDay;  // day + spill-over for tails
  config.scheduler_factory = [] {
    return std::make_unique<scheduling::EvolutionaryScheduler>();
  };
  config.scheduler_budget_s = 0.5;
  config.seed = 7;
  config.penalty_eur_per_kwh = 0.25;
  config.buy_price_eur = 0.12;
  config.sell_price_eur = 0.05;
  config.max_buy_kwh = 40.0;
  config.max_sell_kwh = 40.0;
  config.baseline = std::make_shared<edms::ForecastBaselineProvider>(
      &demand_forecaster, &wind_forecaster, /*origin=*/0, /*scale=*/0.01);
  edms::ShardedEdmsRuntime::Config runtime_config;
  runtime_config.num_shards = num_shards;
  runtime_config.engine = config;
  edms::ShardedEdmsRuntime engine(runtime_config);
  std::printf("runtime: %zu engine shard(s)\n", engine.num_shards());

  // --- Offers: 10k prosumer flex-offers, batch intake ----------------------
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = 10000;
  workload.seed = 99;
  workload.horizon_days = 1;
  std::vector<FlexOffer> offers = datagen::GenerateFlexOffers(workload);

  Stopwatch intake_watch;
  auto accepted = engine.SubmitOffers(offers, 0);
  if (!accepted.ok()) {
    std::cerr << "intake failed: " << accepted.status() << "\n";
    return 1;
  }
  std::printf("negotiation: %zu accepted, %lld rejected, %.0f EUR "
              "flexibility payments (%.2fs)\n",
              *accepted, static_cast<long long>(engine.stats().offers_rejected),
              engine.stats().payments_eur, intake_watch.ElapsedSeconds());

  // --- The control loop: gates fire across the trading day -----------------
  Stopwatch loop_watch;
  size_t macros = 0;
  size_t micro_schedules = 0;
  size_t expired = 0;
  for (TimeSlice now = 0; now < 2 * kSlicesPerDay; now += config.gate_period) {
    if (Status st = engine.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      return 1;
    }
    for (const edms::Event& event : engine.PollEvents()) {
      if (std::get_if<edms::MacroPublished>(&event) != nullptr) {
        ++macros;
      } else if (std::get_if<edms::ScheduleAssigned>(&event) != nullptr) {
        ++micro_schedules;
      } else if (std::get_if<edms::OfferExpired>(&event) != nullptr) {
        ++expired;
      }
    }
  }

  const edms::EngineStats stats = engine.stats();
  size_t pooled = 0;
  for (size_t i = 0; i < engine.num_shards(); ++i) {
    pooled += engine.shard(i).pipeline().Stats().offer_count;
  }
  std::printf("control loop: %lld scheduling runs, %zu macro offers, "
              "%zu micro schedules, %zu expired (%.2fs)\n",
              static_cast<long long>(stats.scheduling_runs), macros,
              micro_schedules, expired, loop_watch.ElapsedSeconds());
  // Imbalance reduction, not the raw before/after: the raw totals count
  // the shared area baseline once per shard's scheduling problem.
  std::printf("imbalance reduced %.0f kWh, schedule cost %.0f EUR, "
              "%zu offers still pooled\n",
              stats.imbalance_before_kwh - stats.imbalance_after_kwh,
              stats.schedule_cost_eur, pooled);
  std::printf("trading day done in %.1fs\n", total_watch.ElapsedSeconds());
  if (micro_schedules == 0) {
    std::cerr << "no schedules assigned\n";
    return 1;
  }
  return 0;
}
