// A miniature Europe: the 3-level EDMS hierarchy of the paper's Fig. 2 —
// prosumers issuing flex-offers, BRPs negotiating/aggregating/forwarding,
// and a TSO scheduling the macro offers — simulated tick by tick on the
// slice clock, including network latency and message loss. Pass a shard
// count as the first argument to partition every aggregating node's engine
// (default 1 shard per node).
#include <cstdio>
#include <cstdlib>

#include "node/simulation.h"

using mirabel::node::EdmsSimulation;
using mirabel::node::SimulationConfig;
using mirabel::node::SimulationReport;

int main(int argc, char** argv) {
  size_t shards = 1;
  if (argc > 1) {
    long parsed = std::strtol(argv[1], nullptr, 10);
    shards = parsed < 1 ? 1 : (parsed > 64 ? 64 : static_cast<size_t>(parsed));
  }
  std::printf("engine shards per aggregating node: %zu\n\n", shards);
  // 2-level deployment first: BRPs schedule locally.
  {
    SimulationConfig config;
    config.num_brps = 3;
    config.prosumers_per_brp = 25;
    config.days = 2;
    config.use_tso = false;
    config.offers_per_day = 4.0;
    config.seed = 11;
    config.shards_per_node = shards;
    std::puts("== 2-level EDMS (prosumers + BRPs) ==");
    EdmsSimulation sim(config);
    SimulationReport report = sim.Run();
    std::printf("%s\n\n", report.ToString().c_str());
  }

  // 3-level deployment: BRPs forward macro offers to the TSO (the paper §2:
  // "the process is essentially repeated at a higher level").
  {
    SimulationConfig config;
    config.num_brps = 3;
    config.prosumers_per_brp = 25;
    config.days = 2;
    config.use_tso = true;
    config.offers_per_day = 4.0;
    config.seed = 11;
    config.shards_per_node = shards;
    std::puts("== 3-level EDMS (prosumers + BRPs + TSO) ==");
    EdmsSimulation sim(config);
    SimulationReport report = sim.Run();
    std::printf("%s\n\n", report.ToString().c_str());
  }

  // Degraded network: latency + 5% message loss. The system degrades
  // gracefully — lost schedules become fallbacks, never broken state
  // (paper §1's fault-tolerance claim).
  {
    SimulationConfig config;
    config.num_brps = 2;
    config.prosumers_per_brp = 20;
    config.days = 2;
    config.use_tso = false;
    config.offers_per_day = 4.0;
    config.seed = 11;
    config.bus.latency_slices = 1;
    config.bus.drop_probability = 0.05;
    config.shards_per_node = shards;
    std::puts("== 2-level EDMS with 5% message loss ==");
    EdmsSimulation sim(config);
    SimulationReport report = sim.Run();
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}
