// Quickstart: the full flex-offer round trip on a handful of offers, driven
// end to end by the ShardedEdmsRuntime — submit offers, advance the control
// loop, and read the life cycle off the merged typed event stream. No
// hand-wiring of negotiator / pipeline / scheduler: the runtime's engine
// shards own all three. Pass a shard count as the first argument (default 1
// = the single-engine deployment).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "edms/sharded_runtime.h"
#include "flexoffer/flex_offer.h"

using namespace mirabel;             // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main(int argc, char** argv) {
  size_t num_shards = 1;
  if (argc > 1) {
    long parsed = std::strtol(argv[1], nullptr, 10);
    num_shards = parsed < 1 ? 1 : (parsed > 64 ? 64 : static_cast<size_t>(parsed));
  }
  // --- 1. A few household flex-offers (paper Fig. 3 style) -----------------
  // Two dishwashers and an EV charger, all willing to start tonight between
  // 22:00 and 05:00 next morning.
  std::vector<FlexOffer> offers;
  offers.push_back(FlexOfferBuilder(1)
                       .OwnedBy(501)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(4, 0.4, 0.6)  // 1 h @ ~0.5 kWh/slice
                       .UnitPrice(0.03)
                       .Build());
  offers.push_back(FlexOfferBuilder(2)
                       .OwnedBy(502)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(4, 0.3, 0.7)
                       .UnitPrice(0.02)
                       .Build());
  offers.push_back(FlexOfferBuilder(3)
                       .OwnedBy(503)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(8, 1.5, 2.5)  // EV: 2 h, up to 20 kWh
                       .UnitPrice(0.04)
                       .Build());

  // --- 2. One engine runs intake, aggregation, scheduling, disaggregation --
  // Overnight wind surplus (negative imbalance) around 01:00-05:00 that the
  // flexible load should absorb; the engine schedules against it.
  edms::EdmsEngine::Config config;
  config.actor = 100;
  config.negotiate = true;
  config.aggregation.params = aggregation::AggregationParams::P3();
  config.horizon = HoursToSlices(12);
  config.scheduler_budget_s = 0.2;
  config.penalty_eur_per_kwh = 0.30;
  config.buy_price_eur = 0.15;
  config.sell_price_eur = 0.04;
  config.max_buy_kwh = 2.0;
  config.max_sell_kwh = 2.0;
  {
    // Covers the whole scheduling horizon: the gate at 20:00 schedules
    // (20:00, 08:15], one slice past 20 + 12 hours.
    std::vector<double> imbalance(
        static_cast<size_t>(HoursToSlices(20 + 13)), 0.5);
    for (int hour = 25; hour <= 28; ++hour) {  // 01:00-05:00 wind surplus
      for (int s = HoursToSlices(hour); s < HoursToSlices(hour + 1); ++s) {
        imbalance[static_cast<size_t>(s)] = -3.0;
      }
    }
    config.baseline =
        std::make_shared<edms::VectorBaselineProvider>(std::move(imbalance));
  }
  edms::ShardedEdmsRuntime::Config runtime_config;
  runtime_config.num_shards = num_shards;
  runtime_config.engine = config;
  edms::ShardedEdmsRuntime engine(runtime_config);
  std::printf("runtime: %zu engine shard(s)\n", engine.num_shards());

  // --- 3. Batch intake + one gate closure -----------------------------------
  auto submitted = engine.SubmitOffers(offers, HoursToSlices(20));
  if (!submitted.ok()) {
    std::cerr << "submit failed: " << submitted.status() << "\n";
    return 1;
  }
  Status advanced = engine.Advance(HoursToSlices(20));
  if (!advanced.ok()) {
    std::cerr << "advance failed: " << advanced << "\n";
    return 1;
  }

  // --- 4. The life cycle, read off the event stream -------------------------
  int assigned = 0;
  for (const edms::Event& event : engine.PollEvents()) {
    if (const auto* e = std::get_if<edms::OfferAccepted>(&event)) {
      std::printf("accepted offer %llu at %.3f EUR flexibility price\n",
                  static_cast<unsigned long long>(e->offer),
                  e->agreed_price_eur);
    } else if (const auto* e = std::get_if<edms::MacroPublished>(&event)) {
      std::printf("macro offer %llu aggregates %zu member offer(s)\n",
                  static_cast<unsigned long long>(e->macro.id),
                  e->member_count);
    } else if (const auto* e = std::get_if<edms::ScheduleAssigned>(&event)) {
      const auto& s = e->schedule;
      std::printf("  offer %llu starts at %s, %.2f kWh total\n",
                  static_cast<unsigned long long>(s.offer_id),
                  FormatTimeSlice(s.start).c_str(), s.TotalEnergy());
      ++assigned;
    }
  }

  const edms::EngineStats stats = engine.stats();
  // The imbalance *reduction* is comparable across shard counts (each
  // shard's scheduling problem accounts the shared baseline once).
  std::printf("%lld offers accepted -> %lld macro(s) scheduled, cost %.2f "
              "EUR, imbalance reduced %.1f kWh\n",
              static_cast<long long>(stats.offers_accepted),
              static_cast<long long>(stats.macros_scheduled),
              stats.schedule_cost_eur,
              stats.imbalance_before_kwh - stats.imbalance_after_kwh);
  if (assigned != 3) {
    std::cerr << "expected 3 assigned schedules, got " << assigned << "\n";
    return 1;
  }
  std::puts("quickstart OK");
  return 0;
}
