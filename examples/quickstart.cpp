// Quickstart: the full flex-offer round trip on a handful of offers —
// build offers, aggregate them, schedule the macro offers against a toy
// imbalance curve, disaggregate, and verify every constraint held.
#include <cstdio>
#include <iostream>

#include "aggregation/pipeline.h"
#include "flexoffer/flex_offer.h"
#include "scheduling/scheduler.h"

using namespace mirabel;           // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main() {
  // --- 1. A few household flex-offers (paper Fig. 3 style) -----------------
  // Two dishwashers and an EV charger, all willing to start tonight between
  // 22:00 and 05:00 next morning.
  std::vector<FlexOffer> offers;
  offers.push_back(FlexOfferBuilder(1)
                       .OwnedBy(501)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(4, 0.4, 0.6)  // 1 h @ ~0.5 kWh/slice
                       .UnitPrice(0.03)
                       .Build());
  offers.push_back(FlexOfferBuilder(2)
                       .OwnedBy(502)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(4, 0.3, 0.7)
                       .UnitPrice(0.02)
                       .Build());
  offers.push_back(FlexOfferBuilder(3)
                       .OwnedBy(503)
                       .CreatedAt(HoursToSlices(20))
                       .AssignBefore(HoursToSlices(21))
                       .StartWindow(HoursToSlices(22), HoursToSlices(26))
                       .AddSlices(8, 1.5, 2.5)  // EV: 2 h, up to 20 kWh
                       .UnitPrice(0.04)
                       .Build());

  // --- 2. Aggregate (group-builder + n-to-1, bin-packer off) ----------------
  aggregation::PipelineConfig agg_config;
  agg_config.params = aggregation::AggregationParams::P3();
  aggregation::AggregationPipeline pipeline(agg_config);
  for (const auto& fo : offers) {
    Status st = pipeline.Insert(fo);
    if (!st.ok()) {
      std::cerr << "insert failed: " << st << "\n";
      return 1;
    }
  }
  pipeline.Flush();
  aggregation::AggregationStats stats = pipeline.Stats();
  std::printf("aggregated %zu offers into %zu macro offer(s), "
              "compression %.1fx, avg time-flex loss %.2f slices\n",
              stats.offer_count, stats.aggregate_count,
              stats.compression_ratio, stats.avg_time_flexibility_loss);

  // --- 3. Schedule the macro offers -----------------------------------------
  // Overnight horizon 20:00 .. 08:00; wind surplus (negative imbalance)
  // around 02:00 that the flexible load should absorb.
  scheduling::SchedulingProblem problem;
  problem.horizon_start = HoursToSlices(20);
  problem.horizon_length = HoursToSlices(12);
  size_t h = static_cast<size_t>(problem.horizon_length);
  problem.baseline_imbalance_kwh.assign(h, 0.5);
  for (size_t s = 0; s < h; ++s) {
    int hour = 20 + static_cast<int>(s) / kSlicesPerHour;
    if (hour >= 24 + 1 && hour <= 24 + 4) {
      problem.baseline_imbalance_kwh[s] = -3.0;  // 01:00-05:00 wind surplus
    }
  }
  problem.imbalance_penalty_eur.assign(h, 0.30);
  problem.market.buy_price_eur.assign(h, 0.15);
  problem.market.sell_price_eur.assign(h, 0.04);
  problem.market.max_buy_kwh = 2.0;
  problem.market.max_sell_kwh = 2.0;
  for (const auto& [id, agg] : pipeline.aggregates()) {
    problem.offers.push_back(agg.macro);
  }

  scheduling::GreedyScheduler scheduler;
  scheduling::SchedulerOptions options;
  options.time_budget_s = 0.2;
  auto run = scheduler.Run(problem, options);
  if (!run.ok()) {
    std::cerr << "scheduling failed: " << run.status() << "\n";
    return 1;
  }
  std::printf("schedule cost: imbalance %.2f + flex %.2f + market %.2f "
              "= %.2f EUR\n",
              run->cost.imbalance_eur, run->cost.flex_activation_eur,
              run->cost.market_eur, run->cost.total());

  // --- 4. Disaggregate back to per-prosumer schedules ------------------------
  scheduling::CostEvaluator evaluator(problem);
  (void)evaluator.SetSchedule(run->schedule);
  for (const auto& macro_schedule : evaluator.ToScheduledOffers()) {
    auto micro = pipeline.DisaggregateSchedule(macro_schedule);
    if (!micro.ok()) {
      std::cerr << "disaggregation failed: " << micro.status() << "\n";
      return 1;
    }
    for (const auto& s : *micro) {
      std::printf("  offer %llu starts at %s, %.2f kWh total\n",
                  static_cast<unsigned long long>(s.offer_id),
                  FormatTimeSlice(s.start).c_str(), s.TotalEnergy());
    }
  }
  std::puts("quickstart OK");
  return 0;
}
