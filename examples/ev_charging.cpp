// The paper's §2 use scenario, end to end:
//   Step 1  A consumer arrives home at 22:00 and plugs in the electric car;
//           the battery must be full by 07:00.
//   Step 2  The prosumer node generates a flex-offer (Fig. 3): a 2 h profile,
//           earliest start 22:00, latest start 05:00.
//   Step 3  The trader node schedules the offer against the wind forecast —
//           charging starts when RES supply peaks (the paper's run lands at
//           03:00) — and sends the schedule back.
//   Step 4  The consumer node charges the car; the battery is full by ~05:00.
#include <cstdio>
#include <iostream>

#include "datagen/energy_series_generator.h"
#include "flexoffer/flex_offer.h"
#include "negotiation/negotiator.h"
#include "scheduling/scheduler.h"

using namespace mirabel;             // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main() {
  // Step 1+2: the flex-offer. 2 h (8 slices) at up to 6.25 kWh/slice =
  // 50 kWh battery; the consumer allows shaving down to 5 kWh/slice.
  FlexOffer ev = FlexOfferBuilder(42)
                     .OwnedBy(7)
                     .CreatedAt(HoursToSlices(22))
                     .AssignBefore(HoursToSlices(27))  // decision due by 03:00
                     .StartWindow(HoursToSlices(22), HoursToSlices(29))
                     .AddSlices(8, 5.0, 6.25)
                     .UnitPrice(0.02)
                     .Build();
  std::printf("flex-offer: %s\n", ev.ToString().c_str());
  std::printf("  time flexibility: %lld slices (%lld h)\n",
              static_cast<long long>(ev.TimeFlexibility()),
              static_cast<long long>(ev.TimeFlexibility() / kSlicesPerHour));

  // Negotiation: the BRP prices the flexibility before accepting (paper §7).
  negotiation::Negotiator negotiator;
  auto outcome = negotiator.Negotiate(ev, /*reservation_price_eur=*/0.10);
  if (outcome.decision != negotiation::NegotiationOutcome::Decision::kAgreed) {
    std::cerr << "BRP rejected the offer\n";
    return 1;
  }
  std::printf("negotiated flexibility price: %.2f EUR (BRP values it at "
              "%.2f EUR)\n",
              outcome.agreed_price_eur, outcome.brp_value_eur);

  // Step 3: the trader's wind forecast for the night. Wind ramps up after
  // midnight and peaks around 02:00-05:00.
  scheduling::SchedulingProblem problem;
  problem.horizon_start = HoursToSlices(22);
  problem.horizon_length = HoursToSlices(10);  // 22:00 .. 08:00
  size_t h = static_cast<size_t>(problem.horizon_length);
  datagen::WindSeriesConfig wind_cfg;
  wind_cfg.periods_per_day = kSlicesPerDay;
  wind_cfg.days = 1;
  wind_cfg.capacity_mw = 10.0;  // a small share of a wind park, in kWh/slice
  wind_cfg.mean_speed = 9.5;
  wind_cfg.seed = 3;
  std::vector<double> wind = datagen::GenerateWindSeries(wind_cfg);
  problem.baseline_imbalance_kwh.resize(h);
  for (size_t s = 0; s < h; ++s) {
    int slice_of_day = (static_cast<int>(s) + 22 * kSlicesPerHour) %
                       kSlicesPerDay;
    double night_household_load = 1.0;  // kWh per slice, non-flexible
    // Wind picks up after midnight: weight the synthetic series upward there.
    double wind_kwh = wind[static_cast<size_t>(slice_of_day)] *
                      (slice_of_day < 22 * 4 && slice_of_day >= 4 ? 0.9 : 0.3);
    problem.baseline_imbalance_kwh[s] = night_household_load - wind_kwh;
  }
  problem.imbalance_penalty_eur.assign(h, 0.35);
  problem.market.buy_price_eur.assign(h, 0.18);
  problem.market.sell_price_eur.assign(h, 0.03);
  problem.market.max_buy_kwh = 3.0;
  problem.market.max_sell_kwh = 3.0;
  problem.offers.push_back(ev);

  scheduling::GreedyScheduler scheduler;
  scheduling::SchedulerOptions options;
  options.time_budget_s = 0.2;
  auto run = scheduler.Run(problem, options);
  if (!run.ok()) {
    std::cerr << "scheduling failed: " << run.status() << "\n";
    return 1;
  }

  scheduling::CostEvaluator evaluator(problem);
  (void)evaluator.SetSchedule(run->schedule);
  ScheduledFlexOffer schedule = evaluator.ToScheduledOffers().front();
  Status valid = schedule.ValidateAgainst(ev);
  std::printf("scheduled charging start: %s (%s)\n",
              FormatTimeSlice(schedule.start).c_str(), valid.ToString().c_str());
  std::printf("scheduled energy: %.1f kWh, schedule cost %.2f EUR\n",
              schedule.TotalEnergy(), run->cost.total());

  // Step 4: execution timeline.
  TimeSlice done = schedule.start + ev.Duration();
  std::printf("charging runs %s .. %s; battery full before 07:00: %s\n",
              FormatTimeSlice(schedule.start).c_str(),
              FormatTimeSlice(done).c_str(),
              done <= HoursToSlices(31) ? "yes" : "NO");
  return valid.ok() ? 0 : 1;
}
