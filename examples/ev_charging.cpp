// The paper's §2 use scenario, end to end:
//   Step 1  A consumer arrives home at 22:00 and plugs in the electric car;
//           the battery must be full by 07:00.
//   Step 2  The prosumer node generates a flex-offer (Fig. 3): a 2 h profile,
//           earliest start 22:00, latest start 05:00.
//   Step 3  The trader's EdmsEngine negotiates, aggregates and schedules the
//           offer against the wind forecast — charging starts when RES supply
//           peaks (the paper's run lands at 03:00) — and assigns the schedule.
//   Step 4  The consumer node charges the car; the battery is full by ~05:00.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "datagen/energy_series_generator.h"
#include "edms/sharded_runtime.h"
#include "flexoffer/flex_offer.h"

using namespace mirabel;             // NOLINT: example brevity
using namespace mirabel::flexoffer;  // NOLINT

int main(int argc, char** argv) {
  // Shard-count knob: a one-offer day is single-engine work, but the same
  // code drives a partitioned trader unchanged.
  size_t num_shards = 1;
  if (argc > 1) {
    long parsed = std::strtol(argv[1], nullptr, 10);
    num_shards = parsed < 1 ? 1 : (parsed > 64 ? 64 : static_cast<size_t>(parsed));
  }
  // Step 1+2: the flex-offer. 2 h (8 slices) at up to 6.25 kWh/slice =
  // 50 kWh battery; the consumer allows shaving down to 5 kWh/slice.
  FlexOffer ev = FlexOfferBuilder(42)
                     .OwnedBy(7)
                     .CreatedAt(HoursToSlices(22))
                     .AssignBefore(HoursToSlices(27))  // decision due by 03:00
                     .StartWindow(HoursToSlices(22), HoursToSlices(29))
                     .AddSlices(8, 5.0, 6.25)
                     .UnitPrice(0.02)
                     .Build();
  std::printf("flex-offer: %s\n", ev.ToString().c_str());
  std::printf("  time flexibility: %lld slices (%lld h)\n",
              static_cast<long long>(ev.TimeFlexibility()),
              static_cast<long long>(ev.TimeFlexibility() / kSlicesPerHour));

  // Step 3: the trader's wind forecast for the night. Wind ramps up after
  // midnight and peaks around 02:00-05:00. The curve is indexed by absolute
  // slice and served to the engine through the BaselineProvider seam.
  datagen::WindSeriesConfig wind_cfg;
  wind_cfg.periods_per_day = kSlicesPerDay;
  wind_cfg.days = 1;
  wind_cfg.capacity_mw = 10.0;  // a small share of a wind park, in kWh/slice
  wind_cfg.mean_speed = 9.5;
  wind_cfg.seed = 3;
  std::vector<double> wind = datagen::GenerateWindSeries(wind_cfg);
  std::vector<double> imbalance(static_cast<size_t>(HoursToSlices(34)), 0.0);
  for (int t = HoursToSlices(22); t < HoursToSlices(34); ++t) {
    int slice_of_day = t % kSlicesPerDay;
    double night_household_load = 1.0;  // kWh per slice, non-flexible
    // Wind picks up after midnight: weight the synthetic series upward there.
    double wind_kwh = wind[static_cast<size_t>(slice_of_day)] *
                      (slice_of_day < 22 * 4 && slice_of_day >= 4 ? 0.9 : 0.3);
    imbalance[static_cast<size_t>(t)] = night_household_load - wind_kwh;
  }

  // The trader: one EdmsEngine negotiating with the prosumer and scheduling
  // greedily over a 10 h horizon (22:00 .. 08:00).
  edms::EdmsEngine::Config config;
  config.actor = 1;
  config.negotiate = true;
  config.horizon = HoursToSlices(10);
  config.scheduler_budget_s = 0.2;
  config.penalty_eur_per_kwh = 0.35;
  config.buy_price_eur = 0.18;
  config.sell_price_eur = 0.03;
  config.max_buy_kwh = 3.0;
  config.max_sell_kwh = 3.0;
  config.baseline =
      std::make_shared<edms::VectorBaselineProvider>(std::move(imbalance));
  edms::ShardedEdmsRuntime::Config runtime_config;
  runtime_config.num_shards = num_shards;
  runtime_config.engine = config;
  edms::ShardedEdmsRuntime engine(runtime_config);

  // Intake at 22:00; the gate closes just before the start window opens.
  const TimeSlice arrival = HoursToSlices(22);
  if (Status st = engine.SubmitOffer(ev, arrival); !st.ok()) {
    std::cerr << "submit failed: " << st << "\n";
    return 1;
  }
  if (Status st = engine.Advance(arrival - 1); !st.ok()) {
    std::cerr << "advance failed: " << st << "\n";
    return 1;
  }

  bool accepted = false;
  ScheduledFlexOffer schedule;
  for (const edms::Event& event : engine.PollEvents()) {
    if (const auto* e = std::get_if<edms::OfferAccepted>(&event)) {
      accepted = true;
      std::printf("negotiated flexibility price: %.2f EUR\n",
                  e->agreed_price_eur);
    } else if (std::get_if<edms::OfferRejected>(&event) != nullptr) {
      std::cerr << "BRP rejected the offer\n";
      return 1;
    } else if (const auto* e = std::get_if<edms::ScheduleAssigned>(&event)) {
      schedule = e->schedule;
    }
  }
  if (!accepted || schedule.offer_id != ev.id) {
    std::cerr << "no schedule assigned\n";
    return 1;
  }

  Status valid = schedule.ValidateAgainst(ev);
  std::printf("scheduled charging start: %s (%s)\n",
              FormatTimeSlice(schedule.start).c_str(),
              valid.ToString().c_str());
  std::printf("scheduled energy: %.1f kWh, schedule cost %.2f EUR\n",
              schedule.TotalEnergy(), engine.stats().schedule_cost_eur);

  // Step 4: execution timeline.
  TimeSlice done = schedule.start + ev.Duration();
  std::printf("charging runs %s .. %s; battery full before 07:00: %s\n",
              FormatTimeSlice(schedule.start).c_str(),
              FormatTimeSlice(done).c_str(),
              done <= HoursToSlices(31) ? "yes" : "NO");
  return valid.ok() ? 0 : 1;
}
