#!/usr/bin/env python3
"""Markdown lint for README.md and docs/: link targets and code fences.

Checks, with no third-party dependencies:

 1. Every relative markdown link (and image) target resolves to an existing
    file or directory, including `path#anchor` forms (the anchor must match
    a heading of the target file, GitHub-style slugs).
 2. Every fenced code block is language-tagged (```cpp, ```sh, ```mermaid,
    ...), fences are balanced, and `cpp` fences keep braces/parens balanced
    — the cheap proxy for "the snippet still looks compilable" that catches
    truncated or mis-pasted snippets. When clang-format is on PATH, cpp
    fences must additionally pass `clang-format --dry-run -Werror` with the
    repo's .clang-format (CI installs it; locally the check degrades to the
    balance test).

Exit status 0 = clean; 1 = findings (printed one per line).
"""

import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^```(.*)$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(slugify(m.group(1)))
    return anchors


def check_links(path: Path, errors: list) -> None:
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # absolute URL
                continue
            if target.startswith("#"):
                if slugify(target[1:]) not in anchors_of(path):
                    errors.append(
                        f"{path}:{lineno}: broken anchor {target!r}"
                    )
                continue
            ref, _, anchor = target.partition("#")
            resolved = (path.parent / ref).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link {target!r}")
                continue
            if anchor and resolved.is_file():
                if slugify(anchor) not in anchors_of(resolved):
                    errors.append(
                        f"{path}:{lineno}: broken anchor {target!r}"
                    )


def check_cpp_fence(path: Path, lineno: int, code: str, errors: list) -> None:
    for open_ch, close_ch in ("{}", "()", "[]"):
        if code.count(open_ch) != code.count(close_ch):
            errors.append(
                f"{path}:{lineno}: cpp fence has unbalanced "
                f"'{open_ch}{close_ch}'"
            )
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        return
    # Snippets elide bodies with comments like /* ... */, which format
    # fine; run the formatter for mechanical style drift.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cc", dir=REPO, delete=False
    ) as tmp:
        tmp.write(code)
        tmp_path = Path(tmp.name)
    try:
        result = subprocess.run(
            [clang_format, "--dry-run", "-Werror", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            errors.append(
                f"{path}:{lineno}: cpp fence not clang-format clean"
            )
    finally:
        tmp_path.unlink()


def check_fences(path: Path, errors: list) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    in_fence = False
    fence_lang = ""
    fence_start = 0
    code_lines = []
    for lineno, line in enumerate(lines, 1):
        m = FENCE_RE.match(line)
        if not m:
            if in_fence:
                code_lines.append(line)
            continue
        if not in_fence:
            in_fence = True
            fence_lang = m.group(1).strip()
            fence_start = lineno
            code_lines = []
            if not fence_lang:
                errors.append(
                    f"{path}:{lineno}: code fence without a language tag"
                )
        else:
            in_fence = False
            if fence_lang == "cpp":
                check_cpp_fence(
                    path, fence_start, "\n".join(code_lines), errors
                )
    if in_fence:
        errors.append(f"{path}:{fence_start}: unclosed code fence")


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    errors = []
    for path in files:
        check_links(path, errors)
        check_fences(path, errors)
    for error in errors:
        print(error)
    print(
        f"lint_docs: {len(files)} files, "
        f"{len(errors)} finding(s)", file=sys.stderr
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
