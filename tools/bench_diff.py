#!/usr/bin/env python3
"""Compare two bench JSON reports leg by leg.

CI's bench-smoke job uploads BENCH_*.json per commit; this script is the
reader for that trajectory: point it at two artifacts of the same bench
(e.g. BENCH_scheduler_kernel.json from two commits) and it prints one line
per leg with before/after throughput and the speedup, plus any legs that
appear or disappear between the two.

Usage:
    bench_diff.py <before.json> <after.json> [--threshold PCT]

Exits 0 on a clean comparison. With --threshold, exits 1 if any leg
regressed by more than PCT percent (for use as a soft perf gate); added or
removed legs never fail the comparison, they are only reported.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    results = {}
    for r in report.get("results", []):
        name = r.get("name")
        if name:
            results[name] = r
    return report, results


def fmt_rate(value):
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON reports leg by leg."
    )
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if any leg regresses by more than PCT percent",
    )
    args = parser.parse_args()

    before_report, before = load(args.before)
    after_report, after = load(args.after)
    if before_report.get("bench") != after_report.get("bench"):
        print(
            f"bench_diff: comparing different benches: "
            f"{before_report.get('bench')} vs {after_report.get('bench')}",
            file=sys.stderr,
        )
        return 2
    for side, report, path in (
        ("before", before_report, args.before),
        ("after", after_report, args.after),
    ):
        if report.get("small_mode"):
            print(f"bench_diff: note: {side} report {path} ran in small mode")

    common = [name for name in after if name in before]
    added = [name for name in after if name not in before]
    removed = [name for name in before if name not in after]

    width = max((len(n) for n in common), default=4)
    print(f"{'leg':<{width}} {'before':>12} {'after':>12} {'speedup':>9}")
    regressions = []
    for name in common:
        b = before[name].get("throughput_items_per_s")
        a = after[name].get("throughput_items_per_s")
        if not b or not a:
            print(f"{name:<{width}} {'n/a':>12} {'n/a':>12} {'n/a':>9}")
            continue
        speedup = a / b
        print(
            f"{name:<{width}} {fmt_rate(b):>12} {fmt_rate(a):>12} "
            f"{speedup:>8.2f}x"
        )
        if args.threshold is not None and speedup < 1.0 - args.threshold / 100:
            regressions.append((name, speedup))

    for name in added:
        print(f"added:   {name}")
    for name in removed:
        print(f"removed: {name}")

    if regressions:
        for name, speedup in regressions:
            print(
                f"bench_diff: REGRESSION {name}: {speedup:.2f}x "
                f"(threshold {args.threshold}%)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
