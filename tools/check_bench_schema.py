#!/usr/bin/env python3
"""Schema check for bench JSON reports.

CI's bench-smoke job runs the benches and uploads BENCH_*.json artifacts;
this script asserts that the reports a downstream dashboard depends on
actually contain the fields it reads — a bench refactor that silently
drops a metric should fail the job, not produce holes in the trend charts.

Usage:
    check_bench_schema.py <path-to-BENCH_edms_runtime.json>

Exits non-zero listing every missing result or field.
"""

import json
import sys

# result-name -> fields that must be present (numeric).
REQUIRED = {
    "latency/sustained": [
        "accept_p50_ms",
        "accept_p95_ms",
        "accept_p99_ms",
        "assign_p50_ms",
        "assign_p95_ms",
        "assign_p99_ms",
        "accept_samples",
        "assign_samples",
        "peak_intake_depth_batches",
    ],
    "latency/bursty": [
        "accept_p50_ms",
        "accept_p95_ms",
        "accept_p99_ms",
        "assign_p50_ms",
        "assign_p95_ms",
        "assign_p99_ms",
        "accept_samples",
        "assign_samples",
        "peak_intake_depth_batches",
    ],
    "streaming/pooled": ["wall_s", "accepted", "micro_schedules"],
    "shards/1": ["wall_s", "imbalance_reduction_kwh"],
}


def check(path: str) -> int:
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    results = {r.get("name"): r for r in report.get("results", [])}
    errors = []
    for name, fields in REQUIRED.items():
        result = results.get(name)
        if result is None:
            errors.append(f"missing result: {name}")
            continue
        for field in fields:
            value = result.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{name}: field {field} missing or non-numeric")
    # Sanity: a latency leg with zero samples means the measurement silently
    # broke even if the fields exist.
    for name in ("latency/sustained", "latency/bursty"):
        result = results.get(name)
        if result and result.get("accept_samples", 0) <= 0:
            errors.append(f"{name}: accept_samples is zero")
    if errors:
        for e in errors:
            print(f"check_bench_schema: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_schema: {path} OK "
          f"({len(REQUIRED)} results, all required fields present)")
    return 0


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return check(sys.argv[1])


if __name__ == "__main__":
    sys.exit(main())
