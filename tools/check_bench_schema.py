#!/usr/bin/env python3
"""Schema check for bench JSON reports.

CI's bench-smoke job runs the benches and uploads BENCH_*.json artifacts;
this script asserts that the reports a downstream dashboard depends on
actually contain the fields it reads — a bench refactor that silently
drops a metric should fail the job, not produce holes in the trend charts.

Usage:
    check_bench_schema.py <BENCH_*.json> [<BENCH_*.json> ...]

The schema is selected by the file's basename. Exits non-zero listing
every missing result or field across all given reports.
"""

import json
import os
import sys

# basename -> result-name -> fields that must be present (numeric).
_LATENCY_FIELDS = [
    "accept_p50_ms",
    "accept_p95_ms",
    "accept_p99_ms",
    "assign_p50_ms",
    "assign_p95_ms",
    "assign_p99_ms",
    "accept_samples",
    "assign_samples",
    "peak_intake_depth_batches",
]

_GAP_FIELDS = ["cost_eur", "gap_vs_optimal_eur", "gap_vs_optimal_pct"]

_THROUGHPUT_FIELDS = ["wall_s", "throughput_items_per_s", "items"]

_ROBUSTNESS_FIELDS = [
    "wall_s",
    "imbalance_reduction",
    "terminal_fraction",
    "offers_created",
    "fallbacks",
    "retries",
    "dead_letters",
]


def _robustness_legs():
    """Degradation-curve legs of BENCH_robustness.json; leg names are
    independent of MIRABEL_BENCH_SMALL (only the workload shrinks)."""
    legs = {}
    for rate in ("0.00", "0.05", "0.10", "0.20", "0.35", "0.50"):
        legs[f"drop/{rate}"] = _ROBUSTNESS_FIELDS
    for length in (0, 16, 48, 96):
        legs[f"blackout/{length}"] = _ROBUSTNESS_FIELDS
    legs["noretry/0.20"] = _ROBUSTNESS_FIELDS
    return legs


def _kernel_legs():
    """Per-size legs of BENCH_scheduler_kernel.json, incl. the fast_math
    legs (speedup_vs_kernel anchors the fast-kernel acceptance check)."""
    legs = {}
    for size in (32, 256, 2048):
        legs[f"child_evaluate/ref/{size}"] = _THROUGHPUT_FIELDS
        legs[f"child_evaluate/kernel/{size}"] = _THROUGHPUT_FIELDS + [
            "speedup_vs_ref"
        ]
        legs[f"trymove_scan/ref/{size}"] = _THROUGHPUT_FIELDS
        legs[f"trymove_scan/kernel/{size}"] = _THROUGHPUT_FIELDS + [
            "speedup_vs_ref"
        ]
        legs[f"fast/child_evaluate/{size}"] = _THROUGHPUT_FIELDS + [
            "speedup_vs_kernel"
        ]
        legs[f"fast/scan/{size}"] = _THROUGHPUT_FIELDS + ["speedup_vs_kernel"]
    return legs


_UNCERTAINTY_FIELDS = [
    "point_mean_cost_eur",
    "robust_mean_cost_eur",
    "point_cvar_eur",
    "robust_cvar_eur",
    "point_regret_mean_eur",
    "robust_regret_mean_eur",
    "point_regret_p95_eur",
    "robust_regret_p95_eur",
    "robust_win",
    "realizations",
]

_STRESS_SCENARIOS = (
    "ev_charge_surge",
    "demand_response_event",
    "prosumer_flash_crowd",
    "price_spike",
)


def _uncertainty_legs():
    """Per-stress-scenario legs of BENCH_uncertainty_study.json plus the
    CVaR-trajectory and summary legs; leg names are independent of
    MIRABEL_BENCH_SMALL (only realizations/iterations shrink)."""
    legs = {}
    trajectory_fields = [
        f"{who}_cvar_a{alpha}"
        for who in ("point", "robust")
        for alpha in ("05", "10", "25", "50", "100")
    ]
    for name in _STRESS_SCENARIOS:
        legs[f"stress/{name}"] = _UNCERTAINTY_FIELDS
        legs[f"cvar_trajectory/{name}"] = trajectory_fields
    legs["summary"] = ["robust_wins", "scenarios"]
    return legs


REQUIRED_BY_FILE = {
    "BENCH_scheduler_kernel.json": _kernel_legs(),
    "BENCH_edms_runtime.json": {
        "latency/sustained": _LATENCY_FIELDS,
        "latency/bursty": _LATENCY_FIELDS,
        "streaming/pooled": ["wall_s", "accepted", "micro_schedules"],
        "shards/1": ["wall_s", "imbalance_reduction_kwh"],
    },
    "BENCH_robustness.json": _robustness_legs(),
    "BENCH_optimality_study.json": {
        "Exhaustive(optimal)": _GAP_FIELDS + ["optimal_proven"],
        "GreedySearch": _GAP_FIELDS,
        "EvolutionaryAlgorithm": _GAP_FIELDS,
        "Hybrid": _GAP_FIELDS,
        "BranchAndBound": _GAP_FIELDS
        + ["nodes_visited", "optimal_proven", "nodes_vs_combinations_pct"],
        "Portfolio": _GAP_FIELDS + ["portfolio_regret_eur", "optimal_proven"],
    },
    "BENCH_uncertainty_study.json": _uncertainty_legs(),
}


def check(path: str) -> int:
    required = REQUIRED_BY_FILE.get(os.path.basename(path))
    if required is None:
        print(
            f"check_bench_schema: no schema registered for {path} "
            f"(known: {', '.join(sorted(REQUIRED_BY_FILE))})",
            file=sys.stderr,
        )
        return 1
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    results = {r.get("name"): r for r in report.get("results", [])}
    errors = []
    for name, fields in required.items():
        result = results.get(name)
        if result is None:
            errors.append(f"missing result: {name}")
            continue
        for field in fields:
            value = result.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{name}: field {field} missing or non-numeric")
    # Sanity: a latency leg with zero samples means the measurement silently
    # broke even if the fields exist.
    for name in ("latency/sustained", "latency/bursty"):
        if name not in required:
            continue
        result = results.get(name)
        if result and result.get("accept_samples", 0) <= 0:
            errors.append(f"{name}: accept_samples is zero")
    # Sanity: conservation under chaos — every robustness leg must close all
    # offers created before the wind-down, whatever the fault plan did.
    if os.path.basename(path) == "BENCH_robustness.json":
        for name in required:
            result = results.get(name)
            if result and result.get("terminal_fraction") != 1.0:
                errors.append(
                    f"{name}: terminal_fraction is "
                    f"{result.get('terminal_fraction')} (offers leaked a "
                    f"non-terminal lifecycle state)"
                )
    # Sanity: the optimality study is anchored by a completed enumeration; a
    # gap computed against an unproven "optimum" is not an optimality gap.
    anchor = results.get("Exhaustive(optimal)")
    if "Exhaustive(optimal)" in required and anchor is not None:
        if anchor.get("optimal_proven", 0) != 1:
            errors.append("Exhaustive(optimal): enumeration did not complete")
    # Sanity: CVaR is a tail mean, so it can never drop below the mean (a
    # small relative tolerance absorbs float reduction noise); and the
    # uncertainty layer's acceptance bar is the robust plan beating the
    # point plan on realized mean or CVaR in at least 3 of the 4 stress
    # scenarios.
    if os.path.basename(path) == "BENCH_uncertainty_study.json":
        for name in _STRESS_SCENARIOS:
            result = results.get(f"stress/{name}")
            if result is None:
                continue
            for who in ("point", "robust"):
                mean = result.get(f"{who}_mean_cost_eur")
                cvar = result.get(f"{who}_cvar_eur")
                if isinstance(mean, (int, float)) and isinstance(
                    cvar, (int, float)
                ):
                    tol = 1e-9 * max(1.0, abs(mean))
                    if cvar < mean - tol:
                        errors.append(
                            f"stress/{name}: {who} CVaR {cvar} below "
                            f"mean {mean}"
                        )
        summary = results.get("summary")
        if summary is not None and summary.get("robust_wins", 0) < 3:
            errors.append(
                f"summary: robust_wins is {summary.get('robust_wins')} "
                f"(acceptance requires >= 3 of 4 stress scenarios)"
            )
    if errors:
        for e in errors:
            print(f"check_bench_schema: {path}: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_schema: {path} OK "
          f"({len(required)} results, all required fields present)")
    return 0


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return max(check(path) for path in sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
