#include "aggregation/aggregated_flex_offer.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/flex_offer_generator.h"
#include "test_util.h"

namespace mirabel::aggregation {
namespace {

using flexoffer::FlexOffer;
using testutil::UniformOffer;
using flexoffer::ScheduledFlexOffer;


TEST(BuildAggregateTest, EmptyMemberListRejected) {
  EXPECT_FALSE(BuildAggregate(1, {}).ok());
}

TEST(BuildAggregateTest, InvalidMemberRejected) {
  FlexOffer bad = UniformOffer(1, 10, 4, 2, 1.0, 2.0);
  bad.profile[0] = {3.0, 1.0};
  EXPECT_FALSE(BuildAggregate(1, {bad}).ok());
}

TEST(BuildAggregateTest, SingleMemberAggregateMirrorsOffer) {
  FlexOffer fo = UniformOffer(1, 10, 4, 2, 1.0, 2.0);
  auto agg = BuildAggregate(7, {fo});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->macro.id, 7u);
  EXPECT_EQ(agg->macro.earliest_start, 10);
  EXPECT_EQ(agg->macro.latest_start, 14);
  EXPECT_EQ(agg->macro.Duration(), 2);
  EXPECT_DOUBLE_EQ(agg->macro.TotalMinEnergy(), 2.0);
  EXPECT_DOUBLE_EQ(agg->macro.TotalMaxEnergy(), 4.0);
  EXPECT_TRUE(agg->Validate().ok());
  EXPECT_EQ(agg->TotalTimeFlexibilityLoss(), 0);
}

TEST(BuildAggregateTest, ConservativeTimeWindow) {
  // Members with different windows: aggregate earliest = min, time flex =
  // min member flexibility.
  FlexOffer a = UniformOffer(1, 10, 8, 2, 1.0, 2.0);
  FlexOffer b = UniformOffer(2, 14, 4, 2, 1.0, 2.0);
  auto agg = BuildAggregate(1, {a, b});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->macro.earliest_start, 10);
  EXPECT_EQ(agg->macro.TimeFlexibility(), 4);
  EXPECT_TRUE(agg->Validate().ok());
  // Loss: a loses 8-4=4, b loses 0.
  EXPECT_EQ(agg->TotalTimeFlexibilityLoss(), 4);
}

TEST(BuildAggregateTest, ProfileSumsWithOffsets) {
  FlexOffer a = UniformOffer(1, 10, 4, 2, 1.0, 2.0);
  FlexOffer b = UniformOffer(2, 11, 4, 2, 0.5, 1.0);
  auto agg = BuildAggregate(1, {a, b});
  ASSERT_TRUE(agg.ok());
  // Aggregate profile spans slices 10..13 relative: [a0, a1+b0, b1].
  ASSERT_EQ(agg->macro.Duration(), 3);
  EXPECT_DOUBLE_EQ(agg->macro.profile[0].min_kwh, 1.0);
  EXPECT_DOUBLE_EQ(agg->macro.profile[1].min_kwh, 1.5);
  EXPECT_DOUBLE_EQ(agg->macro.profile[2].min_kwh, 0.5);
  EXPECT_DOUBLE_EQ(agg->macro.profile[1].max_kwh, 3.0);
  EXPECT_TRUE(agg->Validate().ok());
}

TEST(BuildAggregateTest, AssignmentDeadlineIsEarliestMemberDeadline) {
  FlexOffer a = UniformOffer(1, 10, 4, 2, 1.0, 2.0);
  a.assignment_before = 8;
  FlexOffer b = UniformOffer(2, 12, 4, 2, 1.0, 2.0);
  b.assignment_before = 5;
  auto agg = BuildAggregate(1, {a, b});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->macro.assignment_before, 5);
}

TEST(BuildAggregateTest, MixedConsumptionAndProduction) {
  FlexOffer load = UniformOffer(1, 10, 4, 2, 1.0, 2.0);
  FlexOffer gen = UniformOffer(2, 10, 4, 2, -2.0, -1.0);
  auto agg = BuildAggregate(1, {load, gen});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->Validate().ok());
  EXPECT_DOUBLE_EQ(agg->macro.profile[0].min_kwh, -1.0);
  EXPECT_DOUBLE_EQ(agg->macro.profile[0].max_kwh, 1.0);
}

TEST(AddMemberTest, MatchesRebuildFromScratch) {
  Rng rng(21);
  datagen::FlexOfferWorkloadConfig cfg;
  cfg.count = 40;
  cfg.seed = 31;
  auto offers = datagen::GenerateFlexOffers(cfg);

  auto incremental = BuildAggregate(1, {offers[0]});
  ASSERT_TRUE(incremental.ok());
  std::vector<FlexOffer> so_far = {offers[0]};
  for (size_t i = 1; i < offers.size(); ++i) {
    ASSERT_TRUE(AddMember(offers[i], &*incremental).ok());
    so_far.push_back(offers[i]);
    auto rebuilt = BuildAggregate(1, so_far);
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_TRUE(incremental->Validate().ok()) << "after adding " << i;
    EXPECT_EQ(incremental->macro.earliest_start,
              rebuilt->macro.earliest_start);
    EXPECT_EQ(incremental->macro.latest_start, rebuilt->macro.latest_start);
    ASSERT_EQ(incremental->macro.profile.size(), rebuilt->macro.profile.size());
    for (size_t j = 0; j < rebuilt->macro.profile.size(); ++j) {
      EXPECT_NEAR(incremental->macro.profile[j].min_kwh,
                  rebuilt->macro.profile[j].min_kwh, 1e-9);
      EXPECT_NEAR(incremental->macro.profile[j].max_kwh,
                  rebuilt->macro.profile[j].max_kwh, 1e-9);
    }
  }
}

TEST(AddMemberTest, EarlierMemberTriggersOffsetShift) {
  auto agg = BuildAggregate(1, {UniformOffer(1, 20, 4, 2, 1.0, 2.0)});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(AddMember(UniformOffer(2, 15, 6, 2, 1.0, 1.0), &*agg).ok());
  EXPECT_EQ(agg->macro.earliest_start, 15);
  EXPECT_TRUE(agg->Validate().ok());
}

TEST(RemoveMemberTest, RemovesAndRebuilds) {
  FlexOffer a = UniformOffer(1, 10, 8, 2, 1.0, 2.0);
  FlexOffer b = UniformOffer(2, 14, 4, 2, 1.0, 2.0);
  auto agg = BuildAggregate(1, {a, b});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(RemoveMember(2, &*agg).ok());
  EXPECT_EQ(agg->members.size(), 1u);
  EXPECT_EQ(agg->macro.TimeFlexibility(), 8);
  EXPECT_TRUE(agg->Validate().ok());
}

TEST(RemoveMemberTest, UnknownMemberNotFound) {
  auto agg = BuildAggregate(1, {UniformOffer(1, 10, 4, 2, 1.0, 2.0)});
  EXPECT_EQ(RemoveMember(99, &*agg).code(), StatusCode::kNotFound);
}

TEST(RemoveMemberTest, LastMemberRefused) {
  auto agg = BuildAggregate(1, {UniformOffer(1, 10, 4, 2, 1.0, 2.0)});
  EXPECT_EQ(RemoveMember(1, &*agg).code(), StatusCode::kFailedPrecondition);
}

TEST(DisaggregateTest, InvalidMacroScheduleRejected) {
  auto agg = BuildAggregate(1, {UniformOffer(1, 10, 4, 2, 1.0, 2.0)});
  ScheduledFlexOffer s{1, 9, {1.0, 1.0}};  // start before window
  EXPECT_FALSE(Disaggregate(*agg, s).ok());
}

TEST(DisaggregateTest, MemberStartsShiftByOffset) {
  FlexOffer a = UniformOffer(1, 10, 8, 2, 1.0, 2.0);
  FlexOffer b = UniformOffer(2, 14, 8, 2, 1.0, 2.0);
  auto agg = BuildAggregate(1, {a, b});
  ASSERT_TRUE(agg.ok());
  ScheduledFlexOffer s;
  s.offer_id = 1;
  s.start = 12;  // 2 slices into the window
  s.energies_kwh.assign(agg->macro.profile.size(), 0.0);
  for (size_t j = 0; j < s.energies_kwh.size(); ++j) {
    s.energies_kwh[j] = agg->macro.profile[j].min_kwh;
  }
  auto micro = Disaggregate(*agg, s);
  ASSERT_TRUE(micro.ok());
  EXPECT_EQ((*micro)[0].start, 12);
  EXPECT_EQ((*micro)[1].start, 16);
}

/// The paper's disaggregation requirement, tested as a property over random
/// workloads and random macro schedules: every member schedule respects the
/// member's constraints and the per-slice sums reproduce the aggregate
/// schedule exactly.
class DisaggregationRequirement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisaggregationRequirement, HoldsForRandomSchedules) {
  Rng rng(GetParam());
  datagen::FlexOfferWorkloadConfig cfg;
  cfg.count = 64;
  cfg.seed = GetParam() * 13 + 1;
  cfg.production_fraction = 0.25;
  auto offers = datagen::GenerateFlexOffers(cfg);
  auto agg = BuildAggregate(5, offers);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->Validate().ok());

  for (int trial = 0; trial < 20; ++trial) {
    ScheduledFlexOffer s;
    s.offer_id = 5;
    s.start = agg->macro.earliest_start +
              rng.UniformInt(0, agg->macro.TimeFlexibility());
    s.energies_kwh.reserve(agg->macro.profile.size());
    for (const auto& band : agg->macro.profile) {
      s.energies_kwh.push_back(
          band.min_kwh + rng.NextDouble() * band.Flexibility());
    }
    ASSERT_TRUE(s.ValidateAgainst(agg->macro).ok());

    auto micro = Disaggregate(*agg, s);
    ASSERT_TRUE(micro.ok());
    ASSERT_EQ(micro->size(), offers.size());

    // (1) every member schedule is valid for its offer,
    // (2) per-slice sums reproduce the macro schedule.
    std::vector<double> sums(agg->macro.profile.size(), 0.0);
    for (size_t i = 0; i < micro->size(); ++i) {
      ASSERT_TRUE((*micro)[i].ValidateAgainst(agg->members[i].offer).ok());
      int64_t offset = agg->members[i].offset;
      for (size_t j = 0; j < (*micro)[i].energies_kwh.size(); ++j) {
        sums[static_cast<size_t>(offset) + j] += (*micro)[i].energies_kwh[j];
      }
      EXPECT_EQ((*micro)[i].start, s.start + offset);
    }
    for (size_t j = 0; j < sums.size(); ++j) {
      EXPECT_NEAR(sums[j], s.energies_kwh[j], 1e-6) << "slice " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisaggregationRequirement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mirabel::aggregation
