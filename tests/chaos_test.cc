// Seeded chaos harness: every named fault scenario must leave the hierarchy
// conserved — each offer submitted before the wind-down reaches a terminal
// lifecycle state, stats match the stored facts, and the whole run is
// bit-reproducible per seed.
#include <gtest/gtest.h>

#include <string>

#include "node/fault_plan.h"
#include "node/simulation.h"

namespace mirabel::node {
namespace {

using flexoffer::TimeSlice;

SimulationConfig ChaosConfig() {
  SimulationConfig cfg;
  cfg.num_brps = 2;
  cfg.prosumers_per_brp = 6;
  cfg.days = 1;
  cfg.offers_per_day = 8.0;
  cfg.seed = 21;
  // Bit-determinism: iteration-capped scheduler, no wall-clock budget.
  cfg.scheduler_budget_s = 0.0;
  cfg.scheduler_max_iterations = 200;
  return cfg;
}

/// Every offer created before the wind-down must be terminal: executed,
/// rejected, or expired (fallback). Pending states may only hold offers
/// created during the drain itself (their deadlines outlive the run).
void CheckConservation(const EdmsSimulation& sim, const SimulationReport& r,
                       TimeSlice run_end, const std::string& scenario) {
  int64_t executed = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  for (const auto& prosumer : sim.prosumers()) {
    for (storage::FlexOfferState state :
         {storage::FlexOfferState::kOffered, storage::FlexOfferState::kAccepted,
          storage::FlexOfferState::kAggregated,
          storage::FlexOfferState::kScheduled}) {
      for (const auto& fact : prosumer->store().FlexOffersInState(state)) {
        EXPECT_GE(fact.offer.creation_time, run_end)
            << scenario << ": offer " << fact.id
            << " stranded non-terminal (state " << static_cast<int>(state)
            << ")";
      }
    }
    executed += static_cast<int64_t>(
        prosumer->store()
            .FlexOffersInState(storage::FlexOfferState::kExecuted)
            .size());
    rejected += static_cast<int64_t>(
        prosumer->store()
            .FlexOffersInState(storage::FlexOfferState::kRejected)
            .size());
    expired += static_cast<int64_t>(
        prosumer->store()
            .FlexOffersInState(storage::FlexOfferState::kExpired)
            .size());
  }
  // Stats are derived from the same transitions that move the facts; any
  // divergence means an offer was double-counted or silently skipped.
  EXPECT_EQ(executed, r.offers_executed) << scenario;
  EXPECT_EQ(rejected, r.offers_rejected) << scenario;
  EXPECT_EQ(expired, r.fallbacks) << scenario;

  // Engine-side conservation: after the drain, no BRP shard tracks a live
  // (non-terminal) offer anymore.
  auto check_engine = [&scenario](const AggregatingNode& node) {
    for (size_t s = 0; s < node.runtime().num_shards(); ++s) {
      const edms::OfferLifecycle& lc = node.runtime().shard(s).lifecycle();
      for (edms::OfferState state :
           {edms::OfferState::kOffered, edms::OfferState::kAccepted,
            edms::OfferState::kAggregated, edms::OfferState::kScheduled,
            edms::OfferState::kAssigned}) {
        EXPECT_EQ(lc.CountInState(state), 0u)
            << scenario << ": node " << node.id() << " shard " << s
            << " still tracks offers in state " << edms::ToString(state);
      }
    }
  };
  for (const auto& brp : sim.brps()) check_engine(*brp);
  if (sim.tso() != nullptr) check_engine(*sim.tso());

  // Message conservation at the bus.
  EXPECT_EQ(r.messages_sent,
            r.messages_delivered + r.messages_dropped +
                r.messages_undelivered_at_end)
      << scenario;
}

class ChaosScenarioTest : public ::testing::TestWithParam<NamedFaultPlan> {};

TEST_P(ChaosScenarioTest, ConservesOffersAndReproduces) {
  const NamedFaultPlan& scenario = GetParam();
  SimulationConfig cfg = ChaosConfig();
  cfg.bus.faults = scenario.plan;

  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  const TimeSlice run_end =
      static_cast<TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay;
  ASSERT_GT(report.offers_created, 0) << scenario.name;
  CheckConservation(sim, report, run_end, scenario.name);

  // Bit-reproducibility: the identical config replays the identical run,
  // faults, retries and all.
  EdmsSimulation replay(cfg);
  SimulationReport replayed = replay.Run();
  EXPECT_EQ(report.ToString(), replayed.ToString()) << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ChaosScenarioTest,
    ::testing::ValuesIn(ChaosScenarios(flexoffer::kSlicesPerDay)),
    [](const ::testing::TestParamInfo<NamedFaultPlan>& info) {
      return info.param.name;
    });

TEST(ChaosTest, ThreeLevelBlackoutExpiresForwardedMacros) {
  // A TSO blackout while BRPs forward macros exercises the deadline layer:
  // schedules never come back, the BRPs expire the stranded macros, and the
  // members fall back — nothing is left non-terminal.
  SimulationConfig cfg = ChaosConfig();
  cfg.use_tso = true;
  cfg.bus.faults.blackouts.push_back(
      {1, flexoffer::kSlicesPerDay / 4, flexoffer::kSlicesPerDay});
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  CheckConservation(sim, report,
                    static_cast<TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay,
                    "tso_blackout");
  // The blackout actually bit: forwarded macros expired unanswered.
  EXPECT_GT(report.macros_expired_unscheduled, 0);
}

TEST(ChaosTest, RetriesRecoverWhatFireAndForgetLoses) {
  // Degradation contrast under 20% random loss: acked retries must recover
  // strictly more accept/schedule round trips than the bare wire.
  SimulationConfig cfg = ChaosConfig();
  cfg.days = 2;
  cfg.bus.drop_probability = 0.20;
  EdmsSimulation with_retries(cfg);
  SimulationReport reliable = with_retries.Run();

  cfg.reliability.enabled = false;
  EdmsSimulation bare(cfg);
  SimulationReport lossy = bare.Run();

  EXPECT_GT(reliable.transport_retries, 0);
  EXPECT_EQ(lossy.transport_retries, 0);
  EXPECT_GT(reliable.schedules_received, lossy.schedules_received);
  EXPECT_LT(reliable.fallbacks, lossy.fallbacks);
  CheckConservation(with_retries, reliable,
                    static_cast<TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay,
                    "retries_on");
  CheckConservation(bare, lossy,
                    static_cast<TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay,
                    "retries_off");
}

TEST(ChaosTest, BoundedStreamingIntakeStaysConserved) {
  // Streaming intake with a tiny bound: whether or not the timing provokes
  // sheds, every NACK a prosumer received was sent by a BRP, and the run
  // stays conserved.
  SimulationConfig cfg = ChaosConfig();
  cfg.shards_per_node = 2;
  cfg.streaming_intake = true;
  cfg.max_pending_batches_per_shard = 1;
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  CheckConservation(sim, report,
                    static_cast<TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay,
                    "bounded_streaming");
  int64_t nacks_sent = 0;
  for (const auto& brp : sim.brps()) nacks_sent += brp->nacks_sent();
  EXPECT_LE(report.nacks_received, nacks_sent);
}

}  // namespace
}  // namespace mirabel::node
