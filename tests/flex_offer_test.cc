#include "flexoffer/flex_offer.h"

#include <gtest/gtest.h>

#include "flexoffer/time_slice.h"

namespace mirabel::flexoffer {
namespace {

FlexOffer SampleOffer() {
  return FlexOfferBuilder(1)
      .OwnedBy(10)
      .CreatedAt(0)
      .AssignBefore(80)
      .StartWindow(88, 100)
      .AddSlice(1.0, 2.0)
      .AddSlice(0.5, 0.5)
      .AddSlice(2.0, 4.0)
      .UnitPrice(0.03)
      .Build();
}

TEST(TimeSliceTest, Conversions) {
  EXPECT_EQ(HoursToSlices(1), 4);
  EXPECT_EQ(DaysToSlices(2), 192);
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(95), 23);
  EXPECT_EQ(HourOfDay(96), 0);
  EXPECT_EQ(SliceOfDay(97), 1);
  EXPECT_EQ(DayOf(95), 0);
  EXPECT_EQ(DayOf(96), 1);
}

TEST(TimeSliceTest, NegativeSlices) {
  EXPECT_EQ(HourOfDay(-1), 23);
  EXPECT_EQ(SliceOfDay(-1), 95);
  EXPECT_EQ(DayOf(-1), -1);
  EXPECT_EQ(DayOfWeek(-96), 6);  // the day before Monday is Sunday
}

TEST(TimeSliceTest, DayOfWeekAndWeekend) {
  EXPECT_EQ(DayOfWeek(0), 0);                       // Monday
  EXPECT_EQ(DayOfWeek(DaysToSlices(5)), 5);         // Saturday
  EXPECT_TRUE(IsWeekend(DaysToSlices(5)));
  EXPECT_TRUE(IsWeekend(DaysToSlices(6)));
  EXPECT_FALSE(IsWeekend(DaysToSlices(7)));
}

TEST(TimeSliceTest, Formatting) {
  EXPECT_EQ(FormatTimeSlice(0), "d0 00:00");
  EXPECT_EQ(FormatTimeSlice(5), "d0 01:15");
  EXPECT_EQ(FormatTimeSlice(96 + 4 * 10 + 2), "d1 10:30");
}

TEST(FlexOfferTest, DerivedQuantities) {
  FlexOffer fo = SampleOffer();
  EXPECT_EQ(fo.Duration(), 3);
  EXPECT_EQ(fo.TimeFlexibility(), 12);
  EXPECT_EQ(fo.LatestEnd(), 103);
  EXPECT_DOUBLE_EQ(fo.TotalMinEnergy(), 3.5);
  EXPECT_DOUBLE_EQ(fo.TotalMaxEnergy(), 6.5);
  EXPECT_DOUBLE_EQ(fo.TotalEnergyFlexibility(), 3.0);
}

TEST(FlexOfferTest, ValidOfferValidates) {
  EXPECT_TRUE(SampleOffer().Validate().ok());
}

TEST(FlexOfferTest, EmptyProfileInvalid) {
  FlexOffer fo = SampleOffer();
  fo.profile.clear();
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, MinAboveMaxInvalid) {
  FlexOffer fo = SampleOffer();
  fo.profile[1] = {2.0, 1.0};
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, WindowInvertedInvalid) {
  FlexOffer fo = SampleOffer();
  fo.earliest_start = 101;
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, DeadlineAfterLatestStartInvalid) {
  FlexOffer fo = SampleOffer();
  fo.assignment_before = 101;
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, CreationAfterDeadlineInvalid) {
  FlexOffer fo = SampleOffer();
  fo.creation_time = 81;
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, NonFiniteEnergyInvalid) {
  FlexOffer fo = SampleOffer();
  fo.profile[0].max_kwh = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(fo.Validate().ok());
}

TEST(FlexOfferTest, ProductionOfferWithNegativeBandsValidates) {
  FlexOffer fo = FlexOfferBuilder(2)
                     .StartWindow(10, 12)
                     .AddSlice(-3.0, -1.0)
                     .Build();
  fo.assignment_before = 10;
  EXPECT_TRUE(fo.Validate().ok());
  EXPECT_DOUBLE_EQ(fo.TotalEnergyFlexibility(), 2.0);
}

TEST(FlexOfferBuilderTest, DefaultsAssignmentToEarliestStart) {
  FlexOffer fo = FlexOfferBuilder(3).StartWindow(40, 50).AddSlice(1, 1).Build();
  EXPECT_EQ(fo.assignment_before, 40);
}

TEST(FlexOfferBuilderTest, AddSlicesRepeats) {
  FlexOffer fo =
      FlexOfferBuilder(4).StartWindow(0, 0).AddSlices(5, 1.0, 2.0).Build();
  EXPECT_EQ(fo.Duration(), 5);
  for (const auto& r : fo.profile) {
    EXPECT_DOUBLE_EQ(r.min_kwh, 1.0);
    EXPECT_DOUBLE_EQ(r.max_kwh, 2.0);
  }
}

TEST(ScheduledFlexOfferTest, ValidScheduleValidates) {
  FlexOffer fo = SampleOffer();
  ScheduledFlexOffer s{1, 90, {1.5, 0.5, 3.0}};
  EXPECT_TRUE(s.ValidateAgainst(fo).ok());
  EXPECT_DOUBLE_EQ(s.TotalEnergy(), 5.0);
}

TEST(ScheduledFlexOfferTest, WrongIdRejected) {
  ScheduledFlexOffer s{99, 90, {1.5, 0.5, 3.0}};
  EXPECT_FALSE(s.ValidateAgainst(SampleOffer()).ok());
}

TEST(ScheduledFlexOfferTest, StartOutsideWindowRejected) {
  ScheduledFlexOffer early{1, 87, {1.5, 0.5, 3.0}};
  ScheduledFlexOffer late{1, 101, {1.5, 0.5, 3.0}};
  EXPECT_FALSE(early.ValidateAgainst(SampleOffer()).ok());
  EXPECT_FALSE(late.ValidateAgainst(SampleOffer()).ok());
  ScheduledFlexOffer boundary{1, 100, {1.5, 0.5, 3.0}};
  EXPECT_TRUE(boundary.ValidateAgainst(SampleOffer()).ok());
}

TEST(ScheduledFlexOfferTest, EnergyOutsideBandRejected) {
  ScheduledFlexOffer low{1, 90, {0.9, 0.5, 3.0}};
  ScheduledFlexOffer high{1, 90, {1.5, 0.5, 4.1}};
  EXPECT_FALSE(low.ValidateAgainst(SampleOffer()).ok());
  EXPECT_FALSE(high.ValidateAgainst(SampleOffer()).ok());
}

TEST(ScheduledFlexOfferTest, SliceCountMismatchRejected) {
  ScheduledFlexOffer s{1, 90, {1.5, 0.5}};
  EXPECT_FALSE(s.ValidateAgainst(SampleOffer()).ok());
}

TEST(FallbackScheduleTest, StartsEarliestAtMaxEnergy) {
  FlexOffer fo = SampleOffer();
  ScheduledFlexOffer s = FallbackSchedule(fo);
  EXPECT_TRUE(s.ValidateAgainst(fo).ok());
  EXPECT_EQ(s.start, fo.earliest_start);
  EXPECT_DOUBLE_EQ(s.TotalEnergy(), fo.TotalMaxEnergy());
}

}  // namespace
}  // namespace mirabel::flexoffer
