#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "datagen/energy_series_generator.h"
#include "datagen/flex_offer_generator.h"
#include "datagen/weather_generator.h"

namespace mirabel::datagen {
namespace {

TEST(FlexOfferGeneratorTest, GeneratesRequestedCount) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 500;
  auto offers = GenerateFlexOffers(cfg);
  EXPECT_EQ(offers.size(), 500u);
}

TEST(FlexOfferGeneratorTest, AllOffersValid) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 2000;
  cfg.seed = 3;
  for (const auto& fo : GenerateFlexOffers(cfg)) {
    ASSERT_TRUE(fo.Validate().ok()) << fo.ToString();
  }
}

TEST(FlexOfferGeneratorTest, DeterministicInSeed) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 100;
  cfg.seed = 77;
  auto a = GenerateFlexOffers(cfg);
  auto b = GenerateFlexOffers(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].earliest_start, b[i].earliest_start);
    EXPECT_EQ(a[i].latest_start, b[i].latest_start);
    EXPECT_EQ(a[i].profile.size(), b[i].profile.size());
    EXPECT_DOUBLE_EQ(a[i].TotalMaxEnergy(), b[i].TotalMaxEnergy());
  }
}

TEST(FlexOfferGeneratorTest, DifferentSeedsDiffer) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 100;
  cfg.seed = 1;
  auto a = GenerateFlexOffers(cfg);
  cfg.seed = 2;
  auto b = GenerateFlexOffers(cfg);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].earliest_start == b[i].earliest_start) ++same;
  }
  EXPECT_LT(same, 30);
}

TEST(FlexOfferGeneratorTest, RespectsDurationAndFlexBounds) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 1000;
  cfg.min_duration_slices = 3;
  cfg.max_duration_slices = 7;
  cfg.min_time_flexibility = 2;
  cfg.max_time_flexibility = 10;
  cfg.duration_step = 1;
  cfg.time_flexibility_step = 1;
  for (const auto& fo : GenerateFlexOffers(cfg)) {
    EXPECT_GE(fo.Duration(), 3);
    EXPECT_LE(fo.Duration(), 7);
    EXPECT_GE(fo.TimeFlexibility(), 2);
    EXPECT_LE(fo.TimeFlexibility(), 10);
  }
}

TEST(FlexOfferGeneratorTest, ProductionFractionProducesNegativeBands) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 2000;
  cfg.production_fraction = 0.5;
  int production = 0;
  for (const auto& fo : GenerateFlexOffers(cfg)) {
    ASSERT_TRUE(fo.Validate().ok());
    if (fo.TotalMaxEnergy() <= 0.0) ++production;
  }
  EXPECT_GT(production, 800);
  EXPECT_LT(production, 1200);
}

TEST(FlexOfferGeneratorTest, QuantisationCreatesDuplicates) {
  FlexOfferWorkloadConfig cfg;
  cfg.count = 5000;
  cfg.time_flexibility_step = 8;
  std::vector<int64_t> tf;
  for (const auto& fo : GenerateFlexOffers(cfg)) {
    tf.push_back(fo.TimeFlexibility());
  }
  std::sort(tf.begin(), tf.end());
  tf.erase(std::unique(tf.begin(), tf.end()), tf.end());
  EXPECT_LE(tf.size(), 6u);  // 0..32 step 8
}

TEST(DemandSeriesTest, CorrectLengthAndDeterminism) {
  DemandSeriesConfig cfg;
  cfg.days = 14;
  auto a = GenerateDemandSeries(cfg);
  auto b = GenerateDemandSeries(cfg);
  EXPECT_EQ(a.size(), 14u * 48u);
  EXPECT_EQ(a, b);
}

TEST(DemandSeriesTest, EveningPeakAboveNightTrough) {
  DemandSeriesConfig cfg;
  cfg.days = 28;
  cfg.noise_stddev = 0.0;
  auto v = GenerateDemandSeries(cfg);
  // Compare 18:00 against 03:00 averaged over all days.
  double evening = 0.0;
  double night = 0.0;
  for (int d = 0; d < cfg.days; ++d) {
    evening += v[static_cast<size_t>(d * 48 + 36)];
    night += v[static_cast<size_t>(d * 48 + 6)];
  }
  EXPECT_GT(evening, night + cfg.days * 0.3 * cfg.daily_amplitude);
}

TEST(DemandSeriesTest, WeekendBelowWeekday) {
  DemandSeriesConfig cfg;
  cfg.days = 28;
  cfg.noise_stddev = 0.0;
  auto v = GenerateDemandSeries(cfg);
  double weekday = 0.0;
  double weekend = 0.0;
  int wd = 0;
  int we = 0;
  for (int d = 0; d < cfg.days; ++d) {
    double day_mean = 0.0;
    for (int p = 0; p < 48; ++p) day_mean += v[static_cast<size_t>(d * 48 + p)];
    day_mean /= 48;
    if (d % 7 >= 5) {
      weekend += day_mean;
      ++we;
    } else {
      weekday += day_mean;
      ++wd;
    }
  }
  EXPECT_GT(weekday / wd, weekend / we);
}

TEST(DemandSeriesTest, HolidayDipApplies) {
  DemandSeriesConfig cfg;
  cfg.days = 3;
  cfg.noise_stddev = 0.0;
  cfg.start_day_of_year = 0;  // day 0 and 1 are holidays in the calendar
  auto with_dip = GenerateDemandSeries(cfg);
  cfg.holiday_dip = 0.0;
  auto without = GenerateDemandSeries(cfg);
  EXPECT_LT(with_dip[10], without[10]);
}

TEST(HolidayCalendarTest, KnownHolidays) {
  EXPECT_TRUE(IsHolidayDayOfYear(0));
  EXPECT_TRUE(IsHolidayDayOfYear(359));
  EXPECT_FALSE(IsHolidayDayOfYear(50));
  EXPECT_TRUE(IsHolidayDayOfYear(365));  // wraps to 0
}

TEST(WindSeriesTest, WithinCapacity) {
  WindSeriesConfig cfg;
  cfg.days = 28;
  auto v = GenerateWindSeries(cfg);
  for (double p : v) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, cfg.capacity_mw + 1e-9);
  }
}

TEST(WindSeriesTest, HasVariability) {
  WindSeriesConfig cfg;
  cfg.days = 28;
  auto v = GenerateWindSeries(cfg);
  EXPECT_GT(StdDev(v), 0.05 * cfg.capacity_mw);
}

TEST(WindSeriesTest, WeakerSeasonalityThanDemand) {
  // The defining property for Fig. 4(b): correlation between consecutive
  // days is much weaker for wind than for demand.
  DemandSeriesConfig dcfg;
  dcfg.days = 28;
  auto demand = GenerateDemandSeries(dcfg);
  WindSeriesConfig wcfg;
  wcfg.days = 28;
  auto wind = GenerateWindSeries(wcfg);

  auto day_corr = [](const std::vector<double>& v) {
    std::vector<double> a(v.begin(), v.end() - 48);
    std::vector<double> b(v.begin() + 48, v.end());
    double ma = Mean(a);
    double mb = Mean(b);
    double num = 0.0;
    double da = 0.0;
    double db = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      num += (a[i] - ma) * (b[i] - mb);
      da += (a[i] - ma) * (a[i] - ma);
      db += (b[i] - mb) * (b[i] - mb);
    }
    return num / std::sqrt(da * db);
  };
  EXPECT_GT(day_corr(demand), day_corr(wind) + 0.2);
}

TEST(WeatherTest, DiurnalCycleAfternoonWarmer) {
  WeatherConfig cfg;
  cfg.days = 28;
  cfg.front_noise = 0.0;
  auto v = GenerateTemperatureSeries(cfg);
  double afternoon = 0.0;
  double night = 0.0;
  for (int d = 0; d < cfg.days; ++d) {
    afternoon += v[static_cast<size_t>(d * 48 + 30)];  // 15:00
    night += v[static_cast<size_t>(d * 48 + 6)];       // 03:00
  }
  EXPECT_GT(afternoon, night);
}

TEST(WeatherTest, Deterministic) {
  WeatherConfig cfg;
  cfg.days = 7;
  EXPECT_EQ(GenerateTemperatureSeries(cfg), GenerateTemperatureSeries(cfg));
}

}  // namespace
}  // namespace mirabel::datagen
