#include "aggregation/group_builder.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mirabel::aggregation {
namespace {

using flexoffer::FlexOffer;
using testutil::UniformOffer;


TEST(GroupKeyTest, ExactToleranceSeparatesValues) {
  AggregationParams p0 = AggregationParams::P0();
  EXPECT_EQ(MakeGroupKey(UniformOffer(1, 10, 4), p0), MakeGroupKey(UniformOffer(2, 10, 4), p0));
  EXPECT_NE(MakeGroupKey(UniformOffer(1, 10, 4), p0), MakeGroupKey(UniformOffer(2, 11, 4), p0));
  EXPECT_NE(MakeGroupKey(UniformOffer(1, 10, 4), p0), MakeGroupKey(UniformOffer(2, 10, 5), p0));
}

TEST(GroupKeyTest, ToleranceBucketsNearbyValues) {
  AggregationParams p;
  p.start_after_tolerance = 8;
  p.time_flexibility_tolerance = 0;
  EXPECT_EQ(MakeGroupKey(UniformOffer(1, 0, 4), p), MakeGroupKey(UniformOffer(2, 8, 4), p));
  EXPECT_NE(MakeGroupKey(UniformOffer(1, 8, 4), p), MakeGroupKey(UniformOffer(2, 9, 4), p));
}

TEST(GroupKeyTest, BucketedOffersDeviateAtMostTolerance) {
  AggregationParams p;
  p.start_after_tolerance = 5;
  for (int64_t a = 0; a < 40; ++a) {
    for (int64_t b = 0; b < 40; ++b) {
      if (MakeGroupKey(UniformOffer(1, a, 0), p) == MakeGroupKey(UniformOffer(2, b, 0), p)) {
        EXPECT_LE(std::abs(a - b), 5);
      }
    }
  }
}

TEST(GroupKeyTest, NegativeToleranceIgnoresAttribute) {
  AggregationParams p;
  p.start_after_tolerance = -1;
  p.time_flexibility_tolerance = 0;
  EXPECT_EQ(MakeGroupKey(UniformOffer(1, 0, 4), p), MakeGroupKey(UniformOffer(2, 500, 4), p));
}

TEST(GroupKeyTest, DurationGroupingWhenEnabled) {
  AggregationParams p;
  p.start_after_tolerance = -1;
  p.time_flexibility_tolerance = -1;
  p.duration_tolerance = 0;
  EXPECT_NE(MakeGroupKey(UniformOffer(1, 0, 4, 2), p),
            MakeGroupKey(UniformOffer(2, 0, 4, 3), p));
}

TEST(GroupBuilderTest, InsertsGroupSimilarOffers) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  ASSERT_TRUE(builder.Insert(UniformOffer(2, 10, 4)).ok());
  ASSERT_TRUE(builder.Insert(UniformOffer(3, 20, 4)).ok());
  auto updates = builder.Flush();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(builder.num_groups(), 2u);
  EXPECT_EQ(builder.num_offers(), 3u);
  for (const auto& u : updates) {
    EXPECT_EQ(u.kind, UpdateKind::kCreated);
  }
}

TEST(GroupBuilderTest, DuplicateIdRejected) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  EXPECT_EQ(builder.Insert(UniformOffer(1, 10, 4)).code(),
            StatusCode::kAlreadyExists);
  builder.Flush();
  EXPECT_EQ(builder.Insert(UniformOffer(1, 10, 4)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GroupBuilderTest, IdZeroRejected) {
  GroupBuilder builder(AggregationParams::P0());
  EXPECT_EQ(builder.Insert(UniformOffer(0, 10, 4)).code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupBuilderTest, RemoveUnknownNotFound) {
  GroupBuilder builder(AggregationParams::P0());
  EXPECT_EQ(builder.Remove(5).code(), StatusCode::kNotFound);
}

TEST(GroupBuilderTest, InsertThenRemoveInSameBatchCancels) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  ASSERT_TRUE(builder.Remove(1).ok());
  auto updates = builder.Flush();
  EXPECT_TRUE(updates.empty());
  EXPECT_EQ(builder.num_offers(), 0u);
}

TEST(GroupBuilderTest, RemovalEmptiesGroupEmitsDeleted) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  builder.Flush();
  ASSERT_TRUE(builder.Remove(1).ok());
  auto updates = builder.Flush();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].kind, UpdateKind::kDeleted);
  EXPECT_EQ(builder.num_groups(), 0u);
}

TEST(GroupBuilderTest, ChangedGroupCarriesDeltas) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  ASSERT_TRUE(builder.Insert(UniformOffer(2, 10, 4)).ok());
  builder.Flush();
  ASSERT_TRUE(builder.Insert(UniformOffer(3, 10, 4)).ok());
  ASSERT_TRUE(builder.Remove(1).ok());
  auto updates = builder.Flush();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].kind, UpdateKind::kChanged);
  ASSERT_EQ(updates[0].added.size(), 1u);
  EXPECT_EQ(updates[0].added[0].id, 3u);
  ASSERT_EQ(updates[0].removed.size(), 1u);
  EXPECT_EQ(updates[0].removed[0], 1u);
}

TEST(GroupBuilderTest, GroupMembersReturnsSortedMembership) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(5, 10, 4)).ok());
  ASSERT_TRUE(builder.Insert(UniformOffer(2, 10, 4)).ok());
  auto updates = builder.Flush();
  ASSERT_EQ(updates.size(), 1u);
  auto members = builder.GroupMembers(updates[0].group);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 2u);
  EXPECT_EQ((*members)[0].id, 2u);
  EXPECT_EQ((*members)[1].id, 5u);
  EXPECT_FALSE(builder.GroupMembers(9999).ok());
}

TEST(GroupBuilderTest, ReinsertAfterRemoveWorks) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  builder.Flush();
  ASSERT_TRUE(builder.Remove(1).ok());
  builder.Flush();
  EXPECT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  builder.Flush();
  EXPECT_EQ(builder.num_offers(), 1u);
}

TEST(GroupBuilderTest, GroupCreatedAndEmptiedInOneBatchIsNoOp) {
  GroupBuilder builder(AggregationParams::P0());
  ASSERT_TRUE(builder.Insert(UniformOffer(1, 10, 4)).ok());
  builder.Flush();
  // New group for offer 2 appears and disappears within one batch via the
  // cancel path; only offer 1's group exists.
  ASSERT_TRUE(builder.Insert(UniformOffer(2, 30, 4)).ok());
  ASSERT_TRUE(builder.Remove(2).ok());
  auto updates = builder.Flush();
  EXPECT_TRUE(updates.empty());
  EXPECT_EQ(builder.num_groups(), 1u);
}

}  // namespace
}  // namespace mirabel::aggregation
