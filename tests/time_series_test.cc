#include "forecasting/time_series.h"

#include <gtest/gtest.h>

namespace mirabel::forecasting {
namespace {

TEST(TimeSeriesTest, ConstructionAndAccess) {
  TimeSeries ts({1.0, 2.0, 3.0}, 48);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.periods_per_day(), 48);
  EXPECT_DOUBLE_EQ(ts.at(1), 2.0);
  EXPECT_FALSE(ts.empty());
}

TEST(TimeSeriesTest, AppendGrows) {
  TimeSeries ts({}, 48);
  EXPECT_TRUE(ts.empty());
  ts.Append(5.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.at(0), 5.0);
}

TEST(TimeSeriesTest, SliceExtractsRange) {
  TimeSeries ts({0.0, 1.0, 2.0, 3.0, 4.0}, 24);
  auto slice = ts.Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 3u);
  EXPECT_DOUBLE_EQ(slice->at(0), 1.0);
  EXPECT_DOUBLE_EQ(slice->at(2), 3.0);
  EXPECT_EQ(slice->periods_per_day(), 24);
}

TEST(TimeSeriesTest, SliceOutOfRangeFails) {
  TimeSeries ts({0.0, 1.0}, 48);
  EXPECT_FALSE(ts.Slice(1, 2).ok());
  EXPECT_TRUE(ts.Slice(0, 2).ok());
}

TEST(TimeSeriesTest, SplitPartitions) {
  TimeSeries ts({0.0, 1.0, 2.0, 3.0}, 48);
  auto split = ts.Split(3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first.size(), 3u);
  EXPECT_EQ(split->second.size(), 1u);
  EXPECT_DOUBLE_EQ(split->second.at(0), 3.0);
  EXPECT_FALSE(ts.Split(5).ok());
}

TEST(TimeSeriesTest, SumAlignedSeries) {
  TimeSeries a({1.0, 2.0}, 48);
  TimeSeries b({10.0, 20.0}, 48);
  auto sum = TimeSeries::Sum(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->at(0), 11.0);
  EXPECT_DOUBLE_EQ(sum->at(1), 22.0);
}

TEST(TimeSeriesTest, SumRejectsMisaligned) {
  TimeSeries a({1.0, 2.0}, 48);
  TimeSeries b({1.0}, 48);
  TimeSeries c({1.0, 2.0}, 24);
  EXPECT_FALSE(TimeSeries::Sum(a, b).ok());
  EXPECT_FALSE(TimeSeries::Sum(a, c).ok());
}

}  // namespace
}  // namespace mirabel::forecasting
