#include "common/math_util.h"

#include <cmath>
#include <gtest/gtest.h>

namespace mirabel {
namespace {

TEST(SigmoidTest, BasicValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_GT(Sigmoid(10.0), 0.999);
  EXPECT_LT(Sigmoid(-10.0), 0.001);
}

TEST(SigmoidTest, Monotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    double v = Sigmoid(x);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(SigmoidTest, ScaledMidpoint) {
  EXPECT_DOUBLE_EQ(ScaledSigmoid(12.0, 12.0, 3.0), 0.5);
  EXPECT_GT(ScaledSigmoid(20.0, 12.0, 3.0), 0.9);
}

TEST(ClampTest, Clamps) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MeanStdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(SmapeTest, PerfectForecastIsZero) {
  auto r = Smape({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(SmapeTest, KnownValue) {
  // |150-100| / ((100+150)/2) = 0.4
  auto r = Smape({100.0}, {150.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.4, 1e-12);
}

TEST(SmapeTest, BothZeroContributesNothing) {
  auto r = Smape({0.0, 100.0}, {0.0, 100.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(SmapeTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Smape({}, {}).ok());
  EXPECT_FALSE(Smape({1.0}, {1.0, 2.0}).ok());
}

TEST(SmapeTest, SymmetricInArguments) {
  auto a = Smape({100.0, 50.0}, {120.0, 40.0});
  auto b = Smape({120.0, 40.0}, {100.0, 50.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(MapeTest, SkipsZeroActuals) {
  auto r = Mape({0.0, 100.0}, {50.0, 110.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 0.1, 1e-12);
}

TEST(MapeTest, AllZeroActualsIsError) {
  EXPECT_FALSE(Mape({0.0, 0.0}, {1.0, 2.0}).ok());
}

TEST(RmseTest, KnownValue) {
  auto r = Rmse({0.0, 0.0}, {3.0, 4.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, std::sqrt(12.5), 1e-12);
}

TEST(SseTest, KnownValue) {
  auto r = SumSquaredError({1.0, 2.0}, {2.0, 4.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 5.0);
}

TEST(FitLineTest, RecoversExactLine) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y = {1.0, 3.0, 5.0, 7.0};  // y = 2x + 1
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyFitHasLowerR2) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {0.0, 2.5, 1.5, 3.5, 3.0};
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->r_squared, 0.0);
  EXPECT_LT(fit->r_squared, 1.0);
}

TEST(FitLineTest, ConstantXIsError) {
  EXPECT_FALSE(FitLine({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}).ok());
}

TEST(FitLineTest, TooFewPointsIsError) {
  EXPECT_FALSE(FitLine({1.0}, {1.0}).ok());
}

/// Property sweep: SMAPE is scale-invariant (multiplying both series by a
/// positive constant leaves it unchanged).
class SmapeScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(SmapeScaleInvariance, ScaleInvariant) {
  double k = GetParam();
  std::vector<double> a = {10.0, 20.0, 35.0, 7.0};
  std::vector<double> f = {12.0, 18.0, 30.0, 9.0};
  std::vector<double> ka = a;
  std::vector<double> kf = f;
  for (auto& v : ka) v *= k;
  for (auto& v : kf) v *= k;
  auto base = Smape(a, f);
  auto scaled = Smape(ka, kf);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(scaled.ok());
  EXPECT_NEAR(*base, *scaled, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, SmapeScaleInvariance,
                         ::testing::Values(0.001, 0.5, 1.0, 3.0, 1000.0));

}  // namespace
}  // namespace mirabel
