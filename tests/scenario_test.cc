// Dedicated suite for the synthetic scenario generator (scenario.{h,cc}),
// the workload source of the scheduler oracle tests and the kernel benches:
//
//  1. Determinism: the same config produces a bit-identical problem on every
//     call; changing the seed changes the workload.
//  2. Config round-trip: every knob of ScenarioConfig is observable in the
//     generated problem (horizon, offer count/shape, penalties, market
//     levels, energy/time flexibility bounds).
//  3. Validity: randomized configs always generate Validate()-clean
//     problems.
#include "scheduling/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mirabel::scheduling {
namespace {

bool BitIdentical(const SchedulingProblem& a, const SchedulingProblem& b) {
  if (a.horizon_start != b.horizon_start ||
      a.horizon_length != b.horizon_length ||
      a.baseline_imbalance_kwh != b.baseline_imbalance_kwh ||
      a.imbalance_penalty_eur != b.imbalance_penalty_eur ||
      a.market.buy_price_eur != b.market.buy_price_eur ||
      a.market.sell_price_eur != b.market.sell_price_eur ||
      a.market.max_buy_kwh != b.market.max_buy_kwh ||
      a.market.max_sell_kwh != b.market.max_sell_kwh ||
      a.offers.size() != b.offers.size()) {
    return false;
  }
  for (size_t i = 0; i < a.offers.size(); ++i) {
    const auto& fa = a.offers[i];
    const auto& fb = b.offers[i];
    if (fa.id != fb.id || fa.earliest_start != fb.earliest_start ||
        fa.latest_start != fb.latest_start ||
        fa.unit_price_eur != fb.unit_price_eur ||
        fa.profile.size() != fb.profile.size()) {
      return false;
    }
    for (size_t j = 0; j < fa.profile.size(); ++j) {
      if (fa.profile[j] != fb.profile[j]) return false;
    }
  }
  return true;
}

TEST(ScenarioTest, SameSeedIsBitDeterministic) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.seed = 123;
  SchedulingProblem a = MakeScenario(cfg);
  SchedulingProblem b = MakeScenario(cfg);
  EXPECT_TRUE(BitIdentical(a, b));
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.seed = 123;
  SchedulingProblem a = MakeScenario(cfg);
  cfg.seed = 124;
  SchedulingProblem b = MakeScenario(cfg);
  EXPECT_FALSE(BitIdentical(a, b));
}

TEST(ScenarioTest, ConfigRoundTripsThroughGeneratedProblem) {
  ScenarioConfig cfg;
  cfg.num_offers = 60;
  cfg.horizon_length = 48;
  cfg.seed = 7;
  cfg.penalty_eur_per_kwh = 0.4;
  cfg.peak_penalty_factor = 2.5;
  cfg.buy_price_eur = 0.2;
  cfg.sell_price_eur = 0.08;
  cfg.max_buy_kwh = 11.0;
  cfg.max_sell_kwh = 13.0;
  cfg.min_duration = 3;
  cfg.max_duration = 7;
  cfg.min_slice_energy_kwh = 2.0;
  cfg.max_slice_energy_kwh = 5.0;
  cfg.max_time_flexibility = 9;
  SchedulingProblem p = MakeScenario(cfg);
  ASSERT_TRUE(p.Validate().ok());

  EXPECT_EQ(p.horizon_length, cfg.horizon_length);
  EXPECT_EQ(p.baseline_imbalance_kwh.size(),
            static_cast<size_t>(cfg.horizon_length));
  EXPECT_EQ(p.offers.size(), static_cast<size_t>(cfg.num_offers));
  EXPECT_EQ(p.market.max_buy_kwh, cfg.max_buy_kwh);
  EXPECT_EQ(p.market.max_sell_kwh, cfg.max_sell_kwh);

  // Penalties take exactly the off-peak level or the peak multiple; both
  // levels occur over a day.
  bool saw_peak = false;
  bool saw_off_peak = false;
  for (double pen : p.imbalance_penalty_eur) {
    if (pen == cfg.penalty_eur_per_kwh) {
      saw_off_peak = true;
    } else {
      EXPECT_EQ(pen, cfg.penalty_eur_per_kwh * cfg.peak_penalty_factor);
      saw_peak = true;
    }
  }
  EXPECT_TRUE(saw_peak);
  EXPECT_TRUE(saw_off_peak);

  // Market prices wobble within +/-10% of their levels.
  for (size_t s = 0; s < p.market.buy_price_eur.size(); ++s) {
    EXPECT_GE(p.market.buy_price_eur[s], 0.9 * cfg.buy_price_eur);
    EXPECT_LE(p.market.buy_price_eur[s], 1.1 * cfg.buy_price_eur);
    EXPECT_GE(p.market.sell_price_eur[s], 0.9 * cfg.sell_price_eur);
    EXPECT_LE(p.market.sell_price_eur[s], 1.1 * cfg.sell_price_eur);
  }

  for (const auto& fo : p.offers) {
    EXPECT_GE(fo.Duration(), cfg.min_duration);
    EXPECT_LE(fo.Duration(), cfg.max_duration);
    EXPECT_GE(fo.TimeFlexibility(), 0);
    EXPECT_LE(fo.TimeFlexibility(), cfg.max_time_flexibility);
    // The whole window fits the horizon.
    EXPECT_GE(fo.earliest_start, 0);
    EXPECT_LE(fo.LatestEnd(), p.horizon_start + p.horizon_length);
    for (const auto& r : fo.profile) {
      EXPECT_LE(r.min_kwh, r.max_kwh);
      // The band's outer magnitude is the drawn slice energy.
      const double outer = std::max(std::fabs(r.min_kwh), std::fabs(r.max_kwh));
      EXPECT_GE(outer, cfg.min_slice_energy_kwh);
      EXPECT_LE(outer, cfg.max_slice_energy_kwh);
    }
  }
}

TEST(ScenarioTest, NoEnergyFlexibilityPinsSliceBands) {
  ScenarioConfig cfg;
  cfg.num_offers = 25;
  cfg.seed = 31;
  cfg.no_energy_flexibility = true;
  SchedulingProblem p = MakeScenario(cfg);
  for (const auto& fo : p.offers) {
    for (const auto& r : fo.profile) {
      EXPECT_EQ(r.min_kwh, r.max_kwh);
      EXPECT_EQ(r.Flexibility(), 0.0);
    }
  }
}

TEST(ScenarioTest, ProductionFractionControlsOfferSign) {
  ScenarioConfig cfg;
  cfg.num_offers = 80;
  cfg.seed = 5;
  cfg.production_fraction = 0.0;
  for (const auto& fo : MakeScenario(cfg).offers) {
    for (const auto& r : fo.profile) EXPECT_GT(r.max_kwh, 0.0);
  }
  cfg.production_fraction = 1.0;
  for (const auto& fo : MakeScenario(cfg).offers) {
    for (const auto& r : fo.profile) EXPECT_LT(r.min_kwh, 0.0);
  }
}

TEST(ScenarioTest, RandomizedConfigsAlwaysValidate) {
  Rng rng(99);
  for (int it = 0; it < 150; ++it) {
    ScenarioConfig cfg;
    cfg.num_offers = 1 + static_cast<int>(rng.UniformInt(0, 50));
    cfg.seed = static_cast<uint64_t>(it);
    cfg.horizon_length = static_cast<int>(rng.UniformInt(16, 128));
    cfg.min_duration = 1 + static_cast<int>(rng.UniformInt(0, 3));
    cfg.max_duration =
        cfg.min_duration + static_cast<int>(rng.UniformInt(0, 10));
    cfg.max_time_flexibility = static_cast<int>(rng.UniformInt(0, 30));
    cfg.production_fraction = rng.NextDouble();
    cfg.no_energy_flexibility = rng.Bernoulli(0.25);
    cfg.max_energy_flex = rng.NextDouble();
    SchedulingProblem p = MakeScenario(cfg);
    ASSERT_TRUE(p.Validate().ok())
        << "config " << it << ": " << p.Validate().message();
    ASSERT_EQ(p.offers.size(), static_cast<size_t>(cfg.num_offers));
  }
}

}  // namespace
}  // namespace mirabel::scheduling
