// Cross-module integration tests: the full aggregate -> schedule ->
// disaggregate path at realistic scale (the paper's core pipeline, §8), plus
// forecasting feeding scheduling.
#include <gtest/gtest.h>

#include "aggregation/pipeline.h"
#include "common/math_util.h"
#include "datagen/energy_series_generator.h"
#include "datagen/flex_offer_generator.h"
#include "forecasting/forecaster.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

namespace mirabel {
namespace {

using aggregation::AggregationParams;
using aggregation::AggregationPipeline;
using flexoffer::FlexOffer;
using flexoffer::kSlicesPerDay;
using flexoffer::ScheduledFlexOffer;

/// End-to-end property over the three components: for every aggregation
/// parameter combination, every offer of a generated workload is aggregated,
/// the macro offers are scheduled, and the disaggregated micro schedules
/// respect all original constraints while summing to the macro schedules.
class EndToEndPipeline
    : public ::testing::TestWithParam<std::pair<const char*, AggregationParams>> {
};

TEST_P(EndToEndPipeline, AggregateScheduleDisaggregate) {
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = 1500;
  workload.seed = 1212;
  workload.horizon_days = 1;
  std::vector<FlexOffer> offers = datagen::GenerateFlexOffers(workload);

  AggregationPipeline pipeline({GetParam().second, std::nullopt});
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  ASSERT_GT(pipeline.aggregates().size(), 0u);
  ASSERT_LT(pipeline.aggregates().size(), offers.size());

  // Schedule all macro offers that fit a 2.5-day horizon (the generated
  // windows extend past day 1).
  scheduling::SchedulingProblem problem;
  problem.horizon_start = 0;
  problem.horizon_length = kSlicesPerDay * 5 / 2;
  size_t h = static_cast<size_t>(problem.horizon_length);
  problem.baseline_imbalance_kwh.assign(h, 0.0);
  for (size_t s = 0; s < h; ++s) {
    problem.baseline_imbalance_kwh[s] =
        20.0 - 45.0 * (s % 96 > 40 && s % 96 < 70 ? 1.0 : 0.0);
  }
  problem.imbalance_penalty_eur.assign(h, 0.3);
  problem.market.buy_price_eur.assign(h, 0.15);
  problem.market.sell_price_eur.assign(h, 0.04);
  problem.market.max_buy_kwh = 10.0;
  problem.market.max_sell_kwh = 10.0;
  size_t member_count = 0;
  for (const auto& [id, agg] : pipeline.aggregates()) {
    ASSERT_GE(agg.macro.earliest_start, 0);
    ASSERT_LE(agg.macro.LatestEnd(), problem.horizon_length);
    problem.offers.push_back(agg.macro);
    member_count += agg.members.size();
  }
  ASSERT_EQ(member_count, offers.size());
  ASSERT_TRUE(problem.Validate().ok());

  scheduling::GreedyScheduler scheduler;
  scheduling::SchedulerOptions options;
  options.time_budget_s = 0.0;
  options.max_iterations = static_cast<int>(problem.offers.size());
  auto run = scheduler.Run(problem, options);
  ASSERT_TRUE(run.ok());

  scheduling::CostEvaluator evaluator(problem);
  ASSERT_TRUE(evaluator.SetSchedule(run->schedule).ok());
  std::unordered_map<flexoffer::FlexOfferId, const FlexOffer*> offer_by_id;
  for (const auto& fo : offers) offer_by_id[fo.id] = &fo;

  size_t micro_count = 0;
  for (const auto& macro_schedule : evaluator.ToScheduledOffers()) {
    auto micro = pipeline.DisaggregateSchedule(macro_schedule);
    ASSERT_TRUE(micro.ok());
    double macro_total = macro_schedule.TotalEnergy();
    double micro_total = 0.0;
    for (const auto& s : *micro) {
      auto it = offer_by_id.find(s.offer_id);
      ASSERT_NE(it, offer_by_id.end());
      ASSERT_TRUE(s.ValidateAgainst(*it->second).ok());
      micro_total += s.TotalEnergy();
      ++micro_count;
    }
    EXPECT_NEAR(micro_total, macro_total, 1e-5);
  }
  EXPECT_EQ(micro_count, offers.size());
}

INSTANTIATE_TEST_SUITE_P(
    Combos, EndToEndPipeline,
    ::testing::Values(std::make_pair("P0", AggregationParams::P0()),
                      std::make_pair("P1", AggregationParams::P1()),
                      std::make_pair("P2", AggregationParams::P2()),
                      std::make_pair("P3", AggregationParams::P3())),
    [](const auto& info) { return info.param.first; });

TEST(ForecastToScheduleTest, ForecastDrivesImbalanceCurve) {
  // Train the forecaster on synthetic history, build a scheduling problem
  // from its forecast, and verify scheduling against the forecast beats the
  // fallback placement (the forecasting->scheduling interplay of §8).
  datagen::DemandSeriesConfig dcfg;
  dcfg.periods_per_day = kSlicesPerDay;
  dcfg.days = 15;
  dcfg.base_load_mw = 100.0;
  dcfg.daily_amplitude = 40.0;
  dcfg.weekly_amplitude = 10.0;
  dcfg.annual_amplitude = 0.0;
  dcfg.noise_stddev = 2.0;
  auto demand = datagen::GenerateDemandSeries(dcfg);

  forecasting::ForecasterConfig fcfg;
  fcfg.seasonal_periods = {kSlicesPerDay, 7 * kSlicesPerDay};
  fcfg.initial_estimation = {0.2, 0, 4};
  forecasting::Forecaster forecaster(fcfg);
  ASSERT_TRUE(
      forecaster.Train(forecasting::TimeSeries(demand, kSlicesPerDay)).ok());
  auto forecast = forecaster.Forecast(kSlicesPerDay);
  ASSERT_TRUE(forecast.ok());

  scheduling::ScenarioConfig scfg;
  scfg.num_offers = 60;
  scfg.seed = 4;
  scheduling::SchedulingProblem problem = scheduling::MakeScenario(scfg);
  for (size_t s = 0; s < problem.baseline_imbalance_kwh.size(); ++s) {
    problem.baseline_imbalance_kwh[s] = ((*forecast)[s] - 100.0);
  }

  double fallback_cost = scheduling::CostEvaluator(problem).Cost().total();
  scheduling::GreedyScheduler scheduler;
  scheduling::SchedulerOptions options;
  options.time_budget_s = 0.0;
  options.max_iterations = 120;
  auto run = scheduler.Run(problem, options);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(run->cost.total(), fallback_cost);
}

TEST(AggregationSchedulingTradeoffTest, MoreAggressiveAggregationIsFaster) {
  // §8's aggregation/scheduling interplay: stronger compression leaves the
  // scheduler fewer objects. We check the structural half (fewer macros and
  // at-most-equal flexibility) deterministically.
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = 3000;
  workload.seed = 55;
  auto offers = datagen::GenerateFlexOffers(workload);

  AggregationPipeline weak({AggregationParams::P0(), std::nullopt});
  AggregationPipeline strong({AggregationParams::P3(), std::nullopt});
  for (const auto& fo : offers) {
    ASSERT_TRUE(weak.Insert(fo).ok());
    ASSERT_TRUE(strong.Insert(fo).ok());
  }
  weak.Flush();
  strong.Flush();
  EXPECT_LT(strong.aggregates().size(), weak.aggregates().size());
  EXPECT_GE(strong.Stats().avg_time_flexibility_loss,
            weak.Stats().avg_time_flexibility_loss);
}

}  // namespace
}  // namespace mirabel
