#include "forecasting/hwt_model.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>
#include <new>

#include "common/math_util.h"
#include "datagen/energy_series_generator.h"

// ---------------------------------------------------------------------------
// Counting global allocator (binary-wide): estimators call FitWithParams
// once per candidate parameter vector, so refits must reuse the member
// fit buffers instead of allocating fresh scratch per call.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_heap_allocations{0};

void* CountedAlloc(std::size_t n) {
  ++g_heap_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mirabel::forecasting {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// A noiseless series with daily (period 48) and weekly (336) cycles.
std::vector<double> SeasonalSignal(int days) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(days) * 48);
  for (int t = 0; t < days * 48; ++t) {
    double daily = 10.0 * std::sin(2.0 * kPi * (t % 48) / 48.0);
    double weekly = 4.0 * std::sin(2.0 * kPi * (t % 336) / 336.0);
    out.push_back(100.0 + daily + weekly);
  }
  return out;
}

TEST(HwtModelTest, ParamCountAndBounds) {
  HwtModel model({48, 336});
  EXPECT_EQ(model.NumParams(), 4u);  // alpha, 2 gammas, phi
  auto bounds = model.Bounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(bounds[0].hi, 1.0);
  EXPECT_DOUBLE_EQ(bounds[3].hi, 0.99);
}

TEST(HwtModelTest, RejectsWrongParamCount) {
  HwtModel model({48});
  TimeSeries series(SeasonalSignal(7), 48);
  EXPECT_FALSE(model.FitWithParams(series, {0.1}).ok());
}

TEST(HwtModelTest, RejectsOutOfRangeParams) {
  HwtModel model({48});
  TimeSeries series(SeasonalSignal(7), 48);
  EXPECT_FALSE(model.FitWithParams(series, {1.5, 0.1, 0.1}).ok());
  EXPECT_FALSE(model.FitWithParams(series, {-0.1, 0.1, 0.1}).ok());
}

TEST(HwtModelTest, RejectsShortSeries) {
  HwtModel model({48, 336});
  TimeSeries series(SeasonalSignal(7), 48);  // < 2 weekly cycles
  EXPECT_FALSE(model.FitWithParams(series, model.DefaultParams()).ok());
}

TEST(HwtModelTest, ForecastBeforeFitFails) {
  HwtModel model({48});
  EXPECT_FALSE(model.Forecast(10).ok());
  EXPECT_FALSE(model.Update(1.0).ok());
}

TEST(HwtModelTest, InvalidHorizonFails) {
  HwtModel model({48});
  TimeSeries series(SeasonalSignal(7), 48);
  ASSERT_TRUE(model.FitWithParams(series, model.DefaultParams()).ok());
  EXPECT_FALSE(model.Forecast(0).ok());
  EXPECT_FALSE(model.Forecast(-3).ok());
}

TEST(HwtModelTest, FitsPureSeasonalSignalAccurately) {
  HwtModel model({48, 336});
  std::vector<double> signal = SeasonalSignal(22);
  TimeSeries train(std::vector<double>(signal.begin(), signal.end() - 336),
                   48);
  auto sse = model.FitWithParams(train, {0.05, 0.3, 0.2, 0.0});
  ASSERT_TRUE(sse.ok());
  auto forecast = model.Forecast(336);
  ASSERT_TRUE(forecast.ok());
  std::vector<double> actual(signal.end() - 336, signal.end());
  auto smape = Smape(actual, *forecast);
  ASSERT_TRUE(smape.ok());
  EXPECT_LT(*smape, 0.01);  // near-perfect on a noiseless signal
}

TEST(HwtModelTest, ForecastTracksSeasonalShape) {
  HwtModel model({48});
  std::vector<double> signal = SeasonalSignal(10);
  TimeSeries train(signal, 48);
  ASSERT_TRUE(model.FitWithParams(train, {0.1, 0.3, 0.0}).ok());
  auto forecast = model.Forecast(48);
  ASSERT_TRUE(forecast.ok());
  // The daily peak (slice 12) must be forecast higher than the trough (36).
  EXPECT_GT((*forecast)[12], (*forecast)[36]);
}

TEST(HwtModelTest, UpdateMatchesFullRefit) {
  // Consuming values via Update must land in exactly the same state as a
  // from-scratch fit of the longer series, since the recursions and the
  // initialisation window coincide.
  std::vector<double> signal = SeasonalSignal(20);
  std::vector<double> params = {0.1, 0.25, 0.15, 0.4};

  HwtModel incremental({48, 336});
  TimeSeries head(std::vector<double>(signal.begin(), signal.end() - 100), 48);
  ASSERT_TRUE(incremental.FitWithParams(head, params).ok());
  for (size_t i = signal.size() - 100; i < signal.size(); ++i) {
    ASSERT_TRUE(incremental.Update(signal[i]).ok());
  }

  HwtModel full({48, 336});
  ASSERT_TRUE(full.FitWithParams(TimeSeries(signal, 48), params).ok());

  auto fa = incremental.Forecast(96);
  auto fb = full.Forecast(96);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (size_t i = 0; i < fa->size(); ++i) {
    EXPECT_NEAR((*fa)[i], (*fb)[i], 1e-9);
  }
}

TEST(HwtModelTest, PhiPropagatesLastError) {
  HwtModel model({48});
  std::vector<double> signal = SeasonalSignal(10);
  TimeSeries train(signal, 48);
  ASSERT_TRUE(model.FitWithParams(train, {0.0, 0.0, 0.8}).ok());
  // Inject a large error, then check the next forecasts decay geometrically
  // toward the seasonal baseline.
  auto base = model.Forecast(3);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(model.Update((*base)[0] + 100.0).ok());
  auto bumped = model.Forecast(2);
  ASSERT_TRUE(bumped.ok());
  EXPECT_NEAR((*bumped)[0] - (*base)[1], 0.8 * 100.0, 1.0);
  EXPECT_NEAR((*bumped)[1] - (*base)[2], 0.64 * 100.0, 1.0);
}

TEST(HwtModelTest, BetterParamsGiveLowerSse) {
  datagen::DemandSeriesConfig cfg;
  cfg.days = 21;
  auto values = datagen::GenerateDemandSeries(cfg);
  TimeSeries series(values, 48);
  HwtModel model({48, 336});
  auto good = model.FitWithParams(series, {0.1, 0.3, 0.2, 0.6});
  auto bad = model.FitWithParams(series, {0.99, 0.99, 0.99, 0.0});
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(*good, *bad);
}

/// Property: the in-sample SSE is finite and non-negative for any parameter
/// vector inside the bounds.
class HwtParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(HwtParamSweep, SseFiniteInsideBounds) {
  double p = GetParam();
  HwtModel model({48});
  TimeSeries series(SeasonalSignal(8), 48);
  auto sse = model.FitWithParams(series, {p, p, std::min(p, 0.99)});
  ASSERT_TRUE(sse.ok());
  EXPECT_GE(*sse, 0.0);
  EXPECT_TRUE(std::isfinite(*sse));
}

INSTANTIATE_TEST_SUITE_P(Grid, HwtParamSweep,
                         ::testing::Values(0.0, 0.05, 0.25, 0.5, 0.75, 1.0));

TEST(HwtModelTest, RefitReusesFitBuffersWithoutAllocating) {
  // Regression: the per-fit detrend/count scratch and the residual pool
  // used to be fresh vectors per FitWithParams call; they now live in
  // member buffers, so a same-shape refit allocates nothing at all.
  HwtModel model({48, 336});
  std::vector<double> signal = SeasonalSignal(20);
  TimeSeries series(signal, 48);
  std::vector<double> params = {0.1, 0.25, 0.15, 0.4};
  ASSERT_TRUE(model.FitWithParams(series, params).ok());  // warm-up

  int64_t before = g_heap_allocations.load();
  double acc = 0.0;
  for (int i = 0; i < 8; ++i) {
    auto sse = model.FitWithParams(series, params);
    ASSERT_TRUE(sse.ok());
    acc += *sse;
  }
  EXPECT_EQ(g_heap_allocations.load(), before) << "acc=" << acc;
  EXPECT_EQ(model.residuals().size(), signal.size() - 336);
}

}  // namespace
}  // namespace mirabel::forecasting
