#include "common/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mirabel {
namespace {

TEST(MatrixTest, TransposeTimesSelf) {
  Matrix x(3, 2);
  // [[1,2],[3,4],[5,6]]
  x.At(0, 0) = 1;
  x.At(0, 1) = 2;
  x.At(1, 0) = 3;
  x.At(1, 1) = 4;
  x.At(2, 0) = 5;
  x.At(2, 1) = 6;
  Matrix g = x.TransposeTimesSelf();
  EXPECT_DOUBLE_EQ(g.At(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(g.At(1, 0), 44.0);
  EXPECT_DOUBLE_EQ(g.At(1, 1), 56.0);
}

TEST(MatrixTest, VectorProducts) {
  Matrix x(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      x.At(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  std::vector<double> v = {1.0, 0.0, -1.0};
  std::vector<double> xv = x.TimesVector(v);
  EXPECT_DOUBLE_EQ(xv[0], -2.0);  // 1 - 3
  EXPECT_DOUBLE_EQ(xv[1], -2.0);  // 4 - 6
  std::vector<double> w = {2.0, 1.0};
  std::vector<double> xtw = x.TransposeTimesVector(w);
  EXPECT_DOUBLE_EQ(xtw[0], 6.0);   // 2*1 + 1*4
  EXPECT_DOUBLE_EQ(xtw[1], 9.0);   // 2*2 + 1*5
  EXPECT_DOUBLE_EQ(xtw[2], 12.0);  // 2*3 + 1*6
}

TEST(SolveSpdTest, SolvesIdentity) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(1, 1) = 1;
  auto x = SolveSpd(a, {3.0, -4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], -4.0);
}

TEST(SolveSpdTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto x = SolveSpd(a, {10.0, 9.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveSpdTest, DimensionMismatch) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveSpd(a, {1.0, 2.0}).ok());
  Matrix b(2, 2);
  EXPECT_FALSE(SolveSpd(b, {1.0}).ok());
}

TEST(LeastSquaresTest, RecoversCoefficients) {
  // y = 3 + 2*x1 - x2, exactly determined by clean data.
  Rng rng(5);
  const size_t n = 50;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double x1 = rng.Uniform(-5, 5);
    double x2 = rng.Uniform(-5, 5);
    x.At(i, 0) = 1.0;
    x.At(i, 1) = x1;
    x.At(i, 2) = x2;
    y[i] = 3.0 + 2.0 * x1 - x2;
  }
  auto beta = SolveLeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-9);
  EXPECT_NEAR((*beta)[1], 2.0, 1e-9);
  EXPECT_NEAR((*beta)[2], -1.0, 1e-9);
}

TEST(LeastSquaresTest, NoisyRecoveryIsClose) {
  Rng rng(6);
  const size_t n = 2000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double x1 = rng.Uniform(-1, 1);
    x.At(i, 0) = 1.0;
    x.At(i, 1) = x1;
    y[i] = 1.0 + 0.5 * x1 + rng.Gaussian(0.0, 0.1);
  }
  auto beta = SolveLeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 1.0, 0.02);
  EXPECT_NEAR((*beta)[1], 0.5, 0.02);
}

TEST(LeastSquaresTest, UnderdeterminedIsError) {
  Matrix x(2, 3);
  EXPECT_FALSE(SolveLeastSquares(x, {1.0, 2.0}).ok());
}

TEST(LeastSquaresTest, CollinearColumnsStillSolveViaRidge) {
  // Two identical columns: singular normal equations; the ridge fallback
  // must still return some finite solution.
  Matrix x(10, 2);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    x.At(i, 1) = static_cast<double>(i);
    y[i] = 2.0 * static_cast<double>(i);
  }
  auto beta = SolveLeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0] + (*beta)[1], 2.0, 0.01);
}

}  // namespace
}  // namespace mirabel
