#include "aggregation/bin_packer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mirabel::aggregation {
namespace {

using flexoffer::FlexOffer;

// Fixed-energy offer (no energy flexibility), window [10, 10 + tf].
FlexOffer Offer(uint64_t id, double energy = 1.0, int64_t tf = 4) {
  return testutil::UniformOffer(id, /*earliest=*/10, tf, /*dur=*/2,
                                energy / 2, energy / 2);
}

GroupUpdate Created(GroupId g, std::vector<FlexOffer> offers) {
  GroupUpdate u;
  u.kind = UpdateKind::kCreated;
  u.group = g;
  u.added = std::move(offers);
  return u;
}

TEST(BinPackerTest, SplitsByMaxOffers) {
  BinPackerBounds bounds;
  bounds.max_offers = 3;
  BinPacker packer(bounds);
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 8; ++i) offers.push_back(Offer(i));
  auto updates = packer.Process({Created(1, offers)});
  // 8 offers / max 3 -> bins of 3, 3, 2.
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0].members.size(), 3u);
  EXPECT_EQ(updates[1].members.size(), 3u);
  EXPECT_EQ(updates[2].members.size(), 2u);
  EXPECT_EQ(packer.num_sub_groups(), 3u);
}

TEST(BinPackerTest, SplitsByEnergyBound) {
  BinPackerBounds bounds;
  bounds.max_total_energy_kwh = 2.5;
  BinPacker packer(bounds);
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 5; ++i) offers.push_back(Offer(i, 1.0));
  auto updates = packer.Process({Created(1, offers)});
  ASSERT_EQ(updates.size(), 3u);  // 2+2+1
  EXPECT_EQ(updates[0].members.size(), 2u);
}

TEST(BinPackerTest, SplitsByTimeFlexibilityBound) {
  BinPackerBounds bounds;
  bounds.max_total_time_flexibility = 8;
  BinPacker packer(bounds);
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 4; ++i) offers.push_back(Offer(i, 1.0, 4));
  auto updates = packer.Process({Created(1, offers)});
  ASSERT_EQ(updates.size(), 2u);  // tf 4 each, cap 8 -> pairs
  EXPECT_EQ(updates[0].members.size(), 2u);
}

TEST(BinPackerTest, MinOffersMergesTrailingBin) {
  BinPackerBounds bounds;
  bounds.max_offers = 3;
  bounds.min_offers = 2;
  BinPacker packer(bounds);
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 7; ++i) offers.push_back(Offer(i));
  auto updates = packer.Process({Created(1, offers)});
  // 3+3+1 -> trailing singleton folds into the previous bin: 3+4.
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0].members.size(), 3u);
  EXPECT_EQ(updates[1].members.size(), 4u);
}

TEST(BinPackerTest, GroupDeletionDeletesSubGroups) {
  BinPackerBounds bounds;
  bounds.max_offers = 2;
  BinPacker packer(bounds);
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 4; ++i) offers.push_back(Offer(i));
  packer.Process({Created(1, offers)});
  EXPECT_EQ(packer.num_sub_groups(), 2u);
  GroupUpdate del;
  del.kind = UpdateKind::kDeleted;
  del.group = 1;
  auto updates = packer.Process({del});
  ASSERT_EQ(updates.size(), 2u);
  for (const auto& u : updates) {
    EXPECT_EQ(u.kind, UpdateKind::kDeleted);
  }
  EXPECT_EQ(packer.num_sub_groups(), 0u);
}

TEST(BinPackerTest, GrowthReusesSubGroupIds) {
  BinPackerBounds bounds;
  bounds.max_offers = 2;
  BinPacker packer(bounds);
  auto first = packer.Process({Created(1, {Offer(1), Offer(2)})});
  ASSERT_EQ(first.size(), 1u);
  SubGroupId original = first[0].sub_group;

  GroupUpdate change;
  change.kind = UpdateKind::kChanged;
  change.group = 1;
  change.added = {Offer(3)};
  auto second = packer.Process({change});
  // Bin 1 keeps its id (kChanged), the overflow creates a new sub-group.
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].sub_group, original);
  EXPECT_EQ(second[0].kind, UpdateKind::kChanged);
  EXPECT_EQ(second[1].kind, UpdateKind::kCreated);
}

TEST(BinPackerTest, ShrinkDeletesExcessSubGroups) {
  BinPackerBounds bounds;
  bounds.max_offers = 2;
  BinPacker packer(bounds);
  packer.Process({Created(1, {Offer(1), Offer(2), Offer(3)})});
  EXPECT_EQ(packer.num_sub_groups(), 2u);

  GroupUpdate change;
  change.kind = UpdateKind::kChanged;
  change.group = 1;
  change.removed = {2, 3};
  auto updates = packer.Process({change});
  EXPECT_EQ(packer.num_sub_groups(), 1u);
  bool saw_delete = false;
  for (const auto& u : updates) {
    if (u.kind == UpdateKind::kDeleted) saw_delete = true;
  }
  EXPECT_TRUE(saw_delete);
}

TEST(BinPackerTest, PackingIsDeterministic) {
  BinPackerBounds bounds;
  bounds.max_offers = 3;
  std::vector<FlexOffer> offers;
  for (uint64_t i = 1; i <= 9; ++i) offers.push_back(Offer(i));
  BinPacker a(bounds);
  BinPacker b(bounds);
  auto ua = a.Process({Created(1, offers)});
  auto ub = b.Process({Created(1, offers)});
  ASSERT_EQ(ua.size(), ub.size());
  for (size_t i = 0; i < ua.size(); ++i) {
    ASSERT_EQ(ua[i].members.size(), ub[i].members.size());
    for (size_t j = 0; j < ua[i].members.size(); ++j) {
      EXPECT_EQ(ua[i].members[j].id, ub[i].members[j].id);
    }
  }
}

}  // namespace
}  // namespace mirabel::aggregation
