// Tests of the edms::WorkerPool strand scheduler: FIFO per strand, cross-
// strand concurrency, and the stealing contract — an idle worker rescues
// runnable strands stuck behind a busy home worker, and with stealing
// disabled strands stay pinned (the fork-join baseline semantics).
//
// The CI thread-sanitizer job runs this suite.
#include "edms/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

namespace mirabel::edms {
namespace {

using namespace std::chrono_literals;

WorkerPool::Options PoolOptions(size_t threads, bool stealing) {
  WorkerPool::Options options;
  options.num_threads = threads;
  options.enable_stealing = stealing;
  return options;
}

TEST(WorkerPoolTest, ResolvesThreadCount) {
  WorkerPool defaulted;
  EXPECT_GE(defaulted.num_threads(), 1u);
  WorkerPool two(PoolOptions(2, true));
  EXPECT_EQ(two.num_threads(), 2u);
}

TEST(WorkerPoolTest, StrandRunsTasksInFifoOrder) {
  WorkerPool pool(PoolOptions(4, true));
  auto strand = pool.CreateStrand();
  std::vector<int> order;  // touched only by strand tasks + the final join
  std::future<void> last;
  for (int i = 0; i < 100; ++i) {
    last = strand->Post([&order, i] { order.push_back(i); });
  }
  last.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(WorkerPoolTest, StrandsRunConcurrently) {
  // Two strands must be able to execute at the same time: each task waits
  // for the other side's arrival, which deadlocks unless both run.
  WorkerPool pool(PoolOptions(2, true));
  auto a = pool.CreateStrand();
  auto b = pool.CreateStrand();
  std::promise<void> a_arrived;
  std::promise<void> b_arrived;
  std::future<void> fa = a->Post([&] {
    a_arrived.set_value();
    b_arrived.get_future().wait();
  });
  std::future<void> fb = b->Post([&] {
    b_arrived.set_value();
    a_arrived.get_future().wait();
  });
  EXPECT_EQ(fa.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(fb.wait_for(10s), std::future_status::ready);
}

TEST(WorkerPoolTest, OneStrandNeverOverlapsItself) {
  WorkerPool pool(PoolOptions(4, true));
  auto strand = pool.CreateStrand();
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::atomic<int> runs{0};
  std::future<void> last;
  for (int i = 0; i < 500; ++i) {
    last = strand->Post([&] {
      int now_active = active.fetch_add(1) + 1;
      int seen = max_active.load();
      while (now_active > seen &&
             !max_active.compare_exchange_weak(seen, now_active)) {
      }
      ++runs;
      active.fetch_sub(1);
    });
  }
  last.get();
  EXPECT_EQ(runs.load(), 500);
  EXPECT_EQ(max_active.load(), 1);
}

TEST(WorkerPoolTest, StealingRescuesStrandBehindBusyHomeWorker) {
  // Homes are assigned round-robin, so with 2 workers the 1st and 3rd
  // strands share home worker 0. Blocking the first strand must not stall
  // the third: whichever worker is free steals it.
  WorkerPool pool(PoolOptions(2, true));
  auto blocked = pool.CreateStrand();   // home 0
  auto other = pool.CreateStrand();     // home 1
  auto stranded = pool.CreateStrand();  // home 0
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> blocker = blocked->Post([gate] { gate.wait(); });
  std::future<void> rescued = stranded->Post([] {});
  // The rescued task completes while the blocker still occupies a worker.
  EXPECT_EQ(rescued.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(blocker.wait_for(0s), std::future_status::timeout);
  release.set_value();
  blocker.get();
  (void)other;
}

TEST(WorkerPoolTest, DisabledStealingPinsStrandsToTheirHomeWorker) {
  // Same layout with stealing off: the third strand shares home worker 0
  // with the blocked strand and can make no progress until the blocker
  // finishes, while worker 1 stays responsive. This is deterministic, not
  // timing-dependent: no code path lets worker 1 run a worker-0 strand.
  WorkerPool pool(PoolOptions(2, false));
  auto blocked = pool.CreateStrand();   // home 0
  auto other = pool.CreateStrand();     // home 1
  auto stranded = pool.CreateStrand();  // home 0
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> blocker = blocked->Post([gate] { gate.wait(); });
  std::future<void> pinned = stranded->Post([] {});
  std::future<void> free_lane = other->Post([] {});
  EXPECT_EQ(free_lane.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(pinned.wait_for(100ms), std::future_status::timeout);
  release.set_value();
  blocker.get();
  EXPECT_EQ(pinned.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(WorkerPoolTest, CountsSteals) {
  // Saturate one home worker with many single-task strands: with only two
  // workers and every strand homed round-robin, the sibling must steal some
  // of worker 0's backlog while worker 0 chews through a blocker.
  WorkerPool pool(PoolOptions(2, true));
  std::vector<std::unique_ptr<WorkerPool::Strand>> strands;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  strands.push_back(pool.CreateStrand());  // home 0
  std::future<void> blocker = strands[0]->Post([gate] { gate.wait(); });
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    strands.push_back(pool.CreateStrand());
    futures.push_back(strands.back()->Post([] {}));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready);
  }
  release.set_value();
  blocker.get();
  // Half the strands were homed on the blocked worker; they finished, so
  // they were stolen.
  EXPECT_GE(pool.steals(), 1u);
}

TEST(WorkerPoolTest, FutureCarriesTaskException) {
  WorkerPool pool(PoolOptions(1, true));
  auto strand = pool.CreateStrand();
  std::future<void> f =
      strand->Post([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The strand stays usable after a throwing task.
  std::future<void> ok = strand->Post([] {});
  EXPECT_EQ(ok.wait_for(10s), std::future_status::ready);
}

TEST(WorkerPoolTest, ManyStrandsManyTasksAllRunSerialized) {
  WorkerPool pool(PoolOptions(4, true));
  constexpr size_t kStrands = 8;
  constexpr int kTasks = 200;
  std::vector<std::unique_ptr<WorkerPool::Strand>> strands;
  // Plain (non-atomic) per-strand counters: the strand serialization is the
  // only thing keeping these increments race-free, so TSan vets the
  // scheduler itself here.
  std::vector<int> counts(kStrands, 0);
  std::vector<std::future<void>> lasts(kStrands);
  for (size_t s = 0; s < kStrands; ++s) strands.push_back(pool.CreateStrand());
  for (int t = 0; t < kTasks; ++t) {
    for (size_t s = 0; s < kStrands; ++s) {
      lasts[s] = strands[s]->Post([&counts, s] { ++counts[s]; });
    }
  }
  for (auto& f : lasts) f.get();
  for (size_t s = 0; s < kStrands; ++s) EXPECT_EQ(counts[s], kTasks);
}

}  // namespace
}  // namespace mirabel::edms
