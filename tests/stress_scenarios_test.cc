// The seeded stress-scenario library behind bench/uncertainty_study.cc:
//
//  1. Every named scenario validates clean and yields a valid planning
//     problem.
//  2. Everything is bit-reproducible per seed — specs, planning problems,
//     ensembles and out-of-sample realizations — and the ensemble stream
//     is disjoint from the realization stream.
//  3. Each scenario has its advertised shape, checked through aggregate
//     invariants over many realizations: the error concentrates in the
//     event window, carries the spec's sign, and materializes at roughly
//     the spec's event probability; price-spike realizations multiply buy
//     price and penalty inside the window only.
#include "datagen/stress_scenarios.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "scheduling/scenario.h"

namespace mirabel::datagen {
namespace {

constexpr uint64_t kSeed = 7;

TEST(StressScenariosTest, LibraryHasFourValidNamedScenarios) {
  std::vector<StressScenarioSpec> specs = NamedStressScenarios(kSeed);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "ev_charge_surge");
  EXPECT_EQ(specs[1].name, "demand_response_event");
  EXPECT_EQ(specs[2].name, "prosumer_flash_crowd");
  EXPECT_EQ(specs[3].name, "price_spike");

  for (const StressScenarioSpec& spec : specs) {
    EXPECT_TRUE(ValidateStressScenario(spec).ok()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    scheduling::SchedulingProblem planning = MakePlanningProblem(spec);
    EXPECT_TRUE(planning.Validate().ok()) << spec.name;
    EXPECT_EQ(planning.horizon_length, spec.base.horizon_length);
    scheduling::SchedulingProblem realized = MakeRealizedProblem(spec, 0);
    EXPECT_TRUE(realized.Validate().ok()) << spec.name;
  }
}

TEST(StressScenariosTest, ValidateRejectsMalformedSpecs) {
  StressScenarioSpec base = NamedStressScenarios(kSeed).front();
  ASSERT_TRUE(ValidateStressScenario(base).ok());

  StressScenarioSpec s = base;
  s.name.clear();
  EXPECT_FALSE(ValidateStressScenario(s).ok());

  s = base;
  s.event_start_slice = s.base.horizon_length - 1;
  s.event_length = 2;  // window spills past the horizon
  EXPECT_FALSE(ValidateStressScenario(s).ok());

  s = base;
  s.event_probability = 1.5;
  EXPECT_FALSE(ValidateStressScenario(s).ok());

  s = base;
  s.depth_sigma_kwh = -1.0;
  EXPECT_FALSE(ValidateStressScenario(s).ok());

  s = base;
  s.price_spike_factor = 0.0;
  EXPECT_FALSE(ValidateStressScenario(s).ok());
}

TEST(StressScenariosTest, FindByNameAndRejectUnknown) {
  auto found = FindStressScenario("price_spike", kSeed);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->name, "price_spike");
  EXPECT_GT(found->price_spike_factor, 1.0);
  EXPECT_FALSE(FindStressScenario("volcano", kSeed).ok());
}

TEST(StressScenariosTest, EverythingIsBitReproduciblePerSeed) {
  std::vector<StressScenarioSpec> a = NamedStressScenarios(kSeed);
  std::vector<StressScenarioSpec> b = NamedStressScenarios(kSeed);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].base.seed, b[i].base.seed);
    EXPECT_EQ(a[i].event_depth_kwh, b[i].event_depth_kwh);

    // Planning problems, realizations and ensembles replay bitwise.
    scheduling::SchedulingProblem pa = MakePlanningProblem(a[i]);
    scheduling::SchedulingProblem pb = MakePlanningProblem(b[i]);
    ASSERT_EQ(pa.baseline_imbalance_kwh.size(),
              pb.baseline_imbalance_kwh.size());
    for (size_t s = 0; s < pa.baseline_imbalance_kwh.size(); ++s) {
      EXPECT_EQ(pa.baseline_imbalance_kwh[s], pb.baseline_imbalance_kwh[s]);
    }

    std::vector<double> ra = RealizedBaselineError(a[i], 3);
    std::vector<double> rb = RealizedBaselineError(b[i], 3);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t s = 0; s < ra.size(); ++s) EXPECT_EQ(ra[s], rb[s]);

    auto ea = MakeStressEnsemble(a[i], 6);
    auto eb = MakeStressEnsemble(b[i], 6);
    ASSERT_TRUE(ea.ok());
    ASSERT_TRUE(eb.ok());
    ASSERT_EQ(ea->num_scenarios(), 6);
    for (int k = 0; k < 6; ++k) {
      const auto& da = ea->perturbations()[static_cast<size_t>(k)].delta_kwh;
      const auto& db = eb->perturbations()[static_cast<size_t>(k)].delta_kwh;
      ASSERT_EQ(da.size(), db.size());
      for (size_t s = 0; s < da.size(); ++s) EXPECT_EQ(da[s], db[s]);
    }
  }
}

TEST(StressScenariosTest, EnsembleStreamIsDisjointFromRealizations) {
  StressScenarioSpec spec = NamedStressScenarios(kSeed).front();
  auto ensemble = MakeStressEnsemble(spec, 4);
  ASSERT_TRUE(ensemble.ok());
  // If the streams shared state, ensemble scenario k would equal
  // realization k. They must differ (noise hits every slice, so identical
  // curves would mean identical draws).
  for (int k = 0; k < 4; ++k) {
    const auto& delta = ensemble->perturbations()[static_cast<size_t>(k)];
    std::vector<double> realized = RealizedBaselineError(spec, k);
    ASSERT_EQ(delta.delta_kwh.size(), realized.size());
    bool differs = false;
    for (size_t s = 0; s < realized.size(); ++s) {
      differs = differs || delta.delta_kwh[s] != realized[s];
    }
    EXPECT_TRUE(differs) << spec.name << " scenario " << k;
  }
}

TEST(StressScenariosTest, ErrorCurvesHaveTheAdvertisedShape) {
  constexpr int kRealizations = 400;
  for (const StressScenarioSpec& spec : NamedStressScenarios(kSeed)) {
    const int h = spec.base.horizon_length;
    const int center = spec.event_start_slice + spec.event_length / 2;
    double in_abs = 0.0, out_abs = 0.0, center_signed = 0.0;
    int events = 0;
    for (int r = 0; r < kRealizations; ++r) {
      std::vector<double> error = RealizedBaselineError(spec, r);
      ASSERT_EQ(error.size(), static_cast<size_t>(h));
      double in = 0.0, out = 0.0;
      for (int s = 0; s < h; ++s) {
        bool inside = s >= spec.event_start_slice &&
                      s < spec.event_start_slice + spec.event_length;
        (inside ? in : out) += std::fabs(error[static_cast<size_t>(s)]);
      }
      in_abs += in / spec.event_length;
      out_abs += out / (h - spec.event_length);
      center_signed += error[static_cast<size_t>(center)];
      if (std::fabs(error[static_cast<size_t>(center)]) >
          std::fabs(spec.event_depth_kwh) / 3.0) {
        ++events;
      }
    }
    in_abs /= kRealizations;
    out_abs /= kRealizations;
    center_signed /= kRealizations;

    // The error concentrates in the event window...
    EXPECT_GT(in_abs, 3.0 * out_abs) << spec.name;
    // ...carries the event's sign at the window center...
    EXPECT_GT(center_signed * spec.event_depth_kwh, 0.0) << spec.name;
    // ...and materializes at roughly the advertised probability.
    double frequency = static_cast<double>(events) / kRealizations;
    EXPECT_NEAR(frequency, spec.event_probability, 0.1) << spec.name;
  }
}

TEST(StressScenariosTest, PriceSpikeMultipliesPricesInsideWindowOnly) {
  for (const StressScenarioSpec& spec : NamedStressScenarios(kSeed)) {
    scheduling::SchedulingProblem planning = MakePlanningProblem(spec);
    scheduling::SchedulingProblem realized = MakeRealizedProblem(spec, 5);
    for (int s = 0; s < spec.base.horizon_length; ++s) {
      size_t i = static_cast<size_t>(s);
      bool inside = s >= spec.event_start_slice &&
                    s < spec.event_start_slice + spec.event_length;
      double factor = inside ? spec.price_spike_factor : 1.0;
      EXPECT_EQ(realized.market.buy_price_eur[i],
                planning.market.buy_price_eur[i] * factor);
      EXPECT_EQ(realized.imbalance_penalty_eur[i],
                planning.imbalance_penalty_eur[i] * factor);
      EXPECT_EQ(realized.market.sell_price_eur[i],
                planning.market.sell_price_eur[i]);
    }
  }
}

TEST(StressScenariosTest, EnsembleRequiresAtLeastOneScenario) {
  StressScenarioSpec spec = NamedStressScenarios(kSeed).front();
  EXPECT_FALSE(MakeStressEnsemble(spec, 0).ok());
}

}  // namespace
}  // namespace mirabel::datagen
