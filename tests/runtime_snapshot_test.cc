// Tests of the mid-stream observability path: the SnapshotSlot seqlock and
// ShardedEdmsRuntime::Snapshot() under full streaming concurrency.
//
// The CI thread-sanitizer job runs this suite: the seqlock stores its
// payload as relaxed atomic words between fences, so it must be
// data-race-free by the memory model, not merely torn-free in practice —
// TSan vets exactly that. The stress test below runs Snapshot() readers
// against >= 4 producer threads and an advancing control loop, asserting
// per-shard coherence invariants on every read.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "edms/runtime_snapshot.h"
#include "edms/sharded_runtime.h"
#include "test_util.h"

namespace mirabel::edms {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::TimeSlice;

TEST(SnapshotSlotTest, DefaultConstructedReadsZeroes) {
  SnapshotSlot slot;
  ShardSnapshot snap = slot.Read();
  EXPECT_EQ(snap.stats.offers_received, 0);
  EXPECT_EQ(snap.intake_depth_batches, 0);
  EXPECT_EQ(snap.strand_tasks_run, 0);
  EXPECT_EQ(snap.last_drain_slice, -1);
}

TEST(SnapshotSlotTest, PublishRoundTripsEveryField) {
  SnapshotSlot slot;
  ShardSnapshot in;
  in.stats.offers_received = 7;
  in.stats.offers_accepted = 5;
  in.stats.payments_eur = 12.25;
  in.intake_depth_batches = 3;
  in.intake_drained_batches = 11;
  in.strand_tasks_run = 42;
  in.strand_task_s_total = 1.5;
  in.last_task_s = 0.25;
  in.last_queue_wait_s = 0.125;
  in.last_drain_slice = 96;
  slot.Publish(in);

  ShardSnapshot out = slot.Read();
  EXPECT_EQ(out.stats.offers_received, 7);
  EXPECT_EQ(out.stats.offers_accepted, 5);
  EXPECT_DOUBLE_EQ(out.stats.payments_eur, 12.25);
  EXPECT_EQ(out.intake_depth_batches, 3);
  EXPECT_EQ(out.intake_drained_batches, 11);
  EXPECT_EQ(out.strand_tasks_run, 42);
  EXPECT_DOUBLE_EQ(out.strand_task_s_total, 1.5);
  EXPECT_DOUBLE_EQ(out.last_task_s, 0.25);
  EXPECT_DOUBLE_EQ(out.last_queue_wait_s, 0.125);
  EXPECT_EQ(out.last_drain_slice, 96);
}

TEST(SnapshotSlotTest, ConcurrentReadersNeverSeeTornSnapshots) {
  // One writer publishes snapshots whose fields are all functions of one
  // counter; readers assert the relationships on every read. A torn read
  // (fields from two different publishes) breaks an equation.
  SnapshotSlot slot;
  std::atomic<bool> stop{false};
  constexpr int64_t kPublishes = 50000;

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ShardSnapshot snap = slot.Read();
        const int64_t i = snap.stats.offers_received;
        EXPECT_EQ(snap.stats.offers_accepted, 2 * i);
        EXPECT_EQ(snap.intake_depth_batches, 3 * i);
        // i == 0 also matches the slot's default-constructed snapshot,
        // which readers may observe before the first publish below.
        EXPECT_EQ(snap.strand_tasks_run, 4 * i);
        EXPECT_DOUBLE_EQ(snap.strand_task_s_total,
                         static_cast<double>(i) * 0.5);
      }
    });
  }
  for (int64_t i = 0; i <= kPublishes; ++i) {
    ShardSnapshot snap;
    snap.stats.offers_received = i;
    snap.stats.offers_accepted = 2 * i;
    snap.intake_depth_batches = 3 * i;
    snap.strand_tasks_run = 4 * i;
    snap.strand_task_s_total = static_cast<double>(i) * 0.5;
    slot.Publish(snap);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ShardSnapshot last = slot.Read();
  EXPECT_EQ(last.stats.offers_received, kPublishes);
}

ShardedEdmsRuntime::Config StreamingConfig(size_t num_shards) {
  ShardedEdmsRuntime::Config rc;
  rc.num_shards = num_shards;
  rc.streaming_intake = true;
  rc.engine.actor = 100;
  rc.engine.negotiate = true;
  rc.engine.aggregation.params = aggregation::AggregationParams::P3();
  rc.engine.gate_period = 8;
  rc.engine.horizon = 96;
  rc.engine.scheduler_budget_s = 0.0;
  rc.engine.scheduler_max_iterations = 40;
  rc.engine.seed = 77;
  rc.engine.baseline = std::make_shared<VectorBaselineProvider>(
      std::vector<double>(960, 5.0));
  return rc;
}

/// Per-shard coherence invariants that must hold on EVERY snapshot taken
/// mid-stream: each shard's slice is one engine state published atomically,
/// so its internal accounting equations hold even while other shards (and
/// the producers) are mid-flight.
void ExpectCoherent(const RuntimeSnapshot& snap) {
  for (const ShardSnapshot& shard : snap.shards) {
    EXPECT_GE(shard.stats.offers_received,
              shard.stats.offers_accepted + shard.stats.offers_rejected);
    EXPECT_GE(shard.intake_depth_batches, 0);
    EXPECT_GE(shard.intake_drained_batches, 0);
    EXPECT_GE(shard.strand_tasks_run, shard.intake_drained_batches > 0 ? 1 : 0);
    EXPECT_GE(shard.strand_task_s_total, 0.0);
  }
}

/// The TSan centerpiece: 4 producer threads stream disjoint offer batches,
/// the control thread advances gates, and 2 reader threads hammer
/// Snapshot() the whole time. TSan vets the seqlock protocol; the asserts
/// vet coherence and per-shard monotonicity.
TEST(RuntimeSnapshotTest, SnapshotIsCoherentUnderConcurrentStreaming) {
  ShardedEdmsRuntime runtime(StreamingConfig(4));
  constexpr int kProducers = 4;
  constexpr uint64_t kOffersPerProducer = 36;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<int64_t> prev_tasks(runtime.num_shards(), 0);
      std::vector<int64_t> prev_drained(runtime.num_shards(), 0);
      while (!stop.load(std::memory_order_acquire)) {
        RuntimeSnapshot snap = runtime.Snapshot();
        ExpectCoherent(snap);
        ASSERT_EQ(snap.shards.size(), runtime.num_shards());
        for (size_t i = 0; i < snap.shards.size(); ++i) {
          // Cumulative gauges never go backwards between successive reads.
          EXPECT_GE(snap.shards[i].strand_tasks_run, prev_tasks[i]);
          EXPECT_GE(snap.shards[i].intake_drained_batches, prev_drained[i]);
          prev_tasks[i] = snap.shards[i].strand_tasks_run;
          prev_drained[i] = snap.shards[i].intake_drained_batches;
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&runtime, p] {
      // Disjoint owners and ids per producer: all 4 submit concurrently.
      const uint64_t owner_base = 801 + static_cast<uint64_t>(p) * 4;
      std::vector<FlexOffer> offers;
      for (uint64_t k = 0; k < kOffersPerProducer; ++k) {
        const uint64_t owner = owner_base + k % 4;
        offers.push_back(testutil::OwnedOffer(
            owner * 1000 + k, owner, /*assign_before=*/40, /*earliest=*/48,
            /*latest=*/70));
      }
      for (size_t i = 0; i < offers.size(); i += 4) {
        auto batch = std::span<const FlexOffer>(
            offers.data() + i, std::min<size_t>(4, offers.size() - i));
        EXPECT_TRUE(runtime.SubmitOffers(batch, 0).ok());
        std::this_thread::yield();
      }
    });
  }

  // Control loop: gates advance while producers and readers run.
  for (TimeSlice now = 0; now <= 24; now += 8) {
    EXPECT_TRUE(runtime.Advance(now).ok());
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(runtime.FlushIntake().ok());
  EXPECT_TRUE(runtime.Advance(32).ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Quiescent now: the last published snapshots carry the final engine
  // state, so Snapshot() and the exact stats() agree.
  RuntimeSnapshot snap = runtime.Snapshot();
  EngineStats exact = runtime.stats();
  EXPECT_EQ(snap.stats.offers_received, exact.offers_received);
  EXPECT_EQ(snap.stats.offers_accepted, exact.offers_accepted);
  EXPECT_EQ(snap.stats.offers_rejected, exact.offers_rejected);
  EXPECT_EQ(snap.stats.intake_errors, exact.intake_errors);
  EXPECT_EQ(snap.stats.offers_received,
            static_cast<int64_t>(kProducers * kOffersPerProducer));
  EXPECT_EQ(snap.intake_depth_batches, 0);
  EXPECT_GT(snap.intake_drained_batches, 0);
  EXPECT_GT(snap.strand_tasks_run, 0);
}

TEST(RuntimeSnapshotTest, InlineModePublishesSnapshotsToo) {
  // The 1-shard no-pool deployment runs everything on the caller thread;
  // Snapshot() must still reflect the state after each call.
  ShardedEdmsRuntime::Config rc = StreamingConfig(1);
  rc.streaming_intake = false;
  rc.pool = nullptr;
  ShardedEdmsRuntime runtime(rc);

  std::vector<FlexOffer> offers;
  for (uint64_t k = 0; k < 6; ++k) {
    offers.push_back(testutil::OwnedOffer(900 + k, 901 + k,
                                          /*assign_before=*/24,
                                          /*earliest=*/30, /*latest=*/50));
  }
  ASSERT_TRUE(
      runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  RuntimeSnapshot snap = runtime.Snapshot();
  EXPECT_EQ(snap.stats.offers_received, 6);
  EXPECT_EQ(snap.strand_tasks_run, 1);
  ASSERT_TRUE(runtime.Advance(0).ok());
  snap = runtime.Snapshot();
  EXPECT_EQ(snap.strand_tasks_run, 2);
  EXPECT_EQ(snap.stats.offers_received, runtime.stats().offers_received);
}

}  // namespace
}  // namespace mirabel::edms
