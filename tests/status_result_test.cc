#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace mirabel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("offer 7").ToString(), "NotFound: offer 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    MIRABEL_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);

  auto passes = []() -> Status {
    MIRABEL_RETURN_IF_ERROR(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("bad");
    return 7;
  };
  auto outer = [&inner](bool fail) -> Result<int> {
    MIRABEL_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mirabel
