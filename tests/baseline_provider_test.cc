// Tests of the BaselineProvider implementations, in particular the
// ForecastBaselineProvider's read-mostly concurrency contract: once the
// cache covers a span, concurrent shard gates read it under a shared lock
// without re-running the forecasters (rebuilds() is the regression signal;
// the CI TSan job vets the locking itself).
#include "edms/baseline_provider.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "datagen/energy_series_generator.h"
#include "forecasting/forecaster.h"

namespace mirabel::edms {
namespace {

forecasting::Forecaster TrainedForecaster(uint64_t seed = 7) {
  forecasting::ForecasterConfig cfg;
  cfg.seasonal_periods = {48, 336};
  cfg.initial_estimation = {0.2, 0, 3};
  datagen::DemandSeriesConfig series_cfg;
  series_cfg.days = 21;
  series_cfg.seed = seed;
  forecasting::Forecaster forecaster(cfg);
  EXPECT_TRUE(
      forecaster
          .Train(forecasting::TimeSeries(
              datagen::GenerateDemandSeries(series_cfg), 48))
          .ok());
  return forecaster;
}

TEST(BaselineProviderTest, ZeroProviderReturnsZeros) {
  ZeroBaselineProvider provider;
  auto baseline = provider.Baseline(100, 4);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(*baseline, std::vector<double>(4, 0.0));
  EXPECT_FALSE(provider.Baseline(0, -1).ok());
}

TEST(BaselineProviderTest, VectorProviderIndexesFromOrigin) {
  VectorBaselineProvider provider({1.0, 2.0, 3.0}, /*origin=*/10);
  auto baseline = provider.Baseline(11, 4);
  ASSERT_TRUE(baseline.ok());
  // Slices 11..14 map to curve indices 1, 2 and out-of-range zeros.
  EXPECT_EQ(*baseline, (std::vector<double>{2.0, 3.0, 0.0, 0.0}));
}

TEST(BaselineProviderTest, ForecastProviderServesNetScaledForecast) {
  forecasting::Forecaster demand = TrainedForecaster();
  ForecastBaselineProvider provider(&demand, nullptr, /*origin=*/1000,
                                    /*scale=*/2.0);
  auto expect = demand.Forecast(8);
  ASSERT_TRUE(expect.ok());
  auto baseline = provider.Baseline(1000, 8);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), 8u);
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ((*baseline)[s], 2.0 * (*expect)[s]);
  }
  // Requests before the origin are refused: the past is measured.
  EXPECT_EQ(provider.Baseline(999, 4).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BaselineProviderTest, ConcurrentWarmReadsDoNotRebuild) {
  forecasting::Forecaster demand = TrainedForecaster();
  ForecastBaselineProvider provider(&demand, nullptr, /*origin=*/0);

  // Warm the cache past every span the readers will request.
  auto warm = provider.Baseline(0, 96);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(provider.rebuilds(), 1);

  // Hammer the warm span from many "shard gates" at once. Every read must
  // serve from the cache (no further rebuilds) and return exactly the warm
  // values — the regression the shared-lock fast path must keep fixed.
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 200;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&provider, &warm, &failures, t] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        int start = (t * 7 + i) % 64;
        auto got = provider.Baseline(start, 32);
        if (!got.ok()) {
          ++failures[static_cast<size_t>(t)];
          continue;
        }
        for (int s = 0; s < 32; ++s) {
          if ((*got)[static_cast<size_t>(s)] !=
              (*warm)[static_cast<size_t>(start + s)]) {
            ++failures[static_cast<size_t>(t)];
            break;
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[static_cast<size_t>(t)], 0);
  }
  EXPECT_EQ(provider.rebuilds(), 1);
}

TEST(BaselineProviderTest, ConcurrentMissesRebuildAtMostOncePerExtension) {
  forecasting::Forecaster demand = TrainedForecaster();
  ForecastBaselineProvider provider(&demand, nullptr, /*origin=*/0);
  ASSERT_TRUE(provider.Baseline(0, 16).ok());

  // All threads miss the same extension target at once; the double-checked
  // exclusive path must coalesce them into few rebuilds (a thread that
  // arrives after the winner extends sees the cache and does nothing).
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back(
        [&provider] { EXPECT_TRUE(provider.Baseline(100, 96).ok()); });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_GE(provider.rebuilds(), 2);
  EXPECT_LE(provider.rebuilds(), 9);
  // The span is warm now: further reads leave the counter alone.
  int64_t settled = provider.rebuilds();
  EXPECT_TRUE(provider.Baseline(50, 96).ok());
  EXPECT_EQ(provider.rebuilds(), settled);
}

}  // namespace
}  // namespace mirabel::edms
