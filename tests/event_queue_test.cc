// Tests of the engine's lock-free SPSC event channel: single-threaded
// semantics (the plain-EdmsEngine deployment), chunk-boundary handling, and
// a cross-thread producer/consumer stress run that TSan checks for ordering
// bugs in the CI thread-sanitizer job.
#include "edms/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace mirabel::edms {
namespace {

Event NumberedEvent(uint64_t n) {
  return OfferAccepted{/*offer=*/n, /*owner=*/n % 7,
                       /*at=*/static_cast<flexoffer::TimeSlice>(n),
                       /*agreed_price_eur=*/0.25};
}

uint64_t EventNumber(const Event& event) {
  return std::get<OfferAccepted>(event).offer;
}

TEST(EventQueueTest, DrainsInEmissionOrder) {
  EventQueue queue;
  for (uint64_t n = 0; n < 10; ++n) queue.Push(NumberedEvent(n));
  std::vector<Event> out = queue.DrainAll();
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t n = 0; n < 10; ++n) EXPECT_EQ(EventNumber(out[n]), n);
  EXPECT_TRUE(queue.DrainAll().empty());
}

TEST(EventQueueTest, SurvivesChunkBoundaries) {
  EventQueue queue;
  // Spans several chunks; drain midway to exercise chunk hand-off with the
  // producer parked on a later chunk.
  const uint64_t total = 3 * EventQueue::kChunkCapacity + 17;
  uint64_t pushed = 0;
  for (; pushed < EventQueue::kChunkCapacity + 3; ++pushed) {
    queue.Push(NumberedEvent(pushed));
  }
  std::vector<Event> out = queue.DrainAll();
  EXPECT_EQ(out.size(), EventQueue::kChunkCapacity + 3);
  for (; pushed < total; ++pushed) queue.Push(NumberedEvent(pushed));
  queue.Drain(&out);
  ASSERT_EQ(out.size(), total);
  for (uint64_t n = 0; n < total; ++n) EXPECT_EQ(EventNumber(out[n]), n);
}

TEST(EventQueueTest, InterleavedPushAndDrain) {
  EventQueue queue;
  std::vector<Event> out;
  uint64_t next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 37; ++i) queue.Push(NumberedEvent(next++));
    queue.Drain(&out);
  }
  ASSERT_EQ(out.size(), next);
  for (uint64_t n = 0; n < next; ++n) EXPECT_EQ(EventNumber(out[n]), n);
}

TEST(EventQueueTest, DropsUndrainedEventsSafely) {
  // Destruction with published-but-undrained events must not leak (chunks
  // own their events; ASan would flag a leak).
  EventQueue queue;
  for (uint64_t n = 0; n < 2 * EventQueue::kChunkCapacity + 9; ++n) {
    queue.Push(NumberedEvent(n));
  }
}

TEST(EventQueueTest, ConcurrentProducerConsumer) {
  EventQueue queue;
  const uint64_t total = 50000;
  std::thread producer([&queue] {
    for (uint64_t n = 0; n < total; ++n) queue.Push(NumberedEvent(n));
  });

  // The consumer spins until every event arrived; events must come out in
  // emission order with fully-visible payloads.
  std::vector<Event> out;
  out.reserve(total);
  while (out.size() < total) queue.Drain(&out);
  producer.join();

  ASSERT_EQ(out.size(), total);
  for (uint64_t n = 0; n < total; ++n) {
    ASSERT_EQ(EventNumber(out[n]), n);
    ASSERT_EQ(std::get<OfferAccepted>(out[n]).owner, n % 7);
  }
  EXPECT_TRUE(queue.DrainAll().empty());
}

}  // namespace
}  // namespace mirabel::edms
