// End-to-end tests of the EdmsEngine facade: the full submit -> aggregate ->
// schedule -> disaggregate -> execute round trip, observed through the typed
// event stream, plus the forwarding (hierarchical) mode and the error paths.
#include "edms/edms_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"

namespace mirabel::edms {
namespace {

using flexoffer::FlexOffer;
using flexoffer::ScheduledFlexOffer;

EdmsEngine::Config DeterministicConfig() {
  EdmsEngine::Config cfg;
  cfg.actor = 100;
  cfg.negotiate = true;
  cfg.aggregation.params = aggregation::AggregationParams::P3();
  cfg.gate_period = 8;
  cfg.horizon = 96;
  // Iteration-bounded scheduling: bit-identical runs for a fixed seed.
  cfg.scheduler_budget_s = 0.0;
  cfg.scheduler_max_iterations = 40;
  cfg.seed = 77;
  cfg.baseline = std::make_shared<VectorBaselineProvider>(
      std::vector<double>(960, 5.0));
  return cfg;
}

std::vector<FlexOffer> ThreeOffers() {
  return {
      testutil::OwnedOffer(1, 501, /*assign_before=*/24, /*earliest=*/30,
                           /*latest=*/50, /*dur=*/4),
      testutil::OwnedOffer(2, 502, /*assign_before=*/24, /*earliest=*/30,
                           /*latest=*/50, /*dur=*/4),
      testutil::OwnedOffer(3, 503, /*assign_before=*/24, /*earliest=*/32,
                           /*latest=*/48, /*dur=*/4),
  };
}

/// Flattens an event into a comparable line (kind + ids + payload digest).
std::string Digest(const Event& event) {
  std::ostringstream os;
  os << EventName(event) << ":";
  if (const auto* e = std::get_if<OfferAccepted>(&event)) {
    os << e->offer << "@" << e->at << " price=" << e->agreed_price_eur;
  } else if (const auto* e = std::get_if<OfferRejected>(&event)) {
    os << e->offer << "@" << e->at;
  } else if (const auto* e = std::get_if<MacroPublished>(&event)) {
    os << e->macro.id << "@" << e->at << " members=" << e->member_count
       << " fwd=" << e->forwarded;
  } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
    os << e->schedule.offer_id << "@" << e->at
       << " start=" << e->schedule.start
       << " kwh=" << e->schedule.TotalEnergy();
  } else if (const auto* e = std::get_if<OfferExecuted>(&event)) {
    os << e->offer << "@" << e->at;
  } else if (const auto* e = std::get_if<OfferExpired>(&event)) {
    os << e->offer << "@" << e->at;
  }
  return os.str();
}

std::vector<std::string> RunRoundTrip(const EdmsEngine::Config& cfg) {
  EdmsEngine engine(cfg);
  std::vector<FlexOffer> offers = ThreeOffers();
  auto submitted = engine.SubmitOffers(offers, 0);
  EXPECT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_TRUE(engine.Advance(0).ok());
  std::vector<std::string> digests;
  for (const Event& e : engine.PollEvents()) digests.push_back(Digest(e));
  return digests;
}

TEST(EdmsEngineTest, RoundTripAssignsValidSchedules) {
  EdmsEngine engine(DeterministicConfig());
  std::vector<FlexOffer> offers = ThreeOffers();

  auto submitted = engine.SubmitOffers(offers, 0);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_EQ(*submitted, 3u);
  ASSERT_TRUE(engine.Advance(0).ok());

  int accepted = 0;
  int macros = 0;
  std::vector<ScheduledFlexOffer> schedules;
  for (const Event& event : engine.PollEvents()) {
    if (std::get_if<OfferAccepted>(&event) != nullptr) ++accepted;
    if (std::get_if<MacroPublished>(&event) != nullptr) ++macros;
    if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
      schedules.push_back(e->schedule);
    }
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_GE(macros, 1);
  ASSERT_EQ(schedules.size(), 3u);
  for (const ScheduledFlexOffer& s : schedules) {
    const FlexOffer& fo = offers[static_cast<size_t>(s.offer_id - 1)];
    EXPECT_TRUE(s.ValidateAgainst(fo).ok());
    EXPECT_EQ(*engine.lifecycle().StateOf(s.offer_id), OfferState::kAssigned);
  }
  EXPECT_EQ(engine.stats().offers_accepted, 3);
  EXPECT_EQ(engine.stats().micro_schedules_sent, 3);
  EXPECT_GT(engine.stats().scheduling_runs, 0);

  // Execution closes the lifecycle and emits OfferExecuted.
  ASSERT_TRUE(engine.RecordExecution(1, 40, 6.0).ok());
  EXPECT_EQ(*engine.lifecycle().StateOf(1), OfferState::kExecuted);
  std::vector<Event> events = engine.PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(EventName(events[0]), "OfferExecuted");
  // A second execution report is an illegal lifecycle move.
  EXPECT_EQ(engine.RecordExecution(1, 41, 6.0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EdmsEngineTest, EventStreamIsDeterministicUnderFixedSeed) {
  std::vector<std::string> a = RunRoundTrip(DeterministicConfig());
  std::vector<std::string> b = RunRoundTrip(DeterministicConfig());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EdmsEngineTest, SeedChangesTheScheduleNotTheLifecycle) {
  EdmsEngine::Config cfg = DeterministicConfig();
  std::vector<std::string> a = RunRoundTrip(cfg);
  cfg.seed = 78;
  std::vector<std::string> b = RunRoundTrip(cfg);
  // Same number of events with the same kinds in the same order...
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].substr(0, a[i].find(':')), b[i].substr(0, b[i].find(':')));
  }
}

TEST(EdmsEngineTest, InvalidAndLowValueOffersAreRejected) {
  EdmsEngine::Config cfg = DeterministicConfig();
  cfg.negotiation.acceptance.min_value_eur = 1.0;
  EdmsEngine engine(cfg);

  // A rigid offer (no time or energy flexibility) fails negotiation.
  FlexOffer rigid = testutil::OwnedOffer(10, 501, 24, 30, 30, 4, 1.0, 1.0);
  // An invalid offer (empty profile) fails validation before negotiation.
  FlexOffer invalid;
  invalid.id = 11;
  invalid.owner = 502;

  std::vector<FlexOffer> offers = {rigid, invalid};
  auto submitted =
      engine.SubmitOffers(std::span<const FlexOffer>(offers), 0);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_EQ(*submitted, 0u);
  EXPECT_EQ(engine.stats().offers_rejected, 2);
  EXPECT_EQ(*engine.lifecycle().StateOf(10), OfferState::kRejected);
  EXPECT_EQ(*engine.lifecycle().StateOf(11), OfferState::kRejected);
  std::vector<Event> events = engine.PollEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(EventName(events[0]), "OfferRejected");
  EXPECT_EQ(EventName(events[1]), "OfferRejected");
}

TEST(EdmsEngineTest, DuplicateSubmissionIsAlreadyExists) {
  EdmsEngine engine(DeterministicConfig());
  FlexOffer fo = testutil::OwnedOffer(1, 501, 24, 30, 50);
  ASSERT_TRUE(engine.SubmitOffer(fo, 0).ok());
  EXPECT_EQ(engine.SubmitOffer(fo, 0).code(), StatusCode::kAlreadyExists);
}

TEST(EdmsEngineTest, StaleOffersExpireAtTheGate) {
  EdmsEngine engine(DeterministicConfig());
  // Deadline at slice 4, first gate fires at 12: too late.
  FlexOffer fo = testutil::OwnedOffer(5, 501, /*assign_before=*/4,
                                      /*earliest=*/6, /*latest=*/10);
  ASSERT_TRUE(engine.SubmitOffer(fo, 0).ok());
  (void)engine.PollEvents();
  ASSERT_TRUE(engine.Advance(12).ok());
  std::vector<Event> events = engine.PollEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(EventName(events[0]), "OfferExpired");
  EXPECT_EQ(*engine.lifecycle().StateOf(5), OfferState::kExpired);
  EXPECT_EQ(engine.stats().offers_expired_in_pipeline, 1);
  EXPECT_EQ(engine.stats().macros_scheduled, 0);
}

TEST(EdmsEngineTest, ForwardingModePublishesAndCompletesMacros) {
  EdmsEngine::Config cfg = DeterministicConfig();
  cfg.schedule_locally = false;
  EdmsEngine engine(cfg);
  std::vector<FlexOffer> offers = ThreeOffers();
  ASSERT_TRUE(engine.SubmitOffers(offers, 0).ok());
  ASSERT_TRUE(engine.Advance(0).ok());

  std::vector<FlexOffer> published;
  for (const Event& event : engine.PollEvents()) {
    if (const auto* e = std::get_if<MacroPublished>(&event)) {
      EXPECT_TRUE(e->forwarded);
      EXPECT_EQ(e->macro.owner, cfg.actor);
      published.push_back(e->macro);
    }
  }
  ASSERT_FALSE(published.empty());
  EXPECT_EQ(engine.stats().scheduling_runs, 0);

  // A schedule for an unknown macro is NotFound.
  ScheduledFlexOffer bogus;
  bogus.offer_id = 424242;
  EXPECT_EQ(engine.CompleteMacroSchedule(bogus, 1).code(),
            StatusCode::kNotFound);

  // Returning valid macro schedules disaggregates to all members.
  int assigned = 0;
  for (const FlexOffer& macro : published) {
    ScheduledFlexOffer s;
    s.offer_id = macro.id;
    s.start = macro.earliest_start;
    for (const auto& band : macro.profile) {
      s.energies_kwh.push_back(band.max_kwh);
    }
    ASSERT_TRUE(engine.CompleteMacroSchedule(s, 1).ok());
    for (const Event& event : engine.PollEvents()) {
      if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
        EXPECT_EQ(*engine.lifecycle().StateOf(e->schedule.offer_id),
                  OfferState::kAssigned);
        ++assigned;
      }
    }
  }
  EXPECT_EQ(assigned, 3);
}

TEST(EdmsEngineTest, GateHonoursThePeriod) {
  EdmsEngine engine(DeterministicConfig());  // gate_period = 8
  std::vector<FlexOffer> offers = ThreeOffers();
  ASSERT_TRUE(engine.SubmitOffers(offers, 0).ok());
  (void)engine.PollEvents();
  ASSERT_TRUE(engine.Advance(0).ok());
  int64_t runs_after_first = engine.stats().scheduling_runs;
  // Within the same period nothing fires; at +8 it may again.
  ASSERT_TRUE(engine.Advance(4).ok());
  EXPECT_EQ(engine.stats().scheduling_runs, runs_after_first);
}

}  // namespace
}  // namespace mirabel::edms
