// RobustScheduler contracts:
//
//  1. On a hand-built two-outcome problem whose point optimum carries a
//     fat tail, the robust scheduler picks the risk-dominant start while
//     the point (greedy) scheduler does not — with the exact ensemble
//     statistics verified by hand.
//  2. Under a degenerate ensemble (K = 1, zero deltas, or no ensemble at
//     all) the robust run is bit-identical to the wrapped inner scheduler:
//     wholesale delegation, nothing recomputed.
//  3. Runs are deterministic per (problem, ensemble, seed) — bitwise equal
//     on rerun — and the "Robust" registry entry produces a working
//     scheduler. Runs under TSan in CI (with pooled executors upstream).
#include "scheduling/robust_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "edms/scheduler_registry.h"
#include "scheduling/scenario.h"

namespace mirabel::scheduling {
namespace {

/// Two start slots, one fixed-energy offer, no market: start 0 is cheaper
/// under the point forecast but one ensemble scenario adds +30 kWh of
/// deficit onto slice 0, making start 0 fat-tailed.
///
/// Costs by hand (penalty 1 EUR/kWh, |net| per slice):
///   point  (zero-delta scenarios): start0 = 9.5,  start1 = 10.5
///   spike scenario (delta0 = +30): start0 = 39.5, start1 = 20.5
///   ensemble K=4 (3 zero + spike): mean(start0) = 17.0, mean(start1) = 13.0
///   CVaR_0.25 (worst 1 of 4):      start0 = 39.5, start1 = 20.5
SchedulingProblem RiskDominantProblem() {
  SchedulingProblem p;
  p.horizon_start = 0;
  p.horizon_length = 8;
  p.baseline_imbalance_kwh = {-10.0, -9.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  p.imbalance_penalty_eur.assign(8, 1.0);
  p.market.buy_price_eur.assign(8, 0.0);
  p.market.sell_price_eur.assign(8, 0.0);
  p.market.max_buy_kwh = 0.0;
  p.market.max_sell_kwh = 0.0;

  flexoffer::FlexOffer fo;
  fo.id = 1;
  fo.owner = 0;
  fo.earliest_start = 0;
  fo.latest_start = 1;
  fo.creation_time = 0;
  fo.assignment_before = 0;
  flexoffer::EnergyRange slice;
  slice.min_kwh = 10.0;
  slice.max_kwh = 10.0;
  fo.profile.push_back(slice);
  p.offers.push_back(fo);
  return p;
}

ScenarioEnsemble SpikeEnsemble() {
  std::vector<BaselinePerturbation> perturbations(4);
  for (auto& scenario : perturbations) scenario.delta_kwh.assign(8, 0.0);
  perturbations.back().delta_kwh[0] = 30.0;
  auto ensemble = ScenarioEnsemble::FromPerturbations(std::move(perturbations));
  EXPECT_TRUE(ensemble.ok());
  return std::move(ensemble.value());
}

SchedulerOptions CappedOptions(uint64_t seed, int iterations = 60) {
  SchedulerOptions options;
  options.time_budget_s = 0.0;  // iteration-capped: bit-deterministic
  options.max_iterations = iterations;
  options.seed = seed;
  return options;
}

TEST(RobustSchedulerTest, PicksRiskDominantStartWherePointDoesNot) {
  SchedulingProblem p = RiskDominantProblem();
  ASSERT_TRUE(p.Validate().ok());
  CompiledProblem cp(p);
  SchedulerOptions options = CappedOptions(1);

  // The point plan takes the cheaper-on-the-forecast start 0.
  GreedyScheduler greedy;
  auto point = greedy.RunCompiled(cp, options);
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->schedule.assignments.size(), 1u);
  EXPECT_EQ(point->schedule.assignments[0].start, 0);
  EXPECT_EQ(point->cost.total(), 9.5);

  RobustScheduler::Config config;
  config.ensemble = SpikeEnsemble();
  config.cvar_alpha = 0.25;
  config.risk_weight = 0.5;
  RobustScheduler robust(std::move(config));
  auto result = robust.RunCompiled(cp, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->schedule.assignments.size(), 1u);
  EXPECT_EQ(result->schedule.assignments[0].start, 1);
  // The winner's cost is recomputed exactly on the unperturbed problem.
  EXPECT_EQ(result->cost.total(), 10.5);
  EXPECT_FALSE(result->optimal_proven);

  ASSERT_TRUE(result->robust.has_value());
  EXPECT_EQ(result->robust->scenarios, 4);
  EXPECT_GE(result->robust->candidates, 2);
  EXPECT_EQ(result->robust->expected_cost_eur, 13.0);
  EXPECT_EQ(result->robust->cvar_eur, 20.5);
  // mean + w * (CVaR - mean) = 13 + 0.5 * 7.5
  EXPECT_EQ(result->robust->risk_score_eur, 16.75);
}

TEST(RobustSchedulerTest, DegenerateEnsembleIsBitIdenticalToInner) {
  ScenarioConfig cfg;
  cfg.num_offers = 16;
  cfg.horizon_length = 48;
  cfg.seed = 23;
  cfg.max_time_flexibility = 12;
  SchedulingProblem p = MakeScenario(cfg);
  CompiledProblem cp(p);
  SchedulerOptions options = CappedOptions(7, 120);

  for (bool explicit_degenerate : {false, true}) {
    RobustScheduler::Config config;
    config.inner_factory = [] { return std::make_unique<GreedyScheduler>(); };
    if (explicit_degenerate) {
      config.ensemble = ScenarioEnsemble::Degenerate(cfg.horizon_length);
    }
    RobustScheduler robust(std::move(config));
    auto wrapped = robust.RunCompiled(cp, options);
    ASSERT_TRUE(wrapped.ok());

    GreedyScheduler inner;
    auto direct = inner.RunCompiled(cp, options);
    ASSERT_TRUE(direct.ok());

    // Wholesale delegation: every field of the inner result, bit for bit.
    ASSERT_EQ(wrapped->schedule.assignments.size(),
              direct->schedule.assignments.size());
    for (size_t i = 0; i < direct->schedule.assignments.size(); ++i) {
      EXPECT_EQ(wrapped->schedule.assignments[i].start,
                direct->schedule.assignments[i].start);
      EXPECT_EQ(wrapped->schedule.assignments[i].fill,
                direct->schedule.assignments[i].fill);
    }
    EXPECT_EQ(wrapped->cost.imbalance_eur, direct->cost.imbalance_eur);
    EXPECT_EQ(wrapped->cost.flex_activation_eur,
              direct->cost.flex_activation_eur);
    EXPECT_EQ(wrapped->cost.market_eur, direct->cost.market_eur);
    EXPECT_EQ(wrapped->iterations, direct->iterations);
    EXPECT_EQ(wrapped->optimal_proven, direct->optimal_proven);
    EXPECT_EQ(wrapped->nodes_visited, direct->nodes_visited);
    EXPECT_EQ(wrapped->trace.size(), direct->trace.size());
    // Delegation, not a re-ranking pass: no robust stats.
    EXPECT_FALSE(wrapped->robust.has_value());
  }
}

TEST(RobustSchedulerTest, RerunsAreBitIdentical) {
  ScenarioConfig cfg;
  cfg.num_offers = 20;
  cfg.horizon_length = 64;
  cfg.seed = 29;
  SchedulingProblem p = MakeScenario(cfg);
  CompiledProblem cp(p);

  Rng rng(3);
  std::vector<double> pool(40);
  for (double& r : pool) r = rng.Gaussian(0.0, 5.0);

  auto run_once = [&] {
    auto ensemble = ScenarioEnsemble::FromResidualPool(
        pool, cfg.horizon_length, 8, 91);
    EXPECT_TRUE(ensemble.ok());
    RobustScheduler::Config config;
    config.ensemble = std::move(ensemble.value());
    config.cvar_alpha = 0.2;
    config.risk_weight = 0.8;
    config.scenario_candidates = 3;
    RobustScheduler robust(std::move(config));
    auto result = robust.RunCompiled(cp, CappedOptions(13, 80));
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  };

  SchedulingResult a = run_once();
  SchedulingResult b = run_once();
  ASSERT_EQ(a.schedule.assignments.size(), b.schedule.assignments.size());
  for (size_t i = 0; i < a.schedule.assignments.size(); ++i) {
    EXPECT_EQ(a.schedule.assignments[i].start, b.schedule.assignments[i].start);
    EXPECT_EQ(a.schedule.assignments[i].fill, b.schedule.assignments[i].fill);
  }
  EXPECT_EQ(a.cost.total(), b.cost.total());
  ASSERT_TRUE(a.robust.has_value());
  ASSERT_TRUE(b.robust.has_value());
  EXPECT_EQ(a.robust->expected_cost_eur, b.robust->expected_cost_eur);
  EXPECT_EQ(a.robust->cvar_eur, b.robust->cvar_eur);
  EXPECT_EQ(a.robust->risk_score_eur, b.robust->risk_score_eur);
  EXPECT_EQ(a.robust->candidates, b.robust->candidates);
}

TEST(RobustSchedulerTest, UncompiledRunMatchesCompiledRun) {
  SchedulingProblem p = RiskDominantProblem();
  RobustScheduler::Config config;
  config.ensemble = SpikeEnsemble();
  RobustScheduler robust(std::move(config));
  auto via_problem = robust.Run(p, CappedOptions(1));
  ASSERT_TRUE(via_problem.ok());
  EXPECT_EQ(via_problem->schedule.assignments[0].start, 1);
  ASSERT_TRUE(via_problem->robust.has_value());
  EXPECT_EQ(via_problem->robust->expected_cost_eur, 13.0);
}

TEST(RobustSchedulerTest, RegistryCreatesWorkingRobustScheduler) {
  auto created = edms::SchedulerRegistry::Default().Create("Robust");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->Name(), "Robust");

  // Default-constructed = degenerate ensemble: behaves like its inner
  // greedy, returns a valid schedule.
  ScenarioConfig cfg;
  cfg.num_offers = 8;
  cfg.horizon_length = 32;
  cfg.seed = 41;
  SchedulingProblem p = MakeScenario(cfg);
  auto result = (*created)->Run(p, CappedOptions(5, 40));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schedule.assignments.size(), p.offers.size());
  EXPECT_FALSE(result->robust.has_value());
}

}  // namespace
}  // namespace mirabel::scheduling
