// Shared test fixtures: the sample flex-offer builders that used to be
// copy-pasted across suites. Header-only; include as "test_util.h".
#ifndef MIRABEL_TESTS_TEST_UTIL_H_
#define MIRABEL_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "flexoffer/flex_offer.h"

namespace mirabel::testutil {

// Canonical fully-populated two-slice offer; suites that exercise round
// trips (serialization, storage) start from this one.
inline flexoffer::FlexOffer SampleOffer(flexoffer::FlexOfferId id = 42) {
  return flexoffer::FlexOfferBuilder(id)
      .OwnedBy(7)
      .CreatedAt(0)
      .AssignBefore(80)
      .StartWindow(88, 100)
      .AddSlice(1.0, 2.0)
      .AddSlice(0.5, 0.5)
      .UnitPrice(0.03)
      .Build();
}

// Uniform-profile offer: `dur` slices of [emin, emax] kWh, start window
// [earliest, earliest + tf], assignment deadline right at the window start
// (the aggregation suites' convention).
inline flexoffer::FlexOffer UniformOffer(flexoffer::FlexOfferId id,
                                         int64_t earliest, int64_t tf,
                                         int dur = 2, double emin = 1.0,
                                         double emax = 2.0) {
  flexoffer::FlexOffer fo = flexoffer::FlexOfferBuilder(id)
                                .StartWindow(earliest, earliest + tf)
                                .AddSlices(dur, emin, emax)
                                .Build();
  fo.assignment_before = earliest;
  return fo;
}

// Fully-specified offer with an owner and an explicit assignment deadline,
// created at t=0 — the node/storage suites' convention.
inline flexoffer::FlexOffer OwnedOffer(flexoffer::FlexOfferId id,
                                       uint64_t owner, int64_t assign_before,
                                       int64_t earliest, int64_t latest,
                                       int dur = 2, double emin = 1.0,
                                       double emax = 2.0) {
  return flexoffer::FlexOfferBuilder(id)
      .OwnedBy(owner)
      .CreatedAt(0)
      .AssignBefore(assign_before)
      .StartWindow(earliest, latest)
      .AddSlices(dur, emin, emax)
      .Build();
}

// Offer parameterized by its three flexibility dimensions (assignment lead,
// time flexibility, per-slice energy flexibility) — what the negotiation
// metrics extract.
inline flexoffer::FlexOffer FlexibilityOffer(int64_t assignment_lead,
                                             int64_t tf,
                                             double flex_per_slice,
                                             int dur = 4) {
  return flexoffer::FlexOfferBuilder(1)
      .CreatedAt(0)
      .AssignBefore(assignment_lead)
      .StartWindow(assignment_lead + 4, assignment_lead + 4 + tf)
      .AddSlices(dur, 1.0, 1.0 + flex_per_slice)
      .Build();
}

}  // namespace mirabel::testutil

#endif  // MIRABEL_TESTS_TEST_UTIL_H_
