#include "forecasting/pubsub.h"

#include <gtest/gtest.h>

#include "datagen/energy_series_generator.h"

namespace mirabel::forecasting {
namespace {

struct PubSubFixture : public ::testing::Test {
  void SetUp() override {
    ForecasterConfig cfg;
    cfg.seasonal_periods = {48};
    cfg.initial_estimation = {0.1, 200, 3};
    cfg.evaluation = EvaluationStrategy::kTimeBased;
    cfg.reestimation_interval = 1000000;  // never during these tests
    forecaster = std::make_unique<Forecaster>(cfg);
    datagen::DemandSeriesConfig dcfg;
    dcfg.days = 7;
    values = datagen::GenerateDemandSeries(dcfg);
    ASSERT_TRUE(
        forecaster
            ->Train(TimeSeries(
                std::vector<double>(values.begin(), values.end() - 96), 48))
            .ok());
    broker = std::make_unique<ForecastBroker>(forecaster.get());
  }

  std::unique_ptr<Forecaster> forecaster;
  std::unique_ptr<ForecastBroker> broker;
  std::vector<double> values;
};

TEST_F(PubSubFixture, FirstMeasurementAlwaysNotifies) {
  int calls = 0;
  broker->Subscribe({24, 0.05},
                    [&calls](const std::vector<double>&) { ++calls; });
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 96]).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(broker->notifications_sent(), 1);
}

TEST_F(PubSubFixture, SmallChangesSuppressed) {
  int calls = 0;
  // Huge threshold: nothing after the first notification may fire.
  broker->Subscribe({24, 10.0},
                    [&calls](const std::vector<double>&) { ++calls; });
  for (size_t i = values.size() - 96; i < values.size(); ++i) {
    ASSERT_TRUE(broker->OnMeasurement(values[i]).ok());
  }
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(broker->evaluations(), 96);
  EXPECT_EQ(broker->notifications_sent(), 1);
}

TEST_F(PubSubFixture, LevelShiftTriggersNotification) {
  int calls = 0;
  broker->Subscribe({24, 0.05},
                    [&calls](const std::vector<double>&) { ++calls; });
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 96]).ok());
  ASSERT_EQ(calls, 1);
  // A 3x level jump must push the forecast past the 5% threshold.
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 95] * 3.0).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(PubSubFixture, TighterThresholdNotifiesMore) {
  int loose_calls = 0;
  int tight_calls = 0;
  broker->Subscribe({24, 0.2},
                    [&loose_calls](const std::vector<double>&) {
                      ++loose_calls;
                    });
  broker->Subscribe({24, 0.001},
                    [&tight_calls](const std::vector<double>&) {
                      ++tight_calls;
                    });
  for (size_t i = values.size() - 96; i < values.size(); ++i) {
    ASSERT_TRUE(broker->OnMeasurement(values[i]).ok());
  }
  EXPECT_GE(tight_calls, loose_calls);
  EXPECT_GT(tight_calls, 1);
}

TEST_F(PubSubFixture, UnsubscribeStopsNotifications) {
  int calls = 0;
  SubscriberId id = broker->Subscribe(
      {24, 0.0}, [&calls](const std::vector<double>&) { ++calls; });
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 96]).ok());
  ASSERT_TRUE(broker->Unsubscribe(id).ok());
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 95]).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(broker->num_subscribers(), 0u);
}

TEST_F(PubSubFixture, UnsubscribeUnknownNotFound) {
  EXPECT_EQ(broker->Unsubscribe(404).code(), StatusCode::kNotFound);
}

TEST_F(PubSubFixture, ForecastLengthMatchesSubscription) {
  std::vector<double> seen;
  broker->Subscribe({17, 0.05}, [&seen](const std::vector<double>& f) {
    seen = f;
  });
  ASSERT_TRUE(broker->OnMeasurement(values[values.size() - 96]).ok());
  EXPECT_EQ(seen.size(), 17u);
}

}  // namespace
}  // namespace mirabel::forecasting
