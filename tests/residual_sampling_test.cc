// Properties of the forecast-error residual hooks feeding the uncertainty
// layer (SampleCenteredResiduals + HwtModel/EgrvModel::SampleResiduals):
//
//  1. Sampling is seed-deterministic (same Rng seed, same draws, bitwise)
//     and every draw is exactly pool[i] - mean(pool) for some i.
//  2. Draws are mean-centered: over 10k draws the sample mean sits within
//     a few standard errors of zero.
//  3. Sampling never mutates the fitted model — it is const-correct and
//     the model's residual pool and forecasts are bit-identical before and
//     after — and Fit vs FitParallel record bit-identical pools.
#include "forecasting/residual_sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "datagen/energy_series_generator.h"
#include "datagen/weather_generator.h"
#include "forecasting/egrv_model.h"
#include "forecasting/hwt_model.h"

namespace mirabel::forecasting {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Daily-cycle series with seeded Gaussian noise, so fitted residuals have
/// genuine spread.
std::vector<double> NoisySeasonalSignal(int days, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(days) * 48);
  for (int t = 0; t < days * 48; ++t) {
    double daily = 10.0 * std::sin(2.0 * kPi * (t % 48) / 48.0);
    out.push_back(100.0 + daily + rng.Gaussian(0.0, 1.5));
  }
  return out;
}

double MeanOf(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double StdDevOf(const std::vector<double>& v) {
  double mean = MeanOf(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

TEST(ResidualSamplingTest, DeterministicPerSeedAndExactlyCentered) {
  std::vector<double> pool = {3.0, -1.5, 0.25, 7.0, -4.0};
  double mean = MeanOf(pool);

  std::vector<double> a(64), b(64), c(64);
  Rng rng_a(42), rng_b(42), rng_c(43);
  ASSERT_TRUE(SampleCenteredResiduals(pool, &rng_a, a).ok());
  ASSERT_TRUE(SampleCenteredResiduals(pool, &rng_b, b).ok());
  ASSERT_TRUE(SampleCenteredResiduals(pool, &rng_c, c).ok());

  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    differs = differs || a[i] != c[i];
    // Every draw is exactly one of the centered pool values.
    bool member = false;
    for (double r : pool) member = member || a[i] == r - mean;
    EXPECT_TRUE(member);
  }
  EXPECT_TRUE(differs);
}

TEST(ResidualSamplingTest, RejectsEmptyPoolAndNullRng) {
  Rng rng(1);
  std::vector<double> out(4);
  EXPECT_FALSE(SampleCenteredResiduals({}, &rng, out).ok());
  std::vector<double> pool = {1.0};
  EXPECT_FALSE(SampleCenteredResiduals(pool, nullptr, out).ok());
}

TEST(ResidualSamplingTest, TenThousandDrawsAreMeanCentered) {
  std::vector<double> pool;
  Rng pool_rng(9);
  for (int i = 0; i < 40; ++i) pool.push_back(pool_rng.Gaussian(5.0, 2.0));

  std::vector<double> draws(10000);
  Rng rng(1234);
  ASSERT_TRUE(SampleCenteredResiduals(pool, &rng, draws).ok());

  // Centered draws have expectation 0; allow six standard errors.
  double tolerance = 6.0 * StdDevOf(pool) / std::sqrt(10000.0);
  EXPECT_LT(std::fabs(MeanOf(draws)), tolerance);
}

TEST(ResidualSamplingTest, HwtExposesResidualsAndSamplesWithoutMutation) {
  HwtModel model({48});
  std::vector<double> signal = NoisySeasonalSignal(10, 77);
  ASSERT_TRUE(
      model.FitWithParams(TimeSeries(signal, 48), {0.1, 0.3, 0.2}).ok());

  // One post-warmup residual per observation past the init window.
  ASSERT_EQ(model.residuals().size(), signal.size() - 48);
  EXPECT_GT(StdDevOf(model.residuals()), 0.0);

  // Snapshot the fitted state, sample through a const reference (compile-
  // time const-correctness), and verify nothing moved — bitwise.
  std::vector<double> residuals_before = model.residuals();
  auto forecast_before = model.Forecast(96);
  ASSERT_TRUE(forecast_before.ok());

  const HwtModel& fitted = model;
  std::vector<double> draws(10000);
  Rng rng(5);
  ASSERT_TRUE(fitted.SampleResiduals(&rng, draws).ok());
  double tolerance = 6.0 * StdDevOf(residuals_before) / std::sqrt(10000.0);
  EXPECT_LT(std::fabs(MeanOf(draws)), tolerance);

  // Determinism: a fresh generator with the same seed replays the draws.
  std::vector<double> replay(10000);
  Rng rng2(5);
  ASSERT_TRUE(fitted.SampleResiduals(&rng2, replay).ok());
  for (size_t i = 0; i < draws.size(); ++i) EXPECT_EQ(draws[i], replay[i]);

  ASSERT_EQ(model.residuals().size(), residuals_before.size());
  for (size_t i = 0; i < residuals_before.size(); ++i) {
    EXPECT_EQ(model.residuals()[i], residuals_before[i]);
  }
  auto forecast_after = model.Forecast(96);
  ASSERT_TRUE(forecast_after.ok());
  for (size_t i = 0; i < forecast_before->size(); ++i) {
    EXPECT_EQ((*forecast_before)[i], (*forecast_after)[i]);
  }
}

TEST(ResidualSamplingTest, HwtSampleBeforeFitFails) {
  HwtModel model({48});
  Rng rng(2);
  std::vector<double> out(8);
  EXPECT_FALSE(model.SampleResiduals(&rng, out).ok());
}

TEST(ResidualSamplingTest, EgrvFitAndFitParallelRecordIdenticalPools) {
  datagen::DemandSeriesConfig dcfg;
  dcfg.days = 21;
  dcfg.seed = 7;
  datagen::WeatherConfig wcfg;
  wcfg.days = 21;
  wcfg.seed = 8;
  std::vector<double> values = datagen::GenerateDemandSeries(dcfg);
  ExogenousData exog;
  exog.temperature_c = datagen::GenerateTemperatureSeries(wcfg);
  exog.holiday.resize(values.size());
  for (size_t t = 0; t < values.size(); ++t) {
    exog.holiday[t] = datagen::IsHolidayDayOfYear(static_cast<int>(t / 48));
  }
  TimeSeries series(values, 48);

  EgrvModel sequential(48);
  EgrvModel parallel(48);
  ASSERT_TRUE(sequential.Fit(series, exog).ok());
  ASSERT_TRUE(parallel.FitParallel(series, exog, 4).ok());

  // One in-sample residual per observation past the one-week lag, and the
  // pool must not depend on how the fit was parallelised.
  ASSERT_EQ(sequential.residuals().size(), values.size() - 7 * 48);
  ASSERT_EQ(parallel.residuals().size(), sequential.residuals().size());
  for (size_t i = 0; i < sequential.residuals().size(); ++i) {
    EXPECT_EQ(sequential.residuals()[i], parallel.residuals()[i]);
  }

  // Seeded sampling through the const hook, no mutation of the pool.
  const EgrvModel& fitted = sequential;
  std::vector<double> a(512), b(512);
  Rng rng_a(31), rng_b(31);
  ASSERT_TRUE(fitted.SampleResiduals(&rng_a, a).ok());
  ASSERT_TRUE(fitted.SampleResiduals(&rng_b, b).ok());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  ASSERT_EQ(fitted.residuals().size(), parallel.residuals().size());

  EgrvModel unfitted(48);
  Rng rng(3);
  std::vector<double> out(8);
  EXPECT_FALSE(unfitted.SampleResiduals(&rng, out).ok());
}

}  // namespace
}  // namespace mirabel::forecasting
