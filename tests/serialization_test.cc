#include "flexoffer/serialization.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include "datagen/flex_offer_generator.h"

namespace mirabel::flexoffer {
namespace {

using testutil::SampleOffer;

TEST(SerializationTest, FlexOfferRoundTrip) {
  FlexOffer original = SampleOffer();
  std::string json = ToJson(original);
  auto parsed = FlexOfferFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, original.id);
  EXPECT_EQ(parsed->owner, original.owner);
  EXPECT_EQ(parsed->creation_time, original.creation_time);
  EXPECT_EQ(parsed->assignment_before, original.assignment_before);
  EXPECT_EQ(parsed->earliest_start, original.earliest_start);
  EXPECT_EQ(parsed->latest_start, original.latest_start);
  EXPECT_DOUBLE_EQ(parsed->unit_price_eur, original.unit_price_eur);
  ASSERT_EQ(parsed->profile.size(), original.profile.size());
  for (size_t i = 0; i < original.profile.size(); ++i) {
    EXPECT_EQ(parsed->profile[i], original.profile[i]);
  }
}

TEST(SerializationTest, ScheduleRoundTrip) {
  ScheduledFlexOffer s{42, 90, {1.5, 0.5}};
  auto parsed = ScheduledFlexOfferFromJson(ToJson(s));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->offer_id, 42u);
  EXPECT_EQ(parsed->start, 90);
  ASSERT_EQ(parsed->energies_kwh.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->energies_kwh[0], 1.5);
  EXPECT_DOUBLE_EQ(parsed->energies_kwh[1], 0.5);
}

TEST(SerializationTest, DoublesRoundTripExactly) {
  FlexOffer fo = SampleOffer();
  fo.unit_price_eur = 0.1 + 0.2;  // a value with no short decimal form
  fo.profile[0].min_kwh = 1.0 / 3.0;
  auto parsed = FlexOfferFromJson(ToJson(fo));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->unit_price_eur, fo.unit_price_eur);
  EXPECT_EQ(parsed->profile[0].min_kwh, fo.profile[0].min_kwh);
}

TEST(SerializationTest, ToleratesWhitespace) {
  std::string json =
      "{ \"id\" : 1 , \"owner\": 2, \"created\": 0,\n"
      "  \"assign_before\": 5, \"earliest\": 5, \"latest\": 9,\n"
      "  \"unit_price\": 0.5, \"profile\": [ [1.0 , 2.0] ] }";
  auto parsed = FlexOfferFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 1u);
  EXPECT_EQ(parsed->TimeFlexibility(), 4);
}

TEST(SerializationTest, RejectsUnknownKey) {
  std::string json = ToJson(SampleOffer());
  json.insert(1, "\"hacker\":1,");
  EXPECT_EQ(FlexOfferFromJson(json).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsMissingRequiredKeys) {
  EXPECT_FALSE(FlexOfferFromJson("{\"id\":1}").ok());
  EXPECT_FALSE(ScheduledFlexOfferFromJson("{\"start\":1}").ok());
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(FlexOfferFromJson("").ok());
  EXPECT_FALSE(FlexOfferFromJson("[]").ok());
  EXPECT_FALSE(FlexOfferFromJson("{\"id\":}").ok());
  EXPECT_FALSE(FlexOfferFromJson("{\"id\":1.5,\"profile\":[[1,2]]}").ok());
  std::string valid = ToJson(SampleOffer());
  EXPECT_FALSE(FlexOfferFromJson(valid + "x").ok());
}

TEST(SerializationTest, RejectsInvalidOfferContent) {
  // Parses fine but violates the flex-offer invariants (min > max).
  std::string json =
      "{\"id\":1,\"owner\":2,\"created\":0,\"assign_before\":5,"
      "\"earliest\":5,\"latest\":9,\"unit_price\":0.5,"
      "\"profile\":[[3.0,2.0]]}";
  EXPECT_EQ(FlexOfferFromJson(json).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsBadProfileShape) {
  std::string json =
      "{\"id\":1,\"owner\":2,\"created\":0,\"assign_before\":5,"
      "\"earliest\":5,\"latest\":9,\"unit_price\":0.5,"
      "\"profile\":[[1.0,2.0,3.0]]}";
  EXPECT_FALSE(FlexOfferFromJson(json).ok());
}

TEST(SerializationTest, RoundTripsGeneratedWorkload) {
  datagen::FlexOfferWorkloadConfig cfg;
  cfg.count = 500;
  cfg.seed = 8;
  cfg.production_fraction = 0.3;
  for (const FlexOffer& fo : datagen::GenerateFlexOffers(cfg)) {
    auto parsed = FlexOfferFromJson(ToJson(fo));
    ASSERT_TRUE(parsed.ok()) << fo.ToString();
    ASSERT_EQ(parsed->profile.size(), fo.profile.size());
    EXPECT_EQ(parsed->earliest_start, fo.earliest_start);
    EXPECT_EQ(parsed->TotalMaxEnergy(), fo.TotalMaxEnergy());
  }
}

}  // namespace
}  // namespace mirabel::flexoffer
