// Transport-level reliability: acked retries with backoff, dead-lettering,
// and receiver-side dedupe back to exactly-once handling.
#include "node/reliable_channel.h"

#include <gtest/gtest.h>

#include <vector>

#include "node/message_bus.h"

namespace mirabel::node {
namespace {

Message Payload(NodeId from, NodeId to, flexoffer::TimeSlice at,
                flexoffer::FlexOfferId offer_id = 7) {
  Message m;
  m.type = MessageType::kMeasurement;
  m.from = from;
  m.to = to;
  m.sent_at = at;
  m.offer_id = offer_id;
  return m;
}

ReliableChannel::Config ChannelConfig(NodeId self) {
  ReliableChannel::Config cfg;
  cfg.self = self;
  cfg.max_attempts = 4;
  cfg.retry_timeout_slices = 2;
  cfg.max_backoff_slices = 8;
  cfg.jitter = 0.0;  // exact retry slices, easier to assert on
  cfg.seed = self;
  return cfg;
}

/// Sender (node 1) and receiver (node 2) wired through their channels; the
/// receiver records what survives the Accept() filter.
struct Harness {
  explicit Harness(const MessageBus::Config& bus_cfg = {})
      : bus(bus_cfg),
        sender(ChannelConfig(1), &bus),
        receiver(ChannelConfig(2), &bus) {
    // Node 1 only consumes acks here; payloads flow 1 -> 2.
    EXPECT_TRUE(
        bus.Register(1, [this](const Message& m) { (void)sender.Accept(m); })
            .ok());
    EXPECT_TRUE(bus.Register(2, [this](const Message& m) {
                     if (!receiver.Accept(m)) return;
                     handled.push_back(m);
                   }).ok());
  }

  MessageBus bus;
  ReliableChannel sender;
  ReliableChannel receiver;
  std::vector<Message> handled;
};

TEST(ReliableChannelTest, AckStopsRetries) {
  Harness h;
  ASSERT_TRUE(h.sender.Send(Payload(1, 2, 0)).ok());
  EXPECT_EQ(h.sender.in_flight(), 1u);
  // Delivery triggers the receiver's ack; the next advance delivers it.
  h.bus.AdvanceTo(0);
  EXPECT_EQ(h.sender.in_flight(), 0u);
  EXPECT_EQ(h.sender.stats().acked, 1);
  EXPECT_EQ(h.receiver.stats().acks_sent, 1);
  // No retry fires afterwards, ever.
  for (flexoffer::TimeSlice t = 1; t < 40; ++t) {
    h.sender.OnTick(t);
    h.bus.AdvanceTo(t);
  }
  EXPECT_EQ(h.sender.stats().retries, 0);
  ASSERT_EQ(h.handled.size(), 1u);
  EXPECT_EQ(h.handled[0].offer_id, 7u);
}

TEST(ReliableChannelTest, RetriesWithBackoffUntilDelivered) {
  // Everything sent in [0, 5) is dropped: the first attempt dies, the
  // retransmit at t=2 dies, the one at t=6 (backoff doubled to 4) lands.
  MessageBus::Config bus_cfg;
  bus_cfg.faults.drop_windows.push_back({0, 5, 1.0});
  Harness h(bus_cfg);
  ASSERT_TRUE(h.sender.Send(Payload(1, 2, 0)).ok());
  for (flexoffer::TimeSlice t = 0; t < 20; ++t) {
    h.sender.OnTick(t);
    h.bus.AdvanceTo(t);
  }
  ASSERT_EQ(h.handled.size(), 1u);
  EXPECT_EQ(h.sender.stats().retries, 2);
  EXPECT_EQ(h.sender.stats().acked, 1);
  EXPECT_EQ(h.sender.stats().dead_letters, 0);
  EXPECT_EQ(h.sender.in_flight(), 0u);
}

TEST(ReliableChannelTest, DeadLettersAfterMaxAttempts) {
  // The receiver is blacked out for the whole run: all 4 attempts die.
  MessageBus::Config bus_cfg;
  bus_cfg.faults.blackouts.push_back({2, 0, 1000});
  Harness h(bus_cfg);
  ASSERT_TRUE(h.sender.Send(Payload(1, 2, 0)).ok());
  for (flexoffer::TimeSlice t = 0; t < 100; ++t) {
    h.sender.OnTick(t);
    h.bus.AdvanceTo(t);
  }
  EXPECT_TRUE(h.handled.empty());
  EXPECT_EQ(h.sender.stats().dead_letters, 1);
  EXPECT_EQ(h.sender.stats().retries, 3);  // attempts 2..4
  EXPECT_EQ(h.sender.in_flight(), 0u);
}

TEST(ReliableChannelTest, RedeliveryHandledExactlyOnce) {
  // The sender loses every ack (its handler drops them instead of feeding
  // Accept()), so it keeps retransmitting — the receiver must handle the
  // payload exactly once and re-ack every redelivery.
  MessageBus bus;
  ReliableChannel sender(ChannelConfig(1), &bus);
  ReliableChannel receiver(ChannelConfig(2), &bus);
  std::vector<Message> handled;
  ASSERT_TRUE(bus.Register(1, [](const Message&) { /* acks vanish */ }).ok());
  ASSERT_TRUE(bus.Register(2, [&receiver, &handled](const Message& m) {
                   if (!receiver.Accept(m)) return;
                   handled.push_back(m);
                 }).ok());
  ASSERT_TRUE(sender.Send(Payload(1, 2, 0)).ok());
  for (flexoffer::TimeSlice t = 0; t < 100; ++t) {
    sender.OnTick(t);
    bus.AdvanceTo(t);
  }
  ASSERT_EQ(handled.size(), 1u);
  EXPECT_EQ(receiver.stats().duplicates_dropped, 3);  // redelivered retries
  EXPECT_EQ(receiver.stats().acks_sent, 4);           // every delivery re-acked
  EXPECT_EQ(sender.stats().dead_letters, 1);          // never saw an ack
}

TEST(ReliableChannelTest, UnroutableSendDeadLettersImmediately) {
  MessageBus bus;
  ReliableChannel ch(ChannelConfig(1), &bus);
  EXPECT_EQ(ch.Send(Payload(1, 99, 0)).code(), StatusCode::kNotFound);
  EXPECT_EQ(ch.stats().dead_letters, 1);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(ReliableChannelTest, DisabledChannelIsPassthrough) {
  MessageBus bus;
  ReliableChannel::Config cfg = ChannelConfig(1);
  cfg.enabled = false;
  ReliableChannel ch(cfg, &bus);
  std::vector<Message> inbox;
  ASSERT_TRUE(
      bus.Register(2, [&inbox](const Message& m) { inbox.push_back(m); }).ok());
  ASSERT_TRUE(ch.Send(Payload(1, 2, 0)).ok());
  bus.AdvanceTo(0);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].id, 0u);  // no transport id stamped
  EXPECT_FALSE(inbox[0].requires_ack);
  EXPECT_EQ(ch.in_flight(), 0u);
  // A disabled receiver forwards payloads but still swallows stray acks.
  Message stray;
  stray.type = MessageType::kAck;
  stray.ack_id = 123;
  EXPECT_FALSE(ch.Accept(stray));
  EXPECT_TRUE(ch.Accept(Payload(2, 1, 0)));
}

TEST(ReliableChannelTest, BackoffDeterministicForFixedSeed) {
  // Two identically-seeded channels against identically-seeded buses
  // produce identical retry traces (jitter on).
  auto trace = []() {
    MessageBus::Config bus_cfg;
    bus_cfg.faults.drop_windows.push_back({0, 9, 1.0});
    Harness h(bus_cfg);
    ReliableChannel::Config jittered = ChannelConfig(1);
    jittered.jitter = 0.5;
    ReliableChannel sender(jittered, &h.bus);
    Message m = Payload(3, 2, 0);
    m.from = 3;
    EXPECT_TRUE(h.bus.Register(3, [&sender](const Message& msg) {
                     (void)sender.Accept(msg);
                   }).ok());
    EXPECT_TRUE(sender.Send(m).ok());
    std::vector<int64_t> sent_slices;
    for (flexoffer::TimeSlice t = 0; t < 60; ++t) {
      int64_t before = sender.stats().retries;
      sender.OnTick(t);
      if (sender.stats().retries > before) sent_slices.push_back(t);
      h.bus.AdvanceTo(t);
    }
    return sent_slices;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace mirabel::node
