// Contracts of the uncertainty layer's scenario scoring
// (ScenarioEnsemble / StochasticEvaluator):
//
//  1. Evaluate()'s mean/variance/CVaR/worst match a naive per-scenario
//     recompute (perturb the SchedulingProblem, compile, evaluate, reduce
//     in the same order) bit for bit, across randomized problems and
//     schedules.
//  2. Parallel evaluation — through ThreadExecutor and through a shared
//     edms::WorkerPool — is bit-identical to the serial path for every
//     chunking, and race-free (this suite runs under TSan in CI).
//  3. The serial Evaluate() path performs zero steady-state heap
//     allocations, asserted with a counting global operator new.
#include "scheduling/stochastic_evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "common/rng.h"
#include "edms/pool_executor.h"
#include "edms/worker_pool.h"
#include "scheduling/scenario.h"

// ---------------------------------------------------------------------------
// Counting global allocator (binary-wide): every operator new bumps the
// counter, so a test section can assert "no allocations happened here".
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_heap_allocations{0};

void* CountedAlloc(std::size_t n) {
  ++g_heap_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mirabel::scheduling {
namespace {

Schedule RandomScheduleFor(const SchedulingProblem& p, Rng* rng) {
  Schedule s;
  s.assignments.reserve(p.offers.size());
  for (const auto& fo : p.offers) {
    s.assignments.push_back(
        {fo.earliest_start + rng->UniformInt(0, fo.TimeFlexibility()),
         rng->NextDouble()});
  }
  return s;
}

/// A small randomized workload with hedging-relevant knobs varied.
ScenarioConfig RandomScenarioConfig(Rng* rng, int index) {
  ScenarioConfig cfg;
  cfg.num_offers = 1 + static_cast<int>(rng->UniformInt(0, 16));
  cfg.seed = 4000 + static_cast<uint64_t>(index);
  cfg.horizon_length = static_cast<int>(rng->UniformInt(16, 64));
  cfg.max_time_flexibility = 1 + static_cast<int>(rng->UniformInt(0, 12));
  cfg.production_fraction = rng->NextDouble() * 0.5;
  cfg.max_buy_kwh = rng->Bernoulli(0.25) ? 0.0 : 5.0 + rng->NextDouble() * 25.0;
  cfg.max_sell_kwh =
      rng->Bernoulli(0.25) ? 0.0 : 5.0 + rng->NextDouble() * 25.0;
  return cfg;
}

/// Gaussian residual pool standing in for a fitted forecast model's errors.
std::vector<double> ResidualPool(size_t n, double sigma, Rng* rng) {
  std::vector<double> pool(n);
  for (double& r : pool) r = rng->Gaussian(0.3, sigma);
  return pool;
}

/// Naive oracle: score the schedule on every scenario by perturbing the
/// *SchedulingProblem* (not the compiled tables), compiling and evaluating
/// from scratch, then reduce with the same loop shapes as the evaluator.
StochasticCost NaiveStochasticCost(const SchedulingProblem& problem,
                                   const ScenarioEnsemble& ensemble,
                                   const Schedule& schedule, double alpha) {
  const size_t k = static_cast<size_t>(ensemble.num_scenarios());
  std::vector<double> costs(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    SchedulingProblem perturbed = problem;
    const std::vector<double>& delta = ensemble.perturbations()[i].delta_kwh;
    for (size_t s = 0; s < perturbed.baseline_imbalance_kwh.size(); ++s) {
      perturbed.baseline_imbalance_kwh[s] += delta[s];
    }
    CompiledProblem cp(perturbed);
    ScheduleWorkspace ws(cp);
    auto cost = ws.EvaluateInto(cp, schedule);
    EXPECT_TRUE(cost.ok());
    costs[i] = cost.ok() ? cost.value() : 0.0;
  }
  StochasticCost out;
  for (size_t s = 0; s < k; ++s) out.mean_eur += costs[s];
  out.mean_eur /= static_cast<double>(k);
  for (size_t s = 0; s < k; ++s) {
    double d = costs[s] - out.mean_eur;
    out.variance += d * d;
  }
  out.variance /= static_cast<double>(k);
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  size_t tail =
      static_cast<size_t>(std::ceil(alpha * static_cast<double>(k)));
  tail = std::clamp<size_t>(tail, 1, k);
  for (size_t s = 0; s < tail; ++s) out.cvar_eur += costs[s];
  out.cvar_eur /= static_cast<double>(tail);
  out.worst_eur = costs.front();
  return out;
}

// ---------------------------------------------------------------------------
// ScenarioEnsemble construction.
// ---------------------------------------------------------------------------

TEST(ScenarioEnsembleTest, FromResidualPoolIsSeededAndDrawsCenteredValues) {
  Rng rng(11);
  std::vector<double> pool = ResidualPool(9, 2.0, &rng);
  double mean = 0.0;
  for (double r : pool) mean += r;
  mean /= static_cast<double>(pool.size());

  auto a = ScenarioEnsemble::FromResidualPool(pool, 24, 6, 99);
  auto b = ScenarioEnsemble::FromResidualPool(pool, 24, 6, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_scenarios(), 6);
  EXPECT_EQ(a->horizon(), 24);
  EXPECT_FALSE(a->IsDegenerate());

  bool differs_from_other_seed = false;
  auto c = ScenarioEnsemble::FromResidualPool(pool, 24, 6, 100);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 6; ++i) {
    const auto& da = a->perturbations()[static_cast<size_t>(i)].delta_kwh;
    const auto& db = b->perturbations()[static_cast<size_t>(i)].delta_kwh;
    const auto& dc = c->perturbations()[static_cast<size_t>(i)].delta_kwh;
    ASSERT_EQ(da.size(), 24u);
    // Same seed: bit-identical. Every draw is exactly pool[j] - mean.
    for (size_t s = 0; s < da.size(); ++s) {
      EXPECT_EQ(da[s], db[s]);
      bool member = false;
      for (double r : pool) member = member || da[s] == r - mean;
      EXPECT_TRUE(member);
      differs_from_other_seed = differs_from_other_seed || da[s] != dc[s];
    }
  }
  EXPECT_TRUE(differs_from_other_seed);
}

TEST(ScenarioEnsembleTest, RejectsBadArguments) {
  std::vector<double> pool = {1.0, -1.0};
  EXPECT_FALSE(ScenarioEnsemble::FromResidualPool({}, 8, 4, 1).ok());
  EXPECT_FALSE(ScenarioEnsemble::FromResidualPool(pool, 0, 4, 1).ok());
  EXPECT_FALSE(ScenarioEnsemble::FromResidualPool(pool, 8, 0, 1).ok());
  EXPECT_FALSE(ScenarioEnsemble::FromPerturbations({}).ok());
  EXPECT_FALSE(
      ScenarioEnsemble::FromPerturbations({BaselinePerturbation{{}}}).ok());
  EXPECT_FALSE(ScenarioEnsemble::FromPerturbations(
                   {BaselinePerturbation{{1.0, 2.0}},
                    BaselinePerturbation{{1.0}}})
                   .ok());
}

TEST(ScenarioEnsembleTest, DegenerateAndMeanPerturbation) {
  ScenarioEnsemble degenerate = ScenarioEnsemble::Degenerate(16);
  EXPECT_TRUE(degenerate.IsDegenerate());
  EXPECT_EQ(degenerate.num_scenarios(), 1);
  EXPECT_EQ(degenerate.horizon(), 16);

  // A K=1 all-zero ensemble is degenerate however built; K=2 is not.
  auto one = ScenarioEnsemble::FromPerturbations({BaselinePerturbation{
      std::vector<double>(16, 0.0)}});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(one->IsDegenerate());
  auto two = ScenarioEnsemble::FromPerturbations(
      {BaselinePerturbation{std::vector<double>(16, 0.0)},
       BaselinePerturbation{std::vector<double>(16, 0.0)}});
  ASSERT_TRUE(two.ok());
  EXPECT_FALSE(two->IsDegenerate());

  auto mixed = ScenarioEnsemble::FromPerturbations(
      {BaselinePerturbation{{2.0, -4.0}}, BaselinePerturbation{{6.0, 0.0}}});
  ASSERT_TRUE(mixed.ok());
  std::vector<double> mean = mixed->MeanPerturbation();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0], 4.0);
  EXPECT_EQ(mean[1], -2.0);
}

// ---------------------------------------------------------------------------
// Property 1: Evaluate == naive per-scenario recompute, bitwise.
// ---------------------------------------------------------------------------

TEST(StochasticEvaluatorTest, MatchesNaiveRecomputeBitwise) {
  Rng rng(31);
  for (int it = 0; it < 20; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, it));
    ASSERT_TRUE(p.Validate().ok());
    CompiledProblem cp(p);

    std::vector<double> pool = ResidualPool(32, 4.0, &rng);
    int k = 1 + static_cast<int>(rng.UniformInt(0, 12));
    double alpha = rng.Uniform(0.05, 1.0);
    auto ensemble = ScenarioEnsemble::FromResidualPool(
        pool, p.horizon_length, k, 500 + static_cast<uint64_t>(it));
    ASSERT_TRUE(ensemble.ok());

    StochasticEvaluator::Config config;
    config.cvar_alpha = alpha;
    auto evaluator = StochasticEvaluator::Create(cp, *ensemble, config);
    ASSERT_TRUE(evaluator.ok());
    EXPECT_EQ(evaluator->num_scenarios(), k);

    for (int s = 0; s < 4; ++s) {
      Schedule schedule = RandomScheduleFor(p, &rng);
      auto got = evaluator->Evaluate(schedule);
      ASSERT_TRUE(got.ok());
      StochasticCost want = NaiveStochasticCost(p, *ensemble, schedule, alpha);
      EXPECT_EQ(got->mean_eur, want.mean_eur);
      EXPECT_EQ(got->variance, want.variance);
      EXPECT_EQ(got->cvar_eur, want.cvar_eur);
      EXPECT_EQ(got->worst_eur, want.worst_eur);
      EXPECT_GE(got->cvar_eur, got->mean_eur - 1e-9 * std::abs(got->mean_eur));
      EXPECT_GE(got->worst_eur, got->cvar_eur);
    }
  }
}

TEST(StochasticEvaluatorTest, DegenerateEnsembleCollapsesToPointCost) {
  Rng rng(5);
  SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 0));
  CompiledProblem cp(p);
  auto evaluator = StochasticEvaluator::Create(
      cp, ScenarioEnsemble::Degenerate(p.horizon_length), {});
  ASSERT_TRUE(evaluator.ok());

  Schedule schedule = RandomScheduleFor(p, &rng);
  ScheduleWorkspace ws(cp);
  auto point = ws.EvaluateInto(cp, schedule);
  ASSERT_TRUE(point.ok());

  auto cost = evaluator->Evaluate(schedule);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost->mean_eur, point.value());
  EXPECT_EQ(cost->cvar_eur, point.value());
  EXPECT_EQ(cost->worst_eur, point.value());
  EXPECT_EQ(cost->variance, 0.0);
  EXPECT_EQ(cost->RiskScore(0.7), point.value());
}

TEST(StochasticEvaluatorTest, CreateRejectsBadConfig) {
  Rng rng(6);
  SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 1));
  CompiledProblem cp(p);

  // Horizon mismatch.
  auto wrong = StochasticEvaluator::Create(
      cp, ScenarioEnsemble::Degenerate(p.horizon_length + 1), {});
  EXPECT_FALSE(wrong.ok());

  // Alpha outside (0, 1].
  StochasticEvaluator::Config config;
  config.cvar_alpha = 0.0;
  EXPECT_FALSE(StochasticEvaluator::Create(
                   cp, ScenarioEnsemble::Degenerate(p.horizon_length), config)
                   .ok());
  config.cvar_alpha = 1.5;
  EXPECT_FALSE(StochasticEvaluator::Create(
                   cp, ScenarioEnsemble::Degenerate(p.horizon_length), config)
                   .ok());
}

TEST(StochasticEvaluatorTest, InvalidScheduleReportsError) {
  Rng rng(7);
  SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 2));
  CompiledProblem cp(p);
  std::vector<double> pool = {1.0, -1.0};
  auto ensemble =
      ScenarioEnsemble::FromResidualPool(pool, p.horizon_length, 5, 3);
  ASSERT_TRUE(ensemble.ok());
  auto evaluator = StochasticEvaluator::Create(cp, *ensemble, {});
  ASSERT_TRUE(evaluator.ok());

  Schedule wrong_size;  // assignment count != offer count
  EXPECT_FALSE(evaluator->Evaluate(wrong_size).ok());

  ThreadExecutor threads;
  StochasticEvaluator::Config parallel;
  parallel.executor = &threads;
  parallel.max_parallel_tasks = 3;
  auto parallel_eval = StochasticEvaluator::Create(cp, *ensemble, parallel);
  ASSERT_TRUE(parallel_eval.ok());
  EXPECT_FALSE(parallel_eval->Evaluate(wrong_size).ok());
}

// ---------------------------------------------------------------------------
// Property 2: parallel evaluation is bit-identical to serial, for every
// chunking and through both executor implementations. Runs under TSan in CI.
// ---------------------------------------------------------------------------

TEST(StochasticEvaluatorTest, ParallelBitIdenticalToSerial) {
  Rng rng(47);
  SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 3));
  CompiledProblem cp(p);
  std::vector<double> pool = ResidualPool(24, 6.0, &rng);
  // 13 scenarios: prime, so most task counts produce ragged chunks.
  auto ensemble =
      ScenarioEnsemble::FromResidualPool(pool, p.horizon_length, 13, 77);
  ASSERT_TRUE(ensemble.ok());

  auto serial = StochasticEvaluator::Create(cp, *ensemble, {});
  ASSERT_TRUE(serial.ok());

  ThreadExecutor threads;
  edms::WorkerPool::Options pool_options;
  pool_options.num_threads = 3;
  edms::WorkerPool worker_pool(pool_options);
  edms::WorkerPoolExecutor pooled(&worker_pool);

  std::vector<std::unique_ptr<StochasticEvaluator>> parallels;
  for (Executor* executor : {static_cast<Executor*>(&threads),
                             static_cast<Executor*>(&pooled)}) {
    for (int tasks : {1, 2, 3, 8, 32}) {
      StochasticEvaluator::Config config;
      config.executor = executor;
      config.max_parallel_tasks = tasks;
      auto evaluator = StochasticEvaluator::Create(cp, *ensemble, config);
      ASSERT_TRUE(evaluator.ok());
      parallels.push_back(
          std::make_unique<StochasticEvaluator>(std::move(*evaluator)));
    }
  }

  for (int s = 0; s < 6; ++s) {
    Schedule schedule = RandomScheduleFor(p, &rng);
    auto want = serial->Evaluate(schedule);
    ASSERT_TRUE(want.ok());
    for (auto& evaluator : parallels) {
      auto got = evaluator->Evaluate(schedule);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->mean_eur, want->mean_eur);
      EXPECT_EQ(got->variance, want->variance);
      EXPECT_EQ(got->cvar_eur, want->cvar_eur);
      EXPECT_EQ(got->worst_eur, want->worst_eur);
    }
  }
}

// ---------------------------------------------------------------------------
// Property 3: the serial Evaluate path allocates nothing in steady state.
// ---------------------------------------------------------------------------

TEST(StochasticEvaluatorTest, SerialEvaluateDoesNotAllocate) {
  Rng rng(53);
  ScenarioConfig cfg;
  cfg.num_offers = 12;
  cfg.horizon_length = 48;
  cfg.seed = 9;
  SchedulingProblem p = MakeScenario(cfg);
  CompiledProblem cp(p);
  std::vector<double> pool = ResidualPool(16, 3.0, &rng);
  auto ensemble =
      ScenarioEnsemble::FromResidualPool(pool, p.horizon_length, 10, 21);
  ASSERT_TRUE(ensemble.ok());
  auto evaluator = StochasticEvaluator::Create(cp, *ensemble, {});
  ASSERT_TRUE(evaluator.ok());

  Schedule schedule = RandomScheduleFor(p, &rng);
  ASSERT_TRUE(evaluator->Evaluate(schedule).ok());  // warm-up

  int64_t before = g_heap_allocations.load();
  double acc = 0.0;
  for (int i = 0; i < 50; ++i) {
    auto cost = evaluator->Evaluate(schedule);
    ASSERT_TRUE(cost.ok());
    acc += cost->mean_eur + cost->cvar_eur;
  }
  EXPECT_EQ(g_heap_allocations.load(), before) << "acc=" << acc;
}

}  // namespace
}  // namespace mirabel::scheduling
