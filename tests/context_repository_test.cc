#include "forecasting/context_repository.h"

#include <gtest/gtest.h>

namespace mirabel::forecasting {
namespace {

TEST(ContextRepositoryTest, EmptyLookupNotFound) {
  ContextRepository repo;
  EXPECT_TRUE(repo.empty());
  EXPECT_EQ(repo.FindNearest({1.0, 2.0}).status().code(),
            StatusCode::kNotFound);
}

TEST(ContextRepositoryTest, FindsNearestByEuclideanDistance) {
  ContextRepository repo;
  ASSERT_TRUE(repo.Store({0.0, 0.0}, {0.1}, 1.0).ok());
  ASSERT_TRUE(repo.Store({10.0, 10.0}, {0.9}, 1.0).ok());
  auto near_origin = repo.FindNearest({1.0, 1.0});
  ASSERT_TRUE(near_origin.ok());
  EXPECT_DOUBLE_EQ((*near_origin)[0], 0.1);
  auto near_far = repo.FindNearest({9.0, 9.0});
  ASSERT_TRUE(near_far.ok());
  EXPECT_DOUBLE_EQ((*near_far)[0], 0.9);
}

TEST(ContextRepositoryTest, TieBrokenByBetterScore) {
  ContextRepository repo;
  ASSERT_TRUE(repo.Store({1.0}, {0.5}, 10.0).ok());
  ASSERT_TRUE(repo.Store({1.0}, {0.7}, 2.0).ok());  // same context, better
  auto params = repo.FindNearest({1.0});
  ASSERT_TRUE(params.ok());
  EXPECT_DOUBLE_EQ((*params)[0], 0.7);
}

TEST(ContextRepositoryTest, DimensionMismatchRejected) {
  ContextRepository repo;
  ASSERT_TRUE(repo.Store({1.0, 2.0}, {0.5}, 1.0).ok());
  EXPECT_EQ(repo.Store({1.0}, {0.5}, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(repo.FindNearest({1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ContextRepositoryTest, NearestDistance) {
  ContextRepository repo;
  ASSERT_TRUE(repo.Store({0.0, 0.0}, {0.1}, 1.0).ok());
  auto d = repo.NearestDistance({3.0, 4.0});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 5.0, 1e-12);
}

TEST(MakeSeriesContextTest, DescriptorShape) {
  std::vector<double> values(96, 10.0);
  values.back() = 20.0;
  auto ctx = MakeSeriesContext(values, 48);
  ASSERT_EQ(ctx.size(), 3u);
  EXPECT_NEAR(ctx[0], 10.0 + 10.0 / 48.0, 1e-9);  // mean of last day
  EXPECT_GT(ctx[1], 0.0);                         // stddev positive
  EXPECT_DOUBLE_EQ(ctx[2], 2.0);                  // day-of-week feature
}

}  // namespace
}  // namespace mirabel::forecasting
