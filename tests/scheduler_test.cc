#include "scheduling/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "edms/scheduler_registry.h"
#include "scheduling/scenario.h"

namespace mirabel::scheduling {
namespace {

SchedulerOptions IterBudget(int iters) {
  SchedulerOptions opt;
  opt.time_budget_s = 0.0;
  opt.max_iterations = iters;
  opt.seed = 11;
  return opt;
}

/// Registry-backed factory; nullptr for unknown names.
std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  auto created = edms::SchedulerRegistry::Default().Create(name);
  return created.ok() ? std::move(created).value() : nullptr;
}

class SchedulerSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerSuite, ImprovesOverFallbackBaseline) {
  ScenarioConfig cfg;
  cfg.num_offers = 50;
  cfg.seed = 5;
  SchedulingProblem problem = MakeScenario(cfg);
  double baseline = CostEvaluator(problem).Cost().total();

  auto scheduler = MakeScheduler(GetParam());
  ASSERT_NE(scheduler, nullptr);
  auto result = scheduler->Run(problem, IterBudget(200));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->cost.total(), baseline);
}

TEST_P(SchedulerSuite, ScheduleRespectsAllConstraints) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.seed = 6;
  cfg.production_fraction = 0.4;
  SchedulingProblem problem = MakeScenario(cfg);
  auto scheduler = MakeScheduler(GetParam());
  auto result = scheduler->Run(problem, IterBudget(100));
  ASSERT_TRUE(result.ok());
  CostEvaluator eval(problem);
  ASSERT_TRUE(eval.SetSchedule(result->schedule).ok());
  auto scheduled = eval.ToScheduledOffers();
  for (size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_TRUE(scheduled[i].ValidateAgainst(problem.offers[i]).ok());
  }
}

TEST_P(SchedulerSuite, TraceIsMonotoneNonIncreasing) {
  ScenarioConfig cfg;
  cfg.num_offers = 30;
  cfg.seed = 7;
  SchedulingProblem problem = MakeScenario(cfg);
  auto scheduler = MakeScheduler(GetParam());
  auto result = scheduler->Run(problem, IterBudget(150));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trace.empty());
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_LE(result->trace[i].best_cost_eur,
              result->trace[i - 1].best_cost_eur);
    EXPECT_GE(result->trace[i].time_s, result->trace[i - 1].time_s);
  }
  EXPECT_NEAR(result->trace.back().best_cost_eur, result->cost.total(), 1e-6);
}

TEST_P(SchedulerSuite, DeterministicForFixedSeed) {
  ScenarioConfig cfg;
  cfg.num_offers = 20;
  cfg.seed = 8;
  SchedulingProblem problem = MakeScenario(cfg);
  auto a = MakeScheduler(GetParam())->Run(problem, IterBudget(60));
  auto b = MakeScheduler(GetParam())->Run(problem, IterBudget(60));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cost.total(), b->cost.total());
}

TEST_P(SchedulerSuite, RejectsInvalidProblem) {
  SchedulingProblem bad;
  bad.horizon_length = -1;
  auto scheduler = MakeScheduler(GetParam());
  EXPECT_FALSE(scheduler->Run(bad, IterBudget(10)).ok());
}

TEST_P(SchedulerSuite, HandlesEmptyOfferSet) {
  ScenarioConfig cfg;
  cfg.num_offers = 0;
  SchedulingProblem problem = MakeScenario(cfg);
  auto scheduler = MakeScheduler(GetParam());
  auto result = scheduler->Run(problem, IterBudget(5));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->schedule.assignments.empty());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SchedulerSuite,
                         ::testing::Values("GreedySearch",
                                           "EvolutionaryAlgorithm", "Hybrid",
                                           "BranchAndBound", "Portfolio"),
                         [](const auto& info) { return info.param; });

TEST(HybridSchedulerTest, AtLeastAsGoodAsItsGreedyPhase) {
  ScenarioConfig cfg;
  cfg.num_offers = 60;
  cfg.seed = 21;
  SchedulingProblem problem = MakeScenario(cfg);

  SchedulerOptions options;
  options.time_budget_s = 0.3;
  options.seed = 2;
  HybridScheduler hybrid;
  auto hybrid_run = hybrid.Run(problem, options);
  ASSERT_TRUE(hybrid_run.ok());

  GreedyScheduler greedy;
  SchedulerOptions greedy_options = options;
  greedy_options.time_budget_s = 0.2 * options.time_budget_s;
  auto greedy_run = greedy.Run(problem, greedy_options);
  ASSERT_TRUE(greedy_run.ok());
  EXPECT_LE(hybrid_run->cost.total(), greedy_run->cost.total() + 1e-6);
}

TEST(SchedulerFactoryTest, UnknownNameIsNotFound) {
  auto created = edms::SchedulerRegistry::Default().Create("TabuSearch");
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
}

TEST(SchedulerFactoryTest, DefaultRegistryListsThePaperAlgorithms) {
  auto names = edms::SchedulerRegistry::Default().Names();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "BranchAndBound", "EvolutionaryAlgorithm", "Exhaustive",
                       "GreedySearch", "Hybrid", "Portfolio", "Robust"}));
  for (const std::string& name : names) {
    auto created = edms::SchedulerRegistry::Default().Create(name);
    ASSERT_TRUE(created.ok()) << name;
    EXPECT_EQ((*created)->Name(), name);
  }
}

TEST(EvolutionarySchedulerTest, DegenerateConfigRejected) {
  EvolutionaryScheduler::Config cfg;
  cfg.population_size = 1;
  EvolutionaryScheduler scheduler(cfg);
  ScenarioConfig scfg;
  scfg.num_offers = 5;
  EXPECT_FALSE(scheduler.Run(MakeScenario(scfg), IterBudget(5)).ok());
}

TEST(ExhaustiveSchedulerTest, CountCombinations) {
  ScenarioConfig cfg;
  cfg.num_offers = 3;
  cfg.max_time_flexibility = 2;
  cfg.seed = 77;
  SchedulingProblem problem = MakeScenario(cfg);
  uint64_t combos = ExhaustiveScheduler::CountCombinations(problem);
  uint64_t expected = 1;
  for (const auto& fo : problem.offers) {
    expected *= static_cast<uint64_t>(fo.TimeFlexibility()) + 1;
  }
  EXPECT_EQ(combos, expected);
}

TEST(ExhaustiveSchedulerTest, RefusesHugeInstances) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.max_time_flexibility = 24;
  SchedulingProblem problem = MakeScenario(cfg);
  ExhaustiveScheduler scheduler(/*max_combinations=*/1000);
  EXPECT_EQ(scheduler.Run(problem, IterBudget(0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExhaustiveSchedulerTest, FindsOptimumOfSmallInstance) {
  ScenarioConfig cfg;
  cfg.num_offers = 5;
  cfg.max_time_flexibility = 4;
  cfg.no_energy_flexibility = true;
  cfg.seed = 13;
  SchedulingProblem problem = MakeScenario(cfg);
  ExhaustiveScheduler exhaustive;
  SchedulerOptions opt;
  opt.time_budget_s = 60.0;
  auto optimal = exhaustive.Run(problem, opt);
  ASSERT_TRUE(optimal.ok());

  // No feasible schedule may beat the exhaustive optimum.
  for (const char* algo : {"GreedySearch", "EvolutionaryAlgorithm"}) {
    auto heuristic = MakeScheduler(algo)->Run(problem, IterBudget(300));
    ASSERT_TRUE(heuristic.ok());
    EXPECT_GE(heuristic->cost.total(), optimal->cost.total() - 1e-6) << algo;
  }
}

TEST(ScenarioTest, ProducesValidProblems) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (int n : {0, 1, 10, 200}) {
      ScenarioConfig cfg;
      cfg.num_offers = n;
      cfg.seed = seed;
      SchedulingProblem p = MakeScenario(cfg);
      EXPECT_TRUE(p.Validate().ok()) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(p.offers.size(), static_cast<size_t>(n));
    }
  }
}

TEST(ScenarioTest, NoEnergyFlexibilityMeansFixedProfiles) {
  ScenarioConfig cfg;
  cfg.num_offers = 50;
  cfg.no_energy_flexibility = true;
  SchedulingProblem p = MakeScenario(cfg);
  for (const auto& fo : p.offers) {
    EXPECT_DOUBLE_EQ(fo.TotalEnergyFlexibility(), 0.0);
  }
}

TEST(ScenarioTest, ProductionFractionRoughlyRespected) {
  ScenarioConfig cfg;
  cfg.num_offers = 600;
  cfg.production_fraction = 0.5;
  SchedulingProblem p = MakeScenario(cfg);
  int production = 0;
  for (const auto& fo : p.offers) {
    if (fo.TotalMaxEnergy() < 0) ++production;
  }
  EXPECT_GT(production, 240);
  EXPECT_LT(production, 360);
}

}  // namespace
}  // namespace mirabel::scheduling
