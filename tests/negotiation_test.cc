#include <gtest/gtest.h>

#include "test_util.h"

#include "negotiation/flexibility_metrics.h"
#include "negotiation/negotiator.h"
#include "negotiation/pricing.h"

namespace mirabel::negotiation {
namespace {

using flexoffer::FlexOffer;

using testutil::FlexibilityOffer;

TEST(FlexibilityMetricsTest, ExtractsAllThreeParameters) {
  FlexOffer fo = FlexibilityOffer(/*assignment_lead=*/20, /*tf=*/12,
                       /*flex_per_slice=*/0.5);
  FlexibilityMetrics m = ComputeFlexibilityMetrics(fo);
  EXPECT_EQ(m.assignment_flexibility, 20);
  EXPECT_EQ(m.scheduling_flexibility, 12);
  EXPECT_DOUBLE_EQ(m.energy_flexibility_kwh, 2.0);
}

TEST(PotentialsTest, SigmoidMidpointGivesHalf) {
  PotentialConfig cfg;
  FlexibilityMetrics m;
  m.assignment_flexibility = static_cast<int64_t>(cfg.assignment.midpoint);
  m.scheduling_flexibility = static_cast<int64_t>(cfg.scheduling.midpoint);
  m.energy_flexibility_kwh = cfg.energy.midpoint;
  FlexibilityPotentials p = ComputePotentials(m, cfg);
  EXPECT_NEAR(p.assignment, 0.5, 1e-9);
  EXPECT_NEAR(p.scheduling, 0.5, 1e-9);
  EXPECT_NEAR(p.energy, 0.5, 1e-9);
}

TEST(PotentialsTest, MonotoneInEachParameter) {
  PotentialConfig cfg;
  FlexibilityMetrics lo{4, 4, 1.0};
  FlexibilityMetrics hi{40, 40, 20.0};
  FlexibilityPotentials plo = ComputePotentials(lo, cfg);
  FlexibilityPotentials phi = ComputePotentials(hi, cfg);
  EXPECT_LT(plo.assignment, phi.assignment);
  EXPECT_LT(plo.scheduling, phi.scheduling);
  EXPECT_LT(plo.energy, phi.energy);
}

TEST(MonetizePricerTest, MoreFlexibleOffersAreWorthMore) {
  MonetizeFlexibilityPricer pricer;
  double rigid = pricer.Value(FlexibilityOffer(4, 0, 0.0));
  double flexible = pricer.Value(FlexibilityOffer(40, 24, 2.0));
  EXPECT_GT(flexible, rigid);
  EXPECT_GT(rigid, 0.0);  // sigmoid never reaches zero
}

TEST(MonetizePricerTest, EnergyOnlyOfferStillHasValue) {
  // "Such a flex-offer may still provide a benefit for the BRP if it offers
  // Energy flexibility" (paper §7): zero scheduling flexibility, big band.
  MonetizeFlexibilityPricer pricer;
  double energy_only = pricer.Value(FlexibilityOffer(20, 0, 3.0));
  double nothing = pricer.Value(FlexibilityOffer(20, 0, 0.0));
  EXPECT_GT(energy_only, nothing + 0.3);
}

TEST(MonetizePricerTest, WeightsScaleValue) {
  MonetizeFlexibilityPricer::Weights heavy;
  heavy.scheduling_eur = 10.0;
  MonetizeFlexibilityPricer pricer(heavy, PotentialConfig());
  MonetizeFlexibilityPricer base;
  FlexOffer fo = FlexibilityOffer(20, 24, 1.0);
  EXPECT_GT(pricer.Value(fo), base.Value(fo));
}

TEST(ProfitSharingTest, SharesPositiveProfit) {
  ProfitSharingPricer pricer(0.3);
  EXPECT_NEAR(pricer.Payout(100.0, 60.0), 12.0, 1e-9);
}

TEST(ProfitSharingTest, NoPayoutOnLoss) {
  ProfitSharingPricer pricer(0.3);
  EXPECT_DOUBLE_EQ(pricer.Payout(60.0, 100.0), 0.0);
}

TEST(ProfitSharingTest, ShareClampedToUnitInterval) {
  EXPECT_DOUBLE_EQ(ProfitSharingPricer(1.7).prosumer_share(), 1.0);
  EXPECT_DOUBLE_EQ(ProfitSharingPricer(-0.2).prosumer_share(), 0.0);
}

TEST(AcceptancePolicyTest, AcceptsProfitableProcessableOffer) {
  AcceptancePolicy policy;
  EXPECT_EQ(policy.Evaluate(FlexibilityOffer(20, 24, 1.0)),
            AcceptancePolicy::Verdict::kAccepted);
}

TEST(AcceptancePolicyTest, RejectsLateOffer) {
  AcceptancePolicy::Config cfg;
  cfg.min_processing_slices = 8;
  AcceptancePolicy policy(cfg);
  EXPECT_EQ(policy.Evaluate(FlexibilityOffer(4, 24, 1.0)),
            AcceptancePolicy::Verdict::kTooLateToProcess);
}

TEST(AcceptancePolicyTest, RejectsWorthlessOffer) {
  AcceptancePolicy::Config cfg;
  cfg.min_value_eur = 2.0;  // above what a rigid offer can reach
  AcceptancePolicy policy(cfg);
  EXPECT_EQ(policy.Evaluate(FlexibilityOffer(20, 0, 0.0)),
            AcceptancePolicy::Verdict::kTooLittleValue);
}

TEST(NegotiatorTest, AgreesOnFlexibleOffer) {
  Negotiator negotiator;
  auto outcome = negotiator.Negotiate(FlexibilityOffer(30, 24, 2.0), 0.0);
  EXPECT_EQ(outcome.decision, NegotiationOutcome::Decision::kAgreed);
  EXPECT_GT(outcome.agreed_price_eur, 0.0);
  EXPECT_LT(outcome.agreed_price_eur, outcome.brp_value_eur);
}

TEST(NegotiatorTest, BrpKeepsConfiguredMargin) {
  Negotiator::Config cfg;
  cfg.brp_margin = 0.5;
  Negotiator negotiator(cfg);
  auto outcome = negotiator.Negotiate(FlexibilityOffer(30, 24, 2.0), 0.0);
  ASSERT_EQ(outcome.decision, NegotiationOutcome::Decision::kAgreed);
  EXPECT_NEAR(outcome.agreed_price_eur, 0.5 * outcome.brp_value_eur, 1e-9);
}

TEST(NegotiatorTest, ProsumerRejectsLowballProposal) {
  Negotiator negotiator;
  auto outcome = negotiator.Negotiate(FlexibilityOffer(30, 24, 2.0),
                                      /*reservation_price_eur=*/100.0);
  EXPECT_EQ(outcome.decision,
            NegotiationOutcome::Decision::kRejectedByProsumer);
  EXPECT_DOUBLE_EQ(outcome.agreed_price_eur, 0.0);
}

TEST(NegotiatorTest, BrpRejectsUnprocessableOffer) {
  Negotiator::Config cfg;
  cfg.acceptance.min_processing_slices = 16;
  Negotiator negotiator(cfg);
  auto outcome = negotiator.Negotiate(FlexibilityOffer(4, 24, 2.0), 0.0);
  EXPECT_EQ(outcome.decision, NegotiationOutcome::Decision::kRejectedByBrp);
}

TEST(NegotiatorTest, SettlesProfitShare) {
  Negotiator negotiator;
  EXPECT_NEAR(negotiator.SettleProfitShare(50.0, 30.0, 0.5), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(negotiator.SettleProfitShare(30.0, 50.0, 0.5), 0.0);
}

}  // namespace
}  // namespace mirabel::negotiation
