#include "forecasting/hierarchical_advisor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/energy_series_generator.h"

namespace mirabel::forecasting {
namespace {

TimeSeries Leaf(uint64_t seed, int days = 14) {
  datagen::DemandSeriesConfig cfg;
  cfg.days = days;
  cfg.seed = seed;
  cfg.base_load_mw = 100.0;
  cfg.daily_amplitude = 30.0;
  cfg.weekly_amplitude = 8.0;
  cfg.annual_amplitude = 0.0;
  cfg.noise_stddev = 2.0;
  return TimeSeries(datagen::GenerateDemandSeries(cfg), 48);
}

AdvisorOptions FastOptions() {
  AdvisorOptions opt;
  opt.holdout = 48;
  opt.seasonal_periods = {48};
  opt.estimation = {0.05, 300, 3};
  return opt;
}

TEST(AdvisorTest, EmptyHierarchyRejected) {
  HierarchicalForecastAdvisor advisor;
  EXPECT_FALSE(advisor.Advise({}, FastOptions()).ok());
}

TEST(AdvisorTest, NonTopologicalOrderRejected) {
  std::vector<HierarchyNode> nodes(2);
  nodes[0].name = "root";
  nodes[0].children = {0};  // self-reference
  HierarchicalForecastAdvisor advisor;
  EXPECT_FALSE(advisor.Advise(nodes, FastOptions()).ok());
}

TEST(AdvisorTest, LeafWithoutSeriesRejected) {
  std::vector<HierarchyNode> nodes(1);
  nodes[0].name = "lonely-leaf";
  HierarchicalForecastAdvisor advisor;
  EXPECT_FALSE(advisor.Advise(nodes, FastOptions()).ok());
}

TEST(AdvisorTest, SingleLeafGetsOwnModel) {
  std::vector<HierarchyNode> nodes(1);
  nodes[0].name = "leaf";
  nodes[0].series = Leaf(1);
  HierarchicalForecastAdvisor advisor;
  auto result = advisor.Advise(nodes, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->models_used, 1);
  EXPECT_EQ(result->placement[0], ModelPlacement::kOwnModel);
}

TEST(AdvisorTest, AccurateChildrenLetParentAggregate) {
  // Root with two well-behaved leaves: summing the child forecasts should
  // meet a loose accuracy constraint, saving the root's model.
  std::vector<HierarchyNode> nodes(3);
  nodes[0].name = "brp";
  nodes[0].children = {1, 2};
  nodes[1].name = "p1";
  nodes[1].series = Leaf(11);
  nodes[2].name = "p2";
  nodes[2].series = Leaf(12);
  AdvisorOptions opt = FastOptions();
  opt.max_smape = 0.2;
  HierarchicalForecastAdvisor advisor;
  auto result = advisor.Advise(nodes, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->placement[0], ModelPlacement::kAggregateChildren);
  EXPECT_EQ(result->models_used, 2);
  EXPECT_LE(result->node_smape[0], 0.2);
}

TEST(AdvisorTest, ImpossibleConstraintFallsBackToBetterOption) {
  std::vector<HierarchyNode> nodes(3);
  nodes[0].name = "brp";
  nodes[0].children = {1, 2};
  nodes[1].name = "p1";
  nodes[1].series = Leaf(21);
  nodes[2].name = "p2";
  nodes[2].series = Leaf(22);
  AdvisorOptions opt = FastOptions();
  opt.max_smape = 0.0;  // unachievable: forces the comparison path
  HierarchicalForecastAdvisor advisor;
  auto result = advisor.Advise(nodes, opt);
  ASSERT_TRUE(result.ok());
  // Whichever placement wins, the reported SMAPE must be the better one.
  EXPECT_GE(result->models_used, 2);
  EXPECT_GT(result->node_smape[0], 0.0);
}

TEST(AdvisorTest, ThreeLevelHierarchy) {
  // TSO -> 2 BRPs -> 2 prosumers each.
  std::vector<HierarchyNode> nodes(7);
  nodes[0].name = "tso";
  nodes[0].children = {1, 2};
  nodes[1].name = "brp1";
  nodes[1].children = {3, 4};
  nodes[2].name = "brp2";
  nodes[2].children = {5, 6};
  for (size_t i = 3; i < 7; ++i) {
    nodes[i].name = "p" + std::to_string(i);
    nodes[i].series = Leaf(30 + i);
  }
  AdvisorOptions opt = FastOptions();
  opt.max_smape = 0.25;
  HierarchicalForecastAdvisor advisor;
  auto result = advisor.Advise(nodes, opt);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->placement.size(), 7u);
  // Leaves always own a model; inner nodes prefer aggregation under the
  // loose constraint, so fewer than 7 models run in total.
  EXPECT_EQ(result->models_used, 4);
  for (size_t i = 3; i < 7; ++i) {
    EXPECT_EQ(result->placement[i], ModelPlacement::kOwnModel);
  }
}

}  // namespace
}  // namespace mirabel::forecasting
