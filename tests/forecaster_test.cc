#include "forecasting/forecaster.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "datagen/energy_series_generator.h"

namespace mirabel::forecasting {
namespace {

TimeSeries DemandSeries(int days, uint64_t seed = 7) {
  datagen::DemandSeriesConfig cfg;
  cfg.days = days;
  cfg.seed = seed;
  return TimeSeries(datagen::GenerateDemandSeries(cfg), 48);
}

ForecasterConfig FastConfig() {
  ForecasterConfig cfg;
  cfg.seasonal_periods = {48, 336};
  cfg.initial_estimation = {0.2, 0, 3};
  cfg.adaptation_estimation = {0.05, 200, 4};
  return cfg;
}

TEST(ForecasterTest, ForecastBeforeTrainFails) {
  Forecaster forecaster(FastConfig());
  EXPECT_FALSE(forecaster.Forecast(10).ok());
  EXPECT_FALSE(forecaster.AddMeasurement(1.0).ok());
}

TEST(ForecasterTest, UnknownEstimatorRejected) {
  ForecasterConfig cfg = FastConfig();
  cfg.estimator = "Oracle";
  Forecaster forecaster(cfg);
  EXPECT_EQ(forecaster.Train(DemandSeries(21)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ForecasterTest, TrainsAndForecastsAccurately) {
  Forecaster forecaster(FastConfig());
  datagen::DemandSeriesConfig cfg;
  cfg.days = 29;
  auto values = datagen::GenerateDemandSeries(cfg);
  TimeSeries train(std::vector<double>(values.begin(), values.end() - 48), 48);
  ASSERT_TRUE(forecaster.Train(train).ok());
  auto forecast = forecaster.Forecast(48);
  ASSERT_TRUE(forecast.ok());
  std::vector<double> actual(values.end() - 48, values.end());
  auto smape = Smape(actual, *forecast);
  ASSERT_TRUE(smape.ok());
  EXPECT_LT(*smape, 0.09);
}

TEST(ForecasterTest, OnlineUpdatesKeepRollingSmapeSane) {
  Forecaster forecaster(FastConfig());
  datagen::DemandSeriesConfig cfg;
  cfg.days = 28;
  auto values = datagen::GenerateDemandSeries(cfg);
  size_t split = values.size() - 96;
  TimeSeries train(std::vector<double>(values.begin(),
                                       values.begin() + static_cast<ptrdiff_t>(split)),
                   48);
  ASSERT_TRUE(forecaster.Train(train).ok());
  for (size_t i = split; i < values.size(); ++i) {
    ASSERT_TRUE(forecaster.AddMeasurement(values[i]).ok());
  }
  EXPECT_GT(forecaster.RollingSmape(), 0.0);
  EXPECT_LT(forecaster.RollingSmape(), 0.2);
}

TEST(ForecasterTest, TimeBasedStrategyTriggersReestimation) {
  ForecasterConfig cfg = FastConfig();
  cfg.evaluation = EvaluationStrategy::kTimeBased;
  cfg.reestimation_interval = 50;
  Forecaster forecaster(cfg);
  auto series = DemandSeries(22);
  ASSERT_TRUE(forecaster.Train(series).ok());
  datagen::DemandSeriesConfig more;
  more.days = 3;
  more.seed = 99;
  for (double v : datagen::GenerateDemandSeries(more)) {
    ASSERT_TRUE(forecaster.AddMeasurement(v).ok());
  }
  // 144 measurements at interval 50 -> at least 2 re-estimations.
  EXPECT_GE(forecaster.reestimation_count(), 2);
}

TEST(ForecasterTest, ThresholdStrategyTriggersOnRegimeChange) {
  ForecasterConfig cfg = FastConfig();
  cfg.evaluation = EvaluationStrategy::kThresholdBased;
  cfg.smape_threshold = 0.10;
  cfg.evaluation_window = 24;
  Forecaster forecaster(cfg);
  ASSERT_TRUE(forecaster.Train(DemandSeries(22)).ok());
  EXPECT_EQ(forecaster.reestimation_count(), 0);
  // Feed a violently different regime: forecasts break, threshold fires.
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(forecaster.AddMeasurement(i % 2 == 0 ? 5000.0 : 70000.0).ok());
  }
  EXPECT_GE(forecaster.reestimation_count(), 1);
}

TEST(ForecasterTest, ContextRepositoryCollectsCases) {
  ContextRepository repository;
  ForecasterConfig cfg = FastConfig();
  cfg.evaluation = EvaluationStrategy::kTimeBased;
  cfg.reestimation_interval = 40;
  Forecaster forecaster(cfg);
  forecaster.AttachContextRepository(&repository);
  ASSERT_TRUE(forecaster.Train(DemandSeries(22)).ok());
  EXPECT_EQ(repository.size(), 1u);  // the initial estimation stored a case
  datagen::DemandSeriesConfig more;
  more.days = 2;
  more.seed = 3;
  for (double v : datagen::GenerateDemandSeries(more)) {
    ASSERT_TRUE(forecaster.AddMeasurement(v).ok());
  }
  EXPECT_GT(repository.size(), 1u);  // re-estimations stored more cases
}

}  // namespace
}  // namespace mirabel::forecasting
