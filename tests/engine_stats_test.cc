// EngineStats::Merge must cover every field — shard stats are summed by the
// sharded runtime, and a silently-dropped field would corrupt merged
// reporting. The member count itself is pinned at compile time: Merge()
// destructures the whole struct (and static_asserts its size), so adding a
// field without extending it fails the build before this test even runs.
#include <gtest/gtest.h>

#include "edms/edms_engine.h"

namespace mirabel::edms {
namespace {

/// Distinct per-field values so a dropped or cross-wired field shows up.
EngineStats Filled(int64_t base) {
  EngineStats s;
  s.offers_received = base + 1;
  s.submit_batches = base + 2;
  s.offers_accepted = base + 3;
  s.offers_rejected = base + 4;
  s.scheduling_runs = base + 5;
  s.macros_scheduled = base + 6;
  s.micro_schedules_sent = base + 7;
  s.offers_expired_in_pipeline = base + 8;
  s.offers_executed = base + 9;
  s.payments_eur = static_cast<double>(base) + 10.5;
  s.imbalance_before_kwh = static_cast<double>(base) + 11.5;
  s.imbalance_after_kwh = static_cast<double>(base) + 12.5;
  s.schedule_cost_eur = static_cast<double>(base) + 13.5;
  s.budget_saved_s = static_cast<double>(base) + 14.5;
  s.intake_errors = base + 15;
  s.metering_failures = base + 16;
  s.offers_shed = base + 17;
  s.offers_dropped_at_shutdown = base + 18;
  s.portfolio_wins_greedy = base + 19;
  s.portfolio_wins_ea = base + 20;
  s.portfolio_wins_hybrid = base + 21;
  s.portfolio_wins_bnb = base + 22;
  s.bnb_optimal_proven = base + 23;
  s.robust_runs = base + 24;
  s.robust_scenario_evaluations = base + 25;
  s.robust_expected_cost_eur = static_cast<double>(base) + 26.5;
  s.robust_cvar_eur = static_cast<double>(base) + 27.5;
  return s;
}

void ExpectSum(const EngineStats& merged, int64_t a, int64_t b) {
  EXPECT_EQ(merged.offers_received, a + b + 2);
  EXPECT_EQ(merged.submit_batches, a + b + 4);
  EXPECT_EQ(merged.offers_accepted, a + b + 6);
  EXPECT_EQ(merged.offers_rejected, a + b + 8);
  EXPECT_EQ(merged.scheduling_runs, a + b + 10);
  EXPECT_EQ(merged.macros_scheduled, a + b + 12);
  EXPECT_EQ(merged.micro_schedules_sent, a + b + 14);
  EXPECT_EQ(merged.offers_expired_in_pipeline, a + b + 16);
  EXPECT_EQ(merged.offers_executed, a + b + 18);
  EXPECT_DOUBLE_EQ(merged.payments_eur, static_cast<double>(a + b) + 21.0);
  EXPECT_DOUBLE_EQ(merged.imbalance_before_kwh,
                   static_cast<double>(a + b) + 23.0);
  EXPECT_DOUBLE_EQ(merged.imbalance_after_kwh,
                   static_cast<double>(a + b) + 25.0);
  EXPECT_DOUBLE_EQ(merged.schedule_cost_eur,
                   static_cast<double>(a + b) + 27.0);
  EXPECT_DOUBLE_EQ(merged.budget_saved_s, static_cast<double>(a + b) + 29.0);
  EXPECT_EQ(merged.intake_errors, a + b + 30);
  EXPECT_EQ(merged.metering_failures, a + b + 32);
  EXPECT_EQ(merged.offers_shed, a + b + 34);
  EXPECT_EQ(merged.offers_dropped_at_shutdown, a + b + 36);
  EXPECT_EQ(merged.portfolio_wins_greedy, a + b + 38);
  EXPECT_EQ(merged.portfolio_wins_ea, a + b + 40);
  EXPECT_EQ(merged.portfolio_wins_hybrid, a + b + 42);
  EXPECT_EQ(merged.portfolio_wins_bnb, a + b + 44);
  EXPECT_EQ(merged.bnb_optimal_proven, a + b + 46);
  EXPECT_EQ(merged.robust_runs, a + b + 48);
  EXPECT_EQ(merged.robust_scenario_evaluations, a + b + 50);
  EXPECT_DOUBLE_EQ(merged.robust_expected_cost_eur,
                   static_cast<double>(a + b) + 53.0);
  EXPECT_DOUBLE_EQ(merged.robust_cvar_eur, static_cast<double>(a + b) + 55.0);
}

TEST(EngineStatsTest, MergeCoversEveryField) {
  EngineStats a = Filled(100);
  EngineStats b = Filled(2000);
  a.Merge(b);
  ExpectSum(a, 100, 2000);
}

TEST(EngineStatsTest, PlusOperatorsMatchMerge) {
  EngineStats a = Filled(100);
  a += Filled(2000);
  ExpectSum(a, 100, 2000);
  ExpectSum(Filled(100) + Filled(2000), 100, 2000);
}

TEST(EngineStatsTest, MergingDefaultIsIdentity) {
  EngineStats a = Filled(7);
  EngineStats before = a;
  a.Merge(EngineStats{});
  EXPECT_EQ(a.offers_received, before.offers_received);
  EXPECT_EQ(a.offers_executed, before.offers_executed);
  EXPECT_DOUBLE_EQ(a.schedule_cost_eur, before.schedule_cost_eur);
}

}  // namespace
}  // namespace mirabel::edms
