#include "storage/data_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include "storage/table.h"

namespace mirabel::storage {
namespace {

using flexoffer::FlexOffer;
using flexoffer::ScheduledFlexOffer;

TEST(TableTest, InsertFindErase) {
  struct Row {
    int64_t id;
    int payload;
  };
  Table<Row> table([](const Row& r) { return r.id; });
  ASSERT_TRUE(table.Insert({1, 10}).ok());
  ASSERT_TRUE(table.Insert({2, 20}).ok());
  EXPECT_EQ(table.Insert({1, 99}).code(), StatusCode::kAlreadyExists);
  auto row = table.Find(2);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->payload, 20);
  ASSERT_TRUE(table.Erase(1).ok());
  EXPECT_FALSE(table.Find(1).ok());
  EXPECT_EQ(table.Erase(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.size(), 1u);
}

TEST(TableTest, UpsertReplaces) {
  struct Row {
    int64_t id;
    int payload;
  };
  Table<Row> table([](const Row& r) { return r.id; });
  table.Upsert({1, 10});
  table.Upsert({1, 20});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ((*table.Find(1))->payload, 20);
}

TEST(TableTest, EraseKeepsIndexConsistent) {
  struct Row {
    int64_t id;
  };
  Table<Row> table([](const Row& r) { return r.id; });
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table.Insert({i}).ok());
  }
  ASSERT_TRUE(table.Erase(3).ok());  // swap-with-last moves row 10
  for (int64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(table.Find(i).ok(), i != 3) << i;
  }
}

TEST(TableTest, ScanFilters) {
  struct Row {
    int64_t id;
    bool flag;
  };
  Table<Row> table([](const Row& r) { return r.id; });
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert({i, i % 2 == 0}).ok());
  }
  auto hits = table.Scan([](const Row& r) { return r.flag; });
  EXPECT_EQ(hits.size(), 5u);
}

TEST(TimeDimTest, DenormalisedAttributes) {
  TimeDim t = MakeTimeDim(flexoffer::DaysToSlices(5) + 37, true);
  EXPECT_EQ(t.day, 5);
  EXPECT_EQ(t.day_of_week, 5);
  EXPECT_TRUE(t.is_weekend);
  EXPECT_TRUE(t.is_holiday);
  EXPECT_EQ(t.hour_of_day, 9);
  EXPECT_EQ(t.slice_of_day, 37);
}

TEST(DataStoreTest, ActorHierarchy) {
  DataStore store;
  ASSERT_TRUE(store.AddActor({1, "tso", ActorRole::kTransmissionSystemOperator, 0}).ok());
  ASSERT_TRUE(store.AddActor({2, "brp", ActorRole::kBalanceResponsibleParty, 1}).ok());
  ASSERT_TRUE(store.AddActor({3, "alice", ActorRole::kProsumer, 2}).ok());
  ASSERT_TRUE(store.AddActor({4, "bob", ActorRole::kProsumer, 2}).ok());
  EXPECT_EQ(store.AddActor({1, "dup", ActorRole::kProsumer, 0}).code(),
            StatusCode::kAlreadyExists);
  auto kids = store.ActorsUnder(2);
  EXPECT_EQ(kids.size(), 2u);
  ASSERT_TRUE(store.FindActor(3).ok());
  EXPECT_FALSE(store.FindActor(99).ok());
}

TEST(DataStoreTest, MeasurementSeriesAccumulates) {
  DataStore store;
  store.AppendMeasurement(1, 10, EnergyType::kConsumption, 2.0);
  store.AppendMeasurement(1, 10, EnergyType::kConsumption, 1.0);
  store.AppendMeasurement(1, 11, EnergyType::kConsumption, 5.0);
  store.AppendMeasurement(1, 11, EnergyType::kProductionWind, 9.0);
  store.AppendMeasurement(2, 10, EnergyType::kConsumption, 7.0);
  auto series = store.MeasurementSeries(1, EnergyType::kConsumption, 10, 13);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 3.0);
  EXPECT_DOUBLE_EQ(series[1], 5.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);
}

FlexOffer MakeOffer(uint64_t id) {
  return testutil::OwnedOffer(id, /*owner=*/0, /*assign_before=*/8,
                              /*earliest=*/10, /*latest=*/20);
}

TEST(DataStoreTest, FlexOfferLifecycleHappyPath) {
  DataStore store;
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(1)).ok());
  EXPECT_EQ(store.PutFlexOffer(MakeOffer(1)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kAccepted).ok());
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kAggregated).ok());
  ScheduledFlexOffer s{1, 12, {1.5, 1.5}};
  ASSERT_TRUE(store.AttachSchedule(s).ok());
  EXPECT_EQ((*store.FindFlexOffer(1))->state, FlexOfferState::kScheduled);
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kExecuted).ok());
}

TEST(DataStoreTest, IllegalTransitionsRejected) {
  DataStore store;
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(1)).ok());
  // Offered -> Scheduled skips acceptance.
  EXPECT_EQ(store.TransitionFlexOffer(1, FlexOfferState::kScheduled).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kRejected).ok());
  // Terminal states admit nothing.
  EXPECT_FALSE(store.TransitionFlexOffer(1, FlexOfferState::kAccepted).ok());
  EXPECT_EQ(store.TransitionFlexOffer(42, FlexOfferState::kAccepted).code(),
            StatusCode::kNotFound);
}

TEST(DataStoreTest, AttachScheduleValidatesAgainstOffer) {
  DataStore store;
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(1)).ok());
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kAccepted).ok());
  ScheduledFlexOffer bad{1, 30, {1.5, 1.5}};  // start outside window
  EXPECT_FALSE(store.AttachSchedule(bad).ok());
  ScheduledFlexOffer unknown{7, 12, {1.5, 1.5}};
  EXPECT_EQ(store.AttachSchedule(unknown).code(), StatusCode::kNotFound);
}

TEST(DataStoreTest, ExpiredUnscheduledQuery) {
  DataStore store;
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(1)).ok());  // deadline 8
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(2)).ok());
  ASSERT_TRUE(store.TransitionFlexOffer(2, FlexOfferState::kAccepted).ok());
  FlexOffer late = MakeOffer(3);
  late.assignment_before = 15;  // still within the window, later than 1/2
  ASSERT_TRUE(store.PutFlexOffer(late).ok());

  EXPECT_EQ(store.ExpiredUnscheduled(7).size(), 0u);
  auto expired = store.ExpiredUnscheduled(8);
  EXPECT_EQ(expired.size(), 2u);  // offers 1 and 2; offer 3 not yet due

  // Scheduled offers never expire via this query.
  ScheduledFlexOffer s{2, 12, {1.5, 1.5}};
  ASSERT_TRUE(store.AttachSchedule(s).ok());
  EXPECT_EQ(store.ExpiredUnscheduled(8).size(), 1u);
}

TEST(DataStoreTest, AgreedPriceStored) {
  DataStore store;
  ASSERT_TRUE(store.PutFlexOffer(MakeOffer(1)).ok());
  ASSERT_TRUE(store.SetAgreedPrice(1, 1.25).ok());
  EXPECT_DOUBLE_EQ((*store.FindFlexOffer(1))->agreed_price_eur, 1.25);
  EXPECT_FALSE(store.SetAgreedPrice(9, 1.0).ok());
}

TEST(DataStoreTest, LatestPriceWins) {
  DataStore store;
  store.AppendPrice(1, 100, 0.10, 0.05);
  store.AppendPrice(1, 100, 0.12, 0.06);
  store.AppendPrice(2, 100, 0.50, 0.40);
  auto price = store.LatestPrice(1, 100);
  ASSERT_TRUE(price.ok());
  EXPECT_DOUBLE_EQ(price->buy_price_eur, 0.12);
  EXPECT_FALSE(store.LatestPrice(1, 101).ok());
}

TEST(DataStoreTest, OpenContractCoversSliceRange) {
  DataStore store;
  store.AddContract(5, 100, 0.25, 0, 1000);
  auto hit = store.OpenContract(5, 500);
  ASSERT_TRUE(hit.ok());
  EXPECT_DOUBLE_EQ(hit->tariff_eur_per_kwh, 0.25);
  EXPECT_FALSE(store.OpenContract(5, 1000).ok());  // exclusive end
  EXPECT_FALSE(store.OpenContract(6, 500).ok());
}

TEST(DataStoreTest, FlexOffersInState) {
  DataStore store;
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(store.PutFlexOffer(MakeOffer(id)).ok());
  }
  ASSERT_TRUE(store.TransitionFlexOffer(1, FlexOfferState::kAccepted).ok());
  ASSERT_TRUE(store.TransitionFlexOffer(2, FlexOfferState::kAccepted).ok());
  EXPECT_EQ(store.FlexOffersInState(FlexOfferState::kAccepted).size(), 2u);
  EXPECT_EQ(store.FlexOffersInState(FlexOfferState::kOffered).size(), 2u);
  EXPECT_EQ(store.num_flex_offers(), 4u);
}

}  // namespace
}  // namespace mirabel::storage
