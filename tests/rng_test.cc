#include "common/rng.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace mirabel {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-3.5, 7.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 7.25);
  }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    counts[static_cast<size_t>(v)]++;
  }
  // Each bucket should be near 10000 (loose 3-sigma-ish check).
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(7, 7), 7);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, IndexWithinBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(13), 13u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(18);
  Rng child = a.Fork();
  // Child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace mirabel
