// The branch-and-bound scheduler's contract has three legs: (1) it is
// *optimal* — on instances small enough to enumerate, its schedule cost is
// the exhaustive optimum, bit for bit, while visiting strictly fewer nodes
// than the enumeration; (2) its incremental lower bound is *sound* — at no
// search-tree node does the bound exceed the true kernel cost of the best
// completion; (3) it is *anytime* — an expired deadline returns the
// warm-start incumbent instead of failing.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "scheduling/bnb_scheduler.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {
namespace {

SchedulerOptions Unbounded() {
  SchedulerOptions opt;
  opt.time_budget_s = 0.0;  // disabled gate: runs to proven optimality
  opt.max_iterations = 0;
  opt.seed = 11;
  return opt;
}

/// Small randomized instances the exhaustive odometer can sweep completely.
ScenarioConfig SmallInstance(uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_offers = 4 + static_cast<int>(seed % 3);
  cfg.max_time_flexibility = 3 + static_cast<int>(seed % 3);
  // The paper's optimality-study setting: no energy constraints, so the
  // start-slot space at fill = 1 — the space both searches sweep — is the
  // whole search space and the two optima must coincide. (With energy
  // flexibility the greedy warm start may legitimately beat every fill = 1
  // schedule, making the comparison ill-posed.)
  cfg.no_energy_flexibility = true;
  return cfg;
}

TEST(BnbSchedulerTest, MatchesExhaustiveBitwiseWithFewerNodes) {
  int proven = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SchedulingProblem problem = MakeScenario(SmallInstance(seed));
    const uint64_t combos = ExhaustiveScheduler::CountCombinations(problem);
    ASSERT_GT(combos, 1u) << "seed " << seed << " has no search space";

    ExhaustiveScheduler exhaustive;
    auto optimal = exhaustive.Run(problem, Unbounded());
    ASSERT_TRUE(optimal.ok()) << "seed " << seed;
    ASSERT_TRUE(optimal->optimal_proven) << "seed " << seed;

    BranchAndBoundScheduler bnb;
    auto result = bnb.Run(problem, Unbounded());
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_TRUE(result->optimal_proven) << "seed " << seed;

    // Same optimum, bit for bit: both searches finish on the same canonical
    // SetSchedule + Cost recompute, so agreeing argmins agree exactly.
    EXPECT_EQ(result->cost.total(), optimal->cost.total())
        << "seed " << seed << ": bnb " << result->cost.total()
        << " vs exhaustive " << optimal->cost.total();

    // The point of the bound: strictly cheaper than full enumeration.
    EXPECT_GT(result->nodes_visited, 0) << "seed " << seed;
    EXPECT_LT(static_cast<uint64_t>(result->nodes_visited), combos)
        << "seed " << seed;
    if (result->optimal_proven) ++proven;
  }
  EXPECT_EQ(proven, 50);
}

TEST(BnbBoundTest, NeverExceedsBestCompletionCostAtAnyNode) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.num_offers = 4;
    cfg.max_time_flexibility = 3;
    cfg.production_fraction = 0.4;
    SchedulingProblem problem = MakeScenario(cfg);
    ASSERT_TRUE(problem.Validate().ok());
    CompiledProblem cp(problem);
    ScheduleWorkspace ws(cp);
    const size_t n = cp.num_offers;

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    BnbBound bound(cp, order);

    std::vector<flexoffer::TimeSlice> starts(n, 0);
    const std::vector<double> fills(n, 1.0);

    // Walk the complete tree; at every node the bound must under-estimate
    // the cheapest kernel-evaluated completion of the fixed prefix.
    std::function<double(size_t)> best_completion =
        [&](size_t depth) -> double {
      const double lower = bound.LowerBound();
      double best = std::numeric_limits<double>::infinity();
      if (depth == n) {
        ws.SetAssignmentsUnchecked(cp, starts, fills);
        best = ws.Cost(cp).total();
        // At a leaf the bound's own sweep must track the kernel closely.
        EXPECT_NEAR(bound.LeafCost(), best, 1e-6);
      } else {
        for (flexoffer::TimeSlice s = cp.earliest_start[depth];
             s <= cp.latest_start[depth]; ++s) {
          starts[depth] = s;
          bound.Push(s);
          best = std::min(best, best_completion(depth + 1));
          bound.Pop();
        }
      }
      EXPECT_LE(lower, best)
          << "seed " << seed << " depth " << depth
          << ": bound above the true best completion by " << lower - best;
      return best;
    };
    best_completion(0);
  }
}

/// Warm-start stand-in with a known, fixed answer, so the deadline test can
/// recognize the incumbent it gets back.
class FixedScheduler : public Scheduler {
 public:
  explicit FixedScheduler(Schedule schedule) : schedule_(std::move(schedule)) {}
  std::string Name() const override { return "Fixed"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override {
    MIRABEL_RETURN_IF_ERROR(problem.Validate());
    CompiledProblem cp(problem);
    return RunCompiled(cp, options);
  }
  Result<SchedulingResult> RunCompiled(const CompiledProblem& cp,
                                       const SchedulerOptions&) override {
    ScheduleWorkspace ws(cp);
    MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, schedule_));
    SchedulingResult result;
    result.schedule = schedule_;
    result.cost = ws.Cost(cp);
    result.iterations = 1;
    result.trace.push_back({0.0, result.cost.total()});
    return result;
  }

 private:
  Schedule schedule_;
};

TEST(BnbSchedulerTest, ExpiredDeadlineReturnsWarmStartIncumbent) {
  ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.num_offers = 20;
  SchedulingProblem problem = MakeScenario(cfg);
  CompiledProblem cp(problem);

  // The warm start hands over the kernel's default schedule; a deadline that
  // is already spent when the search starts must return exactly that.
  Schedule warm;
  ScheduleWorkspace(cp).ExportSchedule(&warm);

  BranchAndBoundScheduler::Config config;
  config.warm_start = [&warm] {
    return std::make_unique<FixedScheduler>(warm);
  };
  BranchAndBoundScheduler bnb(config);
  SchedulerOptions options;
  options.time_budget_s = 1e-9;
  auto result = bnb.Run(problem, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->optimal_proven);
  EXPECT_EQ(result->nodes_visited, 0);
  ASSERT_EQ(result->schedule.assignments.size(), warm.assignments.size());
  for (size_t i = 0; i < warm.assignments.size(); ++i) {
    EXPECT_EQ(result->schedule.assignments[i].start, warm.assignments[i].start);
    EXPECT_DOUBLE_EQ(result->schedule.assignments[i].fill,
                     warm.assignments[i].fill);
  }
}

TEST(BnbSchedulerTest, NeverWorseThanItsWarmStart) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.num_offers = 30;
    SchedulingProblem problem = MakeScenario(cfg);

    SchedulerOptions opt = Unbounded();
    opt.max_iterations = 120;
    // Replicate the warm start the search will see: greedy with the default
    // 15% share of the iteration budget and the same seed.
    SchedulerOptions warm_opt = opt;
    warm_opt.max_iterations = 18;
    GreedyScheduler greedy;
    auto warm_alone = greedy.Run(problem, warm_opt);
    ASSERT_TRUE(warm_alone.ok());

    BranchAndBoundScheduler bnb;
    auto result = bnb.Run(problem, opt);
    ASSERT_TRUE(result.ok());
    // The search starts from a (shorter-budget) greedy incumbent and only
    // replaces it with strictly better leaves.
    EXPECT_LE(result->cost.total(), warm_alone->cost.total() + 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mirabel::scheduling
