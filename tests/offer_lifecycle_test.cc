// Full transition-table coverage of the flex-offer lifecycle state machine:
// every legal edge succeeds, every illegal edge is FailedPrecondition, and
// the tracked counts stay consistent.
#include "edms/offer_lifecycle.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

namespace mirabel::edms {
namespace {

const OfferState kAllStates[] = {
    OfferState::kOffered,   OfferState::kAccepted, OfferState::kRejected,
    OfferState::kAggregated, OfferState::kScheduled, OfferState::kAssigned,
    OfferState::kExecuted,  OfferState::kExpired,
};

/// The specified relation, written out edge by edge (the implementation must
/// match this table, not the other way around).
const std::set<std::pair<OfferState, OfferState>> kLegalEdges = {
    {OfferState::kOffered, OfferState::kAccepted},
    {OfferState::kOffered, OfferState::kRejected},
    {OfferState::kOffered, OfferState::kExpired},
    {OfferState::kAccepted, OfferState::kAggregated},
    {OfferState::kAccepted, OfferState::kExpired},
    {OfferState::kAggregated, OfferState::kScheduled},
    {OfferState::kAggregated, OfferState::kExpired},
    {OfferState::kScheduled, OfferState::kAssigned},
    {OfferState::kScheduled, OfferState::kExpired},
    {OfferState::kAssigned, OfferState::kExecuted},
    {OfferState::kAssigned, OfferState::kExpired},
};

/// Drives a fresh lifecycle instance into `state` via the happy path.
void DriveTo(OfferLifecycle& lc, flexoffer::FlexOfferId id, OfferState state) {
  ASSERT_TRUE(lc.Begin(id).ok());
  std::vector<OfferState> path;
  switch (state) {
    case OfferState::kOffered:
      break;
    case OfferState::kRejected:
      path = {OfferState::kRejected};
      break;
    case OfferState::kExpired:
      path = {OfferState::kExpired};
      break;
    case OfferState::kExecuted:
      path = {OfferState::kAccepted, OfferState::kAggregated,
              OfferState::kScheduled, OfferState::kAssigned,
              OfferState::kExecuted};
      break;
    case OfferState::kAssigned:
      path = {OfferState::kAccepted, OfferState::kAggregated,
              OfferState::kScheduled, OfferState::kAssigned};
      break;
    case OfferState::kScheduled:
      path = {OfferState::kAccepted, OfferState::kAggregated,
              OfferState::kScheduled};
      break;
    case OfferState::kAggregated:
      path = {OfferState::kAccepted, OfferState::kAggregated};
      break;
    case OfferState::kAccepted:
      path = {OfferState::kAccepted};
      break;
  }
  for (OfferState next : path) {
    ASSERT_TRUE(lc.Transition(id, next).ok())
        << "driving to " << ToString(state) << " via " << ToString(next);
  }
  ASSERT_EQ(*lc.StateOf(id), state);
}

TEST(OfferLifecycleTest, FullTransitionTable) {
  for (OfferState from : kAllStates) {
    for (OfferState to : kAllStates) {
      bool legal = kLegalEdges.count({from, to}) != 0;
      EXPECT_EQ(TransitionAllowed(from, to), legal)
          << ToString(from) << " -> " << ToString(to);

      // And the stateful object enforces exactly the same relation.
      OfferLifecycle lc;
      DriveTo(lc, 1, from);
      Result<OfferState> r = lc.Transition(1, to);
      if (legal) {
        ASSERT_TRUE(r.ok()) << ToString(from) << " -> " << ToString(to);
        EXPECT_EQ(*r, from);  // returns the previous state
        EXPECT_EQ(*lc.StateOf(1), to);
      } else {
        ASSERT_FALSE(r.ok()) << ToString(from) << " -> " << ToString(to);
        EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
        EXPECT_EQ(*lc.StateOf(1), from);  // state untouched
      }
    }
  }
}

TEST(OfferLifecycleTest, TerminalStatesHaveNoOutgoingEdges) {
  for (OfferState from : kAllStates) {
    bool has_edge = false;
    for (OfferState to : kAllStates) {
      has_edge = has_edge || TransitionAllowed(from, to);
    }
    EXPECT_EQ(IsTerminal(from), !has_edge) << ToString(from);
  }
}

TEST(OfferLifecycleTest, EveryNonTerminalStateCanExpire) {
  for (OfferState from : kAllStates) {
    if (IsTerminal(from)) continue;
    EXPECT_TRUE(TransitionAllowed(from, OfferState::kExpired))
        << ToString(from);
  }
}

TEST(OfferLifecycleTest, BeginRejectsDuplicates) {
  OfferLifecycle lc;
  ASSERT_TRUE(lc.Begin(7).ok());
  Status dup = lc.Begin(7);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(OfferLifecycleTest, UnknownOffersAreNotFound) {
  OfferLifecycle lc;
  EXPECT_EQ(lc.StateOf(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(lc.Transition(99, OfferState::kAccepted).status().code(),
            StatusCode::kNotFound);
}

TEST(OfferLifecycleTest, CountsTrackTransitions) {
  OfferLifecycle lc;
  ASSERT_TRUE(lc.Begin(1).ok());
  ASSERT_TRUE(lc.Begin(2).ok());
  ASSERT_TRUE(lc.Begin(3).ok());
  EXPECT_EQ(lc.CountInState(OfferState::kOffered), 3u);
  ASSERT_TRUE(lc.Transition(1, OfferState::kAccepted).ok());
  ASSERT_TRUE(lc.Transition(2, OfferState::kRejected).ok());
  EXPECT_EQ(lc.CountInState(OfferState::kOffered), 1u);
  EXPECT_EQ(lc.CountInState(OfferState::kAccepted), 1u);
  EXPECT_EQ(lc.CountInState(OfferState::kRejected), 1u);
  EXPECT_EQ(lc.size(), 3u);

  // A failed transition must not disturb the counts.
  ASSERT_FALSE(lc.Transition(2, OfferState::kAccepted).ok());
  EXPECT_EQ(lc.CountInState(OfferState::kRejected), 1u);
  EXPECT_EQ(lc.CountInState(OfferState::kAccepted), 1u);
}

}  // namespace
}  // namespace mirabel::edms
