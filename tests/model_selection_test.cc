#include "forecasting/model_selection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/energy_series_generator.h"
#include "datagen/weather_generator.h"

namespace mirabel::forecasting {
namespace {

struct SelectionData {
  TimeSeries series;
  ExogenousData exog;
};

/// Demand strongly driven by temperature: EGRV (which sees the weather)
/// should clearly beat HWT here.
SelectionData TemperatureDrivenDemand(int days) {
  datagen::WeatherConfig wcfg;
  wcfg.days = days;
  wcfg.front_ar1 = 0.999;
  wcfg.front_noise = 0.4;
  std::vector<double> temp = datagen::GenerateTemperatureSeries(wcfg);
  Rng rng(3);
  std::vector<double> values(temp.size());
  for (size_t t = 0; t < temp.size(); ++t) {
    double heating = std::max(0.0, 15.0 - temp[t]);
    values[t] = 1000.0 + 80.0 * heating + 5.0 * (t % 48 >= 16 ? 1 : 0) +
                rng.Gaussian(0.0, 5.0);
  }
  SelectionData out{TimeSeries(values, 48), {}};
  out.exog.temperature_c = std::move(temp);
  out.exog.holiday.assign(values.size(), false);
  return out;
}

/// Pure multi-seasonal demand with no weather dependence at all: HWT should
/// be at least competitive, and HWT-only training must work.
SelectionData SeasonalDemand(int days) {
  datagen::DemandSeriesConfig cfg;
  cfg.days = days;
  cfg.seed = 9;
  SelectionData out{TimeSeries(datagen::GenerateDemandSeries(cfg), 48), {}};
  datagen::WeatherConfig wcfg;
  wcfg.days = days;
  out.exog.temperature_c = datagen::GenerateTemperatureSeries(wcfg);
  out.exog.holiday.assign(out.series.size(), false);
  return out;
}

AutoForecaster::Config FastConfig() {
  AutoForecaster::Config cfg;
  cfg.hwt_estimation = {0.1, 400, 5};
  return cfg;
}

TEST(AutoForecasterTest, ForecastBeforeTrainFails) {
  AutoForecaster forecaster(FastConfig());
  EXPECT_FALSE(forecaster.Forecast(10).ok());
  EXPECT_FALSE(forecaster.selected().ok());
}

TEST(AutoForecasterTest, HwtOnlyTrainingWorks) {
  AutoForecaster forecaster(FastConfig());
  SelectionData data = SeasonalDemand(21);
  ASSERT_TRUE(forecaster.Train(data.series).ok());
  ASSERT_TRUE(forecaster.selected().ok());
  EXPECT_EQ(*forecaster.selected(), SelectedModel::kHwt);
  auto forecast = forecaster.Forecast(48);
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->size(), 48u);
}

TEST(AutoForecasterTest, PicksEgrvForWeatherDrivenLoad) {
  AutoForecaster forecaster(FastConfig());
  SelectionData data = TemperatureDrivenDemand(30);
  ASSERT_TRUE(forecaster.Train(data.series, data.exog).ok());
  ASSERT_TRUE(forecaster.selected().ok());
  EXPECT_EQ(*forecaster.selected(), SelectedModel::kEgrv);
  EXPECT_LT(forecaster.egrv_holdout_smape(),
            forecaster.hwt_holdout_smape());

  // Forecasting with the EGRV winner needs future exogenous data.
  std::vector<double> future_temp(48, 10.0);
  std::vector<bool> future_holiday(48, false);
  EXPECT_TRUE(forecaster.Forecast(48, future_temp, future_holiday).ok());
  EXPECT_FALSE(forecaster.Forecast(48).ok());  // missing exogenous
}

TEST(AutoForecasterTest, FallsBackToHwtWhenEgrvIsNotBetter) {
  // Force the fallback by demanding EGRV be 1000x more accurate.
  AutoForecaster::Config cfg = FastConfig();
  cfg.accuracy_ratio = 0.001;
  AutoForecaster forecaster(cfg);
  SelectionData data = SeasonalDemand(30);
  ASSERT_TRUE(forecaster.Train(data.series, data.exog).ok());
  EXPECT_EQ(*forecaster.selected(), SelectedModel::kHwt);
  EXPECT_TRUE(forecaster.Forecast(48).ok());
}

TEST(AutoForecasterTest, ExogenousSizeMismatchRejected) {
  AutoForecaster forecaster(FastConfig());
  SelectionData data = SeasonalDemand(21);
  data.exog.holiday.pop_back();
  EXPECT_FALSE(forecaster.Train(data.series, data.exog).ok());
}

TEST(AutoForecasterTest, RecordsBothHoldoutScores) {
  AutoForecaster forecaster(FastConfig());
  SelectionData data = SeasonalDemand(30);
  ASSERT_TRUE(forecaster.Train(data.series, data.exog).ok());
  EXPECT_GE(forecaster.egrv_holdout_smape(), 0.0);
  EXPECT_GE(forecaster.hwt_holdout_smape(), 0.0);
}

}  // namespace
}  // namespace mirabel::forecasting
