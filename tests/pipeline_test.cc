#include "aggregation/pipeline.h"

#include <gtest/gtest.h>

#include "datagen/flex_offer_generator.h"

namespace mirabel::aggregation {
namespace {

using flexoffer::FlexOffer;
using flexoffer::ScheduledFlexOffer;

std::vector<FlexOffer> Workload(int64_t n, uint64_t seed) {
  datagen::FlexOfferWorkloadConfig cfg;
  cfg.count = n;
  cfg.seed = seed;
  return datagen::GenerateFlexOffers(cfg);
}

TEST(PipelineTest, CompressesWorkload) {
  AggregationPipeline pipeline({AggregationParams::P3(), std::nullopt});
  for (const auto& fo : Workload(2000, 3)) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  auto updates = pipeline.Flush();
  EXPECT_FALSE(updates.empty());
  AggregationStats stats = pipeline.Stats();
  EXPECT_EQ(stats.offer_count, 2000u);
  EXPECT_GT(stats.compression_ratio, 2.0);
  EXPECT_EQ(stats.aggregate_count, pipeline.aggregates().size());
}

TEST(PipelineTest, BatchInsertMatchesIncrementalInsert) {
  std::vector<FlexOffer> offers = Workload(2000, 3);
  AggregationPipeline incremental({AggregationParams::P3(), std::nullopt});
  for (const auto& fo : offers) {
    ASSERT_TRUE(incremental.Insert(fo).ok());
  }
  incremental.Flush();

  AggregationPipeline batch({AggregationParams::P3(), std::nullopt});
  ASSERT_TRUE(batch.Insert(std::span<const FlexOffer>(offers)).ok());
  batch.Flush();

  EXPECT_EQ(batch.Stats().offer_count, incremental.Stats().offer_count);
  EXPECT_EQ(batch.Stats().aggregate_count,
            incremental.Stats().aggregate_count);
  EXPECT_EQ(batch.num_groups(), incremental.num_groups());

  // A duplicate in the batch surfaces as AlreadyExists.
  EXPECT_EQ(batch.Insert(std::span<const FlexOffer>(offers)).code(),
            StatusCode::kAlreadyExists);
}

TEST(PipelineTest, P0HasZeroFlexibilityLoss) {
  AggregationPipeline pipeline({AggregationParams::P0(), std::nullopt});
  for (const auto& fo : Workload(2000, 4)) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  EXPECT_DOUBLE_EQ(pipeline.Stats().avg_time_flexibility_loss, 0.0);
}

TEST(PipelineTest, TolerantCombosLoseNoMoreThanTolerance) {
  AggregationPipeline pipeline({AggregationParams::P1(), std::nullopt});
  for (const auto& fo : Workload(2000, 5)) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  // With a time-flexibility tolerance of 8, per-offer loss is at most 8.
  EXPECT_LE(pipeline.Stats().avg_time_flexibility_loss, 8.0);
  for (const auto& [id, agg] : pipeline.aggregates()) {
    int64_t macro_tf = agg.macro.TimeFlexibility();
    for (const auto& m : agg.members) {
      EXPECT_LE(m.offer.TimeFlexibility() - macro_tf, 8);
    }
  }
}

TEST(PipelineTest, AllAggregatesValid) {
  AggregationPipeline pipeline({AggregationParams::P2(), std::nullopt});
  for (const auto& fo : Workload(3000, 6)) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  for (const auto& [id, agg] : pipeline.aggregates()) {
    ASSERT_TRUE(agg.Validate().ok());
  }
}

TEST(PipelineTest, InvalidOfferRejectedAtInsert) {
  AggregationPipeline pipeline({AggregationParams::P0(), std::nullopt});
  FlexOffer bad;
  bad.id = 1;
  EXPECT_FALSE(pipeline.Insert(bad).ok());  // empty profile
}

TEST(PipelineTest, RemoveShrinksAggregates) {
  AggregationPipeline pipeline({AggregationParams::P0(), std::nullopt});
  auto offers = Workload(100, 7);
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  size_t before = pipeline.Stats().offer_count;
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(pipeline.Remove(offers[i].id).ok());
  }
  pipeline.Flush();
  EXPECT_EQ(pipeline.Stats().offer_count, before - 50);
  for (const auto& [id, agg] : pipeline.aggregates()) {
    ASSERT_TRUE(agg.Validate().ok());
  }
}

TEST(PipelineTest, RemoveAllDeletesAllAggregates) {
  AggregationPipeline pipeline({AggregationParams::P3(), std::nullopt});
  auto offers = Workload(200, 8);
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Remove(fo.id).ok());
  }
  auto updates = pipeline.Flush();
  EXPECT_EQ(pipeline.aggregates().size(), 0u);
  for (const auto& u : updates) {
    EXPECT_EQ(u.kind, UpdateKind::kDeleted);
  }
}

TEST(PipelineTest, IncrementalEqualsBatchMembership) {
  // Inserting in two batches must yield the same offer->aggregate coverage
  // as one batch (aggregate ids may differ).
  auto offers = Workload(500, 9);
  AggregationPipeline batched({AggregationParams::P2(), std::nullopt});
  for (const auto& fo : offers) {
    ASSERT_TRUE(batched.Insert(fo).ok());
  }
  batched.Flush();

  AggregationPipeline incremental({AggregationParams::P2(), std::nullopt});
  for (size_t i = 0; i < 250; ++i) {
    ASSERT_TRUE(incremental.Insert(offers[i]).ok());
  }
  incremental.Flush();
  for (size_t i = 250; i < offers.size(); ++i) {
    ASSERT_TRUE(incremental.Insert(offers[i]).ok());
  }
  incremental.Flush();

  EXPECT_EQ(batched.Stats().offer_count, incremental.Stats().offer_count);
  EXPECT_EQ(batched.Stats().aggregate_count,
            incremental.Stats().aggregate_count);
  for (const auto& [id, agg] : incremental.aggregates()) {
    ASSERT_TRUE(agg.Validate().ok());
  }
}

TEST(PipelineTest, BinPackerBoundsAggregateSizes) {
  PipelineConfig config;
  config.params = AggregationParams::P3();
  BinPackerBounds bounds;
  bounds.max_offers = 16;
  config.bin_packer = bounds;
  AggregationPipeline pipeline(config);
  for (const auto& fo : Workload(2000, 10)) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  for (const auto& [id, agg] : pipeline.aggregates()) {
    EXPECT_LE(agg.members.size(), 16u);
    ASSERT_TRUE(agg.Validate().ok());
  }
  EXPECT_EQ(pipeline.Stats().offer_count, 2000u);
}

TEST(PipelineTest, DisaggregateScheduleRoundTrip) {
  AggregationPipeline pipeline({AggregationParams::P1(), std::nullopt});
  auto offers = Workload(300, 11);
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  size_t micro_total = 0;
  for (const auto& [id, agg] : pipeline.aggregates()) {
    ScheduledFlexOffer s;
    s.offer_id = id;
    s.start = agg.macro.earliest_start;
    for (const auto& band : agg.macro.profile) {
      s.energies_kwh.push_back(band.max_kwh);
    }
    auto micro = pipeline.DisaggregateSchedule(s);
    ASSERT_TRUE(micro.ok());
    micro_total += micro->size();
  }
  EXPECT_EQ(micro_total, offers.size());
}

TEST(PipelineTest, DisaggregateUnknownAggregateNotFound) {
  AggregationPipeline pipeline({AggregationParams::P0(), std::nullopt});
  ScheduledFlexOffer s;
  s.offer_id = 4242;
  EXPECT_EQ(pipeline.DisaggregateSchedule(s).status().code(),
            StatusCode::kNotFound);
}

/// Property: under every parameter combination, all aggregates stay valid
/// and account for every inserted offer through insert/remove churn.
class PipelineChurn
    : public ::testing::TestWithParam<std::pair<const char*, AggregationParams>> {
};

TEST_P(PipelineChurn, StaysConsistent) {
  AggregationPipeline pipeline({GetParam().second, std::nullopt});
  auto offers = Workload(400, 12);
  // Insert all, remove every third, insert 100 fresh ones.
  for (const auto& fo : offers) {
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();
  size_t removed = 0;
  for (size_t i = 0; i < offers.size(); i += 3) {
    ASSERT_TRUE(pipeline.Remove(offers[i].id).ok());
    ++removed;
  }
  pipeline.Flush();
  datagen::FlexOfferWorkloadConfig fresh_cfg;
  fresh_cfg.count = 100;
  fresh_cfg.seed = 999;
  auto fresh = datagen::GenerateFlexOffers(fresh_cfg);
  for (auto& fo : fresh) {
    fo.id += 100000;  // avoid id collisions
    ASSERT_TRUE(pipeline.Insert(fo).ok());
  }
  pipeline.Flush();

  EXPECT_EQ(pipeline.Stats().offer_count, offers.size() - removed + 100);
  for (const auto& [id, agg] : pipeline.aggregates()) {
    ASSERT_TRUE(agg.Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipelineChurn,
    ::testing::Values(std::make_pair("P0", AggregationParams::P0()),
                      std::make_pair("P1", AggregationParams::P1()),
                      std::make_pair("P2", AggregationParams::P2()),
                      std::make_pair("P3", AggregationParams::P3())),
    [](const auto& info) { return info.param.first; });

}  // namespace
}  // namespace mirabel::aggregation
