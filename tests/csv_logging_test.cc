#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace mirabel {
namespace {

TEST(CsvTableTest, WritesCsv) {
  CsvTable table({"name", "count", "ratio"});
  table.BeginRow();
  table.AddCell("P0");
  table.AddInt(1000);
  table.AddNumber(4.25, 2);
  table.BeginRow();
  table.AddCell("P1");
  table.AddInt(500);
  table.AddNumber(8.5, 2);

  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "name,count,ratio\nP0,1000,4.25\nP1,500,8.50\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvTableTest, PrettyAlignsColumns) {
  CsvTable table({"a", "long_header"});
  table.BeginRow();
  table.AddCell("wide-cell-content");
  table.AddCell("x");
  std::ostringstream out;
  table.WritePretty(out);
  std::string text = out.str();
  // Both lines must have the same offset for the second column.
  size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  size_t header_col = text.find("long_header");
  size_t value_col = text.find('x', newline) - (newline + 1);
  ASSERT_NE(header_col, std::string::npos);
  EXPECT_EQ(header_col, value_col);
}

TEST(CsvTableTest, NumberPrecision) {
  CsvTable table({"v"});
  table.BeginRow();
  table.AddNumber(3.14159, 3);
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
}

TEST(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // The macro's condition must evaluate to a no-op without side effects.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  MIRABEL_LOG(kDebug) << count();
  MIRABEL_LOG(kInfo) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), t2 + 1.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3, 100.0);
}

}  // namespace
}  // namespace mirabel
